// Core scalar types shared across the cosched libraries.
//
// Simulation time is an integer number of seconds since the start of the
// simulated epoch.  Integer time keeps the discrete-event engine fully
// deterministic (no floating-point tie ambiguity) and matches the resolution
// of the Standard Workload Format used by the Parallel Workloads Archive.
#pragma once

#include <cstdint>

namespace cosched {

/// Simulated time in seconds since the simulation epoch.
using Time = std::int64_t;

/// A span of simulated time, in seconds.
using Duration = std::int64_t;

/// Number of compute nodes.
using NodeCount = std::int64_t;

/// Unique job identifier, unique within one scheduling domain.
using JobId = std::int64_t;

/// Identifies one scheduling domain (machine) in a coupled system.
using SystemId = std::int32_t;

inline constexpr Duration kSecond = 1;
inline constexpr Duration kMinute = 60;
inline constexpr Duration kHour = 3600;
inline constexpr Duration kDay = 86400;

/// Sentinel for "no time" / "never".
inline constexpr Time kNoTime = -1;

/// Sentinel job id meaning "no job".
inline constexpr JobId kNoJob = -1;

/// Converts seconds to fractional hours (for node-hour reporting).
constexpr double to_hours(Duration d) { return static_cast<double>(d) / kHour; }

/// Converts seconds to fractional minutes (for wait-time reporting).
constexpr double to_minutes(Duration d) {
  return static_cast<double>(d) / kMinute;
}

}  // namespace cosched

#include "util/csv.h"

#include "util/error.h"

namespace cosched {

CsvWriter::CsvWriter(const std::string& path) : out_(path) {
  if (!out_) throw Error("cannot open CSV output file: " + path);
}

std::string CsvWriter::escape(const std::string& cell) {
  const bool needs_quotes =
      cell.find_first_of(",\"\n\r") != std::string::npos;
  if (!needs_quotes) return cell;
  std::string out = "\"";
  for (char c : cell) {
    if (c == '"') out += "\"\"";
    else out.push_back(c);
  }
  out.push_back('"');
  return out;
}

void CsvWriter::write_row(const std::vector<std::string>& cells) {
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i) out_ << ',';
    out_ << escape(cells[i]);
  }
  out_ << '\n';
}

void CsvWriter::write_row(std::initializer_list<std::string> cells) {
  write_row(std::vector<std::string>(cells));
}

}  // namespace cosched

// Error handling helpers: a library exception type and invariant checks.
//
// Following the C++ Core Guidelines (E.2, I.6) we throw on contract
// violations that indicate programmer error, carrying a formatted message.
// COSCHED_CHECK is active in all build types: scheduler invariants guard
// results we publish, so silently corrupt runs are worse than aborts.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace cosched {

/// Base exception for all cosched library errors.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Thrown when an input file or wire message cannot be parsed.
class ParseError : public Error {
 public:
  explicit ParseError(const std::string& what) : Error(what) {}
};

/// Thrown when an internal invariant is violated.
class InvariantError : public Error {
 public:
  explicit InvariantError(const std::string& what) : Error(what) {}
};

/// Thrown when a bounded I/O operation exceeds its deadline.  Callers on the
/// client path translate this to "remote unknown" (nullopt); the server loop
/// treats it as "keep waiting", never as a fatal transport error.
class TimeoutError : public Error {
 public:
  explicit TimeoutError(const std::string& what) : Error(what) {}
};

namespace detail {
[[noreturn]] inline void check_failed(const char* expr, const char* file,
                                      int line, const std::string& msg) {
  std::ostringstream os;
  os << "invariant failed: (" << expr << ") at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw InvariantError(os.str());
}
}  // namespace detail

}  // namespace cosched

/// Checks a scheduler/simulator invariant; throws InvariantError on failure.
#define COSCHED_CHECK(expr)                                               \
  do {                                                                    \
    if (!(expr))                                                          \
      ::cosched::detail::check_failed(#expr, __FILE__, __LINE__, "");     \
  } while (0)

/// Checks an invariant with a formatted explanation.
#define COSCHED_CHECK_MSG(expr, msg)                                     \
  do {                                                                    \
    if (!(expr)) {                                                        \
      std::ostringstream os_;                                             \
      os_ << msg;                                                         \
      ::cosched::detail::check_failed(#expr, __FILE__, __LINE__,          \
                                      os_.str());                         \
    }                                                                     \
  } while (0)

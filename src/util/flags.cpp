#include "util/flags.h"

#include <cstdlib>
#include <sstream>

#include "util/error.h"

namespace cosched {

void Flags::define(const std::string& name, const std::string& default_value,
                   const std::string& help) {
  COSCHED_CHECK_MSG(!entries_.count(name), "duplicate flag --" << name);
  entries_[name] = Entry{default_value, default_value, help, false};
}

std::vector<std::string> Flags::parse(int argc, const char* const* argv) {
  std::vector<std::string> positional;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional.push_back(std::move(arg));
      continue;
    }
    std::string body = arg.substr(2);
    std::string value;
    bool has_value = false;
    if (auto eq = body.find('='); eq != std::string::npos) {
      value = body.substr(eq + 1);
      body = body.substr(0, eq);
      has_value = true;
    }
    // Boolean negation: --no-name.
    if (!has_value && body.rfind("no-", 0) == 0) {
      const std::string positive = body.substr(3);
      if (auto it = entries_.find(positive); it != entries_.end()) {
        it->second.value = "false";
        it->second.provided = true;
        continue;
      }
    }
    auto it = entries_.find(body);
    if (it == entries_.end()) throw ParseError("unknown flag --" + body);
    if (!has_value) {
      // Bool flags may omit the value; others take the next argument.
      const std::string& def = it->second.default_value;
      const bool is_bool = (def == "true" || def == "false");
      if (is_bool) {
        value = "true";
      } else {
        if (i + 1 >= argc)
          throw ParseError("flag --" + body + " requires a value");
        value = argv[++i];
      }
    }
    it->second.value = value;
    it->second.provided = true;
  }
  return positional;
}

std::string Flags::get(const std::string& name) const {
  auto it = entries_.find(name);
  COSCHED_CHECK_MSG(it != entries_.end(), "undeclared flag --" << name);
  return it->second.value;
}

std::int64_t Flags::get_int(const std::string& name) const {
  const std::string v = get(name);
  char* end = nullptr;
  const long long out = std::strtoll(v.c_str(), &end, 10);
  if (end == v.c_str() || *end != '\0')
    throw ParseError("flag --" + name + " expects an integer, got '" + v + "'");
  return out;
}

double Flags::get_double(const std::string& name) const {
  const std::string v = get(name);
  char* end = nullptr;
  const double out = std::strtod(v.c_str(), &end);
  if (end == v.c_str() || *end != '\0')
    throw ParseError("flag --" + name + " expects a number, got '" + v + "'");
  return out;
}

bool Flags::get_bool(const std::string& name) const {
  const std::string v = get(name);
  if (v == "true" || v == "1" || v == "yes") return true;
  if (v == "false" || v == "0" || v == "no") return false;
  throw ParseError("flag --" + name + " expects a boolean, got '" + v + "'");
}

bool Flags::provided(const std::string& name) const {
  auto it = entries_.find(name);
  return it != entries_.end() && it->second.provided;
}

std::string Flags::usage(const std::string& program) const {
  std::ostringstream os;
  os << "usage: " << program << " [flags]\n";
  for (const auto& [name, e] : entries_) {
    os << "  --" << name << " (default: " << e.default_value << ")\n      "
       << e.help << '\n';
  }
  return os.str();
}

}  // namespace cosched

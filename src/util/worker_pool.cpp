#include "util/worker_pool.h"

#include "util/error.h"

namespace cosched {

WorkerPool::WorkerPool(unsigned helpers) {
  threads_.reserve(helpers);
  for (unsigned i = 0; i < helpers; ++i) {
    threads_.emplace_back([this, i] { worker_main(i + 1); });
  }
}

WorkerPool::~WorkerPool() {
  {
    MutexLock lock(mu_);
    stop_ = true;
    work_cv_.notify_all();
  }
  for (std::thread& t : threads_) t.join();
}

void WorkerPool::worker_main(unsigned slot) {
  std::uint64_t seen = 0;
  for (;;) {
    const std::function<void(unsigned)>* job = nullptr;
    {
      MutexLock lock(mu_);
      while (!stop_ && epoch_ == seen) work_cv_.wait(mu_);
      if (stop_) return;
      seen = epoch_;
      job = job_;
    }
    (*job)(slot);
    {
      MutexLock lock(mu_);
      if (--remaining_ == 0) done_cv_.notify_all();
    }
  }
}

void WorkerPool::run(const std::function<void(unsigned)>& fn) {
  if (threads_.empty()) {
    fn(0);
    return;
  }
  {
    MutexLock lock(mu_);
    COSCHED_CHECK_MSG(job_ == nullptr, "WorkerPool::run is not reentrant");
    job_ = &fn;
    remaining_ = static_cast<unsigned>(threads_.size());
    ++epoch_;
    work_cv_.notify_all();
  }
  fn(0);
  {
    MutexLock lock(mu_);
    while (remaining_ != 0) done_cv_.wait(mu_);
    job_ = nullptr;
  }
}

}  // namespace cosched

// Leveled logging.
//
// The simulator and daemons log through a single global sink so tests can
// silence output and the live-daemon example can prefix per-process tags.
#pragma once

#include <functional>
#include <sstream>
#include <string>

namespace cosched {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Returns the current global minimum level (default kWarn, so library
/// consumers see problems but not chatter).
LogLevel log_level();

/// Sets the global minimum level.
void set_log_level(LogLevel level);

/// Replaces the log sink.  Passing nullptr restores the default stderr sink.
using LogSink = std::function<void(LogLevel, const std::string&)>;
void set_log_sink(LogSink sink);

namespace detail {
void emit(LogLevel level, const std::string& message);

struct Voidify;

class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  ~LogLine() { emit(level_, os_.str()); }
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  template <typename T>
  LogLine& operator<<(const T& v) {
    os_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream os_;
};

/// Swallows the LogLine stream so COSCHED_LOG is a single expression and is
/// safe inside unbraced if/else.
struct Voidify {
  void operator&(LogLine&&) const {}
  void operator&(LogLine&) const {}
};
}  // namespace detail

const char* to_string(LogLevel level);

}  // namespace cosched

#define COSCHED_LOG(level)                                        \
  (static_cast<int>(::cosched::LogLevel::level) <                 \
   static_cast<int>(::cosched::log_level()))                      \
      ? (void)0                                                   \
      : ::cosched::detail::Voidify() &                            \
            ::cosched::detail::LogLine(::cosched::LogLevel::level)

// A tiny command-line flag parser for the example and bench binaries.
//
// Supports --name=value, --name value, and boolean --name / --no-name.
// Unknown flags raise an error so typos do not silently alter experiments.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

namespace cosched {

class Flags {
 public:
  /// Declares a flag with a default value and help text.
  void define(const std::string& name, const std::string& default_value,
              const std::string& help);

  /// Parses argv.  Throws ParseError on unknown flags or missing values.
  /// Returns remaining positional arguments.
  std::vector<std::string> parse(int argc, const char* const* argv);

  std::string get(const std::string& name) const;
  std::int64_t get_int(const std::string& name) const;
  double get_double(const std::string& name) const;
  bool get_bool(const std::string& name) const;

  /// True when the user supplied the flag explicitly.
  bool provided(const std::string& name) const;

  /// Renders a usage message listing all declared flags.
  std::string usage(const std::string& program) const;

 private:
  struct Entry {
    std::string value;
    std::string default_value;
    std::string help;
    bool provided = false;
  };
  std::map<std::string, Entry> entries_;
};

}  // namespace cosched

// Deterministic pseudo-random number generation.
//
// We implement xoshiro256** seeded via splitmix64 rather than relying on
// std::mt19937 + std::*_distribution, because the standard distributions are
// implementation-defined: identical seeds would give different workloads on
// different standard libraries, breaking reproducibility of the experiment
// tables.  All distribution transforms here are written out explicitly.
#pragma once

#include <array>
#include <cmath>
#include <cstdint>

#include "util/error.h"

namespace cosched {

/// splitmix64 — used to expand a single 64-bit seed into generator state.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256** 1.0 — fast, high-quality, deterministic across platforms.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x5eed5eed5eed5eedULL) {
    SplitMix64 sm(seed);
    for (auto& s : state_) s = sm.next();
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }

  result_type operator()() { return next(); }

  std::uint64_t next() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double uniform() {
    // 53 random mantissa bits.
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  /// Uniform integer in [lo, hi] inclusive.  Uses rejection to avoid bias.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    COSCHED_CHECK(lo <= hi);
    // Width computed in unsigned space: hi - lo would overflow int64 when
    // the bounds span more than half the domain.
    const std::uint64_t range =
        static_cast<std::uint64_t>(hi) - static_cast<std::uint64_t>(lo) + 1;
    if (range == 0) return static_cast<std::int64_t>(next());  // full range
    const std::uint64_t limit = (~0ULL) - (~0ULL) % range;
    std::uint64_t v;
    do {
      v = next();
    } while (v >= limit);
    return static_cast<std::int64_t>(static_cast<std::uint64_t>(lo) +
                                     v % range);
  }

  /// Exponential with the given mean (inverse-CDF transform).
  double exponential(double mean) {
    COSCHED_CHECK(mean > 0);
    double u;
    do {
      u = uniform();
    } while (u <= 0.0);  // avoid log(0)
    return -mean * std::log(u);
  }

  /// Standard normal via Box–Muller (deterministic, no cached spare).
  double normal() {
    double u1;
    do {
      u1 = uniform();
    } while (u1 <= 0.0);
    const double u2 = uniform();
    return std::sqrt(-2.0 * std::log(u1)) *
           std::cos(2.0 * 3.14159265358979323846 * u2);
  }

  /// Log-normal with the given parameters of the underlying normal.
  double lognormal(double mu, double sigma) {
    return std::exp(mu + sigma * normal());
  }

  /// Bernoulli trial.
  bool chance(double p) { return uniform() < p; }

  /// Forks an independent stream (for per-component substreams).
  Rng fork() { return Rng(next()); }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
};

}  // namespace cosched

// Annotated mutex wrappers for Clang's thread-safety analysis.
//
// libstdc++ ships std::mutex without capability attributes, so a
// GUARDED_BY(std::mutex) member is invisible to `-Wthread-safety`.  Mutex
// and MutexLock are zero-overhead wrappers carrying the attributes; all
// mutex-protected state in the threaded surface (net/, proto/, util/log)
// uses them so the CI clang job can prove lock discipline at compile time.
#pragma once

#include <mutex>

#include "util/thread_annotations.h"

namespace cosched {

/// std::mutex with capability annotations.  Same semantics, same cost.
class CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() ACQUIRE() { m_.lock(); }
  void unlock() RELEASE() { m_.unlock(); }
  bool try_lock() TRY_ACQUIRE(true) { return m_.try_lock(); }

 private:
  std::mutex m_;
};

/// RAII lock over Mutex — std::lock_guard with scoped-capability
/// annotations, so the analysis knows the capability is held for the
/// guard's lifetime.
class SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~MutexLock() RELEASE() { mu_.unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

}  // namespace cosched

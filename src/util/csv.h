// Minimal CSV writer for exporting bench series to plotting tools.
#pragma once

#include <fstream>
#include <initializer_list>
#include <string>
#include <vector>

namespace cosched {

/// Writes RFC-4180-style CSV rows, quoting cells that need it.
class CsvWriter {
 public:
  /// Opens (truncates) the given file.  Throws Error on failure.
  explicit CsvWriter(const std::string& path);

  void write_row(const std::vector<std::string>& cells);
  void write_row(std::initializer_list<std::string> cells);

  /// Escapes one cell per RFC 4180 (exposed for testing).
  static std::string escape(const std::string& cell);

 private:
  std::ofstream out_;
};

}  // namespace cosched

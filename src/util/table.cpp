#include "util/table.h"

#include <iomanip>
#include <ostream>
#include <sstream>

#include "util/csv.h"
#include "util/error.h"

namespace cosched {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {
  COSCHED_CHECK(!header_.empty());
}

void Table::add_row(std::vector<std::string> row) {
  COSCHED_CHECK_MSG(row.size() == header_.size(),
                    "row arity " << row.size() << " != header arity "
                                 << header_.size());
  rows_.push_back(Row{std::move(row), /*separator=*/false});
}

void Table::add_separator() { rows_.push_back(Row{{}, /*separator=*/true}); }

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const Row& r : rows_) {
    if (r.separator) continue;
    for (std::size_t c = 0; c < r.cells.size(); ++c)
      widths[c] = std::max(widths[c], r.cells[c].size());
  }

  auto print_rule = [&] {
    os << '+';
    for (std::size_t w : widths) os << std::string(w + 2, '-') << '+';
    os << '\n';
  };
  auto print_cells = [&](const std::vector<std::string>& cells) {
    os << '|';
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << ' ';
      if (c == 0)
        os << std::left << std::setw(static_cast<int>(widths[c])) << cells[c];
      else
        os << std::right << std::setw(static_cast<int>(widths[c])) << cells[c];
      os << " |";
    }
    os << '\n';
  };

  print_rule();
  print_cells(header_);
  print_rule();
  for (const Row& r : rows_) {
    if (r.separator)
      print_rule();
    else
      print_cells(r.cells);
  }
  print_rule();
}

std::string Table::to_string() const {
  std::ostringstream os;
  print(os);
  return os.str();
}

void Table::write_csv(CsvWriter& csv) const {
  csv.write_row(header_);
  for (const Row& r : rows_)
    if (!r.separator) csv.write_row(r.cells);
}

std::string format_double(double v, int decimals) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(decimals) << v;
  return os.str();
}

std::string format_count(long long v) {
  const bool neg = v < 0;
  unsigned long long u =
      neg ? 0ULL - static_cast<unsigned long long>(v)
          : static_cast<unsigned long long>(v);
  std::string digits = std::to_string(u);
  std::string out;
  int count = 0;
  for (auto it = digits.rbegin(); it != digits.rend(); ++it) {
    if (count != 0 && count % 3 == 0) out.push_back(',');
    out.push_back(*it);
    ++count;
  }
  if (neg) out.push_back('-');
  return std::string(out.rbegin(), out.rend());
}

std::string format_percent(double ratio, int decimals) {
  return format_double(ratio * 100.0, decimals) + "%";
}

}  // namespace cosched

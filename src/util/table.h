// ASCII table rendering for bench output.
//
// The bench binaries print the same rows/series the paper's figures report;
// this small formatter keeps that output aligned and diff-friendly.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

namespace cosched {

/// A simple left/right-aligned ASCII table.
///
/// Usage:
///   Table t({"scheme", "avg wait (min)"});
///   t.add_row({"HH", format_double(12.3)});
///   t.print(std::cout);
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  /// Appends a data row; must have the same arity as the header.
  void add_row(std::vector<std::string> row);

  /// Appends a horizontal separator line.
  void add_separator();

  std::size_t row_count() const { return rows_.size(); }

  /// Renders the table.  The first column is left-aligned, the rest right.
  void print(std::ostream& os) const;

  std::string to_string() const;

  /// Emits the header and data rows (separators skipped) as CSV.
  void write_csv(class CsvWriter& csv) const;

 private:
  struct Row {
    std::vector<std::string> cells;
    bool separator = false;
  };

  std::vector<std::string> header_;
  std::vector<Row> rows_;
};

/// Formats a double with the given number of decimal places.
std::string format_double(double v, int decimals = 2);

/// Formats an integer with thousands separators (e.g. 1,234,567).
std::string format_count(long long v);

/// Formats a ratio as a percentage string, e.g. 0.0457 -> "4.57%".
std::string format_percent(double ratio, int decimals = 2);

}  // namespace cosched

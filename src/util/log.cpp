#include "util/log.h"

#include <atomic>
#include <iostream>

#include "util/mutex.h"

namespace cosched {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kWarn};
Mutex g_sink_mutex;
LogSink g_sink GUARDED_BY(g_sink_mutex);  // empty = default stderr sink
}  // namespace

LogLevel log_level() { return g_level.load(std::memory_order_relaxed); }

void set_log_level(LogLevel level) {
  g_level.store(level, std::memory_order_relaxed);
}

void set_log_sink(LogSink sink) {
  MutexLock lock(g_sink_mutex);
  g_sink = std::move(sink);
}

const char* to_string(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}

namespace detail {
void emit(LogLevel level, const std::string& message) {
  MutexLock lock(g_sink_mutex);
  if (g_sink) {
    g_sink(level, message);
  } else {
    std::cerr << '[' << to_string(level) << "] " << message << '\n';
  }
}
}  // namespace detail

}  // namespace cosched

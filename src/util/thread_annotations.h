// Clang thread-safety analysis macros.
//
// These expand to Clang's `thread_safety` attributes under clang and to
// nothing elsewhere, so the annotations cost nothing on the GCC build while
// the CI clang job (`-Wthread-safety -Werror`) turns lock-discipline
// violations into compile errors.  libstdc++'s std::mutex carries no
// capability attributes, so the analysis cannot see through it; use the
// annotated cosched::Mutex / cosched::MutexLock wrappers (util/mutex.h)
// for any lock the analysis should track.
//
// Conventions (mirroring the Clang docs):
//   GUARDED_BY(mu)      data member readable/writable only with mu held
//   PT_GUARDED_BY(mu)   pointed-to data guarded by mu (the pointer is not)
//   REQUIRES(mu)        function must be called with mu held
//   ACQUIRE(mu)/RELEASE(mu)  function acquires/releases mu
//   EXCLUDES(mu)        function must NOT be called with mu held
#pragma once

#if defined(__clang__) && (!defined(SWIG))
#define COSCHED_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define COSCHED_THREAD_ANNOTATION(x)  // no-op on GCC/MSVC
#endif

#define CAPABILITY(x) COSCHED_THREAD_ANNOTATION(capability(x))

#define SCOPED_CAPABILITY COSCHED_THREAD_ANNOTATION(scoped_lockable)

#define GUARDED_BY(x) COSCHED_THREAD_ANNOTATION(guarded_by(x))

#define PT_GUARDED_BY(x) COSCHED_THREAD_ANNOTATION(pt_guarded_by(x))

#define ACQUIRED_BEFORE(...) \
  COSCHED_THREAD_ANNOTATION(acquired_before(__VA_ARGS__))

#define ACQUIRED_AFTER(...) \
  COSCHED_THREAD_ANNOTATION(acquired_after(__VA_ARGS__))

#define REQUIRES(...) \
  COSCHED_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

#define REQUIRES_SHARED(...) \
  COSCHED_THREAD_ANNOTATION(requires_shared_capability(__VA_ARGS__))

#define ACQUIRE(...) COSCHED_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

#define ACQUIRE_SHARED(...) \
  COSCHED_THREAD_ANNOTATION(acquire_shared_capability(__VA_ARGS__))

#define RELEASE(...) COSCHED_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

#define RELEASE_SHARED(...) \
  COSCHED_THREAD_ANNOTATION(release_shared_capability(__VA_ARGS__))

#define TRY_ACQUIRE(...) \
  COSCHED_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))

#define TRY_ACQUIRE_SHARED(...) \
  COSCHED_THREAD_ANNOTATION(try_acquire_shared_capability(__VA_ARGS__))

#define EXCLUDES(...) COSCHED_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

#define ASSERT_CAPABILITY(x) COSCHED_THREAD_ANNOTATION(assert_capability(x))

#define RETURN_CAPABILITY(x) COSCHED_THREAD_ANNOTATION(lock_returned(x))

#define NO_THREAD_SAFETY_ANALYSIS \
  COSCHED_THREAD_ANNOTATION(no_thread_safety_analysis)

#include "util/stats.h"

#include <algorithm>
#include <cmath>

namespace cosched {

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double RunningStats::ci95_halfwidth() const {
  if (n_ < 2) return 0.0;
  return 1.96 * stddev() / std::sqrt(static_cast<double>(n_));
}

void RunningStats::merge(const RunningStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double n = na + nb;
  mean_ += delta * nb / n;
  m2_ += other.m2_ + delta * delta * na * nb / n;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  n_ += other.n_;
}

double percentile(std::vector<double> values, double p) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  if (p <= 0.0) return values.front();
  if (p >= 100.0) return values.back();
  const double rank = p / 100.0 * static_cast<double>(values.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const double frac = rank - static_cast<double>(lo);
  if (lo + 1 >= values.size()) return values.back();
  return values[lo] * (1.0 - frac) + values[lo + 1] * frac;
}

double mean_of(const std::vector<double>& values) {
  if (values.empty()) return 0.0;
  double s = 0.0;
  for (double v : values) s += v;
  return s / static_cast<double>(values.size());
}

}  // namespace cosched

// Fixed fork-join worker pool for the parallel simulation engine.
//
// A WorkerPool owns N helper threads that sit parked on a condition
// variable.  run(fn) publishes one job, executes fn(0) on the calling
// thread, has every helper execute fn(slot) for slot = 1..N, and returns
// once all helpers are done — a barrier on both sides.  The pool is built
// on the annotated cosched::Mutex so the clang thread-safety analysis
// proves the lock discipline at compile time; condition variables use
// std::condition_variable_any, which accepts the annotated wrapper
// directly.
//
// The caller is responsible for giving concurrent fn invocations disjoint
// work (the engine hands each worker whole event lanes); the pool itself
// only synchronizes job hand-off and completion.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <thread>
#include <vector>

#include "util/mutex.h"

namespace cosched {

class WorkerPool {
 public:
  /// Spawns `helpers` parked threads (0 is allowed: run() then just
  /// executes fn(0) inline).
  explicit WorkerPool(unsigned helpers);
  ~WorkerPool();

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  /// Runs `fn(slot)` on every thread of the pool: slot 0 on the calling
  /// thread, slots 1..helpers() on the helpers.  Returns after every
  /// invocation finished.  Not reentrant.
  void run(const std::function<void(unsigned)>& fn);

  unsigned helpers() const { return static_cast<unsigned>(threads_.size()); }

 private:
  void worker_main(unsigned slot);

  Mutex mu_;
  std::condition_variable_any work_cv_;  ///< signalled on new job / stop
  std::condition_variable_any done_cv_;  ///< signalled when a job drains
  const std::function<void(unsigned)>* job_ GUARDED_BY(mu_) = nullptr;
  std::uint64_t epoch_ GUARDED_BY(mu_) = 0;  ///< bumped per published job
  unsigned remaining_ GUARDED_BY(mu_) = 0;   ///< helpers still running job_
  bool stop_ GUARDED_BY(mu_) = false;
  std::vector<std::thread> threads_;
};

}  // namespace cosched

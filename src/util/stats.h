// Streaming and batch statistics used by the metric collectors and benches.
#pragma once

#include <cstddef>
#include <vector>

namespace cosched {

/// Welford online mean/variance accumulator.
class RunningStats {
 public:
  void add(double x);

  std::size_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  double variance() const;
  double stddev() const;
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }
  double sum() const { return sum_; }

  /// Half-width of the ~95% normal-approximation confidence interval.
  double ci95_halfwidth() const;

  /// Merges another accumulator into this one (parallel reduction).
  void merge(const RunningStats& other);

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Returns the p-th percentile (0..100) by linear interpolation.
/// The input vector is copied; an empty input yields 0.
double percentile(std::vector<double> values, double p);

/// Arithmetic mean of a vector; 0 for empty input.
double mean_of(const std::vector<double>& values);

}  // namespace cosched

// Metric extraction — the paper's four evaluation metrics (§V-C):
//   wait        : start - submit
//   slowdown    : (wait + runtime) / runtime
//   sync time   : extra wait a paired job spends on coscheduling
//                 (start - first_ready)
//   service unit loss : node-hours spent in hold state, and the equivalent
//                 lost system-utilization rate
#pragma once

#include <string>
#include <vector>

#include "sched/scheduler.h"
#include "util/types.h"

namespace cosched {

struct SystemMetrics {
  std::string system;

  std::size_t jobs_total = 0;
  std::size_t jobs_finished = 0;
  std::size_t paired_jobs = 0;

  double avg_wait_minutes = 0.0;
  double max_wait_minutes = 0.0;
  double avg_slowdown = 0.0;
  /// Bounded slowdown: max(response / max(runtime, 10 min), 1); standard
  /// companion metric that damps the influence of very short jobs.
  double avg_bounded_slowdown = 0.0;

  /// Average/max synchronization time over *paired* jobs only.
  double avg_sync_minutes = 0.0;
  double max_sync_minutes = 0.0;

  /// Service unit loss: node-hours spent holding.
  double held_node_hours = 0.0;
  /// Held node-time as a fraction of total capacity-time ("lost sys. util").
  double held_fraction = 0.0;

  /// Delivered utilization (busy node-time / capacity-time).
  double utilization = 0.0;

  Time makespan = 0;
  long long total_yields = 0;
  long long total_forced_releases = 0;

  // -- degraded-mode accounting (filled by CoupledSim, not collect_metrics;
  // nonzero only when transport faults occurred during the run) ----------
  /// Scheduling decisions taken with a mate status of `unknown` because a
  /// peer call failed (transport down, dropped, timed out, or corrupted).
  long long unknown_status_decisions = 0;
  /// Paired jobs that started without mate confirmation (§IV-C rule).
  long long unsync_starts = 0;
  /// Forced hold-releases of jobs whose decision path saw a transport
  /// fault — loss-of-capability attributable to the fault, not the policy.
  long long degraded_forced_releases = 0;
};

/// Collects metrics from a scheduler after a simulation ran to `end_time`.
SystemMetrics collect_metrics(const Scheduler& sched, Time end_time,
                              std::string system_name);

/// Per-run difference helper for the figures' "difference" series.
struct Delta {
  double base;
  double value;
  double difference() const { return value - base; }
};

}  // namespace cosched

#include "metrics/report.h"

#include <algorithm>

namespace cosched {

SystemMetrics collect_metrics(const Scheduler& sched, Time end_time,
                              std::string system_name) {
  SystemMetrics m;
  m.system = std::move(system_name);
  m.makespan = end_time;

  double wait_sum = 0, slow_sum = 0, bslow_sum = 0;
  double sync_sum = 0;
  constexpr double kBound = 600.0;  // 10-minute bounded-slowdown floor

  std::size_t finished_paired = 0;
  sched.for_each_job([&](JobId id, const RuntimeJob& job) {
    (void)id;
    ++m.jobs_total;
    m.total_yields += job.yield_count;
    m.total_forced_releases += job.forced_releases;
    if (job.spec.is_paired()) ++m.paired_jobs;
    if (job.state != JobState::kFinished || job.start == kNoTime) return;
    ++m.jobs_finished;

    const auto wait = static_cast<double>(job.wait_time());
    wait_sum += wait;
    m.max_wait_minutes = std::max(m.max_wait_minutes, to_minutes(job.wait_time()));

    slow_sum += job.slowdown();
    const double resp = static_cast<double>(job.response_time());
    bslow_sum += std::max(
        1.0, resp / std::max(static_cast<double>(job.spec.runtime), kBound));

    if (job.spec.is_paired()) {
      ++finished_paired;
      const auto sync = static_cast<double>(job.sync_time());
      sync_sum += sync;
      m.max_sync_minutes =
          std::max(m.max_sync_minutes, to_minutes(job.sync_time()));
    }
  });

  if (m.jobs_finished > 0) {
    const auto n = static_cast<double>(m.jobs_finished);
    m.avg_wait_minutes = wait_sum / n / kMinute;
    m.avg_slowdown = slow_sum / n;
    m.avg_bounded_slowdown = bslow_sum / n;
  }

  // Sync averages over finished paired jobs.
  if (finished_paired > 0)
    m.avg_sync_minutes =
        sync_sum / static_cast<double>(finished_paired) / kMinute;

  m.held_node_hours = sched.pool().held_node_seconds() / kHour;
  m.held_fraction = sched.pool().held_fraction(end_time);
  m.utilization = sched.pool().utilization(end_time);
  return m;
}

}  // namespace cosched

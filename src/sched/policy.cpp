#include "sched/policy.h"

#include <cmath>

#include "util/error.h"

namespace cosched {

const char* to_string(JobState s) {
  switch (s) {
    case JobState::kQueued: return "queued";
    case JobState::kHolding: return "holding";
    case JobState::kRunning: return "running";
    case JobState::kFinished: return "finished";
  }
  return "?";
}

double FcfsPolicy::score(const RuntimeJob& job, Time now) const {
  (void)now;
  // Earlier submit = higher score; boost breaks FCFS ties upward.
  return -static_cast<double>(job.spec.submit) + job.priority_boost;
}

double WfpPolicy::score(const RuntimeJob& job, Time now) const {
  const double wait =
      static_cast<double>(now > job.spec.submit ? now - job.spec.submit : 0);
  const double wall = static_cast<double>(
      job.spec.walltime > 0 ? job.spec.walltime : 1);
  return std::pow(wait / wall, exponent_) *
             static_cast<double>(job.spec.nodes) +
         job.priority_boost;
}

double SjfPolicy::score(const RuntimeJob& job, Time now) const {
  (void)now;
  return -static_cast<double>(job.spec.walltime) + job.priority_boost;
}

double LxfPolicy::score(const RuntimeJob& job, Time now) const {
  const double wait =
      static_cast<double>(now > job.spec.submit ? now - job.spec.submit : 0);
  const double wall =
      static_cast<double>(job.spec.walltime > 0 ? job.spec.walltime : 1);
  return (wait + wall) / wall + job.priority_boost;
}

std::unique_ptr<PriorityPolicy> make_policy(const std::string& name) {
  if (name == "fcfs") return std::make_unique<FcfsPolicy>();
  if (name == "wfp") return std::make_unique<WfpPolicy>();
  if (name == "sjf") return std::make_unique<SjfPolicy>();
  if (name == "lxf") return std::make_unique<LxfPolicy>();
  throw ParseError("unknown scheduling policy: " + name);
}

}  // namespace cosched

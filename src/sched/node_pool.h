// Node pool: tracks busy (running) and held (coscheduling-hold) nodes and
// integrates node-time for the utilization and service-unit-loss metrics.
//
// "Held" nodes are the paper's hold scheme: a job occupies its assigned
// nodes while waiting for its remote mate.  The scheduler treats held nodes
// exactly like busy ones ("the scheduler treats the held nodes as busy");
// they are accounted separately because held node-hours are the paper's
// *service unit loss* metric (Figs. 6 and 10).
#pragma once

#include <memory>

#include "sched/allocation.h"
#include "util/types.h"

namespace cosched {

class NodePool {
 public:
  /// A pool of `capacity` nodes.  `model` defines request→charge rounding;
  /// nullptr means plain (charge == request).
  explicit NodePool(NodeCount capacity,
                    std::shared_ptr<const AllocationModel> model = nullptr);

  NodeCount capacity() const { return capacity_; }
  NodeCount busy() const { return busy_; }
  NodeCount held() const { return held_; }
  NodeCount free() const { return capacity_ - busy_ - held_; }

  /// Nodes charged for a request under the allocation model.
  NodeCount charged(NodeCount requested) const;

  bool can_allocate(NodeCount charged_nodes) const {
    return charged_nodes <= free();
  }

  /// Moves `n` charged nodes free -> busy (job start).
  void allocate(NodeCount n, Time now);

  /// Moves `n` charged nodes busy -> free (job end).
  void release(NodeCount n, Time now);

  /// Moves `n` charged nodes free -> held (coscheduling hold).
  void hold(NodeCount n, Time now);

  /// Moves `n` charged nodes held -> free (forced hold release).
  void unhold(NodeCount n, Time now);

  /// Moves `n` charged nodes held -> busy (holding job's mate became ready).
  void hold_to_busy(NodeCount n, Time now);

  /// Integrates accounting up to `now` without changing state.
  void advance_to(Time now);

  /// Node-seconds spent busy (running jobs) so far.
  double busy_node_seconds() const { return busy_ns_; }

  /// Node-seconds spent held — the service-unit loss integrand.
  double held_node_seconds() const { return held_ns_; }

  /// Delivered utilization over [0, now]: busy node-seconds / (capacity*now).
  double utilization(Time now) const;

  /// Held-node fraction of total capacity-time (the Fig. 6/10 "lost system
  /// utilization rate").
  double held_fraction(Time now) const;

  /// Raw accounting state for snapshot/restore (core/journal.h).  Capacity
  /// and allocation model are construction-time facts and are not included.
  struct Accounting {
    NodeCount busy = 0;
    NodeCount held = 0;
    Time last_update = 0;
    double busy_ns = 0.0;
    double held_ns = 0.0;
  };
  Accounting accounting() const {
    return {busy_, held_, last_update_, busy_ns_, held_ns_};
  }
  void restore(const Accounting& a) {
    busy_ = a.busy;
    held_ = a.held;
    last_update_ = a.last_update;
    busy_ns_ = a.busy_ns;
    held_ns_ = a.held_ns;
  }

 private:
  NodeCount capacity_;
  std::shared_ptr<const AllocationModel> model_;
  NodeCount busy_ = 0;
  NodeCount held_ = 0;
  Time last_update_ = 0;
  double busy_ns_ = 0.0;
  double held_ns_ = 0.0;
};

}  // namespace cosched

#include "sched/scheduler.h"

#include <algorithm>

#include "proto/message.h"
#include "sched/profile.h"
#include "util/error.h"
#include "util/log.h"

namespace cosched {

Scheduler::Scheduler(NodeCount capacity, std::unique_ptr<PriorityPolicy> policy,
                     SchedulerConfig config,
                     std::shared_ptr<const AllocationModel> alloc)
    : pool_(capacity, std::move(alloc)),
      policy_(std::move(policy)),
      config_(config) {
  COSCHED_CHECK(policy_ != nullptr);
}

void Scheduler::submit(const JobSpec& spec, Time now) {
  COSCHED_CHECK_MSG(spec.id != kNoJob, "job must have an id");
  COSCHED_CHECK_MSG(!jobs_.count(spec.id) && !archived_.count(spec.id),
                    "duplicate submit of job " << spec.id);
  COSCHED_CHECK_MSG(pool_.charged(spec.nodes) <= pool_.capacity(),
                    "job " << spec.id << " cannot fit the machine");
  (void)now;
  RuntimeJob job;
  job.spec = spec;
  job.state = JobState::kQueued;
  jobs_.emplace(spec.id, job);
  queue_pos_.emplace(spec.id, queued_.size());
  queued_.push_back(spec.id);
  touch();
}

bool Scheduler::eligible(const RuntimeJob& job, Time now) const {
  if (!job.spec.has_dependency()) return true;
  // Finished dependencies live in the archive; a dependency still in the
  // live table (or not yet submitted) cannot be satisfied.
  auto it = archived_.find(job.spec.after);
  if (it == archived_.end()) return false;
  return now >= it->second.end + job.spec.after_delay;
}

std::vector<JobId> Scheduler::priority_order(Time now) const {
  if (order_time_ == now && order_epoch_ == epoch_) return order_cache_;
  struct Key {
    JobId id;
    bool demoted;
    double score;
    Time submit;
  };
  std::vector<Key> keys;
  keys.reserve(queued_.size());
  for (JobId id : queued_) {
    const RuntimeJob& j = jobs_.at(id);
    if (!eligible(j, now)) continue;  // waiting on a dependency
    keys.push_back(Key{id, j.demoted, policy_->score(j, now), j.spec.submit});
  }
  std::sort(keys.begin(), keys.end(), [](const Key& a, const Key& b) {
    if (a.demoted != b.demoted) return !a.demoted;  // demoted sort last
    if (a.score != b.score) return a.score > b.score;
    if (a.submit != b.submit) return a.submit < b.submit;
    return a.id < b.id;
  });
  order_cache_.clear();
  order_cache_.reserve(keys.size());
  for (const Key& k : keys) order_cache_.push_back(k.id);
  order_time_ = now;
  order_epoch_ = epoch_;
  return order_cache_;
}

Scheduler::Shadow Scheduler::compute_shadow(const RuntimeJob& head,
                                            Time now) const {
  Shadow s;
  const NodeCount need = pool_.charged(head.spec.nodes);
  NodeCount cum = pool_.free();
  // Running jobs free their charged nodes no later than start + walltime;
  // the index is already ordered by that end.  Holding jobs have no bounded
  // end; they contribute nothing (conservative).
  for (const auto& [t, id] : running_ends_) {
    cum += jobs_.at(id).allocated;
    if (cum >= need) {
      s.time = std::max(t, now);
      s.extra = cum - need;
      return s;
    }
  }
  // Head can never fit from running-job completions alone (held nodes block
  // it).  No reservation is possible; allow free backfilling.
  s.time = kNoTime;
  s.extra = pool_.free();
  return s;
}

RunDecision Scheduler::decide(RuntimeJob& job, NodeCount charged, Time now,
                              const RunJobHook& hook) {
  job.allocated = charged;
  if (job.first_ready == kNoTime) job.first_ready = now;
  const RunDecision d = hook ? hook(job) : RunDecision::kStart;
  switch (d) {
    case RunDecision::kStart:
      pool_.allocate(charged, now);
      do_start(job, now);
      break;
    case RunDecision::kHold:
      pool_.hold(charged, now);
      job.state = JobState::kHolding;
      job.hold_since = now;
      remove_from_queue(job.spec.id);
      holding_.insert(job.spec.id);
      touch();
      break;
    case RunDecision::kYield:
      job.allocated = 0;
      ++job.yield_count;
      touch();  // the hook may have raised priority_boost
      break;
    case RunDecision::kSkip:
      // By contract side-effect free (tryStartMate contexts); the cached
      // priority order stays valid.
      job.allocated = 0;
      break;
  }
  return d;
}

void Scheduler::do_start(RuntimeJob& job, Time now) {
  job.state = JobState::kRunning;
  job.start = now;
  if (job.first_ready == kNoTime) job.first_ready = now;
  job.hold_since = kNoTime;
  job.demoted = false;
  remove_from_queue(job.spec.id);
  running_ends_.emplace(now + job.spec.walltime, job.spec.id);
  touch();
  if (on_start_) on_start_(job);
}

std::vector<JobId> Scheduler::iterate_conservative(Time now,
                                                   const RunJobHook& hook) {
  std::vector<JobId> started;
  // Rebuild the availability timeline: running jobs free their nodes at
  // start + walltime; holding jobs have no bounded end and occupy their
  // nodes out to the planning horizon.
  constexpr Duration kHorizon = 10LL * 365 * kDay;
  TimelineProfile profile(pool_.capacity());
  for (const auto& [end, id] : running_ends_) {
    if (end > now) profile.reserve(now, end - now, jobs_.at(id).allocated);
  }
  for (JobId id : holding_)
    profile.reserve(now, kHorizon, jobs_.at(id).allocated);

  for (JobId id : priority_order(now)) {
    auto it = jobs_.find(id);
    if (it == jobs_.end()) continue;
    RuntimeJob& job = it->second;
    if (job.state != JobState::kQueued) continue;
    const NodeCount charged = pool_.charged(job.spec.nodes);
    const Time planned = profile.earliest_fit(now, job.spec.walltime, charged);
    if (planned > now) {
      // Reserved for later; no later job may take these nodes first.
      profile.reserve(planned, job.spec.walltime, charged);
      continue;
    }
    const RunDecision d = decide(job, charged, now, hook);
    switch (d) {
      case RunDecision::kStart:
        started.push_back(id);
        profile.reserve(now, job.spec.walltime, charged);
        break;
      case RunDecision::kHold:
        profile.reserve(now, kHorizon, charged);
        break;
      case RunDecision::kYield:
      case RunDecision::kSkip:
        break;  // slot released; later jobs may claim it
    }
  }
  bool any_demoted = false;
  for (JobId id : queued_) {
    RuntimeJob& j = jobs_.at(id);
    if (j.demoted) {
      j.demoted = false;
      any_demoted = true;
    }
  }
  if (any_demoted) touch();
  return started;
}

std::vector<JobId> Scheduler::iterate(Time now, const RunJobHook& hook) {
  if (config_.backfill && config_.conservative)
    return iterate_conservative(now, hook);
  std::vector<JobId> started;
  const std::vector<JobId> order = priority_order(now);

  bool blocked = false;
  Shadow shadow;
  for (JobId id : order) {
    auto it = jobs_.find(id);
    if (it == jobs_.end()) continue;
    RuntimeJob& job = it->second;
    if (job.state != JobState::kQueued) continue;  // held/started via hook side effects

    const NodeCount charged = pool_.charged(job.spec.nodes);
    const bool fits = pool_.can_allocate(charged);

    if (!blocked) {
      if (fits) {
        if (decide(job, charged, now, hook) == RunDecision::kStart)
          started.push_back(id);
        continue;
      }
      // Head job blocks: reserve its shadow window, then backfill.
      blocked = true;
      if (!config_.backfill) break;
      shadow = compute_shadow(job, now);
      continue;
    }

    // Backfill phase.
    if (!fits) continue;
    const bool ends_before_shadow =
        shadow.time != kNoTime && now + job.spec.walltime <= shadow.time;
    const bool within_extra = charged <= shadow.extra;
    if (shadow.time != kNoTime && !ends_before_shadow && !within_extra)
      continue;
    const RunDecision d = decide(job, charged, now, hook);
    if (d == RunDecision::kStart) started.push_back(id);
    // Consuming nodes past the shadow (or holding, whose end is unknown)
    // draws down the extra-node budget.
    if ((d == RunDecision::kStart || d == RunDecision::kHold) &&
        (!ends_before_shadow || d == RunDecision::kHold))
      shadow.extra = std::max<NodeCount>(0, shadow.extra - charged);
  }

  // Demotion lasts exactly one iteration (paper §IV-E1).
  bool any_demoted = false;
  for (JobId id : queued_) {
    RuntimeJob& j = jobs_.at(id);
    if (j.demoted) {
      j.demoted = false;
      any_demoted = true;
    }
  }
  if (any_demoted) touch();
  return started;
}

bool Scheduler::try_start_specific(JobId id, Time now, const RunJobHook& hook) {
  auto it = jobs_.find(id);
  if (it == jobs_.end()) return false;
  RuntimeJob& job = it->second;
  if (job.state != JobState::kQueued) return false;
  if (!eligible(job, now)) return false;

  const NodeCount charged = pool_.charged(job.spec.nodes);
  if (!pool_.can_allocate(charged)) return false;

  if (config_.backfill && config_.respect_reservation_on_try) {
    // Find the blocked queue head; starting `id` must not delay it.
    const std::vector<JobId> order = priority_order(now);
    for (JobId hid : order) {
      if (hid == id) break;  // `id` outranks everything unfitting before it
      const RuntimeJob& head = jobs_.at(hid);
      if (head.state != JobState::kQueued) continue;
      if (pool_.can_allocate(pool_.charged(head.spec.nodes))) continue;
      const Shadow shadow = compute_shadow(head, now);
      const bool ends_before =
          shadow.time != kNoTime && now + job.spec.walltime <= shadow.time;
      const bool within_extra = charged <= shadow.extra;
      if (shadow.time != kNoTime && !ends_before && !within_extra)
        return false;
      break;
    }
  }

  return decide(job, charged, now, hook) == RunDecision::kStart;
}

void Scheduler::start_holding(JobId id, Time now) {
  auto it = jobs_.find(id);
  COSCHED_CHECK_MSG(it != jobs_.end(), "unknown job " << id);
  RuntimeJob& job = it->second;
  COSCHED_CHECK_MSG(job.state == JobState::kHolding,
                    "job " << id << " is not holding");
  pool_.hold_to_busy(job.allocated, now);
  holding_.erase(id);
  do_start(job, now);
}

void Scheduler::release_hold(JobId id, Time now) {
  auto it = jobs_.find(id);
  COSCHED_CHECK_MSG(it != jobs_.end(), "unknown job " << id);
  RuntimeJob& job = it->second;
  COSCHED_CHECK_MSG(job.state == JobState::kHolding,
                    "job " << id << " is not holding");
  pool_.unhold(job.allocated, now);
  job.allocated = 0;
  job.hold_since = kNoTime;
  job.state = JobState::kQueued;
  job.demoted = true;  // lowest priority for the next iteration
  ++job.forced_releases;
  holding_.erase(id);
  queue_pos_.emplace(id, queued_.size());
  queued_.push_back(id);
  touch();
}

void Scheduler::finish(JobId id, Time now) {
  auto it = jobs_.find(id);
  COSCHED_CHECK_MSG(it != jobs_.end(), "unknown job " << id);
  RuntimeJob& job = it->second;
  COSCHED_CHECK_MSG(job.state == JobState::kRunning,
                    "job " << id << " is not running");
  pool_.release(job.allocated, now);
  erase_running_end(job);
  job.state = JobState::kFinished;
  job.end = now;
  archive(id, std::move(job));
  jobs_.erase(it);
  touch();  // archived dependencies may unblock queued jobs
}

void Scheduler::kill(JobId id, Time now) {
  auto it = jobs_.find(id);
  if (it == jobs_.end()) return;  // unknown or already archived
  RuntimeJob& job = it->second;
  switch (job.state) {
    case JobState::kQueued:
      remove_from_queue(id);
      break;
    case JobState::kHolding:
      pool_.unhold(job.allocated, now);
      holding_.erase(id);
      break;
    case JobState::kRunning:
      pool_.release(job.allocated, now);
      erase_running_end(job);
      break;
    case JobState::kFinished:
      return;  // unreachable: finished jobs are archived
  }
  job.state = JobState::kFinished;
  job.end = now;
  archive(id, std::move(job));
  jobs_.erase(it);
  touch();
}

const RuntimeJob* Scheduler::find(JobId id) const {
  auto it = jobs_.find(id);
  if (it != jobs_.end()) return &it->second;
  auto ar = archived_.find(id);
  return ar == archived_.end() ? nullptr : &ar->second;
}

RuntimeJob* Scheduler::find_mut(JobId id) {
  auto it = jobs_.find(id);
  if (it != jobs_.end()) return &it->second;
  auto ar = archived_.find(id);
  return ar == archived_.end() ? nullptr : &ar->second;
}

std::vector<JobId> Scheduler::holding_ids() const {
  return std::vector<JobId>(holding_.begin(), holding_.end());
}

void Scheduler::remove_from_queue(JobId id) {
  auto it = queue_pos_.find(id);
  if (it == queue_pos_.end()) return;
  const std::size_t pos = it->second;
  queue_pos_.erase(it);
  const JobId last = queued_.back();
  queued_.pop_back();
  if (last != id) {
    queued_[pos] = last;
    queue_pos_[last] = pos;
  }
}

void Scheduler::archive(JobId id, RuntimeJob&& job) {
  archived_.emplace(id, std::move(job));
}

void Scheduler::erase_running_end(const RuntimeJob& job) {
  const Time key = job.start + job.spec.walltime;
  auto [lo, hi] = running_ends_.equal_range(key);
  for (auto it = lo; it != hi; ++it) {
    if (it->second == job.spec.id) {
      running_ends_.erase(it);
      return;
    }
  }
  COSCHED_CHECK_MSG(false, "running job " << job.spec.id
                                          << " missing from end index");
}

void Scheduler::snapshot(WireWriter& w) const {
  const NodePool::Accounting a = pool_.accounting();
  w.put_i64(a.busy);
  w.put_i64(a.held);
  w.put_i64(a.last_update);
  w.put_double(a.busy_ns);
  w.put_double(a.held_ns);

  const auto write_jobs =
      [&w](const std::unordered_map<JobId, RuntimeJob>& table) {
        std::vector<JobId> ids;
        ids.reserve(table.size());
        // cosched-lint: ordered(ids are sorted before encoding)
        for (const auto& [id, job] : table) ids.push_back(id);
        std::sort(ids.begin(), ids.end());
        w.put_u64(ids.size());
        for (JobId id : ids) {
          const RuntimeJob& j = table.at(id);
          encode_job_spec(w, j.spec);
          w.put_u8(static_cast<std::uint8_t>(j.state));
          w.put_i64(j.start);
          w.put_i64(j.end);
          w.put_i64(j.first_ready);
          w.put_i64(j.hold_since);
          w.put_i64(j.allocated);
          w.put_i64(j.yield_count);
          w.put_i64(j.forced_releases);
          w.put_bool(j.demoted);
          w.put_double(j.priority_boost);
        }
      };
  write_jobs(jobs_);
  write_jobs(archived_);

  // The running-end index in iteration order: equal walltime-end keys keep
  // multimap insertion (= start) order, which the shadow/profile scans
  // depend on for determinism.
  w.put_u64(running_ends_.size());
  for (const auto& [end, id] : running_ends_) w.put_i64(id);
}

void Scheduler::restore(WireReader& r) {
  NodePool::Accounting a;
  a.busy = r.get_i64();
  a.held = r.get_i64();
  a.last_update = r.get_i64();
  a.busy_ns = r.get_double();
  a.held_ns = r.get_double();
  pool_.restore(a);

  jobs_.clear();
  archived_.clear();
  queued_.clear();
  queue_pos_.clear();
  running_ends_.clear();
  holding_.clear();

  const auto read_jobs = [&r](std::unordered_map<JobId, RuntimeJob>& table) {
    const std::uint64_t n = r.get_u64();
    for (std::uint64_t i = 0; i < n; ++i) {
      RuntimeJob j;
      j.spec = decode_job_spec(r);
      const std::uint8_t s = r.get_u8();
      COSCHED_CHECK_MSG(s <= static_cast<std::uint8_t>(JobState::kFinished),
                        "snapshot: bad job state " << int(s));
      j.state = static_cast<JobState>(s);
      j.start = r.get_i64();
      j.end = r.get_i64();
      j.first_ready = r.get_i64();
      j.hold_since = r.get_i64();
      j.allocated = r.get_i64();
      j.yield_count = static_cast<int>(r.get_i64());
      j.forced_releases = static_cast<int>(r.get_i64());
      j.demoted = r.get_bool();
      j.priority_boost = r.get_double();
      table.emplace(j.spec.id, std::move(j));
    }
  };
  read_jobs(jobs_);
  read_jobs(archived_);

  // Rebuild indices.  Queue order is behaviorally irrelevant (priority_order
  // is a total order with an id tiebreak), so sorted-by-id is canonical.
  std::vector<JobId> qids;
  std::size_t running = 0;
  // cosched-lint: ordered(qids are sorted below; index inserts are keyed)
  for (const auto& [id, j] : jobs_) {
    switch (j.state) {
      case JobState::kQueued: qids.push_back(id); break;
      case JobState::kHolding: holding_.insert(id); break;
      case JobState::kRunning: ++running; break;
      case JobState::kFinished:
        COSCHED_CHECK_MSG(false, "snapshot: finished job " << id
                                                           << " in live table");
    }
  }
  std::sort(qids.begin(), qids.end());
  for (JobId id : qids) {
    queue_pos_.emplace(id, queued_.size());
    queued_.push_back(id);
  }
  const std::uint64_t nrun = r.get_u64();
  COSCHED_CHECK_MSG(nrun == running, "snapshot: running-end index count "
                                         << nrun << " != running jobs "
                                         << running);
  for (std::uint64_t i = 0; i < nrun; ++i) {
    const JobId id = r.get_i64();
    const RuntimeJob& j = jobs_.at(id);
    COSCHED_CHECK_MSG(j.state == JobState::kRunning,
                      "snapshot: job " << id << " in end index not running");
    running_ends_.emplace(j.start + j.spec.walltime, id);
  }
  touch();
}

void Scheduler::replay_start(JobId id, Time t, Time first_ready,
                             NodeCount allocated) {
  auto it = jobs_.find(id);
  COSCHED_CHECK_MSG(it != jobs_.end(), "replay start: unknown job " << id);
  RuntimeJob& job = it->second;
  COSCHED_CHECK_MSG(job.state == JobState::kQueued,
                    "replay start: job " << id << " not queued");
  job.allocated = allocated;
  job.first_ready = first_ready;
  pool_.allocate(allocated, t);
  do_start(job, t);
}

void Scheduler::replay_hold(JobId id, Time t, Time first_ready,
                            NodeCount allocated) {
  auto it = jobs_.find(id);
  COSCHED_CHECK_MSG(it != jobs_.end(), "replay hold: unknown job " << id);
  RuntimeJob& job = it->second;
  COSCHED_CHECK_MSG(job.state == JobState::kQueued,
                    "replay hold: job " << id << " not queued");
  job.allocated = allocated;
  job.first_ready = first_ready;
  pool_.hold(allocated, t);
  job.state = JobState::kHolding;
  job.hold_since = t;
  remove_from_queue(id);
  holding_.insert(id);
  touch();
}

void Scheduler::replay_yield(JobId id, Time first_ready, double boost) {
  auto it = jobs_.find(id);
  COSCHED_CHECK_MSG(it != jobs_.end(), "replay yield: unknown job " << id);
  RuntimeJob& job = it->second;
  COSCHED_CHECK_MSG(job.state == JobState::kQueued,
                    "replay yield: job " << id << " not queued");
  job.first_ready = first_ready;
  ++job.yield_count;
  job.priority_boost = boost;
  touch();
}

void Scheduler::replay_clear_demotions() {
  bool any = false;
  for (JobId id : queued_) {
    RuntimeJob& j = jobs_.at(id);
    if (j.demoted) {
      j.demoted = false;
      any = true;
    }
  }
  if (any) touch();
}

void Scheduler::validate_indices() const {
  std::size_t queued = 0, holding = 0, running = 0;
  // cosched-lint: ordered(pure assertions; no output or state depends on order)
  for (const auto& [id, j] : jobs_) {
    switch (j.state) {
      case JobState::kQueued: {
        ++queued;
        auto it = queue_pos_.find(id);
        COSCHED_CHECK_MSG(it != queue_pos_.end() &&
                              queued_.at(it->second) == id,
                          "queued job " << id << " missing from queue index");
        break;
      }
      case JobState::kHolding:
        ++holding;
        COSCHED_CHECK_MSG(holding_.count(id),
                          "holding job " << id << " missing from hold index");
        break;
      case JobState::kRunning: {
        ++running;
        bool found = false;
        auto [lo, hi] = running_ends_.equal_range(j.start + j.spec.walltime);
        for (auto it = lo; it != hi; ++it) found |= it->second == id;
        COSCHED_CHECK_MSG(found,
                          "running job " << id << " missing from end index");
        break;
      }
      case JobState::kFinished:
        COSCHED_CHECK_MSG(false, "finished job " << id << " in live table");
    }
  }
  COSCHED_CHECK_MSG(queued == queued_.size() && queued == queue_pos_.size(),
                    "queue index size mismatch");
  COSCHED_CHECK_MSG(holding == holding_.size(), "hold index size mismatch");
  COSCHED_CHECK_MSG(running == running_ends_.size(),
                    "running-end index size mismatch");
  // cosched-lint: ordered(pure assertions; no output or state depends on order)
  for (const auto& [id, j] : archived_)
    COSCHED_CHECK_MSG(j.state == JobState::kFinished,
                      "archived job " << id << " not finished");
}

}  // namespace cosched

#include "sched/scheduler.h"

#include <algorithm>

#include "sched/profile.h"
#include "util/error.h"
#include "util/log.h"

namespace cosched {

Scheduler::Scheduler(NodeCount capacity, std::unique_ptr<PriorityPolicy> policy,
                     SchedulerConfig config,
                     std::shared_ptr<const AllocationModel> alloc)
    : pool_(capacity, std::move(alloc)),
      policy_(std::move(policy)),
      config_(config) {
  COSCHED_CHECK(policy_ != nullptr);
}

void Scheduler::submit(const JobSpec& spec, Time now) {
  COSCHED_CHECK_MSG(spec.id != kNoJob, "job must have an id");
  COSCHED_CHECK_MSG(!jobs_.count(spec.id),
                    "duplicate submit of job " << spec.id);
  COSCHED_CHECK_MSG(pool_.charged(spec.nodes) <= pool_.capacity(),
                    "job " << spec.id << " cannot fit the machine");
  (void)now;
  RuntimeJob job;
  job.spec = spec;
  job.state = JobState::kQueued;
  jobs_.emplace(spec.id, job);
  queued_.push_back(spec.id);
}

bool Scheduler::eligible(const RuntimeJob& job, Time now) const {
  if (!job.spec.has_dependency()) return true;
  auto it = jobs_.find(job.spec.after);
  if (it == jobs_.end()) return false;  // dependency not yet submitted
  const RuntimeJob& dep = it->second;
  if (dep.state != JobState::kFinished) return false;
  return now >= dep.end + job.spec.after_delay;
}

std::vector<JobId> Scheduler::priority_order(Time now) const {
  struct Key {
    JobId id;
    bool demoted;
    double score;
    Time submit;
  };
  std::vector<Key> keys;
  keys.reserve(queued_.size());
  for (JobId id : queued_) {
    const RuntimeJob& j = jobs_.at(id);
    if (!eligible(j, now)) continue;  // waiting on a dependency
    keys.push_back(Key{id, j.demoted, policy_->score(j, now), j.spec.submit});
  }
  std::sort(keys.begin(), keys.end(), [](const Key& a, const Key& b) {
    if (a.demoted != b.demoted) return !a.demoted;  // demoted sort last
    if (a.score != b.score) return a.score > b.score;
    if (a.submit != b.submit) return a.submit < b.submit;
    return a.id < b.id;
  });
  std::vector<JobId> order;
  order.reserve(keys.size());
  for (const Key& k : keys) order.push_back(k.id);
  return order;
}

Scheduler::Shadow Scheduler::compute_shadow(const RuntimeJob& head,
                                            Time now) const {
  Shadow s;
  const NodeCount need = pool_.charged(head.spec.nodes);
  NodeCount cum = pool_.free();
  // Running jobs free their charged nodes no later than start + walltime.
  // Holding jobs have no bounded end; they contribute nothing (conservative).
  struct End {
    Time t;
    NodeCount n;
  };
  std::vector<End> ends;
  for (const auto& [id, j] : jobs_) {
    (void)id;
    if (j.state == JobState::kRunning)
      ends.push_back(End{j.start + j.spec.walltime, j.allocated});
  }
  std::sort(ends.begin(), ends.end(),
            [](const End& a, const End& b) { return a.t < b.t; });
  for (const End& e : ends) {
    cum += e.n;
    if (cum >= need) {
      s.time = std::max(e.t, now);
      s.extra = cum - need;
      return s;
    }
  }
  // Head can never fit from running-job completions alone (held nodes block
  // it).  No reservation is possible; allow free backfilling.
  s.time = kNoTime;
  s.extra = pool_.free();
  return s;
}

RunDecision Scheduler::decide(RuntimeJob& job, NodeCount charged, Time now,
                              const RunJobHook& hook) {
  job.allocated = charged;
  if (job.first_ready == kNoTime) job.first_ready = now;
  const RunDecision d = hook ? hook(job) : RunDecision::kStart;
  switch (d) {
    case RunDecision::kStart:
      pool_.allocate(charged, now);
      do_start(job, now);
      break;
    case RunDecision::kHold:
      pool_.hold(charged, now);
      job.state = JobState::kHolding;
      job.hold_since = now;
      remove_from_queue(job.spec.id);
      break;
    case RunDecision::kYield:
      job.allocated = 0;
      ++job.yield_count;
      break;
    case RunDecision::kSkip:
      job.allocated = 0;
      break;
  }
  return d;
}

void Scheduler::do_start(RuntimeJob& job, Time now) {
  job.state = JobState::kRunning;
  job.start = now;
  if (job.first_ready == kNoTime) job.first_ready = now;
  job.hold_since = kNoTime;
  job.demoted = false;
  remove_from_queue(job.spec.id);
  ++running_;
  if (on_start_) on_start_(job);
}

std::vector<JobId> Scheduler::iterate_conservative(Time now,
                                                   const RunJobHook& hook) {
  std::vector<JobId> started;
  // Rebuild the availability timeline: running jobs free their nodes at
  // start + walltime; holding jobs have no bounded end and occupy their
  // nodes out to the planning horizon.
  constexpr Duration kHorizon = 10LL * 365 * kDay;
  TimelineProfile profile(pool_.capacity());
  for (const auto& [id, j] : jobs_) {
    (void)id;
    if (j.state == JobState::kRunning) {
      const Time end = j.start + j.spec.walltime;
      if (end > now) profile.reserve(now, end - now, j.allocated);
    } else if (j.state == JobState::kHolding) {
      profile.reserve(now, kHorizon, j.allocated);
    }
  }

  for (JobId id : priority_order(now)) {
    auto it = jobs_.find(id);
    if (it == jobs_.end()) continue;
    RuntimeJob& job = it->second;
    if (job.state != JobState::kQueued) continue;
    const NodeCount charged = pool_.charged(job.spec.nodes);
    const Time planned = profile.earliest_fit(now, job.spec.walltime, charged);
    if (planned > now) {
      // Reserved for later; no later job may take these nodes first.
      profile.reserve(planned, job.spec.walltime, charged);
      continue;
    }
    const RunDecision d = decide(job, charged, now, hook);
    switch (d) {
      case RunDecision::kStart:
        started.push_back(id);
        profile.reserve(now, job.spec.walltime, charged);
        break;
      case RunDecision::kHold:
        profile.reserve(now, kHorizon, charged);
        break;
      case RunDecision::kYield:
      case RunDecision::kSkip:
        break;  // slot released; later jobs may claim it
    }
  }
  for (JobId id : queued_) jobs_.at(id).demoted = false;
  return started;
}

std::vector<JobId> Scheduler::iterate(Time now, const RunJobHook& hook) {
  if (config_.backfill && config_.conservative)
    return iterate_conservative(now, hook);
  std::vector<JobId> started;
  const std::vector<JobId> order = priority_order(now);

  bool blocked = false;
  Shadow shadow;
  for (JobId id : order) {
    auto it = jobs_.find(id);
    if (it == jobs_.end()) continue;
    RuntimeJob& job = it->second;
    if (job.state != JobState::kQueued) continue;  // held/started via hook side effects

    const NodeCount charged = pool_.charged(job.spec.nodes);
    const bool fits = pool_.can_allocate(charged);

    if (!blocked) {
      if (fits) {
        if (decide(job, charged, now, hook) == RunDecision::kStart)
          started.push_back(id);
        continue;
      }
      // Head job blocks: reserve its shadow window, then backfill.
      blocked = true;
      if (!config_.backfill) break;
      shadow = compute_shadow(job, now);
      continue;
    }

    // Backfill phase.
    if (!fits) continue;
    const bool ends_before_shadow =
        shadow.time != kNoTime && now + job.spec.walltime <= shadow.time;
    const bool within_extra = charged <= shadow.extra;
    if (shadow.time != kNoTime && !ends_before_shadow && !within_extra)
      continue;
    const RunDecision d = decide(job, charged, now, hook);
    if (d == RunDecision::kStart) started.push_back(id);
    // Consuming nodes past the shadow (or holding, whose end is unknown)
    // draws down the extra-node budget.
    if ((d == RunDecision::kStart || d == RunDecision::kHold) &&
        (!ends_before_shadow || d == RunDecision::kHold))
      shadow.extra = std::max<NodeCount>(0, shadow.extra - charged);
  }

  // Demotion lasts exactly one iteration (paper §IV-E1).
  for (JobId id : queued_) jobs_.at(id).demoted = false;
  return started;
}

bool Scheduler::try_start_specific(JobId id, Time now, const RunJobHook& hook) {
  auto it = jobs_.find(id);
  if (it == jobs_.end()) return false;
  RuntimeJob& job = it->second;
  if (job.state != JobState::kQueued) return false;
  if (!eligible(job, now)) return false;

  const NodeCount charged = pool_.charged(job.spec.nodes);
  if (!pool_.can_allocate(charged)) return false;

  if (config_.backfill && config_.respect_reservation_on_try) {
    // Find the blocked queue head; starting `id` must not delay it.
    const std::vector<JobId> order = priority_order(now);
    for (JobId hid : order) {
      if (hid == id) break;  // `id` outranks everything unfitting before it
      const RuntimeJob& head = jobs_.at(hid);
      if (head.state != JobState::kQueued) continue;
      if (pool_.can_allocate(pool_.charged(head.spec.nodes))) continue;
      const Shadow shadow = compute_shadow(head, now);
      const bool ends_before =
          shadow.time != kNoTime && now + job.spec.walltime <= shadow.time;
      const bool within_extra = charged <= shadow.extra;
      if (shadow.time != kNoTime && !ends_before && !within_extra)
        return false;
      break;
    }
  }

  return decide(job, charged, now, hook) == RunDecision::kStart;
}

void Scheduler::start_holding(JobId id, Time now) {
  auto it = jobs_.find(id);
  COSCHED_CHECK_MSG(it != jobs_.end(), "unknown job " << id);
  RuntimeJob& job = it->second;
  COSCHED_CHECK_MSG(job.state == JobState::kHolding,
                    "job " << id << " is not holding");
  pool_.hold_to_busy(job.allocated, now);
  do_start(job, now);
}

void Scheduler::release_hold(JobId id, Time now) {
  auto it = jobs_.find(id);
  COSCHED_CHECK_MSG(it != jobs_.end(), "unknown job " << id);
  RuntimeJob& job = it->second;
  COSCHED_CHECK_MSG(job.state == JobState::kHolding,
                    "job " << id << " is not holding");
  pool_.unhold(job.allocated, now);
  job.allocated = 0;
  job.hold_since = kNoTime;
  job.state = JobState::kQueued;
  job.demoted = true;  // lowest priority for the next iteration
  ++job.forced_releases;
  queued_.push_back(id);
}

void Scheduler::finish(JobId id, Time now) {
  auto it = jobs_.find(id);
  COSCHED_CHECK_MSG(it != jobs_.end(), "unknown job " << id);
  RuntimeJob& job = it->second;
  COSCHED_CHECK_MSG(job.state == JobState::kRunning,
                    "job " << id << " is not running");
  pool_.release(job.allocated, now);
  job.state = JobState::kFinished;
  job.end = now;
  --running_;
  ++finished_;
}

void Scheduler::kill(JobId id, Time now) {
  auto it = jobs_.find(id);
  if (it == jobs_.end()) return;
  RuntimeJob& job = it->second;
  switch (job.state) {
    case JobState::kQueued:
      remove_from_queue(id);
      break;
    case JobState::kHolding:
      pool_.unhold(job.allocated, now);
      break;
    case JobState::kRunning:
      pool_.release(job.allocated, now);
      --running_;
      break;
    case JobState::kFinished:
      return;
  }
  job.state = JobState::kFinished;
  job.end = now;
  ++finished_;
}

const RuntimeJob* Scheduler::find(JobId id) const {
  auto it = jobs_.find(id);
  return it == jobs_.end() ? nullptr : &it->second;
}

RuntimeJob* Scheduler::find_mut(JobId id) {
  auto it = jobs_.find(id);
  return it == jobs_.end() ? nullptr : &it->second;
}

std::vector<JobId> Scheduler::holding_ids() const {
  std::vector<JobId> out;
  for (const auto& [id, j] : jobs_)
    if (j.state == JobState::kHolding) out.push_back(id);
  std::sort(out.begin(), out.end());
  return out;
}

void Scheduler::remove_from_queue(JobId id) {
  queued_.erase(std::remove(queued_.begin(), queued_.end(), id),
                queued_.end());
}

}  // namespace cosched

#include "sched/profile.h"

#include "util/error.h"

namespace cosched {

TimelineProfile::TimelineProfile(NodeCount capacity) : capacity_(capacity) {
  COSCHED_CHECK(capacity_ > 0);
}

NodeCount TimelineProfile::free_at(Time t) const {
  NodeCount used = 0;
  for (const auto& [when, delta] : deltas_) {
    if (when > t) break;
    used += delta;
  }
  return capacity_ - used;
}

bool TimelineProfile::can_reserve(Time start, Duration dur, NodeCount n) const {
  COSCHED_CHECK(dur > 0 && n > 0);
  if (n > capacity_) return false;
  const Time end = start + dur;
  NodeCount used = 0;
  auto it = deltas_.begin();
  // Usage entering the window.
  for (; it != deltas_.end() && it->first <= start; ++it) used += it->second;
  if (capacity_ - used < n) return false;
  // Usage at each change point inside the window.
  for (; it != deltas_.end() && it->first < end; ++it) {
    used += it->second;
    if (capacity_ - used < n) return false;
  }
  return true;
}

void TimelineProfile::reserve(Time start, Duration dur, NodeCount n) {
  COSCHED_CHECK_MSG(can_reserve(start, dur, n),
                    "reserve " << n << "@[" << start << "," << start + dur
                               << ") exceeds capacity");
  deltas_[start] += n;
  deltas_[start + dur] -= n;
  // Drop zero entries to keep the map compact.
  if (deltas_[start] == 0) deltas_.erase(start);
  if (deltas_[start + dur] == 0) deltas_.erase(start + dur);
}

void TimelineProfile::release(Time start, Duration dur, NodeCount n) {
  COSCHED_CHECK(dur > 0 && n > 0);
  deltas_[start] -= n;
  deltas_[start + dur] += n;
  if (deltas_[start] == 0) deltas_.erase(start);
  if (deltas_[start + dur] == 0) deltas_.erase(start + dur);
}

Time TimelineProfile::earliest_fit(Time after, Duration dur,
                                   NodeCount n) const {
  COSCHED_CHECK(dur > 0 && n > 0);
  COSCHED_CHECK_MSG(n <= capacity_, "request exceeds machine capacity");
  if (can_reserve(after, dur, n)) return after;
  for (const auto& [when, delta] : deltas_) {
    (void)delta;
    if (when <= after) continue;
    if (can_reserve(when, dur, n)) return when;
  }
  // After the last change point everything is free.
  Time last = after;
  if (!deltas_.empty()) last = std::max(after, deltas_.rbegin()->first);
  return last;
}

}  // namespace cosched

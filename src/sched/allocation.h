// Node allocation models.
//
// Blue Gene/P machines allocate whole partitions: a 600-node request is
// charged a 1,024-node partition.  The paper's Intrepid traces contain
// partition-sized jobs already, but real archive traces do not, so the pool
// supports a charging model.  The default model charges exactly the request.
#pragma once

#include <memory>
#include <vector>

#include "util/types.h"

namespace cosched {

/// Maps a requested node count to the number of nodes actually consumed.
class AllocationModel {
 public:
  virtual ~AllocationModel() = default;

  /// Nodes charged for a request; always >= requested.
  virtual NodeCount charged(NodeCount requested) const = 0;
};

/// Charges exactly what was requested.
class PlainAllocation final : public AllocationModel {
 public:
  NodeCount charged(NodeCount requested) const override { return requested; }
};

/// Rounds requests up to the smallest containing partition size.
/// Requests above the largest partition are charged the largest partition.
class PartitionAllocation final : public AllocationModel {
 public:
  /// `sizes` must be non-empty; it is sorted internally.
  explicit PartitionAllocation(std::vector<NodeCount> sizes);

  NodeCount charged(NodeCount requested) const override;

  /// The Intrepid (BG/P, 40,960-node) partition ladder.
  static PartitionAllocation intrepid();

 private:
  std::vector<NodeCount> sizes_;
};

}  // namespace cosched

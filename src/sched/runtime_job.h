// Runtime scheduling state of one job inside a scheduling domain.
#pragma once

#include "util/types.h"
#include "workload/job.h"

namespace cosched {

enum class JobState {
  kQueued,   ///< waiting in the queue
  kHolding,  ///< coscheduling hold: occupies nodes, waiting for its mate
  kRunning,  ///< executing
  kFinished, ///< completed
};

const char* to_string(JobState s);

struct RuntimeJob {
  JobSpec spec;
  JobState state = JobState::kQueued;

  Time start = kNoTime;
  Time end = kNoTime;

  /// First moment the scheduler selected this job and assigned nodes ("ready"
  /// in the paper's terms).  Without coscheduling the job would have started
  /// here; (start - first_ready) is its paired-job synchronization time.
  Time first_ready = kNoTime;

  /// When the current hold began (kNoTime unless holding).
  Time hold_since = kNoTime;

  /// Charged nodes while holding or running.
  NodeCount allocated = 0;

  /// Number of times the job yielded its turn to run.
  int yield_count = 0;

  /// Number of times the job's hold was forcibly released (deadlock breaker).
  int forced_releases = 0;

  /// When set, the job sorts below every normal job for the next scheduling
  /// iteration (the paper demotes a force-released holder to lowest priority
  /// so the jobs it was blocking can take the nodes).
  bool demoted = false;

  /// Additive priority boost accumulated from yields (optional enhancement).
  double priority_boost = 0.0;

  Duration wait_time() const {
    return start == kNoTime ? 0 : start - spec.submit;
  }
  Duration response_time() const {
    return end == kNoTime ? 0 : end - spec.submit;
  }
  /// Paper metric: response time / runtime.
  double slowdown() const {
    if (end == kNoTime || spec.runtime <= 0) return 0.0;
    return static_cast<double>(response_time()) /
           static_cast<double>(spec.runtime);
  }
  /// Extra wait caused by coscheduling (0 for unpaired or never-ready jobs).
  Duration sync_time() const {
    if (start == kNoTime || first_ready == kNoTime) return 0;
    return start - first_ready;
  }
};

}  // namespace cosched

#include "sched/allocation.h"

#include <algorithm>

#include "util/error.h"

namespace cosched {

PartitionAllocation::PartitionAllocation(std::vector<NodeCount> sizes)
    : sizes_(std::move(sizes)) {
  COSCHED_CHECK(!sizes_.empty());
  std::sort(sizes_.begin(), sizes_.end());
  COSCHED_CHECK(sizes_.front() > 0);
}

NodeCount PartitionAllocation::charged(NodeCount requested) const {
  COSCHED_CHECK(requested > 0);
  auto it = std::lower_bound(sizes_.begin(), sizes_.end(), requested);
  if (it == sizes_.end()) return sizes_.back();
  return *it;
}

PartitionAllocation PartitionAllocation::intrepid() {
  return PartitionAllocation({512, 1024, 2048, 4096, 8192, 16384, 32768,
                              40960});
}

}  // namespace cosched

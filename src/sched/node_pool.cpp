#include "sched/node_pool.h"

#include "util/error.h"

namespace cosched {

NodePool::NodePool(NodeCount capacity,
                   std::shared_ptr<const AllocationModel> model)
    : capacity_(capacity), model_(std::move(model)) {
  COSCHED_CHECK(capacity_ > 0);
}

NodeCount NodePool::charged(NodeCount requested) const {
  COSCHED_CHECK_MSG(requested > 0 && requested <= capacity_,
                    "request of " << requested << " nodes on a " << capacity_
                                  << "-node machine");
  // A partition model may round above capacity (e.g. a 33K-node request on
  // the 40,960-node ladder); the full machine is the correct charge then.
  const NodeCount c = model_ ? model_->charged(requested) : requested;
  return c <= capacity_ ? c : capacity_;
}

void NodePool::advance_to(Time now) {
  COSCHED_CHECK_MSG(now >= last_update_, "pool accounting went backwards");
  const auto dt = static_cast<double>(now - last_update_);
  busy_ns_ += dt * static_cast<double>(busy_);
  held_ns_ += dt * static_cast<double>(held_);
  last_update_ = now;
}

void NodePool::allocate(NodeCount n, Time now) {
  advance_to(now);
  COSCHED_CHECK_MSG(n > 0 && n <= free(),
                    "allocate " << n << " with only " << free() << " free");
  busy_ += n;
}

void NodePool::release(NodeCount n, Time now) {
  advance_to(now);
  COSCHED_CHECK_MSG(n > 0 && n <= busy_,
                    "release " << n << " with only " << busy_ << " busy");
  busy_ -= n;
}

void NodePool::hold(NodeCount n, Time now) {
  advance_to(now);
  COSCHED_CHECK_MSG(n > 0 && n <= free(),
                    "hold " << n << " with only " << free() << " free");
  held_ += n;
}

void NodePool::unhold(NodeCount n, Time now) {
  advance_to(now);
  COSCHED_CHECK_MSG(n > 0 && n <= held_,
                    "unhold " << n << " with only " << held_ << " held");
  held_ -= n;
}

void NodePool::hold_to_busy(NodeCount n, Time now) {
  advance_to(now);
  COSCHED_CHECK_MSG(n > 0 && n <= held_,
                    "promote " << n << " with only " << held_ << " held");
  held_ -= n;
  busy_ += n;
}

double NodePool::utilization(Time now) const {
  if (now <= 0) return 0.0;
  // Include un-integrated time since the last state change.
  const double extra =
      static_cast<double>(now - last_update_) * static_cast<double>(busy_);
  return (busy_ns_ + extra) /
         (static_cast<double>(capacity_) * static_cast<double>(now));
}

double NodePool::held_fraction(Time now) const {
  if (now <= 0) return 0.0;
  const double extra =
      static_cast<double>(now - last_update_) * static_cast<double>(held_);
  return (held_ns_ + extra) /
         (static_cast<double>(capacity_) * static_cast<double>(now));
}

}  // namespace cosched

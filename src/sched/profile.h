// Availability timeline: free-node capacity as a step function of time.
//
// Used by the advance co-reservation baseline (HARC/GARA-style, §III of the
// paper) to find the earliest slot with capacity on both machines, and by
// tests as an oracle for backfill legality.
#pragma once

#include <map>

#include "util/types.h"

namespace cosched {

class TimelineProfile {
 public:
  explicit TimelineProfile(NodeCount capacity);

  NodeCount capacity() const { return capacity_; }

  /// Free nodes at time `t`.
  NodeCount free_at(Time t) const;

  /// True when `n` nodes are free over the whole window [start, start+dur).
  bool can_reserve(Time start, Duration dur, NodeCount n) const;

  /// Subtracts `n` nodes over [start, start+dur).
  /// Throws InvariantError if the window lacks capacity.
  void reserve(Time start, Duration dur, NodeCount n);

  /// Returns `n` nodes over [start, start+dur) (cancel a reservation).
  void release(Time start, Duration dur, NodeCount n);

  /// Earliest start >= `after` such that `n` nodes are free for `dur`.
  /// Candidate starts are `after` and capacity-change points after it.
  Time earliest_fit(Time after, Duration dur, NodeCount n) const;

 private:
  NodeCount capacity_;
  /// Net node-usage deltas: usage at t = prefix sum of deltas_ up to t.
  std::map<Time, NodeCount> deltas_;
};

}  // namespace cosched

// Single-domain job scheduler: queue + priority policy + EASY backfilling,
// with the paper's coscheduling hook at the moment a job becomes "ready".
//
// The paper (§IV-C) extends the resource manager's Run_Job function: when the
// scheduler selects a job and assigns nodes, additional logic decides whether
// the job starts, holds its nodes, or yields its turn.  We model that as the
// RunJobHook: the scheduler is entirely coscheduling-agnostic, and the
// coscheduling agent (core/agent.h) supplies Algorithm 1 as the hook — the
// same separation the authors used between Cobalt and their extension.
//
// Hot-path design: every scheduling iteration touches only *live* jobs.
// Finished jobs move to an archive map, running jobs are indexed by their
// walltime end (the shadow/profile scans walk that index instead of the
// whole job table), holding jobs are indexed in a sorted set, and the
// priority order is cached per (time, state-epoch) so the repeated
// tryStartMate calls arriving within one event timestamp reuse one
// score-and-sort.
#pragma once

#include <algorithm>
#include <functional>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

#include "proto/wire.h"
#include "sched/node_pool.h"
#include "sched/policy.h"
#include "sched/runtime_job.h"
#include "util/types.h"

namespace cosched {

/// Outcome of the Run_Job decision for a ready job.
enum class RunDecision {
  kStart,  ///< start now on the assigned nodes
  kHold,   ///< occupy the nodes, wait for the remote mate
  kYield,  ///< give the turn up; scheduler proceeds with other jobs
  kSkip,   ///< decline without side effects (used by tryStartMate contexts;
           ///< not counted as a yield)
};

/// Decides what a ready job does.  Called with the job in kQueued state and
/// job.allocated set to the charged node count.  A null hook means kStart.
using RunJobHook = std::function<RunDecision(RuntimeJob&)>;

struct SchedulerConfig {
  /// Enable backfilling.  When false, scheduling is strict priority order:
  /// nothing may pass a blocked queue head.
  bool backfill = true;

  /// Conservative backfilling: every queued job receives a reservation on a
  /// rebuilt availability timeline each iteration, and a job may start only
  /// at its planned time — no queued job can be delayed by a later one.
  /// When false (default), EASY backfilling is used (only the head job is
  /// protected by a shadow-time reservation).
  bool conservative = false;

  /// When tryStartMate-style targeted starts must obey the head job's
  /// backfill reservation (recommended; prevents mate starts from starving
  /// the local queue head).
  bool respect_reservation_on_try = true;

  /// Periodic scheduling cadence, used by the Cluster event driver (the
  /// Scheduler itself is clockless).  0 = purely event-driven iterations
  /// (submit/end/release); > 0 additionally runs an iteration every period
  /// while unfinished jobs exist, as production Cobalt does.
  Duration iteration_period = 0;
};

/// One scheduling domain's job scheduler.
class Scheduler {
 public:
  Scheduler(NodeCount capacity, std::unique_ptr<PriorityPolicy> policy,
            SchedulerConfig config = {},
            std::shared_ptr<const AllocationModel> alloc = nullptr);

  /// Invoked whenever any job transitions to running (from any path);
  /// the owner uses it to schedule the completion event.
  void set_on_start(std::function<void(const RuntimeJob&)> cb) {
    on_start_ = std::move(cb);
  }

  /// Adds a job to the queue.
  void submit(const JobSpec& spec, Time now);

  /// Runs one scheduling iteration: walk the queue in priority order,
  /// start/hold/backfill jobs per the policy and the hook.
  /// Returns ids of jobs started during this pass.
  std::vector<JobId> iterate(Time now, const RunJobHook& hook = nullptr);

  /// Targeted start of one queued job (the remote side's tryStartMate).
  /// Starts it iff it fits and (optionally) does not violate the queue
  /// head's backfill reservation, and the hook agrees.  Returns true iff
  /// the job started.
  bool try_start_specific(JobId id, Time now, const RunJobHook& hook = nullptr);

  /// Starts a holding job (its mate became ready): held -> busy.
  void start_holding(JobId id, Time now);

  /// Forcibly releases a holding job's nodes (deadlock breaker): the job
  /// re-queues demoted to lowest priority for the next iteration.
  void release_hold(JobId id, Time now);

  /// Completes a running job, freeing its nodes and archiving its record.
  void finish(JobId id, Time now);

  /// Kills a job wherever it is (fault injection).  Queued jobs leave the
  /// queue; running/holding jobs free their nodes.  end = now.
  void kill(JobId id, Time now);

  /// Dependency eligibility: true when the job has no `after` constraint or
  /// the constraint is satisfied (dependency finished, delay elapsed).
  /// Ineligible jobs are invisible to iterations and targeted starts.
  bool eligible(const RuntimeJob& job, Time now) const;

  /// Queue order for one iteration: demoted jobs last, then score desc,
  /// submit asc, id asc.  Cached per (now, state epoch): repeated calls at
  /// one timestamp with no intervening state change skip the re-score/sort.
  std::vector<JobId> priority_order(Time now) const;

  // -- introspection ---------------------------------------------------

  /// Looks up a job by id, live or archived.
  const RuntimeJob* find(JobId id) const;
  RuntimeJob* find_mut(JobId id);

  NodePool& pool() { return pool_; }
  const NodePool& pool() const { return pool_; }

  std::size_t queue_length() const { return queued_.size(); }
  /// Instantaneous fraction of capacity occupied by coscheduling holds
  /// (piggybacked on liveness heartbeats; distinct from the time-integrated
  /// NodePool::held_fraction loss metric).
  double hold_fraction() const {
    return pool_.capacity() > 0 ? static_cast<double>(pool_.held()) /
                                      static_cast<double>(pool_.capacity())
                                : 0.0;
  }
  /// Queued job ids in unspecified order (removal is swap-and-pop).
  const std::vector<JobId>& queued_ids() const { return queued_; }
  std::vector<JobId> holding_ids() const;
  std::size_t holding_count() const { return holding_.size(); }
  std::size_t running_count() const { return running_ends_.size(); }
  std::size_t finished_count() const { return archived_.size(); }

  /// Live (queued/holding/running) jobs.  Finished jobs are in archived().
  const std::unordered_map<JobId, RuntimeJob>& jobs() const { return jobs_; }

  /// Finished jobs, moved out of the live table so hot-path scans never
  /// touch them.
  const std::unordered_map<JobId, RuntimeJob>& archived() const {
    return archived_;
  }

  /// Applies `fn(id, job)` to every job this scheduler has seen, live then
  /// archived, each table in ascending-id order (for metric extraction).
  /// The canonical order matters: callers sum floating-point metrics and
  /// build report strings, and hash-order iteration would make both depend
  /// on insertion history (live run vs. journal replay).
  template <class F>
  void for_each_job(F&& fn) const {
    const auto sorted_ids = [](const std::unordered_map<JobId, RuntimeJob>& t) {
      std::vector<JobId> ids;
      ids.reserve(t.size());
      // cosched-lint: ordered(ids are sorted before use below)
      for (const auto& [id, job] : t) ids.push_back(id);
      std::sort(ids.begin(), ids.end());
      return ids;
    };
    for (JobId id : sorted_ids(jobs_)) fn(id, jobs_.at(id));
    for (JobId id : sorted_ids(archived_)) fn(id, archived_.at(id));
  }

  /// Total jobs ever submitted (live + archived).
  std::size_t total_jobs() const { return jobs_.size() + archived_.size(); }

  /// Brute-force recomputes every maintained index from the job tables and
  /// throws InvariantError on any mismatch (test/debug hook).
  void validate_indices() const;

  const PriorityPolicy& policy() const { return *policy_; }

  // -- crash-consistent persistence (core/journal.h) ---------------------
  //
  // snapshot()/restore() serialize the complete mutable state (job tables,
  // pool accounting, running-end tie order) in a canonical order; capacity,
  // policy, config, and the allocation model are construction facts and are
  // not included — restore() must be called on a Scheduler built with the
  // same ones.  The replay_* mutators re-apply journaled decisions through
  // the same code paths normal operation uses, so every index and pool
  // integral is rebuilt identically (validate after with validate_indices).

  void snapshot(WireWriter& w) const;
  void restore(WireReader& r);

  /// Replays a journaled start of a *queued* job (holding-origin starts
  /// replay through start_holding()).
  void replay_start(JobId id, Time t, Time first_ready, NodeCount allocated);
  /// Replays a journaled hold acquisition.
  void replay_hold(JobId id, Time t, Time first_ready, NodeCount allocated);
  /// Replays a journaled yield (re-applies the count, boost, first_ready).
  void replay_yield(JobId id, Time first_ready, double boost);
  /// Replays the end-of-iteration demotion clear (paper §IV-E1: demotion
  /// lasts exactly one iteration) — an otherwise unjournaled mutation.
  void replay_clear_demotions();

 private:
  // EASY reservation for a blocked head job.
  struct Shadow {
    Time time = kNoTime;      // when the head is guaranteed to fit (kNoTime = never)
    NodeCount extra = 0;      // nodes usable past the shadow without delaying it
  };
  Shadow compute_shadow(const RuntimeJob& head, Time now) const;

  // Conservative-backfill iteration (config_.conservative).
  std::vector<JobId> iterate_conservative(Time now, const RunJobHook& hook);

  // Applies the hook decision to a fitting job.  Returns the decision.
  RunDecision decide(RuntimeJob& job, NodeCount charged, Time now,
                     const RunJobHook& hook);

  void do_start(RuntimeJob& job, Time now);
  void remove_from_queue(JobId id);
  void archive(JobId id, RuntimeJob&& job);
  void erase_running_end(const RuntimeJob& job);

  // Any state change that can alter priority order, eligibility, or the
  // live-job indices bumps the epoch, invalidating the order cache.
  void touch() { ++epoch_; }

  NodePool pool_;
  std::unique_ptr<PriorityPolicy> policy_;
  SchedulerConfig config_;
  std::function<void(const RuntimeJob&)> on_start_;

  std::unordered_map<JobId, RuntimeJob> jobs_;      ///< live jobs only
  std::unordered_map<JobId, RuntimeJob> archived_;  ///< finished jobs

  // -- maintained indices over the live table --------------------------
  std::vector<JobId> queued_;
  std::unordered_map<JobId, std::size_t> queue_pos_;
  /// Running jobs keyed by walltime end (start + walltime); the shadow and
  /// profile scans walk this instead of the job table.  Ties preserve start
  /// order (multimap insertion order), keeping scans deterministic.
  std::multimap<Time, JobId> running_ends_;
  std::set<JobId> holding_;

  // -- priority-order cache ---------------------------------------------
  std::uint64_t epoch_ = 1;
  mutable std::uint64_t order_epoch_ = 0;
  mutable Time order_time_ = kNoTime;
  mutable std::vector<JobId> order_cache_;
};

}  // namespace cosched

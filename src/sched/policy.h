// Queue priority policies.
//
// The paper's production systems both run WFP plus backfilling; FCFS is the
// common baseline it cites as sufficient for yield-yield progress (§IV-D2).
// Higher scores run first.  Policies must be monotone in waiting time so a
// yielding job eventually reaches the top (starvation freedom).
#pragma once

#include <memory>
#include <string>

#include "sched/runtime_job.h"
#include "util/types.h"

namespace cosched {

class PriorityPolicy {
 public:
  virtual ~PriorityPolicy() = default;

  /// Priority score of a queued job at time `now`; higher runs first.
  /// Implementations should incorporate job.priority_boost.
  virtual double score(const RuntimeJob& job, Time now) const = 0;

  virtual std::string name() const = 0;
};

/// First-come first-served: earlier submission = higher score.
class FcfsPolicy final : public PriorityPolicy {
 public:
  double score(const RuntimeJob& job, Time now) const override;
  std::string name() const override { return "fcfs"; }
};

/// WFP, the utility function used by Cobalt on Intrepid (see [28] in the
/// paper): score grows with (waiting time / requested walltime)^3 and with
/// job size, favoring old and large jobs while normalizing by job length.
class WfpPolicy final : public PriorityPolicy {
 public:
  /// `exponent` is the wait/walltime power (3 in production).
  explicit WfpPolicy(double exponent = 3.0) : exponent_(exponent) {}

  double score(const RuntimeJob& job, Time now) const override;
  std::string name() const override { return "wfp"; }

 private:
  double exponent_;
};

/// Shortest job first (by requested walltime); classic turnaround-time
/// optimizer.  Starvation-prone on its own — the boost term (fed by the
/// yield-boost enhancement) is its only aging mechanism.
class SjfPolicy final : public PriorityPolicy {
 public:
  double score(const RuntimeJob& job, Time now) const override;
  std::string name() const override { return "sjf"; }
};

/// Largest expansion factor first: score = (wait + walltime) / walltime —
/// the job whose relative delay is currently worst runs first.  A
/// starvation-free middle ground between FCFS and WFP.
class LxfPolicy final : public PriorityPolicy {
 public:
  double score(const RuntimeJob& job, Time now) const override;
  std::string name() const override { return "lxf"; }
};

/// Constructs a policy by name ("fcfs", "wfp", "sjf", "lxf");
/// throws ParseError otherwise.
std::unique_ptr<PriorityPolicy> make_policy(const std::string& name);

}  // namespace cosched

#include "sim/engine.h"

#include <utility>

namespace cosched {

EventId Engine::schedule_at(Time t, int priority, Handler fn) {
  COSCHED_CHECK_MSG(t >= now_, "cannot schedule event in the past: t=" << t
                                                                      << " now="
                                                                      << now_);
  COSCHED_CHECK(fn != nullptr);
  const EventId id = next_id_++;
  queue_.push(Entry{t, priority, next_seq_++, id});
  handlers_.emplace(id, std::move(fn));
  return id;
}

bool Engine::cancel(EventId id) { return handlers_.erase(id) > 0; }

bool Engine::step() {
  while (!queue_.empty()) {
    const Entry e = queue_.top();
    queue_.pop();
    auto it = handlers_.find(e.id);
    if (it == handlers_.end()) continue;  // cancelled
    Handler fn = std::move(it->second);
    handlers_.erase(it);
    now_ = e.time;
    ++executed_;
    fn();
    return true;
  }
  return false;
}

void Engine::run() {
  while (step()) {
  }
}

void Engine::run_until(Time t) {
  COSCHED_CHECK(t >= now_);
  while (!queue_.empty()) {
    // Skip over cancelled entries without advancing the clock.
    const Entry e = queue_.top();
    if (!handlers_.count(e.id)) {
      queue_.pop();
      continue;
    }
    if (e.time > t) break;
    step();
  }
  now_ = t;
}

}  // namespace cosched

#include "sim/engine.h"

#include <algorithm>
#include <atomic>
#include <numeric>
#include <utility>

#include "util/worker_pool.h"

namespace cosched {

thread_local Engine::ExecContext* Engine::tls_ctx_ = nullptr;

Engine::Engine() : lanes_(1) {}

Engine::~Engine() = default;

Engine::ExecContext* Engine::context() const {
  ExecContext* c = tls_ctx_;
  return (c != nullptr && c->engine == this) ? c : nullptr;
}

Time Engine::now() const {
  const ExecContext* c = context();
  return c != nullptr ? c->now : now_;
}

SourceId Engine::current_source() const {
  const ExecContext* c = context();
  return c != nullptr ? c->src : ambient_src_;
}

EventId Engine::schedule_at(Time t, int priority, Handler fn) {
  return schedule_from(current_source(), t, priority, std::move(fn));
}

EventId Engine::schedule_from(SourceId src, Time t, int priority, Handler fn) {
  COSCHED_CHECK(fn != nullptr);
  if (ExecContext* c = context()) {
    COSCHED_CHECK_MSG(t >= c->now, "cannot schedule event in the past: t="
                                       << t << " now=" << c->now);
    const std::uint32_t lane = lane_index_of(src);
    if (lane == c->lane_index) {
      return insert(*c->lane, lane, t, priority, c->lane->win_seq++, src,
                    std::move(fn), /*in_window=*/true);
    }
    // Cross-cluster schedule from inside a parallel window: buffered until
    // the barrier.  The conservative-lookahead contract requires it to land
    // at or after the window end — otherwise another lane may already have
    // executed past `t`.
    COSCHED_CHECK_MSG(t >= c->window_end,
                      "cross-cluster event inside the lookahead window: t="
                          << t << " window_end=" << c->window_end
                          << " (raise set_lookahead or add_dependency)");
    c->lane->outbox.push_back(CrossEvent{t, priority, src, std::move(fn)});
    return kNullEventId;
  }
  COSCHED_CHECK_MSG(t >= now_, "cannot schedule event in the past: t="
                                   << t << " now=" << now_);
  const std::uint32_t lane = lane_index_of(src);
  return insert(lanes_[lane], lane, t, priority, next_seq_++, src,
                std::move(fn), /*in_window=*/false);
}

EventId Engine::insert(Lane& lane, std::uint32_t lane_index, Time t,
                       int priority, std::uint64_t seq, SourceId src,
                       Handler fn, bool in_window) {
  std::uint32_t slot;
  if (!lane.free.empty()) {
    slot = lane.free.back();
    lane.free.pop_back();
  } else {
    slot = static_cast<std::uint32_t>(lane.slots.size());
    COSCHED_CHECK_MSG(slot < kSlotLimit, "lane slot space exhausted");
    lane.slots.emplace_back();
  }
  Slot& s = lane.slots[slot];
  s.fn = std::move(fn);
  s.src = src;
  lane.heap.push_back(Entry{t, priority, seq, slot, s.gen});
  std::push_heap(lane.heap.begin(), lane.heap.end(), Later{});
  if (in_window) {
    ++lane.win_scheduled;
    ++lane.win_armed_delta;
  } else {
    ++scheduled_;
    ++armed_;
    peak_pending_ = std::max(peak_pending_, armed_);
  }
  return make_id(lane_index, slot, s.gen);
}

bool Engine::cancel(EventId id) {
  if (id == kNullEventId) return false;  // buffered cross-lane schedule
  const auto gen = static_cast<std::uint32_t>(id >> 32);
  const auto lane_index =
      static_cast<std::uint32_t>((id >> kSlotBits) & (kMaxLanes - 1));
  const auto slot = static_cast<std::uint32_t>(id & (kSlotLimit - 1));
  ExecContext* c = context();
  if (c != nullptr) {
    // A worker may only touch the lane it owns; other lanes' slot tables
    // are concurrently mutated by their own workers.
    COSCHED_CHECK_MSG(lane_index == c->lane_index,
                      "cancel() across dependency clusters inside a parallel "
                      "window (lane " << lane_index << " from lane "
                                      << c->lane_index << ")");
  } else if (lane_index >= lanes_.size()) {
    return false;
  }
  Lane& lane = c != nullptr ? *c->lane : lanes_[lane_index];
  if (slot >= lane.slots.size()) return false;
  Slot& s = lane.slots[slot];
  if (s.gen != gen || !s.fn) return false;
  s.fn = nullptr;
  ++s.gen;  // the heap entry, now stale, is skipped as a tombstone
  lane.free.push_back(slot);
  ++lane.dead;
  if (c != nullptr) {
    ++lane.win_cancelled;
    --lane.win_armed_delta;
  } else {
    --armed_;
    ++cancelled_;
  }
  maybe_compact(lane, c != nullptr);
  return true;
}

void Engine::maybe_compact(Lane& lane, bool in_window) {
  if (lane.heap.size() < kCompactMinHeap ||
      lane.dead * 2 <= lane.heap.size()) {
    return;
  }
  const auto live_end =
      std::remove_if(lane.heap.begin(), lane.heap.end(), [&lane](const Entry& e) {
        return lane.slots[e.slot].gen != e.gen;
      });
  const auto removed =
      static_cast<std::uint64_t>(std::distance(live_end, lane.heap.end()));
  lane.heap.erase(live_end, lane.heap.end());
  std::make_heap(lane.heap.begin(), lane.heap.end(), Later{});
  lane.dead -= removed;
  if (in_window) {
    lane.win_tombstones += removed;
    ++lane.win_compactions;
  } else {
    tombstones_ += removed;
    ++compactions_;
  }
}

const Engine::Entry* Engine::peek_live(Lane& lane, bool in_window) {
  while (!lane.heap.empty()) {
    const Entry& e = lane.heap.front();
    if (lane.slots[e.slot].gen == e.gen) return &e;
    std::pop_heap(lane.heap.begin(), lane.heap.end(), Later{});
    lane.heap.pop_back();
    --lane.dead;
    if (in_window) {
      ++lane.win_tombstones;
    } else {
      // cosched-lint: allow(engine-shared-state) serial-path branch only; in-window workers count via lane.win_tombstones above
      ++tombstones_;
    }
  }
  return nullptr;
}

Engine::PeekResult Engine::peek_serial() {
  PeekResult best;
  for (Lane& lane : lanes_) {
    const Entry* e = peek_live(lane, /*in_window=*/false);
    if (e != nullptr && (best.entry == nullptr || Later{}(*best.entry, *e))) {
      best = PeekResult{&lane, e};
    }
  }
  return best;
}

namespace {
/// Restores the ambient source even when a handler throws.
class AmbientRestore {
 public:
  AmbientRestore(SourceId* slot, SourceId value) : slot_(slot), prev_(*slot) {
    *slot_ = value;
  }
  ~AmbientRestore() { *slot_ = prev_; }

 private:
  SourceId* slot_;
  SourceId prev_;
};
}  // namespace

void Engine::exec_top(Lane& lane) {
  const Entry e = lane.heap.front();
  std::pop_heap(lane.heap.begin(), lane.heap.end(), Later{});
  lane.heap.pop_back();
  Slot& s = lane.slots[e.slot];
  Handler fn = std::move(s.fn);
  const SourceId src = s.src;
  s.fn = nullptr;
  ++s.gen;
  lane.free.push_back(e.slot);
  --armed_;
  now_ = e.time;
  ++executed_;
  AmbientRestore ambient(&ambient_src_, src);
  fn();  // may schedule events and grow slots; no slot refs held past here
}

bool Engine::step() {
  const PeekResult top = peek_serial();
  if (top.entry == nullptr) return false;
  exec_top(*top.lane);
  return true;
}

void Engine::run() {
  while (step()) {
  }
}

void Engine::run_until(Time t) {
  COSCHED_CHECK(t >= now_);
  for (;;) {
    const PeekResult top = peek_serial();
    if (top.entry == nullptr || top.entry->time > t) break;
    exec_top(*top.lane);
  }
  now_ = t;
}

// -- event sources & dependency clusters -------------------------------------

SourceId Engine::register_source(std::string name) {
  COSCHED_CHECK_MSG(!clustered_, "register_source after build_clusters");
  COSCHED_CHECK(!name.empty());
  sources_.push_back(Source{std::move(name), 0});
  return static_cast<SourceId>(sources_.size() - 1);
}

void Engine::add_dependency(SourceId a, SourceId b) {
  COSCHED_CHECK_MSG(!clustered_, "add_dependency after build_clusters");
  COSCHED_CHECK(a < sources_.size() && b < sources_.size());
  deps_.emplace_back(a, b);
}

std::size_t Engine::build_clusters() {
  COSCHED_CHECK_MSG(!clustered_, "build_clusters called twice");
  COSCHED_CHECK_MSG(scheduled_ == 0,
                    "build_clusters must precede all scheduling");
  // Union-find over the dependency graph; each connected component of
  // sources becomes one lane.  Lane numbering follows the smallest source
  // index in each component, so the partition is a pure function of the
  // registration and dependency order.
  std::vector<std::uint32_t> parent(sources_.size());
  std::iota(parent.begin(), parent.end(), 0u);
  auto find = [&parent](std::uint32_t x) {
    while (parent[x] != x) {
      parent[x] = parent[parent[x]];
      x = parent[x];
    }
    return x;
  };
  for (const auto& [a, b] : deps_) {
    const std::uint32_t ra = find(a), rb = find(b);
    if (ra != rb) parent[std::max(ra, rb)] = std::min(ra, rb);
  }
  std::vector<std::uint32_t> lane_of_root(sources_.size(), 0);
  std::uint32_t next_lane = 0;
  for (std::uint32_t i = 0; i < sources_.size(); ++i) {
    const std::uint32_t root = find(i);
    if (root == i) {
      COSCHED_CHECK_MSG(next_lane + 1 < kMaxLanes, "too many clusters");
      lane_of_root[root] = ++next_lane;
    }
    sources_[i].lane = lane_of_root[root];
  }
  lanes_.resize(1 + next_lane);
  clustered_ = true;
  return next_lane;
}

// -- parallel execution -------------------------------------------------------

void Engine::ensure_pool(unsigned threads) {
  const unsigned helpers = threads - 1;
  if (helpers == 0) {
    pool_.reset();
    return;
  }
  if (pool_ == nullptr || pool_->helpers() != helpers) {
    pool_ = std::make_unique<WorkerPool>(helpers);
  }
}

void Engine::run_parallel(unsigned threads, Time until) {
  COSCHED_CHECK(threads >= 1);
  COSCHED_CHECK_MSG(context() == nullptr, "recursive run_parallel");
  ensure_pool(threads);
  std::vector<std::uint32_t> parts;
  for (;;) {
    const PeekResult front = peek_serial();
    if (front.entry == nullptr) break;
    const Time start = front.entry->time;
    if (start > until) break;
    // Window end: the next global-lane event (a cross-cluster event pins
    // the window), the conservative lookahead, and the run bound.
    Time end = until >= kTimeMax ? kTimeMax : until + 1;
    if (lookahead_ != kNoTime && start <= kTimeMax - lookahead_) {
      end = std::min(end, start + lookahead_);
    }
    const Entry* global = peek_live(lanes_[0], /*in_window=*/false);
    if (global != nullptr) end = std::min(end, global->time);
    if (end <= start) {
      // Pinned: a cross-cluster event is at the very front.  Execute
      // serially in the legacy total order until it clears.
      step();
      ++pinned_steps_;
      continue;
    }
    parts.clear();
    for (std::uint32_t i = 1; i < lanes_.size(); ++i) {
      const Entry* e = peek_live(lanes_[i], /*in_window=*/false);
      if (e != nullptr && e->time < end) parts.push_back(i);
    }
    run_window(parts, end, threads);
  }
}

void Engine::run_window(const std::vector<std::uint32_t>& parts, Time end,
                        unsigned threads) {
  ++windows_;
  // Deterministic seq bands: lane i draws insertion sequences from
  // [base + (i-1)*stride, ...), a pure function of the lane index — never
  // of which worker runs it or when.  Advance the global counter past every
  // band so post-window sequences stay globally larger.
  const std::uint64_t base = next_seq_;
  for (const std::uint32_t i : parts) {
    lanes_[i].win_seq = base + (i - 1) * kSeqStride;
  }
  next_seq_ = base + (lanes_.size() - 1) * kSeqStride;

  if (threads == 1 || parts.size() <= 1 || pool_ == nullptr) {
    for (const std::uint32_t i : parts) run_lane_window(i, end);
  } else {
    std::atomic<std::size_t> cursor{0};
    pool_->run([this, &parts, &cursor, end](unsigned) {
      for (;;) {
        const std::size_t k = cursor.fetch_add(1, std::memory_order_relaxed);
        if (k >= parts.size()) break;
        run_lane_window(parts[k], end);
      }
    });
  }

  // Barrier fold, in ascending lane order so every aggregate is
  // deterministic.  The clock advances to the latest executed event, as in
  // run().
  Time max_exec = kNoTime;
  std::exception_ptr error;
  for (const std::uint32_t i : parts) {
    Lane& lane = lanes_[i];
    executed_ += lane.win_executed;
    scheduled_ += lane.win_scheduled;
    cancelled_ += lane.win_cancelled;
    tombstones_ += lane.win_tombstones;
    compactions_ += lane.win_compactions;
    armed_ = static_cast<std::size_t>(static_cast<std::int64_t>(armed_) +
                                      lane.win_armed_delta);
    if (lane.win_last_exec != kNoTime)
      max_exec = std::max(max_exec, lane.win_last_exec);
    if (lane.error != nullptr && error == nullptr) error = lane.error;
    lane.error = nullptr;
  }
  if (max_exec != kNoTime) now_ = std::max(now_, max_exec);
  peak_pending_ = std::max(peak_pending_, armed_);
  // Deterministic merge of the cross-cluster events deferred past the
  // window end: ascending origin lane, then origin append order.
  for (const std::uint32_t i : parts) {
    Lane& lane = lanes_[i];
    for (CrossEvent& ce : lane.outbox) {
      schedule_from(ce.src, ce.time, ce.priority, std::move(ce.fn));
    }
    lane.outbox.clear();
  }
  if (error != nullptr) std::rethrow_exception(error);
}

void Engine::run_lane_window(std::uint32_t index, Time window_end) {
  Lane& lane = lanes_[index];
  lane.win_last_exec = kNoTime;
  lane.win_executed = lane.win_scheduled = lane.win_cancelled = 0;
  lane.win_tombstones = lane.win_compactions = 0;
  lane.win_armed_delta = 0;
  lane.error = nullptr;
  ExecContext ctx{this, &lane, index, /*now=*/0, kNoSource, window_end};
  tls_ctx_ = &ctx;
  try {
    for (;;) {
      const Entry* top = peek_live(lane, /*in_window=*/true);
      if (top == nullptr || top->time >= window_end) break;
      const Entry e = lane.heap.front();
      std::pop_heap(lane.heap.begin(), lane.heap.end(), Later{});
      lane.heap.pop_back();
      Slot& s = lane.slots[e.slot];
      Handler fn = std::move(s.fn);
      ctx.src = s.src;
      s.fn = nullptr;
      ++s.gen;
      lane.free.push_back(e.slot);
      --lane.win_armed_delta;
      ++lane.win_executed;
      ctx.now = e.time;
      lane.win_last_exec = e.time;
      fn();
    }
  } catch (...) {
    lane.error = std::current_exception();
  }
  tls_ctx_ = nullptr;
}

// -- SourceScope --------------------------------------------------------------

SourceScope::SourceScope(Engine& engine, SourceId src) {
  Engine::ExecContext* c = engine.context();
  slot_ = c != nullptr ? &c->src : &engine.ambient_src_;
  prev_ = *slot_;
  *slot_ = src;
}

SourceScope::~SourceScope() { *slot_ = prev_; }

}  // namespace cosched

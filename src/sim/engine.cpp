#include "sim/engine.h"

#include <utility>

namespace cosched {

EventId Engine::schedule_at(Time t, int priority, Handler fn) {
  COSCHED_CHECK_MSG(t >= now_, "cannot schedule event in the past: t=" << t
                                                                      << " now="
                                                                      << now_);
  COSCHED_CHECK(fn != nullptr);
  std::uint32_t slot;
  if (!free_.empty()) {
    slot = free_.back();
    free_.pop_back();
  } else {
    slot = static_cast<std::uint32_t>(slots_.size());
    slots_.emplace_back();
  }
  Slot& s = slots_[slot];
  s.fn = std::move(fn);
  queue_.push(Entry{t, priority, next_seq_++, slot, s.gen});
  ++scheduled_;
  ++armed_;
  peak_pending_ = std::max(peak_pending_, armed_);
  return make_id(slot, s.gen);
}

bool Engine::cancel(EventId id) {
  const auto slot = static_cast<std::uint32_t>(id & 0xffffffffu);
  const auto gen = static_cast<std::uint32_t>(id >> 32);
  if (slot >= slots_.size()) return false;
  Slot& s = slots_[slot];
  if (s.gen != gen || !s.fn) return false;
  s.fn = nullptr;
  ++s.gen;  // the heap entry, now stale, is skipped as a tombstone
  free_.push_back(slot);
  --armed_;
  ++cancelled_;
  return true;
}

const Engine::Entry* Engine::peek_live() {
  while (!queue_.empty()) {
    const Entry& e = queue_.top();
    if (slots_[e.slot].gen == e.gen) return &e;
    queue_.pop();
    ++tombstones_;
  }
  return nullptr;
}

bool Engine::step() {
  const Entry* top = peek_live();
  if (top == nullptr) return false;
  const Entry e = *top;
  queue_.pop();
  Slot& s = slots_[e.slot];
  Handler fn = std::move(s.fn);
  s.fn = nullptr;
  ++s.gen;
  free_.push_back(e.slot);
  --armed_;
  now_ = e.time;
  ++executed_;
  fn();  // may schedule events and grow slots_; no slot refs held past here
  return true;
}

void Engine::run() {
  while (step()) {
  }
}

void Engine::run_until(Time t) {
  COSCHED_CHECK(t >= now_);
  while (const Entry* e = peek_live()) {
    if (e->time > t) break;
    step();
  }
  now_ = t;
}

}  // namespace cosched

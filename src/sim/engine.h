// Discrete-event simulation engine.
//
// This is the substrate the paper's evaluation runs on: the authors extended
// Qsim (the event-driven simulator shipped with the Cobalt resource manager)
// to drive multiple scheduling domains from one event clock.  We reproduce
// that design: a single engine owns the clock, and every scheduling domain
// (cluster) registers events on it, so cross-domain coscheduling interactions
// are totally ordered and deterministic.
//
// Determinism rules:
//  * Time is integer seconds.
//  * Events at equal time are ordered by (priority, insertion sequence).
//  * Handlers may schedule further events at >= now.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_map>
#include <vector>

#include "util/error.h"
#include "util/types.h"

namespace cosched {

/// Ordering classes for events that share a timestamp.  Lower runs first.
/// Completions precede arrivals so nodes freed at time T are available to a
/// job arriving at T; scheduling iterations run after all state changes at T.
struct EventPriority {
  static constexpr int kJobEnd = 0;
  static constexpr int kHoldRelease = 10;
  static constexpr int kJobSubmit = 20;
  static constexpr int kMessage = 30;
  static constexpr int kSchedule = 40;
  static constexpr int kStats = 50;
};

/// Handle identifying a scheduled event; used for cancellation.
using EventId = std::uint64_t;

class Engine {
 public:
  using Handler = std::function<void()>;

  /// Current simulated time.  Starts at 0 unless reset.
  Time now() const { return now_; }

  /// Schedules a handler at absolute time `t` (>= now).  Returns a handle
  /// that can be passed to cancel().
  EventId schedule_at(Time t, int priority, Handler fn);

  /// Schedules a handler `d` seconds from now.
  EventId schedule_in(Duration d, int priority, Handler fn) {
    COSCHED_CHECK(d >= 0);
    return schedule_at(now_ + d, priority, std::move(fn));
  }

  /// Cancels a pending event.  Returns false if it already ran or was
  /// cancelled before.
  bool cancel(EventId id);

  /// Runs the next pending event; returns false when the queue is empty.
  bool step();

  /// Runs until the queue is empty.
  void run();

  /// Runs all events with time <= `t`, then sets the clock to `t`.
  void run_until(Time t);

  /// Number of scheduled (uncancelled) events.
  std::size_t pending() const { return handlers_.size(); }

  /// Total number of events executed (for micro-benchmarks and tests).
  std::uint64_t executed() const { return executed_; }

 private:
  struct Entry {
    Time time;
    int priority;
    std::uint64_t seq;
    EventId id;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.time != b.time) return a.time > b.time;
      if (a.priority != b.priority) return a.priority > b.priority;
      return a.seq > b.seq;
    }
  };

  Time now_ = 0;
  std::uint64_t next_seq_ = 0;
  EventId next_id_ = 1;
  std::uint64_t executed_ = 0;
  std::priority_queue<Entry, std::vector<Entry>, Later> queue_;
  std::unordered_map<EventId, Handler> handlers_;
};

}  // namespace cosched

// Discrete-event simulation engine.
//
// This is the substrate the paper's evaluation runs on: the authors extended
// Qsim (the event-driven simulator shipped with the Cobalt resource manager)
// to drive multiple scheduling domains from one event clock.  We reproduce
// that design: a single engine owns the clock, and every scheduling domain
// (cluster) registers events on it, so cross-domain coscheduling interactions
// are totally ordered and deterministic.
//
// Determinism rules:
//  * Time is integer seconds.
//  * Events at equal time are ordered by (priority, insertion sequence).
//  * Handlers may schedule further events at >= now.
//
// Storage: handlers live in generation-tagged slots recycled through a free
// list, so steady-state scheduling allocates nothing beyond the heap entry.
// cancel() detaches the slot in O(1); the heap entry becomes a tombstone
// that step()/run_until() drain through one shared path (peek_live).
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "util/error.h"
#include "util/types.h"

namespace cosched {

/// Ordering classes for events that share a timestamp.  Lower runs first.
/// Completions precede arrivals so nodes freed at time T are available to a
/// job arriving at T; scheduling iterations run after all state changes at T.
struct EventPriority {
  static constexpr int kJobEnd = 0;
  static constexpr int kHoldRelease = 10;
  static constexpr int kJobSubmit = 20;
  static constexpr int kMessage = 30;
  static constexpr int kSchedule = 40;
  static constexpr int kStats = 50;
};

/// Handle identifying a scheduled event; used for cancellation.  Encodes
/// (slot index, slot generation) so handles from executed or cancelled
/// events — even ones whose slot was since recycled — never alias a live
/// event.
using EventId = std::uint64_t;

class Engine {
 public:
  using Handler = std::function<void()>;

  /// Current simulated time.  Starts at 0 unless reset.
  Time now() const { return now_; }

  /// Schedules a handler at absolute time `t` (>= now).  Returns a handle
  /// that can be passed to cancel().
  EventId schedule_at(Time t, int priority, Handler fn);

  /// Schedules a handler `d` seconds from now.
  EventId schedule_in(Duration d, int priority, Handler fn) {
    COSCHED_CHECK(d >= 0);
    return schedule_at(now_ + d, priority, std::move(fn));
  }

  /// Cancels a pending event.  Returns false if it already ran or was
  /// cancelled before.
  bool cancel(EventId id);

  /// Runs the next pending event; returns false when the queue is empty.
  bool step();

  /// Runs until the queue is empty.
  void run();

  /// Runs all events with time <= `t`, then sets the clock to `t`.
  void run_until(Time t);

  /// Number of scheduled (uncancelled) events.
  std::size_t pending() const { return armed_; }

  /// Total number of events executed (for micro-benchmarks and tests).
  std::uint64_t executed() const { return executed_; }

  // -- engine counters ---------------------------------------------------

  /// Total events ever scheduled.
  std::uint64_t scheduled_total() const { return scheduled_; }

  /// Total events cancelled before running.
  std::uint64_t cancelled_total() const { return cancelled_; }

  /// High-water mark of pending events (queue sizing / memory telemetry).
  std::size_t peak_pending() const { return peak_pending_; }

  /// Cancelled heap entries skipped while popping (tombstone overhead).
  std::uint64_t tombstones_skipped() const { return tombstones_; }

 private:
  struct Slot {
    std::uint32_t gen = 1;  ///< bumped on cancel/execute; 0 is never issued
    Handler fn;
  };
  struct Entry {
    Time time;
    int priority;
    std::uint64_t seq;
    std::uint32_t slot;
    std::uint32_t gen;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.time != b.time) return a.time > b.time;
      if (a.priority != b.priority) return a.priority > b.priority;
      return a.seq > b.seq;
    }
  };

  static EventId make_id(std::uint32_t slot, std::uint32_t gen) {
    return (static_cast<EventId>(gen) << 32) | slot;
  }

  /// Drains cancelled entries off the heap top; returns the next live entry
  /// or nullptr when the queue is empty.  Shared by step() and run_until()
  /// so tombstones are popped in exactly one place.
  const Entry* peek_live();

  Time now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_ = 0;
  std::uint64_t scheduled_ = 0;
  std::uint64_t cancelled_ = 0;
  std::uint64_t tombstones_ = 0;
  std::size_t armed_ = 0;
  std::size_t peak_pending_ = 0;
  std::priority_queue<Entry, std::vector<Entry>, Later> queue_;
  std::vector<Slot> slots_;
  std::vector<std::uint32_t> free_;
};

}  // namespace cosched

// Discrete-event simulation engine.
//
// This is the substrate the paper's evaluation runs on: the authors extended
// Qsim (the event-driven simulator shipped with the Cobalt resource manager)
// to drive multiple scheduling domains from one event clock.  We reproduce
// that design: a single engine owns the clock, and every scheduling domain
// (cluster) registers events on it, so cross-domain coscheduling interactions
// are totally ordered and deterministic.
//
// Determinism rules:
//  * Time is integer seconds.
//  * Events at equal time are ordered by (priority, insertion sequence).
//  * Handlers may schedule further events at >= now.
//
// Storage: handlers live in generation-tagged slots recycled through a free
// list, so steady-state scheduling allocates nothing beyond the heap entry.
// cancel() detaches the slot in O(1); the heap entry becomes a tombstone
// drained through one shared path (peek_live), and a lane whose heap is more
// than half tombstones is compacted in one O(n) rebuild instead of draining
// lazily one-by-one.
//
// -- Parallel execution (dependency clusters + conservative lookahead) -------
//
// The engine can execute independent regions of the simulation concurrently
// while producing *byte-identical* results for every thread count:
//
//  * Event sources.  Components register themselves via register_source();
//    add_dependency() records that two sources exchange synchronous calls or
//    messages.  build_clusters() runs a reachability pass over the
//    dependency graph (the MTObjects IsDependentOn idiom) and assigns every
//    connected component to an execution *lane*.  Events scheduled with no
//    source — or before clustering — live on lane 0, the global lane.
//  * Serial semantics are unchanged: step()/run()/run_until() execute the
//    min entry across all lanes under the legacy (time, priority, global
//    insertion sequence) total order, so serial runs are bit-identical to
//    the single-queue engine.
//  * run_parallel(threads) executes *windows* [T, W): W is bounded by the
//    next global-lane event (a cross-cluster event pins the window and is
//    executed serially in total order) and by the conservative lookahead
//    (set_lookahead).  Within a window each lane's events are executed by a
//    worker-pool thread in the lane's own (time, priority, seq) order with a
//    deterministic lane-strided seq band, so insertion sequences never
//    depend on thread timing.  A handler may schedule into its own lane
//    freely; schedules into *another* lane are buffered and must land at or
//    after the window end (the lookahead contract) — they are merged in
//    deterministic lane order at the window barrier.  cancel() from a worker
//    must target the worker's own lane.
#pragma once

#include <cstdint>
#include <functional>
#include <limits>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "util/error.h"
#include "util/types.h"

namespace cosched {

class WorkerPool;

/// Ordering classes for events that share a timestamp.  Lower runs first.
/// Completions precede arrivals so nodes freed at time T are available to a
/// job arriving at T; scheduling iterations run after all state changes at T.
struct EventPriority {
  static constexpr int kJobEnd = 0;
  static constexpr int kHoldRelease = 10;
  static constexpr int kJobSubmit = 20;
  static constexpr int kMessage = 30;
  static constexpr int kSchedule = 40;
  static constexpr int kStats = 50;
};

/// Handle identifying a scheduled event; used for cancellation.  Encodes
/// (slot generation, lane, slot index) so handles from executed or cancelled
/// events — even ones whose slot was since recycled — never alias a live
/// event.
using EventId = std::uint64_t;

/// Returned for a cross-lane schedule issued from inside a parallel window:
/// the event is buffered until the window barrier, so no slot exists yet.
/// Never aliases a live event (generation 0 is never issued) and cancel()
/// on it returns false.
inline constexpr EventId kNullEventId = 0;

/// Identifies a registered event source (a cluster, a node-pool region, an
/// RPC endpoint).  Events inherit the source of the handler that schedules
/// them unless overridden with schedule_from() or SourceScope.
using SourceId = std::uint32_t;
inline constexpr SourceId kNoSource = 0xffffffffu;

class Engine {
 public:
  using Handler = std::function<void()>;

  /// `until` default for run_parallel: drain the queue.
  static constexpr Time kTimeMax = std::numeric_limits<Time>::max();

  Engine();
  ~Engine();
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Current simulated time.  Starts at 0 unless reset.  Inside a parallel
  /// window this is the executing lane's local clock.
  Time now() const;

  /// Schedules a handler at absolute time `t` (>= now) under the current
  /// ambient source (the source of the executing event, or whatever an
  /// enclosing SourceScope set).  Returns a handle for cancel().
  EventId schedule_at(Time t, int priority, Handler fn);

  /// Schedules a handler `d` seconds from now.
  EventId schedule_in(Duration d, int priority, Handler fn) {
    COSCHED_CHECK(d >= 0);
    return schedule_at(now() + d, priority, std::move(fn));
  }

  /// schedule_at() with an explicit source tag (lane routing).
  EventId schedule_from(SourceId src, Time t, int priority, Handler fn);

  /// Cancels a pending event.  Returns false if it already ran or was
  /// cancelled before.  From inside a parallel window the event must belong
  /// to the calling worker's lane.
  bool cancel(EventId id);

  /// Runs the next pending event; returns false when the queue is empty.
  bool step();

  /// Runs until the queue is empty.
  void run();

  /// Runs all events with time <= `t`, then sets the clock to `t`.
  void run_until(Time t);

  // -- event sources & dependency clusters -------------------------------

  /// Registers an event source.  Must precede build_clusters().
  SourceId register_source(std::string name);

  /// Declares that sources `a` and `b` interact (synchronous peer calls,
  /// messages): they must execute in one lane.  Must precede
  /// build_clusters().
  void add_dependency(SourceId a, SourceId b);

  /// Partitions the registered sources into dependency clusters (connected
  /// components of the add_dependency() graph) and assigns each its own
  /// execution lane.  Must run before any event is scheduled; returns the
  /// number of clusters.  Without this call every event stays on the global
  /// lane and run_parallel() degenerates to serial execution.
  std::size_t build_clusters();

  /// Number of dependency clusters (0 before build_clusters()).
  std::size_t cluster_count() const {
    return clustered_ ? lanes_.size() - 1 : 0;
  }

  /// Lane a source executes on (0 = global lane; meaningful after
  /// build_clusters()).
  std::uint32_t lane_of_source(SourceId src) const {
    return lane_index_of(src);
  }

  /// Conservative lookahead: from inside a parallel window, a cross-lane
  /// schedule must land at least this far past the window start (it is
  /// checked against the window end, which this bound caps).  kNoTime
  /// (default) = unbounded windows; then any dynamic cross-lane schedule
  /// from a window is an error.  Use the minimum inter-domain network
  /// latency of the model.
  void set_lookahead(Duration d) { lookahead_ = d; }
  Duration lookahead() const { return lookahead_; }

  /// Runs all events with time <= `until` on `threads` workers (the calling
  /// thread participates).  Results are byte-identical for every thread
  /// count, including 1, and identical to run()/run_until() whenever lanes
  /// are independent.  Unlike run_until() the clock is left at the last
  /// executed event, like run().
  void run_parallel(unsigned threads, Time until = kTimeMax);

  /// Number of scheduled (uncancelled) events.  Serial context only.
  std::size_t pending() const { return armed_; }

  /// Total number of events executed (for micro-benchmarks and tests).
  std::uint64_t executed() const { return executed_; }

  // -- engine counters ---------------------------------------------------

  /// Total events ever scheduled.
  std::uint64_t scheduled_total() const { return scheduled_; }

  /// Total events cancelled before running.
  std::uint64_t cancelled_total() const { return cancelled_; }

  /// High-water mark of pending events (queue sizing / memory telemetry).
  /// Under run_parallel() this is sampled at window barriers.
  std::size_t peak_pending() const { return peak_pending_; }

  /// Cancelled heap entries dropped while popping or compacting.
  std::uint64_t tombstones_skipped() const { return tombstones_; }

  /// Whole-heap tombstone compactions (lazy drain replaced by one rebuild).
  std::uint64_t heap_compactions() const { return compactions_; }

  /// Parallel windows executed by run_parallel().
  std::uint64_t parallel_windows() const { return windows_; }

  /// Events executed serially by run_parallel() because a global-lane
  /// (cross-cluster) event pinned the window.
  std::uint64_t pinned_steps() const { return pinned_steps_; }

 private:
  friend class SourceScope;

  struct Slot {
    std::uint32_t gen = 1;  ///< bumped on cancel/execute; 0 is never issued
    SourceId src = kNoSource;
    Handler fn;
  };
  struct Entry {
    Time time;
    int priority;
    std::uint64_t seq;
    std::uint32_t slot;
    std::uint32_t gen;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.time != b.time) return a.time > b.time;
      if (a.priority != b.priority) return a.priority > b.priority;
      return a.seq > b.seq;
    }
  };
  /// A cross-lane event buffered during a parallel window.
  struct CrossEvent {
    Time time;
    int priority;
    SourceId src;
    Handler fn;
  };
  /// One execution lane: its own heap, slots, and free list.  Outside
  /// parallel windows all lanes are owned by the (single) serial context;
  /// inside a window each participating lane is owned by exactly one
  /// worker, which accumulates its effects in the win_* fields for the
  /// deterministic fold at the barrier.
  struct Lane {
    std::vector<Entry> heap;  ///< binary heap via std::push_heap/pop_heap
    std::vector<Slot> slots;
    std::vector<std::uint32_t> free;
    std::uint64_t dead = 0;  ///< tombstones currently in `heap`

    // -- parallel-window scratch (reset per window) ----------------------
    std::uint64_t win_seq = 0;  ///< next seq in this lane's strided band
    Time win_last_exec = kNoTime;
    std::uint64_t win_executed = 0;
    std::uint64_t win_scheduled = 0;
    std::uint64_t win_cancelled = 0;
    std::uint64_t win_tombstones = 0;
    std::uint64_t win_compactions = 0;
    std::int64_t win_armed_delta = 0;
    std::vector<CrossEvent> outbox;
    std::exception_ptr error;
  };
  struct Source {
    std::string name;
    std::uint32_t lane = 0;
  };
  /// Per-worker execution state during a parallel window; installed as a
  /// thread-local so now()/schedule_at()/cancel() route to the owned lane.
  struct ExecContext {
    Engine* engine;
    Lane* lane;
    std::uint32_t lane_index;
    Time now;
    SourceId src;
    Time window_end;  ///< exclusive
  };

  static constexpr int kLaneBits = 8;
  static constexpr int kSlotBits = 24;
  static constexpr std::uint32_t kSlotLimit = 1u << kSlotBits;
  static constexpr std::size_t kMaxLanes = 1u << kLaneBits;
  /// Seq band width per lane per window; bands keep insertion sequences a
  /// pure function of (lane, within-lane order), never of thread timing.
  static constexpr std::uint64_t kSeqStride = 1ull << 32;
  /// Minimum heap size before tombstone compaction is considered.
  static constexpr std::size_t kCompactMinHeap = 64;

  static EventId make_id(std::uint32_t lane, std::uint32_t slot,
                         std::uint32_t gen) {
    return (static_cast<EventId>(gen) << 32) |
           (static_cast<EventId>(lane) << kSlotBits) | slot;
  }

  std::uint32_t lane_index_of(SourceId src) const {
    if (!clustered_ || src == kNoSource) return 0;
    COSCHED_CHECK(src < sources_.size());
    return sources_[src].lane;
  }

  /// Active window context of *this* engine on the calling thread.
  ExecContext* context() const;
  SourceId current_source() const;

  EventId insert(Lane& lane, std::uint32_t lane_index, Time t, int priority,
                 std::uint64_t seq, SourceId src, Handler fn, bool in_window);
  /// Drains cancelled entries off lane's heap top; returns the next live
  /// entry or nullptr when the lane is empty.
  const Entry* peek_live(Lane& lane, bool in_window);
  /// Compacts the lane heap when more than half its entries are tombstones.
  void maybe_compact(Lane& lane, bool in_window);
  /// Min live entry across all lanes under the legacy total order.
  struct PeekResult {
    Lane* lane = nullptr;
    const Entry* entry = nullptr;
  };
  PeekResult peek_serial();
  /// Pops and executes the (live) top of `lane` in serial context.
  void exec_top(Lane& lane);
  /// Executes one parallel window [start, end) over `parts`.
  void run_window(const std::vector<std::uint32_t>& parts, Time end,
                  unsigned threads);
  /// Worker body: drains `lanes_[index]` up to the window end.
  void run_lane_window(std::uint32_t index, Time window_end);
  void ensure_pool(unsigned threads);

  static thread_local ExecContext* tls_ctx_;

  Time now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_ = 0;
  std::uint64_t scheduled_ = 0;
  std::uint64_t cancelled_ = 0;
  std::uint64_t tombstones_ = 0;
  std::uint64_t compactions_ = 0;
  std::uint64_t windows_ = 0;
  std::uint64_t pinned_steps_ = 0;
  std::size_t armed_ = 0;
  std::size_t peak_pending_ = 0;
  SourceId ambient_src_ = kNoSource;
  Duration lookahead_ = kNoTime;  ///< kNoTime = unbounded windows
  bool clustered_ = false;
  std::vector<Lane> lanes_;
  std::vector<Source> sources_;
  std::vector<std::pair<SourceId, SourceId>> deps_;
  std::unique_ptr<WorkerPool> pool_;
};

/// RAII ambient-source override: events scheduled in scope (without an
/// explicit schedule_from) are tagged with `src`.  Used by components whose
/// public entry points are called from outside any handler (trace loading,
/// test drivers, recovery re-arming) so their events land on the right lane.
/// Window-aware: inside a parallel window it overrides the worker's
/// thread-local context instead of engine state.
class SourceScope {
 public:
  SourceScope(Engine& engine, SourceId src);
  ~SourceScope();
  SourceScope(const SourceScope&) = delete;
  SourceScope& operator=(const SourceScope&) = delete;

 private:
  SourceId* slot_;
  SourceId prev_;
};

}  // namespace cosched

#include "core/config.h"

#include "util/error.h"

namespace cosched {

const char* to_string(Scheme s) {
  switch (s) {
    case Scheme::kHold: return "hold";
    case Scheme::kYield: return "yield";
  }
  return "?";
}

Scheme parse_scheme(const std::string& name) {
  if (name == "hold" || name == "H" || name == "h") return Scheme::kHold;
  if (name == "yield" || name == "Y" || name == "y") return Scheme::kYield;
  throw ParseError("unknown coscheduling scheme: " + name);
}

}  // namespace cosched

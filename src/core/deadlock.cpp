#include "core/deadlock.h"

#include <algorithm>
#include <functional>

#include "util/error.h"

namespace cosched {

std::vector<WaitEdge> build_wait_graph(
    const std::vector<const Cluster*>& clusters) {
  std::vector<WaitEdge> edges;
  for (std::size_t x = 0; x < clusters.size(); ++x) {
    const Cluster* cx = clusters[x];
    // The job table is unordered; sort the holding candidates so the edge
    // list (which callers print) is independent of hash-insertion history.
    std::vector<JobId> holding;
    for (const auto& [id, job] : cx->scheduler().jobs()) {
      if (job.state == JobState::kHolding && job.spec.is_paired())
        holding.push_back(id);
    }
    std::sort(holding.begin(), holding.end());
    for (JobId id : holding) {
      const RuntimeJob& job = *cx->scheduler().find(id);
      // Find the domain holding this group's unready member.
      for (std::size_t y = 0; y < clusters.size(); ++y) {
        if (y == x) continue;
        const Cluster* cy = clusters[y];
        // const_cast is safe: get_mate_job only reads the registry.
        auto mate = const_cast<Cluster*>(cy)->get_mate_job(job.spec.group, id);
        if (!mate) continue;
        const RuntimeJob* mj = cy->scheduler().find(*mate);
        const bool queued_blocked =
            mj != nullptr && mj->state == JobState::kQueued &&
            !cy->scheduler().pool().can_allocate(
                cy->scheduler().pool().charged(mj->spec.nodes));
        const bool unsubmitted = mj == nullptr;
        if (queued_blocked || unsubmitted)
          edges.push_back(WaitEdge{x, y, id});
      }
    }
  }
  return edges;
}

bool has_hold_wait_cycle(const std::vector<const Cluster*>& clusters) {
  const auto edges = build_wait_graph(clusters);
  const std::size_t n = clusters.size();
  std::vector<std::vector<std::size_t>> adj(n);
  for (const WaitEdge& e : edges) adj[e.from].push_back(e.to);

  enum class Mark { kWhite, kGray, kBlack };
  std::vector<Mark> mark(n, Mark::kWhite);
  std::function<bool(std::size_t)> dfs = [&](std::size_t u) {
    mark[u] = Mark::kGray;
    for (std::size_t v : adj[u]) {
      if (mark[v] == Mark::kGray) return true;
      if (mark[v] == Mark::kWhite && dfs(v)) return true;
    }
    mark[u] = Mark::kBlack;
    return false;
  };
  for (std::size_t u = 0; u < n; ++u)
    if (mark[u] == Mark::kWhite && dfs(u)) return true;
  return false;
}

}  // namespace cosched

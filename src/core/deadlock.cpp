#include "core/deadlock.h"

#include <algorithm>
#include <functional>

#include "util/error.h"

namespace cosched {

std::vector<WaitEdge> build_wait_graph(
    const std::vector<const Cluster*>& clusters) {
  std::vector<WaitEdge> edges;
  for (std::size_t x = 0; x < clusters.size(); ++x) {
    const Cluster* cx = clusters[x];
    // The job table is unordered; sort the holding candidates so the edge
    // list (which callers print) is independent of hash-insertion history.
    std::vector<JobId> holding;
    for (const auto& [id, job] : cx->scheduler().jobs()) {
      if (job.state == JobState::kHolding && job.spec.is_paired())
        holding.push_back(id);
    }
    std::sort(holding.begin(), holding.end());
    for (JobId id : holding) {
      const RuntimeJob& job = *cx->scheduler().find(id);
      // Find the domain holding this group's unready member.
      for (std::size_t y = 0; y < clusters.size(); ++y) {
        if (y == x) continue;
        const Cluster* cy = clusters[y];
        // const_cast is safe: get_mate_job only reads the registry.
        auto mate = const_cast<Cluster*>(cy)->get_mate_job(job.spec.group, id);
        if (!mate) continue;
        const RuntimeJob* mj = cy->scheduler().find(*mate);
        const bool queued_blocked =
            mj != nullptr && mj->state == JobState::kQueued &&
            !cy->scheduler().pool().can_allocate(
                cy->scheduler().pool().charged(mj->spec.nodes));
        const bool unsubmitted = mj == nullptr;
        if (queued_blocked || unsubmitted)
          edges.push_back(WaitEdge{x, y, id});
      }
    }
  }
  return edges;
}

bool has_hold_wait_cycle(const std::vector<const Cluster*>& clusters) {
  const auto edges = build_wait_graph(clusters);
  const std::size_t n = clusters.size();
  std::vector<std::vector<std::size_t>> adj(n);
  for (const WaitEdge& e : edges) adj[e.from].push_back(e.to);

  enum class Mark { kWhite, kGray, kBlack };
  std::vector<Mark> mark(n, Mark::kWhite);
  std::function<bool(std::size_t)> dfs = [&](std::size_t u) {
    mark[u] = Mark::kGray;
    for (std::size_t v : adj[u]) {
      if (mark[v] == Mark::kGray) return true;
      if (mark[v] == Mark::kWhite && dfs(v)) return true;
    }
    mark[u] = Mark::kBlack;
    return false;
  };
  for (std::size_t u = 0; u < n; ++u)
    if (mark[u] == Mark::kWhite && dfs(u)) return true;
  return false;
}

WaitCycle extract_wait_cycle(const std::vector<WaitEdge>& edges,
                             std::size_t domains) {
  WaitCycle cycle;
  // Sort so the DFS neighbor order (and therefore the reported cycle) is a
  // pure function of the edge *set*, not of build order.
  std::vector<WaitEdge> sorted = edges;
  std::sort(sorted.begin(), sorted.end(),
            [](const WaitEdge& a, const WaitEdge& b) {
              if (a.from != b.from) return a.from < b.from;
              if (a.to != b.to) return a.to < b.to;
              return a.holding_job < b.holding_job;
            });
  std::vector<std::vector<std::size_t>> adj(domains);
  for (std::size_t i = 0; i < sorted.size(); ++i) {
    if (sorted[i].from < domains && sorted[i].to < domains)
      adj[sorted[i].from].push_back(i);
  }

  enum class Mark { kWhite, kGray, kBlack };
  constexpr std::size_t kNone = static_cast<std::size_t>(-1);
  std::vector<Mark> mark(domains, Mark::kWhite);
  // Depth at which each gray node was entered = index of its outgoing edge
  // on the current DFS path.
  std::vector<std::size_t> depth(domains, kNone);
  std::vector<std::size_t> path;  // edge indices along the current DFS path

  std::function<bool(std::size_t)> dfs = [&](std::size_t u) {
    mark[u] = Mark::kGray;
    depth[u] = path.size();
    for (std::size_t idx : adj[u]) {
      const std::size_t v = sorted[idx].to;
      if (mark[v] == Mark::kGray) {
        // Back edge u -> v: the cycle is v's outgoing path edges plus this
        // closing edge.
        for (std::size_t j = depth[v]; j < path.size(); ++j)
          cycle.edges.push_back(sorted[path[j]]);
        cycle.edges.push_back(sorted[idx]);
        return true;
      }
      if (mark[v] == Mark::kWhite) {
        path.push_back(idx);
        if (dfs(v)) return true;
        path.pop_back();
      }
    }
    mark[u] = Mark::kBlack;
    depth[u] = kNone;
    return false;
  };
  for (std::size_t u = 0; u < domains; ++u) {
    if (mark[u] == Mark::kWhite && dfs(u)) break;
  }
  return cycle;
}

WaitCycle find_hold_wait_cycle(const std::vector<const Cluster*>& clusters) {
  return extract_wait_cycle(build_wait_graph(clusters), clusters.size());
}

WaitEdge choose_victim(const WaitCycle& cycle,
                       const std::function<Time(const WaitEdge&)>& submit_of) {
  COSCHED_CHECK(!cycle.empty());
  const WaitEdge* victim = &cycle.edges.front();
  Time victim_submit = submit_of(*victim);
  for (std::size_t i = 1; i < cycle.edges.size(); ++i) {
    const WaitEdge& e = cycle.edges[i];
    const Time s = submit_of(e);
    // Latest submit = lowest FCFS priority loses; ties toward lowest id.
    if (s > victim_submit ||
        (s == victim_submit && e.holding_job < victim->holding_job)) {
      victim = &e;
      victim_submit = s;
    }
  }
  return *victim;
}

}  // namespace cosched

#include "core/config_io.h"

#include <cmath>
#include <cstdlib>
#include <fstream>
#include <istream>
#include <map>
#include <sstream>

#include "util/error.h"
#include "workload/swf.h"
#include "workload/synth.h"

namespace cosched {

namespace {

std::string trim(const std::string& s) {
  const auto begin = s.find_first_not_of(" \t\r");
  if (begin == std::string::npos) return "";
  const auto end = s.find_last_not_of(" \t\r");
  return s.substr(begin, end - begin + 1);
}

[[noreturn]] void fail(std::size_t lineno, const std::string& what) {
  throw ParseError("config line " + std::to_string(lineno) + ": " + what);
}

double to_double(const std::string& v, std::size_t lineno) {
  char* end = nullptr;
  const double out = std::strtod(v.c_str(), &end);
  if (end == v.c_str() || *end != '\0') fail(lineno, "expected number: " + v);
  return out;
}

std::int64_t to_int(const std::string& v, std::size_t lineno) {
  char* end = nullptr;
  const long long out = std::strtoll(v.c_str(), &end, 10);
  if (end == v.c_str() || *end != '\0')
    fail(lineno, "expected integer: " + v);
  return out;
}

bool to_bool(const std::string& v, std::size_t lineno) {
  if (v == "true" || v == "1" || v == "yes") return true;
  if (v == "false" || v == "0" || v == "no") return false;
  fail(lineno, "expected boolean: " + v);
}

void apply_key(DomainConfig& d, const std::string& key,
               const std::string& value, std::size_t lineno) {
  DomainSpec& s = d.spec;
  if (key == "capacity") {
    s.capacity = to_int(value, lineno);
  } else if (key == "policy") {
    make_policy(value);  // validate eagerly so errors carry a line number
    s.policy = value;
  } else if (key == "scheme") {
    s.cosched.scheme = parse_scheme(value);
  } else if (key == "enabled") {
    s.cosched.enabled = to_bool(value, lineno);
  } else if (key == "hold-release-min") {
    s.cosched.hold_release_period = to_int(value, lineno) * kMinute;
  } else if (key == "max-hold-fraction") {
    s.cosched.max_hold_fraction = to_double(value, lineno);
  } else if (key == "max-yield-before-hold") {
    s.cosched.max_yield_before_hold =
        static_cast<int>(to_int(value, lineno));
  } else if (key == "yield-boost") {
    s.cosched.yield_priority_boost = to_double(value, lineno);
  } else if (key == "yield-retry-min") {
    s.cosched.yield_retry_period = to_int(value, lineno) * kMinute;
  } else if (key == "backfill") {
    if (value == "easy") {
      s.sched.backfill = true;
      s.sched.conservative = false;
    } else if (value == "conservative") {
      s.sched.backfill = true;
      s.sched.conservative = true;
    } else if (value == "none") {
      s.sched.backfill = false;
    } else {
      fail(lineno, "backfill must be easy|conservative|none, got " + value);
    }
  } else if (key == "allocation") {
    if (value == "plain") {
      s.alloc = nullptr;
    } else if (value == "bgp-partitions") {
      s.alloc = std::make_shared<PartitionAllocation>(
          PartitionAllocation::intrepid());
    } else {
      fail(lineno, "allocation must be plain|bgp-partitions, got " + value);
    }
  } else if (key == "trace") {
    d.trace_source = value;
  } else {
    fail(lineno, "unknown key '" + key + "'");
  }
}

}  // namespace

std::vector<DomainConfig> parse_domain_configs(std::istream& in) {
  std::vector<DomainConfig> domains;
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    // Strip comments.
    if (const auto hash = line.find('#'); hash != std::string::npos)
      line = line.substr(0, hash);
    line = trim(line);
    if (line.empty()) continue;

    if (line.front() == '[') {
      if (line.back() != ']') fail(lineno, "unterminated section header");
      std::istringstream hs(line.substr(1, line.size() - 2));
      std::string kind, name;
      hs >> kind >> name;
      if (kind != "domain" || name.empty())
        fail(lineno, "expected [domain <name>]");
      DomainConfig d;
      d.spec.name = name;
      domains.push_back(std::move(d));
      continue;
    }

    const auto eq = line.find('=');
    if (eq == std::string::npos) fail(lineno, "expected key = value");
    if (domains.empty()) fail(lineno, "key outside of a [domain] section");
    const std::string key = trim(line.substr(0, eq));
    const std::string value = trim(line.substr(eq + 1));
    apply_key(domains.back(), key, value, lineno);
  }

  for (const DomainConfig& d : domains)
    if (d.spec.capacity <= 0)
      throw ParseError("domain '" + d.spec.name +
                       "' is missing a positive capacity");
  return domains;
}

std::vector<DomainConfig> read_domain_configs(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw Error("cannot open config file: " + path);
  return parse_domain_configs(in);
}

Trace load_trace_source(const std::string& source, const DomainSpec& spec) {
  if (source.empty()) return Trace{};

  constexpr const char* kSynthPrefix = "synth:";
  if (source.rfind(kSynthPrefix, 0) != 0)
    return read_swf_file(source, spec.name);

  // synth:<model>?key=value&key=value
  std::string body = source.substr(std::char_traits<char>::length(kSynthPrefix));
  std::string model_name = body;
  std::map<std::string, std::string> params;
  if (const auto q = body.find('?'); q != std::string::npos) {
    model_name = body.substr(0, q);
    std::istringstream ps(body.substr(q + 1));
    std::string kv;
    while (std::getline(ps, kv, '&')) {
      const auto eq = kv.find('=');
      if (eq == std::string::npos)
        throw ParseError("synth spec: expected key=value in '" + kv + "'");
      params[kv.substr(0, eq)] = kv.substr(eq + 1);
    }
  }

  SystemModel model;
  if (model_name == "intrepid") model = intrepid_model();
  else if (model_name == "eureka") model = eureka_model();
  else
    throw ParseError("synth spec: unknown model '" + model_name + "'");
  // The model generates for the configured machine: rescale its capacity
  // and drop size buckets that no longer fit.
  if (spec.capacity > 0 && spec.capacity != model.capacity) {
    model.capacity = spec.capacity;
    std::erase_if(model.sizes, [&](const SizeBucket& b) {
      return b.nodes > model.capacity;
    });
    if (model.sizes.empty())
      throw ParseError("synth spec: no job sizes fit capacity " +
                       std::to_string(spec.capacity));
  }

  SynthParams p;
  if (params.count("load")) p.offered_load = std::stod(params["load"]);
  if (params.count("days")) p.span = std::stoll(params["days"]) * kDay;
  if (params.count("jobs"))
    p.job_count = static_cast<std::size_t>(std::stoull(params["jobs"]));
  if (params.count("seed"))
    p.seed = static_cast<std::uint64_t>(std::stoull(params["seed"]));
  return generate_trace(model, p);
}

}  // namespace cosched

#include "core/coreservation.h"

#include <algorithm>
#include <map>

#include "sched/profile.h"
#include "util/error.h"

namespace cosched {

namespace {

struct Placed {
  const JobSpec* spec;
  std::size_t domain;
  Time start;
};

}  // namespace

CoReservationResult simulate_co_reservation(
    const std::vector<DomainSpec>& specs, const std::vector<Trace>& traces,
    Duration lead_time) {
  COSCHED_CHECK(specs.size() == traces.size() && !specs.empty());
  COSCHED_CHECK(lead_time >= 0);

  std::vector<TimelineProfile> profiles;
  profiles.reserve(specs.size());
  for (const DomainSpec& s : specs) profiles.emplace_back(s.capacity);

  // Collect jobs from all domains in global submission order; a paired group
  // is placed when its last member has been submitted (the co-reservation
  // can only be negotiated once both sides exist).
  struct Item {
    const JobSpec* spec;
    std::size_t domain;
  };
  std::vector<Item> items;
  for (std::size_t d = 0; d < traces.size(); ++d)
    for (const JobSpec& j : traces[d].jobs()) items.push_back(Item{&j, d});
  std::stable_sort(items.begin(), items.end(),
                   [](const Item& a, const Item& b) {
                     return a.spec->submit < b.spec->submit;
                   });

  std::map<GroupId, std::vector<Item>> pending_groups;
  std::vector<Placed> placed;

  auto place_single = [&](const Item& it) {
    const Time earliest = it.spec->submit + lead_time;
    const Time start = profiles[it.domain].earliest_fit(
        earliest, it.spec->walltime, it.spec->nodes);
    profiles[it.domain].reserve(start, it.spec->walltime, it.spec->nodes);
    placed.push_back(Placed{it.spec, it.domain, start});
  };

  auto place_group = [&](const std::vector<Item>& members) {
    Time t = 0;
    for (const Item& m : members)
      t = std::max(t, m.spec->submit + lead_time);
    // Alternating-maximum fixpoint: every member must fit at the common t.
    for (int iter = 0; iter < 10000; ++iter) {
      Time next = t;
      for (const Item& m : members)
        next = std::max(next, profiles[m.domain].earliest_fit(
                                  next, m.spec->walltime, m.spec->nodes));
      bool all_fit = true;
      for (const Item& m : members)
        all_fit = all_fit && profiles[m.domain].can_reserve(
                                 next, m.spec->walltime, m.spec->nodes);
      if (all_fit) {
        t = next;
        break;
      }
      t = next + 1;
    }
    for (const Item& m : members) {
      profiles[m.domain].reserve(t, m.spec->walltime, m.spec->nodes);
      placed.push_back(Placed{m.spec, m.domain, t});
    }
  };

  // Count members per group so we know when a group is complete.
  std::map<GroupId, std::size_t> group_size;
  for (const Item& it : items)
    if (it.spec->is_paired()) ++group_size[it.spec->group];

  for (const Item& it : items) {
    if (!it.spec->is_paired()) {
      place_single(it);
      continue;
    }
    auto& members = pending_groups[it.spec->group];
    members.push_back(it);
    if (members.size() == group_size[it.spec->group]) {
      place_group(members);
      pending_groups.erase(it.spec->group);
    }
  }
  // Groups missing members (data error) are placed individually.
  for (auto& [g, members] : pending_groups) {
    (void)g;
    for (const Item& m : members) place_single(m);
  }

  // Metrics.
  CoReservationResult result;
  result.systems.resize(specs.size());
  result.fragmentation_node_hours.assign(specs.size(), 0.0);
  std::vector<double> wait_sum(specs.size(), 0.0), slow_sum(specs.size(), 0.0);
  std::vector<double> sync_sum(specs.size(), 0.0);
  std::vector<std::size_t> paired_count(specs.size(), 0);
  std::vector<double> busy_ns(specs.size(), 0.0);
  std::vector<Time> makespan(specs.size(), 0);

  for (const Placed& p : placed) {
    SystemMetrics& m = result.systems[p.domain];
    ++m.jobs_total;
    ++m.jobs_finished;
    const Duration wait = p.start - p.spec->submit;
    wait_sum[p.domain] += static_cast<double>(wait);
    m.max_wait_minutes =
        std::max(m.max_wait_minutes, to_minutes(wait));
    const double resp = static_cast<double>(wait + p.spec->runtime);
    slow_sum[p.domain] += resp / static_cast<double>(p.spec->runtime);
    if (p.spec->is_paired()) {
      ++m.paired_jobs;
      ++paired_count[p.domain];
      // With reservations the whole wait beyond the lead time is
      // synchronization overhead relative to immediate placement; report
      // the wait itself as the comparable figure.
      sync_sum[p.domain] += static_cast<double>(wait);
    }
    busy_ns[p.domain] += static_cast<double>(p.spec->nodes) *
                         static_cast<double>(p.spec->runtime);
    result.fragmentation_node_hours[p.domain] +=
        static_cast<double>(p.spec->nodes) *
        static_cast<double>(p.spec->walltime - p.spec->runtime) / kHour;
    makespan[p.domain] =
        std::max(makespan[p.domain], p.start + p.spec->walltime);
  }

  for (std::size_t d = 0; d < specs.size(); ++d) {
    SystemMetrics& m = result.systems[d];
    m.system = specs[d].name;
    if (m.jobs_finished > 0) {
      const auto n = static_cast<double>(m.jobs_finished);
      m.avg_wait_minutes = wait_sum[d] / n / kMinute;
      m.avg_slowdown = slow_sum[d] / n;
    }
    if (paired_count[d] > 0)
      m.avg_sync_minutes =
          sync_sum[d] / static_cast<double>(paired_count[d]) / kMinute;
    m.makespan = makespan[d];
    if (makespan[d] > 0)
      m.utilization = busy_ns[d] / (static_cast<double>(specs[d].capacity) *
                                    static_cast<double>(makespan[d]));
    m.held_node_hours = result.fragmentation_node_hours[d];
  }
  return result;
}

}  // namespace cosched

#include "core/fault.h"

namespace cosched {

void FaultInjectingPeer::set_plan(FaultPlan plan) {
  plan_ = std::move(plan);
  rng_ = Rng(plan_.seed);
}

bool FaultInjectingPeer::in_outage(Time now) const {
  for (const auto& w : plan_.outages)
    if (now >= w.start && now < w.end) return true;
  if (plan_.flap_period > 0) {
    const Duration p = plan_.flap_period;
    const Time phase = (((now - plan_.flap_phase) % p) + p) % p;
    if (phase < plan_.flap_down_for) return true;
  }
  return false;
}

bool FaultInjectingPeer::in_reply_outage(Time now) const {
  for (const auto& w : plan_.reply_outages)
    if (now >= w.start && now < w.end) return true;
  return false;
}

void FaultInjectingPeer::on_failed_call() {
  // Coalesce: one pending re-examination per link regardless of how many
  // calls failed in this iteration — mirrors an agent rechecking its queue
  // once per backoff period, not per lost packet.
  if (engine_ == nullptr || plan_.retry_backoff <= 0 || !retry_listener_ ||
      retry_pending_)
    return;
  retry_pending_ = true;
  engine_->schedule_in(plan_.retry_backoff, EventPriority::kSchedule, [this] {
    retry_pending_ = false;
    retry_listener_();
  });
}

FaultInjectingPeer::Verdict FaultInjectingPeer::verdict() {
  ++stats_.calls;
  if (down_ || crashed_ ||
      (engine_ != nullptr && in_outage(engine_->now()))) {
    ++stats_.outage_blocked;
    on_failed_call();
    return Verdict::kFail;
  }
  // Each fault dimension draws from the stream only when enabled, so a plan
  // that adds (say) corruption leaves the drop/latency sub-sequences of an
  // otherwise identical plan unchanged.
  if (plan_.drop_probability > 0.0 && rng_.chance(plan_.drop_probability)) {
    ++stats_.dropped;
    on_failed_call();
    return Verdict::kFail;
  }
  if (plan_.latency_base > 0 || plan_.latency_jitter > 0) {
    Duration latency = plan_.latency_base;
    if (plan_.latency_jitter > 0)
      latency += rng_.uniform_int(0, plan_.latency_jitter - 1);
    if (plan_.rpc_deadline > 0 && latency > plan_.rpc_deadline) {
      ++stats_.timed_out;
      on_failed_call();
      return Verdict::kFail;
    }
    stats_.total_latency += static_cast<std::uint64_t>(latency);
  }
  if (plan_.corrupt_probability > 0.0 &&
      rng_.chance(plan_.corrupt_probability)) {
    ++stats_.corrupted;
    on_failed_call();
    return Verdict::kCorrupt;
  }
  // Reply-path faults come last: the request has survived the request path,
  // so the remote executes — only the answer is lost.  The window check
  // draws nothing; the probability draw happens only when enabled, keeping
  // pre-existing plans' fault streams unchanged.
  if (engine_ != nullptr && in_reply_outage(engine_->now())) {
    ++stats_.reply_lost;
    on_failed_call();
    return Verdict::kDropReply;
  }
  if (plan_.reply_drop_probability > 0.0 &&
      rng_.chance(plan_.reply_drop_probability)) {
    ++stats_.reply_lost;
    on_failed_call();
    return Verdict::kDropReply;
  }
  ++stats_.delivered;
  return Verdict::kDeliver;
}

std::optional<std::optional<JobId>> FaultInjectingPeer::get_mate_job(
    GroupId group, JobId asking) {
  const Verdict v = verdict();
  if (v == Verdict::kFail) return std::nullopt;
  auto r = inner_->get_mate_job(group, asking);
  return v == Verdict::kDeliver ? r : std::nullopt;
}

std::optional<MateStatus> FaultInjectingPeer::get_mate_status(JobId mate) {
  const Verdict v = verdict();
  if (v == Verdict::kFail) return std::nullopt;
  auto r = inner_->get_mate_status(mate);
  return v == Verdict::kDeliver ? r : std::nullopt;
}

std::optional<bool> FaultInjectingPeer::try_start_mate(JobId mate) {
  const Verdict v = verdict();
  if (v == Verdict::kFail) return std::nullopt;
  auto r = inner_->try_start_mate(mate);
  return v == Verdict::kDeliver ? r : std::nullopt;
}

std::optional<bool> FaultInjectingPeer::start_job(JobId job) {
  const Verdict v = verdict();
  if (v == Verdict::kFail) return std::nullopt;
  auto r = inner_->start_job(job);
  return v == Verdict::kDeliver ? r : std::nullopt;
}

std::optional<bool> FaultInjectingPeer::gang_prepare(JobId job,
                                                     GroupId group) {
  const Verdict v = verdict();
  if (v == Verdict::kFail) return std::nullopt;
  auto r = inner_->gang_prepare(job, group);
  return v == Verdict::kDeliver ? r : std::nullopt;
}

std::optional<bool> FaultInjectingPeer::gang_commit(JobId job, GroupId group) {
  const Verdict v = verdict();
  if (v == Verdict::kFail) return std::nullopt;
  auto r = inner_->gang_commit(job, group);
  return v == Verdict::kDeliver ? r : std::nullopt;
}

std::optional<bool> FaultInjectingPeer::gang_abort(JobId job, GroupId group) {
  const Verdict v = verdict();
  if (v == Verdict::kFail) return std::nullopt;
  auto r = inner_->gang_abort(job, group);
  return v == Verdict::kDeliver ? r : std::nullopt;
}

std::optional<bool> FaultInjectingPeer::gang_victim(JobId job, GroupId group) {
  const Verdict v = verdict();
  if (v == Verdict::kFail) return std::nullopt;
  auto r = inner_->gang_victim(job, group);
  return v == Verdict::kDeliver ? r : std::nullopt;
}

std::optional<HeartbeatInfo> FaultInjectingPeer::heartbeat(
    const HeartbeatInfo& mine) {
  const Verdict v = verdict();
  if (v == Verdict::kFail) return std::nullopt;
  auto r = inner_->heartbeat(mine);
  return v == Verdict::kDeliver ? r : std::nullopt;
}

}  // namespace cosched

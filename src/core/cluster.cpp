#include "core/cluster.h"

#include <algorithm>
#include <chrono>
#include <tuple>

#include "proto/message.h"
#include "util/error.h"
#include "util/log.h"
#include "util/rng.h"

namespace cosched {

void Cluster::track_dependency(const JobSpec& spec) {
  if (!spec.has_dependency()) return;
  // Dependency already finished: schedule the delayed wake directly (the
  // finish-side drain will never see this dependent).
  const RuntimeJob* dep = sched_.find(spec.after);
  if (dep != nullptr && dep->state == JobState::kFinished) {
    const Time ready_at =
        std::max(engine_.now(), dep->end + spec.after_delay);
    engine_.schedule_at(ready_at, EventPriority::kSchedule,
                        [this] { request_iteration(); });
    return;
  }
  dependents_.emplace(spec.after, std::make_pair(spec.id, spec.after_delay));
}

namespace {

/// RAII commit marker: while a job is deciding/starting, peers that query it
/// see `starting`, which Algorithm 1 treats like `holding` (ready).
class CommitGuard {
 public:
  CommitGuard(std::unordered_set<JobId>& set, JobId id) : set_(set), id_(id) {
    set_.insert(id_);
  }
  ~CommitGuard() { set_.erase(id_); }
  CommitGuard(const CommitGuard&) = delete;
  CommitGuard& operator=(const CommitGuard&) = delete;

 private:
  std::unordered_set<JobId>& set_;
  JobId id_;
};

}  // namespace

Cluster::Cluster(Engine& engine, std::string name, NodeCount capacity,
                 std::unique_ptr<PriorityPolicy> policy, CoschedConfig cosched,
                 SchedulerConfig sched_config,
                 std::shared_ptr<const AllocationModel> alloc)
    : engine_(engine),
      name_(std::move(name)),
      source_(engine.register_source(name_)),
      cfg_(cosched),
      sched_cfg_(sched_config),
      sched_(capacity, std::move(policy), sched_config, std::move(alloc)) {
  sched_.set_on_start([this](const RuntimeJob& job) { on_job_started(job); });
}

void Cluster::arm_periodic_iteration() {
  if (sched_cfg_.iteration_period <= 0 || periodic_armed_) return;
  periodic_armed_ = true;
  periodic_at_ = engine_.now() + sched_cfg_.iteration_period;
  if (journaling()) {
    WireWriter w;
    w.put_i64(periodic_at_);
    journal_->append(JournalRecordKind::kPeriodicArmed, w.bytes());
  }
  periodic_event_ = engine_.schedule_at(periodic_at_, EventPriority::kStats,
                                        [this] { periodic_body(); });
}

void Cluster::periodic_body() {
  periodic_event_.reset();
  periodic_armed_ = false;
  periodic_at_ = kNoTime;
  const bool work_left = sched_.queue_length() > 0 ||
                         sched_.running_count() > 0 ||
                         sched_.holding_count() > 0;
  if (!work_left) return;  // go quiescent; submits re-arm
  request_iteration();
  arm_periodic_iteration();
  journal_commit();
}

void Cluster::add_peer(PeerClient& peer) {
  peers_.push_back(&peer);
  peer_state_.push_back(PeerState{
      FailureDetector(cfg_.liveness.heartbeat_period, engine_.now()),
      HeartbeatInfo{}, false});
}

void Cluster::register_expected(const JobSpec& spec) {
  COSCHED_CHECK(spec.is_paired());
  auto [it, inserted] = group_to_job_.emplace(spec.group, spec.id);
  COSCHED_CHECK_MSG(inserted || it->second == spec.id,
                    "group " << spec.group << " already has local member "
                             << it->second << " on " << name_);
  expected_.emplace(spec.id, spec);
  if (journaling()) {
    WireWriter w;
    encode_job_spec(w, spec);
    journal_->append(JournalRecordKind::kExpected, w.bytes());
    journal_commit();
  }
}

void Cluster::do_submit(const JobSpec& spec) {
  if (spec.is_paired() && !group_to_job_.count(spec.group))
    group_to_job_.emplace(spec.group, spec.id);
  expected_.erase(spec.id);
  sched_.submit(spec, engine_.now());
  track_dependency(spec);
  arm_periodic_iteration();
  arm_liveness_tick();
  if (journaling()) {
    WireWriter w;
    encode_job_spec(w, spec);
    w.put_i64(engine_.now());
    journal_->append(JournalRecordKind::kSubmit, w.bytes());
  }
  if (const RuntimeJob* j = sched_.find(spec.id))
    log_event(JobEventKind::kSubmit, *j);
  request_iteration();
}

void Cluster::load_trace(const Trace& trace) {
  // Entry point from outside any handler: tag the submit events (and
  // everything they transitively schedule) with this domain's lane.
  SourceScope scope(engine_, source_);
  for (const JobSpec& spec : trace.jobs()) {
    if (spec.is_paired()) register_expected(spec);
    engine_.schedule_at(spec.submit, EventPriority::kJobSubmit, [this, spec] {
      // A snapshot restore may already carry this job: the submit event
      // survives the crash (it is untracked) and must re-fire as a no-op.
      if (sched_.find(spec.id) != nullptr) return;
      do_submit(spec);
      journal_commit();
    });
  }
}

void Cluster::submit_now(const JobSpec& spec) {
  SourceScope scope(engine_, source_);
  do_submit(spec);
  journal_commit();
}

void Cluster::kill_job(JobId id) {
  SourceScope scope(engine_, source_);
  const RuntimeJob* j = sched_.find(id);
  if (j == nullptr || j->state == JobState::kFinished) return;
  sched_.kill(id, engine_.now());
  // The stale completion event stays armed (its body is state-guarded) so
  // the engine's drain time matches a run without the kill; only the
  // tracking entry goes.
  completion_events_.erase(id);
  if (journaling()) {
    WireWriter w;
    w.put_i64(id);
    w.put_i64(engine_.now());
    journal_->append(JournalRecordKind::kKill, w.bytes());
  }
  leases_.erase(id);
  gang_prepared_.erase(id);
  gang_backoff_until_.erase(id);
  gang_attempts_.erase(id);
  if (const RuntimeJob* killed = sched_.find(id))
    log_event(JobEventKind::kFinish, *killed);
  request_iteration();
  journal_commit();
}

void Cluster::request_iteration() {
  if (iteration_pending_) return;
  // Callable from peer handlers, retry listeners, and chaos events: always
  // tag the iteration with this domain so it lands on this domain's lane.
  SourceScope scope(engine_, source_);
  iteration_pending_ = true;
  if (journaling()) {
    // Committed immediately: this can be the only record of an entry point
    // (e.g. a transport retry listener), and losing it would silently drop
    // the armed iteration on recovery.
    WireWriter w;
    w.put_i64(engine_.now());
    journal_->append(JournalRecordKind::kIterArmed, w.bytes());
    journal_->commit();
  }
  iteration_event_ = engine_.schedule_at(
      engine_.now(), EventPriority::kSchedule, [this] { run_iteration_body(); });
}

void Cluster::run_iteration_body() {
  iteration_event_.reset();
  iteration_pending_ = false;
  ++iterations_run_;
  sched_.iterate(engine_.now(), [this](RuntimeJob& job) {
    return run_job_hook(job, /*try_context=*/false);
  });
  if (journaling()) {
    WireWriter w;
    w.put_i64(engine_.now());
    journal_->append(JournalRecordKind::kIterate, w.bytes());
  }
  journal_commit();
}

// -- CoschedService ---------------------------------------------------------

std::optional<JobId> Cluster::get_mate_job(GroupId group, JobId asking) {
  (void)asking;
  auto it = group_to_job_.find(group);
  if (it == group_to_job_.end()) return std::nullopt;
  return it->second;
}

MateStatus Cluster::get_mate_status(JobId job) {
  if (committing_.count(job)) return MateStatus::kStarting;
  const RuntimeJob* j = sched_.find(job);
  if (!j)
    return expected_.count(job) ? MateStatus::kUnsubmitted
                                : MateStatus::kUnknown;
  switch (j->state) {
    case JobState::kQueued: return MateStatus::kQueuing;
    case JobState::kHolding: return MateStatus::kHolding;
    case JobState::kRunning: return MateStatus::kRunning;
    case JobState::kFinished: return MateStatus::kFinished;
  }
  return MateStatus::kUnknown;
}

bool Cluster::try_start_mate(JobId job) {
  // Tripwire behind the no-start-with-stale-fence invariant: the dispatcher
  // must not reach this method after admit_fence() said "stale".
  if (job == pending_stale_fence_) ++stale_fence_starts_;
  pending_stale_fence_ = kNoJob;
  ++try_start_requests_;
  if (!sched_.find(job)) return false;  // unsubmitted or unknown: cannot start
  const bool started =
      sched_.try_start_specific(job, engine_.now(), [this](RuntimeJob& j) {
        return run_job_hook(j, /*try_context=*/true);
      });
  journal_commit();
  return started;
}

bool Cluster::start_job(JobId job) {
  if (job == pending_stale_fence_) ++stale_fence_starts_;
  pending_stale_fence_ = kNoJob;
  const RuntimeJob* j = sched_.find(job);
  if (!j || j->state != JobState::kHolding) return false;
  starting_from_hold_ = true;
  // cosched-lint: allow(journal-before-mutate) kStart journaled by on_job_started
  sched_.start_holding(job, engine_.now());
  starting_from_hold_ = false;
  journal_commit();
  return true;
}

// -- Algorithm 1 --------------------------------------------------------------

RunDecision Cluster::run_job_hook(RuntimeJob& job, bool try_context) {
  if (ready_logged_.insert(job.spec.id).second) {
    log_event(JobEventKind::kReady, job);
    if (journaling()) {
      WireWriter w;
      w.put_i64(job.spec.id);
      w.put_i64(job.first_ready);
      journal_->append(JournalRecordKind::kReady, w.bytes());
    }
  }
  if (!journaling()) return run_job_decision(job, try_context);

  // The decision path may talk to peers and flip degraded-mode state; diff
  // it around the call so replay reproduces the §IV-C bookkeeping exactly.
  const std::uint64_t unknown_before = unknown_status_decisions_;
  const std::uint64_t suspected_before = suspected_status_decisions_;
  const bool fault_before = fault_seen_.count(job.spec.id) > 0;
  const bool unsync_before = unsync_pending_.count(job.spec.id) > 0;
  const RunDecision d = run_job_decision(job, try_context);
  const std::uint64_t unknown_delta =
      unknown_status_decisions_ - unknown_before;
  const std::uint64_t suspected_delta =
      suspected_status_decisions_ - suspected_before;
  const bool fault_now = fault_seen_.count(job.spec.id) > 0;
  const bool unsync_now = unsync_pending_.count(job.spec.id) > 0;
  if (unknown_delta != 0 || suspected_delta != 0 ||
      fault_now != fault_before || unsync_now != unsync_before) {
    WireWriter w;
    w.put_i64(job.spec.id);
    w.put_u64(unknown_delta);
    w.put_bool(fault_now);
    w.put_bool(unsync_now);
    w.put_u64(suspected_delta);
    journal_->append(JournalRecordKind::kDegraded, w.bytes());
  }
  return d;
}

RunDecision Cluster::run_job_decision(RuntimeJob& job, bool try_context) {
  blocking_peer_ = -1;

  // Lines 33-36: coscheduling disabled, or a regular job: start normally.
  if (!cfg_.enabled || !job.spec.is_paired()) return RunDecision::kStart;

  // A gang job inside its re-prepare backoff window yields without touching
  // peers (jittered backoff after an aborted round or a victim order).
  if (gang_on()) {
    const auto bo = gang_backoff_until_.find(job.spec.id);
    if (bo != gang_backoff_until_.end() && engine_.now() < bo->second)
      return scheme_decision(job, try_context, Scheme::kYield);
  }

  // Line 2: locate the mate on each peer.  A peer that is down, or has no
  // member of this group, does not constrain the job (lines 30-31).
  using MateRef = GangMate;
  bool transport_fault = false;
  std::int32_t suspect_peer = -1;  // a suspected peer we could not consult
  std::vector<MateRef> mates;
  for (std::size_t i = 0; i < peers_.size(); ++i) {
    // A confirmed-dead peer is not consulted: the detector already holds the
    // answer the transport would eventually fail its way to (§IV-C: remote
    // down, mate unknown — do not block the local job).
    if (liveness_on() && peer_health(i) == PeerHealth::kDead) {
      transport_fault = true;
      ++unknown_status_decisions_;
      continue;
    }
    const auto found = peers_[i]->get_mate_job(job.spec.group, job.spec.id);
    if (!found) {
      if (liveness_on() && peer_health(i) == PeerHealth::kSuspect) {
        // Unreachable but not yet confirmed dead: await confirmation under
        // the local scheme instead of starting unsynchronized right away.
        ++suspected_status_decisions_;
        if (suspect_peer < 0) suspect_peer = static_cast<std::int32_t>(i);
      } else {
        transport_fault = true;
        ++unknown_status_decisions_;
      }
      continue;
    }
    if (!*found) continue;
    mates.push_back(MateRef{peers_[i], static_cast<std::int32_t>(i), **found});
  }
  if (mates.empty()) {
    if (suspect_peer >= 0) {
      blocking_peer_ = suspect_peer;
      return scheme_decision(job, try_context);
    }
    if (transport_fault) unsync_pending_.insert(job.spec.id);
    return RunDecision::kStart;
  }

  CommitGuard commit(committing_, job.spec.id);

  // Lines 4-27: classify each mate.
  std::vector<MateRef> holding, not_ready, suspected;
  std::int32_t unsubmitted_peer = -1;
  for (const MateRef& m : mates) {
    const auto status_reply = m.peer->get_mate_status(m.id);
    MateStatus status;
    if (!status_reply) {
      if (liveness_on() &&
          peer_health(static_cast<std::size_t>(m.peer_index)) ==
              PeerHealth::kSuspect) {
        // The failure is not confirmed yet: treat the silent mate as
        // `suspected` and fall back to the local scheme (hold/yield) rather
        // than start unsynchronized on what may be a transient partition.
        ++suspected_status_decisions_;
        status = MateStatus::kSuspected;
      } else {
        transport_fault = true;
        ++unknown_status_decisions_;
        status = MateStatus::kUnknown;
      }
    } else {
      status = *status_reply;
    }
    switch (status) {
      case MateStatus::kHolding:
        holding.push_back(m);
        break;
      case MateStatus::kStarting:
        break;  // committed by its own Run_Job; it will start with us
      case MateStatus::kQueuing:
        not_ready.push_back(m);
        break;
      case MateStatus::kUnsubmitted:
        not_ready.push_back(m);
        if (unsubmitted_peer < 0) unsubmitted_peer = m.peer_index;
        break;
      case MateStatus::kSuspected:
        suspected.push_back(m);
        break;
      case MateStatus::kRunning:
      case MateStatus::kFinished:
      case MateStatus::kUnknown:
        // Line 25-26: mate failed/unknowable — start the local job normally
        // rather than wait forever.
        break;
    }
  }

  // -- k-of-N two-phase gang costart (>= 3 domains, gang.two_phase on) -----
  // The recursive tryStartMate chain commits one member at a time; a crash
  // or partition mid-chain strands a partial gang.  The two-phase path first
  // places *every* member into a fenced leased hold (prepare), then starts
  // them all (commit) — any failure aborts the round and releases every
  // prepared hold.  Two-domain groups keep the paper's Algorithm-1 chain.
  if (gang_on() && !try_context && mates.size() >= 2) {
    if (!suspected.empty() || suspect_peer >= 0) {
      blocking_peer_ =
          !suspected.empty() ? suspected.front().peer_index : suspect_peer;
      return scheme_decision(job, try_context);
    }
    if (unsubmitted_peer >= 0) {
      // A member is not in its queue yet; there is nothing to prepare.
      blocking_peer_ = unsubmitted_peer;
      return scheme_decision(job, try_context);
    }
    std::vector<MateRef> members = holding;
    members.insert(members.end(), not_ready.begin(), not_ready.end());
    std::sort(members.begin(), members.end(),
              [](const MateRef& a, const MateRef& b) {
                return a.peer_index < b.peer_index;
              });
    const RunDecision d = gang_costart(job, members, transport_fault);
    if (d == RunDecision::kStart && transport_fault)
      unsync_pending_.insert(job.spec.id);
    return d;
  }

  if (!not_ready.empty()) {
    // Lines 10-23: ask the first unready mate's domain to run an additional
    // scheduling iteration.  Its own Run_Job (seeing us as `starting`)
    // recursively extends the chain to any further domains, so one call
    // suffices; `false` means the mate could not start now.
    const auto started = not_ready.front().peer->try_start_mate(
        not_ready.front().id);
    if (!started) {
      transport_fault = true;
      ++unknown_status_decisions_;
    }
    if (started.has_value() && !*started) {
      if (transport_fault) fault_seen_.insert(job.spec.id);
      blocking_peer_ = not_ready.front().peer_index;
      return scheme_decision(job, try_context);
    }
    // Transport failure counts as unknown: do not block the local job.
  }

  if (not_ready.empty() && (!suspected.empty() || suspect_peer >= 0)) {
    // Every reachable mate is ready but at least one lives on a suspected
    // domain: await confirmation under the local scheme instead of waking
    // holders into a possibly half-dead group.
    blocking_peer_ =
        !suspected.empty() ? suspected.front().peer_index : suspect_peer;
    return scheme_decision(job, try_context);
  }

  // Lines 6-8: everyone is ready; wake the holding mates and start.
  for (const MateRef& m : holding) {
    const auto woke = m.peer->start_job(m.id);
    if (!woke) {
      // The wake-up itself was lost: our mate stays holding while we run —
      // the quintessential unsynchronized start.
      transport_fault = true;
      ++unknown_status_decisions_;
    } else if (!*woke) {
      COSCHED_LOG(kDebug) << name_ << ": mate " << m.id
                          << " was no longer holding at start";
    }
  }
  if (transport_fault) unsync_pending_.insert(job.spec.id);
  return RunDecision::kStart;
}

RunDecision Cluster::scheme_decision(RuntimeJob& job, bool try_context,
                                     std::optional<Scheme> force) {
  // Under a remote tryStartMate the job must start or decline; holding or
  // yielding inside someone else's iteration would corrupt their queue pass.
  if (try_context) return RunDecision::kSkip;

  Scheme scheme = force.value_or(cfg_.scheme);

  // §IV-E2: a job that yielded too many times escalates to hold.  The
  // escalation never applies to a forced yield (gang backoff): escalating
  // a backoff into a hold would recreate the deadlock being resolved.
  if (!force && scheme == Scheme::kYield && cfg_.max_yield_before_hold > 0 &&
      job.yield_count >= cfg_.max_yield_before_hold)
    scheme = Scheme::kHold;

  // §IV-E2: cap the fraction of the machine allowed to sit in hold state.
  if (scheme == Scheme::kHold) {
    const auto& pool = sched_.pool();
    const double would_hold =
        static_cast<double>(pool.held() + job.allocated);
    if (would_hold >
        cfg_.max_hold_fraction * static_cast<double>(pool.capacity()))
      scheme = Scheme::kYield;
  }

  if (scheme == Scheme::kHold) {
    schedule_hold_release(job.spec.id);
    if (journaling()) {
      WireWriter w;
      w.put_i64(job.spec.id);
      w.put_i64(engine_.now());
      w.put_i64(job.first_ready);
      w.put_i64(job.allocated);
      journal_->append(JournalRecordKind::kHold, w.bytes());
    }
    log_event(JobEventKind::kHold, job);
    if (liveness_on()) grant_lease(job.spec.id, blocking_peer_);
    return RunDecision::kHold;
  }
  job.priority_boost += cfg_.yield_priority_boost;
  schedule_yield_retry(job.spec.id);
  if (journaling()) {
    WireWriter w;
    w.put_i64(job.spec.id);
    w.put_i64(engine_.now());
    w.put_i64(job.first_ready);
    w.put_double(job.priority_boost);  // absolute, so replay is idempotent
    journal_->append(JournalRecordKind::kYield, w.bytes());
  }
  log_event(JobEventKind::kYield, job);
  return RunDecision::kYield;
}

// -- k-of-N gang costart (two-phase, fenced) ----------------------------------

Duration Cluster::gang_backoff(JobId job, std::uint32_t attempt) const {
  const Duration base = std::max<Duration>(1, cfg_.gang.backoff_base);
  const std::uint32_t exp =
      std::min<std::uint32_t>(attempt > 0 ? attempt - 1 : 0, 6);
  Duration d = base << exp;
  // Jitter is a pure function of (seed, job, attempt): deterministic across
  // runs and replays, yet decorrelated between the gangs of a wait cycle so
  // they do not re-prepare in lockstep forever.
  SplitMix64 mix(cfg_.gang.seed ^
                 (static_cast<std::uint64_t>(job) * 0x9e3779b97f4a7c15ULL) ^
                 attempt);
  d += static_cast<Duration>(mix.next() % static_cast<std::uint64_t>(base));
  if (cfg_.gang.backoff_cap > 0 && d > cfg_.gang.backoff_cap)
    d = cfg_.gang.backoff_cap;
  return d;
}

RunDecision Cluster::gang_hold_hook(RuntimeJob& job) {
  if (ready_logged_.insert(job.spec.id).second) {
    log_event(JobEventKind::kReady, job);
    if (journaling()) {
      WireWriter w;
      w.put_i64(job.spec.id);
      w.put_i64(job.first_ready);
      journal_->append(JournalRecordKind::kReady, w.bytes());
    }
  }
  schedule_hold_release(job.spec.id);
  if (journaling()) {
    WireWriter w;
    w.put_i64(job.spec.id);
    w.put_i64(engine_.now());
    w.put_i64(job.first_ready);
    w.put_i64(job.allocated);
    journal_->append(JournalRecordKind::kHold, w.bytes());
  }
  log_event(JobEventKind::kHold, job);
  // The prepared hold's lease has no renewal source (peer = -1): unless a
  // commit lands, it expires after lease_duration and the fencing epoch
  // advances — a partitioned coordinator can neither keep these nodes past
  // the lease nor commit with its stale token once the partition heals.
  if (liveness_on()) grant_lease(job.spec.id, /*peer=*/-1);
  return RunDecision::kHold;
}

RunDecision Cluster::gang_costart(RuntimeJob& job,
                                  const std::vector<GangMate>& members,
                                  bool& transport_fault) {
  const GroupId group = job.spec.group;

  // Phase 1 — prepare: place every member into a fenced leased hold.
  std::vector<GangMate> prepared;
  std::int32_t failed_peer = -1;
  for (const GangMate& m : members) {
    const auto ok = m.peer->gang_prepare(m.id, group);
    if (!ok) {
      transport_fault = true;
      ++unknown_status_decisions_;
    }
    if (!ok || !*ok) {
      failed_peer = m.peer_index;
      break;
    }
    prepared.push_back(m);
  }

  if (failed_peer >= 0) {
    // Abort: release every hold this round placed, then back off before
    // re-preparing so the gangs of a wait cycle do not livelock
    // re-acquiring each other's nodes.
    for (const GangMate& m : prepared) {
      const auto released = m.peer->gang_abort(m.id, group);
      if (!released) {
        // The member keeps its prepared hold, but its self-expiring lease
        // returns the nodes at expiry — the fencing guarantee.
        transport_fault = true;
        ++unknown_status_decisions_;
      }
    }
    const auto ait = gang_attempts_.find(job.spec.id);
    const std::uint32_t attempt =
        (ait == gang_attempts_.end() ? 0u : ait->second) + 1;
    const Time until = engine_.now() + gang_backoff(job.spec.id, attempt);
    if (journaling()) {
      WireWriter w;
      w.put_i64(job.spec.id);
      w.put_i64(group);
      w.put_i64(engine_.now());
      w.put_bool(true);  // coordinator-side round abort
      w.put_u64(attempt);
      w.put_i64(until);
      journal_->append(JournalRecordKind::kGangAbort, w.bytes());
    }
    gang_attempts_[job.spec.id] = attempt;
    gang_backoff_until_[job.spec.id] = until;
    ++gangs_aborted_;
    if (transport_fault) fault_seen_.insert(job.spec.id);
    blocking_peer_ = failed_peer;
    return scheme_decision(job, /*try_context=*/false, Scheme::kYield);
  }

  // Phase 2 — commit: start every prepared member, then the local job.  A
  // lost commit cannot strand its member: the prepared hold's lease
  // expires, the member requeues, and its own Run_Job sees the rest of the
  // gang running and starts it (§IV-C unknown rule) — eventual completion.
  for (const GangMate& m : prepared) {
    const auto started = m.peer->gang_commit(m.id, group);
    if (!started) {
      transport_fault = true;
      ++unknown_status_decisions_;
    } else if (!*started) {
      COSCHED_LOG(kDebug) << name_ << ": gang member " << m.id
                          << " was no longer prepared at commit";
    }
  }
  if (journaling()) {
    WireWriter w;
    w.put_i64(job.spec.id);
    w.put_i64(group);
    w.put_i64(engine_.now());
    w.put_bool(true);  // coordinator-side commit
    w.put_u64(0);
    w.put_i64(kNoTime);
    journal_->append(JournalRecordKind::kGangCommit, w.bytes());
  }
  gang_started_.insert(job.spec.id);
  ++gangs_committed_;
  return RunDecision::kStart;
}

bool Cluster::gang_prepare(JobId job, GroupId group) {
  pending_stale_fence_ = kNoJob;
  if (!cfg_.enabled) return false;
  const RuntimeJob* j = sched_.find(job);
  if (j == nullptr) return false;
  if (j->state == JobState::kHolding) {
    // Idempotent re-prepare (coordinator retry after a lost reply, or the
    // member already held under its own scheme): refresh the self-expiring
    // lease so the hold is fenced, and report success.
    if (gang_prepared_.insert(job).second) {
      if (journaling()) {
        WireWriter w;
        w.put_i64(job);
        w.put_i64(group);
        w.put_i64(engine_.now());
        journal_->append(JournalRecordKind::kGangPrepare, w.bytes());
      }
      ++gangs_prepared_;
    }
    if (liveness_on()) grant_lease(job, /*peer=*/-1);
    journal_commit();
    return true;
  }
  if (j->state != JobState::kQueued) return false;
  sched_.try_start_specific(job, engine_.now(), [this](RuntimeJob& jj) {
    return gang_hold_hook(jj);
  });
  const RuntimeJob* after = sched_.find(job);
  if (after == nullptr || after->state != JobState::kHolding) {
    // Not enough free nodes (or not eligible yet): the coordinator aborts
    // the round and backs off.
    journal_commit();
    return false;
  }
  if (journaling()) {
    WireWriter w;
    w.put_i64(job);
    w.put_i64(group);
    w.put_i64(engine_.now());
    journal_->append(JournalRecordKind::kGangPrepare, w.bytes());
  }
  gang_prepared_.insert(job);
  ++gangs_prepared_;
  journal_commit();
  return true;
}

bool Cluster::gang_commit(JobId job, GroupId group) {
  // Tripwire parity with start_job: the dispatcher must not reach a gang
  // start after admit_fence() said "stale".
  if (job == pending_stale_fence_) ++stale_fence_starts_;
  pending_stale_fence_ = kNoJob;
  const RuntimeJob* j = sched_.find(job);
  if (j == nullptr || j->state != JobState::kHolding) return false;
  if (journaling()) {
    WireWriter w;
    w.put_i64(job);
    w.put_i64(group);
    w.put_i64(engine_.now());
    w.put_bool(false);  // member-side commit
    w.put_u64(0);
    w.put_i64(kNoTime);
    journal_->append(JournalRecordKind::kGangCommit, w.bytes());
  }
  gang_prepared_.erase(job);
  gang_started_.insert(job);
  starting_from_hold_ = true;
  sched_.start_holding(job, engine_.now());
  starting_from_hold_ = false;
  journal_commit();
  return true;
}

bool Cluster::gang_abort(JobId job, GroupId group) {
  pending_stale_fence_ = kNoJob;
  if (gang_prepared_.count(job) == 0) return false;
  const Time now = engine_.now();
  if (journaling()) {
    WireWriter w;
    w.put_i64(job);
    w.put_i64(group);
    w.put_i64(now);
    w.put_bool(false);  // member-side hold release
    w.put_u64(0);
    w.put_i64(kNoTime);
    journal_->append(JournalRecordKind::kGangAbort, w.bytes());
    if (liveness_on() && leases_.count(job) > 0) {
      // Abort advances the fencing epoch just like a lease expiry: any
      // in-flight commit stamped under the prepared epoch is now stale.
      WireWriter f;
      f.put_u64(static_cast<std::uint64_t>(fence_counter_) + 1);
      journal_->append(JournalRecordKind::kLeaseFence, f.bytes());
    }
  }
  gang_prepared_.erase(job);
  if (liveness_on() && leases_.erase(job) > 0) ++fence_counter_;
  const RuntimeJob* j = sched_.find(job);
  if (j != nullptr && j->state == JobState::kHolding) {
    sched_.release_hold(job, now);
    if (const RuntimeJob* released = sched_.find(job))
      log_event(JobEventKind::kHoldRelease, *released);
    request_iteration();
  }
  journal_commit();
  return true;
}

bool Cluster::gang_victim(JobId job, GroupId group) {
  pending_stale_fence_ = kNoJob;
  const RuntimeJob* j = sched_.find(job);
  if (j == nullptr || j->state != JobState::kHolding) return false;
  const Time now = engine_.now();
  const auto ait = gang_attempts_.find(job);
  const std::uint32_t attempt =
      (ait == gang_attempts_.end() ? 0u : ait->second) + 1;
  const Time until = now + gang_backoff(job, attempt);
  if (journaling()) {
    WireWriter w;
    w.put_i64(job);
    w.put_i64(group);
    w.put_i64(now);
    w.put_u64(attempt);
    w.put_i64(until);
    journal_->append(JournalRecordKind::kGangVictim, w.bytes());
    if (liveness_on() && leases_.count(job) > 0) {
      WireWriter f;
      f.put_u64(static_cast<std::uint64_t>(fence_counter_) + 1);
      journal_->append(JournalRecordKind::kLeaseFence, f.bytes());
    }
  }
  gang_attempts_[job] = attempt;
  gang_backoff_until_[job] = until;
  gang_prepared_.erase(job);
  ++gangs_victimized_;
  if (liveness_on() && leases_.erase(job) > 0) ++fence_counter_;
  sched_.release_hold(job, now);
  if (const RuntimeJob* released = sched_.find(job))
    log_event(JobEventKind::kHoldRelease, *released);
  request_iteration();
  journal_commit();
  return true;
}

// -- events -------------------------------------------------------------------

void Cluster::on_job_started(const RuntimeJob& job) {
  const JobId id = job.spec.id;
  const bool was_unsync = unsync_pending_.erase(id) > 0;
  if (was_unsync) ++unsync_starts_;
  fault_seen_.erase(id);
  // A start retires the job's gang bookkeeping (gang_started_ is permanent:
  // it witnesses the atomicity invariant).  Before the replay check so a
  // replayed kStart clears exactly what the live start cleared.
  gang_prepared_.erase(id);
  gang_backoff_until_.erase(id);
  gang_attempts_.erase(id);
  // During journal replay the start came from a kStart record: the degraded
  // bookkeeping above still applies (driven by replayed kDegraded state),
  // but events, records, and timers are reconstructed elsewhere.
  if (replaying_) return;
  log_event(JobEventKind::kStart, job);
  if (was_unsync) log_event(JobEventKind::kUnsyncStart, job);
  if (journaling()) {
    WireWriter w;
    w.put_i64(id);
    w.put_i64(engine_.now());
    w.put_i64(job.first_ready);
    w.put_i64(job.allocated);
    w.put_bool(starting_from_hold_);
    w.put_bool(was_unsync);
    journal_->append(JournalRecordKind::kStart, w.bytes());
  }
  // A start closes the job's hold lease (replay closes it via the kStart
  // record, in apply_record).
  leases_.erase(id);
  completion_events_[id] = engine_.schedule_at(
      engine_.now() + job.spec.runtime, EventPriority::kJobEnd,
      [this, id] { on_job_finished(id); });
}

void Cluster::on_job_finished(JobId id) {
  completion_events_.erase(id);
  // The job may have been killed between its start and this completion
  // event; a second finish would corrupt the pool accounting.
  const RuntimeJob* cur = sched_.find(id);
  if (cur == nullptr || cur->state != JobState::kRunning) return;
  sched_.finish(id, engine_.now());
  if (journaling()) {
    WireWriter w;
    w.put_i64(id);
    w.put_i64(engine_.now());
    journal_->append(JournalRecordKind::kFinish, w.bytes());
  }
  if (const RuntimeJob* j = sched_.find(id))
    log_event(JobEventKind::kFinish, *j);
  // Dependents gated by a think-time delay become eligible later than this
  // finish-triggered iteration; wake the scheduler when the gap elapses.
  auto [begin, end] = dependents_.equal_range(id);
  for (auto it = begin; it != end; ++it) {
    const Duration delay = it->second.second;
    if (delay > 0)
      engine_.schedule_in(delay, EventPriority::kSchedule,
                          [this] { request_iteration(); });
  }
  dependents_.erase(id);
  request_iteration();
  journal_commit();
}

void Cluster::log_event(JobEventKind kind, const RuntimeJob& job) {
  if (event_log_ == nullptr) return;
  JobEvent e;
  e.time = engine_.now();
  e.system = name_;
  e.kind = kind;
  e.job = job.spec.id;
  e.group = job.spec.group;
  e.nodes = job.spec.nodes;
  event_log_->record(source_, std::move(e));
}

void Cluster::arm_yield_retry_event(Time at, JobId id) {
  // Untracked on purpose: the event survives a crash, and its body is fully
  // state-guarded, so a recovery re-arm at the same (at, id) coalesces: the
  // set entry is the ground truth, and whichever twin fires first consumes
  // it.
  engine_.schedule_at(at, EventPriority::kSchedule, [this, at, id] {
    if (yield_retries_.erase({at, id}) == 0) return;
    const RuntimeJob* j = sched_.find(id);
    if (!j || j->state != JobState::kQueued) return;
    request_iteration();
  });
}

void Cluster::schedule_yield_retry(JobId id) {
  if (cfg_.yield_retry_period <= 0) return;
  const Time at = engine_.now() + cfg_.yield_retry_period;
  yield_retries_.insert({at, id});
  arm_yield_retry_event(at, id);
}

void Cluster::schedule_hold_release(JobId id) {
  (void)id;
  if (cfg_.hold_release_period <= 0) return;  // deadlock breaker disabled
  if (release_tick_pending_) return;
  // One synchronized tick per domain, not per-job timers: the paper's
  // enhancement "force[s] the holding jobs to release their resources
  // periodically".  Releasing all holders at the same instant matters —
  // with staggered per-job releases, a blocked job larger than any single
  // hold can never see enough simultaneous free nodes, and every released
  // holder immediately re-holds (cross-machine livelock).
  release_tick_pending_ = true;
  release_tick_at_ = engine_.now() + cfg_.hold_release_period;
  if (journaling()) {
    WireWriter w;
    w.put_i64(release_tick_at_);
    journal_->append(JournalRecordKind::kTickArmed, w.bytes());
  }
  tick_event_ = engine_.schedule_at(release_tick_at_,
                                    EventPriority::kHoldRelease,
                                    [this] { hold_release_tick(); });
}

void Cluster::hold_release_tick() {
  tick_event_.reset();
  release_tick_pending_ = false;
  release_tick_at_ = kNoTime;
  if (journaling()) {
    WireWriter w;
    w.put_i64(engine_.now());
    journal_->append(JournalRecordKind::kTickFired, w.bytes());
  }
  const std::vector<JobId> holders = sched_.holding_ids();
  if (holders.empty()) {
    journal_commit();
    return;
  }
  for (JobId h : holders) {
    sched_.release_hold(h, engine_.now());
    ++forced_releases_;
    const bool degraded = fault_seen_.count(h) > 0;
    if (degraded) ++degraded_forced_releases_;
    if (journaling()) {
      WireWriter w;
      w.put_i64(h);
      w.put_i64(engine_.now());
      w.put_bool(degraded);
      journal_->append(JournalRecordKind::kHoldRelease, w.bytes());
    }
    leases_.erase(h);  // the domain-wide breaker supersedes the lease
    if (const RuntimeJob* j = sched_.find(h))
      log_event(JobEventKind::kHoldRelease, *j);
  }
  request_iteration();
  journal_commit();
}

// -- liveness layer -----------------------------------------------------------

HeartbeatInfo Cluster::liveness_info() const {
  HeartbeatInfo info;
  info.incarnation = incarnation_;
  info.fence = fence_epoch();
  info.queue_depth = sched_.queue_length();
  info.hold_fraction = sched_.hold_fraction();
  return info;
}

PeerHealth Cluster::peer_health(std::size_t i) const {
  if (!cfg_.liveness.enabled) return PeerHealth::kAlive;
  return peer_state_[i].detector.health(engine_.now(),
                                        cfg_.liveness.phi_suspect,
                                        cfg_.liveness.phi_confirm);
}

std::optional<HeartbeatInfo> Cluster::heartbeat(const HeartbeatInfo& from) {
  // Each side probes independently; answering at all is the evidence the
  // prober wants, and the payload lets it piggyback our load picture.
  (void)from;
  if (!cfg_.liveness.enabled) return std::nullopt;
  return liveness_info();
}

bool Cluster::admit_fence(JobId job, std::uint64_t fence) {
  pending_stale_fence_ = kNoJob;
  if (!cfg_.liveness.enabled || fence == 0 || fence >= fence_epoch())
    return true;
  // The caller learned this token before our last lease expiry (or before a
  // restart bumped the incarnation): its view of our holds is stale, and
  // acting on it could double-start the group.
  ++stale_fence_rejections_;
  pending_stale_fence_ = job;
  if (const RuntimeJob* j = sched_.find(job))
    log_event(JobEventKind::kFenceReject, *j);
  return false;
}

std::uint64_t Cluster::lease_expiry_violations(Time now) const {
  const Duration grace = 2 * cfg_.liveness.heartbeat_period;
  std::uint64_t violations = 0;
  for (const auto& [id, lease] : leases_) {
    if (now - lease.expires_at <= grace) continue;
    const RuntimeJob* j = sched_.find(id);
    if (j != nullptr && j->state == JobState::kHolding) ++violations;
  }
  return violations;
}

void Cluster::arm_liveness_tick() {
  if (!liveness_on() || liveness_armed_) return;
  liveness_armed_ = true;
  liveness_at_ = engine_.now() + cfg_.liveness.heartbeat_period;
  if (journaling()) {
    WireWriter w;
    w.put_i64(liveness_at_);
    journal_->append(JournalRecordKind::kLivenessArmed, w.bytes());
  }
  liveness_event_ = engine_.schedule_at(liveness_at_, EventPriority::kStats,
                                        [this] { liveness_body(); });
}

void Cluster::liveness_body() {
  liveness_event_.reset();
  liveness_armed_ = false;
  liveness_at_ = kNoTime;
  if (!liveness_on()) return;
  const bool work_left = sched_.queue_length() > 0 ||
                         sched_.running_count() > 0 ||
                         sched_.holding_count() > 0;
  // Quiescent fire journals nothing (mirrors periodic_body); submits re-arm.
  if (!work_left && leases_.empty()) return;

  const Time now = engine_.now();
  const HeartbeatInfo mine = liveness_info();

  // Probe every peer first, then journal the whole round before touching
  // detector or lease state (journal-before-mutate for the entire body).
  struct Ack {
    bool acked = false;
    HeartbeatInfo info;
  };
  std::vector<Ack> acks(peers_.size());
  for (std::size_t i = 0; i < peers_.size(); ++i) {
    peer_state_[i].detector.mark_probe(now);
    const auto reply = peers_[i]->heartbeat(mine);
    if (reply) acks[i] = Ack{true, *reply};
  }
  if (journaling()) {
    WireWriter w;
    w.put_i64(now);
    w.put_u64(acks.size());
    for (const Ack& a : acks) {
      w.put_bool(a.acked);
      if (!a.acked) continue;
      w.put_u64(a.info.incarnation);
      w.put_u64(a.info.fence);
      w.put_u64(a.info.queue_depth);
      w.put_double(a.info.hold_fraction);
    }
    journal_->append(JournalRecordKind::kHeartbeat, w.bytes());
  }
  heartbeats_sent_ += acks.size();
  for (std::size_t i = 0; i < peers_.size(); ++i) {
    if (!acks[i].acked) continue;
    ++heartbeats_acked_;
    peer_state_[i].detector.record_heartbeat(now);
    peer_state_[i].info = acks[i].info;
    peer_state_[i].ever_heard = true;
    // Learn the peer's fencing epoch: every later side-effecting call to it
    // carries this token, so the peer can spot us going stale.
    peers_[i]->set_fence_token(acks[i].info.fence);
  }

  // Lease maintenance.  Renewal requires fresh evidence from the blocking
  // peer *this round*; a lease whose peer stayed silent past the expiry
  // auto-expires.  leases_ is ordered, so the scan is deterministic.
  std::vector<std::pair<JobId, bool>> to_expire;  // (job, mate confirmed dead)
  for (auto& [job, lease] : leases_) {
    const bool peer_ok = lease.peer >= 0 &&
                         static_cast<std::size_t>(lease.peer) < acks.size() &&
                         acks[static_cast<std::size_t>(lease.peer)].acked;
    if (peer_ok) {
      const Time renewed = now + cfg_.liveness.lease_duration;
      if (journaling()) {
        WireWriter w;
        w.put_i64(job);
        w.put_i64(renewed);
        journal_->append(JournalRecordKind::kLeaseRenew, w.bytes());
      }
      lease.expires_at = renewed;
      ++lease.renewals;
      ++lease_renewals_;
      continue;
    }
    if (lease.expires_at <= now) {
      const bool dead =
          lease.peer >= 0 &&
          peer_health(static_cast<std::size_t>(lease.peer)) == PeerHealth::kDead;
      to_expire.emplace_back(job, dead);
    }
  }
  for (const auto& [job, dead] : to_expire) expire_lease(job, dead);

  arm_liveness_tick();
  journal_commit();
}

void Cluster::grant_lease(JobId job, std::int32_t peer) {
  HoldLease lease;
  lease.job = job;
  lease.peer = peer;
  lease.granted_at = engine_.now();
  lease.expires_at = engine_.now() + cfg_.liveness.lease_duration;
  lease.token = fence_epoch();
  if (journaling()) {
    WireWriter w;
    lease.snapshot(w);
    journal_->append(JournalRecordKind::kLeaseGrant, w.bytes());
  }
  leases_[job] = lease;
  ++lease_grants_;
  arm_liveness_tick();
}

void Cluster::expire_lease(JobId job, bool mate_dead) {
  const auto it = leases_.find(job);
  if (it == leases_.end()) return;
  const Time now = engine_.now();
  // The fencing epoch advances with the expiry: any in-flight call stamped
  // under the old epoch is stale from this instant, which is exactly what
  // closes the partitioned-then-healed double-start window.
  if (journaling()) {
    WireWriter w;
    w.put_i64(job);
    w.put_i64(now);
    w.put_bool(mate_dead);
    journal_->append(JournalRecordKind::kLeaseExpire, w.bytes());
    WireWriter f;
    f.put_u64(static_cast<std::uint64_t>(fence_counter_) + 1);
    journal_->append(JournalRecordKind::kLeaseFence, f.bytes());
  }
  leases_.erase(it);
  ++lease_expiries_;
  ++fence_counter_;
  const RuntimeJob* j = sched_.find(job);
  if (j != nullptr) log_event(JobEventKind::kLeaseExpire, *j);
  if (j != nullptr && j->state == JobState::kHolding) {
    const bool degraded = mate_dead || fault_seen_.count(job) > 0;
    if (journaling()) {
      WireWriter w;
      w.put_i64(job);
      w.put_i64(now);
      w.put_bool(degraded);
      journal_->append(JournalRecordKind::kHoldRelease, w.bytes());
    }
    sched_.release_hold(job, now);
    ++forced_releases_;
    if (degraded) ++degraded_forced_releases_;
    if (const RuntimeJob* released = sched_.find(job))
      log_event(JobEventKind::kHoldRelease, *released);
    // The requeued job decides afresh next iteration: a confirmed-dead mate
    // then takes the §IV-C unknown path and starts unsynchronized.
    request_iteration();
  }
}

// -- crash-consistent persistence --------------------------------------------

void Cluster::set_journal(Journal* journal, std::uint64_t compact_every) {
  journal_ = journal;
  compact_every_ = compact_every;
  if (journal_ == nullptr) return;
  // The journal must be recoverable from its very first byte: start it with
  // a snapshot of the current state.  There is no previous generation to
  // retain on the initial attach.
  WireWriter snap;
  write_snapshot(snap);
  journal_->compact(snap.bytes(), /*retain_previous=*/false);
}

void Cluster::journal_commit() {
  if (!journaling()) return;
  // ENOSPC ladder, rung 1: an append was dropped since the last commit.
  // Compact before the barrier so the hole the dropped record left never
  // becomes the durable tip of the log.
  if (journal_->no_space()) emergency_compact();
  journal_->commit();
  if (compact_every_ > 0 &&
      journal_->records_since_compaction() >= compact_every_) {
    WireWriter snap;
    write_snapshot(snap);
    try {
      journal_->compact(snap.bytes());
    } catch (const JournalNoSpace&) {
      // The generation-retaining image no longer fits — fall through to the
      // ladder, which collapses to a single snapshot (and beyond).
      emergency_compact();
    } catch (const JournalIoError&) {
      // Transient medium error while re-reading the old image: skip this
      // round; the periodic trigger re-fires at the next threshold commit.
    }
  }
}

void Cluster::emergency_compact() {
  ++enospc_events_;
  WireWriter snap;
  write_snapshot(snap);
  try {
    // Rung 2: collapse the whole log into one snapshot frame, freeing every
    // byte the tail occupied.
    journal_->compact(snap.bytes(), /*retain_previous=*/false);
    ++emergency_compactions_;
  } catch (const Error&) {
    // Rung 3: even a single snapshot does not fit (or the old image cannot
    // be read back) — keep journaling in memory so in-process recovery and
    // the exactly-once cache stay alive, and raise the degraded alarm.
    journal_->degrade_to_memory();
    journal_->compact(snap.bytes(), /*retain_previous=*/false);
  }
}

void Cluster::write_snapshot(WireWriter& w) const {
  w.put_u64(incarnation_);
  w.put_u64(iterations_run_);
  w.put_u64(try_start_requests_);
  w.put_u64(forced_releases_);
  w.put_u64(unknown_status_decisions_);
  w.put_u64(unsync_starts_);
  w.put_u64(degraded_forced_releases_);
  w.put_u64(enospc_events_);
  w.put_u64(emergency_compactions_);

  // All containers go out in a canonical (sorted) order so two snapshots of
  // equal state are byte-identical.
  {
    std::vector<JobId> ids;
    ids.reserve(expected_.size());
    // cosched-lint: ordered(ids are sorted before encoding)
    for (const auto& [id, spec] : expected_) ids.push_back(id);
    std::sort(ids.begin(), ids.end());
    w.put_u64(ids.size());
    for (JobId id : ids) encode_job_spec(w, expected_.at(id));
  }
  {
    // cosched-lint: ordered(pairs are sorted before encoding)
    std::vector<std::pair<GroupId, JobId>> groups(group_to_job_.begin(),
                                                  group_to_job_.end());
    std::sort(groups.begin(), groups.end());
    w.put_u64(groups.size());
    for (const auto& [g, j] : groups) {
      w.put_i64(g);
      w.put_i64(j);
    }
  }
  {
    std::vector<std::tuple<JobId, JobId, Duration>> deps;
    deps.reserve(dependents_.size());
    // cosched-lint: ordered(tuples are sorted before encoding)
    for (const auto& [dep, val] : dependents_)
      deps.emplace_back(dep, val.first, val.second);
    std::sort(deps.begin(), deps.end());
    w.put_u64(deps.size());
    for (const auto& [dep, dependent, delay] : deps) {
      w.put_i64(dep);
      w.put_i64(dependent);
      w.put_i64(delay);
    }
  }
  const auto write_set = [&w](const std::unordered_set<JobId>& s) {
    // cosched-lint: ordered(ids are sorted before encoding)
    std::vector<JobId> ids(s.begin(), s.end());
    std::sort(ids.begin(), ids.end());
    w.put_u64(ids.size());
    for (JobId id : ids) w.put_i64(id);
  };
  write_set(ready_logged_);
  write_set(fault_seen_);
  write_set(unsync_pending_);

  w.put_bool(iteration_pending_);
  w.put_bool(release_tick_pending_);
  w.put_i64(release_tick_at_);
  w.put_bool(periodic_armed_);
  w.put_i64(periodic_at_);
  w.put_u64(yield_retries_.size());
  for (const auto& [at, id] : yield_retries_) {
    w.put_i64(at);
    w.put_i64(id);
  }

  // -- liveness layer (leases_ and peer_state_ are already ordered) ------
  w.put_u64(heartbeats_sent_);
  w.put_u64(heartbeats_acked_);
  w.put_u64(lease_grants_);
  w.put_u64(lease_renewals_);
  w.put_u64(lease_expiries_);
  w.put_u64(stale_fence_rejections_);
  w.put_u64(stale_fence_starts_);
  w.put_u64(suspected_status_decisions_);
  w.put_u64(fence_counter_);
  w.put_bool(liveness_armed_);
  w.put_i64(liveness_at_);
  w.put_u64(leases_.size());
  for (const auto& [id, lease] : leases_) lease.snapshot(w);
  w.put_u64(peer_state_.size());
  for (const PeerState& ps : peer_state_) {
    ps.detector.snapshot(w);
    w.put_u64(ps.info.incarnation);
    w.put_u64(ps.info.fence);
    w.put_u64(ps.info.queue_depth);
    w.put_double(ps.info.hold_fraction);
    w.put_bool(ps.ever_heard);
  }

  // -- gang costart layer (all containers are ordered) -------------------
  w.put_u64(gangs_prepared_);
  w.put_u64(gangs_committed_);
  w.put_u64(gangs_aborted_);
  w.put_u64(gangs_victimized_);
  w.put_u64(gang_prepared_.size());
  for (JobId id : gang_prepared_) w.put_i64(id);
  w.put_u64(gang_started_.size());
  for (JobId id : gang_started_) w.put_i64(id);
  w.put_u64(gang_backoff_until_.size());
  for (const auto& [id, until] : gang_backoff_until_) {
    w.put_i64(id);
    w.put_i64(until);
  }
  w.put_u64(gang_attempts_.size());
  for (const auto& [id, attempt] : gang_attempts_) {
    w.put_i64(id);
    w.put_u64(attempt);
  }

  sched_.snapshot(w);
}

void Cluster::apply_snapshot(WireReader& r) {
  incarnation_ = r.get_u64();
  iterations_run_ = r.get_u64();
  try_start_requests_ = r.get_u64();
  forced_releases_ = r.get_u64();
  unknown_status_decisions_ = r.get_u64();
  unsync_starts_ = r.get_u64();
  degraded_forced_releases_ = r.get_u64();
  enospc_events_ = r.get_u64();
  emergency_compactions_ = r.get_u64();

  for (std::uint64_t n = r.get_u64(); n > 0; --n) {
    const JobSpec spec = decode_job_spec(r);
    expected_.emplace(spec.id, spec);
  }
  for (std::uint64_t n = r.get_u64(); n > 0; --n) {
    const GroupId g = r.get_i64();
    const JobId j = r.get_i64();
    group_to_job_.emplace(g, j);
  }
  for (std::uint64_t n = r.get_u64(); n > 0; --n) {
    const JobId dep = r.get_i64();
    const JobId dependent = r.get_i64();
    const Duration delay = r.get_i64();
    dependents_.emplace(dep, std::make_pair(dependent, delay));
  }
  const auto read_set = [&r](std::unordered_set<JobId>& s) {
    for (std::uint64_t n = r.get_u64(); n > 0; --n) s.insert(r.get_i64());
  };
  read_set(ready_logged_);
  read_set(fault_seen_);
  read_set(unsync_pending_);

  iteration_pending_ = r.get_bool();
  release_tick_pending_ = r.get_bool();
  release_tick_at_ = r.get_i64();
  periodic_armed_ = r.get_bool();
  periodic_at_ = r.get_i64();
  for (std::uint64_t n = r.get_u64(); n > 0; --n) {
    const Time at = r.get_i64();
    const JobId id = r.get_i64();
    yield_retries_.insert({at, id});
  }

  heartbeats_sent_ = r.get_u64();
  heartbeats_acked_ = r.get_u64();
  lease_grants_ = r.get_u64();
  lease_renewals_ = r.get_u64();
  lease_expiries_ = r.get_u64();
  stale_fence_rejections_ = r.get_u64();
  stale_fence_starts_ = r.get_u64();
  suspected_status_decisions_ = r.get_u64();
  fence_counter_ = static_cast<std::uint32_t>(r.get_u64());
  liveness_armed_ = r.get_bool();
  liveness_at_ = r.get_i64();
  for (std::uint64_t n = r.get_u64(); n > 0; --n) {
    const HoldLease lease = HoldLease::restore(r);
    leases_.emplace(lease.job, lease);
  }
  const std::uint64_t n_peers = r.get_u64();
  COSCHED_CHECK_MSG(n_peers == peer_state_.size(),
                    name_ << ": snapshot has " << n_peers
                          << " peers, cluster has " << peer_state_.size());
  for (PeerState& ps : peer_state_) {
    ps.detector.restore(r);
    ps.info.incarnation = r.get_u64();
    ps.info.fence = r.get_u64();
    ps.info.queue_depth = r.get_u64();
    ps.info.hold_fraction = r.get_double();
    ps.ever_heard = r.get_bool();
  }

  gangs_prepared_ = r.get_u64();
  gangs_committed_ = r.get_u64();
  gangs_aborted_ = r.get_u64();
  gangs_victimized_ = r.get_u64();
  for (std::uint64_t n = r.get_u64(); n > 0; --n)
    gang_prepared_.insert(r.get_i64());
  for (std::uint64_t n = r.get_u64(); n > 0; --n)
    gang_started_.insert(r.get_i64());
  for (std::uint64_t n = r.get_u64(); n > 0; --n) {
    const JobId id = r.get_i64();
    gang_backoff_until_[id] = r.get_i64();
  }
  for (std::uint64_t n = r.get_u64(); n > 0; --n) {
    const JobId id = r.get_i64();
    gang_attempts_[id] = static_cast<std::uint32_t>(r.get_u64());
  }

  sched_.restore(r);
}

void Cluster::wipe_for_recovery() {
  // cosched-lint: ordered(every event is cancelled; order is unobservable)
  for (auto& [id, ev] : completion_events_) engine_.cancel(ev);
  completion_events_.clear();
  if (iteration_event_) engine_.cancel(*iteration_event_);
  if (tick_event_) engine_.cancel(*tick_event_);
  if (periodic_event_) engine_.cancel(*periodic_event_);
  if (liveness_event_) engine_.cancel(*liveness_event_);
  iteration_event_.reset();
  tick_event_.reset();
  periodic_event_.reset();
  liveness_event_.reset();

  group_to_job_.clear();
  expected_.clear();
  dependents_.clear();
  committing_.clear();
  ready_logged_.clear();
  fault_seen_.clear();
  unsync_pending_.clear();
  yield_retries_.clear();
  replay_last_iterate_ = kNoTime;
  iteration_pending_ = false;
  release_tick_pending_ = false;
  periodic_armed_ = false;
  release_tick_at_ = kNoTime;
  periodic_at_ = kNoTime;
  iterations_run_ = 0;
  try_start_requests_ = 0;
  forced_releases_ = 0;
  unknown_status_decisions_ = 0;
  unsync_starts_ = 0;
  degraded_forced_releases_ = 0;
  enospc_events_ = 0;
  emergency_compactions_ = 0;
  incarnation_ = 1;
  starting_from_hold_ = false;

  leases_.clear();
  for (PeerState& ps : peer_state_)
    ps = PeerState{FailureDetector(cfg_.liveness.heartbeat_period,
                                   engine_.now()),
                   HeartbeatInfo{}, false};
  fence_counter_ = 0;
  liveness_armed_ = false;
  liveness_at_ = kNoTime;
  pending_stale_fence_ = kNoJob;
  heartbeats_sent_ = 0;
  heartbeats_acked_ = 0;
  lease_grants_ = 0;
  lease_renewals_ = 0;
  lease_expiries_ = 0;
  stale_fence_rejections_ = 0;
  stale_fence_starts_ = 0;
  suspected_status_decisions_ = 0;
  blocking_peer_ = -1;

  gang_prepared_.clear();
  gang_started_.clear();
  gang_backoff_until_.clear();
  gang_attempts_.clear();
  gangs_prepared_ = 0;
  gangs_committed_ = 0;
  gangs_aborted_ = 0;
  gangs_victimized_ = 0;
}

void Cluster::restore_snapshot(WireReader& r) {
  journal_ = nullptr;  // a restore does not adopt a journal by itself
  wipe_for_recovery();
  replaying_ = true;
  apply_snapshot(r);
  replaying_ = false;
}

void Cluster::apply_record(const JournalRecord& rec) {
  WireReader r(rec.payload);
  switch (rec.kind) {
    case JournalRecordKind::kSnapshot:
      // Snapshot records are verified and applied (or skipped, for the
      // generations behind the one chosen) by recover_from_journal(); the
      // replay loop never routes them here.
      COSCHED_CHECK_MSG(false, name_ << ": snapshot record routed to replay");
      break;
    case JournalRecordKind::kIncarnation:
      incarnation_ = r.get_u64();
      break;
    case JournalRecordKind::kExpected: {
      const JobSpec spec = decode_job_spec(r);
      if (spec.is_paired()) group_to_job_.emplace(spec.group, spec.id);
      expected_.emplace(spec.id, spec);
      break;
    }
    case JournalRecordKind::kSubmit: {
      const JobSpec spec = decode_job_spec(r);
      const Time t = r.get_i64();
      if (spec.is_paired() && !group_to_job_.count(spec.group))
        group_to_job_.emplace(spec.group, spec.id);
      expected_.erase(spec.id);
      sched_.submit(spec, t);
      // Re-register the dependency link only while it can still fire; wakes
      // for already-finished dependencies are re-derived by
      // rearm_after_restore().
      if (spec.has_dependency()) {
        const RuntimeJob* dep = sched_.find(spec.after);
        if (dep == nullptr || dep->state != JobState::kFinished)
          dependents_.emplace(spec.after,
                              std::make_pair(spec.id, spec.after_delay));
      }
      break;
    }
    case JournalRecordKind::kReady: {
      const JobId id = r.get_i64();
      const Time first_ready = r.get_i64();
      ready_logged_.insert(id);
      if (RuntimeJob* j = sched_.find_mut(id))
        if (j->first_ready == kNoTime) j->first_ready = first_ready;
      break;
    }
    case JournalRecordKind::kStart: {
      const JobId id = r.get_i64();
      const Time t = r.get_i64();
      const Time first_ready = r.get_i64();
      const NodeCount allocated = r.get_i64();
      const bool from_hold = r.get_bool();
      r.get_bool();  // was_unsync: reproduced via replayed kDegraded state
      if (from_hold)
        sched_.start_holding(id, t);
      else
        sched_.replay_start(id, t, first_ready, allocated);
      leases_.erase(id);
      break;
    }
    case JournalRecordKind::kHold: {
      const JobId id = r.get_i64();
      const Time t = r.get_i64();
      const Time first_ready = r.get_i64();
      const NodeCount allocated = r.get_i64();
      sched_.replay_hold(id, t, first_ready, allocated);
      break;
    }
    case JournalRecordKind::kHoldRelease: {
      const JobId id = r.get_i64();
      const Time t = r.get_i64();
      const bool degraded = r.get_bool();
      sched_.release_hold(id, t);
      ++forced_releases_;
      if (degraded) ++degraded_forced_releases_;
      leases_.erase(id);
      break;
    }
    case JournalRecordKind::kYield: {
      const JobId id = r.get_i64();
      const Time t = r.get_i64();
      const Time first_ready = r.get_i64();
      const double boost = r.get_double();
      sched_.replay_yield(id, first_ready, boost);
      if (cfg_.yield_retry_period > 0)
        yield_retries_.insert({t + cfg_.yield_retry_period, id});
      break;
    }
    case JournalRecordKind::kFinish: {
      const JobId id = r.get_i64();
      const Time t = r.get_i64();
      sched_.finish(id, t);
      dependents_.erase(id);
      break;
    }
    case JournalRecordKind::kKill: {
      const JobId id = r.get_i64();
      const Time t = r.get_i64();
      sched_.kill(id, t);
      leases_.erase(id);
      break;
    }
    case JournalRecordKind::kIterate:
      // cosched-lint: allow(journal-coverage) replay-scoped scratch (kNoTime outside recovery), consumed by rearm_after_restore in the same pass
      replay_last_iterate_ = r.get_i64();
      iteration_pending_ = false;
      ++iterations_run_;
      sched_.replay_clear_demotions();
      break;
    case JournalRecordKind::kTickArmed:
      release_tick_pending_ = true;
      release_tick_at_ = r.get_i64();
      break;
    case JournalRecordKind::kTickFired:
      release_tick_pending_ = false;
      release_tick_at_ = kNoTime;
      break;
    case JournalRecordKind::kIterArmed:
      iteration_pending_ = true;
      break;
    case JournalRecordKind::kPeriodicArmed:
      periodic_armed_ = true;
      periodic_at_ = r.get_i64();
      break;
    case JournalRecordKind::kDegraded: {
      const JobId id = r.get_i64();
      const std::uint64_t unknown_delta = r.get_u64();
      const bool fault_now = r.get_bool();
      const bool unsync_now = r.get_bool();
      suspected_status_decisions_ += r.get_u64();
      unknown_status_decisions_ += unknown_delta;
      if (fault_now)
        fault_seen_.insert(id);
      else
        fault_seen_.erase(id);
      if (unsync_now)
        unsync_pending_.insert(id);
      else
        unsync_pending_.erase(id);
      break;
    }
    case JournalRecordKind::kLeaseGrant: {
      const HoldLease lease = HoldLease::restore(r);
      leases_[lease.job] = lease;
      ++lease_grants_;
      break;
    }
    case JournalRecordKind::kLeaseRenew: {
      const JobId id = r.get_i64();
      const Time expires = r.get_i64();
      const auto it = leases_.find(id);
      if (it != leases_.end()) {
        it->second.expires_at = expires;
        ++it->second.renewals;
      }
      ++lease_renewals_;
      break;
    }
    case JournalRecordKind::kLeaseExpire: {
      const JobId id = r.get_i64();
      leases_.erase(id);
      ++lease_expiries_;
      break;
    }
    case JournalRecordKind::kLeaseFence:
      fence_counter_ = static_cast<std::uint32_t>(r.get_u64());
      break;
    case JournalRecordKind::kHeartbeat: {
      const Time t = r.get_i64();
      const std::uint64_t n = r.get_u64();
      heartbeats_sent_ += n;
      for (std::uint64_t i = 0; i < n; ++i) {
        if (i < peer_state_.size()) peer_state_[i].detector.mark_probe(t);
        if (!r.get_bool()) continue;
        HeartbeatInfo info;
        info.incarnation = r.get_u64();
        info.fence = r.get_u64();
        info.queue_depth = r.get_u64();
        info.hold_fraction = r.get_double();
        ++heartbeats_acked_;
        if (i < peer_state_.size()) {
          peer_state_[i].detector.record_heartbeat(t);
          peer_state_[i].info = info;
          peer_state_[i].ever_heard = true;
        }
      }
      break;
    }
    case JournalRecordKind::kLivenessArmed:
      liveness_armed_ = true;
      liveness_at_ = r.get_i64();
      break;
    case JournalRecordKind::kDedup:
      break;  // owned by the RPC layer, not scheduler state
    case JournalRecordKind::kGangPrepare: {
      const JobId id = r.get_i64();
      gang_prepared_.insert(id);
      ++gangs_prepared_;
      break;
    }
    case JournalRecordKind::kGangCommit: {
      const JobId id = r.get_i64();
      r.get_i64();  // group
      r.get_i64();  // time
      const bool coordinator = r.get_bool();
      gang_prepared_.erase(id);
      gang_started_.insert(id);
      if (coordinator) ++gangs_committed_;
      // The start itself replays from the kStart record that follows.
      break;
    }
    case JournalRecordKind::kGangAbort: {
      const JobId id = r.get_i64();
      r.get_i64();  // group
      const Time t = r.get_i64();
      const bool coordinator = r.get_bool();
      const auto attempt = static_cast<std::uint32_t>(r.get_u64());
      const Time until = r.get_i64();
      if (coordinator) {
        gang_attempts_[id] = attempt;
        gang_backoff_until_[id] = until;
        ++gangs_aborted_;
      } else {
        gang_prepared_.erase(id);
        leases_.erase(id);
        const RuntimeJob* j = sched_.find(id);
        if (j != nullptr && j->state == JobState::kHolding)
          sched_.release_hold(id, t);
      }
      break;
    }
    case JournalRecordKind::kGangVictim: {
      const JobId id = r.get_i64();
      r.get_i64();  // group
      const Time t = r.get_i64();
      const auto attempt = static_cast<std::uint32_t>(r.get_u64());
      const Time until = r.get_i64();
      gang_attempts_[id] = attempt;
      gang_backoff_until_[id] = until;
      gang_prepared_.erase(id);
      ++gangs_victimized_;
      leases_.erase(id);
      const RuntimeJob* j = sched_.find(id);
      if (j != nullptr && j->state == JobState::kHolding)
        sched_.release_hold(id, t);
      break;
    }
  }
}

std::size_t Cluster::apply_verified_snapshot(
    const std::vector<JournalRecord>& records, RecoveryStats& stats) {
  // Candidate snapshots, newest first.
  std::vector<std::size_t> snaps;
  for (std::size_t i = 0; i < records.size(); ++i)
    if (records[i].kind == JournalRecordKind::kSnapshot) snaps.push_back(i);
  COSCHED_CHECK_MSG(!snaps.empty(),
                    name_ << ": no snapshot record salvaged from the journal");

  for (auto it = snaps.rbegin(); it != snaps.rend(); ++it) {
    const JournalRecord& rec = records[*it];
    const SnapshotView view = parse_snapshot_payload(rec);
    if (!view.checksum_ok) {
      // The envelope says the state bytes rotted — do not even try to parse
      // them; fall back a generation.
      stats.snapshot_fallback = true;
      continue;
    }
    wipe_for_recovery();
    try {
      WireReader sr(view.state);
      apply_snapshot(sr);
    } catch (const ParseError&) {
      // A v1 snapshot carries no checksum, so rot surfaces here instead; a
      // clean wipe makes the next (older) candidate start from scratch.
      wipe_for_recovery();
      stats.snapshot_fallback = true;
      continue;
    }
    stats.snapshot_generation = view.generation;
    return *it;
  }
  COSCHED_CHECK_MSG(false,
                    name_ << ": every salvaged snapshot generation is corrupt");
  return records.size();
}

void Cluster::replay_salvaged_tail(const std::vector<JournalRecord>& records,
                                   std::size_t snap_idx, RecoveryStats& stats) {
  // Records to replay: everything sequenced after the chosen snapshot.  A
  // salvage scan returns stream order, which reordered pre-fsync writes can
  // permute — sort by sequence number (stable within a seq so a duplicate's
  // first copy wins) before judging holes.
  std::vector<const JournalRecord*> tail;
  for (std::size_t i = 0; i < records.size(); ++i)
    if (records[i].seq > records[snap_idx].seq) tail.push_back(&records[i]);
  std::stable_sort(tail.begin(), tail.end(),
                   [](const JournalRecord* a, const JournalRecord* b) {
                     return a->seq < b->seq;
                   });

  std::uint64_t prev_seq = records[snap_idx].seq;
  bool holed = false;
  for (const JournalRecord* rec : tail) {
    if (rec->seq == prev_seq) {
      // Same record persisted twice (reorder + retry artifacts): the first
      // copy already applied; re-applying would double-count.
      ++stats.duplicates_skipped;
      continue;
    }
    if (holed || rec->seq != prev_seq + 1) {
      // First hole ends the sound replay: records beyond it would apply over
      // missing intermediate state.  Count both the hole and the survivors
      // we refuse to use — this is the data_loss_reported() contract.
      if (!holed) {
        holed = true;
        ++stats.seq_holes;
        stats.records_missing += rec->seq - prev_seq - 1;
      }
      ++stats.records_dropped;
      prev_seq = rec->seq;
      continue;
    }
    prev_seq = rec->seq;
    if (rec->kind == JournalRecordKind::kSnapshot) {
      // A newer-but-rejected (or mid-tail retained) snapshot: its state is
      // already covered by the records around it; it only advances the seq.
      continue;
    }
    apply_record(*rec);
    ++stats.records_replayed;
  }
}

Cluster::RecoveryStats Cluster::recover_from_journal(Journal& journal) {
  const auto t0 = std::chrono::steady_clock::now();
  // A JournalIoError here (transient read failure) propagates: the caller
  // owns the retry loop, and each retry re-draws the fault stream.
  const std::vector<std::uint8_t> bytes = journal.sink().contents();
  const SalvageReport rep = salvage_scan(bytes);

  RecoveryStats stats;
  stats.bytes_scanned = rep.bytes_scanned;
  stats.bytes_skipped = rep.bytes_skipped;
  stats.corrupt_regions = rep.corrupt_regions.size();
  stats.tail_torn = rep.tail_torn;

  journal_ = nullptr;  // never journal while wiping or replaying
  replaying_ = true;
  const std::size_t snap_idx = apply_verified_snapshot(rep.records, stats);
  stats.records_replayed = 1;  // the snapshot itself
  replay_salvaged_tail(rep.records, snap_idx, stats);
  replaying_ = false;
  rearm_after_restore();

  // New life: bump the incarnation and make it durable so peers (and the
  // RPC dedup cache) can tell pre-crash requests from post-crash ones.
  ++incarnation_;
  journal_ = &journal;
  WireWriter inc;
  inc.put_u64(incarnation_);
  journal_->append(JournalRecordKind::kIncarnation, inc.bytes());
  journal_->commit();

  stats.incarnation = incarnation_;
  stats.replay_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  return stats;
}

void Cluster::rearm_after_restore() {
  // Runs outside handler context (restore/recovery): re-armed timers must
  // land back on this domain's lane.
  SourceScope scope(engine_, source_);
  const Time now = engine_.now();

  // Completions for every running job, armed at the job's absolute end time
  // in (end, start, id) order so same-instant completions pop in the same
  // sequence an uncrashed run would produce.
  struct Completion {
    Time end;
    Time start;
    JobId id;
  };
  std::vector<Completion> completions;
  for (const auto& [id, job] : sched_.jobs()) {
    if (job.state != JobState::kRunning) continue;
    completions.push_back({job.start + job.spec.runtime, job.start, id});
  }
  std::sort(completions.begin(), completions.end(),
            [](const Completion& a, const Completion& b) {
              return std::tie(a.end, a.start, a.id) <
                     std::tie(b.end, b.start, b.id);
            });
  for (const Completion& c : completions) {
    const JobId id = c.id;
    completion_events_[id] =
        engine_.schedule_at(std::max(now, c.end), EventPriority::kJobEnd,
                            [this, id] { on_job_finished(id); });
  }

  if (release_tick_pending_) {
    if (release_tick_at_ >= now) {
      tick_event_ = engine_.schedule_at(release_tick_at_,
                                        EventPriority::kHoldRelease,
                                        [this] { hold_release_tick(); });
    } else {
      // The tick fired before the crash but its kTickFired never committed
      // together with a state change we kept — treat it as spent.
      release_tick_pending_ = false;
      release_tick_at_ = kNoTime;
    }
  }

  if (periodic_armed_) {
    if (periodic_at_ >= now) {
      periodic_event_ = engine_.schedule_at(periodic_at_, EventPriority::kStats,
                                            [this] { periodic_body(); });
    } else {
      // A quiescent periodic fire journals nothing; an armed-in-the-past
      // timer therefore means it already fired and found no work.
      periodic_armed_ = false;
      periodic_at_ = kNoTime;
    }
  }

  if (liveness_armed_) {
    if (liveness_at_ >= now) {
      liveness_event_ = engine_.schedule_at(liveness_at_, EventPriority::kStats,
                                            [this] { liveness_body(); });
    } else {
      // Same quiescence rule as the periodic timer: a liveness fire with
      // work (or leases) always journals a kHeartbeat, so armed-in-the-past
      // means it fired and found nothing to do.
      liveness_armed_ = false;
      liveness_at_ = kNoTime;
    }
  }
  // Defensive: leases must never sit without a renewal/expiry driver.  In
  // any consistent journal state leases imply an armed tick, so this only
  // fires if that invariant was already broken — and it re-derives the same
  // way on a second recovery, so it needs no record of its own.
  if (!liveness_armed_ && liveness_on() && !leases_.empty())
    arm_liveness_tick();

  // Re-teach peers the fencing tokens learned before the crash: the stubs'
  // stamps are process state, not journal state.
  for (std::size_t i = 0; i < peers_.size() && i < peer_state_.size(); ++i)
    if (peer_state_[i].ever_heard)
      peers_[i]->set_fence_token(peer_state_[i].info.fence);

  for (auto it = yield_retries_.begin(); it != yield_retries_.end();) {
    const Time at = it->first;
    const JobId id = it->second;
    if (at < now || (at == now && replay_last_iterate_ == now)) {
      // Fired before the crash.  The at == now case is provable because a
      // retry at a timestamp is always armed earlier (at - period), so it
      // sorts before — and runs before — the iteration armed at that
      // timestamp; a committed kIterate at `now` therefore means every retry
      // due at `now` was already consumed.  kYield replay re-derives the set
      // entry unconditionally, so without this prune the re-armed twin would
      // fire again after recovery and schedule an extra iteration.
      it = yield_retries_.erase(it);
      continue;
    }
    arm_yield_retry_event(at, id);
    ++it;
  }

  // Dependency wakes whose dependency finished before the crash: a job
  // still queued behind a satisfied-later constraint re-checks at its ready
  // time (this re-derives both the delayed finish-side wakes and the
  // track_dependency() direct wakes).
  for (const auto& [id, job] : sched_.jobs()) {
    if (job.state != JobState::kQueued || !job.spec.has_dependency()) continue;
    const RuntimeJob* dep = sched_.find(job.spec.after);
    if (dep == nullptr || dep->state != JobState::kFinished) continue;
    const Time ready_at = dep->end + job.spec.after_delay;
    if (ready_at > now)
      engine_.schedule_at(ready_at, EventPriority::kSchedule,
                          [this] { request_iteration(); });
  }

  // The pending iteration is re-armed LAST.  In live operation the
  // iteration event is always the newest same-priority event at its
  // timestamp (it is armed by whichever trigger fired first), so it runs
  // after every same-instant retry/wake and their requests coalesce into
  // it.  Re-arming it before the yield retries above would invert that
  // order at the crash instant: a retry firing after the iteration would
  // schedule a second iteration at the same time, yielding paired jobs once
  // more than the uncrashed run.
  if (iteration_pending_)
    iteration_event_ = engine_.schedule_at(now, EventPriority::kSchedule,
                                           [this] { run_iteration_body(); });
}

}  // namespace cosched

#include "core/cluster.h"

#include <algorithm>

#include "util/error.h"
#include "util/log.h"

namespace cosched {

void Cluster::track_dependency(const JobSpec& spec) {
  if (!spec.has_dependency()) return;
  // Dependency already finished: schedule the delayed wake directly (the
  // finish-side drain will never see this dependent).
  const RuntimeJob* dep = sched_.find(spec.after);
  if (dep != nullptr && dep->state == JobState::kFinished) {
    const Time ready_at =
        std::max(engine_.now(), dep->end + spec.after_delay);
    engine_.schedule_at(ready_at, EventPriority::kSchedule,
                        [this] { request_iteration(); });
    return;
  }
  dependents_.emplace(spec.after, std::make_pair(spec.id, spec.after_delay));
}

namespace {

/// RAII commit marker: while a job is deciding/starting, peers that query it
/// see `starting`, which Algorithm 1 treats like `holding` (ready).
class CommitGuard {
 public:
  CommitGuard(std::unordered_set<JobId>& set, JobId id) : set_(set), id_(id) {
    set_.insert(id_);
  }
  ~CommitGuard() { set_.erase(id_); }
  CommitGuard(const CommitGuard&) = delete;
  CommitGuard& operator=(const CommitGuard&) = delete;

 private:
  std::unordered_set<JobId>& set_;
  JobId id_;
};

}  // namespace

Cluster::Cluster(Engine& engine, std::string name, NodeCount capacity,
                 std::unique_ptr<PriorityPolicy> policy, CoschedConfig cosched,
                 SchedulerConfig sched_config,
                 std::shared_ptr<const AllocationModel> alloc)
    : engine_(engine),
      name_(std::move(name)),
      cfg_(cosched),
      sched_cfg_(sched_config),
      sched_(capacity, std::move(policy), sched_config, std::move(alloc)) {
  sched_.set_on_start([this](const RuntimeJob& job) { on_job_started(job); });
}

void Cluster::arm_periodic_iteration() {
  if (sched_cfg_.iteration_period <= 0 || periodic_armed_) return;
  periodic_armed_ = true;
  engine_.schedule_in(sched_cfg_.iteration_period, EventPriority::kStats,
                      [this] {
                        periodic_armed_ = false;
                        const bool work_left =
                            sched_.queue_length() > 0 ||
                            sched_.running_count() > 0 ||
                            sched_.holding_count() > 0;
                        if (!work_left) return;  // go quiescent; submits re-arm
                        request_iteration();
                        arm_periodic_iteration();
                      });
}

void Cluster::add_peer(PeerClient& peer) { peers_.push_back(&peer); }

void Cluster::register_expected(const JobSpec& spec) {
  COSCHED_CHECK(spec.is_paired());
  auto [it, inserted] = group_to_job_.emplace(spec.group, spec.id);
  COSCHED_CHECK_MSG(inserted || it->second == spec.id,
                    "group " << spec.group << " already has local member "
                             << it->second << " on " << name_);
  expected_.emplace(spec.id, spec);
}

void Cluster::load_trace(const Trace& trace) {
  for (const JobSpec& spec : trace.jobs()) {
    if (spec.is_paired()) register_expected(spec);
    engine_.schedule_at(spec.submit, EventPriority::kJobSubmit, [this, spec] {
      expected_.erase(spec.id);
      sched_.submit(spec, engine_.now());
      track_dependency(spec);
      arm_periodic_iteration();
      if (const RuntimeJob* j = sched_.find(spec.id))
        log_event(JobEventKind::kSubmit, *j);
      request_iteration();
    });
  }
}

void Cluster::submit_now(const JobSpec& spec) {
  if (spec.is_paired() && !group_to_job_.count(spec.group))
    group_to_job_.emplace(spec.group, spec.id);
  expected_.erase(spec.id);
  sched_.submit(spec, engine_.now());
  track_dependency(spec);
  arm_periodic_iteration();
  if (const RuntimeJob* j = sched_.find(spec.id))
    log_event(JobEventKind::kSubmit, *j);
  request_iteration();
}

void Cluster::kill_job(JobId id) {
  const RuntimeJob* j = sched_.find(id);
  if (j == nullptr || j->state == JobState::kFinished) return;
  sched_.kill(id, engine_.now());
  if (const RuntimeJob* killed = sched_.find(id))
    log_event(JobEventKind::kFinish, *killed);
  request_iteration();
}

void Cluster::request_iteration() {
  if (iteration_pending_) return;
  iteration_pending_ = true;
  engine_.schedule_at(engine_.now(), EventPriority::kSchedule, [this] {
    iteration_pending_ = false;
    ++iterations_run_;
    sched_.iterate(engine_.now(), [this](RuntimeJob& job) {
      return run_job_hook(job, /*try_context=*/false);
    });
  });
}

// -- CoschedService ---------------------------------------------------------

std::optional<JobId> Cluster::get_mate_job(GroupId group, JobId asking) {
  (void)asking;
  auto it = group_to_job_.find(group);
  if (it == group_to_job_.end()) return std::nullopt;
  return it->second;
}

MateStatus Cluster::get_mate_status(JobId job) {
  if (committing_.count(job)) return MateStatus::kStarting;
  const RuntimeJob* j = sched_.find(job);
  if (!j)
    return expected_.count(job) ? MateStatus::kUnsubmitted
                                : MateStatus::kUnknown;
  switch (j->state) {
    case JobState::kQueued: return MateStatus::kQueuing;
    case JobState::kHolding: return MateStatus::kHolding;
    case JobState::kRunning: return MateStatus::kRunning;
    case JobState::kFinished: return MateStatus::kFinished;
  }
  return MateStatus::kUnknown;
}

bool Cluster::try_start_mate(JobId job) {
  ++try_start_requests_;
  if (!sched_.find(job)) return false;  // unsubmitted or unknown: cannot start
  return sched_.try_start_specific(job, engine_.now(), [this](RuntimeJob& j) {
    return run_job_hook(j, /*try_context=*/true);
  });
}

bool Cluster::start_job(JobId job) {
  const RuntimeJob* j = sched_.find(job);
  if (!j || j->state != JobState::kHolding) return false;
  sched_.start_holding(job, engine_.now());
  return true;
}

// -- Algorithm 1 --------------------------------------------------------------

RunDecision Cluster::run_job_hook(RuntimeJob& job, bool try_context) {
  if (event_log_ != nullptr && ready_logged_.insert(job.spec.id).second)
    log_event(JobEventKind::kReady, job);

  // Lines 33-36: coscheduling disabled, or a regular job: start normally.
  if (!cfg_.enabled || !job.spec.is_paired()) return RunDecision::kStart;

  // Line 2: locate the mate on each peer.  A peer that is down, or has no
  // member of this group, does not constrain the job (lines 30-31).
  struct MateRef {
    PeerClient* peer;
    JobId id;
  };
  bool transport_fault = false;
  std::vector<MateRef> mates;
  for (PeerClient* peer : peers_) {
    const auto found = peer->get_mate_job(job.spec.group, job.spec.id);
    if (!found) {
      transport_fault = true;
      ++unknown_status_decisions_;
      continue;
    }
    if (!*found) continue;
    mates.push_back(MateRef{peer, **found});
  }
  if (mates.empty()) {
    if (transport_fault) unsync_pending_.insert(job.spec.id);
    return RunDecision::kStart;
  }

  CommitGuard commit(committing_, job.spec.id);

  // Lines 4-27: classify each mate.
  std::vector<MateRef> holding, not_ready;
  for (const MateRef& m : mates) {
    const auto status_reply = m.peer->get_mate_status(m.id);
    if (!status_reply) {
      transport_fault = true;
      ++unknown_status_decisions_;
    }
    const MateStatus status = status_reply.value_or(MateStatus::kUnknown);
    switch (status) {
      case MateStatus::kHolding:
        holding.push_back(m);
        break;
      case MateStatus::kStarting:
        break;  // committed by its own Run_Job; it will start with us
      case MateStatus::kQueuing:
      case MateStatus::kUnsubmitted:
        not_ready.push_back(m);
        break;
      case MateStatus::kRunning:
      case MateStatus::kFinished:
      case MateStatus::kUnknown:
        // Line 25-26: mate failed/unknowable — start the local job normally
        // rather than wait forever.
        break;
    }
  }

  if (!not_ready.empty()) {
    // Lines 10-23: ask the first unready mate's domain to run an additional
    // scheduling iteration.  Its own Run_Job (seeing us as `starting`)
    // recursively extends the chain to any further domains, so one call
    // suffices; `false` means the mate could not start now.
    const auto started = not_ready.front().peer->try_start_mate(
        not_ready.front().id);
    if (!started) {
      transport_fault = true;
      ++unknown_status_decisions_;
    }
    if (started.has_value() && !*started) {
      if (transport_fault) fault_seen_.insert(job.spec.id);
      return scheme_decision(job, try_context);
    }
    // Transport failure counts as unknown: do not block the local job.
  }

  // Lines 6-8: everyone is ready; wake the holding mates and start.
  for (const MateRef& m : holding) {
    const auto woke = m.peer->start_job(m.id);
    if (!woke) {
      // The wake-up itself was lost: our mate stays holding while we run —
      // the quintessential unsynchronized start.
      transport_fault = true;
      ++unknown_status_decisions_;
    } else if (!*woke) {
      COSCHED_LOG(kDebug) << name_ << ": mate " << m.id
                          << " was no longer holding at start";
    }
  }
  if (transport_fault) unsync_pending_.insert(job.spec.id);
  return RunDecision::kStart;
}

RunDecision Cluster::scheme_decision(RuntimeJob& job, bool try_context) {
  // Under a remote tryStartMate the job must start or decline; holding or
  // yielding inside someone else's iteration would corrupt their queue pass.
  if (try_context) return RunDecision::kSkip;

  Scheme scheme = cfg_.scheme;

  // §IV-E2: a job that yielded too many times escalates to hold.
  if (scheme == Scheme::kYield && cfg_.max_yield_before_hold > 0 &&
      job.yield_count >= cfg_.max_yield_before_hold)
    scheme = Scheme::kHold;

  // §IV-E2: cap the fraction of the machine allowed to sit in hold state.
  if (scheme == Scheme::kHold) {
    const auto& pool = sched_.pool();
    const double would_hold =
        static_cast<double>(pool.held() + job.allocated);
    if (would_hold >
        cfg_.max_hold_fraction * static_cast<double>(pool.capacity()))
      scheme = Scheme::kYield;
  }

  if (scheme == Scheme::kHold) {
    schedule_hold_release(job.spec.id);
    log_event(JobEventKind::kHold, job);
    return RunDecision::kHold;
  }
  job.priority_boost += cfg_.yield_priority_boost;
  schedule_yield_retry(job.spec.id);
  log_event(JobEventKind::kYield, job);
  return RunDecision::kYield;
}

// -- events -------------------------------------------------------------------

void Cluster::on_job_started(const RuntimeJob& job) {
  log_event(JobEventKind::kStart, job);
  if (unsync_pending_.erase(job.spec.id) > 0) {
    ++unsync_starts_;
    log_event(JobEventKind::kUnsyncStart, job);
  }
  fault_seen_.erase(job.spec.id);
  const JobId id = job.spec.id;
  engine_.schedule_in(job.spec.runtime, EventPriority::kJobEnd,
                      [this, id] { on_job_finished(id); });
}

void Cluster::on_job_finished(JobId id) {
  // The job may have been killed between its start and this completion
  // event; a second finish would corrupt the pool accounting.
  const RuntimeJob* cur = sched_.find(id);
  if (cur == nullptr || cur->state != JobState::kRunning) return;
  sched_.finish(id, engine_.now());
  if (const RuntimeJob* j = sched_.find(id))
    log_event(JobEventKind::kFinish, *j);
  request_iteration();
  // Dependents gated by a think-time delay become eligible later than this
  // finish-triggered iteration; wake the scheduler when the gap elapses.
  auto [begin, end] = dependents_.equal_range(id);
  for (auto it = begin; it != end; ++it) {
    const Duration delay = it->second.second;
    if (delay > 0)
      engine_.schedule_in(delay, EventPriority::kSchedule,
                          [this] { request_iteration(); });
  }
  dependents_.erase(id);
}

void Cluster::log_event(JobEventKind kind, const RuntimeJob& job) {
  if (event_log_ == nullptr) return;
  JobEvent e;
  e.time = engine_.now();
  e.system = name_;
  e.kind = kind;
  e.job = job.spec.id;
  e.group = job.spec.group;
  e.nodes = job.spec.nodes;
  event_log_->record(std::move(e));
}

void Cluster::schedule_yield_retry(JobId id) {
  if (cfg_.yield_retry_period <= 0) return;
  engine_.schedule_in(cfg_.yield_retry_period, EventPriority::kSchedule,
                      [this, id] {
                        const RuntimeJob* j = sched_.find(id);
                        if (!j || j->state != JobState::kQueued) return;
                        request_iteration();
                      });
}

void Cluster::schedule_hold_release(JobId id) {
  (void)id;
  if (cfg_.hold_release_period <= 0) return;  // deadlock breaker disabled
  if (release_tick_pending_) return;
  // One synchronized tick per domain, not per-job timers: the paper's
  // enhancement "force[s] the holding jobs to release their resources
  // periodically".  Releasing all holders at the same instant matters —
  // with staggered per-job releases, a blocked job larger than any single
  // hold can never see enough simultaneous free nodes, and every released
  // holder immediately re-holds (cross-machine livelock).
  release_tick_pending_ = true;
  engine_.schedule_in(cfg_.hold_release_period, EventPriority::kHoldRelease,
                      [this] {
                        release_tick_pending_ = false;
                        const std::vector<JobId> holders =
                            sched_.holding_ids();
                        if (holders.empty()) return;
                        for (JobId h : holders) {
                          sched_.release_hold(h, engine_.now());
                          ++forced_releases_;
                          if (fault_seen_.count(h) > 0)
                            ++degraded_forced_releases_;
                          if (const RuntimeJob* j = sched_.find(h))
                            log_event(JobEventKind::kHoldRelease, *j);
                        }
                        request_iteration();
                      });
}

}  // namespace cosched

// Write-ahead journal of state-mutating coscheduling decisions.
//
// The paper's fault story (§IV-C) only covers a *remote* domain dying: the
// mate becomes `unknown` and the local job starts normally.  It says nothing
// about the local daemon crashing while jobs hold nodes or a tryStartMate is
// in flight — in production that leaks held nodes or double-starts mates.
// This module closes that gap: every externally visible scheduler decision
// (submit, ready, start, hold, release, yield, finish, kill, demotion-clear,
// timer arms) is framed, CRC-checked, and appended to a journal *before* its
// effects become visible to peers; recovery replays snapshot + tail and
// reconstructs bit-identical scheduler state.
//
// Frame layout v2 (little-endian), written by every append since PR 10:
//   [u32 magic "JLF2"][u32 body_len][u32 crc32(body)][u32 crc32(header[0:12])]
//   [body]
//   body = varint seq ++ u8 kind ++ kind-specific payload (wire varints)
// The magic lets a salvage scan resync past a corrupt region (bit rot, torn
// write, lost sector) instead of discarding everything after it, and the
// header CRC distinguishes a rotten header from a genuinely torn tail.
//
// Frame layout v1 (still readable; detected per frame by the absence of the
// magic — a v1 length prefix of 0x32464c4a would be an 843 MB record, far
// beyond any real frame):
//   [u32 body_len][u32 crc32(body)][body]
//
// Torn-tail rule (read_journal): replay stops at the first frame whose
// length prefix is incomplete, overruns the buffer, or fails its CRC.
// Everything before it is applied; the torn frame and anything after are
// discarded (a frame is only semantically required once its commit()
// returned — see RECOVERY.md).  salvage_scan() relaxes this: it resyncs on
// the v2 magic after a bad region and reports corrupt regions, sequence
// holes, and duplicates so recovery can account for exactly what was lost.
//
// Snapshot generations: Journal::compact() wraps each snapshot payload in a
// generation-numbered, checksummed envelope and (by default) retains the
// previous snapshot plus the records between the two generations, so a
// recovery that finds the newest snapshot rotten can fall back one
// generation and replay a longer tail instead of losing everything.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "proto/wire.h"
#include "util/error.h"

namespace cosched {

/// CRC-32 (IEEE 802.3 polynomial, reflected) of a byte span.
std::uint32_t crc32(std::span<const std::uint8_t> data);

/// v2 frame magic ("JLF2" on disk, read as a little-endian u32).
inline constexpr std::uint32_t kJournalMagicV2 = 0x32464c4au;

/// The durable medium failed to persist bytes (disk full).  Journal::append
/// swallows this into a sticky no_space() flag so a mutation path is never
/// torn apart mid-flight; the owner reacts at the commit boundary
/// (emergency compaction, then degrade-to-memory).
class JournalNoSpace : public Error {
 public:
  using Error::Error;
};

/// The durable medium failed to *read* back (transient medium error).
/// Distinct from Error so recovery paths can retry reads without masking
/// hard failures.
class JournalIoError : public Error {
 public:
  using Error::Error;
};

/// Record kinds.  Values are wire format — append only, never renumber.
enum class JournalRecordKind : std::uint8_t {
  kSnapshot = 0,      ///< full Cluster+Scheduler state (compaction point)
  kIncarnation = 1,   ///< daemon incarnation number after (re)start
  kExpected = 2,      ///< register_expected() of a paired job
  kSubmit = 3,        ///< job entered the queue
  kReady = 4,         ///< scheduler first selected the job (first_ready set)
  kStart = 5,         ///< job started (queued or holding origin)
  kHold = 6,          ///< job holds its assigned nodes
  kHoldRelease = 7,   ///< forced release (deadlock breaker)
  kYield = 8,         ///< job yielded its turn
  kFinish = 9,        ///< job completed
  kKill = 10,         ///< job killed (fault injection)
  kIterate = 11,      ///< scheduling iteration ran (clears demotions)
  kTickArmed = 12,    ///< hold-release tick armed at absolute time
  kTickFired = 13,    ///< hold-release tick fired
  kIterArmed = 14,    ///< coalesced iteration request armed
  kPeriodicArmed = 15,///< periodic iteration timer armed at absolute time
  kDegraded = 16,     ///< decision path saw transport faults (§IV-C rule)
  kDedup = 17,        ///< RPC dedup verdict (exactly-once cache entry)
  kLeaseGrant = 18,   ///< hold lease granted {job, peer, expiry, token}
  kLeaseRenew = 19,   ///< lease renewed by peer-liveness evidence
  kLeaseExpire = 20,  ///< lease expired (detector confirmed / no renewal)
  kLeaseFence = 21,   ///< fencing epoch advanced (stale tokens invalidated)
  kHeartbeat = 22,    ///< heartbeat round ran; per-peer ack + payloads
  kLivenessArmed = 23,///< heartbeat/lease-expiry timer armed at absolute time
  kGangPrepare = 24,  ///< gang member prepared (fenced leased hold placed)
  kGangCommit = 25,   ///< gang costart committed (all members started)
  kGangAbort = 26,    ///< gang prepare round aborted (holds released)
  kGangVictim = 27,   ///< deadlock victim yielded; re-prepare backoff armed
};

const char* to_string(JournalRecordKind k);

struct JournalRecord {
  std::uint64_t seq = 0;
  JournalRecordKind kind = JournalRecordKind::kSnapshot;
  std::vector<std::uint8_t> payload;
  /// Frame format the record was read from (or will be written as): 1 or 2.
  std::uint8_t version = 2;
};

/// Encodes one v2 frame (magic + header CRC) around seq/kind/payload.
std::vector<std::uint8_t> encode_frame(std::uint64_t seq,
                                       JournalRecordKind kind,
                                       std::span<const std::uint8_t> payload);

/// Snapshot envelope (v2 snapshot payloads): generation number + state CRC
/// so recovery can verify a snapshot *before* applying it and fall back a
/// generation when the newest one rotted.
std::vector<std::uint8_t> make_snapshot_payload(
    std::uint64_t generation, std::span<const std::uint8_t> state);

/// Decoded view of a snapshot record's payload.  v1 snapshot records carry
/// the raw state (generation 0, checksum trivially ok — nothing to verify).
struct SnapshotView {
  std::uint64_t generation = 0;
  bool checksum_ok = true;
  std::span<const std::uint8_t> state;
};

/// Parses a kSnapshot record's payload per its frame version.  The view's
/// `state` aliases `rec.payload` — the record must outlive the view.
SnapshotView parse_snapshot_payload(const JournalRecord& rec);

/// Durable byte store under a journal.  append() may buffer; commit() makes
/// everything appended so far durable (the group-commit fsync point).
class JournalSink {
 public:
  virtual ~JournalSink() = default;
  virtual void append(std::span<const std::uint8_t> frame) = 0;
  virtual void commit() = 0;
  /// Atomically replaces the durable contents (compaction rewrite).
  virtual void reset(std::vector<std::uint8_t> contents) = 0;
  /// The bytes that would survive a crash right now (committed only).
  /// Throws JournalIoError when the medium cannot be read back.
  virtual std::vector<std::uint8_t> contents() const = 0;
};

/// In-memory sink modeling an fsync boundary: appended bytes sit in a
/// buffer until commit(); contents() returns only the committed prefix.
/// This is what the kill-anywhere harness "crashes": uncommitted bytes
/// vanish, exactly like a page cache on power loss.
class MemoryJournalSink final : public JournalSink {
 public:
  void append(std::span<const std::uint8_t> frame) override {
    buffered_.insert(buffered_.end(), frame.begin(), frame.end());
  }
  void commit() override {
    durable_.insert(durable_.end(), buffered_.begin(), buffered_.end());
    buffered_.clear();
  }
  void reset(std::vector<std::uint8_t> contents) override {
    durable_ = std::move(contents);
    buffered_.clear();
  }
  std::vector<std::uint8_t> contents() const override { return durable_; }

  std::size_t durable_bytes() const { return durable_.size(); }
  std::size_t buffered_bytes() const { return buffered_.size(); }

 private:
  std::vector<std::uint8_t> durable_;
  std::vector<std::uint8_t> buffered_;
};

/// File-backed sink for the live daemons: append() writes to the file,
/// commit() flushes and fsyncs once per batch (group commit), reset()
/// rewrites via a temp file + rename (with the parent directory fsynced) so
/// compaction is crash-atomic.  ENOSPC surfaces as JournalNoSpace; read
/// failures surface as JournalIoError — never as a silently short image.
class FileJournalSink final : public JournalSink {
 public:
  /// Opens (creating if absent) `path` for appending.  Throws Error on
  /// failure.
  explicit FileJournalSink(std::string path);
  ~FileJournalSink() override;

  void append(std::span<const std::uint8_t> frame) override;
  void commit() override;
  void reset(std::vector<std::uint8_t> contents) override;
  std::vector<std::uint8_t> contents() const override;

  const std::string& path() const { return path_; }

 private:
  std::string path_;
  int fd_ = -1;
};

/// Write-ahead journal: frames records over a sink with group commit,
/// monotone sequence numbers, compaction, and storage-fault degradation.
class Journal {
 public:
  explicit Journal(std::unique_ptr<JournalSink> sink);

  /// Frames and appends one record (buffered until commit()).  Returns the
  /// record's sequence number.  A JournalNoSpace from the sink is absorbed
  /// into the sticky no_space() flag (the sequence number is still consumed,
  /// so the dropped record shows up as a detectable hole rather than a
  /// silent splice) — the owner reacts at its commit boundary.
  std::uint64_t append(JournalRecordKind kind,
                       std::span<const std::uint8_t> payload);

  /// Makes all appended records durable (one sink commit per batch) and
  /// fires the on_commit hook.  No-op if nothing was appended since the
  /// last commit.
  void commit();

  /// Hook invoked after each effective commit with the highest durable
  /// sequence number.  Used by the kill-anywhere harness as its crash
  /// trigger.
  void set_on_commit(std::function<void(std::uint64_t)> fn) {
    on_commit_ = std::move(fn);
  }

  /// Compaction: rewrites the journal around a fresh generation-numbered,
  /// checksummed snapshot.  With `retain_previous` (the default) the new
  /// image keeps the previous snapshot and every intact record after it —
  /// the fallback generation — followed by the new snapshot; re-framing the
  /// retained records also scrubs any rot that crept in between them.
  /// With retain_previous = false the image collapses to the single new
  /// snapshot frame (initial attach, emergency ENOSPC compaction).
  /// Durable on return.  Sequence numbers keep counting.
  void compact(std::span<const std::uint8_t> snapshot_payload,
               bool retain_previous = true);

  /// Crash-restart over the same sink: drops any uncommitted (buffered)
  /// bytes, salvage-scans the durable image, and re-syncs the sequence
  /// counters to the highest intact record so new appends continue the same
  /// journal (never reusing a sequence number, even past a corrupt region).
  void reopen();

  /// Swaps the sink for an in-memory one seeded with whatever durable bytes
  /// are still readable — the ENOSPC last resort: journaling continues (so
  /// in-process recovery still works) but durability is lost until an
  /// operator intervenes.  Clears no_space().
  void degrade_to_memory();
  bool degraded() const { return degraded_; }

  /// Sticky flag: some append was dropped by the sink for lack of space
  /// since the last compact()/degrade_to_memory()/reopen().
  bool no_space() const { return no_space_; }

  /// Generation number of the newest snapshot written by compact().
  std::uint64_t snapshot_generation() const { return snapshot_generation_; }

  /// Records appended since the last compact() (or construction).
  std::uint64_t records_since_compaction() const {
    return records_since_compaction_;
  }

  std::uint64_t next_seq() const { return next_seq_; }
  std::uint64_t last_committed_seq() const { return last_committed_seq_; }

  JournalSink& sink() { return *sink_; }
  const JournalSink& sink() const { return *sink_; }

 private:
  static std::vector<std::uint8_t> frame(std::uint64_t seq,
                                         JournalRecordKind kind,
                                         std::span<const std::uint8_t> payload);

  std::unique_ptr<JournalSink> sink_;
  std::function<void(std::uint64_t)> on_commit_;
  std::uint64_t next_seq_ = 1;
  std::uint64_t last_appended_seq_ = 0;
  std::uint64_t last_committed_seq_ = 0;
  std::uint64_t records_since_compaction_ = 0;
  std::uint64_t snapshot_generation_ = 0;
  bool dirty_ = false;
  bool no_space_ = false;
  bool degraded_ = false;
};

/// Result of scanning a journal byte image (strict torn-tail semantics).
struct JournalReplay {
  std::vector<JournalRecord> records;
  /// True when the scan stopped at a torn/corrupt frame before the end of
  /// the buffer (the torn-tail rule fired).
  bool tail_torn = false;
  /// Bytes of intact frames consumed.
  std::size_t bytes_scanned = 0;
};

/// Decodes every intact frame from `bytes`, stopping (not throwing) at the
/// first torn or corrupt one.  v1 and v2 frames are detected per frame.
JournalReplay read_journal(std::span<const std::uint8_t> bytes);

/// One unreadable byte range found by salvage_scan.
struct CorruptRegion {
  std::size_t offset = 0;  ///< first bad byte
  std::size_t length = 0;  ///< bytes skipped to the next intact frame (or end)
  std::string reason;      ///< e.g. "body CRC mismatch", "rotten header"
};

/// Result of a salvage scan: every intact frame in stream order, plus an
/// exact account of what could not be read — the zero-silent-loss contract
/// is that records are either here or counted below, never quietly gone.
struct SalvageReport {
  std::vector<JournalRecord> records;
  std::vector<CorruptRegion> corrupt_regions;
  std::size_t bytes_scanned = 0;       ///< total input bytes examined
  std::size_t bytes_skipped = 0;       ///< bytes inside corrupt regions
  /// The image ends in an incomplete frame (normal crash artifact, distinct
  /// from mid-log rot: nothing intact follows it).
  bool tail_torn = false;
  std::uint64_t seq_holes = 0;         ///< discontinuities in the seq stream
  std::uint64_t records_missing = 0;   ///< sequence numbers lost inside holes
  std::uint64_t duplicate_records = 0; ///< repeated/backwards sequence numbers
  bool clean() const {
    return corrupt_regions.empty() && !tail_torn && seq_holes == 0 &&
           duplicate_records == 0;
  }
};

/// Decodes every intact frame from `bytes`, resyncing on the v2 magic after
/// a bad region instead of stopping (v1 regions cannot be resynced past —
/// they carry no magic — so rot inside a pure-v1 image still truncates).
/// Never throws; every unreadable byte is attributed to a corrupt region or
/// the torn tail.
SalvageReport salvage_scan(std::span<const std::uint8_t> bytes);

}  // namespace cosched

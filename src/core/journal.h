// Write-ahead journal of state-mutating coscheduling decisions.
//
// The paper's fault story (§IV-C) only covers a *remote* domain dying: the
// mate becomes `unknown` and the local job starts normally.  It says nothing
// about the local daemon crashing while jobs hold nodes or a tryStartMate is
// in flight — in production that leaks held nodes or double-starts mates.
// This module closes that gap: every externally visible scheduler decision
// (submit, ready, start, hold, release, yield, finish, kill, demotion-clear,
// timer arms) is framed, CRC-checked, and appended to a journal *before* its
// effects become visible to peers; recovery replays snapshot + tail and
// reconstructs bit-identical scheduler state.
//
// Frame layout (little-endian):
//   [u32 payload_len][u32 crc32(payload)][payload]
//   payload = varint seq ++ u8 kind ++ kind-specific body (wire varints)
//
// Torn-tail rule: replay stops at the first frame whose length prefix is
// incomplete, overruns the buffer, or fails its CRC.  Everything before it
// is applied; the torn frame and anything after are discarded (a frame is
// only semantically required once its commit() returned — see RECOVERY.md).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "proto/wire.h"

namespace cosched {

/// CRC-32 (IEEE 802.3 polynomial, reflected) of a byte span.
std::uint32_t crc32(std::span<const std::uint8_t> data);

/// Record kinds.  Values are wire format — append only, never renumber.
enum class JournalRecordKind : std::uint8_t {
  kSnapshot = 0,      ///< full Cluster+Scheduler state (compaction point)
  kIncarnation = 1,   ///< daemon incarnation number after (re)start
  kExpected = 2,      ///< register_expected() of a paired job
  kSubmit = 3,        ///< job entered the queue
  kReady = 4,         ///< scheduler first selected the job (first_ready set)
  kStart = 5,         ///< job started (queued or holding origin)
  kHold = 6,          ///< job holds its assigned nodes
  kHoldRelease = 7,   ///< forced release (deadlock breaker)
  kYield = 8,         ///< job yielded its turn
  kFinish = 9,        ///< job completed
  kKill = 10,         ///< job killed (fault injection)
  kIterate = 11,      ///< scheduling iteration ran (clears demotions)
  kTickArmed = 12,    ///< hold-release tick armed at absolute time
  kTickFired = 13,    ///< hold-release tick fired
  kIterArmed = 14,    ///< coalesced iteration request armed
  kPeriodicArmed = 15,///< periodic iteration timer armed at absolute time
  kDegraded = 16,     ///< decision path saw transport faults (§IV-C rule)
  kDedup = 17,        ///< RPC dedup verdict (exactly-once cache entry)
  kLeaseGrant = 18,   ///< hold lease granted {job, peer, expiry, token}
  kLeaseRenew = 19,   ///< lease renewed by peer-liveness evidence
  kLeaseExpire = 20,  ///< lease expired (detector confirmed / no renewal)
  kLeaseFence = 21,   ///< fencing epoch advanced (stale tokens invalidated)
  kHeartbeat = 22,    ///< heartbeat round ran; per-peer ack + payloads
  kLivenessArmed = 23,///< heartbeat/lease-expiry timer armed at absolute time
  kGangPrepare = 24,  ///< gang member prepared (fenced leased hold placed)
  kGangCommit = 25,   ///< gang costart committed (all members started)
  kGangAbort = 26,    ///< gang prepare round aborted (holds released)
  kGangVictim = 27,   ///< deadlock victim yielded; re-prepare backoff armed
};

const char* to_string(JournalRecordKind k);

struct JournalRecord {
  std::uint64_t seq = 0;
  JournalRecordKind kind = JournalRecordKind::kSnapshot;
  std::vector<std::uint8_t> payload;
};

/// Durable byte store under a journal.  append() may buffer; commit() makes
/// everything appended so far durable (the group-commit fsync point).
class JournalSink {
 public:
  virtual ~JournalSink() = default;
  virtual void append(std::span<const std::uint8_t> frame) = 0;
  virtual void commit() = 0;
  /// Atomically replaces the durable contents (compaction rewrite).
  virtual void reset(std::vector<std::uint8_t> contents) = 0;
  /// The bytes that would survive a crash right now (committed only).
  virtual std::vector<std::uint8_t> contents() const = 0;
};

/// In-memory sink modeling an fsync boundary: appended bytes sit in a
/// buffer until commit(); contents() returns only the committed prefix.
/// This is what the kill-anywhere harness "crashes": uncommitted bytes
/// vanish, exactly like a page cache on power loss.
class MemoryJournalSink final : public JournalSink {
 public:
  void append(std::span<const std::uint8_t> frame) override {
    buffered_.insert(buffered_.end(), frame.begin(), frame.end());
  }
  void commit() override {
    durable_.insert(durable_.end(), buffered_.begin(), buffered_.end());
    buffered_.clear();
  }
  void reset(std::vector<std::uint8_t> contents) override {
    durable_ = std::move(contents);
    buffered_.clear();
  }
  std::vector<std::uint8_t> contents() const override { return durable_; }

  std::size_t durable_bytes() const { return durable_.size(); }
  std::size_t buffered_bytes() const { return buffered_.size(); }

 private:
  std::vector<std::uint8_t> durable_;
  std::vector<std::uint8_t> buffered_;
};

/// File-backed sink for the live daemons: append() writes to the file,
/// commit() flushes and fsyncs once per batch (group commit), reset()
/// rewrites via a temp file + rename so compaction is crash-atomic.
class FileJournalSink final : public JournalSink {
 public:
  /// Opens (creating if absent) `path` for appending.  Throws Error on
  /// failure.
  explicit FileJournalSink(std::string path);
  ~FileJournalSink() override;

  void append(std::span<const std::uint8_t> frame) override;
  void commit() override;
  void reset(std::vector<std::uint8_t> contents) override;
  std::vector<std::uint8_t> contents() const override;

  const std::string& path() const { return path_; }

 private:
  std::string path_;
  int fd_ = -1;
};

/// Write-ahead journal: frames records over a sink with group commit,
/// monotone sequence numbers, and compaction.
class Journal {
 public:
  explicit Journal(std::unique_ptr<JournalSink> sink);

  /// Frames and appends one record (buffered until commit()).  Returns the
  /// record's sequence number.
  std::uint64_t append(JournalRecordKind kind,
                       std::span<const std::uint8_t> payload);

  /// Makes all appended records durable (one sink commit per batch) and
  /// fires the on_commit hook.  No-op if nothing was appended since the
  /// last commit.
  void commit();

  /// Hook invoked after each effective commit with the highest durable
  /// sequence number.  Used by the kill-anywhere harness as its crash
  /// trigger.
  void set_on_commit(std::function<void(std::uint64_t)> fn) {
    on_commit_ = std::move(fn);
  }

  /// Replaces the journal contents with a single snapshot record
  /// (compaction).  Durable on return.  Sequence numbers keep counting.
  void compact(std::span<const std::uint8_t> snapshot_payload);

  /// Crash-restart over the same sink: drops any uncommitted (buffered)
  /// bytes, rescans the durable image, and re-syncs the sequence counters to
  /// its last intact record so new appends continue the same journal.
  void reopen();

  /// Records appended since the last compact() (or construction).
  std::uint64_t records_since_compaction() const {
    return records_since_compaction_;
  }

  std::uint64_t next_seq() const { return next_seq_; }
  std::uint64_t last_committed_seq() const { return last_committed_seq_; }

  JournalSink& sink() { return *sink_; }
  const JournalSink& sink() const { return *sink_; }

 private:
  static std::vector<std::uint8_t> frame(std::uint64_t seq,
                                         JournalRecordKind kind,
                                         std::span<const std::uint8_t> payload);

  std::unique_ptr<JournalSink> sink_;
  std::function<void(std::uint64_t)> on_commit_;
  std::uint64_t next_seq_ = 1;
  std::uint64_t last_appended_seq_ = 0;
  std::uint64_t last_committed_seq_ = 0;
  std::uint64_t records_since_compaction_ = 0;
  bool dirty_ = false;
};

/// Result of scanning a journal byte image.
struct JournalReplay {
  std::vector<JournalRecord> records;
  /// True when the scan stopped at a torn/corrupt frame before the end of
  /// the buffer (the torn-tail rule fired).
  bool tail_torn = false;
  /// Bytes of intact frames consumed.
  std::size_t bytes_scanned = 0;
};

/// Decodes every intact frame from `bytes`, stopping (not throwing) at the
/// first torn or corrupt one.
JournalReplay read_journal(std::span<const std::uint8_t> bytes);

}  // namespace cosched

#include "core/journal.h"

#include <fcntl.h>
#include <unistd.h>

#include <array>
#include <bit>
#include <cerrno>
#include <cstring>

#include "util/error.h"

namespace cosched {

namespace {

std::array<std::uint32_t, 256> make_crc_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k)
      c = (c & 1) ? 0xedb88320u ^ (c >> 1) : c >> 1;
    table[i] = c;
  }
  return table;
}

void put_le32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  out.push_back(static_cast<std::uint8_t>(v));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
  out.push_back(static_cast<std::uint8_t>(v >> 16));
  out.push_back(static_cast<std::uint8_t>(v >> 24));
}

std::uint32_t get_le32(const std::uint8_t* p) {
  return static_cast<std::uint32_t>(p[0]) |
         static_cast<std::uint32_t>(p[1]) << 8 |
         static_cast<std::uint32_t>(p[2]) << 16 |
         static_cast<std::uint32_t>(p[3]) << 24;
}

}  // namespace

std::uint32_t crc32(std::span<const std::uint8_t> data) {
  static const std::array<std::uint32_t, 256> table = make_crc_table();
  std::uint32_t c = 0xffffffffu;
  for (std::uint8_t b : data) c = table[(c ^ b) & 0xffu] ^ (c >> 8);
  return c ^ 0xffffffffu;
}

const char* to_string(JournalRecordKind k) {
  switch (k) {
    case JournalRecordKind::kSnapshot: return "snapshot";
    case JournalRecordKind::kIncarnation: return "incarnation";
    case JournalRecordKind::kExpected: return "expected";
    case JournalRecordKind::kSubmit: return "submit";
    case JournalRecordKind::kReady: return "ready";
    case JournalRecordKind::kStart: return "start";
    case JournalRecordKind::kHold: return "hold";
    case JournalRecordKind::kHoldRelease: return "hold-release";
    case JournalRecordKind::kYield: return "yield";
    case JournalRecordKind::kFinish: return "finish";
    case JournalRecordKind::kKill: return "kill";
    case JournalRecordKind::kIterate: return "iterate";
    case JournalRecordKind::kTickArmed: return "tick-armed";
    case JournalRecordKind::kTickFired: return "tick-fired";
    case JournalRecordKind::kIterArmed: return "iter-armed";
    case JournalRecordKind::kPeriodicArmed: return "periodic-armed";
    case JournalRecordKind::kDegraded: return "degraded";
    case JournalRecordKind::kDedup: return "dedup";
    case JournalRecordKind::kLeaseGrant: return "lease-grant";
    case JournalRecordKind::kLeaseRenew: return "lease-renew";
    case JournalRecordKind::kLeaseExpire: return "lease-expire";
    case JournalRecordKind::kLeaseFence: return "lease-fence";
    case JournalRecordKind::kHeartbeat: return "heartbeat";
    case JournalRecordKind::kLivenessArmed: return "liveness-armed";
    case JournalRecordKind::kGangPrepare: return "gang-prepare";
    case JournalRecordKind::kGangCommit: return "gang-commit";
    case JournalRecordKind::kGangAbort: return "gang-abort";
    case JournalRecordKind::kGangVictim: return "gang-victim";
  }
  return "?";
}

// -- FileJournalSink ---------------------------------------------------------

FileJournalSink::FileJournalSink(std::string path) : path_(std::move(path)) {
  fd_ = ::open(path_.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
  COSCHED_CHECK_MSG(fd_ >= 0, "journal open " << path_ << ": "
                                              << std::strerror(errno));
}

FileJournalSink::~FileJournalSink() {
  if (fd_ >= 0) ::close(fd_);
}

void FileJournalSink::append(std::span<const std::uint8_t> frame) {
  std::size_t off = 0;
  while (off < frame.size()) {
    const ssize_t n = ::write(fd_, frame.data() + off, frame.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw Error(std::string("journal write: ") + std::strerror(errno));
    }
    off += static_cast<std::size_t>(n);
  }
}

void FileJournalSink::commit() {
  if (::fsync(fd_) != 0)
    throw Error(std::string("journal fsync: ") + std::strerror(errno));
}

void FileJournalSink::reset(std::vector<std::uint8_t> contents) {
  const std::string tmp = path_ + ".compact";
  const int tfd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  COSCHED_CHECK_MSG(tfd >= 0, "journal compact open " << tmp << ": "
                                                      << std::strerror(errno));
  std::size_t off = 0;
  while (off < contents.size()) {
    const ssize_t n = ::write(tfd, contents.data() + off,
                              contents.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      ::close(tfd);
      throw Error(std::string("journal compact write: ") +
                  std::strerror(errno));
    }
    off += static_cast<std::size_t>(n);
  }
  ::fsync(tfd);
  ::close(tfd);
  if (::rename(tmp.c_str(), path_.c_str()) != 0)
    throw Error(std::string("journal compact rename: ") +
                std::strerror(errno));
  ::close(fd_);
  fd_ = ::open(path_.c_str(), O_WRONLY | O_APPEND, 0644);
  COSCHED_CHECK_MSG(fd_ >= 0, "journal reopen " << path_ << ": "
                                                << std::strerror(errno));
}

std::vector<std::uint8_t> FileJournalSink::contents() const {
  std::vector<std::uint8_t> out;
  const int rfd = ::open(path_.c_str(), O_RDONLY);
  if (rfd < 0) return out;
  std::uint8_t buf[4096];
  for (;;) {
    const ssize_t n = ::read(rfd, buf, sizeof buf);
    if (n < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (n == 0) break;
    out.insert(out.end(), buf, buf + n);
  }
  ::close(rfd);
  return out;
}

// -- Journal -----------------------------------------------------------------

Journal::Journal(std::unique_ptr<JournalSink> sink) : sink_(std::move(sink)) {
  COSCHED_CHECK(sink_ != nullptr);
}

std::vector<std::uint8_t> Journal::frame(
    std::uint64_t seq, JournalRecordKind kind,
    std::span<const std::uint8_t> payload) {
  WireWriter pw;
  pw.put_u64(seq);
  pw.put_u8(static_cast<std::uint8_t>(kind));
  std::vector<std::uint8_t> body = pw.take();
  body.insert(body.end(), payload.begin(), payload.end());

  std::vector<std::uint8_t> out;
  out.reserve(body.size() + 8);
  put_le32(out, static_cast<std::uint32_t>(body.size()));
  put_le32(out, crc32(body));
  out.insert(out.end(), body.begin(), body.end());
  return out;
}

std::uint64_t Journal::append(JournalRecordKind kind,
                              std::span<const std::uint8_t> payload) {
  const std::uint64_t seq = next_seq_++;
  sink_->append(frame(seq, kind, payload));
  last_appended_seq_ = seq;
  ++records_since_compaction_;
  dirty_ = true;
  return seq;
}

void Journal::commit() {
  if (!dirty_) return;
  sink_->commit();
  dirty_ = false;
  last_committed_seq_ = last_appended_seq_;
  // Call through a copy: the hook may clear/replace itself (the kill-anywhere
  // harness disarms its crash trigger from inside the callback).
  if (on_commit_) {
    const auto fn = on_commit_;
    fn(last_committed_seq_);
  }
}

void Journal::reopen() {
  // Whatever was appended but never committed is gone — model the crash by
  // resetting the sink to its durable image, then re-sync counters from it.
  sink_->reset(sink_->contents());
  const std::vector<std::uint8_t> bytes = sink_->contents();
  const JournalReplay rep = read_journal(bytes);
  std::uint64_t last = 0;
  std::uint64_t non_snapshot = 0;
  for (const JournalRecord& rec : rep.records) {
    last = rec.seq;
    if (rec.kind != JournalRecordKind::kSnapshot) ++non_snapshot;
  }
  next_seq_ = last + 1;
  last_appended_seq_ = last;
  last_committed_seq_ = last;
  records_since_compaction_ = non_snapshot;
  dirty_ = false;
}

void Journal::compact(std::span<const std::uint8_t> snapshot_payload) {
  const std::uint64_t seq = next_seq_++;
  sink_->reset(frame(seq, JournalRecordKind::kSnapshot, snapshot_payload));
  last_appended_seq_ = seq;
  last_committed_seq_ = seq;
  records_since_compaction_ = 0;
  dirty_ = false;
}

JournalReplay read_journal(std::span<const std::uint8_t> bytes) {
  JournalReplay out;
  std::size_t pos = 0;
  while (pos < bytes.size()) {
    if (bytes.size() - pos < 8) {
      out.tail_torn = true;  // truncated header
      break;
    }
    const std::uint32_t len = get_le32(bytes.data() + pos);
    const std::uint32_t crc = get_le32(bytes.data() + pos + 4);
    if (bytes.size() - pos - 8 < len) {
      out.tail_torn = true;  // truncated body
      break;
    }
    const std::span<const std::uint8_t> body(bytes.data() + pos + 8, len);
    if (crc32(body) != crc) {
      out.tail_torn = true;  // corrupt body (or header)
      break;
    }
    JournalRecord rec;
    try {
      WireReader r(body);
      rec.seq = r.get_u64();
      const std::uint8_t k = r.get_u8();
      if (k > static_cast<std::uint8_t>(JournalRecordKind::kGangVictim))
        throw ParseError("journal: unknown record kind");
      rec.kind = static_cast<JournalRecordKind>(k);
      rec.payload.assign(body.begin() + (len - r.remaining()), body.end());
    } catch (const ParseError&) {
      out.tail_torn = true;
      break;
    }
    out.records.push_back(std::move(rec));
    pos += 8 + len;
    out.bytes_scanned = pos;
  }
  return out;
}

}  // namespace cosched

#include "core/journal.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <array>
#include <cerrno>
#include <cstring>

#include "util/error.h"

namespace cosched {

namespace {

std::array<std::uint32_t, 256> make_crc_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k)
      c = (c & 1) ? 0xedb88320u ^ (c >> 1) : c >> 1;
    table[i] = c;
  }
  return table;
}

void put_le32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  out.push_back(static_cast<std::uint8_t>(v));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
  out.push_back(static_cast<std::uint8_t>(v >> 16));
  out.push_back(static_cast<std::uint8_t>(v >> 24));
}

void put_le64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  put_le32(out, static_cast<std::uint32_t>(v));
  put_le32(out, static_cast<std::uint32_t>(v >> 32));
}

std::uint32_t get_le32(const std::uint8_t* p) {
  return static_cast<std::uint32_t>(p[0]) |
         static_cast<std::uint32_t>(p[1]) << 8 |
         static_cast<std::uint32_t>(p[2]) << 16 |
         static_cast<std::uint32_t>(p[3]) << 24;
}

std::uint64_t get_le64(const std::uint8_t* p) {
  return static_cast<std::uint64_t>(get_le32(p)) |
         static_cast<std::uint64_t>(get_le32(p + 4)) << 32;
}

/// Outcome of decoding one frame at a fixed offset.  kTruncated means the
/// frame runs past the end of the buffer (a crash artifact when nothing
/// intact follows); kBad means the bytes are there but wrong (rot).
enum class FrameStatus { kOk, kTruncated, kBad };

struct ParsedFrame {
  JournalRecord rec;
  std::size_t size = 0;  ///< total frame bytes (header + body)
  const char* error = "";
};

FrameStatus parse_frame_at(std::span<const std::uint8_t> bytes,
                           std::size_t pos, ParsedFrame& out) {
  const std::size_t n = bytes.size();
  if (n - pos < 4) {
    out.error = "truncated header";
    return FrameStatus::kTruncated;
  }
  const std::uint32_t first = get_le32(bytes.data() + pos);
  std::size_t header = 0;
  std::uint32_t len = 0;
  std::uint32_t body_crc = 0;
  std::uint8_t version = 1;
  if (first == kJournalMagicV2) {
    if (n - pos < 16) {
      out.error = "truncated v2 header";
      return FrameStatus::kTruncated;
    }
    len = get_le32(bytes.data() + pos + 4);
    body_crc = get_le32(bytes.data() + pos + 8);
    const std::uint32_t header_crc = get_le32(bytes.data() + pos + 12);
    if (crc32(std::span<const std::uint8_t>(bytes.data() + pos, 12)) !=
        header_crc) {
      out.error = "rotten v2 header";
      return FrameStatus::kBad;
    }
    header = 16;
    version = 2;
  } else {
    if (n - pos < 8) {
      out.error = "truncated header";
      return FrameStatus::kTruncated;
    }
    len = first;
    body_crc = get_le32(bytes.data() + pos + 4);
    header = 8;
    version = 1;
  }
  if (n - pos - header < len) {
    out.error =
        version == 2 ? "truncated v2 body" : "truncated body";
    return FrameStatus::kTruncated;
  }
  const std::span<const std::uint8_t> body(bytes.data() + pos + header, len);
  if (crc32(body) != body_crc) {
    out.error = "body CRC mismatch";
    return FrameStatus::kBad;
  }
  try {
    WireReader r(body);
    out.rec.seq = r.get_u64();
    const std::uint8_t k = r.get_u8();
    if (k > static_cast<std::uint8_t>(JournalRecordKind::kGangVictim))
      throw ParseError("journal: unknown record kind");
    out.rec.kind = static_cast<JournalRecordKind>(k);
    out.rec.payload.assign(body.begin() + (len - r.remaining()), body.end());
  } catch (const ParseError&) {
    out.error = "unparseable record";
    return FrameStatus::kBad;
  }
  out.rec.version = version;
  out.size = header + len;
  return FrameStatus::kOk;
}

/// Finds the next offset >= `from` holding a fully intact v2 frame (v1
/// frames carry no magic, so rot inside a pure-v1 region cannot be
/// resynced past).  Returns npos when nothing intact follows.
std::size_t resync_to_magic(std::span<const std::uint8_t> bytes,
                            std::size_t from) {
  constexpr std::uint8_t first_byte =
      static_cast<std::uint8_t>(kJournalMagicV2 & 0xffu);
  const std::size_t n = bytes.size();
  for (std::size_t p = from; p + 16 <= n; ++p) {
    if (bytes[p] != first_byte) continue;
    if (get_le32(bytes.data() + p) != kJournalMagicV2) continue;
    ParsedFrame pf;
    if (parse_frame_at(bytes, p, pf) == FrameStatus::kOk) return p;
  }
  return static_cast<std::size_t>(-1);
}

}  // namespace

std::uint32_t crc32(std::span<const std::uint8_t> data) {
  static const std::array<std::uint32_t, 256> table = make_crc_table();
  std::uint32_t c = 0xffffffffu;
  for (std::uint8_t b : data) c = table[(c ^ b) & 0xffu] ^ (c >> 8);
  return c ^ 0xffffffffu;
}

const char* to_string(JournalRecordKind k) {
  switch (k) {
    case JournalRecordKind::kSnapshot: return "snapshot";
    case JournalRecordKind::kIncarnation: return "incarnation";
    case JournalRecordKind::kExpected: return "expected";
    case JournalRecordKind::kSubmit: return "submit";
    case JournalRecordKind::kReady: return "ready";
    case JournalRecordKind::kStart: return "start";
    case JournalRecordKind::kHold: return "hold";
    case JournalRecordKind::kHoldRelease: return "hold-release";
    case JournalRecordKind::kYield: return "yield";
    case JournalRecordKind::kFinish: return "finish";
    case JournalRecordKind::kKill: return "kill";
    case JournalRecordKind::kIterate: return "iterate";
    case JournalRecordKind::kTickArmed: return "tick-armed";
    case JournalRecordKind::kTickFired: return "tick-fired";
    case JournalRecordKind::kIterArmed: return "iter-armed";
    case JournalRecordKind::kPeriodicArmed: return "periodic-armed";
    case JournalRecordKind::kDegraded: return "degraded";
    case JournalRecordKind::kDedup: return "dedup";
    case JournalRecordKind::kLeaseGrant: return "lease-grant";
    case JournalRecordKind::kLeaseRenew: return "lease-renew";
    case JournalRecordKind::kLeaseExpire: return "lease-expire";
    case JournalRecordKind::kLeaseFence: return "lease-fence";
    case JournalRecordKind::kHeartbeat: return "heartbeat";
    case JournalRecordKind::kLivenessArmed: return "liveness-armed";
    case JournalRecordKind::kGangPrepare: return "gang-prepare";
    case JournalRecordKind::kGangCommit: return "gang-commit";
    case JournalRecordKind::kGangAbort: return "gang-abort";
    case JournalRecordKind::kGangVictim: return "gang-victim";
  }
  return "?";
}

std::vector<std::uint8_t> encode_frame(std::uint64_t seq,
                                       JournalRecordKind kind,
                                       std::span<const std::uint8_t> payload) {
  WireWriter pw;
  pw.put_u64(seq);
  pw.put_u8(static_cast<std::uint8_t>(kind));
  std::vector<std::uint8_t> body = pw.take();
  body.insert(body.end(), payload.begin(), payload.end());

  std::vector<std::uint8_t> out;
  out.reserve(body.size() + 16);
  put_le32(out, kJournalMagicV2);
  put_le32(out, static_cast<std::uint32_t>(body.size()));
  put_le32(out, crc32(body));
  put_le32(out, crc32(std::span<const std::uint8_t>(out.data(), 12)));
  out.insert(out.end(), body.begin(), body.end());
  return out;
}

std::vector<std::uint8_t> make_snapshot_payload(
    std::uint64_t generation, std::span<const std::uint8_t> state) {
  std::vector<std::uint8_t> out;
  out.reserve(state.size() + 12);
  put_le64(out, generation);
  put_le32(out, crc32(state));
  out.insert(out.end(), state.begin(), state.end());
  return out;
}

SnapshotView parse_snapshot_payload(const JournalRecord& rec) {
  SnapshotView v;
  if (rec.version < 2) {
    // v1 snapshots are the raw state — nothing to verify against.
    v.state = std::span<const std::uint8_t>(rec.payload);
    return v;
  }
  if (rec.payload.size() < 12) {
    v.checksum_ok = false;
    return v;
  }
  v.generation = get_le64(rec.payload.data());
  const std::uint32_t want = get_le32(rec.payload.data() + 8);
  v.state = std::span<const std::uint8_t>(rec.payload.data() + 12,
                                          rec.payload.size() - 12);
  v.checksum_ok = crc32(v.state) == want;
  return v;
}

// -- FileJournalSink ---------------------------------------------------------

FileJournalSink::FileJournalSink(std::string path) : path_(std::move(path)) {
  fd_ = ::open(path_.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
  COSCHED_CHECK_MSG(fd_ >= 0, "journal open " << path_ << ": "
                                              << std::strerror(errno));
}

FileJournalSink::~FileJournalSink() {
  if (fd_ >= 0) ::close(fd_);
}

void FileJournalSink::append(std::span<const std::uint8_t> frame) {
  std::size_t off = 0;
  while (off < frame.size()) {
    const ssize_t n = ::write(fd_, frame.data() + off, frame.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == ENOSPC)
        throw JournalNoSpace(std::string("journal write: ") +
                             std::strerror(errno));
      throw Error(std::string("journal write: ") + std::strerror(errno));
    }
    off += static_cast<std::size_t>(n);
  }
}

void FileJournalSink::commit() {
  if (::fsync(fd_) != 0)
    throw Error(std::string("journal fsync: ") + std::strerror(errno));
}

void FileJournalSink::reset(std::vector<std::uint8_t> contents) {
  const std::string tmp = path_ + ".compact";
  const int tfd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  COSCHED_CHECK_MSG(tfd >= 0, "journal compact open " << tmp << ": "
                                                      << std::strerror(errno));
  std::size_t off = 0;
  while (off < contents.size()) {
    const ssize_t n = ::write(tfd, contents.data() + off,
                              contents.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      const int e = errno;
      ::close(tfd);
      ::unlink(tmp.c_str());
      if (e == ENOSPC)
        throw JournalNoSpace(std::string("journal compact write: ") +
                             std::strerror(e));
      throw Error(std::string("journal compact write: ") + std::strerror(e));
    }
    off += static_cast<std::size_t>(n);
  }
  if (::fsync(tfd) != 0) {
    const int e = errno;
    ::close(tfd);
    ::unlink(tmp.c_str());
    throw Error(std::string("journal compact fsync: ") + std::strerror(e));
  }
  ::close(tfd);
  if (::rename(tmp.c_str(), path_.c_str()) != 0)
    throw Error(std::string("journal compact rename: ") +
                std::strerror(errno));
  // The rename is only durable once the parent directory's entry is on
  // disk: without this fsync a crash right here can resurrect the old image
  // or leave the name dangling, undoing a "completed" compaction.
  const auto slash = path_.find_last_of('/');
  const std::string dir =
      slash == std::string::npos
          ? "."
          : (slash == 0 ? "/" : path_.substr(0, slash));
  const int dfd = ::open(dir.c_str(), O_RDONLY);
  if (dfd < 0)
    throw Error(std::string("journal compact dir open ") + dir + ": " +
                std::strerror(errno));
  if (::fsync(dfd) != 0) {
    const int e = errno;
    ::close(dfd);
    throw Error(std::string("journal compact dir fsync: ") +
                std::strerror(e));
  }
  ::close(dfd);
  ::close(fd_);
  fd_ = ::open(path_.c_str(), O_WRONLY | O_APPEND, 0644);
  COSCHED_CHECK_MSG(fd_ >= 0, "journal reopen " << path_ << ": "
                                                << std::strerror(errno));
}

std::vector<std::uint8_t> FileJournalSink::contents() const {
  std::vector<std::uint8_t> out;
  const int rfd = ::open(path_.c_str(), O_RDONLY);
  if (rfd < 0)
    throw JournalIoError(std::string("journal read open ") + path_ + ": " +
                         std::strerror(errno));
  std::uint8_t buf[4096];
  for (;;) {
    const ssize_t n = ::read(rfd, buf, sizeof buf);
    if (n < 0) {
      if (errno == EINTR) continue;
      // A partial read must never masquerade as a clean short journal —
      // recovery would replay a silently truncated image.
      const int e = errno;
      ::close(rfd);
      throw JournalIoError(std::string("journal read ") + path_ + ": " +
                           std::strerror(e));
    }
    if (n == 0) break;
    out.insert(out.end(), buf, buf + n);
  }
  ::close(rfd);
  return out;
}

// -- Journal -----------------------------------------------------------------

Journal::Journal(std::unique_ptr<JournalSink> sink) : sink_(std::move(sink)) {
  COSCHED_CHECK(sink_ != nullptr);
}

std::vector<std::uint8_t> Journal::frame(
    std::uint64_t seq, JournalRecordKind kind,
    std::span<const std::uint8_t> payload) {
  return encode_frame(seq, kind, payload);
}

std::uint64_t Journal::append(JournalRecordKind kind,
                              std::span<const std::uint8_t> payload) {
  const std::uint64_t seq = next_seq_++;
  try {
    sink_->append(frame(seq, kind, payload));
  } catch (const JournalNoSpace&) {
    // Swallow here, surface at the commit boundary: an append sits in the
    // middle of a mutation path, and tearing that apart would leave live
    // state half-changed.  The sequence number stays consumed, so the
    // dropped record is a detectable hole, never a silent splice.
    no_space_ = true;
  }
  last_appended_seq_ = seq;
  ++records_since_compaction_;
  dirty_ = true;
  return seq;
}

void Journal::commit() {
  if (!dirty_) return;
  sink_->commit();
  dirty_ = false;
  last_committed_seq_ = last_appended_seq_;
  // Call through a copy: the hook may clear/replace itself (the kill-anywhere
  // harness disarms its crash trigger from inside the callback).
  if (on_commit_) {
    const auto fn = on_commit_;
    fn(last_committed_seq_);
  }
}

void Journal::reopen() {
  // Whatever was appended but never committed is gone — model the crash by
  // resetting the sink to its durable image, then re-sync counters from it.
  // Salvage (not strict) scanning: even with rot mid-log the counters must
  // resume past the highest intact record, or post-recovery appends would
  // reuse sequence numbers and forge duplicates.
  sink_->reset(sink_->contents());
  const std::vector<std::uint8_t> bytes = sink_->contents();
  const SalvageReport rep = salvage_scan(bytes);
  std::uint64_t last = 0;
  std::uint64_t last_snap_seq = 0;
  for (const JournalRecord& rec : rep.records) {
    last = std::max(last, rec.seq);
    if (rec.kind == JournalRecordKind::kSnapshot) {
      last_snap_seq = std::max(last_snap_seq, rec.seq);
      const SnapshotView v = parse_snapshot_payload(rec);
      snapshot_generation_ = std::max(snapshot_generation_, v.generation);
    }
  }
  std::uint64_t after_snap = 0;
  for (const JournalRecord& rec : rep.records)
    if (rec.seq > last_snap_seq) ++after_snap;
  next_seq_ = last + 1;
  last_appended_seq_ = last;
  last_committed_seq_ = last;
  records_since_compaction_ = after_snap;
  dirty_ = false;
  no_space_ = false;
}

void Journal::compact(std::span<const std::uint8_t> snapshot_payload,
                      bool retain_previous) {
  std::vector<std::uint8_t> image;
  if (retain_previous) {
    const SalvageReport rep = salvage_scan(sink_->contents());
    std::size_t snap_idx = rep.records.size();
    for (std::size_t i = 0; i < rep.records.size(); ++i)
      if (rep.records[i].kind == JournalRecordKind::kSnapshot) snap_idx = i;
    // Keep the previous snapshot and everything intact after it as the
    // fallback generation.  Re-framing scrubs any rot that crept in (the
    // records are re-encoded from their decoded, CRC-verified form) and
    // upgrades v1 frames to v2 as a side effect.  A v1 snapshot's payload is
    // the raw state; once its frame says v2, readers expect the generation
    // envelope, so wrap it (generation 0 = pre-generation legacy).
    for (std::size_t i = snap_idx; i < rep.records.size(); ++i) {
      const JournalRecord& rec = rep.records[i];
      const auto f =
          rec.version < 2 && rec.kind == JournalRecordKind::kSnapshot
              ? encode_frame(rec.seq, rec.kind,
                             make_snapshot_payload(0, rec.payload))
              : encode_frame(rec.seq, rec.kind, rec.payload);
      image.insert(image.end(), f.begin(), f.end());
    }
  }
  const std::uint64_t seq = next_seq_++;
  const auto wrapped =
      make_snapshot_payload(++snapshot_generation_, snapshot_payload);
  const auto f = encode_frame(seq, JournalRecordKind::kSnapshot, wrapped);
  image.insert(image.end(), f.begin(), f.end());
  sink_->reset(std::move(image));
  last_appended_seq_ = seq;
  last_committed_seq_ = seq;
  records_since_compaction_ = 0;
  dirty_ = false;
  no_space_ = false;
}

void Journal::degrade_to_memory() {
  auto mem = std::make_unique<MemoryJournalSink>();
  try {
    mem->reset(sink_->contents());
  } catch (const Error&) {
    // Nothing readable to carry over — degrade to an empty in-memory
    // journal; the owner re-seeds it with a fresh snapshot.
  }
  sink_ = std::move(mem);
  degraded_ = true;
  no_space_ = false;
  dirty_ = false;
}

JournalReplay read_journal(std::span<const std::uint8_t> bytes) {
  JournalReplay out;
  std::size_t pos = 0;
  while (pos < bytes.size()) {
    ParsedFrame pf;
    if (parse_frame_at(bytes, pos, pf) != FrameStatus::kOk) {
      out.tail_torn = true;  // strict torn-tail rule: stop at the first flaw
      break;
    }
    out.records.push_back(std::move(pf.rec));
    pos += pf.size;
    out.bytes_scanned = pos;
  }
  return out;
}

SalvageReport salvage_scan(std::span<const std::uint8_t> bytes) {
  SalvageReport out;
  out.bytes_scanned = bytes.size();
  std::size_t pos = 0;
  while (pos < bytes.size()) {
    ParsedFrame pf;
    const FrameStatus st = parse_frame_at(bytes, pos, pf);
    if (st == FrameStatus::kOk) {
      out.records.push_back(std::move(pf.rec));
      pos += pf.size;
      continue;
    }
    const std::size_t next = resync_to_magic(bytes, pos + 1);
    if (next == static_cast<std::size_t>(-1)) {
      // Nothing intact follows.  A frame that simply ran off the end of the
      // buffer is a torn tail (normal crash artifact); bytes that are
      // present but wrong are trailing rot.
      if (st == FrameStatus::kTruncated) {
        out.tail_torn = true;
      } else {
        out.corrupt_regions.push_back(
            {pos, bytes.size() - pos, pf.error});
        out.bytes_skipped += bytes.size() - pos;
      }
      break;
    }
    out.corrupt_regions.push_back({pos, next - pos, pf.error});
    out.bytes_skipped += next - pos;
    pos = next;
  }
  for (std::size_t i = 1; i < out.records.size(); ++i) {
    const std::uint64_t prev = out.records[i - 1].seq;
    const std::uint64_t cur = out.records[i].seq;
    if (cur <= prev) {
      ++out.duplicate_records;
    } else if (cur != prev + 1) {
      ++out.seq_holes;
      out.records_missing += cur - prev - 1;
    }
  }
  return out;
}

}  // namespace cosched

// Durable wiring between the RPC exactly-once cache and the journal.
//
// RpcDedup itself is storage-agnostic: record() fires a persist hook under
// the cache lock and the owner decides what durable means.  This is the
// canonical owner-side wiring — every verdict becomes a committed kDedup
// journal record before the dispatcher's reply leaves (durable-before-
// reply), and replay feeds the records straight back into a fresh cache.
#pragma once

#include "core/journal.h"
#include "proto/service.h"

namespace cosched {

/// Sets `dedup`'s persist hook to append + commit a kDedup record on
/// `journal` for every verdict.  `journal` must outlive `dedup` (or the
/// hook must be cleared first).
void bind_dedup_journal(RpcDedup& dedup, Journal& journal);

/// Replays one kDedup record into the cache (recovery path; does not
/// re-fire the persist hook).  The record must be a kDedup record.
void apply_dedup_record(RpcDedup& dedup, const JournalRecord& rec);

}  // namespace cosched

// One scheduling domain of a coupled HEC system.
//
// A Cluster binds together a Scheduler (queue + policy + backfilling), the
// discrete-event engine, and the coscheduling agent implementing the paper's
// Algorithm 1.  It is both a protocol *client* (through PeerClient stubs to
// its peers) and a protocol *server* (it implements CoschedService for its
// peers' remote.* calls).
//
// The implementation generalizes Algorithm 1 to N scheduling domains (the
// paper's future-work extension): a ready paired job asks every peer for the
// group member it owns; when a mate is not ready, a single tryStartMate is
// issued and the commit marker (`starting` status) lets the remote side's own
// Run_Job recursively complete the chain across all remaining domains.  With
// two domains this reduces exactly to the published algorithm.
#pragma once

#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "core/config.h"
#include "core/event_log.h"
#include "core/journal.h"
#include "core/liveness.h"
#include "proto/peer.h"
#include "proto/service.h"
#include "sched/scheduler.h"
#include "sim/engine.h"
#include "workload/trace.h"

namespace cosched {

class Cluster final : public CoschedService {
 public:
  Cluster(Engine& engine, std::string name, NodeCount capacity,
          std::unique_ptr<PriorityPolicy> policy, CoschedConfig cosched = {},
          SchedulerConfig sched_config = {},
          std::shared_ptr<const AllocationModel> alloc = nullptr);

  // Non-copyable, non-movable: peers hold references to the service.
  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;

  /// Registers a remote scheduling domain.  Not owned.  Order is the order
  /// mates are queried in.
  void add_peer(PeerClient& peer);

  /// Loads a trace: pre-registers paired-job associations (the paper's
  /// equivalent of users declaring associated jobs at submission) and
  /// schedules one submit event per job.
  void load_trace(const Trace& trace);

  /// Submits one job at the current engine time (examples/tests).
  void submit_now(const JobSpec& spec);

  /// Kills a job wherever it is (fault injection): queued jobs vanish from
  /// the queue, holding jobs free their nodes, running jobs stop early.
  /// Safe against the job's pending completion event.  No-op for unknown or
  /// finished jobs.
  void kill_job(JobId id);

  /// Pre-registers a paired job expected to arrive later, so peers querying
  /// before its submission see status `unsubmitted`.
  void register_expected(const JobSpec& spec);

  // -- CoschedService (the four remote calls + liveness plane) -----------
  std::optional<JobId> get_mate_job(GroupId group, JobId asking) override;
  MateStatus get_mate_status(JobId job) override;
  bool try_start_mate(JobId job) override;
  bool start_job(JobId job) override;
  std::optional<HeartbeatInfo> heartbeat(const HeartbeatInfo& from) override;
  bool admit_fence(JobId job, std::uint64_t fence) override;

  // -- CoschedService (k-of-N gang costart, two-phase fenced) ------------
  bool gang_prepare(JobId job, GroupId group) override;
  bool gang_commit(JobId job, GroupId group) override;
  bool gang_abort(JobId job, GroupId group) override;
  bool gang_victim(JobId job, GroupId group) override;

  // -- accessors ---------------------------------------------------------
  Scheduler& scheduler() { return sched_; }
  const Scheduler& scheduler() const { return sched_; }
  Engine& engine() { return engine_; }
  const std::string& name() const { return name_; }
  /// This domain's engine event source: every event the cluster schedules is
  /// tagged with it, so build_clusters() can place linked domains in one
  /// dependency cluster and run unlinked ones in parallel.
  SourceId source() const { return source_; }
  const CoschedConfig& config() const { return cfg_; }
  void set_config(const CoschedConfig& cfg) { cfg_ = cfg; }

  std::uint64_t iterations_run() const { return iterations_run_; }
  std::uint64_t try_start_requests() const { return try_start_requests_; }
  std::uint64_t forced_releases() const { return forced_releases_; }

  // -- degraded-mode counters (§IV-C fault rule firing) ------------------
  /// Peer calls that failed in a decision path (mate treated as unknown).
  std::uint64_t unknown_status_decisions() const {
    return unknown_status_decisions_;
  }
  /// Paired jobs started without mate confirmation.
  std::uint64_t unsync_starts() const { return unsync_starts_; }
  /// Forced releases of jobs whose decision saw a transport fault.
  std::uint64_t degraded_forced_releases() const {
    return degraded_forced_releases_;
  }

  // -- storage alarm counters (journal ENOSPC ladder) --------------------
  /// Commits that found the journal out of space (each triggers the
  /// emergency-compaction → degrade-to-memory ladder).
  std::uint64_t storage_enospc_events() const { return enospc_events_; }
  /// Emergency compactions that freed enough space to stay durable.
  std::uint64_t storage_emergency_compactions() const {
    return emergency_compactions_;
  }
  /// The attached journal fell back to an in-memory sink (durability lost
  /// until an operator intervenes).
  bool journal_degraded() const {
    return journal_ != nullptr && journal_->degraded();
  }

  // -- liveness layer (heartbeats, failure detector, leased holds) -------

  /// This domain's current liveness payload (also what heartbeats carry).
  HeartbeatInfo liveness_info() const;

  /// Current fencing epoch: side-effecting calls stamped with an older
  /// nonzero token are rejected by admit_fence().
  std::uint64_t fence_epoch() const {
    return make_fence_token(incarnation_, fence_counter_);
  }

  /// Detector health of peer `i` at the current engine time (kAlive when
  /// liveness is disabled).
  PeerHealth peer_health(std::size_t i) const;

  /// Last payload heard from peer `i` (all-zero before the first ack).
  const HeartbeatInfo& peer_info(std::size_t i) const {
    return peer_state_[i].info;
  }

  /// Active hold leases by job id (empty when liveness is disabled).
  const std::map<JobId, HoldLease>& leases() const { return leases_; }

  std::uint64_t heartbeats_sent() const { return heartbeats_sent_; }
  std::uint64_t heartbeats_acked() const { return heartbeats_acked_; }
  std::uint64_t lease_grants() const { return lease_grants_; }
  std::uint64_t lease_renewals() const { return lease_renewals_; }
  std::uint64_t lease_expiries() const { return lease_expiries_; }
  /// Side-effecting calls rejected for carrying a stale fencing token.
  std::uint64_t stale_fence_rejections() const {
    return stale_fence_rejections_;
  }
  /// Starts that executed despite a stale fence — the runtime tripwire
  /// behind the no-start-with-stale-fence invariant; always 0 unless the
  /// dispatcher gate is bypassed.
  std::uint64_t stale_fence_starts() const { return stale_fence_starts_; }
  /// Decision paths that classified a mate as `suspected` (detector phase
  /// between alive and confirmed-dead): the job held/yielded instead of
  /// starting unsynchronized.
  std::uint64_t suspected_status_decisions() const {
    return suspected_status_decisions_;
  }
  /// Leases whose expiry is more than two heartbeat periods overdue while
  /// their job still holds nodes — the lease-expiry-respected invariant.
  std::uint64_t lease_expiry_violations(Time now) const;

  // -- gang costart layer (two-phase k-of-N starts) ----------------------
  /// Members this domain placed into a fenced prepared hold.
  std::uint64_t gangs_prepared() const { return gangs_prepared_; }
  /// Coordinator-side: gang rounds that committed (one per gang start).
  std::uint64_t gangs_committed() const { return gangs_committed_; }
  /// Coordinator-side: prepare rounds aborted (holds released, backoff).
  std::uint64_t gangs_aborted() const { return gangs_aborted_; }
  /// Victim-side: holds force-yielded by a deadlock-resolution order.
  std::uint64_t gangs_victimized() const { return gangs_victimized_; }
  /// Jobs on this domain that started through a gang commit — the basis of
  /// the gang-atomicity invariant (a committed gang must fully start).
  const std::set<JobId>& gang_started_jobs() const { return gang_started_; }
  /// Jobs currently sitting in a prepared (fenced, leased) hold.
  const std::set<JobId>& gang_prepared_jobs() const { return gang_prepared_; }

  /// Attaches a lifecycle event log (not owned; may be shared across
  /// domains).  Pass nullptr to detach.  The cluster records into the shard
  /// matching its engine source, so domains on different lanes never touch
  /// the same shard under parallel execution.
  void set_event_log(EventLog* log) {
    event_log_ = log;
    if (log != nullptr) log->ensure_shard(source_);
  }

  /// Schedules a scheduling iteration at the current time (coalesced).
  void request_iteration();

  // -- crash-consistent persistence (core/journal.h) ---------------------

  /// Outcome of one journal recovery.  The salvage fields are the
  /// zero-silent-loss contract: whatever the replay could not restore is
  /// counted here, never quietly dropped.
  struct RecoveryStats {
    std::size_t records_replayed = 0;  ///< snapshot + tail records applied
    std::size_t bytes_scanned = 0;     ///< journal bytes examined
    bool tail_torn = false;            ///< the torn-tail rule fired
    std::uint64_t incarnation = 0;     ///< incarnation after the bump
    double replay_seconds = 0.0;       ///< wall-clock spent wiping+replaying

    // -- salvage accounting (storage fault plane) ------------------------
    std::size_t corrupt_regions = 0;   ///< unreadable byte ranges skipped
    std::size_t bytes_skipped = 0;     ///< bytes inside those regions
    std::uint64_t seq_holes = 0;       ///< gaps in the record sequence
    std::uint64_t records_missing = 0; ///< sequence numbers lost in holes
    /// Intact records beyond the first hole: replaying them over missing
    /// intermediate state would be unsound, so they are dropped — and
    /// counted.
    std::uint64_t records_dropped = 0;
    std::uint64_t duplicates_skipped = 0;  ///< repeated seqs not re-applied
    /// The newest snapshot failed verification; an older generation was
    /// applied with a longer tail replay.
    bool snapshot_fallback = false;
    std::uint64_t snapshot_generation = 0; ///< generation actually applied
    int read_retries = 0;              ///< transient read errors retried

    /// True when the journal image could not be fully restored — every
    /// such loss is itemized above.
    bool data_loss_reported() const {
      return corrupt_regions > 0 || seq_holes > 0 || records_missing > 0 ||
             records_dropped > 0 || duplicates_skipped > 0 ||
             snapshot_fallback;
    }
  };

  /// Attaches a write-ahead journal (not owned; nullptr detaches).  Writes
  /// an initial snapshot (which carries the incarnation) so the journal is
  /// always recoverable on its own.  When `compact_every` > 0, the journal
  /// is compacted back to a single snapshot record every time that many
  /// records accumulate.
  void set_journal(Journal* journal, std::uint64_t compact_every = 0);
  Journal* journal() { return journal_; }

  /// Daemon incarnation: starts at 1, bumped by every recovery.
  std::uint64_t incarnation() const { return incarnation_; }

  /// Full crash recovery on this object: cancels tracked timers, wipes all
  /// mutable state, applies the journal's snapshot, replays the tail
  /// (stopping at a torn frame), re-arms timers, bumps the incarnation and
  /// journals it.  The journal stays attached for the new life.
  RecoveryStats recover_from_journal(Journal& journal);

  /// Serializes the complete mutable state (including the scheduler's) in a
  /// canonical order.  Construction facts (capacity, policy, config, peers)
  /// are not included.
  void write_snapshot(WireWriter& w) const;

  /// Wipes state and applies a snapshot written by write_snapshot().  The
  /// caller must advance the engine to the snapshot time and then call
  /// rearm_after_restore() (CoupledSim::restore does both).
  void restore_snapshot(WireReader& r);

  /// Re-arms completion/iteration/tick/periodic/retry timers from restored
  /// state at their absolute journaled times.  Idempotent per recovery.
  void rearm_after_restore();

 private:
  /// Journaling wrapper around Algorithm 1: logs/journals the first-ready
  /// transition and any degraded-mode set/counter deltas around the
  /// decision.
  RunDecision run_job_hook(RuntimeJob& job, bool try_context);

  /// The paper's Run_Job coscheduling logic (Algorithm 1).  `try_context`
  /// is true when invoked underneath a remote tryStartMate: the job must
  /// either start or decline without side effects (no hold/yield).
  RunDecision run_job_decision(RuntimeJob& job, bool try_context);

  /// Applies the local scheme + enhancement thresholds (§IV-E2).  `force`
  /// overrides the configured scheme (gang paths yield while backing off
  /// regardless of the hold/yield setting); enhancement thresholds only
  /// apply to the configured scheme.
  RunDecision scheme_decision(RuntimeJob& job, bool try_context,
                              std::optional<Scheme> force = std::nullopt);

  // -- gang costart internals --------------------------------------------
  bool gang_on() const { return cfg_.enabled && cfg_.gang.two_phase; }
  /// One remote member of a gang, as seen by the coordinator.
  struct GangMate {
    PeerClient* peer = nullptr;
    std::int32_t peer_index = -1;
    JobId id = kNoJob;
  };
  /// Coordinator side of the two-phase costart: prepare every member, then
  /// commit all (kStart) or abort every prepared hold and back off (kYield).
  RunDecision gang_costart(RuntimeJob& job,
                           const std::vector<GangMate>& members,
                           bool& transport_fault);
  /// Run_Job hook that places the member into a fenced leased hold
  /// (journals kHold, arms the breaker, grants a self-expiring lease).
  RunDecision gang_hold_hook(RuntimeJob& job);
  /// Deterministic jittered exponential backoff for re-prepare attempts.
  Duration gang_backoff(JobId job, std::uint32_t attempt) const;

  void track_dependency(const JobSpec& spec);
  void do_submit(const JobSpec& spec);
  void arm_periodic_iteration();
  void on_job_started(const RuntimeJob& job);
  void on_job_finished(JobId id);
  void schedule_hold_release(JobId id);
  void schedule_yield_retry(JobId id);
  void log_event(JobEventKind kind, const RuntimeJob& job);

  // Timer event bodies, named so recovery can re-arm them at absolute
  // journaled times.
  void run_iteration_body();
  void hold_release_tick();
  void periodic_body();
  void arm_yield_retry_event(Time at, JobId id);

  // -- liveness internals ------------------------------------------------
  bool liveness_on() const {
    return cfg_.liveness.enabled && !peers_.empty();
  }
  void arm_liveness_tick();
  /// Heartbeat round: probe every peer, feed the detectors, renew leases
  /// backed by live mates, expire the rest.
  void liveness_body();
  /// Grants (or re-grants) the hold lease for `job` against blocking peer
  /// `peer` (journal-before-mutate).
  void grant_lease(JobId job, std::int32_t peer);
  /// Expires one lease: advances the fencing epoch, force-releases the hold
  /// and requeues the job (a confirmed-dead mate then starts it
  /// unsynchronized at the next iteration).
  void expire_lease(JobId job, bool mate_dead);

  // -- journaling internals ----------------------------------------------
  bool journaling() const { return journal_ != nullptr && !replaying_; }
  /// Group-commit point at the end of every journaling entry body; also
  /// triggers compaction once compact_every_ records accumulate.
  void journal_commit();
  /// ENOSPC ladder step: fold the whole tail into one snapshot (freeing
  /// quota); if even that does not fit, degrade the journal to memory.
  void emergency_compact();
  void wipe_for_recovery();
  void apply_snapshot(WireReader& r);
  void apply_record(const JournalRecord& rec);
  /// Picks the newest snapshot record that verifies (checksum + parse) and
  /// applies it, walking back a generation per failure.  Returns the index
  /// into `records` or records.size() when none verifies.
  std::size_t apply_verified_snapshot(const std::vector<JournalRecord>& records,
                                      RecoveryStats& stats);
  /// Replays the salvaged tail after the applied snapshot: sorts by
  /// sequence number (healing reordered writes), skips duplicates and
  /// rejected snapshots, and stops at the first hole — everything beyond it
  /// is counted into `stats`, never silently applied.
  void replay_salvaged_tail(const std::vector<JournalRecord>& records,
                            std::size_t snap_idx, RecoveryStats& stats);

  Engine& engine_;
  std::string name_;
  SourceId source_;
  CoschedConfig cfg_;
  SchedulerConfig sched_cfg_;
  Scheduler sched_;

  std::vector<PeerClient*> peers_;
  std::unordered_map<GroupId, JobId> group_to_job_;
  std::unordered_map<JobId, JobSpec> expected_;   ///< registered, unsubmitted
  /// dependency -> (dependent job, think-time delay); drained at finish.
  std::unordered_multimap<JobId, std::pair<JobId, Duration>> dependents_;
  std::unordered_set<JobId> committing_;          ///< report kStarting
  bool iteration_pending_ = false;
  bool release_tick_pending_ = false;
  bool periodic_armed_ = false;
  EventLog* event_log_ = nullptr;
  std::unordered_set<JobId> ready_logged_;
  /// Jobs whose latest decision path hit a transport fault; membership makes
  /// a subsequent forced release fault-attributable.
  std::unordered_set<JobId> fault_seen_;
  /// Jobs whose start decision was taken under a transport fault; confirmed
  /// as unsynchronized starts when the start actually lands.
  std::unordered_set<JobId> unsync_pending_;

  std::uint64_t iterations_run_ = 0;
  std::uint64_t try_start_requests_ = 0;
  std::uint64_t forced_releases_ = 0;
  std::uint64_t unknown_status_decisions_ = 0;
  std::uint64_t unsync_starts_ = 0;
  std::uint64_t degraded_forced_releases_ = 0;

  // -- liveness layer ------------------------------------------------------
  /// Per-peer detector + last-heard payload, parallel to peers_.
  struct PeerState {
    FailureDetector detector;
    HeartbeatInfo info;
    bool ever_heard = false;
  };
  std::vector<PeerState> peer_state_;
  /// Active hold leases by job.  Ordered so snapshots and expiry scans are
  /// deterministic.
  std::map<JobId, HoldLease> leases_;
  /// Low 32 bits of the fencing epoch; bumped on every lease expiry.  The
  /// incarnation forms the high bits (see make_fence_token).
  std::uint32_t fence_counter_ = 0;
  bool liveness_armed_ = false;
  Time liveness_at_ = kNoTime;
  std::optional<EventId> liveness_event_;
  /// Job whose latest admit_fence() verdict was "stale" — consumed by
  /// try_start_mate/start_job to detect a bypassed gate.
  JobId pending_stale_fence_ = kNoJob;
  std::uint64_t heartbeats_sent_ = 0;
  std::uint64_t heartbeats_acked_ = 0;
  std::uint64_t lease_grants_ = 0;
  std::uint64_t lease_renewals_ = 0;
  std::uint64_t lease_expiries_ = 0;
  std::uint64_t stale_fence_rejections_ = 0;
  std::uint64_t stale_fence_starts_ = 0;
  std::uint64_t suspected_status_decisions_ = 0;
  /// Peer index that blocked the most recent scheme_decision (-1 = none);
  /// the lease grant records it as the renewal source.
  std::int32_t blocking_peer_ = -1;

  // -- gang costart layer ---------------------------------------------------
  /// Members currently in a prepared hold (ordered: snapshots are canonical).
  std::set<JobId> gang_prepared_;
  /// Jobs started via a gang commit (never shrinks; atomicity witness).
  std::set<JobId> gang_started_;
  /// Re-prepare backoff deadline per local gang job (coordinator/victim).
  std::map<JobId, Time> gang_backoff_until_;
  /// Abort/victim attempt count per job, feeding the backoff exponent.
  std::map<JobId, std::uint32_t> gang_attempts_;
  std::uint64_t gangs_prepared_ = 0;
  std::uint64_t gangs_committed_ = 0;
  std::uint64_t gangs_aborted_ = 0;
  std::uint64_t gangs_victimized_ = 0;

  // -- crash-consistent persistence ---------------------------------------
  Journal* journal_ = nullptr;   ///< not owned
  std::uint64_t compact_every_ = 0;
  bool replaying_ = false;
  std::uint64_t incarnation_ = 1;
  /// Times the journal hit ENOSPC and entered the degradation ladder.
  std::uint64_t enospc_events_ = 0;
  /// Emergency compactions that successfully recovered journal space.
  std::uint64_t emergency_compactions_ = 0;
  /// True while start_job() promotes a holder, so the kStart record can
  /// distinguish holding-origin from queued-origin starts.
  bool starting_from_hold_ = false;
  /// Tracked timers a crash cancels and recovery re-arms.  Untracked events
  /// (trace submits, yield retries, dependency wakes) survive a crash and
  /// carry state guards instead.
  std::unordered_map<JobId, EventId> completion_events_;
  std::optional<EventId> iteration_event_;
  std::optional<EventId> tick_event_;
  std::optional<EventId> periodic_event_;
  Time release_tick_at_ = kNoTime;  ///< absolute time of the armed tick
  Time periodic_at_ = kNoTime;      ///< absolute time of the armed periodic
  /// Pending yield-retry checks as (absolute time, job); snapshotted so a
  /// fresh-process restore can re-arm them.
  std::set<std::pair<Time, JobId>> yield_retries_;
  /// Timestamp of the newest kIterate record seen during replay; kNoTime
  /// outside recovery.  Lets rearm_after_restore() drop yield retries at the
  /// crash instant that provably fired before the crash (retries at a
  /// timestamp always run before the iteration armed there).
  Time replay_last_iterate_ = kNoTime;
};

}  // namespace cosched

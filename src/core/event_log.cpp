#include "core/event_log.h"

#include <algorithm>
#include <istream>
#include <map>
#include <ostream>
#include <sstream>

#include "util/error.h"

namespace cosched {

const char* to_string(JobEventKind k) {
  switch (k) {
    case JobEventKind::kSubmit: return "submit";
    case JobEventKind::kReady: return "ready";
    case JobEventKind::kStart: return "start";
    case JobEventKind::kHold: return "hold";
    case JobEventKind::kHoldRelease: return "hold-release";
    case JobEventKind::kYield: return "yield";
    case JobEventKind::kFinish: return "finish";
    case JobEventKind::kUnsyncStart: return "unsync-start";
    case JobEventKind::kLeaseExpire: return "lease-expire";
    case JobEventKind::kFenceReject: return "fence-reject";
  }
  return "?";
}

namespace {

JobEventKind parse_kind(const std::string& s) {
  for (auto k : {JobEventKind::kSubmit, JobEventKind::kReady,
                 JobEventKind::kStart, JobEventKind::kHold,
                 JobEventKind::kHoldRelease, JobEventKind::kYield,
                 JobEventKind::kFinish, JobEventKind::kUnsyncStart,
                 JobEventKind::kLeaseExpire, JobEventKind::kFenceReject})
    if (s == to_string(k)) return k;
  throw ParseError("event log: unknown event kind '" + s + "'");
}

// Parses "key=value" with a signed integer value.
std::int64_t parse_field(const std::string& token, const char* key) {
  const std::string prefix = std::string(key) + "=";
  if (token.rfind(prefix, 0) != 0)
    throw ParseError("event log: expected '" + prefix + "...', got '" +
                     token + "'");
  return std::stoll(token.substr(prefix.size()));
}

}  // namespace

std::vector<JobEvent> EventLog::events() const {
  std::vector<JobEvent> out;
  out.reserve(size());
  // Concatenate in shard order, then stable-sort by time: equal-time events
  // keep (shard, in-shard index) order, making the merge a pure function of
  // shard contents — identical for serial and parallel runs.
  for (const auto& shard : shards_) out.insert(out.end(), shard.begin(),
                                               shard.end());
  std::stable_sort(out.begin(), out.end(),
                   [](const JobEvent& a, const JobEvent& b) {
                     return a.time < b.time;
                   });
  return out;
}

std::size_t EventLog::size() const {
  std::size_t n = 0;
  for (const auto& shard : shards_) n += shard.size();
  return n;
}

std::vector<JobEvent> EventLog::of_kind(JobEventKind kind) const {
  std::vector<JobEvent> out;
  for (const JobEvent& e : events())
    if (e.kind == kind) out.push_back(e);
  return out;
}

void EventLog::write_text(std::ostream& os) const {
  for (const JobEvent& e : events()) {
    os << e.time << ' ' << e.system << ' ' << to_string(e.kind)
       << " job=" << e.job << " group=" << e.group << " nodes=" << e.nodes
       << '\n';
  }
}

EventLog EventLog::read_text(std::istream& is) {
  EventLog log;
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(is, line)) {
    ++lineno;
    if (line.empty() || line[0] == '#') continue;
    std::istringstream ls(line);
    JobEvent e;
    std::string kind, job_f, group_f, nodes_f;
    if (!(ls >> e.time >> e.system >> kind >> job_f >> group_f >> nodes_f))
      throw ParseError("event log line " + std::to_string(lineno) +
                       ": malformed");
    e.kind = parse_kind(kind);
    e.job = parse_field(job_f, "job");
    e.group = parse_field(group_f, "group");
    e.nodes = parse_field(nodes_f, "nodes");
    log.record(std::move(e));
  }
  return log;
}

CoStartReport verify_co_starts(const EventLog& log) {
  // Group membership is inferred from submit events; a member that never
  // logged a start leaves the group incomplete.
  std::map<GroupId, std::size_t> members;
  for (const JobEvent& e : log.events())
    if (e.kind == JobEventKind::kSubmit && e.group != kNoGroup)
      ++members[e.group];

  std::map<GroupId, std::vector<Time>> starts;
  for (const JobEvent& e : log.events())
    if (e.kind == JobEventKind::kStart && e.group != kNoGroup)
      starts[e.group].push_back(e.time);

  CoStartReport report;
  report.groups_total = members.size();
  for (const auto& [group, expected] : members) {
    auto it = starts.find(group);
    if (it == starts.end() || it->second.size() < expected) {
      ++report.groups_incomplete;
      continue;
    }
    const auto [lo, hi] =
        std::minmax_element(it->second.begin(), it->second.end());
    const Duration skew = *hi - *lo;
    report.max_skew = std::max(report.max_skew, skew);
    if (skew == 0) ++report.groups_co_started;
  }
  return report;
}

}  // namespace cosched

#include "core/liveness.h"

#include "util/error.h"

namespace cosched {

const char* to_string(PeerHealth h) {
  switch (h) {
    case PeerHealth::kAlive: return "alive";
    case PeerHealth::kSuspect: return "suspect";
    case PeerHealth::kDead: return "dead";
  }
  return "?";
}

FailureDetector::FailureDetector(Duration expected_interval, Time epoch)
    : expected_interval_(expected_interval > 0 ? expected_interval : 1),
      epoch_(epoch) {}

void FailureDetector::mark_probe(Time now) {
  if (probed_) return;
  probed_ = true;
  if (last_heard_ == kNoTime && now > epoch_) epoch_ = now;
}

void FailureDetector::record_heartbeat(Time now) {
  if (last_heard_ != kNoTime && now > last_heard_) {
    gaps_.push_back(now - last_heard_);
    while (gaps_.size() > kWindow) gaps_.pop_front();
  }
  if (last_heard_ == kNoTime || now > last_heard_) last_heard_ = now;
  ++heartbeats_seen_;
}

double FailureDetector::mean_interval() const {
  // The configured period contributes one virtual sample so a single
  // anomalous gap cannot whipsaw a cold detector.
  Duration sum = expected_interval_;
  for (const Duration g : gaps_) sum += g;
  return static_cast<double>(sum) / static_cast<double>(gaps_.size() + 1);
}

double FailureDetector::phi(Time now) const {
  // Nothing heard AND nothing asked: no basis for suspicion yet.
  if (last_heard_ == kNoTime && !probed_) return 0.0;
  const Time since = last_heard_ != kNoTime ? last_heard_ : epoch_;
  const Time silence = now - since;
  if (silence <= 0) return 0.0;
  // -log10 P(gap > silence) for exponential arrivals: log10(e) * t / mean.
  return 0.4342944819032518 * static_cast<double>(silence) / mean_interval();
}

PeerHealth FailureDetector::health(Time now, double phi_suspect,
                                   double phi_confirm) const {
  const double p = phi(now);
  if (p >= phi_confirm) return PeerHealth::kDead;
  if (p >= phi_suspect) return PeerHealth::kSuspect;
  return PeerHealth::kAlive;
}

void FailureDetector::snapshot(WireWriter& w) const {
  w.put_i64(expected_interval_);
  w.put_i64(epoch_);
  w.put_i64(last_heard_);
  w.put_bool(probed_);
  w.put_u64(heartbeats_seen_);
  w.put_u64(gaps_.size());
  for (const Duration g : gaps_) w.put_i64(g);
}

void FailureDetector::restore(WireReader& r) {
  expected_interval_ = r.get_i64();
  epoch_ = r.get_i64();
  last_heard_ = r.get_i64();
  probed_ = r.get_bool();
  heartbeats_seen_ = r.get_u64();
  gaps_.clear();
  const std::uint64_t n = r.get_u64();
  if (n > kWindow) throw ParseError("liveness: detector window overflow");
  for (std::uint64_t i = 0; i < n; ++i) gaps_.push_back(r.get_i64());
}

void HoldLease::snapshot(WireWriter& w) const {
  w.put_i64(job);
  w.put_i64(peer);
  w.put_i64(granted_at);
  w.put_i64(expires_at);
  w.put_u64(token);
  w.put_u64(renewals);
}

HoldLease HoldLease::restore(WireReader& r) {
  HoldLease l;
  l.job = r.get_i64();
  l.peer = static_cast<std::int32_t>(r.get_i64());
  l.granted_at = r.get_i64();
  l.expires_at = r.get_i64();
  l.token = r.get_u64();
  l.renewals = static_cast<std::uint32_t>(r.get_u64());
  return l;
}

}  // namespace cosched

// Deterministic fault injection for inter-domain protocol links.
//
// The paper's fault-tolerance rule (§IV-C) — remote down or mate dead means
// status `unknown`, and the local job starts normally rather than waiting
// forever — deserves more exercise than a binary down/up toggle.  FaultPlan
// describes a *seedable chaos schedule* for one directed link: per-RPC drop
// probability, a latency distribution checked against an RPC deadline,
// scheduled outage windows, periodic flapping, and reply corruption.  The
// same seed always yields the same fault sequence, so chaos runs are exactly
// as reproducible as fault-free ones (DeterminismGuard covers both).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "proto/peer.h"
#include "sim/engine.h"
#include "util/rng.h"
#include "util/types.h"

namespace cosched {

/// Chaos schedule for one directed peer link.  All probabilities are per
/// RPC; all times are engine (simulated) time.
struct FaultPlan {
  /// Substream seed: identical plans with identical seeds produce identical
  /// fault sequences (and therefore identical SimResults).
  std::uint64_t seed = 0x0fa417ULL;

  /// Probability that a call is dropped outright (request or reply lost).
  double drop_probability = 0.0;

  /// Probability that a reply arrives corrupted.  A corrupt reply fails to
  /// parse, which the peer layer maps to "remote unknown" — semantically a
  /// failed call, but accounted separately.
  double corrupt_probability = 0.0;

  /// Per-call latency model: base + uniform jitter in [0, latency_jitter).
  /// A sampled latency above `rpc_deadline` (when nonzero) times the call
  /// out — the remote answered too late to matter.
  Duration latency_base = 0;
  Duration latency_jitter = 0;
  Duration rpc_deadline = 0;

  /// Probability that the *reply* is lost after the remote processed the
  /// call.  Unlike drop_probability (request lost, remote never acted) the
  /// side effect happens and only the caller is left in the dark — the
  /// asymmetric half of a partition, and the scenario fencing exists for.
  double reply_drop_probability = 0.0;

  /// Hard outage windows: the link is down for t in [start, end).
  struct Window {
    Time start = 0;
    Time end = 0;
  };
  std::vector<Window> outages;

  /// One-way partition windows: requests still reach the remote (and take
  /// effect there), but every reply is lost for t in [start, end).  The
  /// reverse link typically keeps working — set these on one direction only
  /// to model an asymmetric partition.
  std::vector<Window> reply_outages;

  /// Periodic flapping: down for `flap_down_for` at the start of every
  /// `flap_period` (phase-shifted by `flap_phase`).  0 period disables.
  Duration flap_period = 0;
  Duration flap_down_for = 0;
  Time flap_phase = 0;

  /// When a call fails and this is nonzero, the injector schedules one
  /// coalesced engine event this far in the future that re-runs the caller's
  /// scheduling iteration — modeling an agent that re-examines its queue
  /// after the transport deadline instead of forgetting the job until the
  /// next natural event.
  Duration retry_backoff = 0;

  bool has_faults() const {
    return drop_probability > 0.0 || corrupt_probability > 0.0 ||
           reply_drop_probability > 0.0 ||
           (rpc_deadline > 0 && latency_base + latency_jitter > rpc_deadline) ||
           !outages.empty() || !reply_outages.empty() || flap_period > 0;
  }
};

/// Per-link fault accounting (degraded-mode observability).
struct FaultStats {
  std::uint64_t calls = 0;           ///< calls reaching the injector
  std::uint64_t delivered = 0;       ///< passed through to the real peer
  std::uint64_t dropped = 0;         ///< lost to drop_probability
  std::uint64_t timed_out = 0;       ///< sampled latency > rpc_deadline
  std::uint64_t corrupted = 0;       ///< reply corrupted -> unknown
  std::uint64_t reply_lost = 0;      ///< executed remotely, reply dropped
  std::uint64_t outage_blocked = 0;  ///< down window / flap / manual / crash
  /// Summed injected latency over delivered calls (simulated seconds).
  std::uint64_t total_latency = 0;

  std::uint64_t failed() const {
    return dropped + timed_out + corrupted + reply_lost + outage_blocked;
  }

  FaultStats& operator+=(const FaultStats& o) {
    calls += o.calls;
    delivered += o.delivered;
    dropped += o.dropped;
    timed_out += o.timed_out;
    corrupted += o.corrupted;
    reply_lost += o.reply_lost;
    outage_blocked += o.outage_blocked;
    total_latency += o.total_latency;
    return *this;
  }
};

/// Wraps another peer and injects failures per a FaultPlan.  With the
/// default (empty) plan and `down == false` it is a transparent
/// pass-through, byte-for-byte identical in behavior to the wrapped peer.
/// Models the paper's fault-tolerance scenarios — remote system down, link
/// degraded, mate job failed — plus whole-domain crash/restart (driven by
/// CoupledSim).
class FaultInjectingPeer final : public PeerClient {
 public:
  /// `engine` (optional) supplies the clock for outage windows/flapping and
  /// the event queue for retry_backoff injection; without it only
  /// probability-based faults and the manual toggle apply.
  explicit FaultInjectingPeer(std::unique_ptr<PeerClient> inner,
                              Engine* engine = nullptr)
      : inner_(std::move(inner)), engine_(engine) {}

  /// Manual toggle (back-compat with the pre-plan API).
  void set_down(bool down) { down_ = down; }
  bool down() const { return down_; }

  /// Crash marker — like set_down but tracked separately so a domain crash
  /// is distinguishable from a link outage in the accounting.
  void set_crashed(bool crashed) { crashed_ = crashed; }
  bool crashed() const { return crashed_; }

  /// Installs a chaos schedule and reseeds the fault stream from plan.seed.
  void set_plan(FaultPlan plan);
  const FaultPlan& plan() const { return plan_; }

  /// Appends an outage window to the installed plan *without* reseeding the
  /// fault stream — mid-run partition scripting stays stream-stable.
  void add_outage(Time start, Time end) {
    plan_.outages.push_back({start, end});
  }
  /// Same for a one-way (reply-only) window.
  void add_reply_outage(Time start, Time end) {
    plan_.reply_outages.push_back({start, end});
  }

  const FaultStats& stats() const { return stats_; }

  /// Invoked (coalesced, retry_backoff after a failed call) so the calling
  /// domain can re-run a scheduling iteration.  Wired by CoupledSim.
  void set_retry_listener(std::function<void()> fn) {
    retry_listener_ = std::move(fn);
  }

  /// The wrapped transport (for statistics inspection).
  PeerClient& inner() { return *inner_; }
  const PeerClient& inner() const { return *inner_; }

  std::optional<std::optional<JobId>> get_mate_job(GroupId group,
                                                   JobId asking) override;
  std::optional<MateStatus> get_mate_status(JobId mate) override;
  std::optional<bool> try_start_mate(JobId mate) override;
  std::optional<bool> start_job(JobId job) override;
  std::optional<bool> gang_prepare(JobId job, GroupId group) override;
  std::optional<bool> gang_commit(JobId job, GroupId group) override;
  std::optional<bool> gang_abort(JobId job, GroupId group) override;
  std::optional<bool> gang_victim(JobId job, GroupId group) override;
  std::optional<HeartbeatInfo> heartbeat(const HeartbeatInfo& mine) override;
  void set_fence_token(std::uint64_t token) override {
    inner_->set_fence_token(token);
  }

 private:
  /// Outcome of applying the plan to one call.  kCorrupt and kDropReply
  /// both deliver the call to the wrapped peer (the remote *did* process
  /// it) but discard the reply — the partial-failure case where e.g. a mate
  /// was actually started yet the caller only learns "unknown".
  enum class Verdict : std::uint8_t { kFail, kDeliver, kCorrupt, kDropReply };

  Verdict verdict();
  bool in_outage(Time now) const;
  bool in_reply_outage(Time now) const;
  void on_failed_call();

  std::unique_ptr<PeerClient> inner_;
  Engine* engine_ = nullptr;
  FaultPlan plan_;
  Rng rng_{0x0fa417ULL};
  bool down_ = false;
  bool crashed_ = false;
  bool retry_pending_ = false;
  std::function<void()> retry_listener_;
  FaultStats stats_;
};

}  // namespace cosched

// Advance co-reservation baseline (related work the paper argues against,
// §III: HARC, GARA, GUR).
//
// Every paired group receives a co-reservation: the earliest instant at
// which *every* domain can fit its member for its full requested walltime.
// Unpaired jobs are placed conservatively on their own domain's timeline.
// Because reservations are made against walltime (not actual runtime) and
// are never re-packed, this scheme exhibits the temporal fragmentation the
// paper cites as the reason co-reservation is unsuitable: reserved-but-
// unused node-hours and inflated waits for regular jobs.
#pragma once

#include <vector>

#include "core/coupled_sim.h"
#include "metrics/report.h"
#include "workload/trace.h"

namespace cosched {

struct CoReservationResult {
  std::vector<SystemMetrics> systems;
  /// Node-hours reserved but never used (walltime minus runtime), per run —
  /// the fragmentation analogue of the coscheduling service-unit loss.
  std::vector<double> fragmentation_node_hours;
};

/// Simulates co-reservation scheduling on the given domains/traces.
/// `lead_time` is the minimum notice between submission and the earliest
/// reservable start (manual negotiation latency; 0 = instant).
CoReservationResult simulate_co_reservation(
    const std::vector<DomainSpec>& specs, const std::vector<Trace>& traces,
    Duration lead_time = 0);

}  // namespace cosched

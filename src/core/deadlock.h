// Deadlock witnesses for hold-hold coscheduling (paper §IV-D1, Fig. 2).
//
// Hold-hold satisfies all four Coffman conditions; this module detects the
// circular-wait witness at runtime so the validation experiment can show
// deadlocks appearing without the release enhancement and vanishing with it.
#pragma once

#include <vector>

#include "core/cluster.h"

namespace cosched {

/// An edge of the domain-level wait-for graph: some job holding on `from`
/// waits for its mate on `to`, and that mate cannot currently be allocated.
struct WaitEdge {
  std::size_t from = 0;
  std::size_t to = 0;
  JobId holding_job = kNoJob;
};

/// Builds the wait-for graph among domains.  A job holding on X whose group
/// has a member queued (or expected) on Y, where Y lacks free nodes for that
/// member, contributes edge X -> Y.
std::vector<WaitEdge> build_wait_graph(
    const std::vector<const Cluster*>& clusters);

/// True when the wait-for graph contains a cycle — the Fig. 2 situation.
bool has_hold_wait_cycle(const std::vector<const Cluster*>& clusters);

}  // namespace cosched

// Deadlock witnesses for hold-hold coscheduling (paper §IV-D1, Fig. 2).
//
// Hold-hold satisfies all four Coffman conditions; this module detects the
// circular-wait witness at runtime so the validation experiment can show
// deadlocks appearing without the release enhancement and vanishing with it.
#pragma once

#include <functional>
#include <vector>

#include "core/cluster.h"

namespace cosched {

/// An edge of the domain-level wait-for graph: some job holding on `from`
/// waits for its mate on `to`, and that mate cannot currently be allocated.
struct WaitEdge {
  std::size_t from = 0;
  std::size_t to = 0;
  JobId holding_job = kNoJob;
};

/// Builds the wait-for graph among domains.  A job holding on X whose group
/// has a member queued (or expected) on Y, where Y lacks free nodes for that
/// member, contributes edge X -> Y.
std::vector<WaitEdge> build_wait_graph(
    const std::vector<const Cluster*>& clusters);

/// True when the wait-for graph contains a cycle — the Fig. 2 situation.
bool has_hold_wait_cycle(const std::vector<const Cluster*>& clusters);

/// A circular wait through the mesh: edges[i].to == edges[i+1].from and the
/// last edge closes back to edges[0].from.  Empty = no cycle.
struct WaitCycle {
  std::vector<WaitEdge> edges;

  bool empty() const { return edges.empty(); }
  std::size_t length() const { return edges.size(); }
};

/// Extracts one wait cycle from an edge list (pure — unit-testable without
/// live clusters).  Deterministic: DFS starts from the lowest domain index
/// and follows edges in (from, to, holding_job) order, so identical edge
/// sets always yield the identical cycle.  `domains` bounds the node ids.
WaitCycle extract_wait_cycle(const std::vector<WaitEdge>& edges,
                             std::size_t domains);

/// Convenience over live clusters: build_wait_graph + extract_wait_cycle.
WaitCycle find_hold_wait_cycle(const std::vector<const Cluster*>& clusters);

/// Deterministic victim selection: among the cycle's holding jobs, the gang
/// with the *lowest* priority — latest submit time under FCFS — loses; ties
/// break toward the lowest job id.  `submit_of` supplies the submit time of
/// an edge's holding job (pure — unit-testable with a lambda).
/// Precondition: !cycle.empty().
WaitEdge choose_victim(const WaitCycle& cycle,
                       const std::function<Time(const WaitEdge&)>& submit_of);

}  // namespace cosched

// Configuration-file support for coupled simulations.
//
// A deployment-style INI format describes each scheduling domain — what a
// site administrator would write rather than C++ — consumed by the
// `cosched_sim` CLI and usable by any embedder:
//
//   [domain intrepid]
//   capacity = 40960
//   policy = wfp                  # fcfs | wfp | sjf | lxf
//   scheme = hold                 # hold | yield
//   enabled = true
//   hold-release-min = 20         # 0 disables the deadlock breaker
//   max-hold-fraction = 1.0
//   max-yield-before-hold = 0
//   yield-boost = 0
//   yield-retry-min = 5
//   backfill = easy               # easy | conservative | none
//   allocation = bgp-partitions   # plain | bgp-partitions
//   trace = intrepid.swf          # SWF path, or synth spec:
//                                 # synth:eureka?load=0.5&days=30&seed=1
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "core/coupled_sim.h"
#include "workload/trace.h"

namespace cosched {

/// One parsed [domain ...] section.
struct DomainConfig {
  DomainSpec spec;
  /// Raw `trace =` value: an SWF path or a "synth:<model>?k=v&..." spec.
  std::string trace_source;
};

/// Parses the INI stream.  Throws ParseError with line numbers on errors.
std::vector<DomainConfig> parse_domain_configs(std::istream& in);

/// Reads a config file from disk.  Throws Error if unreadable.
std::vector<DomainConfig> read_domain_configs(const std::string& path);

/// Materializes a domain's trace: loads the SWF file, or generates the
/// synthetic workload described by a "synth:" spec ("intrepid" or "eureka"
/// models; parameters load, days, jobs, seed).
Trace load_trace_source(const std::string& source, const DomainSpec& spec);

}  // namespace cosched

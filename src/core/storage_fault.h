// Deterministic fault injection for the durable storage plane.
//
// The network plane got its seeded chaos schedule in core/fault.h; this is
// the same treatment for the journal's disk: a StorageFaultPlan describes a
// seedable corruption schedule for one journal sink — per-append bit flips,
// torn (short) writes, writes lost before the fsync, write reordering,
// transient read errors, and a byte-capacity quota that surfaces as
// JournalNoSpace.  Fault decisions draw from a *decorrelated per-operation
// seed* (splitmix over the plan seed and the operation ordinal), so adding
// or removing one operation never shifts the fault outcomes of the others —
// a corrupt-anywhere sweep stays byte-reproducible case by case.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "core/journal.h"
#include "util/rng.h"

namespace cosched {

/// Seedable corruption schedule for one journal sink.  All probabilities
/// are per operation (append or contents() read).
struct StorageFaultPlan {
  /// Substream seed: identical plans with identical seeds produce identical
  /// corruption sequences.
  std::uint64_t seed = 0x570fa17ULL;

  /// Probability that an appended frame has one random bit flipped (silent
  /// media rot at write time).
  double bit_flip_probability = 0.0;

  /// Probability that an appended frame is cut short (a torn write: only a
  /// random proper prefix reaches the medium).
  double torn_write_probability = 0.0;

  /// Probability that an appended frame is dropped entirely before the
  /// fsync (lost pre-fsync write — the page never made it out of cache).
  double lost_write_probability = 0.0;

  /// Probability that an appended frame is reordered behind its successor
  /// (pre-fsync write reordering; flushed in held order at commit()).
  double reorder_probability = 0.0;

  /// Probability that a contents() read fails with JournalIoError
  /// (transient medium error; a retry re-draws from the next op seed).
  double read_error_probability = 0.0;

  /// Byte quota modeling a full disk partition: an append or reset that
  /// would push the stored size past this throws JournalNoSpace.  A reset
  /// to a *smaller* image (compaction) frees quota.  0 = unlimited.
  std::uint64_t capacity_bytes = 0;

  bool has_faults() const {
    return bit_flip_probability > 0.0 || torn_write_probability > 0.0 ||
           lost_write_probability > 0.0 || reorder_probability > 0.0 ||
           read_error_probability > 0.0 || capacity_bytes > 0;
  }
};

/// Per-sink corruption accounting (degraded-mode observability).
struct StorageFaultStats {
  std::uint64_t appends = 0;        ///< append() calls reaching the injector
  std::uint64_t commits = 0;        ///< commit() calls
  std::uint64_t resets = 0;         ///< reset() calls (compactions)
  std::uint64_t reads = 0;          ///< contents() calls
  std::uint64_t bits_flipped = 0;   ///< frames corrupted by a bit flip
  std::uint64_t torn_writes = 0;    ///< frames cut short
  std::uint64_t lost_writes = 0;    ///< frames dropped pre-fsync
  std::uint64_t reorders = 0;       ///< frames delayed behind a successor
  std::uint64_t read_errors = 0;    ///< contents() calls failed
  std::uint64_t enospc_errors = 0;  ///< operations refused for lack of space
  std::uint64_t bytes_appended = 0; ///< bytes that reached the inner sink
  std::uint64_t bytes_dropped = 0;  ///< bytes lost to torn/lost writes

  std::uint64_t injected() const {
    return bits_flipped + torn_writes + lost_writes + reorders + read_errors +
           enospc_errors;
  }

  StorageFaultStats& operator+=(const StorageFaultStats& o) {
    appends += o.appends;
    commits += o.commits;
    resets += o.resets;
    reads += o.reads;
    bits_flipped += o.bits_flipped;
    torn_writes += o.torn_writes;
    lost_writes += o.lost_writes;
    reorders += o.reorders;
    read_errors += o.read_errors;
    enospc_errors += o.enospc_errors;
    bytes_appended += o.bytes_appended;
    bytes_dropped += o.bytes_dropped;
    return *this;
  }
};

/// Wraps another sink and injects storage faults per a StorageFaultPlan.
/// With the default (empty) plan it is a transparent pass-through,
/// byte-for-byte identical in behavior to the wrapped sink.  Models the
/// failure classes the salvage scan, snapshot generations, and the ENOSPC
/// degradation ladder exist for.
class FaultyJournalSink final : public JournalSink {
 public:
  explicit FaultyJournalSink(std::unique_ptr<JournalSink> inner,
                             StorageFaultPlan plan = {});

  /// Installs a corruption schedule and restarts the per-operation seed
  /// stream from plan.seed.
  void set_plan(StorageFaultPlan plan);
  const StorageFaultPlan& plan() const { return plan_; }

  const StorageFaultStats& stats() const { return stats_; }

  /// The wrapped sink (for direct inspection of the stored image).
  JournalSink& inner() { return *inner_; }
  const JournalSink& inner() const { return *inner_; }

  void append(std::span<const std::uint8_t> frame) override;
  void commit() override;
  void reset(std::vector<std::uint8_t> contents) override;
  std::vector<std::uint8_t> contents() const override;

 private:
  /// Decorrelated per-operation fault stream: op `i` always draws from the
  /// same substream no matter what the other operations did.
  Rng op_rng() const;

  std::unique_ptr<JournalSink> inner_;
  StorageFaultPlan plan_;
  mutable std::uint64_t ops_ = 0;  ///< contents() is const but consumes ops
  mutable StorageFaultStats stats_;
  std::vector<std::uint8_t> held_;  ///< reorder buffer (at most one frame)
  bool holding_ = false;
  std::uint64_t stored_bytes_ = 0;  ///< quota accounting for capacity_bytes
};

}  // namespace cosched

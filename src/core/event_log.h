// Structured per-job event logging.
//
// The paper validates its mechanism from simulator output logs: "the output
// logs show that all the paired jobs start at the same time with their own
// mate jobs no matter which one gets ready first" (§V-B).  This module is
// that log: every lifecycle transition of every job is recorded with its
// timestamp, and analysis helpers answer the §V-B question directly from
// the record rather than from in-memory scheduler state.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "util/error.h"
#include "util/types.h"
#include "workload/job.h"

namespace cosched {

enum class JobEventKind : std::uint8_t {
  kSubmit = 0,
  kReady = 1,        ///< scheduler selected the job and assigned nodes
  kStart = 2,
  kHold = 3,
  kHoldRelease = 4,  ///< forced release (deadlock breaker)
  kYield = 5,
  kFinish = 6,
  /// Paired job started while a peer was unreachable (status `unknown`) —
  /// the paper's fault-tolerance rule firing: start normally, don't wait.
  kUnsyncStart = 7,
  /// A hold lease reached its expiry without renewal (liveness layer).
  kLeaseExpire = 8,
  /// A side-effecting peer call carried a stale fencing token and was
  /// rejected — the double-start guard firing after a healed partition.
  kFenceReject = 9,
};

const char* to_string(JobEventKind k);

struct JobEvent {
  Time time = 0;
  std::string system;
  JobEventKind kind = JobEventKind::kSubmit;
  JobId job = kNoJob;
  GroupId group = kNoGroup;
  NodeCount nodes = 0;

  bool operator==(const JobEvent&) const = default;
};

/// Append-only event record shared by the domains of one simulation.
///
/// Storage is sharded: each recording domain appends to its own shard
/// (indexed by its engine SourceId), so domains executing on different
/// parallel-engine lanes never touch the same vector.  events() merges the
/// shards deterministically — stable by time, shard order breaking ties —
/// so the merged view is identical for every thread count (each shard's
/// internal order is its lane-serial order, which parallel execution
/// preserves).  Single-writer users keep the legacy API: record(event)
/// appends to shard 0.
class EventLog {
 public:
  void record(JobEvent event) { record(0, std::move(event)); }

  /// Appends to one shard.  The shard must exist (ensure_shard); growth is
  /// kept out of this call so concurrent writers never reallocate the
  /// shard table.
  void record(std::size_t shard, JobEvent event) {
    COSCHED_CHECK(shard < shards_.size());
    shards_[shard].push_back(std::move(event));
  }

  /// Grows the shard table to cover `shard`.  Call at attach time, before
  /// any parallel recording starts.
  void ensure_shard(std::size_t shard) {
    if (shard >= shards_.size()) shards_.resize(shard + 1);
  }
  std::size_t shard_count() const { return shards_.size(); }

  /// Deterministic merged view of all shards.
  std::vector<JobEvent> events() const;
  std::size_t size() const;
  bool empty() const { return size() == 0; }
  void clear() {
    for (auto& s : shards_) s.clear();
  }

  /// Events of one kind, in record order.
  std::vector<JobEvent> of_kind(JobEventKind kind) const;

  /// Writes one line per event:
  ///   <time> <system> <kind> job=<id> group=<g> nodes=<n>
  void write_text(std::ostream& os) const;

  /// Parses the write_text format.  Throws ParseError on malformed lines.
  static EventLog read_text(std::istream& is);

 private:
  std::vector<std::vector<JobEvent>> shards_ =
      std::vector<std::vector<JobEvent>>(1);
};

/// §V-B check, computed purely from the log: every group's members started,
/// and all start timestamps within a group are identical.
struct CoStartReport {
  std::size_t groups_total = 0;
  std::size_t groups_co_started = 0;
  std::size_t groups_incomplete = 0;  ///< some member never started
  Duration max_skew = 0;
  bool all_co_started() const {
    return groups_incomplete == 0 && groups_co_started == groups_total;
  }
};

/// Analyzes start events.  `expected_members` maps each group to how many
/// members it should have (pass {} to infer: groups seen in submit events).
CoStartReport verify_co_starts(const EventLog& log);

}  // namespace cosched

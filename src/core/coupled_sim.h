// Multi-domain coscheduling simulation — the repo's top-level API.
//
// CoupledSim wires N Cluster domains onto one event engine, connects every
// ordered pair of domains with a protocol peer (loopback + fault injection),
// loads each domain's trace, runs to completion, and extracts the paper's
// metrics plus pair-start consistency checks.
#pragma once

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/cluster.h"
#include "core/config.h"
#include "core/fault.h"
#include "core/journal.h"
#include "core/storage_fault.h"
#include "metrics/report.h"
#include "sim/engine.h"
#include "workload/trace.h"

namespace cosched {

/// Static description of one scheduling domain.
struct DomainSpec {
  std::string name;
  NodeCount capacity = 0;
  /// Priority policy name: "wfp" (production default) or "fcfs".
  std::string policy = "wfp";
  CoschedConfig cosched;
  SchedulerConfig sched;
  /// Optional request→charge model (e.g. PartitionAllocation::intrepid()).
  std::shared_ptr<const AllocationModel> alloc;
  /// Coupling group: protocol links are only built between domains sharing
  /// a group, and each group becomes one dependency cluster of the engine
  /// (so disjoint groups execute in parallel under set_parallel()).  The
  /// default — every domain in group 0 — reproduces the legacy all-to-all
  /// topology.
  int coupling_group = 0;
};

/// Group start synchronization outcome (the §V-B capability check).  Groups
/// span 2..N domains; "gang" refers to groups of three or more members
/// driven by the two-phase costart protocol.
struct GroupStartStats {
  std::size_t groups_total = 0;
  /// Groups in which every member started at the identical instant.
  std::size_t groups_started_together = 0;
  /// Groups with at least one member that never started.
  std::size_t groups_unstarted = 0;
  /// Largest start-time skew among fully started groups (0 = perfect).
  Duration max_start_skew = 0;
  /// Start-time skew of each fully started group (max start - min start).
  std::map<GroupId, Duration> skew_by_group;
};

/// Post-run consistency checks.  A violation means the *simulator* (not the
/// policy under test) broke an invariant — except waits_forever, which also
/// fires on genuine policy deadlocks (e.g. hold-hold without the release
/// enhancement), where it is the expected deadlock signal.
struct InvariantReport {
  std::size_t jobs_waiting_forever = 0;  ///< queued/holding after drain
  std::size_t node_accounting_leaks = 0; ///< pool busy/held != live jobs' sum
  std::size_t double_starts = 0;         ///< a job logged >1 start event
  /// Leases more than two heartbeat periods past expiry while the job still
  /// holds nodes (lease-expiry-respected; only populated with liveness on).
  std::size_t lease_expiry_violations = 0;
  /// Starts executed despite a stale fencing token (no-start-with-stale-
  /// fence; the Cluster-side tripwire must stay zero).
  std::size_t stale_fence_starts = 0;
  /// Groups where some member started through a gang commit while another
  /// member never started by a non-aborted drain (k-of-N atomicity: a
  /// committed gang must fully start).
  std::size_t gang_atomicity_violations = 0;

  // -- storage fault plane (informational, not violations) ----------------
  // Nonzero values mean the ENOSPC degradation ladder ran; whether that is a
  // problem depends on the scenario, so they never populate `violations`.
  std::size_t storage_enospc_events = 0;         ///< ENOSPC ladder entries
  std::size_t storage_emergency_compactions = 0; ///< successful rung-2 saves
  std::size_t storage_degraded_domains = 0;      ///< journals now memory-only

  std::vector<std::string> violations;   ///< human-readable details
  bool ok() const { return violations.empty(); }
};

struct SimResult {
  std::vector<SystemMetrics> systems;
  GroupStartStats groups;
  /// Gang costart counters aggregated over every domain (all zero unless
  /// CoschedConfig::Gang::two_phase is enabled somewhere).
  std::uint64_t gangs_prepared = 0;
  std::uint64_t gangs_committed = 0;
  std::uint64_t gangs_aborted = 0;
  std::uint64_t gangs_resolved_by_victim = 0;
  /// All jobs finished.
  bool completed = false;
  /// Simulation drained (or hit max_time) with unfinished jobs — for
  /// hold-hold without the release enhancement this is the deadlock signal.
  bool deadlocked = false;
  Time end_time = 0;
  InvariantReport invariants;
};

class CoupledSim {
 public:
  /// `specs[i]` hosts `traces[i]`.  Traces and specs must align.
  CoupledSim(std::vector<DomainSpec> specs, const std::vector<Trace>& traces);

  /// Runs to completion.  `max_time` (0 = unlimited) aborts runaway
  /// simulations and reports them as deadlocked.
  SimResult run(Time max_time = 0);

  /// Routes run() through the engine's dependency-clustered parallel
  /// executor on `threads` workers (0 = serial, the default).  Results are
  /// byte-identical for every thread count; they also match the serial path
  /// for completed runs.  (An aborted run differs only in where it stops:
  /// the serial loop executes one event past max_time before aborting, the
  /// parallel path drains exactly the events at or before max_time.)
  void set_parallel(unsigned threads) { parallel_threads_ = threads; }
  unsigned parallel_threads() const { return parallel_threads_; }

  std::size_t size() const { return clusters_.size(); }
  Cluster& cluster(std::size_t i) { return *clusters_.at(i); }
  Engine& engine() { return engine_; }

  /// The fault injector on the peer link domain `from` uses to reach
  /// domain `to` (from != to; the domains must share a coupling group).
  /// Lets tests take a remote "down".
  FaultInjectingPeer& link(std::size_t from, std::size_t to);

  /// Installs a chaos schedule on one directed link.  Call before run().
  void set_fault_plan(std::size_t from, std::size_t to, FaultPlan plan);

  /// Installs the same plan on every inter-domain link, reseeding each link
  /// from plan.seed so the links draw independent fault streams.
  void set_fault_plan_all(const FaultPlan& plan);

  /// Enables the liveness layer (heartbeats, failure detector, leased
  /// holds) on every domain with the given settings.  Call before run().
  void set_liveness_all(const CoschedConfig::Liveness& liveness);

  /// Enables the two-phase gang costart on every domain with the given
  /// settings.  Call before run().
  void set_gang_all(const CoschedConfig::Gang& gang);

  /// Arms a periodic wait-for-graph scan (every `scan_period`) that
  /// resolves multi-domain hold deadlock cycles: the deterministic victim —
  /// lowest-priority gang in the cycle, ties toward the lowest job id — is
  /// ordered to yield over the mesh link of the domain waiting on it, so
  /// the order crosses the fault plane and the fence gate like any other
  /// side-effecting call.  Serial driver: call before run() and run without
  /// set_parallel().  Idempotent.
  void enable_gang_resolution(Duration scan_period);

  /// Symmetric partition: domains `a` and `b` cannot exchange any message
  /// during [start, end).  Layered on top of any installed fault plan.
  void add_partition(std::size_t a, std::size_t b, Time start, Time end);

  /// One-way partition: messages *from* `from` *to* `to` are lost during
  /// [start, end) while the reverse direction keeps working — `from`
  /// suspects `to`, but `to` still trusts `from`.
  void add_one_way_partition(std::size_t from, std::size_t to, Time start,
                             Time end);

  /// Asymmetric reply loss: during [start, end), `to` receives and executes
  /// the calls `from` sends, but every reply is lost on the way back (the
  /// nastiest shape: side effects happen, the caller sees only failure).
  void add_reply_partition(std::size_t from, std::size_t to, Time start,
                           Time end);

  /// Crash domain `domain` at time `at`: every link to or from it goes down
  /// and (when `kill_running`) its running and holding jobs die.  At
  /// `restart_at` (0 = never) the links come back and all domains re-run a
  /// scheduling iteration.  Call before run().
  void schedule_domain_crash(std::size_t domain, Time at, Time restart_at,
                             bool kill_running = true);

  /// Aggregate fault-injection accounting over all links.
  FaultStats fault_stats() const;

  /// Enables per-job lifecycle logging into the returned shared log
  /// (idempotent).  Call before run().
  EventLog& enable_event_log();

  /// Aggregate coordination-protocol traffic over all inter-domain links.
  struct ProtocolStats {
    std::uint64_t calls = 0;
    std::uint64_t request_bytes = 0;
    std::uint64_t response_bytes = 0;
  };
  ProtocolStats protocol_stats() const;

  // -- crash recovery ----------------------------------------------------

  /// Attaches one in-memory write-ahead journal per domain (idempotent).
  /// Call before run().  `compact_every` > 0 also enables periodic
  /// compaction (see Cluster::set_journal).
  void enable_journaling(std::uint64_t compact_every = 0);
  /// Like enable_journaling(), but each domain's in-memory sink is wrapped
  /// in a FaultyJournalSink injecting storage faults per `plan` (the same
  /// plan, but domain `i` draws from `plan.seed + i` so the domains corrupt
  /// independently).  Idempotent with enable_journaling(): whichever runs
  /// first wins.
  void enable_faulty_journaling(const StorageFaultPlan& plan,
                                std::uint64_t compact_every = 0);
  bool journaling_enabled() const { return !journals_.empty(); }
  Journal& journal(std::size_t i) { return *journals_.at(i); }
  /// Domain `i`'s fault injector (nullptr unless enable_faulty_journaling).
  FaultyJournalSink* faulty_sink(std::size_t i) { return faulty_sinks_.at(i); }

  /// Mutates a journal's raw durable image between crash and recovery (the
  /// corrupt-anywhere harness hook).
  using JournalCorruptor = std::function<void(std::vector<std::uint8_t>&)>;

  /// Schedules an in-process crash + journal recovery of `domain`, fired by
  /// the first commit whose durable sequence number reaches `at_seq`.  The
  /// crash cancels the domain's tracked timers, wipes its state, and
  /// rebuilds it from the journal — peers observe no outage (the recovery
  /// itself is instantaneous in simulated time).  Requires
  /// enable_journaling(); at most one trigger per domain at a time.
  /// `corrupt`, if given, runs once on the durable image after the crash
  /// and before recovery — simulated at-rest corruption.
  void schedule_crash_recovery(std::size_t domain, std::uint64_t at_seq,
                               JournalCorruptor corrupt = nullptr);

  /// Stats of the most recent journal recovery of domain `i`
  /// (nullopt = that domain never recovered).
  const std::optional<Cluster::RecoveryStats>& last_recovery(
      std::size_t i) const {
    return recoveries_.at(i);
  }

  /// Serializes the simulation clock plus every domain's state.  Call only
  /// between events (before run(), or from a paused engine).
  void snapshot(WireWriter& w) const;

  /// Restores a snapshot() image into a freshly constructed CoupledSim
  /// built with the same specs and traces: wipes each domain, applies its
  /// snapshot, advances the engine to the snapshot time (pre-snapshot trace
  /// submits re-fire as guarded no-ops), and re-arms all timers.
  void restore(WireReader& r);

  /// Invariants computed when run() aborts by exception (nullopt = the last
  /// run() returned normally).
  const std::optional<InvariantReport>& abort_invariants() const {
    return abort_invariants_;
  }

 private:
  void check_invariants(SimResult& result, bool aborted) const;
  void crash_and_recover(std::size_t domain);
  void gang_resolution_body();

  Engine engine_;
  std::vector<std::unique_ptr<Cluster>> clusters_;
  /// links_[from][to] (nullptr on the diagonal).
  std::vector<std::vector<std::unique_ptr<FaultInjectingPeer>>> links_;
  std::unique_ptr<EventLog> event_log_;
  std::vector<std::unique_ptr<Journal>> journals_;  ///< empty unless enabled
  /// Per-domain fault injectors (nullptr entries unless faulty journaling);
  /// the sinks are owned by journals_, these are observation pointers.
  std::vector<FaultyJournalSink*> faulty_sinks_;
  /// Per-domain at-rest corruptors armed by schedule_crash_recovery
  /// (consumed by the first crash of that domain).
  std::vector<JournalCorruptor> corruptors_;
  std::vector<std::optional<Cluster::RecoveryStats>> recoveries_;
  std::optional<InvariantReport> abort_invariants_;
  unsigned parallel_threads_ = 0;  ///< 0 = serial run loop
  Duration gang_scan_period_ = 0;  ///< 0 = deadlock resolution disabled
};

/// Order-independent FNV-1a fingerprint over every job's observable outcome
/// (id, start, end, yields, forced releases).  Byte-identical fingerprints
/// mean byte-identical scheduling results — the determinism gate the
/// parallel engine is held to across thread counts.
std::uint64_t determinism_fingerprint(CoupledSim& sim);

/// Convenience for the common two-domain experiments: builds DomainSpecs for
/// a compute machine and an analysis machine with the given scheme combo.
std::vector<DomainSpec> make_coupled_specs(
    const std::string& name_a, NodeCount capacity_a, const std::string& name_b,
    NodeCount capacity_b, SchemeCombo combo, bool cosched_enabled = true,
    Duration hold_release_period = 20 * kMinute);

}  // namespace cosched

#include "core/dedup_journal.h"

#include <cstdint>

#include "proto/wire.h"

namespace cosched {

void bind_dedup_journal(RpcDedup& dedup, Journal& journal) {
  dedup.set_persist([&journal](std::uint64_t inc, std::uint64_t rid,
                               MsgType op, bool verdict) {
    WireWriter w;
    w.put_u64(inc);
    w.put_u64(rid);
    w.put_u8(static_cast<std::uint8_t>(op));
    w.put_bool(verdict);
    journal.append(JournalRecordKind::kDedup, w.bytes());
    // Commit here, not at the entry-point boundary: the dispatcher builds
    // the reply as soon as record() returns, so this is the last point
    // before the verdict becomes externally visible.
    journal.commit();
  });
}

void apply_dedup_record(RpcDedup& dedup, const JournalRecord& rec) {
  WireReader r(rec.payload);
  const std::uint64_t inc = r.get_u64();
  const std::uint64_t rid = r.get_u64();
  const MsgType op = static_cast<MsgType>(r.get_u8());
  dedup.insert_restored(inc, rid, op, r.get_bool());
}

}  // namespace cosched

#include "core/storage_fault.h"

#include <utility>

namespace cosched {

FaultyJournalSink::FaultyJournalSink(std::unique_ptr<JournalSink> inner,
                                     StorageFaultPlan plan)
    : inner_(std::move(inner)), plan_(plan) {
  COSCHED_CHECK(inner_ != nullptr);
}

void FaultyJournalSink::set_plan(StorageFaultPlan plan) {
  plan_ = plan;
  ops_ = 0;
}

Rng FaultyJournalSink::op_rng() const {
  const std::uint64_t op = ops_++;
  // splitmix over (seed, op ordinal): each operation owns an independent
  // substream, so op i's outcome never depends on how many draws op i-1
  // consumed.
  SplitMix64 sm(plan_.seed ^ (op * 0x9e3779b97f4a7c15ULL + 0x7f4a7c15ULL));
  return Rng(sm.next());
}

void FaultyJournalSink::append(std::span<const std::uint8_t> frame) {
  ++stats_.appends;
  Rng rng = op_rng();
  std::vector<std::uint8_t> bytes(frame.begin(), frame.end());

  if (plan_.lost_write_probability > 0.0 &&
      rng.chance(plan_.lost_write_probability)) {
    ++stats_.lost_writes;
    stats_.bytes_dropped += bytes.size();
    return;  // the page never left the cache
  }
  if (!bytes.empty() && plan_.torn_write_probability > 0.0 &&
      rng.chance(plan_.torn_write_probability)) {
    const auto keep = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(bytes.size()) - 1));
    ++stats_.torn_writes;
    stats_.bytes_dropped += bytes.size() - keep;
    bytes.resize(keep);
  }
  if (!bytes.empty() && plan_.bit_flip_probability > 0.0 &&
      rng.chance(plan_.bit_flip_probability)) {
    const auto bit = static_cast<std::uint64_t>(rng.uniform_int(
        0, static_cast<std::int64_t>(bytes.size()) * 8 - 1));
    bytes[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
    ++stats_.bits_flipped;
  }
  if (plan_.capacity_bytes > 0 &&
      stored_bytes_ + bytes.size() > plan_.capacity_bytes) {
    ++stats_.enospc_errors;
    throw JournalNoSpace("storage fault: journal capacity exhausted");
  }
  if (!holding_ && plan_.reorder_probability > 0.0 &&
      rng.chance(plan_.reorder_probability)) {
    // Pre-fsync reordering: this frame reaches the medium after whatever is
    // appended next (or at the commit barrier, whichever comes first).
    held_ = std::move(bytes);
    holding_ = true;
    ++stats_.reorders;
    return;
  }
  stored_bytes_ += bytes.size();
  stats_.bytes_appended += bytes.size();
  inner_->append(bytes);
  if (holding_) {
    stored_bytes_ += held_.size();
    stats_.bytes_appended += held_.size();
    inner_->append(held_);
    held_.clear();
    holding_ = false;
  }
}

void FaultyJournalSink::commit() {
  ++stats_.commits;
  if (holding_) {
    // The fsync barrier flushes the held write — reordering never crosses a
    // completed commit.
    stored_bytes_ += held_.size();
    stats_.bytes_appended += held_.size();
    inner_->append(held_);
    held_.clear();
    holding_ = false;
  }
  inner_->commit();
}

void FaultyJournalSink::reset(std::vector<std::uint8_t> contents) {
  ++stats_.resets;
  if (plan_.capacity_bytes > 0 && contents.size() > plan_.capacity_bytes) {
    ++stats_.enospc_errors;
    throw JournalNoSpace("storage fault: compacted image exceeds capacity");
  }
  held_.clear();
  holding_ = false;
  stored_bytes_ = contents.size();
  inner_->reset(std::move(contents));
}

std::vector<std::uint8_t> FaultyJournalSink::contents() const {
  ++stats_.reads;
  Rng rng = op_rng();
  if (plan_.read_error_probability > 0.0 &&
      rng.chance(plan_.read_error_probability)) {
    ++stats_.read_errors;
    throw JournalIoError("storage fault: transient read error");
  }
  return inner_->contents();
}

}  // namespace cosched

#include "core/coupled_sim.h"

#include <algorithm>
#include <map>
#include <utility>

#include "core/deadlock.h"
#include "util/error.h"
#include "util/log.h"

namespace cosched {

CoupledSim::CoupledSim(std::vector<DomainSpec> specs,
                       const std::vector<Trace>& traces) {
  COSCHED_CHECK_MSG(specs.size() == traces.size(),
                    "specs/traces arity mismatch");
  COSCHED_CHECK(!specs.empty());

  clusters_.reserve(specs.size());
  for (const DomainSpec& spec : specs) {
    clusters_.push_back(std::make_unique<Cluster>(
        engine_, spec.name, spec.capacity, make_policy(spec.policy),
        spec.cosched, spec.sched, spec.alloc));
  }

  // Protocol links between domains sharing a coupling group: every call
  // crosses the full encode/dispatch/decode path through a loopback peer,
  // wrapped in a fault injector.  With the default (all domains in group 0)
  // this is the legacy all-to-all topology; distinct groups stay unlinked
  // and become independent dependency clusters of the engine.
  links_.resize(specs.size());
  for (std::size_t from = 0; from < specs.size(); ++from) {
    links_[from].resize(specs.size());
    for (std::size_t to = 0; to < specs.size(); ++to) {
      if (from == to) continue;
      if (specs[from].coupling_group != specs[to].coupling_group) continue;
      links_[from][to] = std::make_unique<FaultInjectingPeer>(
          std::make_unique<LoopbackPeer>(*clusters_[to]), &engine_);
      // After a transport fault the *calling* domain re-examines its queue
      // once the plan's backoff elapses (only plans with retry_backoff > 0
      // ever schedule this).
      links_[from][to]->set_retry_listener(
          [cluster = clusters_[from].get()] { cluster->request_iteration(); });
      clusters_[from]->add_peer(*links_[from][to]);
      // Linked domains exchange synchronous peer calls, so they must share
      // an execution lane.
      engine_.add_dependency(clusters_[from]->source(),
                             clusters_[to]->source());
    }
  }
  engine_.build_clusters();

  for (std::size_t i = 0; i < traces.size(); ++i)
    clusters_[i]->load_trace(traces[i]);
}

FaultInjectingPeer& CoupledSim::link(std::size_t from, std::size_t to) {
  COSCHED_CHECK(from != to);
  COSCHED_CHECK_MSG(links_.at(from).at(to) != nullptr,
                    "domains " << from << " and " << to
                               << " are not in the same coupling group");
  return *links_[from][to];
}

void CoupledSim::set_fault_plan(std::size_t from, std::size_t to,
                                FaultPlan plan) {
  link(from, to).set_plan(std::move(plan));
}

void CoupledSim::set_fault_plan_all(const FaultPlan& plan) {
  // Derive one independent substream per directed link; mixing in the link
  // coordinates keeps the streams decorrelated while remaining a pure
  // function of plan.seed.
  SplitMix64 mix(plan.seed);
  for (std::size_t from = 0; from < links_.size(); ++from) {
    for (std::size_t to = 0; to < links_[from].size(); ++to) {
      if (from == to) continue;
      FaultPlan p = plan;
      p.seed = mix.next() ^ (static_cast<std::uint64_t>(from) << 32 | to);
      if (links_[from][to] != nullptr) links_[from][to]->set_plan(std::move(p));
    }
  }
}

void CoupledSim::set_liveness_all(const CoschedConfig::Liveness& liveness) {
  for (auto& c : clusters_) {
    CoschedConfig cfg = c->config();
    cfg.liveness = liveness;
    c->set_config(cfg);
  }
}

void CoupledSim::set_gang_all(const CoschedConfig::Gang& gang) {
  for (auto& c : clusters_) {
    CoschedConfig cfg = c->config();
    cfg.gang = gang;
    c->set_config(cfg);
  }
}

void CoupledSim::enable_gang_resolution(Duration scan_period) {
  COSCHED_CHECK(scan_period > 0);
  if (gang_scan_period_ > 0) return;
  gang_scan_period_ = scan_period;
  engine_.schedule_at(engine_.now() + scan_period, EventPriority::kMessage,
                      [this] { gang_resolution_body(); });
}

void CoupledSim::gang_resolution_body() {
  // Stop rescheduling once every job finished — otherwise the scan would
  // keep the event queue alive forever and the drain never happens.
  bool active = false;
  for (const auto& c : clusters_) {
    const Scheduler& s = c->scheduler();
    if (s.queue_length() > 0 || s.holding_count() > 0 || s.running_count() > 0)
      active = true;
  }
  if (active) {
    std::vector<const Cluster*> view;
    view.reserve(clusters_.size());
    for (const auto& c : clusters_) view.push_back(c.get());
    const WaitCycle cycle = find_hold_wait_cycle(view);
    if (!cycle.empty()) {
      const WaitEdge victim = choose_victim(cycle, [&](const WaitEdge& e) {
        const RuntimeJob* j = clusters_[e.from]->scheduler().find(e.holding_job);
        return j != nullptr ? j->spec.submit : kNoTime;
      });
      // The domain blocked *on* the victim issues the yield order over its
      // own mesh link, so the command crosses the fault plane and the fence
      // gate like any other side-effecting call.  A lost order is simply
      // retried at the next scan (the cycle persists until acted on).
      std::size_t waiter = victim.to;
      for (const WaitEdge& e : cycle.edges)
        if (e.to == victim.from) waiter = e.from;
      const RuntimeJob* vj =
          clusters_[victim.from]->scheduler().find(victim.holding_job);
      if (vj != nullptr && waiter != victim.from &&
          links_[waiter][victim.from] != nullptr) {
        COSCHED_LOG(kInfo) << "gang resolution: cycle of length "
                           << cycle.length() << ", victim job "
                           << victim.holding_job << " on "
                           << clusters_[victim.from]->name();
        (void)links_[waiter][victim.from]->gang_victim(victim.holding_job,
                                                       vj->spec.group);
      }
    }
    engine_.schedule_at(engine_.now() + gang_scan_period_,
                        EventPriority::kMessage,
                        [this] { gang_resolution_body(); });
  }
}

void CoupledSim::add_partition(std::size_t a, std::size_t b, Time start,
                               Time end) {
  link(a, b).add_outage(start, end);
  link(b, a).add_outage(start, end);
}

void CoupledSim::add_one_way_partition(std::size_t from, std::size_t to,
                                       Time start, Time end) {
  link(from, to).add_outage(start, end);
}

void CoupledSim::add_reply_partition(std::size_t from, std::size_t to,
                                     Time start, Time end) {
  link(from, to).add_reply_outage(start, end);
}

void CoupledSim::schedule_domain_crash(std::size_t domain, Time at,
                                       Time restart_at, bool kill_running) {
  COSCHED_CHECK(domain < clusters_.size());
  COSCHED_CHECK(restart_at == 0 || restart_at > at);
  engine_.schedule_at(at, EventPriority::kMessage, [this, domain,
                                                    kill_running] {
    COSCHED_LOG(kInfo) << clusters_[domain]->name() << ": domain crash at t="
                       << engine_.now();
    // A crashed machine neither answers its peers nor reaches them.
    for (std::size_t other = 0; other < clusters_.size(); ++other) {
      if (other == domain || links_[domain][other] == nullptr) continue;
      links_[domain][other]->set_crashed(true);
      links_[other][domain]->set_crashed(true);
    }
    if (kill_running) {
      std::vector<JobId> casualties;
      clusters_[domain]->scheduler().for_each_job(
          [&](JobId id, const RuntimeJob& job) {
            if (job.state == JobState::kRunning ||
                job.state == JobState::kHolding)
              casualties.push_back(id);
          });
      for (JobId id : casualties) clusters_[domain]->kill_job(id);
    }
  });
  if (restart_at > 0) {
    engine_.schedule_at(restart_at, EventPriority::kMessage, [this, domain] {
      COSCHED_LOG(kInfo) << clusters_[domain]->name()
                         << ": domain restart at t=" << engine_.now();
      for (std::size_t other = 0; other < clusters_.size(); ++other) {
        if (other == domain || links_[domain][other] == nullptr) continue;
        links_[domain][other]->set_crashed(false);
        links_[other][domain]->set_crashed(false);
      }
      // Every domain re-evaluates: survivors may have jobs whose mates just
      // came back, and the restarted machine rebuilds its own schedule.
      for (auto& c : clusters_) c->request_iteration();
    });
  }
}

FaultStats CoupledSim::fault_stats() const {
  FaultStats total;
  for (const auto& row : links_)
    for (const auto& l : row)
      if (l) total += l->stats();
  return total;
}

CoupledSim::ProtocolStats CoupledSim::protocol_stats() const {
  ProtocolStats s;
  for (const auto& row : links_) {
    for (const auto& link : row) {
      if (!link) continue;
      const auto* lb = dynamic_cast<const LoopbackPeer*>(&link->inner());
      if (lb == nullptr) continue;
      s.calls += lb->calls();
      s.request_bytes += lb->request_bytes();
      s.response_bytes += lb->response_bytes();
    }
  }
  return s;
}

EventLog& CoupledSim::enable_event_log() {
  if (!event_log_) {
    event_log_ = std::make_unique<EventLog>();
    for (auto& c : clusters_) c->set_event_log(event_log_.get());
  }
  return *event_log_;
}

// -- crash recovery ----------------------------------------------------------

void CoupledSim::enable_journaling(std::uint64_t compact_every) {
  if (!journals_.empty()) return;
  recoveries_.resize(clusters_.size());
  corruptors_.resize(clusters_.size());
  faulty_sinks_.resize(clusters_.size(), nullptr);
  journals_.reserve(clusters_.size());
  for (auto& c : clusters_) {
    journals_.push_back(
        std::make_unique<Journal>(std::make_unique<MemoryJournalSink>()));
    c->set_journal(journals_.back().get(), compact_every);
  }
}

void CoupledSim::enable_faulty_journaling(const StorageFaultPlan& plan,
                                          std::uint64_t compact_every) {
  if (!journals_.empty()) return;
  recoveries_.resize(clusters_.size());
  corruptors_.resize(clusters_.size());
  faulty_sinks_.resize(clusters_.size(), nullptr);
  journals_.reserve(clusters_.size());
  for (std::size_t i = 0; i < clusters_.size(); ++i) {
    StorageFaultPlan domain_plan = plan;
    domain_plan.seed = plan.seed + i;  // independent corruption per domain
    auto sink = std::make_unique<FaultyJournalSink>(
        std::make_unique<MemoryJournalSink>(), domain_plan);
    faulty_sinks_[i] = sink.get();
    journals_.push_back(std::make_unique<Journal>(std::move(sink)));
    clusters_[i]->set_journal(journals_.back().get(), compact_every);
  }
}

void CoupledSim::schedule_crash_recovery(std::size_t domain,
                                         std::uint64_t at_seq,
                                         JournalCorruptor corrupt) {
  COSCHED_CHECK(domain < clusters_.size());
  COSCHED_CHECK_MSG(!journals_.empty(),
                    "schedule_crash_recovery needs enable_journaling()");
  corruptors_[domain] = std::move(corrupt);
  journals_[domain]->set_on_commit([this, domain, at_seq](std::uint64_t seq) {
    if (seq < at_seq) return;
    // Disarm first: the crash event itself commits records while recovering.
    journals_[domain]->set_on_commit(nullptr);
    // kMessage priority: the crash lands right after the committing event
    // body, before any same-time scheduling activity.  Tagged with the
    // crashing domain's source: the hook fires inside that domain's lane,
    // and the recovery only touches that domain, so the event stays
    // lane-local under parallel execution.
    engine_.schedule_from(clusters_[domain]->source(), engine_.now(),
                          EventPriority::kMessage,
                          [this, domain] { crash_and_recover(domain); });
  });
}

void CoupledSim::crash_and_recover(std::size_t domain) {
  Journal& journal = *journals_[domain];
  COSCHED_LOG(kInfo) << clusters_[domain]->name()
                     << ": process crash at t=" << engine_.now()
                     << " (durable seq " << journal.last_committed_seq()
                     << ")";
  // Transient read errors (JournalIoError) are retryable by definition: each
  // attempt draws a fresh per-operation fault seed.  Hard-cap the retries so
  // a plan with read_error_probability = 1.0 fails loudly instead of
  // spinning.
  constexpr int kMaxReadRetries = 8;
  int read_retries = 0;
  const auto with_retries = [&](auto&& fn) {
    for (;;) {
      try {
        return fn();
      } catch (const JournalIoError&) {
        COSCHED_CHECK_MSG(++read_retries <= kMaxReadRetries,
                          clusters_[domain]->name()
                              << ": journal unreadable after "
                              << kMaxReadRetries << " retries");
      }
    }
  };

  // The crash loses everything appended but not committed; reopen re-syncs
  // the journal's counters to its durable image.
  with_retries([&] { journal.reopen(); });

  if (corruptors_[domain]) {
    // At-rest corruption lands after the crash, before recovery reads the
    // image back (the corrupt-anywhere harness hook; one shot per arm).
    JournalCorruptor corrupt = std::move(corruptors_[domain]);
    corruptors_[domain] = nullptr;
    std::vector<std::uint8_t> image =
        with_retries([&] { return journal.sink().contents(); });
    corrupt(image);
    journal.sink().reset(std::move(image));
    with_retries([&] { journal.reopen(); });
  }

  recoveries_[domain] = with_retries(
      [&] { return clusters_[domain]->recover_from_journal(journal); });
  recoveries_[domain]->read_retries = read_retries;
  COSCHED_LOG(kInfo) << clusters_[domain]->name() << ": recovered "
                     << recoveries_[domain]->records_replayed
                     << " records, incarnation "
                     << recoveries_[domain]->incarnation;
}

void CoupledSim::snapshot(WireWriter& w) const {
  w.put_i64(engine_.now());
  for (const auto& c : clusters_) c->write_snapshot(w);
}

void CoupledSim::restore(WireReader& r) {
  const Time t = r.get_i64();
  // Apply state first so the trace-submit events re-firing below see their
  // jobs as already known and no-op.
  for (auto& c : clusters_) c->restore_snapshot(r);
  engine_.run_until(t);
  for (auto& c : clusters_) c->rearm_after_restore();
}

SimResult CoupledSim::run(Time max_time) {
  abort_invariants_.reset();
  bool aborted = false;
  try {
    if (parallel_threads_ > 0) {
      // Derive the conservative-window lookahead from the fault plane: no
      // cross-cluster message can arrive sooner than the minimum configured
      // network latency, so windows of that width are safe.  Only kicks in
      // when the caller left the engine at its unbounded default.
      if (engine_.lookahead() == kNoTime) {
        Duration min_latency = 0;
        for (const auto& row : links_) {
          for (const auto& l : row) {
            if (!l || l->plan().latency_base <= 0) continue;
            if (min_latency == 0 || l->plan().latency_base < min_latency)
              min_latency = l->plan().latency_base;
          }
        }
        if (min_latency > 0) engine_.set_lookahead(min_latency);
      }
      engine_.run_parallel(parallel_threads_,
                           max_time > 0 ? max_time : Engine::kTimeMax);
      if (max_time > 0 && engine_.pending() > 0) {
        COSCHED_LOG(kWarn) << "simulation aborted at t=" << engine_.now()
                           << " (max_time exceeded, " << engine_.pending()
                           << " events still pending)";
        aborted = true;
      }
    } else {
      while (engine_.step()) {
        if (max_time > 0 && engine_.now() > max_time) {
          COSCHED_LOG(kWarn) << "simulation aborted at t=" << engine_.now()
                             << " (max_time exceeded)";
          aborted = true;
          break;
        }
      }
    }
  } catch (...) {
    // Even an exceptional exit reports invariants: a half-completed run
    // that leaked nodes or double-started a pair is a second bug worth
    // surfacing next to the thrown one.
    SimResult partial;
    partial.end_time = engine_.now();
    check_invariants(partial, /*aborted=*/true);
    abort_invariants_ = partial.invariants;
    throw;
  }

  SimResult result;
  result.end_time = engine_.now();

  bool all_finished = true;
  std::map<GroupId, std::vector<Time>> group_starts;
  for (const auto& cluster : clusters_) {
    SystemMetrics m = collect_metrics(cluster->scheduler(), result.end_time,
                                      cluster->name());
    m.unknown_status_decisions =
        static_cast<long long>(cluster->unknown_status_decisions());
    m.unsync_starts = static_cast<long long>(cluster->unsync_starts());
    m.degraded_forced_releases =
        static_cast<long long>(cluster->degraded_forced_releases());
    result.systems.push_back(std::move(m));
    cluster->scheduler().for_each_job([&](JobId id, const RuntimeJob& job) {
      (void)id;
      if (job.state != JobState::kFinished) all_finished = false;
      if (job.spec.is_paired())
        group_starts[job.spec.group].push_back(job.start);
    });
  }
  result.completed = all_finished;
  result.deadlocked = !all_finished;
  for (const auto& cluster : clusters_) {
    result.gangs_prepared += cluster->gangs_prepared();
    result.gangs_committed += cluster->gangs_committed();
    result.gangs_aborted += cluster->gangs_aborted();
    result.gangs_resolved_by_victim += cluster->gangs_victimized();
  }
  check_invariants(result, aborted);

  for (const auto& [group, starts] : group_starts) {
    ++result.groups.groups_total;
    if (std::any_of(starts.begin(), starts.end(),
                    [](Time t) { return t == kNoTime; })) {
      ++result.groups.groups_unstarted;
      continue;
    }
    const auto [lo, hi] = std::minmax_element(starts.begin(), starts.end());
    const Duration skew = *hi - *lo;
    result.groups.skew_by_group[group] = skew;
    result.groups.max_start_skew = std::max(result.groups.max_start_skew, skew);
    if (skew == 0) ++result.groups.groups_started_together;
  }
  return result;
}

void CoupledSim::check_invariants(SimResult& result, bool aborted) const {
  auto violate = [&result](std::string msg) {
    result.invariants.violations.push_back(std::move(msg));
  };

  for (const auto& cluster : clusters_) {
    // Node accounting: the pool's busy/held totals must equal the sums over
    // live jobs — a mismatch means a kill/release/finish path leaked nodes.
    NodeCount busy_sum = 0, held_sum = 0;
    cluster->scheduler().for_each_job([&](JobId id, const RuntimeJob& job) {
      if (job.state == JobState::kRunning) busy_sum += job.allocated;
      if (job.state == JobState::kHolding) held_sum += job.allocated;
      // Waits-forever: the event queue drained on its own, yet this job is
      // still waiting.  (On paired schemes without the release enhancement
      // this is the hold-hold deadlock the paper describes.)
      if (!aborted && (job.state == JobState::kQueued ||
                       job.state == JobState::kHolding)) {
        ++result.invariants.jobs_waiting_forever;
        violate("job " + std::to_string(id) + " on " + cluster->name() +
                " waits forever (state=" +
                (job.state == JobState::kQueued ? "queued" : "holding") + ")");
      }
    });
    const auto& pool = cluster->scheduler().pool();
    if (pool.busy() != busy_sum || pool.held() != held_sum) {
      ++result.invariants.node_accounting_leaks;
      violate(cluster->name() + " node leak: pool busy/held " +
              std::to_string(pool.busy()) + "/" + std::to_string(pool.held()) +
              " vs job sums " + std::to_string(busy_sum) + "/" +
              std::to_string(held_sum));
    }

    // Liveness invariants (both zero unless the liveness layer is on).
    const std::uint64_t overdue =
        cluster->lease_expiry_violations(engine_.now());
    if (overdue > 0) {
      result.invariants.lease_expiry_violations +=
          static_cast<std::size_t>(overdue);
      violate(cluster->name() + ": " + std::to_string(overdue) +
              " lease(s) held past expiry + grace");
    }
    if (cluster->stale_fence_starts() > 0) {
      result.invariants.stale_fence_starts +=
          static_cast<std::size_t>(cluster->stale_fence_starts());
      violate(cluster->name() + ": " +
              std::to_string(cluster->stale_fence_starts()) +
              " start(s) executed under a stale fencing token");
    }

    // Storage fault plane alarms — surfaced, never counted as violations
    // (see InvariantReport).
    result.invariants.storage_enospc_events +=
        static_cast<std::size_t>(cluster->storage_enospc_events());
    result.invariants.storage_emergency_compactions +=
        static_cast<std::size_t>(cluster->storage_emergency_compactions());
    if (cluster->journal_degraded())
      ++result.invariants.storage_degraded_domains;
  }

  // k-of-N gang atomicity: once any member of a group starts through a gang
  // commit, every member must eventually start.  Checked only at a
  // non-aborted drain — an aborted run may legitimately stop mid-gang, and
  // a member whose commit was lost re-enters the queue once its prepare
  // lease expires, so by drain time it either started or the gang leaked.
  if (!aborted) {
    std::map<GroupId, std::pair<bool, bool>> gangs;  // {committed, unstarted}
    for (const auto& cluster : clusters_) {
      const auto& committed = cluster->gang_started_jobs();
      cluster->scheduler().for_each_job([&](JobId id, const RuntimeJob& job) {
        if (!job.spec.is_paired()) return;
        auto& flags = gangs[job.spec.group];
        if (committed.count(id) > 0) flags.first = true;
        if (job.start == kNoTime) flags.second = true;
      });
    }
    for (const auto& [group, flags] : gangs) {
      if (flags.first && flags.second) {
        ++result.invariants.gang_atomicity_violations;
        violate("group " + std::to_string(group) +
                " committed a gang start but left a member unstarted");
      }
    }
  }

  // Double starts are only observable from the lifecycle log.
  if (event_log_) {
    std::map<JobId, std::size_t> starts;
    for (const JobEvent& e : event_log_->events())
      if (e.kind == JobEventKind::kStart) ++starts[e.job];
    for (const auto& [job, n] : starts) {
      if (n > 1) {
        ++result.invariants.double_starts;
        violate("job " + std::to_string(job) + " started " +
                std::to_string(n) + " times");
      }
    }
  }
}

std::uint64_t determinism_fingerprint(CoupledSim& sim) {
  struct Rec {
    JobId id;
    Time start, end;
    int yields, releases;
  };
  std::vector<Rec> recs;
  for (std::size_t d = 0; d < sim.size(); ++d) {
    sim.cluster(d).scheduler().for_each_job([&](JobId id, const RuntimeJob& j) {
      recs.push_back(Rec{id, j.start, j.end, j.yield_count, j.forced_releases});
    });
  }
  std::sort(recs.begin(), recs.end(),
            [](const Rec& a, const Rec& b) { return a.id < b.id; });
  auto fnv = [](std::uint64_t h, std::uint64_t v) {
    h ^= v;
    h *= 1099511628211ULL;
    return h;
  };
  std::uint64_t h = 1469598103934665603ULL;
  for (const Rec& r : recs) {
    h = fnv(h, static_cast<std::uint64_t>(r.id));
    h = fnv(h, static_cast<std::uint64_t>(r.start));
    h = fnv(h, static_cast<std::uint64_t>(r.end));
    h = fnv(h, static_cast<std::uint64_t>(r.yields));
    h = fnv(h, static_cast<std::uint64_t>(r.releases));
  }
  return h;
}

std::vector<DomainSpec> make_coupled_specs(const std::string& name_a,
                                           NodeCount capacity_a,
                                           const std::string& name_b,
                                           NodeCount capacity_b,
                                           SchemeCombo combo,
                                           bool cosched_enabled,
                                           Duration hold_release_period) {
  DomainSpec a;
  a.name = name_a;
  a.capacity = capacity_a;
  a.cosched.enabled = cosched_enabled;
  a.cosched.scheme = combo.first;
  a.cosched.hold_release_period = hold_release_period;

  DomainSpec b;
  b.name = name_b;
  b.capacity = capacity_b;
  b.cosched.enabled = cosched_enabled;
  b.cosched.scheme = combo.second;
  b.cosched.hold_release_period = hold_release_period;

  return {a, b};
}

}  // namespace cosched

#include "core/coupled_sim.h"

#include <algorithm>
#include <map>

#include "util/error.h"
#include "util/log.h"

namespace cosched {

CoupledSim::CoupledSim(std::vector<DomainSpec> specs,
                       const std::vector<Trace>& traces) {
  COSCHED_CHECK_MSG(specs.size() == traces.size(),
                    "specs/traces arity mismatch");
  COSCHED_CHECK(!specs.empty());

  clusters_.reserve(specs.size());
  for (const DomainSpec& spec : specs) {
    clusters_.push_back(std::make_unique<Cluster>(
        engine_, spec.name, spec.capacity, make_policy(spec.policy),
        spec.cosched, spec.sched, spec.alloc));
  }

  // All-to-all protocol links: every call crosses the full encode/dispatch/
  // decode path through a loopback peer, wrapped in a fault injector.
  links_.resize(specs.size());
  for (std::size_t from = 0; from < specs.size(); ++from) {
    links_[from].resize(specs.size());
    for (std::size_t to = 0; to < specs.size(); ++to) {
      if (from == to) continue;
      links_[from][to] = std::make_unique<FaultInjectingPeer>(
          std::make_unique<LoopbackPeer>(*clusters_[to]));
      clusters_[from]->add_peer(*links_[from][to]);
    }
  }

  for (std::size_t i = 0; i < traces.size(); ++i)
    clusters_[i]->load_trace(traces[i]);
}

FaultInjectingPeer& CoupledSim::link(std::size_t from, std::size_t to) {
  COSCHED_CHECK(from != to);
  return *links_.at(from).at(to);
}

CoupledSim::ProtocolStats CoupledSim::protocol_stats() const {
  ProtocolStats s;
  for (const auto& row : links_) {
    for (const auto& link : row) {
      if (!link) continue;
      const auto* lb = dynamic_cast<const LoopbackPeer*>(&link->inner());
      if (lb == nullptr) continue;
      s.calls += lb->calls();
      s.request_bytes += lb->request_bytes();
      s.response_bytes += lb->response_bytes();
    }
  }
  return s;
}

EventLog& CoupledSim::enable_event_log() {
  if (!event_log_) {
    event_log_ = std::make_unique<EventLog>();
    for (auto& c : clusters_) c->set_event_log(event_log_.get());
  }
  return *event_log_;
}

SimResult CoupledSim::run(Time max_time) {
  while (engine_.step()) {
    if (max_time > 0 && engine_.now() > max_time) {
      COSCHED_LOG(kWarn) << "simulation aborted at t=" << engine_.now()
                         << " (max_time exceeded)";
      break;
    }
  }

  SimResult result;
  result.end_time = engine_.now();

  bool all_finished = true;
  std::map<GroupId, std::vector<Time>> group_starts;
  for (const auto& cluster : clusters_) {
    result.systems.push_back(collect_metrics(
        cluster->scheduler(), result.end_time, cluster->name()));
    cluster->scheduler().for_each_job([&](JobId id, const RuntimeJob& job) {
      (void)id;
      if (job.state != JobState::kFinished) all_finished = false;
      if (job.spec.is_paired())
        group_starts[job.spec.group].push_back(job.start);
    });
  }
  result.completed = all_finished;
  result.deadlocked = !all_finished;

  for (const auto& [group, starts] : group_starts) {
    (void)group;
    ++result.pairs.groups_total;
    if (std::any_of(starts.begin(), starts.end(),
                    [](Time t) { return t == kNoTime; })) {
      ++result.pairs.groups_unstarted;
      continue;
    }
    const auto [lo, hi] = std::minmax_element(starts.begin(), starts.end());
    const Duration skew = *hi - *lo;
    result.pairs.max_start_skew = std::max(result.pairs.max_start_skew, skew);
    if (skew == 0) ++result.pairs.groups_started_together;
  }
  return result;
}

std::vector<DomainSpec> make_coupled_specs(const std::string& name_a,
                                           NodeCount capacity_a,
                                           const std::string& name_b,
                                           NodeCount capacity_b,
                                           SchemeCombo combo,
                                           bool cosched_enabled,
                                           Duration hold_release_period) {
  DomainSpec a;
  a.name = name_a;
  a.capacity = capacity_a;
  a.cosched.enabled = cosched_enabled;
  a.cosched.scheme = combo.first;
  a.cosched.hold_release_period = hold_release_period;

  DomainSpec b;
  b.name = name_b;
  b.capacity = capacity_b;
  b.cosched.enabled = cosched_enabled;
  b.cosched.scheme = combo.second;
  b.cosched.hold_release_period = hold_release_period;

  return {a, b};
}

}  // namespace cosched

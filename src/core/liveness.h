// Liveness layer: accrual failure detection and leased holds with fencing.
//
// The paper's fault rule (§IV-C) maps "remote down" to mate status `unknown`
// so a job never waits forever on a dead peer — but the transport breaker
// that used to be the only evidence source sees connection failures, not
// asymmetric partitions, silent hangs, or a reachable-yet-stale peer.  This
// module supplies the principled version:
//
//   FailureDetector  phi-accrual-style detector fed by heartbeat arrivals.
//                    phi ~ -log10 P(peer still alive given the silence so
//                    far); crossing `phi_suspect` demotes a peer to
//                    kSuspect, crossing `phi_confirm` to kDead — which
//                    Cluster maps to mate status `suspected` / `unknown`.
//
//   HoldLease        a hold's nodes are occupied under a lease: granted
//                    with an expiry and a fencing token, renewed by
//                    evidence of mate-domain liveness, auto-expiring into
//                    yield-or-unsync-start when renewal stops.  The fencing
//                    token (built on the incarnation plane of the recovery
//                    subsystem) makes late side-effecting calls from a
//                    partitioned-then-healed peer detectably stale.
//
// Everything here runs on simulated time and is purely deterministic: the
// detector's state is a bounded window of observed inter-arrival gaps, and
// both types snapshot/restore through the journal's wire codec.
#pragma once

#include <cstdint>
#include <deque>

#include "proto/wire.h"
#include "util/types.h"

namespace cosched {

/// Detector output for one remote domain.
enum class PeerHealth : std::uint8_t {
  kAlive = 0,    ///< heartbeats arriving on schedule
  kSuspect = 1,  ///< phi >= suspect threshold: stop renewing leases
  kDead = 2,     ///< phi >= confirm threshold: treat mate as `unknown`
};

const char* to_string(PeerHealth h);

/// Phi-accrual-style failure detector for one remote domain.
///
/// Classic phi-accrual fits a distribution to observed heartbeat
/// inter-arrival times and reports phi = -log10 P(arrival gap > silence).
/// With exponentially distributed arrivals that collapses to the closed
/// form used here:
///
///   phi(now) = 0.4343 * (now - last_heard) / mean_interval
///
/// (0.4343 = log10 e).  The mean interval is estimated over a bounded
/// window of recent gaps, seeded with the configured heartbeat period so
/// the detector is usable from the first probe.  Integer sim time in,
/// double phi out — no wall clock, no randomness, fully replayable.
class FailureDetector {
 public:
  /// `expected_interval` seeds the gap estimate (the heartbeat period).
  /// `epoch` is the time the detector went live: before anything is heard,
  /// silence is measured from here rather than reporting forever-dead.
  FailureDetector(Duration expected_interval, Time epoch);

  /// Marks that probing has begun: the first call re-baselines the silence
  /// clock to `now`, so a peer is never judged by silence accumulated
  /// before anyone ever asked it anything.  Idempotent.
  void mark_probe(Time now);

  /// Records evidence of life (a heartbeat response arriving at `now`).
  void record_heartbeat(Time now);

  /// Suspicion level given the current time.  0 when just heard from.
  double phi(Time now) const;

  /// Classifies phi(now) against the two thresholds.
  PeerHealth health(Time now, double phi_suspect, double phi_confirm) const;

  Time last_heard() const { return last_heard_; }
  std::uint64_t heartbeats_seen() const { return heartbeats_seen_; }

  /// Mean inter-arrival estimate over the window (simulated seconds).
  double mean_interval() const;

  /// Snapshot/restore through the journal codec (deterministic recovery).
  void snapshot(WireWriter& w) const;
  void restore(WireReader& r);

 private:
  /// Gap window size: big enough to smooth jitter, small enough to adapt
  /// within a few minutes of simulated time at a 30 s period.
  static constexpr std::size_t kWindow = 16;

  Duration expected_interval_;
  Time epoch_;                       ///< silence baseline before first probe
  Time last_heard_ = kNoTime;
  bool probed_ = false;              ///< mark_probe() has run
  std::uint64_t heartbeats_seen_ = 0;
  std::deque<Duration> gaps_;        ///< recent inter-arrival gaps
};

/// One granted hold lease: `job` occupies its assigned nodes waiting for
/// the mate domain at peer index `peer`, valid until `expires_at` unless
/// renewed.  `token` is the fencing token the grant was announced under.
struct HoldLease {
  JobId job = kNoJob;
  std::int32_t peer = -1;      ///< blocking peer index (-1 = none)
  Time granted_at = 0;
  Time expires_at = 0;
  std::uint64_t token = 0;
  std::uint32_t renewals = 0;

  bool operator==(const HoldLease&) const = default;

  void snapshot(WireWriter& w) const;
  static HoldLease restore(WireReader& r);
};

/// Fencing tokens order lease epochs across restarts: the incarnation (the
/// recovery plane's restart counter) forms the high 32 bits, a per-epoch
/// counter the low 32.  Any token minted after a restart or a lease expiry
/// therefore compares greater than every token handed out before it.
inline std::uint64_t make_fence_token(std::uint64_t incarnation,
                                      std::uint32_t epoch) {
  return (incarnation << 32) | epoch;
}

}  // namespace cosched

// Per-domain coscheduling configuration (paper §IV-B, §IV-D, §IV-E).
//
// Each machine is configured *locally* — a domain never needs to know its
// peers' schemes; this is the property that makes the mechanism practical
// across administrative boundaries (§IV-E1, last paragraph).
#pragma once

#include <string>

#include "util/types.h"

namespace cosched {

/// The two basic coscheduling schemes (§IV-B).
enum class Scheme {
  kHold,   ///< occupy assigned nodes until the mate is ready
  kYield,  ///< give up the turn; retry at a later scheduling iteration
};

const char* to_string(Scheme s);

/// Parses "hold"/"yield".  Throws ParseError on anything else.
Scheme parse_scheme(const std::string& name);

struct CoschedConfig {
  /// Master switch: when false, Run_Job starts every ready job (line 35).
  bool enabled = true;

  /// Local scheme applied when the mate is not ready.
  Scheme scheme = Scheme::kHold;

  /// Deadlock breaker (§IV-E1): a holding job releases its nodes after this
  /// period and re-queues at lowest priority for one iteration.  The paper
  /// uses 20 minutes.  0 disables forced release (deadlock-prone for
  /// hold-hold; exposed for the validation experiment).
  Duration hold_release_period = 20 * kMinute;

  /// Max fraction of machine nodes allowed in hold state (§IV-E2).  A job
  /// that would push held nodes above this yields instead.  1.0 = whole
  /// machine may hold (the paper found this acceptable in simulation).
  double max_hold_fraction = 1.0;

  /// Yield-count threshold after which a yielding job holds instead
  /// (§IV-E2, "maximum yielding threshold").  0 disables.
  int max_yield_before_hold = 0;

  /// A yielded job is re-examined no later than this after yielding, even if
  /// no local submit/end event triggers a scheduling iteration.  Event-driven
  /// simulators otherwise leave a yielded job stranded on a quiet machine
  /// (production Cobalt iterates periodically).  0 disables the timer.
  Duration yield_retry_period = 5 * kMinute;

  /// Additive priority boost per yield (§IV-E2's alternative to the yield
  /// threshold).  0 disables.
  double yield_priority_boost = 0.0;

  /// Liveness layer (heartbeats, failure detector, leased holds).
  struct Liveness {
    /// Master switch.  Off by default: the breaker-only behaviour (and the
    /// pinned determinism fingerprints that encode it) is preserved unless a
    /// deployment opts in.
    bool enabled = false;

    /// Interval between heartbeat rounds to every known peer.
    Duration heartbeat_period = 30 * kSecond;

    /// Phi threshold at which a silent peer becomes `suspected` (holds keep
    /// their nodes but leases stop renewing).  Phi ~ -log10 P(still alive):
    /// 1.5 at a 30 s period is roughly 104 s of silence.
    double phi_suspect = 1.5;

    /// Phi threshold at which the detector *confirms* failure: mate status
    /// becomes `unknown`, leases expire immediately, and Algorithm 1's
    /// fault rule (start locally, unsynchronized) applies.  4.0 at a 30 s
    /// period is roughly 276 s of silence — far below the 20-min breaker.
    double phi_confirm = 4.0;

    /// Lifetime of a hold lease.  Renewed on every heartbeat ack from the
    /// blocking peer; expiry without renewal releases the hold (yield path)
    /// or starts the job unsynchronized (confirmed-dead path).
    Duration lease_duration = 5 * kMinute;
  };

  Liveness liveness;

  /// k-of-N gang costart (two-phase, fenced).  Applies to groups spanning
  /// >= 3 domains; two-domain groups keep the paper's Algorithm-1 chain.
  struct Gang {
    /// Master switch.  Off by default: legacy behaviour (and the pinned
    /// determinism fingerprints encoding it) is preserved unless a
    /// deployment opts in.
    bool two_phase = false;

    /// Jittered backoff after an aborted or victimized prepare round: the
    /// coordinator waits base * 2^min(attempt, 6) plus a deterministic
    /// jitter in [0, base) before re-preparing, capped at `backoff_cap`.
    Duration backoff_base = 1 * kMinute;
    Duration backoff_cap = 30 * kMinute;

    /// Seed for the deterministic backoff jitter stream (mixed with the
    /// job id and attempt count, so streams are per-job stable).
    std::uint64_t seed = 0x9a4657ULL;
  };

  Gang gang;
};

/// Named scheme combination for bench tables: HH, HY, YH, YY.
struct SchemeCombo {
  Scheme first;   ///< scheme on the first (compute) machine
  Scheme second;  ///< scheme on the second (analysis) machine
  const char* label;
};

inline constexpr SchemeCombo kHH{Scheme::kHold, Scheme::kHold, "HH"};
inline constexpr SchemeCombo kHY{Scheme::kHold, Scheme::kYield, "HY"};
inline constexpr SchemeCombo kYH{Scheme::kYield, Scheme::kHold, "YH"};
inline constexpr SchemeCombo kYY{Scheme::kYield, Scheme::kYield, "YY"};
inline constexpr SchemeCombo kAllCombos[] = {kHH, kHY, kYH, kYY};

}  // namespace cosched

#include "proto/wire.h"

namespace cosched {

void WireWriter::put_u64(std::uint64_t v) {
  while (v >= 0x80) {
    buf_.push_back(static_cast<std::uint8_t>(v) | 0x80);
    v >>= 7;
  }
  buf_.push_back(static_cast<std::uint8_t>(v));
}

void WireWriter::put_string(const std::string& s) {
  put_u64(s.size());
  buf_.insert(buf_.end(), s.begin(), s.end());
}

std::uint8_t WireReader::get_u8() {
  if (pos_ >= data_.size()) throw ParseError("wire: truncated u8");
  return data_[pos_++];
}

std::uint64_t WireReader::get_u64() {
  std::uint64_t v = 0;
  int shift = 0;
  for (;;) {
    if (pos_ >= data_.size()) throw ParseError("wire: truncated varint");
    const std::uint8_t b = data_[pos_++];
    if (shift >= 64 || (shift == 63 && (b & 0x7e)))
      throw ParseError("wire: varint overflow");
    v |= static_cast<std::uint64_t>(b & 0x7f) << shift;
    if (!(b & 0x80)) return v;
    shift += 7;
  }
}

std::string WireReader::get_string() {
  const std::uint64_t n = get_u64();
  if (n > remaining()) throw ParseError("wire: truncated string");
  std::string s(reinterpret_cast<const char*>(data_.data()) + pos_, n);
  pos_ += n;
  return s;
}

}  // namespace cosched

// Client side of the coordination protocol.
//
// The coscheduling agent talks to each remote domain through PeerClient.
// Every method returns nullopt on *transport* failure — the condition
// Algorithm 1 maps to mate status "unknown" (start the local job normally;
// a job never waits forever for a dead peer).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>

#include "proto/message.h"
#include "proto/service.h"

namespace cosched {

class PeerClient {
 public:
  virtual ~PeerClient() = default;

  /// nullopt = remote unreachable.  An unreachable remote means "no mate
  /// found" at line 2 of Algorithm 1: the ready job starts immediately.
  virtual std::optional<std::optional<JobId>> get_mate_job(GroupId group,
                                                           JobId asking) = 0;
  virtual std::optional<MateStatus> get_mate_status(JobId mate) = 0;
  virtual std::optional<bool> try_start_mate(JobId mate) = 0;
  virtual std::optional<bool> start_job(JobId job) = 0;

  /// Two-phase gang costart calls (k >= 3 domains).  All side-effecting:
  /// fenced and deduped like tryStartMate/startJob.  nullopt = transport
  /// failure (the coordinator treats an unanswered prepare/commit as a
  /// reason to abort the round).  Defaults keep legacy peers compiling and
  /// report "remote cannot gang-start".
  virtual std::optional<bool> gang_prepare(JobId job, GroupId group) {
    (void)job;
    (void)group;
    return std::optional<bool>(false);
  }
  virtual std::optional<bool> gang_commit(JobId job, GroupId group) {
    (void)job;
    (void)group;
    return std::optional<bool>(false);
  }
  virtual std::optional<bool> gang_abort(JobId job, GroupId group) {
    (void)job;
    (void)group;
    return std::optional<bool>(false);
  }
  virtual std::optional<bool> gang_victim(JobId job, GroupId group) {
    (void)job;
    (void)group;
    return std::optional<bool>(false);
  }

  /// Liveness probe carrying the local domain's payload; the remote's
  /// payload comes back.  nullopt = unreachable OR the remote predates the
  /// liveness protocol — either way no evidence of life.  Default keeps
  /// legacy peers compiling.
  virtual std::optional<HeartbeatInfo> heartbeat(const HeartbeatInfo& mine) {
    (void)mine;
    return std::nullopt;
  }

  /// Sets the fencing token stamped on subsequent side-effecting calls
  /// (tryStartMate/startJob): the remote's fencing epoch as last learned
  /// from its heartbeats.  Default no-op for legacy peers (token 0 =
  /// unfenced, always admitted).
  virtual void set_fence_token(std::uint64_t token) { (void)token; }
};

/// In-process peer: encodes each call, runs it through a ServiceDispatcher,
/// and decodes the response — the full wire path without a socket, so every
/// simulation exercises the protocol encoding.
///
/// Thread safety: confined to the simulation thread — the counters are
/// plain integers on purpose.  No mutex, so no GUARDED_BY members; the
/// annotated-mutex convention lives in src/util/thread_annotations.h.
class LoopbackPeer final : public PeerClient {
 public:
  explicit LoopbackPeer(CoschedService& service) : dispatcher_(service) {}

  std::optional<std::optional<JobId>> get_mate_job(GroupId group,
                                                   JobId asking) override;
  std::optional<MateStatus> get_mate_status(JobId mate) override;
  std::optional<bool> try_start_mate(JobId mate) override;
  std::optional<bool> start_job(JobId job) override;
  std::optional<bool> gang_prepare(JobId job, GroupId group) override;
  std::optional<bool> gang_commit(JobId job, GroupId group) override;
  std::optional<bool> gang_abort(JobId job, GroupId group) override;
  std::optional<bool> gang_victim(JobId job, GroupId group) override;
  std::optional<HeartbeatInfo> heartbeat(const HeartbeatInfo& mine) override;
  void set_fence_token(std::uint64_t token) override { fence_token_ = token; }

  /// Total protocol round-trips performed (for the overhead accounting).
  std::uint64_t calls() const { return calls_; }

  /// Total encoded request/response bytes — quantifies the paper's
  /// "lightweight protocol" claim.
  std::uint64_t request_bytes() const { return request_bytes_; }
  std::uint64_t response_bytes() const { return response_bytes_; }

 private:
  std::optional<Message> round_trip(const Message& req, MsgType expect);

  ServiceDispatcher dispatcher_;
  std::uint64_t next_rid_ = 1;
  std::uint64_t fence_token_ = 0;
  std::uint64_t calls_ = 0;
  std::uint64_t request_bytes_ = 0;
  std::uint64_t response_bytes_ = 0;
};

}  // namespace cosched

#include "proto/message.h"

#include "proto/wire.h"

namespace cosched {

const char* to_string(MateStatus s) {
  switch (s) {
    case MateStatus::kHolding: return "holding";
    case MateStatus::kQueuing: return "queuing";
    case MateStatus::kUnsubmitted: return "unsubmitted";
    case MateStatus::kStarting: return "starting";
    case MateStatus::kRunning: return "running";
    case MateStatus::kFinished: return "finished";
    case MateStatus::kUnknown: return "unknown";
    case MateStatus::kSuspected: return "suspected";
  }
  return "?";
}

std::vector<std::uint8_t> Message::encode() const {
  WireWriter w;
  w.put_u8(static_cast<std::uint8_t>(type));
  w.put_u64(request_id);
  w.put_u64(incarnation);
  switch (type) {
    case MsgType::kGetMateJobReq:
      w.put_i64(group);
      w.put_i64(job);
      break;
    case MsgType::kGetMateJobResp:
      w.put_bool(found);
      w.put_i64(job);
      break;
    case MsgType::kGetMateStatusReq:
      w.put_i64(job);
      break;
    case MsgType::kGetMateStatusResp:
      w.put_u8(static_cast<std::uint8_t>(status));
      break;
    case MsgType::kTryStartMateReq:
    case MsgType::kStartJobReq:
      w.put_i64(job);
      w.put_u64(fence);
      break;
    case MsgType::kGangPrepareReq:
    case MsgType::kGangCommitReq:
    case MsgType::kGangAbortReq:
    case MsgType::kGangVictimReq:
      w.put_i64(job);
      w.put_u64(fence);
      w.put_i64(group);
      break;
    case MsgType::kTryStartMateResp:
    case MsgType::kStartJobResp:
    case MsgType::kGangPrepareResp:
    case MsgType::kGangCommitResp:
    case MsgType::kGangAbortResp:
    case MsgType::kGangVictimResp:
      w.put_bool(ok);
      break;
    case MsgType::kHelloReq:
    case MsgType::kHelloResp:
      break;  // the incarnation field is the whole payload
    case MsgType::kHeartbeatReq:
    case MsgType::kHeartbeatResp:
      w.put_u64(hb_incarnation);
      w.put_u64(fence);
      w.put_u64(queue_depth);
      w.put_double(hold_fraction);
      break;
    case MsgType::kErrorResp:
      w.put_string(error);
      break;
  }
  return w.take();
}

Message Message::decode(std::span<const std::uint8_t> data) {
  WireReader r(data);
  Message m;
  const std::uint8_t t = r.get_u8();
  switch (t) {
    case 1: case 2: case 3: case 4: case 5: case 6: case 7: case 8:
    case 9: case 10: case 11: case 12: case 13: case 14: case 15:
    case 16: case 17: case 18: case 19: case 20: case 21:
      m.type = static_cast<MsgType>(t);
      break;
    default:
      throw ParseError("message: unknown type " + std::to_string(t));
  }
  m.request_id = r.get_u64();
  m.incarnation = r.get_u64();
  switch (m.type) {
    case MsgType::kGetMateJobReq:
      m.group = r.get_i64();
      m.job = r.get_i64();
      break;
    case MsgType::kGetMateJobResp:
      m.found = r.get_bool();
      m.job = r.get_i64();
      break;
    case MsgType::kGetMateStatusReq:
      m.job = r.get_i64();
      break;
    case MsgType::kGetMateStatusResp: {
      const std::uint8_t s = r.get_u8();
      if (s > static_cast<std::uint8_t>(MateStatus::kSuspected))
        throw ParseError("message: bad mate status " + std::to_string(s));
      m.status = static_cast<MateStatus>(s);
      break;
    }
    case MsgType::kTryStartMateReq:
    case MsgType::kStartJobReq:
      m.job = r.get_i64();
      m.fence = r.get_u64();
      break;
    case MsgType::kGangPrepareReq:
    case MsgType::kGangCommitReq:
    case MsgType::kGangAbortReq:
    case MsgType::kGangVictimReq:
      m.job = r.get_i64();
      m.fence = r.get_u64();
      m.group = r.get_i64();
      break;
    case MsgType::kTryStartMateResp:
    case MsgType::kStartJobResp:
    case MsgType::kGangPrepareResp:
    case MsgType::kGangCommitResp:
    case MsgType::kGangAbortResp:
    case MsgType::kGangVictimResp:
      m.ok = r.get_bool();
      break;
    case MsgType::kHelloReq:
    case MsgType::kHelloResp:
      break;
    case MsgType::kHeartbeatReq:
    case MsgType::kHeartbeatResp:
      m.hb_incarnation = r.get_u64();
      m.fence = r.get_u64();
      m.queue_depth = r.get_u64();
      m.hold_fraction = r.get_double();
      break;
    case MsgType::kErrorResp:
      m.error = r.get_string();
      break;
  }
  if (!r.exhausted()) throw ParseError("message: trailing bytes");
  return m;
}

Message make_get_mate_job_req(std::uint64_t rid, GroupId group, JobId asking) {
  Message m;
  m.type = MsgType::kGetMateJobReq;
  m.request_id = rid;
  m.group = group;
  m.job = asking;
  return m;
}

Message make_get_mate_job_resp(std::uint64_t rid, std::optional<JobId> mate) {
  Message m;
  m.type = MsgType::kGetMateJobResp;
  m.request_id = rid;
  m.found = mate.has_value();
  m.job = mate.value_or(kNoJob);
  return m;
}

Message make_get_mate_status_req(std::uint64_t rid, JobId mate) {
  Message m;
  m.type = MsgType::kGetMateStatusReq;
  m.request_id = rid;
  m.job = mate;
  return m;
}

Message make_get_mate_status_resp(std::uint64_t rid, MateStatus status) {
  Message m;
  m.type = MsgType::kGetMateStatusResp;
  m.request_id = rid;
  m.status = status;
  return m;
}

Message make_try_start_mate_req(std::uint64_t rid, JobId mate) {
  Message m;
  m.type = MsgType::kTryStartMateReq;
  m.request_id = rid;
  m.job = mate;
  return m;
}

Message make_try_start_mate_resp(std::uint64_t rid, bool started) {
  Message m;
  m.type = MsgType::kTryStartMateResp;
  m.request_id = rid;
  m.ok = started;
  return m;
}

Message make_start_job_req(std::uint64_t rid, JobId job) {
  Message m;
  m.type = MsgType::kStartJobReq;
  m.request_id = rid;
  m.job = job;
  return m;
}

Message make_start_job_resp(std::uint64_t rid, bool ok) {
  Message m;
  m.type = MsgType::kStartJobResp;
  m.request_id = rid;
  m.ok = ok;
  return m;
}

Message make_hello_req(std::uint64_t rid, std::uint64_t client_incarnation) {
  Message m;
  m.type = MsgType::kHelloReq;
  m.request_id = rid;
  m.incarnation = client_incarnation;
  return m;
}

Message make_hello_resp(std::uint64_t rid, std::uint64_t server_incarnation) {
  Message m;
  m.type = MsgType::kHelloResp;
  m.request_id = rid;
  m.incarnation = server_incarnation;
  return m;
}

Message make_error_resp(std::uint64_t rid, std::string error) {
  Message m;
  m.type = MsgType::kErrorResp;
  m.request_id = rid;
  m.error = std::move(error);
  return m;
}

namespace {
Message make_gang_req(MsgType type, std::uint64_t rid, JobId job,
                      GroupId group) {
  Message m;
  m.type = type;
  m.request_id = rid;
  m.job = job;
  m.group = group;
  return m;
}

Message make_gang_resp(MsgType type, std::uint64_t rid, bool ok) {
  Message m;
  m.type = type;
  m.request_id = rid;
  m.ok = ok;
  return m;
}
}  // namespace

Message make_gang_prepare_req(std::uint64_t rid, JobId job, GroupId group) {
  return make_gang_req(MsgType::kGangPrepareReq, rid, job, group);
}
Message make_gang_prepare_resp(std::uint64_t rid, bool ok) {
  return make_gang_resp(MsgType::kGangPrepareResp, rid, ok);
}
Message make_gang_commit_req(std::uint64_t rid, JobId job, GroupId group) {
  return make_gang_req(MsgType::kGangCommitReq, rid, job, group);
}
Message make_gang_commit_resp(std::uint64_t rid, bool ok) {
  return make_gang_resp(MsgType::kGangCommitResp, rid, ok);
}
Message make_gang_abort_req(std::uint64_t rid, JobId job, GroupId group) {
  return make_gang_req(MsgType::kGangAbortReq, rid, job, group);
}
Message make_gang_abort_resp(std::uint64_t rid, bool ok) {
  return make_gang_resp(MsgType::kGangAbortResp, rid, ok);
}
Message make_gang_victim_req(std::uint64_t rid, JobId job, GroupId group) {
  return make_gang_req(MsgType::kGangVictimReq, rid, job, group);
}
Message make_gang_victim_resp(std::uint64_t rid, bool ok) {
  return make_gang_resp(MsgType::kGangVictimResp, rid, ok);
}

namespace {
Message make_heartbeat(MsgType type, std::uint64_t rid,
                       const HeartbeatInfo& info) {
  Message m;
  m.type = type;
  m.request_id = rid;
  m.hb_incarnation = info.incarnation;
  m.fence = info.fence;
  m.queue_depth = info.queue_depth;
  m.hold_fraction = info.hold_fraction;
  return m;
}
}  // namespace

Message make_heartbeat_req(std::uint64_t rid, const HeartbeatInfo& info) {
  return make_heartbeat(MsgType::kHeartbeatReq, rid, info);
}

Message make_heartbeat_resp(std::uint64_t rid, const HeartbeatInfo& info) {
  return make_heartbeat(MsgType::kHeartbeatResp, rid, info);
}

void encode_job_spec(WireWriter& w, const JobSpec& spec) {
  w.put_i64(spec.id);
  w.put_i64(spec.submit);
  w.put_i64(spec.runtime);
  w.put_i64(spec.walltime);
  w.put_i64(spec.nodes);
  w.put_i64(spec.group);
  w.put_i64(spec.after);
  w.put_i64(spec.after_delay);
  w.put_i64(spec.user);
}

JobSpec decode_job_spec(WireReader& r) {
  JobSpec spec;
  spec.id = r.get_i64();
  spec.submit = r.get_i64();
  spec.runtime = r.get_i64();
  spec.walltime = r.get_i64();
  spec.nodes = r.get_i64();
  spec.group = r.get_i64();
  spec.after = r.get_i64();
  spec.after_delay = r.get_i64();
  spec.user = static_cast<std::int32_t>(r.get_i64());
  return spec;
}

}  // namespace cosched

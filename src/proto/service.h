// Server side of the coordination protocol.
//
// A scheduling domain implements CoschedService; ServiceDispatcher turns
// encoded request bytes into service calls and encoded responses.  The same
// dispatcher backs the in-process loopback peer and the socket daemons.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <optional>
#include <span>
#include <utility>
#include <vector>

#include "proto/message.h"
#include "util/mutex.h"

namespace cosched {

/// The operations a domain must answer for its peers (paper Algorithm 1's
/// remote.* calls, seen from the receiving side).
class CoschedService {
 public:
  virtual ~CoschedService() = default;

  /// Finds the local member of coscheduling group `group`.  `asking` is the
  /// remote job that asks (for logging/validation).  nullopt = not found,
  /// which the asker treats as "no mate; start normally".
  virtual std::optional<JobId> get_mate_job(GroupId group, JobId asking) = 0;

  /// Reports the scheduling status of a local job.
  virtual MateStatus get_mate_status(JobId job) = 0;

  /// Runs an additional scheduling iteration trying to start `job`;
  /// true only if the job actually started (paper line 12).
  virtual bool try_start_mate(JobId job) = 0;

  /// Starts a local *holding* job whose mate is now ready (paper line 8).
  virtual bool start_job(JobId job) = 0;

  /// Answers a liveness probe: `from` is the prober's payload; the return is
  /// this domain's own.  Default nullopt = liveness not implemented (the
  /// dispatcher then answers with an error, which the prober's detector
  /// treats the same as a lost probe).
  virtual std::optional<HeartbeatInfo> heartbeat(const HeartbeatInfo& from) {
    (void)from;
    return std::nullopt;
  }

  /// Two-phase gang costart (k >= 3 domains).  Prepare places the local
  /// member of `group` into a fenced, leased hold and answers true only if
  /// the member is holding afterwards; commit starts a prepared (holding)
  /// member; abort releases a prepared hold without starting it; victim
  /// orders a deadlock-cycle victim to yield its hold and back off before
  /// re-preparing.  Defaults preserve legacy two-domain behaviour: the
  /// dispatcher answers false and nothing mutates.
  virtual bool gang_prepare(JobId job, GroupId group) {
    (void)job;
    (void)group;
    return false;
  }
  virtual bool gang_commit(JobId job, GroupId group) {
    (void)job;
    (void)group;
    return false;
  }
  virtual bool gang_abort(JobId job, GroupId group) {
    (void)job;
    (void)group;
    return false;
  }
  virtual bool gang_victim(JobId job, GroupId group) {
    (void)job;
    (void)group;
    return false;
  }

  /// Fencing gate for the side-effecting calls.  `fence` is the caller's
  /// view of this domain's fencing epoch (0 = unfenced legacy caller, always
  /// admitted).  False rejects the call without executing it: the caller
  /// observed an epoch that has since advanced — it was partitioned while
  /// this domain expired the relevant lease — so acting on its behalf could
  /// double-start a mate.  Default true preserves pre-liveness behaviour.
  virtual bool admit_fence(JobId job, std::uint64_t fence) {
    (void)job;
    (void)fence;
    return true;
  }
};

/// Exactly-once verdict cache for the side-effecting calls (tryStartMate,
/// startJob).  A retried request — same (client incarnation, request id) —
/// returns the recorded verdict instead of re-running the scheduling
/// iteration, so a lost response can never double-start a mate.
///
/// Keys are (client incarnation, request id).  Request ids are monotone per
/// client incarnation and never reused (see net/rpc.h), so an entry is hit
/// only by a genuine retry of the same logical call.  The persist hook fires
/// *before* record() returns; the owner journals a kDedup record and commits
/// it, making the verdict durable before the reply leaves the daemon.
///
/// Thread-safe: one cache is shared by every dispatcher (= connection) of a
/// daemon, and connection threads overlap during client reconnects.  The
/// persist hook runs under the lock, serializing journal appends too.
class RpcDedup {
 public:
  struct Entry {
    MsgType op = MsgType::kErrorResp;
    bool verdict = false;
  };

  explicit RpcDedup(std::size_t max_entries = 4096)
      : max_entries_(max_entries) {}

  /// Recorded verdict of a completed call, or nullopt if never executed
  /// (or evicted — the call then re-executes, degrading to at-least-once).
  std::optional<Entry> lookup(std::uint64_t client_incarnation,
                              std::uint64_t rid) const {
    MutexLock lock(mutex_);
    auto it = entries_.find({client_incarnation, rid});
    if (it == entries_.end()) return std::nullopt;
    return it->second;
  }

  /// Records a verdict and fires the persist hook (durable-before-reply).
  void record(std::uint64_t client_incarnation, std::uint64_t rid, MsgType op,
              bool verdict) {
    MutexLock lock(mutex_);
    insert_locked(client_incarnation, rid, op, verdict);
    if (persist_) persist_(client_incarnation, rid, op, verdict);
  }

  /// Inserts without persisting — journal replay during recovery.
  void insert_restored(std::uint64_t client_incarnation, std::uint64_t rid,
                       MsgType op, bool verdict) {
    MutexLock lock(mutex_);
    insert_locked(client_incarnation, rid, op, verdict);
  }

  /// Hello from a (re)connecting client: drops entries of *older*
  /// incarnations of the same client.  "Same client" = same high 32 bits of
  /// the incarnation; deployments with several clients should allocate
  /// incarnations as (client_id << 32) | restart_count.  The all-low-bits
  /// counters used by the simulator collapse every client into id 0, which
  /// is fine there: a restart wipes the whole simulated coupled system.
  void on_hello(std::uint64_t client_incarnation) {
    MutexLock lock(mutex_);
    const std::uint64_t client = client_incarnation >> 32;
    for (auto it = entries_.begin(); it != entries_.end();) {
      if ((it->first.first >> 32) == client &&
          it->first.first < client_incarnation)
        it = entries_.erase(it);
      else
        ++it;
    }
  }

  void set_persist(std::function<void(std::uint64_t, std::uint64_t, MsgType,
                                      bool)> fn) {
    MutexLock lock(mutex_);
    persist_ = std::move(fn);
  }

  std::size_t size() const {
    MutexLock lock(mutex_);
    return entries_.size();
  }

 private:
  using Key = std::pair<std::uint64_t, std::uint64_t>;

  void insert_locked(std::uint64_t client_incarnation, std::uint64_t rid,
                     MsgType op, bool verdict) REQUIRES(mutex_) {
    const Key key{client_incarnation, rid};
    if (entries_.emplace(key, Entry{op, verdict}).second) {
      order_.push_back(key);
      while (order_.size() > max_entries_) {
        entries_.erase(order_.front());
        order_.pop_front();
      }
    }
  }

  std::size_t max_entries_;
  mutable Mutex mutex_;
  std::map<Key, Entry> entries_ GUARDED_BY(mutex_);
  std::deque<Key> order_ GUARDED_BY(mutex_);
  std::function<void(std::uint64_t, std::uint64_t, MsgType, bool)> persist_
      GUARDED_BY(mutex_);
};

/// Server-side identity and exactly-once wiring for a dispatcher.
struct DispatcherConfig {
  /// This daemon's incarnation, stamped on every response (0 = loopback,
  /// no incarnation semantics).
  std::uint64_t incarnation = 0;
  /// Optional exactly-once cache; consulted only for side-effecting calls
  /// from clients that declare an incarnation.
  RpcDedup* dedup = nullptr;
};

/// Decodes a request, invokes the service, encodes the response.
/// Malformed requests produce a kErrorResp rather than an exception so a
/// bad peer cannot crash a daemon.
class ServiceDispatcher {
 public:
  explicit ServiceDispatcher(CoschedService& service,
                             DispatcherConfig config = {})
      : service_(service), config_(config) {}

  std::vector<std::uint8_t> dispatch(std::span<const std::uint8_t> request);

 private:
  CoschedService& service_;
  DispatcherConfig config_;
};

}  // namespace cosched

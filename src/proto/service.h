// Server side of the coordination protocol.
//
// A scheduling domain implements CoschedService; ServiceDispatcher turns
// encoded request bytes into service calls and encoded responses.  The same
// dispatcher backs the in-process loopback peer and the socket daemons.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "proto/message.h"

namespace cosched {

/// The operations a domain must answer for its peers (paper Algorithm 1's
/// remote.* calls, seen from the receiving side).
class CoschedService {
 public:
  virtual ~CoschedService() = default;

  /// Finds the local member of coscheduling group `group`.  `asking` is the
  /// remote job that asks (for logging/validation).  nullopt = not found,
  /// which the asker treats as "no mate; start normally".
  virtual std::optional<JobId> get_mate_job(GroupId group, JobId asking) = 0;

  /// Reports the scheduling status of a local job.
  virtual MateStatus get_mate_status(JobId job) = 0;

  /// Runs an additional scheduling iteration trying to start `job`;
  /// true only if the job actually started (paper line 12).
  virtual bool try_start_mate(JobId job) = 0;

  /// Starts a local *holding* job whose mate is now ready (paper line 8).
  virtual bool start_job(JobId job) = 0;
};

/// Decodes a request, invokes the service, encodes the response.
/// Malformed requests produce a kErrorResp rather than an exception so a
/// bad peer cannot crash a daemon.
class ServiceDispatcher {
 public:
  explicit ServiceDispatcher(CoschedService& service) : service_(service) {}

  std::vector<std::uint8_t> dispatch(std::span<const std::uint8_t> request);

 private:
  CoschedService& service_;
};

}  // namespace cosched

#include "proto/service.h"

#include "util/error.h"
#include "util/log.h"

namespace cosched {

std::vector<std::uint8_t> ServiceDispatcher::dispatch(
    std::span<const std::uint8_t> request) {
  Message req;
  try {
    req = Message::decode(request);
  } catch (const ParseError& e) {
    COSCHED_LOG(kWarn) << "dispatcher: malformed request: " << e.what();
    return make_error_resp(0, e.what()).encode();
  }

  try {
    switch (req.type) {
      case MsgType::kGetMateJobReq:
        return make_get_mate_job_resp(
                   req.request_id, service_.get_mate_job(req.group, req.job))
            .encode();
      case MsgType::kGetMateStatusReq:
        return make_get_mate_status_resp(req.request_id,
                                         service_.get_mate_status(req.job))
            .encode();
      case MsgType::kTryStartMateReq:
        return make_try_start_mate_resp(req.request_id,
                                        service_.try_start_mate(req.job))
            .encode();
      case MsgType::kStartJobReq:
        return make_start_job_resp(req.request_id, service_.start_job(req.job))
            .encode();
      default:
        return make_error_resp(req.request_id, "unexpected message type")
            .encode();
    }
  } catch (const std::exception& e) {
    COSCHED_LOG(kError) << "dispatcher: service error: " << e.what();
    return make_error_resp(req.request_id, e.what()).encode();
  }
}

}  // namespace cosched

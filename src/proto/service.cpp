#include "proto/service.h"

#include "util/error.h"
#include "util/log.h"

namespace cosched {

std::vector<std::uint8_t> ServiceDispatcher::dispatch(
    std::span<const std::uint8_t> request) {
  Message req;
  // Every response carries this daemon's incarnation so clients can reject
  // replies that straddle a server restart.
  const auto finish = [this](Message resp) {
    resp.incarnation = config_.incarnation;
    return resp.encode();
  };
  try {
    req = Message::decode(request);
  } catch (const ParseError& e) {
    COSCHED_LOG(kWarn) << "dispatcher: malformed request: " << e.what();
    return finish(make_error_resp(0, e.what()));
  }

  // Exactly-once: side-effecting calls from incarnated clients are answered
  // from the dedup cache on retry instead of re-executing.
  const bool dedupable = config_.dedup != nullptr && req.incarnation != 0 &&
                         (req.type == MsgType::kTryStartMateReq ||
                          req.type == MsgType::kStartJobReq ||
                          req.type == MsgType::kGangPrepareReq ||
                          req.type == MsgType::kGangCommitReq ||
                          req.type == MsgType::kGangAbortReq ||
                          req.type == MsgType::kGangVictimReq);
  if (dedupable) {
    if (auto hit = config_.dedup->lookup(req.incarnation, req.request_id)) {
      switch (req.type) {
        case MsgType::kTryStartMateReq:
          return finish(make_try_start_mate_resp(req.request_id, hit->verdict));
        case MsgType::kGangPrepareReq:
          return finish(make_gang_prepare_resp(req.request_id, hit->verdict));
        case MsgType::kGangCommitReq:
          return finish(make_gang_commit_resp(req.request_id, hit->verdict));
        case MsgType::kGangAbortReq:
          return finish(make_gang_abort_resp(req.request_id, hit->verdict));
        case MsgType::kGangVictimReq:
          return finish(make_gang_victim_resp(req.request_id, hit->verdict));
        default:
          return finish(make_start_job_resp(req.request_id, hit->verdict));
      }
    }
  }

  try {
    switch (req.type) {
      case MsgType::kGetMateJobReq:
        return finish(make_get_mate_job_resp(
            req.request_id, service_.get_mate_job(req.group, req.job)));
      case MsgType::kGetMateStatusReq:
        return finish(make_get_mate_status_resp(
            req.request_id, service_.get_mate_status(req.job)));
      case MsgType::kTryStartMateReq: {
        // Fence check after the dedup lookup: a retried call that already
        // executed must keep its recorded verdict even if the epoch has
        // since advanced.  A rejection is NOT recorded — the caller may
        // legitimately retry with a refreshed token.
        const bool admitted = service_.admit_fence(req.job, req.fence);
        const bool started = admitted && service_.try_start_mate(req.job);
        if (dedupable && admitted)
          config_.dedup->record(req.incarnation, req.request_id, req.type,
                                started);
        return finish(make_try_start_mate_resp(req.request_id, started));
      }
      case MsgType::kStartJobReq: {
        const bool admitted = service_.admit_fence(req.job, req.fence);
        const bool ok = admitted && service_.start_job(req.job);
        if (dedupable && admitted)
          config_.dedup->record(req.incarnation, req.request_id, req.type, ok);
        return finish(make_start_job_resp(req.request_id, ok));
      }
      case MsgType::kGangPrepareReq: {
        const bool admitted = service_.admit_fence(req.job, req.fence);
        const bool ok = admitted && service_.gang_prepare(req.job, req.group);
        if (dedupable && admitted)
          config_.dedup->record(req.incarnation, req.request_id, req.type, ok);
        return finish(make_gang_prepare_resp(req.request_id, ok));
      }
      case MsgType::kGangCommitReq: {
        const bool admitted = service_.admit_fence(req.job, req.fence);
        const bool ok = admitted && service_.gang_commit(req.job, req.group);
        if (dedupable && admitted)
          config_.dedup->record(req.incarnation, req.request_id, req.type, ok);
        return finish(make_gang_commit_resp(req.request_id, ok));
      }
      case MsgType::kGangAbortReq: {
        const bool admitted = service_.admit_fence(req.job, req.fence);
        const bool ok = admitted && service_.gang_abort(req.job, req.group);
        if (dedupable && admitted)
          config_.dedup->record(req.incarnation, req.request_id, req.type, ok);
        return finish(make_gang_abort_resp(req.request_id, ok));
      }
      case MsgType::kGangVictimReq: {
        const bool admitted = service_.admit_fence(req.job, req.fence);
        const bool ok = admitted && service_.gang_victim(req.job, req.group);
        if (dedupable && admitted)
          config_.dedup->record(req.incarnation, req.request_id, req.type, ok);
        return finish(make_gang_victim_resp(req.request_id, ok));
      }
      case MsgType::kHelloReq:
        if (config_.dedup && req.incarnation != 0)
          config_.dedup->on_hello(req.incarnation);
        return finish(make_hello_resp(req.request_id, config_.incarnation));
      case MsgType::kHeartbeatReq: {
        HeartbeatInfo from;
        from.incarnation = req.hb_incarnation;
        from.fence = req.fence;
        from.queue_depth = req.queue_depth;
        from.hold_fraction = req.hold_fraction;
        if (auto mine = service_.heartbeat(from))
          return finish(make_heartbeat_resp(req.request_id, *mine));
        return finish(
            make_error_resp(req.request_id, "liveness not supported"));
      }
      default:
        return finish(
            make_error_resp(req.request_id, "unexpected message type"));
    }
  } catch (const std::exception& e) {
    COSCHED_LOG(kError) << "dispatcher: service error: " << e.what();
    return finish(make_error_resp(req.request_id, e.what()));
  }
}

}  // namespace cosched

// Wire primitives: LEB128 varints (zig-zag for signed) over a byte buffer.
//
// The paper's mechanism rests on "a lightweight protocol for coordination
// between policy domains".  We give that protocol a concrete, compact binary
// encoding so the same messages run over the in-process loopback used by the
// simulator and the socket channel used by the live daemons.
#pragma once

#include <bit>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "util/error.h"

namespace cosched {

class WireWriter {
 public:
  void put_u8(std::uint8_t v) { buf_.push_back(v); }
  void put_u64(std::uint64_t v);
  void put_i64(std::int64_t v) { put_u64(zigzag(v)); }
  void put_bool(bool v) { put_u8(v ? 1 : 0); }
  /// Doubles travel as IEEE-754 bit patterns (exact round-trip; used by the
  /// snapshot codec, never by protocol messages).
  void put_double(double v) { put_u64(std::bit_cast<std::uint64_t>(v)); }
  void put_string(const std::string& s);

  const std::vector<std::uint8_t>& bytes() const { return buf_; }
  std::vector<std::uint8_t> take() { return std::move(buf_); }

  static std::uint64_t zigzag(std::int64_t v) {
    return (static_cast<std::uint64_t>(v) << 1) ^
           static_cast<std::uint64_t>(v >> 63);
  }

 private:
  std::vector<std::uint8_t> buf_;
};

class WireReader {
 public:
  explicit WireReader(std::span<const std::uint8_t> data) : data_(data) {}

  std::uint8_t get_u8();
  std::uint64_t get_u64();
  std::int64_t get_i64() { return unzigzag(get_u64()); }
  bool get_bool() { return get_u8() != 0; }
  double get_double() { return std::bit_cast<double>(get_u64()); }
  std::string get_string();

  bool exhausted() const { return pos_ == data_.size(); }
  std::size_t remaining() const { return data_.size() - pos_; }

  static std::int64_t unzigzag(std::uint64_t v) {
    return static_cast<std::int64_t>((v >> 1) ^ (~(v & 1) + 1));
  }

 private:
  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
};

}  // namespace cosched

#include "proto/peer.h"

#include "util/error.h"
#include "util/log.h"

namespace cosched {

std::optional<Message> LoopbackPeer::round_trip(const Message& req,
                                                MsgType expect) {
  ++calls_;
  const auto req_bytes = req.encode();
  request_bytes_ += req_bytes.size();
  const auto resp_bytes = dispatcher_.dispatch(req_bytes);
  response_bytes_ += resp_bytes.size();
  Message resp;
  try {
    resp = Message::decode(resp_bytes);
  } catch (const ParseError& e) {
    COSCHED_LOG(kError) << "loopback peer: bad response: " << e.what();
    return std::nullopt;
  }
  if (resp.type != expect) {
    if (resp.type == MsgType::kErrorResp)
      COSCHED_LOG(kWarn) << "loopback peer: remote error: " << resp.error;
    return std::nullopt;
  }
  if (resp.request_id != req.request_id) {
    COSCHED_LOG(kError) << "loopback peer: response id mismatch";
    return std::nullopt;
  }
  return resp;
}

std::optional<std::optional<JobId>> LoopbackPeer::get_mate_job(GroupId group,
                                                               JobId asking) {
  const auto resp = round_trip(make_get_mate_job_req(next_rid_++, group, asking),
                               MsgType::kGetMateJobResp);
  if (!resp) return std::nullopt;
  // in_place distinguishes "reachable, no mate" from transport failure:
  // optional<optional<T>>(nullopt) would construct an *empty outer*.
  if (!resp->found)
    return std::optional<std::optional<JobId>>(std::in_place, std::nullopt);
  return std::optional<std::optional<JobId>>(std::in_place, resp->job);
}

std::optional<MateStatus> LoopbackPeer::get_mate_status(JobId mate) {
  const auto resp = round_trip(make_get_mate_status_req(next_rid_++, mate),
                               MsgType::kGetMateStatusResp);
  if (!resp) return std::nullopt;
  return resp->status;
}

std::optional<bool> LoopbackPeer::try_start_mate(JobId mate) {
  auto req = make_try_start_mate_req(next_rid_++, mate);
  req.fence = fence_token_;
  const auto resp = round_trip(req, MsgType::kTryStartMateResp);
  if (!resp) return std::nullopt;
  return resp->ok;
}

std::optional<bool> LoopbackPeer::start_job(JobId job) {
  auto req = make_start_job_req(next_rid_++, job);
  req.fence = fence_token_;
  const auto resp = round_trip(req, MsgType::kStartJobResp);
  if (!resp) return std::nullopt;
  return resp->ok;
}

std::optional<bool> LoopbackPeer::gang_prepare(JobId job, GroupId group) {
  auto req = make_gang_prepare_req(next_rid_++, job, group);
  req.fence = fence_token_;
  const auto resp = round_trip(req, MsgType::kGangPrepareResp);
  if (!resp) return std::nullopt;
  return resp->ok;
}

std::optional<bool> LoopbackPeer::gang_commit(JobId job, GroupId group) {
  auto req = make_gang_commit_req(next_rid_++, job, group);
  req.fence = fence_token_;
  const auto resp = round_trip(req, MsgType::kGangCommitResp);
  if (!resp) return std::nullopt;
  return resp->ok;
}

std::optional<bool> LoopbackPeer::gang_abort(JobId job, GroupId group) {
  auto req = make_gang_abort_req(next_rid_++, job, group);
  req.fence = fence_token_;
  const auto resp = round_trip(req, MsgType::kGangAbortResp);
  if (!resp) return std::nullopt;
  return resp->ok;
}

std::optional<bool> LoopbackPeer::gang_victim(JobId job, GroupId group) {
  auto req = make_gang_victim_req(next_rid_++, job, group);
  req.fence = fence_token_;
  const auto resp = round_trip(req, MsgType::kGangVictimResp);
  if (!resp) return std::nullopt;
  return resp->ok;
}

std::optional<HeartbeatInfo> LoopbackPeer::heartbeat(
    const HeartbeatInfo& mine) {
  const auto resp = round_trip(make_heartbeat_req(next_rid_++, mine),
                               MsgType::kHeartbeatResp);
  if (!resp) return std::nullopt;
  HeartbeatInfo theirs;
  theirs.incarnation = resp->hb_incarnation;
  theirs.fence = resp->fence;
  theirs.queue_depth = resp->queue_depth;
  theirs.hold_fraction = resp->hold_fraction;
  return theirs;
}

}  // namespace cosched

// The coscheduling coordination protocol (paper §IV-C, Algorithm 1).
//
// Exactly the four remote calls of the paper:
//   getMateJob(group, asking_job) -> mate job id (or none)
//   getMateStatus(mate)           -> holding | queuing | unsubmitted |
//                                    starting | running | finished | unknown
//   tryStartMate(mate)            -> did the remote scheduling iteration
//                                    start the mate?
//   startJob(job)                 -> start a remote *holding* mate
//
// `starting` is the commit marker a domain reports for a job that initiated
// tryStartMate and is waiting for the answer: the remote Run_Job sees the
// asking job as ready, preventing mutual-query recursion.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "proto/wire.h"
#include "util/types.h"
#include "workload/job.h"

namespace cosched {

enum class MateStatus : std::uint8_t {
  kHolding = 0,      ///< occupying nodes, waiting for the asking job
  kQueuing = 1,      ///< submitted, waiting in queue
  kUnsubmitted = 2,  ///< not yet submitted on the remote domain
  kStarting = 3,     ///< committed to start right now (treated like holding)
  kRunning = 4,      ///< already running (treated as unknown by Algorithm 1)
  kFinished = 5,     ///< already done (treated as unknown by Algorithm 1)
  kUnknown = 6,      ///< remote cannot answer (job failed / not tracked)
  kSuspected = 7,    ///< failure detector suspects the remote domain; not yet
                     ///< confirmed dead (holds persist, leases stop renewing)
};

const char* to_string(MateStatus s);

enum class MsgType : std::uint8_t {
  kGetMateJobReq = 1,
  kGetMateJobResp = 2,
  kGetMateStatusReq = 3,
  kGetMateStatusResp = 4,
  kTryStartMateReq = 5,
  kTryStartMateResp = 6,
  kStartJobReq = 7,
  kStartJobResp = 8,
  /// Incarnation handshake, sent once per (re)connection before any call:
  /// the request carries the client's incarnation, the response the
  /// server's.  Responses whose incarnation no longer matches the
  /// handshaken value are stale (the server restarted) and are rejected.
  kHelloReq = 9,
  kHelloResp = 10,
  /// Periodic liveness probe (both directions carry the same payload): the
  /// sender's incarnation, fencing epoch, queue depth, and holding fraction.
  /// A response is direct evidence the peer's scheduler loop is alive —
  /// the failure detector feeds on response arrivals, and hold leases renew
  /// on them.
  kHeartbeatReq = 11,
  kHeartbeatResp = 12,
  /// Two-phase gang costart (k >= 3 domains).  Prepare asks the member
  /// domain to place the gang job into a fenced, leased hold; commit starts
  /// a prepared (holding) member; abort releases a prepared hold.  Victim
  /// orders a deadlock-cycle victim to yield its hold with backoff.  All
  /// four are side-effecting: they carry the coordinator's fence token and
  /// go through the exactly-once dedup plane.
  kGangPrepareReq = 13,
  kGangPrepareResp = 14,
  kErrorResp = 15,
  kGangCommitReq = 16,
  kGangCommitResp = 17,
  kGangAbortReq = 18,
  kGangAbortResp = 19,
  kGangVictimReq = 20,
  kGangVictimResp = 21,
};

/// A protocol message; the union of all request/response payload fields.
/// Encoded fields are selected by `type`.
struct Message {
  MsgType type = MsgType::kErrorResp;
  std::uint64_t request_id = 0;

  /// Incarnation of the sender: the client's on requests (scopes request
  /// ids for exactly-once dedup), the server's on responses (rejects stale
  /// replies across a server restart).  0 = no incarnation semantics (the
  /// in-process loopback path).
  std::uint64_t incarnation = 0;

  GroupId group = kNoGroup;     // GetMateJobReq
  JobId job = kNoJob;           // asking/mate/target job id
  bool found = false;           // GetMateJobResp
  MateStatus status = MateStatus::kUnknown;  // GetMateStatusResp
  bool ok = false;              // TryStartMateResp / StartJobResp
  std::string error;            // kErrorResp

  /// Fencing token.  On TryStartMateReq/StartJobReq: the sender's view of
  /// the receiver's fencing epoch (0 = no fencing; pre-liveness client).
  /// On Heartbeat*: the sender's own current epoch, which is how peers
  /// learn it.  A side-effecting request carrying a stale nonzero token is
  /// rejected — the partitioned-then-healed-peer double-start guard.
  std::uint64_t fence = 0;
  /// Heartbeat*: the sender's scheduler incarnation.  Distinct from
  /// `incarnation` above, which the dispatcher overwrites on responses with
  /// the daemon identity (0 on the in-process loopback path).
  std::uint64_t hb_incarnation = 0;
  std::uint64_t queue_depth = 0;  // Heartbeat*: jobs waiting in queue
  double hold_fraction = 0.0;     // Heartbeat*: fraction of nodes held

  /// Serializes to the compact wire form.
  std::vector<std::uint8_t> encode() const;

  /// Parses a wire message.  Throws ParseError on malformed input.
  static Message decode(std::span<const std::uint8_t> data);

  bool operator==(const Message&) const = default;
};

// Convenience constructors for each call.
Message make_get_mate_job_req(std::uint64_t rid, GroupId group, JobId asking);
Message make_get_mate_job_resp(std::uint64_t rid, std::optional<JobId> mate);
Message make_get_mate_status_req(std::uint64_t rid, JobId mate);
Message make_get_mate_status_resp(std::uint64_t rid, MateStatus status);
Message make_try_start_mate_req(std::uint64_t rid, JobId mate);
Message make_try_start_mate_resp(std::uint64_t rid, bool started);
Message make_start_job_req(std::uint64_t rid, JobId job);
Message make_start_job_resp(std::uint64_t rid, bool ok);
Message make_hello_req(std::uint64_t rid, std::uint64_t client_incarnation);
Message make_hello_resp(std::uint64_t rid, std::uint64_t server_incarnation);
Message make_error_resp(std::uint64_t rid, std::string error);

// Gang costart calls.  Requests carry (job, fence, group); responses carry
// the boolean outcome.
Message make_gang_prepare_req(std::uint64_t rid, JobId job, GroupId group);
Message make_gang_prepare_resp(std::uint64_t rid, bool ok);
Message make_gang_commit_req(std::uint64_t rid, JobId job, GroupId group);
Message make_gang_commit_resp(std::uint64_t rid, bool ok);
Message make_gang_abort_req(std::uint64_t rid, JobId job, GroupId group);
Message make_gang_abort_resp(std::uint64_t rid, bool ok);
Message make_gang_victim_req(std::uint64_t rid, JobId job, GroupId group);
Message make_gang_victim_resp(std::uint64_t rid, bool ok);

/// Liveness payload exchanged in both directions of a heartbeat.
struct HeartbeatInfo {
  std::uint64_t incarnation = 0;  ///< sender's incarnation
  std::uint64_t fence = 0;        ///< sender's current fencing epoch
  std::uint64_t queue_depth = 0;  ///< jobs waiting in the sender's queue
  double hold_fraction = 0.0;     ///< fraction of the sender's nodes held

  bool operator==(const HeartbeatInfo&) const = default;
};

Message make_heartbeat_req(std::uint64_t rid, const HeartbeatInfo& info);
Message make_heartbeat_resp(std::uint64_t rid, const HeartbeatInfo& info);

/// Canonical JobSpec codec, shared by the wire protocol layer and the
/// crash-recovery snapshot/journal (core/journal.h).
void encode_job_spec(WireWriter& w, const JobSpec& spec);
JobSpec decode_job_spec(WireReader& r);

}  // namespace cosched

// Paired-job (and N-way group) assignment across traces.
//
// The paper builds pairs two ways:
//  * §V-D: "we associate the two jobs on different machines if their
//    submission times were within 2 minutes" — pair_by_submit_proximity.
//  * §V-E: a controlled paired-job proportion (2.5%..33%) over traces with
//    equal job counts — pair_by_proportion.
// The N-way grouping supports the paper's future-work extension to more than
// two scheduling domains.
#pragma once

#include <cstdint>
#include <vector>

#include "util/types.h"
#include "workload/trace.h"

namespace cosched {

struct PairingResult {
  std::size_t pairs_made = 0;
  /// Fraction of all jobs (across both traces) that ended up paired.
  double paired_fraction = 0.0;
};

/// Clears any existing group assignments.
void clear_pairs(Trace& trace);

/// Greedily pairs jobs whose submit times differ by at most `window`
/// (default 2 minutes, as in the paper).  Each job joins at most one pair.
/// Group ids are assigned starting from `first_group`.
PairingResult pair_by_submit_proximity(Trace& a, Trace& b,
                                       Duration window = 2 * kMinute,
                                       GroupId first_group = 1);

/// Pairs round(proportion * min(|a|,|b|)) uniformly sampled jobs of `a` with
/// an equal-size sample of `b`, matching by submission order; the mate's
/// submit time is aligned to the `a` job's submit time plus uniform jitter
/// in [0, jitter].  This is the §V-E construction where both traces have the
/// same job count so the proportion applies to both.
PairingResult pair_by_proportion(Trace& a, Trace& b, double proportion,
                                 std::uint64_t seed,
                                 Duration jitter = 2 * kMinute,
                                 GroupId first_group = 1);

/// Assigns N-way groups: for each selected index, one job from every trace
/// joins the same group (submit times aligned to the first trace's job).
/// Proportion is relative to the smallest trace.  Returns number of groups.
std::size_t group_by_proportion(std::vector<Trace*> traces, double proportion,
                                std::uint64_t seed,
                                Duration jitter = 2 * kMinute,
                                GroupId first_group = 1);

/// Randomly unpairs groups until the overall paired fraction (paired jobs /
/// all jobs across both traces) drops to at most `target_fraction`.  Used to
/// reproduce the paper's §V-D setup, where submit-proximity association on
/// the real traces yielded a 5-10% paired share.  Returns the resulting
/// fraction.
double thin_pairs(Trace& a, Trace& b, double target_fraction,
                  std::uint64_t seed);

}  // namespace cosched

// Trace-level job description.
//
// A JobSpec is what a workload trace contains: static facts about a job known
// at submission (plus its actual runtime, which the simulator reveals only at
// completion).  Runtime scheduling state lives in sched::Job, not here.
#pragma once

#include <cstdint>
#include <string>

#include "util/types.h"

namespace cosched {

/// Identifier of a coscheduling group.  Jobs sharing a group id (on different
/// systems) are "associated" in the paper's sense and must start together.
using GroupId = std::int64_t;

/// Sentinel meaning "not associated with any other job".
inline constexpr GroupId kNoGroup = -1;

struct JobSpec {
  /// Trace-local identifier (unique within one system's trace).
  JobId id = kNoJob;

  /// Submission (arrival) time.
  Time submit = 0;

  /// Actual runtime.  The scheduler does not see this until the job ends.
  Duration runtime = 0;

  /// User-requested walltime; schedulers use it for backfill estimates.
  /// Always >= 1; usually >= runtime (jobs hitting the limit are killed at
  /// walltime by real systems; we model runtime = min(runtime, walltime)).
  Duration walltime = 0;

  /// Requested node count.
  NodeCount nodes = 0;

  /// Coscheduling group (kNoGroup for regular jobs).
  GroupId group = kNoGroup;

  /// Same-domain ordering constraint: this job may not start until job
  /// `after` has finished (SWF "preceding job" field; the paper notes
  /// job-ordering constraints as the temporal dependency RMs already
  /// support, in contrast to co-execution).
  JobId after = kNoJob;

  /// Minimum gap between `after`'s completion and this job's earliest start
  /// (SWF "think time").  Ignored when `after` is kNoJob.
  Duration after_delay = 0;

  /// Trace user id (kept for SWF round-trips; not used by schedulers).
  std::int32_t user = 0;

  bool is_paired() const { return group != kNoGroup; }
  bool has_dependency() const { return after != kNoJob; }
};

}  // namespace cosched

// A workload trace: an ordered collection of jobs destined for one system.
#pragma once

#include <string>
#include <vector>

#include "workload/job.h"

namespace cosched {

/// Aggregate statistics over a trace (see Trace::stats()).
struct TraceStats {
  std::size_t job_count = 0;
  std::size_t paired_count = 0;
  Time first_submit = 0;
  Time last_submit = 0;
  Duration span = 0;             ///< last_submit - first_submit
  double total_node_seconds = 0; ///< sum over jobs of nodes * runtime
  NodeCount min_nodes = 0;
  NodeCount max_nodes = 0;
  double mean_nodes = 0;
  double mean_runtime = 0;
  /// Offered load against `capacity` over `span`: total_node_seconds /
  /// (capacity * span).  This is the quantity the paper's "system utilization
  /// rate" knobs (0.25/0.50/0.75) control.
  double offered_load(NodeCount capacity) const;
};

/// Jobs submitted to one scheduling domain, sorted by submit time.
class Trace {
 public:
  Trace() = default;
  Trace(std::string system_name, std::vector<JobSpec> jobs);

  const std::string& system_name() const { return name_; }
  void set_system_name(std::string n) { name_ = std::move(n); }

  const std::vector<JobSpec>& jobs() const { return jobs_; }
  std::vector<JobSpec>& jobs() { return jobs_; }
  std::size_t size() const { return jobs_.size(); }
  bool empty() const { return jobs_.empty(); }

  /// Appends a job (call sort_by_submit() afterwards if out of order).
  void add(JobSpec job) { jobs_.push_back(job); }

  /// Sorts by (submit, id); schedulers require non-decreasing submit order.
  void sort_by_submit();

  /// True if jobs are sorted by submit time.
  bool is_sorted() const;

  /// Validates every job (positive nodes/walltime, runtime <= walltime,
  /// unique ids).  Throws ParseError describing the first offending job.
  void validate(NodeCount capacity) const;

  TraceStats stats() const;

 private:
  std::string name_;
  std::vector<JobSpec> jobs_;
};

}  // namespace cosched

#include "workload/pairing.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <unordered_set>

#include "util/error.h"
#include "util/rng.h"

namespace cosched {

namespace {

// Uniformly samples `k` indices out of [0, n) in sorted order.
std::vector<std::size_t> sample_indices(std::size_t n, std::size_t k,
                                        Rng& rng) {
  COSCHED_CHECK(k <= n);
  std::vector<std::size_t> all(n);
  std::iota(all.begin(), all.end(), std::size_t{0});
  // Partial Fisher-Yates.
  for (std::size_t i = 0; i < k; ++i) {
    const auto j = static_cast<std::size_t>(
        rng.uniform_int(static_cast<std::int64_t>(i),
                        static_cast<std::int64_t>(n - 1)));
    std::swap(all[i], all[j]);
  }
  all.resize(k);
  std::sort(all.begin(), all.end());
  return all;
}

}  // namespace

void clear_pairs(Trace& trace) {
  for (JobSpec& j : trace.jobs()) j.group = kNoGroup;
}

PairingResult pair_by_submit_proximity(Trace& a, Trace& b, Duration window,
                                       GroupId first_group) {
  COSCHED_CHECK(window >= 0);
  COSCHED_CHECK(a.is_sorted() && b.is_sorted());
  PairingResult result;
  GroupId next = first_group;
  auto& ja = a.jobs();
  auto& jb = b.jobs();
  std::size_t ib = 0;
  for (auto& x : ja) {
    if (x.is_paired()) continue;
    // Advance past b-jobs too old to match.
    while (ib < jb.size() &&
           (jb[ib].is_paired() || jb[ib].submit < x.submit - window))
      ++ib;
    if (ib >= jb.size()) break;
    if (jb[ib].submit <= x.submit + window) {
      x.group = next;
      jb[ib].group = next;
      ++next;
      ++result.pairs_made;
      ++ib;
    }
  }
  const std::size_t total = ja.size() + jb.size();
  result.paired_fraction =
      total ? 2.0 * static_cast<double>(result.pairs_made) /
                  static_cast<double>(total)
            : 0.0;
  return result;
}

PairingResult pair_by_proportion(Trace& a, Trace& b, double proportion,
                                 std::uint64_t seed, Duration jitter,
                                 GroupId first_group) {
  COSCHED_CHECK(proportion >= 0.0 && proportion <= 1.0);
  clear_pairs(a);
  clear_pairs(b);
  PairingResult result;
  const std::size_t n = std::min(a.size(), b.size());
  const auto k = static_cast<std::size_t>(
      std::llround(proportion * static_cast<double>(n)));
  if (k == 0) return result;

  Rng rng(seed);
  const auto idx_a = sample_indices(a.size(), k, rng);
  const auto idx_b = sample_indices(b.size(), k, rng);
  GroupId next = first_group;
  for (std::size_t i = 0; i < k; ++i) {
    JobSpec& xa = a.jobs()[idx_a[i]];
    JobSpec& xb = b.jobs()[idx_b[i]];
    xa.group = next;
    xb.group = next;
    // Align mate submission as coupled applications do: both sides submitted
    // within the pairing window of each other.
    xb.submit = xa.submit + (jitter > 0 ? rng.uniform_int(0, jitter) : 0);
    ++next;
    ++result.pairs_made;
  }
  b.sort_by_submit();
  const std::size_t total = a.size() + b.size();
  result.paired_fraction =
      total ? 2.0 * static_cast<double>(result.pairs_made) /
                  static_cast<double>(total)
            : 0.0;
  return result;
}

std::size_t group_by_proportion(std::vector<Trace*> traces, double proportion,
                                std::uint64_t seed, Duration jitter,
                                GroupId first_group) {
  COSCHED_CHECK(traces.size() >= 2);
  COSCHED_CHECK(proportion >= 0.0 && proportion <= 1.0);
  for (Trace* t : traces) {
    COSCHED_CHECK(t != nullptr);
    clear_pairs(*t);
  }
  std::size_t n = traces.front()->size();
  for (Trace* t : traces) n = std::min(n, t->size());
  const auto k = static_cast<std::size_t>(
      std::llround(proportion * static_cast<double>(n)));
  if (k == 0) return 0;

  Rng rng(seed);
  std::vector<std::vector<std::size_t>> picks;
  picks.reserve(traces.size());
  for (Trace* t : traces) picks.push_back(sample_indices(t->size(), k, rng));

  GroupId next = first_group;
  for (std::size_t i = 0; i < k; ++i) {
    const JobSpec& anchor = traces.front()->jobs()[picks.front()[i]];
    const Time anchor_submit = anchor.submit;
    for (std::size_t s = 0; s < traces.size(); ++s) {
      JobSpec& j = traces[s]->jobs()[picks[s][i]];
      j.group = next;
      if (s != 0)
        j.submit =
            anchor_submit + (jitter > 0 ? rng.uniform_int(0, jitter) : 0);
    }
    ++next;
  }
  for (std::size_t s = 1; s < traces.size(); ++s) traces[s]->sort_by_submit();
  return k;
}

double thin_pairs(Trace& a, Trace& b, double target_fraction,
                  std::uint64_t seed) {
  COSCHED_CHECK(target_fraction >= 0.0 && target_fraction <= 1.0);
  std::vector<GroupId> groups;
  for (const JobSpec& j : a.jobs())
    if (j.is_paired()) groups.push_back(j.group);

  const std::size_t total = a.size() + b.size();
  if (total == 0) return 0.0;
  const auto keep_target = static_cast<std::size_t>(
      target_fraction * static_cast<double>(total) / 2.0);
  if (groups.size() <= keep_target)
    return 2.0 * static_cast<double>(groups.size()) /
           static_cast<double>(total);

  // Shuffle and unpair the surplus groups.
  Rng rng(seed);
  for (std::size_t i = groups.size(); i > 1; --i) {
    const auto j = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(i - 1)));
    std::swap(groups[i - 1], groups[j]);
  }
  std::unordered_set<GroupId> drop(groups.begin() + keep_target,
                                   groups.end());
  for (Trace* t : {&a, &b})
    for (JobSpec& j : t->jobs())
      if (j.is_paired() && drop.count(j.group)) j.group = kNoGroup;
  return 2.0 * static_cast<double>(keep_target) / static_cast<double>(total);
}

}  // namespace cosched

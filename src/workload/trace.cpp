#include "workload/trace.h"

#include <algorithm>
#include <unordered_set>

#include "util/error.h"

namespace cosched {

double TraceStats::offered_load(NodeCount capacity) const {
  if (capacity <= 0 || span <= 0) return 0.0;
  return total_node_seconds /
         (static_cast<double>(capacity) * static_cast<double>(span));
}

Trace::Trace(std::string system_name, std::vector<JobSpec> jobs)
    : name_(std::move(system_name)), jobs_(std::move(jobs)) {
  sort_by_submit();
}

void Trace::sort_by_submit() {
  std::stable_sort(jobs_.begin(), jobs_.end(),
                   [](const JobSpec& a, const JobSpec& b) {
                     if (a.submit != b.submit) return a.submit < b.submit;
                     return a.id < b.id;
                   });
}

bool Trace::is_sorted() const {
  return std::is_sorted(jobs_.begin(), jobs_.end(),
                        [](const JobSpec& a, const JobSpec& b) {
                          return a.submit < b.submit;
                        });
}

void Trace::validate(NodeCount capacity) const {
  std::unordered_set<JobId> seen;
  for (const JobSpec& j : jobs_) {
    if (j.id == kNoJob)
      throw ParseError("trace " + name_ + ": job without id");
    if (!seen.insert(j.id).second)
      throw ParseError("trace " + name_ + ": duplicate job id " +
                       std::to_string(j.id));
    if (j.nodes <= 0)
      throw ParseError("trace " + name_ + ": job " + std::to_string(j.id) +
                       " has non-positive node count");
    if (j.nodes > capacity)
      throw ParseError("trace " + name_ + ": job " + std::to_string(j.id) +
                       " requests " + std::to_string(j.nodes) +
                       " nodes > capacity " + std::to_string(capacity));
    if (j.walltime <= 0)
      throw ParseError("trace " + name_ + ": job " + std::to_string(j.id) +
                       " has non-positive walltime");
    if (j.runtime <= 0)
      throw ParseError("trace " + name_ + ": job " + std::to_string(j.id) +
                       " has non-positive runtime");
    if (j.runtime > j.walltime)
      throw ParseError("trace " + name_ + ": job " + std::to_string(j.id) +
                       " has runtime > walltime");
    if (j.submit < 0)
      throw ParseError("trace " + name_ + ": job " + std::to_string(j.id) +
                       " has negative submit time");
  }
}

TraceStats Trace::stats() const {
  TraceStats s;
  s.job_count = jobs_.size();
  if (jobs_.empty()) return s;
  s.first_submit = jobs_.front().submit;
  s.last_submit = jobs_.front().submit;
  s.min_nodes = jobs_.front().nodes;
  s.max_nodes = jobs_.front().nodes;
  double node_sum = 0, runtime_sum = 0;
  for (const JobSpec& j : jobs_) {
    s.first_submit = std::min(s.first_submit, j.submit);
    s.last_submit = std::max(s.last_submit, j.submit);
    s.min_nodes = std::min(s.min_nodes, j.nodes);
    s.max_nodes = std::max(s.max_nodes, j.nodes);
    s.total_node_seconds +=
        static_cast<double>(j.nodes) * static_cast<double>(j.runtime);
    node_sum += static_cast<double>(j.nodes);
    runtime_sum += static_cast<double>(j.runtime);
    if (j.is_paired()) ++s.paired_count;
  }
  s.span = s.last_submit - s.first_submit;
  s.mean_nodes = node_sum / static_cast<double>(jobs_.size());
  s.mean_runtime = runtime_sum / static_cast<double>(jobs_.size());
  return s;
}

}  // namespace cosched

#include "workload/scaling.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "util/error.h"

namespace cosched {

double offered_load(const Trace& trace, NodeCount capacity) {
  return trace.stats().offered_load(capacity);
}

void scale_arrival_intervals(Trace& trace, double factor) {
  COSCHED_CHECK(factor > 0);
  auto& jobs = trace.jobs();
  if (jobs.size() < 2) return;
  COSCHED_CHECK_MSG(trace.is_sorted(), "scale requires a sorted trace");
  const Time base = jobs.front().submit;
  double acc = static_cast<double>(base);
  Time prev_orig = base;
  for (std::size_t i = 1; i < jobs.size(); ++i) {
    const Time orig = jobs[i].submit;
    acc += static_cast<double>(orig - prev_orig) * factor;
    prev_orig = orig;
    jobs[i].submit = static_cast<Time>(std::llround(acc));
  }
}

double scale_to_offered_load(Trace& trace, NodeCount capacity,
                             double target_load) {
  COSCHED_CHECK(target_load > 0);
  const double current = offered_load(trace, capacity);
  if (current <= 0)
    throw Error("scale_to_offered_load: trace has no measurable load");
  // Load is inversely proportional to the span, which is proportional to the
  // interval scale factor.
  const double factor = current / target_load;
  scale_arrival_intervals(trace, factor);
  return factor;
}

void truncate_to_span(Trace& trace, Duration span) {
  auto& jobs = trace.jobs();
  if (jobs.empty()) return;
  const Time cutoff = jobs.front().submit + span;
  jobs.erase(std::remove_if(jobs.begin(), jobs.end(),
                            [&](const JobSpec& j) { return j.submit >= cutoff; }),
             jobs.end());
}

}  // namespace cosched

// Trace load scaling — the paper's method for producing the 0.25/0.50/0.75
// Eureka workloads: "we multiplied a same fraction to each job arrival
// interval in the real Eureka trace, so that the shape of job arrival
// distribution was the same with the real trace" (§V-D).
#pragma once

#include "util/types.h"
#include "workload/trace.h"

namespace cosched {

/// Returns the offered load of `trace` against a system of `capacity` nodes,
/// measured over the submission span.
double offered_load(const Trace& trace, NodeCount capacity);

/// Multiplies every interarrival interval by `factor` (> 0), preserving the
/// arrival-distribution shape.  factor < 1 compresses (raises load).
void scale_arrival_intervals(Trace& trace, double factor);

/// Scales arrival intervals by one constant factor so the trace's offered
/// load against `capacity` equals `target_load`.  Returns the factor used.
/// Throws Error if the trace is empty or has zero work.
double scale_to_offered_load(Trace& trace, NodeCount capacity,
                             double target_load);

/// Truncates the trace to jobs submitted in [0, span), renumbering nothing.
void truncate_to_span(Trace& trace, Duration span);

}  // namespace cosched

// Synthetic workload generation calibrated to the paper's systems.
//
// The real 2010 Intrepid/Eureka traces are not public, so we generate
// statistically comparable workloads (see DESIGN.md §2).  Calibration targets
// taken from the paper:
//  * Intrepid: 40,960 nodes; one month of trace contains 9,219 jobs; job
//    sizes range 512..32,768 nodes (BG/P partition sizes); load high/stable.
//  * Eureka: 100 nodes; job sizes 1..100 nodes; load low and tunable — the
//    paper packs multiple months into one by scaling arrival intervals.
//
// Job sizes follow a discrete weighted distribution (HPC size histograms are
// dominated by small-to-medium jobs); runtimes are log-normal (the classic
// heavy-tailed shape of supercomputer runtimes) truncated to [min,max];
// walltime is runtime inflated by a user overestimate factor; arrivals are
// Poisson, with the rate chosen to hit a target offered load exactly.
#pragma once

#include <string>
#include <vector>

#include "util/rng.h"
#include "util/types.h"
#include "workload/trace.h"

namespace cosched {

/// One entry of a discrete job-size distribution.
struct SizeBucket {
  NodeCount nodes;
  double weight;
};

/// Statistical model of one system's workload.
struct SystemModel {
  std::string name;
  NodeCount capacity = 0;

  /// Discrete size distribution (weights need not sum to 1).
  std::vector<SizeBucket> sizes;

  /// Log-normal runtime parameters (of the underlying normal, in log-seconds)
  /// and truncation bounds.
  double runtime_log_mean = 0.0;
  double runtime_log_sigma = 1.0;
  Duration runtime_min = 60;
  Duration runtime_max = 12 * kHour;

  /// Walltime = runtime * U(1, 1 + walltime_slack), rounded up to 5 minutes.
  double walltime_slack = 2.0;

  /// Expected node-seconds of one job under this model (for rate calibration).
  double mean_job_node_seconds() const;

  /// Mean of the truncated log-normal runtime, estimated analytically from
  /// the untruncated mean clamped into [min,max] bounds via simple numeric
  /// integration over the size-independent runtime distribution.
  double mean_runtime_seconds() const;
};

/// Blue Gene/P "Intrepid"-like model (40,960 nodes, partition-sized jobs).
SystemModel intrepid_model();

/// Visualization-cluster "Eureka"-like model (100 nodes, 1..100-node jobs).
SystemModel eureka_model();

/// Parameters for trace synthesis.
struct SynthParams {
  /// Number of jobs to generate.  If 0, derived from span & offered load.
  std::size_t job_count = 0;

  /// Trace span (submission window).  Default: one month, as in the paper.
  Duration span = 30 * kDay;

  /// Target offered load (total node-seconds / (capacity * span)).
  double offered_load = 0.5;

  std::uint64_t seed = 1;
};

/// Generates a trace under `model`.  If params.job_count == 0, the count is
/// chosen so Poisson arrivals at the calibrated rate fill the span; else the
/// arrival intervals are scaled so that exactly job_count jobs with the
/// calibrated per-job work hit the requested offered load over the span.
Trace generate_trace(const SystemModel& model, const SynthParams& params);

}  // namespace cosched

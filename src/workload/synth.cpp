#include "workload/synth.h"

#include <algorithm>
#include <cmath>

#include "util/error.h"

namespace cosched {

namespace {

// Draws a size from the discrete weighted distribution.
NodeCount draw_size(const std::vector<SizeBucket>& sizes, Rng& rng) {
  double total = 0;
  for (const auto& b : sizes) total += b.weight;
  double r = rng.uniform() * total;
  for (const auto& b : sizes) {
    r -= b.weight;
    if (r <= 0) return b.nodes;
  }
  return sizes.back().nodes;
}

Duration draw_runtime(const SystemModel& m, Rng& rng) {
  const double r = rng.lognormal(m.runtime_log_mean, m.runtime_log_sigma);
  const auto clamped = static_cast<Duration>(std::llround(r));
  return std::clamp(clamped, m.runtime_min, m.runtime_max);
}

}  // namespace

double SystemModel::mean_runtime_seconds() const {
  // Numeric expectation of clamp(LogNormal(mu, sigma), min, max) using
  // midpoint integration over the standard normal in [-6, 6] sigma.
  const int kSteps = 2000;
  double acc = 0, wacc = 0;
  for (int i = 0; i < kSteps; ++i) {
    const double z = -6.0 + 12.0 * (i + 0.5) / kSteps;
    const double w = std::exp(-0.5 * z * z);
    const double r = std::exp(runtime_log_mean + runtime_log_sigma * z);
    const double clamped =
        std::clamp(r, static_cast<double>(runtime_min),
                   static_cast<double>(runtime_max));
    acc += w * clamped;
    wacc += w;
  }
  return acc / wacc;
}

double SystemModel::mean_job_node_seconds() const {
  COSCHED_CHECK(!sizes.empty());
  double total_w = 0, mean_nodes = 0;
  for (const auto& b : sizes) {
    total_w += b.weight;
    mean_nodes += b.weight * static_cast<double>(b.nodes);
  }
  mean_nodes /= total_w;
  return mean_nodes * mean_runtime_seconds();
}

SystemModel intrepid_model() {
  SystemModel m;
  m.name = "intrepid";
  m.capacity = 40960;
  // BG/P partition sizes; weights shaped like production Intrepid histograms:
  // most jobs are 512-2048 nodes, capability jobs (>=8K) are rare but carry
  // much of the node-hour volume.  The paper reports Intrepid job sizes of
  // 512..32,768 nodes — no full-machine (40,960) jobs appear in the trace.
  m.sizes = {
      {512, 0.40}, {1024, 0.25}, {2048, 0.15}, {4096, 0.10},
      {8192, 0.06}, {16384, 0.025}, {32768, 0.015},
  };
  // Median runtime ~35 min, heavy tail up to 12 h (INCITE jobs).
  m.runtime_log_mean = std::log(2100.0);
  m.runtime_log_sigma = 1.15;
  m.runtime_min = 2 * kMinute;
  m.runtime_max = 12 * kHour;
  m.walltime_slack = 2.0;
  return m;
}

SystemModel eureka_model() {
  SystemModel m;
  m.name = "eureka";
  m.capacity = 100;
  // Visualization jobs: mostly a handful of nodes, occasionally the full
  // cluster.
  m.sizes = {
      {1, 0.30}, {2, 0.15}, {4, 0.15}, {8, 0.12}, {16, 0.10},
      {32, 0.08}, {64, 0.06}, {100, 0.04},
  };
  // Shorter interactive-analysis runtimes, median ~20 min.
  m.runtime_log_mean = std::log(1200.0);
  m.runtime_log_sigma = 1.0;
  m.runtime_min = 1 * kMinute;
  m.runtime_max = 8 * kHour;
  m.walltime_slack = 2.0;
  return m;
}

Trace generate_trace(const SystemModel& model, const SynthParams& params) {
  COSCHED_CHECK(model.capacity > 0);
  COSCHED_CHECK(params.span > 0);
  COSCHED_CHECK(params.offered_load > 0);
  Rng rng(params.seed);

  const double mean_job_work = model.mean_job_node_seconds();
  const double target_node_seconds = params.offered_load *
                                     static_cast<double>(model.capacity) *
                                     static_cast<double>(params.span);
  std::size_t count = params.job_count;
  if (count == 0)
    count = static_cast<std::size_t>(std::max<long long>(
        1, std::llround(target_node_seconds / mean_job_work)));

  // Poisson arrivals across the span.
  const double mean_interarrival =
      static_cast<double>(params.span) / static_cast<double>(count);

  Trace trace;
  trace.set_system_name(model.name);
  double t = 0.0;
  for (std::size_t i = 0; i < count; ++i) {
    t += rng.exponential(mean_interarrival);
    JobSpec j;
    j.id = static_cast<JobId>(i + 1);
    j.submit = static_cast<Time>(std::llround(t));
    j.nodes = draw_size(model.sizes, rng);
    j.runtime = draw_runtime(model, rng);
    const double slack = rng.uniform(1.0, 1.0 + model.walltime_slack);
    Duration wall = static_cast<Duration>(
        std::llround(static_cast<double>(j.runtime) * slack));
    // Round walltime up to 5-minute granularity, as users do.
    wall = ((wall + 5 * kMinute - 1) / (5 * kMinute)) * (5 * kMinute);
    j.walltime = std::max<Duration>(wall, j.runtime);
    j.user = static_cast<std::int32_t>(rng.uniform_int(1, 200));
    trace.add(j);
  }

  // Calibrate: rescale arrival intervals so the realized offered load over
  // the realized span equals the target (the paper's scaling method), then
  // rescale the span back to the requested window.
  trace.sort_by_submit();
  TraceStats s = trace.stats();
  if (s.span > 0 && s.total_node_seconds > 0) {
    // First stretch submissions to exactly fill the requested span.
    const double span_scale =
        static_cast<double>(params.span) / static_cast<double>(s.span);
    for (JobSpec& j : trace.jobs())
      j.submit = static_cast<Time>(std::llround(
          static_cast<double>(j.submit - s.first_submit) * span_scale));
    // Offered load is then total_work / (capacity * span); stretch again by
    // the remaining load ratio.
    s = trace.stats();
    const double load = s.offered_load(model.capacity);
    if (load > 0) {
      const double load_scale = load / params.offered_load;
      for (JobSpec& j : trace.jobs())
        j.submit = static_cast<Time>(
            std::llround(static_cast<double>(j.submit) * load_scale));
    }
  }
  trace.sort_by_submit();
  return trace;
}

}  // namespace cosched

// Standard Workload Format (SWF) v2 reader/writer.
//
// The paper evaluates on the 2010 Intrepid and Eureka traces, which are not
// public; the Parallel Workloads Archive distributes comparable traces (e.g.
// "ANL Intrepid 2009") in SWF.  This module lets real archive traces be
// dropped into every bench in place of our calibrated synthetic traces.
//
// SWF is a line-oriented text format: comment/header lines start with ';',
// data lines have 18 whitespace-separated fields:
//   1 job number          7 used memory         13 user id
//   2 submit time         8 requested procs     14 group id
//   3 wait time           9 requested time      15 executable
//   4 run time           10 requested memory    16 queue
//   5 allocated procs    11 status              17 partition
//   6 avg cpu time       12 (unused here)       18 preceding job / think time
// Missing values are -1.
#pragma once

#include <iosfwd>
#include <string>

#include "workload/trace.h"

namespace cosched {

struct SwfReadOptions {
  /// Treat "processors" in the file as nodes after dividing by this factor
  /// (e.g. 4 for a quad-core-per-node system whose trace counts cores).
  int procs_per_node = 1;

  /// Jobs with missing runtime (-1) are dropped when true, else rejected.
  bool drop_invalid = true;

  /// When the requested-procs field is missing, fall back to allocated procs.
  bool fallback_to_allocated = true;

  /// Clamp runtime to walltime (real systems kill jobs at the limit).
  bool clamp_runtime_to_walltime = true;
};

/// Parses an SWF stream into a trace.  Throws ParseError on malformed lines.
Trace read_swf(std::istream& in, const std::string& system_name,
               const SwfReadOptions& options = {});

/// Reads an SWF file from disk.  Throws Error if the file cannot be opened.
Trace read_swf_file(const std::string& path, const std::string& system_name,
                    const SwfReadOptions& options = {});

/// Writes a trace as SWF (submit/run/requested fields; wait and status are
/// emitted as -1/1 since a trace is pre-scheduling input here).
/// Paired-group ids are preserved in a `; cosched-group:` header extension
/// so write/read round-trips keep associations.
void write_swf(std::ostream& out, const Trace& trace);

void write_swf_file(const std::string& path, const Trace& trace);

}  // namespace cosched

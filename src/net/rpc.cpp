#include "net/rpc.h"

#include <algorithm>
#include <thread>

#include "util/log.h"

namespace cosched {

namespace {
using Clock = std::chrono::steady_clock;
}  // namespace

const char* to_string(BreakerState s) {
  switch (s) {
    case BreakerState::kClosed: return "closed";
    case BreakerState::kOpen: return "open";
    case BreakerState::kHalfOpen: return "half-open";
  }
  return "?";
}

WirePeer::WirePeer(FramedChannel channel, WirePeerConfig config)
    : config_(config),
      channel_(std::move(channel)),
      jitter_rng_(config.jitter_seed) {
  channel_->set_read_deadline_ms(config_.call_deadline_ms);
  channel_->set_write_deadline_ms(config_.call_deadline_ms);
}

WirePeer::WirePeer(ChannelFactory factory, WirePeerConfig config)
    : config_(config),
      factory_(std::move(factory)),
      jitter_rng_(config.jitter_seed) {}

bool WirePeer::healthy() const {
  MutexLock lock(mutex_);
  return state_ == BreakerState::kClosed;
}

BreakerState WirePeer::breaker_state() const {
  MutexLock lock(mutex_);
  return state_;
}

WirePeer::TransportStats WirePeer::stats() const {
  MutexLock lock(mutex_);
  return stats_;
}

std::optional<std::uint64_t> WirePeer::server_incarnation() const {
  MutexLock lock(mutex_);
  return server_incarnation_;
}

bool WirePeer::ensure_channel() {
  if (!channel_) {
    if (!factory_) return false;
    auto fresh = factory_();
    if (!fresh) return false;
    channel_.emplace(std::move(*fresh));
    channel_->set_read_deadline_ms(config_.call_deadline_ms);
    channel_->set_write_deadline_ms(config_.call_deadline_ms);
    ++stats_.reconnects;
    hello_done_ = false;
  }
  // Incarnation handshake, once per connection, before any protocol call.
  // Learning the server's incarnation here is what lets attempt() reject
  // stale replies if the server restarts mid-conversation.
  if (config_.incarnation != 0 && !hello_done_) {
    ++stats_.hellos;
    const auto resp =
        attempt(make_hello_req(next_rid_++, config_.incarnation),
                MsgType::kHelloResp);
    if (!resp) return false;  // attempt() already dropped the channel
    server_incarnation_ = resp->incarnation;
    hello_done_ = true;
  }
  return true;
}

int WirePeer::backoff_ms(int attempt) {
  // Exponential: base * 2^(attempt-1), capped, with +/- jitter so a fleet of
  // peers retrying against one recovering daemon does not stampede in sync.
  double ms = static_cast<double>(config_.retry.base_backoff_ms);
  for (int i = 1; i < attempt; ++i) ms *= 2.0;
  ms = std::min(ms, static_cast<double>(config_.retry.max_backoff_ms));
  const double j = config_.retry.jitter;
  if (j > 0.0) ms *= jitter_rng_.uniform(1.0 - j, 1.0 + j);
  return std::max(0, static_cast<int>(ms));
}

void WirePeer::record_failure() {
  ++stats_.failed_calls;
  if (state_ == BreakerState::kHalfOpen) {
    // Probe failed: back to open for another cooldown.
    state_ = BreakerState::kOpen;
    ++stats_.breaker_opens;
    open_until_ =
        Clock::now() + std::chrono::milliseconds(config_.breaker.open_cooldown_ms);
    return;
  }
  ++consecutive_failures_;
  // With no reconnect path a lost channel can never heal on its own, so the
  // breaker opens immediately rather than burning the remaining threshold.
  const bool unrecoverable = !channel_ && !factory_;
  if (consecutive_failures_ >= config_.breaker.failure_threshold ||
      unrecoverable) {
    state_ = BreakerState::kOpen;
    ++stats_.breaker_opens;
    open_until_ =
        Clock::now() + std::chrono::milliseconds(config_.breaker.open_cooldown_ms);
  }
}

void WirePeer::record_success() {
  consecutive_failures_ = 0;
  if (state_ != BreakerState::kClosed) {
    state_ = BreakerState::kClosed;
    ++stats_.breaker_closes;
  }
}

std::optional<Message> WirePeer::attempt(const Message& req, MsgType expect) {
  ++stats_.attempts;
  try {
    channel_->write_frame(req.encode());
    const auto frame = channel_->read_frame();
    if (!frame) {
      COSCHED_LOG(kWarn) << "wire peer: connection closed by remote";
      channel_.reset();
      hello_done_ = false;
      return std::nullopt;
    }
    Message resp = Message::decode(*frame);
    if (resp.type != expect || resp.request_id != req.request_id) {
      // A stray or mismatched reply means the stream lost call/response
      // alignment (e.g. a late answer to a timed-out request); only a fresh
      // connection restores it.
      COSCHED_LOG(kWarn) << "wire peer: unexpected response";
      channel_.reset();
      hello_done_ = false;
      return std::nullopt;
    }
    // Even a well-aligned reply is stale if the server restarted since this
    // connection's hello: its verdict belongs to a dead incarnation's state.
    // Drop the channel so the next attempt re-handshakes.
    if (config_.incarnation != 0 && hello_done_ &&
        resp.incarnation != *server_incarnation_) {
      ++stats_.stale_rejected;
      COSCHED_LOG(kWarn) << "wire peer: stale response (server incarnation "
                         << resp.incarnation << " != handshaken "
                         << *server_incarnation_ << ")";
      channel_.reset();
      hello_done_ = false;
      return std::nullopt;
    }
    return resp;
  } catch (const TimeoutError& e) {
    ++stats_.timeouts;
    COSCHED_LOG(kWarn) << "wire peer: " << e.what();
    // The reply may still arrive later and would desync the next call.
    channel_.reset();
    hello_done_ = false;
    return std::nullopt;
  } catch (const std::exception& e) {
    COSCHED_LOG(kWarn) << "wire peer: transport failure: " << e.what();
    channel_.reset();
    hello_done_ = false;
    return std::nullopt;
  }
}

std::optional<Message> WirePeer::round_trip(Message req, MsgType expect) {
  MutexLock lock(mutex_);
  ++stats_.calls;
  req.incarnation = config_.incarnation;

  bool probing = false;
  if (state_ == BreakerState::kOpen) {
    if (Clock::now() < open_until_) {
      ++stats_.fast_fails;
      return std::nullopt;  // fast fail: remote is known-down
    }
    state_ = BreakerState::kHalfOpen;
    probing = true;
  } else if (state_ == BreakerState::kHalfOpen) {
    probing = true;
  }

  // Half-open admits exactly one attempt: either it heals the breaker or it
  // re-opens for another cooldown.
  const int max_attempts =
      probing ? 1 : std::max(1, config_.retry.max_attempts);
  for (int att = 1; att <= max_attempts; ++att) {
    if (att > 1) {
      ++stats_.retries;
      std::this_thread::sleep_for(std::chrono::milliseconds(backoff_ms(att - 1)));
    }
    if (!ensure_channel()) {
      if (!factory_) break;  // nothing to retry against
      continue;
    }
    if (auto resp = attempt(req, expect)) {
      record_success();
      return resp;
    }
  }
  record_failure();
  return std::nullopt;
}

std::optional<std::optional<JobId>> WirePeer::get_mate_job(GroupId group,
                                                           JobId asking) {
  const auto resp = round_trip(make_get_mate_job_req(next_rid_++, group, asking),
                               MsgType::kGetMateJobResp);
  if (!resp) return std::nullopt;
  // in_place distinguishes "reachable, no mate" from transport failure.
  if (!resp->found)
    return std::optional<std::optional<JobId>>(std::in_place, std::nullopt);
  return std::optional<std::optional<JobId>>(std::in_place, resp->job);
}

std::optional<MateStatus> WirePeer::get_mate_status(JobId mate) {
  const auto resp = round_trip(make_get_mate_status_req(next_rid_++, mate),
                               MsgType::kGetMateStatusResp);
  if (!resp) return std::nullopt;
  return resp->status;
}

std::optional<bool> WirePeer::try_start_mate(JobId mate) {
  auto req = make_try_start_mate_req(next_rid_++, mate);
  req.fence = fence_token_.load();
  const auto resp = round_trip(req, MsgType::kTryStartMateResp);
  if (!resp) return std::nullopt;
  return resp->ok;
}

std::optional<bool> WirePeer::start_job(JobId job) {
  auto req = make_start_job_req(next_rid_++, job);
  req.fence = fence_token_.load();
  const auto resp = round_trip(req, MsgType::kStartJobResp);
  if (!resp) return std::nullopt;
  return resp->ok;
}

std::optional<bool> WirePeer::gang_prepare(JobId job, GroupId group) {
  auto req = make_gang_prepare_req(next_rid_++, job, group);
  req.fence = fence_token_.load();
  const auto resp = round_trip(req, MsgType::kGangPrepareResp);
  if (!resp) return std::nullopt;
  return resp->ok;
}

std::optional<bool> WirePeer::gang_commit(JobId job, GroupId group) {
  auto req = make_gang_commit_req(next_rid_++, job, group);
  req.fence = fence_token_.load();
  const auto resp = round_trip(req, MsgType::kGangCommitResp);
  if (!resp) return std::nullopt;
  return resp->ok;
}

std::optional<bool> WirePeer::gang_abort(JobId job, GroupId group) {
  auto req = make_gang_abort_req(next_rid_++, job, group);
  req.fence = fence_token_.load();
  const auto resp = round_trip(req, MsgType::kGangAbortResp);
  if (!resp) return std::nullopt;
  return resp->ok;
}

std::optional<bool> WirePeer::gang_victim(JobId job, GroupId group) {
  auto req = make_gang_victim_req(next_rid_++, job, group);
  req.fence = fence_token_.load();
  const auto resp = round_trip(req, MsgType::kGangVictimResp);
  if (!resp) return std::nullopt;
  return resp->ok;
}

std::optional<HeartbeatInfo> WirePeer::heartbeat(const HeartbeatInfo& mine) {
  const auto resp = round_trip(make_heartbeat_req(next_rid_++, mine),
                               MsgType::kHeartbeatResp);
  if (!resp) return std::nullopt;
  HeartbeatInfo theirs;
  theirs.incarnation = resp->hb_incarnation;
  theirs.fence = resp->fence;
  theirs.queue_depth = resp->queue_depth;
  theirs.hold_fraction = resp->hold_fraction;
  return theirs;
}

void serve_channel(FramedChannel& channel, CoschedService& service,
                   DispatcherConfig config) {
  ServiceDispatcher dispatcher(service, config);
  for (;;) {
    std::optional<std::vector<std::uint8_t>> frame;
    try {
      frame = channel.read_frame();
    } catch (const MidFrameTimeout& e) {
      // Stream desynchronized: further reads would parse garbage.
      COSCHED_LOG(kWarn) << "serve_channel: " << e.what();
      return;
    } catch (const TimeoutError&) {
      continue;  // idle client at a frame boundary; keep serving
    } catch (const std::exception& e) {
      COSCHED_LOG(kWarn) << "serve_channel: read failure: " << e.what();
      return;
    }
    if (!frame) return;  // clean EOF
    try {
      channel.write_frame(dispatcher.dispatch(*frame));
    } catch (const std::exception& e) {
      COSCHED_LOG(kWarn) << "serve_channel: write failure: " << e.what();
      return;
    }
  }
}

}  // namespace cosched

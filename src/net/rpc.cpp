#include "net/rpc.h"

#include "util/log.h"

namespace cosched {

std::optional<Message> WirePeer::round_trip(const Message& req,
                                            MsgType expect) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (!healthy_.load()) return std::nullopt;
  try {
    channel_.write_frame(req.encode());
    const auto frame = channel_.read_frame();
    if (!frame) {
      healthy_ = false;
      return std::nullopt;
    }
    Message resp = Message::decode(*frame);
    if (resp.type != expect || resp.request_id != req.request_id) {
      COSCHED_LOG(kWarn) << "wire peer: unexpected response";
      return std::nullopt;
    }
    return resp;
  } catch (const std::exception& e) {
    COSCHED_LOG(kWarn) << "wire peer: transport failure: " << e.what();
    healthy_ = false;
    return std::nullopt;
  }
}

std::optional<std::optional<JobId>> WirePeer::get_mate_job(GroupId group,
                                                           JobId asking) {
  const auto resp = round_trip(make_get_mate_job_req(next_rid_++, group, asking),
                               MsgType::kGetMateJobResp);
  if (!resp) return std::nullopt;
  // in_place distinguishes "reachable, no mate" from transport failure.
  if (!resp->found)
    return std::optional<std::optional<JobId>>(std::in_place, std::nullopt);
  return std::optional<std::optional<JobId>>(std::in_place, resp->job);
}

std::optional<MateStatus> WirePeer::get_mate_status(JobId mate) {
  const auto resp = round_trip(make_get_mate_status_req(next_rid_++, mate),
                               MsgType::kGetMateStatusResp);
  if (!resp) return std::nullopt;
  return resp->status;
}

std::optional<bool> WirePeer::try_start_mate(JobId mate) {
  const auto resp = round_trip(make_try_start_mate_req(next_rid_++, mate),
                               MsgType::kTryStartMateResp);
  if (!resp) return std::nullopt;
  return resp->ok;
}

std::optional<bool> WirePeer::start_job(JobId job) {
  const auto resp = round_trip(make_start_job_req(next_rid_++, job),
                               MsgType::kStartJobResp);
  if (!resp) return std::nullopt;
  return resp->ok;
}

void serve_channel(FramedChannel& channel, CoschedService& service) {
  ServiceDispatcher dispatcher(service);
  for (;;) {
    std::optional<std::vector<std::uint8_t>> frame;
    try {
      frame = channel.read_frame();
    } catch (const std::exception& e) {
      COSCHED_LOG(kWarn) << "serve_channel: read failure: " << e.what();
      return;
    }
    if (!frame) return;  // clean EOF
    try {
      channel.write_frame(dispatcher.dispatch(*frame));
    } catch (const std::exception& e) {
      COSCHED_LOG(kWarn) << "serve_channel: write failure: " << e.what();
      return;
    }
  }
}

}  // namespace cosched

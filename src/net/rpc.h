// Blocking request/response endpoints binding the coordination protocol to
// a framed stream channel — the live-daemon transport.
#pragma once

#include <atomic>
#include <memory>
#include <mutex>

#include "net/framed.h"
#include "proto/peer.h"
#include "proto/service.h"

namespace cosched {

/// Socket-backed PeerClient: one request in flight at a time (the protocol
/// is strictly call/response).  Thread-safe; transport errors report as
/// nullopt ("remote unknown") and mark the peer down, matching the paper's
/// fault-tolerance rule that a job never waits on a dead remote.
class WirePeer final : public PeerClient {
 public:
  explicit WirePeer(FramedChannel channel) : channel_(std::move(channel)) {}

  std::optional<std::optional<JobId>> get_mate_job(GroupId group,
                                                   JobId asking) override;
  std::optional<MateStatus> get_mate_status(JobId mate) override;
  std::optional<bool> try_start_mate(JobId mate) override;
  std::optional<bool> start_job(JobId job) override;

  bool healthy() const { return healthy_.load(); }

 private:
  std::optional<Message> round_trip(const Message& req, MsgType expect);

  std::mutex mutex_;
  FramedChannel channel_;
  std::uint64_t next_rid_ = 1;
  std::atomic<bool> healthy_{true};
};

/// Serves protocol requests from one channel until EOF or error.
/// Runs on the caller's thread; intended for a dedicated server thread.
void serve_channel(FramedChannel& channel, CoschedService& service);

}  // namespace cosched

// Blocking request/response endpoints binding the coordination protocol to
// a framed stream channel — the live-daemon transport.
//
// Failure handling implements the paper's §IV-C rule mechanically: any
// transport problem (hang, disconnect, garbage) surfaces to the caller as
// nullopt ("remote unknown"), so Algorithm 1 starts the local job instead of
// waiting.  Recovery is automatic: a circuit breaker fast-fails calls while
// the remote is down and periodically probes (reconnecting through the
// channel factory) until the remote answers again.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>

#include "net/framed.h"
#include "proto/peer.h"
#include "proto/service.h"
#include "util/mutex.h"
#include "util/rng.h"

namespace cosched {

/// Bounded-retry policy for one protocol call.
struct RetryConfig {
  int max_attempts = 3;       ///< total tries per call (>= 1)
  int base_backoff_ms = 10;   ///< sleep before the 2nd attempt
  int max_backoff_ms = 500;   ///< exponential backoff ceiling
  double jitter = 0.25;       ///< +/- fraction applied to each backoff
};

/// Circuit breaker guarding a flaky remote.
struct BreakerConfig {
  /// Consecutive *failed calls* (each already retried) that open the
  /// breaker.  A lost channel with no reconnect path opens it immediately.
  int failure_threshold = 3;
  /// While open, calls fast-fail (nullopt) without touching the network
  /// until this cooldown elapses; then one half-open probe is admitted.
  int open_cooldown_ms = 200;
};

struct WirePeerConfig {
  /// Per-attempt receive deadline (ms) for the response frame; also bounds
  /// sends.  0 disables — only safe on loopback test links.
  int call_deadline_ms = 2000;
  RetryConfig retry;
  BreakerConfig breaker;
  /// Seed for backoff jitter (deterministic, per-peer stream).
  std::uint64_t jitter_seed = 0x77199db5u;
  /// This client's incarnation, stamped on every request (scopes request
  /// ids for the server's exactly-once dedup) and exchanged via a hello
  /// handshake on every (re)connection; responses whose server incarnation
  /// differs from the handshaken one are rejected as stale.  0 disables
  /// incarnation semantics entirely (legacy/loopback behaviour).
  std::uint64_t incarnation = 1;
};

enum class BreakerState : std::uint8_t { kClosed = 0, kOpen = 1, kHalfOpen = 2 };

const char* to_string(BreakerState s);

/// Socket-backed PeerClient: one request in flight at a time (the protocol
/// is strictly call/response).  Thread-safe; transport errors report as
/// nullopt ("remote unknown") after bounded retries, matching the paper's
/// fault-tolerance rule that a job never waits on a dead remote.  When
/// constructed with a channel factory the peer re-establishes the
/// connection on the next (half-open) probe after a failure.
class WirePeer final : public PeerClient {
 public:
  /// Returns a fresh connected channel, or nullopt if the remote is
  /// unreachable right now.  Must not block unboundedly.
  using ChannelFactory = std::function<std::optional<FramedChannel>()>;

  explicit WirePeer(FramedChannel channel, WirePeerConfig config = {});

  /// Reconnecting peer: dials lazily on first use and re-dials after
  /// failures (half-open probes).
  explicit WirePeer(ChannelFactory factory, WirePeerConfig config = {});

  std::optional<std::optional<JobId>> get_mate_job(GroupId group,
                                                   JobId asking) override;
  std::optional<MateStatus> get_mate_status(JobId mate) override;
  std::optional<bool> try_start_mate(JobId mate) override;
  std::optional<bool> start_job(JobId job) override;
  std::optional<bool> gang_prepare(JobId job, GroupId group) override;
  std::optional<bool> gang_commit(JobId job, GroupId group) override;
  std::optional<bool> gang_abort(JobId job, GroupId group) override;
  std::optional<bool> gang_victim(JobId job, GroupId group) override;
  std::optional<HeartbeatInfo> heartbeat(const HeartbeatInfo& mine) override;
  /// Atomic: the scheduler thread updates the token from heartbeat acks
  /// while call threads stamp it onto outgoing requests.
  void set_fence_token(std::uint64_t token) override { fence_token_ = token; }

  /// True while the breaker is closed (remote believed reachable).
  bool healthy() const;
  BreakerState breaker_state() const;

  /// Degraded-mode accounting for metrics/reporting.
  struct TransportStats {
    std::uint64_t calls = 0;            ///< protocol calls issued
    std::uint64_t failed_calls = 0;     ///< calls that returned nullopt
    std::uint64_t attempts = 0;         ///< wire round-trips attempted
    std::uint64_t retries = 0;          ///< attempts beyond the first
    std::uint64_t timeouts = 0;         ///< attempts lost to the deadline
    std::uint64_t reconnects = 0;       ///< successful factory re-dials
    std::uint64_t breaker_opens = 0;    ///< closed/half-open -> open
    std::uint64_t breaker_closes = 0;   ///< half-open probe succeeded
    std::uint64_t fast_fails = 0;       ///< calls rejected while open
    std::uint64_t hellos = 0;           ///< incarnation handshakes sent
    std::uint64_t stale_rejected = 0;   ///< responses dropped: wrong server
                                        ///< incarnation (server restarted)
  };
  TransportStats stats() const;

  /// Server incarnation learned from the last completed hello handshake
  /// (nullopt before the first handshake or with incarnation semantics
  /// disabled).
  std::optional<std::uint64_t> server_incarnation() const;

 private:
  std::optional<Message> round_trip(Message req, MsgType expect)
      EXCLUDES(mutex_);
  /// One wire attempt on the current channel.  nullopt = transport failure
  /// (the channel has been dropped).
  std::optional<Message> attempt(const Message& req, MsgType expect)
      REQUIRES(mutex_);
  bool ensure_channel() REQUIRES(mutex_);
  void record_failure() REQUIRES(mutex_);
  void record_success() REQUIRES(mutex_);
  int backoff_ms(int attempt) REQUIRES(mutex_);

  mutable Mutex mutex_;
  WirePeerConfig config_;  ///< immutable after construction
  ChannelFactory factory_ GUARDED_BY(mutex_);
  std::optional<FramedChannel> channel_ GUARDED_BY(mutex_);
  Rng jitter_rng_ GUARDED_BY(mutex_);
  /// Request ids are monotone for the lifetime of this peer (one client
  /// incarnation) and are never reset on reconnect: the server's
  /// exactly-once cache is keyed (client incarnation, rid), so a reused rid
  /// after a reconnect would alias a *different* logical call into an old
  /// verdict.  Response/request matching is instead scoped per connection
  /// plus the server incarnation learned from that connection's hello.
  /// Atomic because requests are built (rid allocated) before round_trip
  /// takes the peer mutex.
  std::atomic<std::uint64_t> next_rid_{1};
  /// Fencing token stamped on side-effecting requests (0 = unfenced).
  std::atomic<std::uint64_t> fence_token_{0};
  /// True once the hello handshake completed on the *current* channel;
  /// cleared whenever the channel drops.
  bool hello_done_ GUARDED_BY(mutex_) = false;
  std::optional<std::uint64_t> server_incarnation_ GUARDED_BY(mutex_);

  BreakerState state_ GUARDED_BY(mutex_) = BreakerState::kClosed;
  int consecutive_failures_ GUARDED_BY(mutex_) = 0;
  std::chrono::steady_clock::time_point open_until_ GUARDED_BY(mutex_){};

  TransportStats stats_ GUARDED_BY(mutex_);
};

/// Serves protocol requests from one channel until EOF or a fatal transport
/// error.  Malformed payloads are answered with kErrorResp (the dispatcher's
/// job); read deadlines configured on the channel are treated as "still
/// idle", not as errors, so a quiet client never kills the loop.
/// Runs on the caller's thread; intended for a dedicated server thread.
/// `config` carries the server incarnation and optional exactly-once cache
/// (RpcDedup is internally synchronized, so one cache may be shared by all
/// of a daemon's channel threads).
void serve_channel(FramedChannel& channel, CoschedService& service,
                   DispatcherConfig config = {});

}  // namespace cosched

// Length-prefixed message framing over a stream socket.
//
// Frame layout: 4-byte big-endian payload length, then the payload.
// A length above kMaxFrame is rejected — a corrupted peer must not make a
// daemon allocate gigabytes.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "net/socket.h"

namespace cosched {

class FramedChannel {
 public:
  static constexpr std::size_t kMaxFrame = 1 << 20;  // 1 MiB

  explicit FramedChannel(Socket socket) : socket_(std::move(socket)) {}

  /// Sends one frame.  Throws Error on transport failure.
  void write_frame(std::span<const std::uint8_t> payload);

  /// Receives one frame; nullopt on clean EOF.  Throws Error on transport
  /// failure or oversize frames.
  std::optional<std::vector<std::uint8_t>> read_frame();

  Socket& socket() { return socket_; }

 private:
  Socket socket_;
};

}  // namespace cosched

// Length-prefixed message framing over a stream socket.
//
// Frame layout: 4-byte big-endian payload length, then the payload.
// A length above kMaxFrame is rejected — a corrupted peer must not make a
// daemon allocate gigabytes.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "net/socket.h"
#include "util/error.h"

namespace cosched {

/// Deadline expiry *inside* a frame: the stream is desynchronized (remaining
/// payload bytes would be misread as the next header), so unlike a boundary
/// timeout the channel cannot be reused.
class MidFrameTimeout final : public TimeoutError {
 public:
  explicit MidFrameTimeout(const std::string& what) : TimeoutError(what) {}
};

class FramedChannel {
 public:
  static constexpr std::size_t kMaxFrame = 1 << 20;  // 1 MiB

  explicit FramedChannel(Socket socket) : socket_(std::move(socket)) {}

  /// Sends one frame.  Throws Error on transport failure (TimeoutError if a
  /// send deadline is configured on the socket and expires).
  void write_frame(std::span<const std::uint8_t> payload);

  /// Receives one frame; nullopt on clean EOF.  Throws Error on transport
  /// failure or oversize frames, and TimeoutError when a read deadline is
  /// set and the peer hangs (before or mid-frame).  After a mid-frame
  /// timeout the stream is desynchronized; callers must drop the channel.
  std::optional<std::vector<std::uint8_t>> read_frame();

  /// Bounds every subsequent read_frame (milliseconds; 0 = block forever).
  void set_read_deadline_ms(int deadline_ms) { read_deadline_ms_ = deadline_ms; }
  int read_deadline_ms() const { return read_deadline_ms_; }

  /// Bounds every subsequent write_frame (milliseconds; 0 = block forever).
  void set_write_deadline_ms(int deadline_ms) {
    socket_.set_send_deadline_ms(deadline_ms);
  }

  Socket& socket() { return socket_; }

 private:
  Socket socket_;
  int read_deadline_ms_ = 0;
};

}  // namespace cosched

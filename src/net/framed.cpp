#include "net/framed.h"

#include <array>

#include "util/error.h"

namespace cosched {

void FramedChannel::write_frame(std::span<const std::uint8_t> payload) {
  COSCHED_CHECK_MSG(payload.size() <= kMaxFrame, "frame too large");
  const auto n = static_cast<std::uint32_t>(payload.size());
  const std::array<std::uint8_t, 4> header = {
      static_cast<std::uint8_t>(n >> 24), static_cast<std::uint8_t>(n >> 16),
      static_cast<std::uint8_t>(n >> 8), static_cast<std::uint8_t>(n)};
  socket_.send_all(header);
  socket_.send_all(payload);
}

std::optional<std::vector<std::uint8_t>> FramedChannel::read_frame() {
  std::array<std::uint8_t, 4> header;
  if (!socket_.recv_exact(header)) return std::nullopt;
  const std::uint32_t n = (static_cast<std::uint32_t>(header[0]) << 24) |
                          (static_cast<std::uint32_t>(header[1]) << 16) |
                          (static_cast<std::uint32_t>(header[2]) << 8) |
                          static_cast<std::uint32_t>(header[3]);
  if (n > kMaxFrame) throw Error("framed: oversize frame");
  std::vector<std::uint8_t> payload(n);
  if (n > 0 && !socket_.recv_exact(payload))
    throw Error("framed: EOF inside frame");
  return payload;
}

}  // namespace cosched

#include "net/framed.h"

#include <array>

#include "util/error.h"

namespace cosched {

void FramedChannel::write_frame(std::span<const std::uint8_t> payload) {
  COSCHED_CHECK_MSG(payload.size() <= kMaxFrame, "frame too large");
  const auto n = static_cast<std::uint32_t>(payload.size());
  const std::array<std::uint8_t, 4> header = {
      static_cast<std::uint8_t>(n >> 24), static_cast<std::uint8_t>(n >> 16),
      static_cast<std::uint8_t>(n >> 8), static_cast<std::uint8_t>(n)};
  socket_.send_all(header);
  socket_.send_all(payload);
}

std::optional<std::vector<std::uint8_t>> FramedChannel::read_frame() {
  std::array<std::uint8_t, 4> header;
  std::size_t got = 0;
  switch (socket_.recv_exact_deadline(header, read_deadline_ms_, &got)) {
    case RecvStatus::kEof: return std::nullopt;
    case RecvStatus::kTimeout:
      if (got > 0)
        throw MidFrameTimeout("framed: deadline exceeded inside header");
      throw TimeoutError("framed: receive deadline exceeded");
    case RecvStatus::kData: break;
  }
  const std::uint32_t n = (static_cast<std::uint32_t>(header[0]) << 24) |
                          (static_cast<std::uint32_t>(header[1]) << 16) |
                          (static_cast<std::uint32_t>(header[2]) << 8) |
                          static_cast<std::uint32_t>(header[3]);
  if (n > kMaxFrame) throw Error("framed: oversize frame");
  std::vector<std::uint8_t> payload(n);
  if (n > 0) {
    switch (socket_.recv_exact_deadline(payload, read_deadline_ms_)) {
      case RecvStatus::kEof: throw Error("framed: EOF inside frame");
      case RecvStatus::kTimeout:
        throw MidFrameTimeout("framed: receive deadline exceeded mid-frame");
      case RecvStatus::kData: break;
    }
  }
  return payload;
}

}  // namespace cosched

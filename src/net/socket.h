// RAII POSIX sockets for the live (non-simulated) coscheduling daemons.
//
// Scope is deliberately small: local stream sockets (socketpair) and
// localhost TCP — enough to run two real resource-manager daemons speaking
// the coordination protocol on one machine, which is what the examples and
// tests exercise.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <utility>
#include <vector>

namespace cosched {

/// Owning wrapper around a socket file descriptor.
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) : fd_(fd) {}
  ~Socket();

  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;
  Socket(Socket&& other) noexcept : fd_(std::exchange(other.fd_, -1)) {}
  Socket& operator=(Socket&& other) noexcept;

  bool valid() const { return fd_ >= 0; }
  int fd() const { return fd_; }

  /// Creates a connected pair of local stream sockets.
  static std::pair<Socket, Socket> pair();

  /// Sends the whole buffer; throws Error on failure.
  void send_all(std::span<const std::uint8_t> data);

  /// Receives exactly n bytes into out.  Returns false on clean EOF at a
  /// message boundary (0 bytes read); throws Error on partial EOF or error.
  bool recv_exact(std::span<std::uint8_t> out);

  void close();

 private:
  int fd_ = -1;
};

/// Listening TCP socket bound to 127.0.0.1.
class TcpListener {
 public:
  /// Binds to 127.0.0.1:port (port 0 = ephemeral).  Throws Error on failure.
  explicit TcpListener(std::uint16_t port);

  /// The actually bound port.
  std::uint16_t port() const { return port_; }

  /// Blocks until a client connects.
  Socket accept();

 private:
  Socket sock_;
  std::uint16_t port_ = 0;
};

/// Connects to 127.0.0.1:port.  Throws Error on failure.
Socket tcp_connect(std::uint16_t port);

}  // namespace cosched

// RAII POSIX sockets for the live (non-simulated) coscheduling daemons.
//
// Scope is deliberately small: local stream sockets (socketpair) and
// localhost TCP — enough to run two real resource-manager daemons speaking
// the coordination protocol on one machine, which is what the examples and
// tests exercise.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <utility>
#include <vector>

namespace cosched {

/// Outcome of a deadline-bounded receive.
enum class RecvStatus {
  kData,     ///< the whole span was filled
  kEof,      ///< clean EOF at a message boundary (0 bytes read)
  kTimeout,  ///< the deadline expired before the span was filled
};

/// Owning wrapper around a socket file descriptor.
///
/// Thread safety: the only shared state is fd_, an atomic (close() may race
/// a blocked recv() during shutdown).  There is no mutex here, so nothing
/// for -Wthread-safety to track; see src/util/thread_annotations.h for the
/// annotated-mutex convention used by the stateful classes (RpcClient,
/// RpcDedup).
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) : fd_(fd) {}
  ~Socket();

  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;
  Socket(Socket&& other) noexcept : fd_(other.fd_.exchange(-1)) {}
  Socket& operator=(Socket&& other) noexcept;

  bool valid() const { return fd() >= 0; }
  int fd() const { return fd_.load(std::memory_order_relaxed); }

  /// Creates a connected pair of local stream sockets.
  static std::pair<Socket, Socket> pair();

  /// Sends the whole buffer; throws Error on failure and TimeoutError if a
  /// deadline is set and the peer stops draining before it elapses.
  void send_all(std::span<const std::uint8_t> data);

  /// Receives exactly n bytes into out.  Returns false on clean EOF at a
  /// message boundary (0 bytes read); throws Error on partial EOF or error.
  bool recv_exact(std::span<std::uint8_t> out);

  /// Deadline-bounded receive: like recv_exact but gives up after
  /// `deadline_ms` milliseconds measured across the whole span (poll-based,
  /// so a peer trickling one byte per interval cannot extend it forever).
  /// deadline_ms <= 0 blocks indefinitely.  Timeouts are reported as a
  /// status, never an exception — a hung remote maps to "remote unknown",
  /// not a dead serve loop.  `got_out` (optional) receives the number of
  /// bytes consumed, letting framing layers tell an idle boundary timeout
  /// (0 bytes) from a desynchronizing partial read.
  RecvStatus recv_exact_deadline(std::span<std::uint8_t> out, int deadline_ms,
                                 std::size_t* got_out = nullptr);

  /// Deadline applied by send_all (milliseconds; <= 0 = block forever).
  /// Also installs SO_SNDTIMEO as a backstop for the final send call.
  void set_send_deadline_ms(int deadline_ms);

  void close();

 private:
  /// Atomic so close() from one thread (waking a peer blocked in accept or
  /// recv via shutdown) is not a data race with the blocked thread's fd
  /// reads.  Single-writer otherwise; relaxed ordering suffices.
  std::atomic<int> fd_{-1};
  int send_deadline_ms_ = 0;
  bool rcvtimeo_armed_ = false;  ///< SO_RCVTIMEO currently installed
};

/// Listening TCP socket bound to 127.0.0.1.
class TcpListener {
 public:
  /// Binds to 127.0.0.1:port (port 0 = ephemeral).  Throws Error on failure.
  explicit TcpListener(std::uint16_t port);

  /// The actually bound port.
  std::uint16_t port() const { return port_; }

  /// Blocks until a client connects.
  Socket accept();

  /// Closes the listening socket; a blocked accept() fails with Error.
  /// Lets another thread shut an accept loop down (daemon crash/restart).
  /// The socket is shut down before closing: on Linux, plain close() leaves
  /// a concurrently blocked accept() sleeping forever.
  void close();

 private:
  Socket sock_;
  std::uint16_t port_ = 0;
};

/// Connects to 127.0.0.1:port.  Throws Error on failure.
Socket tcp_connect(std::uint16_t port);

}  // namespace cosched

#include "net/socket.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "util/error.h"

namespace cosched {

namespace {
[[noreturn]] void throw_errno(const std::string& what) {
  throw Error(what + ": " + std::strerror(errno));
}
}  // namespace

Socket::~Socket() { close(); }

Socket& Socket::operator=(Socket&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = std::exchange(other.fd_, -1);
  }
  return *this;
}

void Socket::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

std::pair<Socket, Socket> Socket::pair() {
  int fds[2];
  if (::socketpair(AF_UNIX, SOCK_STREAM, 0, fds) != 0)
    throw_errno("socketpair");
  return {Socket(fds[0]), Socket(fds[1])};
}

void Socket::send_all(std::span<const std::uint8_t> data) {
  COSCHED_CHECK(valid());
  std::size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n =
        ::send(fd_, data.data() + sent, data.size() - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw_errno("send");
    }
    sent += static_cast<std::size_t>(n);
  }
}

bool Socket::recv_exact(std::span<std::uint8_t> out) {
  COSCHED_CHECK(valid());
  std::size_t got = 0;
  while (got < out.size()) {
    const ssize_t n = ::recv(fd_, out.data() + got, out.size() - got, 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw_errno("recv");
    }
    if (n == 0) {
      if (got == 0) return false;  // clean EOF at boundary
      throw Error("recv: connection closed mid-message");
    }
    got += static_cast<std::size_t>(n);
  }
  return true;
}

TcpListener::TcpListener(std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) throw_errno("socket");
  sock_ = Socket(fd);
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0)
    throw_errno("bind");
  if (::listen(fd, 8) != 0) throw_errno("listen");
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0)
    throw_errno("getsockname");
  port_ = ntohs(addr.sin_port);
}

Socket TcpListener::accept() {
  const int fd = ::accept(sock_.fd(), nullptr, nullptr);
  if (fd < 0) throw_errno("accept");
  return Socket(fd);
}

Socket tcp_connect(std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) throw_errno("socket");
  Socket s(fd);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0)
    throw_errno("connect");
  return s;
}

}  // namespace cosched

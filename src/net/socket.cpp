#include "net/socket.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>

#include "util/error.h"

namespace cosched {

namespace {

[[noreturn]] void throw_errno(const std::string& what) {
  throw Error(what + ": " + std::strerror(errno));
}

using Clock = std::chrono::steady_clock;

/// Milliseconds left until `deadline`, clamped at 0.
int ms_remaining(Clock::time_point deadline) {
  const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
      deadline - Clock::now());
  return left.count() > 0 ? static_cast<int>(left.count()) : 0;
}

/// Waits for `events` on fd until `deadline`.  Returns false on expiry;
/// throws Error on poll failure.
bool poll_until(int fd, short events, Clock::time_point deadline) {
  for (;;) {
    pollfd p{fd, events, 0};
    const int remaining = ms_remaining(deadline);
    if (remaining == 0) return false;
    const int n = ::poll(&p, 1, remaining);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw_errno("poll");
    }
    if (n > 0) return true;
    // n == 0: poll timed out; loop recomputes remaining (returns false).
  }
}

/// Installs a per-call kernel timeout as a backstop to the poll loop.
void set_kernel_timeout(int fd, int option, int deadline_ms) {
  timeval tv{};
  if (deadline_ms > 0) {
    tv.tv_sec = deadline_ms / 1000;
    tv.tv_usec = (deadline_ms % 1000) * 1000;
  }
  ::setsockopt(fd, SOL_SOCKET, option, &tv, sizeof(tv));
}

}  // namespace

Socket::~Socket() { close(); }

Socket& Socket::operator=(Socket&& other) noexcept {
  if (this != &other) {
    close();
    fd_.store(other.fd_.exchange(-1));
  }
  return *this;
}

void Socket::close() {
  const int fd = fd_.exchange(-1);
  if (fd >= 0) ::close(fd);
}

std::pair<Socket, Socket> Socket::pair() {
  int fds[2];
  if (::socketpair(AF_UNIX, SOCK_STREAM, 0, fds) != 0)
    throw_errno("socketpair");
  return {Socket(fds[0]), Socket(fds[1])};
}

void Socket::set_send_deadline_ms(int deadline_ms) {
  send_deadline_ms_ = deadline_ms;
  if (valid()) set_kernel_timeout(fd_, SO_SNDTIMEO, deadline_ms);
}

void Socket::send_all(std::span<const std::uint8_t> data) {
  COSCHED_CHECK(valid());
  const bool bounded = send_deadline_ms_ > 0;
  const auto deadline =
      Clock::now() + std::chrono::milliseconds(bounded ? send_deadline_ms_ : 0);
  std::size_t sent = 0;
  while (sent < data.size()) {
    if (bounded && !poll_until(fd_, POLLOUT, deadline))
      throw TimeoutError("send: deadline exceeded");
    const ssize_t n =
        ::send(fd_, data.data() + sent, data.size() - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (bounded && (errno == EAGAIN || errno == EWOULDBLOCK))
        throw TimeoutError("send: deadline exceeded");
      throw_errno("send");
    }
    sent += static_cast<std::size_t>(n);
  }
}

bool Socket::recv_exact(std::span<std::uint8_t> out) {
  switch (recv_exact_deadline(out, /*deadline_ms=*/0)) {
    case RecvStatus::kData: return true;
    case RecvStatus::kEof: return false;
    case RecvStatus::kTimeout: break;  // unreachable without a deadline
  }
  throw Error("recv: unexpected timeout without a deadline");
}

RecvStatus Socket::recv_exact_deadline(std::span<std::uint8_t> out,
                                       int deadline_ms,
                                       std::size_t* got_out) {
  COSCHED_CHECK(valid());
  if (got_out != nullptr) *got_out = 0;
  const bool bounded = deadline_ms > 0;
  // The deadline covers the *whole* span: poll + SO_RCVTIMEO per recv alone
  // would let a peer trickling one byte per interval hold the thread forever.
  const auto deadline =
      Clock::now() + std::chrono::milliseconds(bounded ? deadline_ms : 0);
  if (bounded != rcvtimeo_armed_) {
    set_kernel_timeout(fd_, SO_RCVTIMEO, bounded ? deadline_ms : 0);
    rcvtimeo_armed_ = bounded;
  }
  std::size_t got = 0;
  while (got < out.size()) {
    if (got_out != nullptr) *got_out = got;
    if (bounded && !poll_until(fd_, POLLIN, deadline))
      return RecvStatus::kTimeout;
    const ssize_t n = ::recv(fd_, out.data() + got, out.size() - got, 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (bounded && (errno == EAGAIN || errno == EWOULDBLOCK))
        return RecvStatus::kTimeout;
      throw_errno("recv");
    }
    if (n == 0) {
      if (got == 0) return RecvStatus::kEof;  // clean EOF at boundary
      throw Error("recv: connection closed mid-message");
    }
    got += static_cast<std::size_t>(n);
  }
  if (got_out != nullptr) *got_out = got;
  return RecvStatus::kData;
}

TcpListener::TcpListener(std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) throw_errno("socket");
  sock_ = Socket(fd);
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0)
    throw_errno("bind");
  if (::listen(fd, 8) != 0) throw_errno("listen");
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0)
    throw_errno("getsockname");
  port_ = ntohs(addr.sin_port);
}

void TcpListener::close() {
  if (sock_.valid()) ::shutdown(sock_.fd(), SHUT_RDWR);
  sock_.close();
}

Socket TcpListener::accept() {
  const int fd = ::accept(sock_.fd(), nullptr, nullptr);
  if (fd < 0) throw_errno("accept");
  return Socket(fd);
}

Socket tcp_connect(std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) throw_errno("socket");
  Socket s(fd);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0)
    throw_errno("connect");
  return s;
}

}  // namespace cosched

// Quickstart: the smallest complete use of the coscheduling library.
//
// Two scheduling domains — a compute machine and an analysis cluster — are
// wired together over the coordination protocol.  A simulation job and its
// analysis mate are submitted to their respective machines at different
// times; coscheduling makes them start at the same instant.
//
// Build & run:  ./quickstart
#include <iostream>

#include "core/coupled_sim.h"

using namespace cosched;

int main() {
  // 1. Describe the two domains.  Each machine picks its own scheme locally
  //    (here: classic hold on compute, yield on analysis).
  std::vector<DomainSpec> specs = make_coupled_specs(
      "compute", /*capacity=*/1024, "analysis", /*capacity=*/64, kHY);

  // 2. Build the workloads.  Jobs sharing a group id across machines are
  //    "associated": the coscheduler guarantees they start together.
  JobSpec sim_job;
  sim_job.id = 1;
  sim_job.submit = 0;            // submitted at t=0
  sim_job.runtime = 2 * kHour;
  sim_job.walltime = 3 * kHour;
  sim_job.nodes = 512;
  sim_job.group = 42;            // <- association

  JobSpec viz_job;
  viz_job.id = 2;
  viz_job.submit = 20 * kMinute; // submitted 20 minutes later
  viz_job.runtime = 2 * kHour;
  viz_job.walltime = 3 * kHour;
  viz_job.nodes = 16;
  viz_job.group = 42;            // <- same group

  JobSpec background;            // a regular, unpaired job
  background.id = 3;
  background.submit = 5 * kMinute;
  background.runtime = kHour;
  background.walltime = 2 * kHour;
  background.nodes = 256;

  Trace compute_trace, analysis_trace;
  compute_trace.add(sim_job);
  compute_trace.add(background);
  analysis_trace.add(viz_job);

  // 3. Run the coupled simulation.
  CoupledSim sim(specs, {compute_trace, analysis_trace});
  const SimResult result = sim.run();

  // 4. Inspect the outcome.
  auto show = [&](std::size_t domain, JobId id) {
    const RuntimeJob* j = sim.cluster(domain).scheduler().find(id);
    std::cout << "  " << sim.cluster(domain).name() << " job " << id
              << ": submitted at " << to_minutes(j->spec.submit)
              << " min, started at " << to_minutes(j->start)
              << " min, waited " << to_minutes(j->wait_time())
              << " min (sync overhead " << to_minutes(j->sync_time())
              << " min)\n";
  };

  std::cout << "Coupled run " << (result.completed ? "completed" : "FAILED")
            << ".\n";
  show(0, 1);
  show(1, 2);
  show(0, 3);
  std::cout << "Associated pair started together: "
            << (result.groups.groups_started_together == 1 ? "yes" : "NO")
            << " (skew " << result.groups.max_start_skew << " s)\n";
  std::cout << "Node-hours spent holding on compute: "
            << sim.cluster(0).scheduler().pool().held_node_seconds() / kHour
            << "\n";
  return result.completed ? 0 : 1;
}

// N-way coscheduling: the paper's hurricane-forecasting scenario (§II-B).
//
// "Multiple climate analysis models are executed concurrently and their
// results are fed into one or many prediction models ... some of the models
// may be optimized to run on GPU-based systems while others are tailored for
// CPU-based systems."  The paper lists N-way coscheduling (more than two
// scheduling domains) as future work (§VI); this example exercises our
// implementation of it across three domains.
#include <iostream>

#include "core/coupled_sim.h"
#include "util/table.h"
#include "workload/pairing.h"
#include "workload/synth.h"

using namespace cosched;

int main() {
  // Three independent scheduling domains, as at a real center.
  std::vector<DomainSpec> specs(3);
  specs[0].name = "cpu-cluster";   // atmospheric model
  specs[0].capacity = 4096;
  specs[1].name = "gpu-cluster";   // ocean model (GPU-tuned)
  specs[1].capacity = 256;
  specs[2].name = "viz-wall";      // live forecast visualization
  specs[2].capacity = 64;
  for (auto& s : specs) {
    s.policy = "wfp";
    s.cosched.scheme = Scheme::kYield;  // conservative: no held nodes
    s.cosched.hold_release_period = 20 * kMinute;
  }
  // The big CPU machine can afford to hold.
  specs[0].cosched.scheme = Scheme::kHold;

  // Background load on each domain plus five forecast ensembles, each a
  // 3-way group (atmosphere + ocean + viz) that must start simultaneously.
  std::vector<Trace> traces(3);
  {
    SystemModel cpu;
    cpu.name = "cpu";
    cpu.capacity = 4096;
    cpu.sizes = {{128, 0.5}, {256, 0.3}, {512, 0.15}, {1024, 0.05}};
    cpu.runtime_log_mean = std::log(1800.0);
    cpu.runtime_log_sigma = 0.8;
    SynthParams p;
    p.span = 2 * kDay;
    p.offered_load = 0.5;
    p.seed = 11;
    traces[0] = generate_trace(cpu, p);

    SystemModel gpu = eureka_model();
    gpu.capacity = 256;
    p.seed = 12;
    p.offered_load = 0.4;
    traces[1] = generate_trace(gpu, p);
    for (auto& j : traces[1].jobs()) j.id += 1000000;

    SystemModel viz = eureka_model();
    viz.capacity = 64;
    // Drop size buckets larger than this smaller machine.
    std::erase_if(viz.sizes,
                  [&](const SizeBucket& b) { return b.nodes > viz.capacity; });
    p.seed = 13;
    p.offered_load = 0.3;
    traces[2] = generate_trace(viz, p);
    for (auto& j : traces[2].jobs()) j.id += 2000000;
  }

  GroupId group = 9000;
  for (int ensemble = 0; ensemble < 5; ++ensemble) {
    const Time submit = (4 + 8 * ensemble) * kHour;
    JobSpec atmosphere;
    atmosphere.id = 500000 + ensemble;
    atmosphere.submit = submit;
    atmosphere.runtime = 3 * kHour;
    atmosphere.walltime = 4 * kHour;
    atmosphere.nodes = 2048;
    atmosphere.group = group;
    traces[0].add(atmosphere);

    JobSpec ocean = atmosphere;
    ocean.id = 1500000 + ensemble;
    ocean.submit = submit + 5 * kMinute;
    ocean.nodes = 128;
    traces[1].add(ocean);

    JobSpec viz = atmosphere;
    viz.id = 2500000 + ensemble;
    viz.submit = submit + 10 * kMinute;
    viz.nodes = 32;
    traces[2].add(viz);
    ++group;
  }
  for (auto& t : traces) t.sort_by_submit();

  CoupledSim sim(specs, traces);
  const SimResult r = sim.run(60 * kDay);

  std::cout << "Hurricane forecasting, 5 ensembles x 3 domains\n\n";
  Table t({"ensemble", "atmosphere start", "ocean start", "viz start",
           "skew (s)"});
  for (int ensemble = 0; ensemble < 5; ++ensemble) {
    const Time a =
        sim.cluster(0).scheduler().find(500000 + ensemble)->start;
    const Time o =
        sim.cluster(1).scheduler().find(1500000 + ensemble)->start;
    const Time v =
        sim.cluster(2).scheduler().find(2500000 + ensemble)->start;
    const Time lo = std::min({a, o, v}), hi = std::max({a, o, v});
    t.add_row({std::to_string(ensemble),
               format_double(to_minutes(a), 1) + " min",
               format_double(to_minutes(o), 1) + " min",
               format_double(to_minutes(v), 1) + " min",
               std::to_string(hi - lo)});
  }
  t.print(std::cout);
  std::cout << "\nRun " << (r.completed ? "completed" : "FAILED") << "; "
            << r.groups.groups_started_together << "/" << r.groups.groups_total
            << " coupled groups started simultaneously.\n";
  return r.completed &&
                 r.groups.groups_started_together == r.groups.groups_total
             ? 0
             : 1;
}

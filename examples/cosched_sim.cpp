// cosched_sim — the full coupled-system simulator as a command-line tool.
//
// Reads a deployment-style config file describing the scheduling domains
// (see src/core/config_io.h for the format), loads each domain's workload
// (SWF file or synth spec), runs the coupled simulation, and reports the
// paper's metrics.  Optionally writes the per-job lifecycle log and a CSV
// metric summary.
//
//   cosched_sim coupled.conf
//   cosched_sim coupled.conf --max-days 365 --event-log run.log --csv m.csv
//
// Example config:
//   [domain intrepid]
//   capacity = 40960
//   policy = wfp
//   scheme = hold
//   allocation = bgp-partitions
//   trace = synth:intrepid?load=0.68&days=30&jobs=9219&seed=1
//
//   [domain eureka]
//   capacity = 100
//   policy = wfp
//   scheme = yield
//   trace = synth:eureka?load=0.5&days=30&seed=2
#include <fstream>
#include <iostream>

#include "core/config_io.h"
#include "core/coupled_sim.h"
#include "util/csv.h"
#include "util/flags.h"
#include "util/table.h"
#include "workload/pairing.h"

using namespace cosched;

int main(int argc, char** argv) {
  Flags flags;
  flags.define("max-days", "0", "abort after this many simulated days (0 = off)");
  flags.define("event-log", "", "write the per-job lifecycle log to this file");
  flags.define("csv", "", "write per-domain metrics as CSV to this file");
  flags.define("pair-proportion", "0",
               "randomly pair this fraction of jobs across the first two "
               "domains (applied after loading traces)");
  flags.define("pair-seed", "1", "seed for --pair-proportion");

  std::vector<std::string> args;
  try {
    args = flags.parse(argc, argv);
  } catch (const Error& e) {
    std::cerr << e.what() << "\n" << flags.usage(argv[0]);
    return 2;
  }
  if (args.size() != 1) {
    std::cerr << "usage: cosched_sim <config-file> [flags]\n"
              << flags.usage(argv[0]);
    return 2;
  }

  try {
    const auto configs = read_domain_configs(args[0]);
    if (configs.empty()) {
      std::cerr << "config declares no domains\n";
      return 1;
    }

    std::vector<DomainSpec> specs;
    std::vector<Trace> traces;
    for (const DomainConfig& c : configs) {
      specs.push_back(c.spec);
      traces.push_back(load_trace_source(c.trace_source, c.spec));
      traces.back().validate(c.spec.capacity);
    }

    const double pair_prop = flags.get_double("pair-proportion");
    if (pair_prop > 0 && traces.size() >= 2) {
      const PairingResult r = pair_by_proportion(
          traces[0], traces[1], pair_prop,
          static_cast<std::uint64_t>(flags.get_int("pair-seed")));
      std::cout << "paired " << r.pairs_made << " job pairs ("
                << format_percent(r.paired_fraction) << " of all jobs)\n";
    }

    CoupledSim sim(specs, traces);
    const std::string log_path = flags.get("event-log");
    if (!log_path.empty()) sim.enable_event_log();

    const SimResult r = sim.run(flags.get_int("max-days") * kDay);

    Table t({"domain", "jobs", "finished", "paired", "avg wait (min)",
             "avg slowdown", "avg sync (min)", "loss (node-h)",
             "utilization"});
    for (const SystemMetrics& m : r.systems) {
      t.add_row({m.system,
                 format_count(static_cast<long long>(m.jobs_total)),
                 format_count(static_cast<long long>(m.jobs_finished)),
                 format_count(static_cast<long long>(m.paired_jobs)),
                 format_double(m.avg_wait_minutes),
                 format_double(m.avg_slowdown),
                 format_double(m.avg_sync_minutes),
                 format_count(static_cast<long long>(m.held_node_hours)),
                 format_percent(m.utilization)});
    }
    t.print(std::cout);
    std::cout << "simulated " << format_double(to_hours(r.end_time) / 24, 1)
              << " days; " << (r.completed ? "all jobs finished" : "STALLED")
              << "; coupled groups: " << r.groups.groups_started_together
              << "/" << r.groups.groups_total << " co-started (max skew "
              << r.groups.max_start_skew << " s)\n";

    if (!log_path.empty()) {
      std::ofstream out(log_path);
      if (!out) throw Error("cannot write event log: " + log_path);
      sim.enable_event_log().write_text(out);
      std::cout << "event log written to " << log_path << "\n";
    }
    const std::string csv_path = flags.get("csv");
    if (!csv_path.empty()) {
      CsvWriter csv(csv_path);
      csv.write_row({"domain", "jobs", "finished", "paired",
                     "avg_wait_min", "avg_slowdown", "avg_sync_min",
                     "loss_node_hours", "utilization"});
      for (const SystemMetrics& m : r.systems)
        csv.write_row({m.system, std::to_string(m.jobs_total),
                       std::to_string(m.jobs_finished),
                       std::to_string(m.paired_jobs),
                       format_double(m.avg_wait_minutes, 4),
                       format_double(m.avg_slowdown, 4),
                       format_double(m.avg_sync_minutes, 4),
                       format_double(m.held_node_hours, 2),
                       format_double(m.utilization, 6)});
      std::cout << "metrics written to " << csv_path << "\n";
    }
    return r.completed ? 0 : 1;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}

// trace_tool — workload utility for the coscheduling benches.
//
// Subcommands:
//   gen <out.swf>        generate a calibrated synthetic trace
//   info <in.swf>        print trace statistics
//   scale <in> <out>     rescale arrival intervals to a target offered load
//   pair <a> <b>         assign paired groups across two traces (in place)
//
// Real Parallel-Workloads-Archive SWF traces can be used anywhere a
// synthetic trace is: `trace_tool info ANL-Intrepid-2009-1.swf --capacity
// 40960 --procs-per-node 4`.
#include <iostream>

#include "util/flags.h"
#include "util/table.h"
#include "workload/pairing.h"
#include "workload/scaling.h"
#include "workload/swf.h"
#include "workload/synth.h"

using namespace cosched;

namespace {

int cmd_gen(const Flags& flags, const std::vector<std::string>& args) {
  if (args.size() != 2) {
    std::cerr << "usage: trace_tool gen <out.swf> [--model ...] [flags]\n";
    return 2;
  }
  const std::string model_name = flags.get("model");
  SystemModel model;
  if (model_name == "intrepid") model = intrepid_model();
  else if (model_name == "eureka") model = eureka_model();
  else {
    std::cerr << "unknown --model (use intrepid|eureka)\n";
    return 2;
  }
  SynthParams p;
  p.job_count = static_cast<std::size_t>(flags.get_int("jobs"));
  p.span = flags.get_int("days") * kDay;
  p.offered_load = flags.get_double("load");
  p.seed = static_cast<std::uint64_t>(flags.get_int("seed"));
  const Trace t = generate_trace(model, p);
  write_swf_file(args[1], t);
  std::cout << "wrote " << t.size() << " jobs to " << args[1] << "\n";
  return 0;
}

int cmd_info(const Flags& flags, const std::vector<std::string>& args) {
  if (args.size() != 2) {
    std::cerr << "usage: trace_tool info <in.swf> [--capacity N]\n";
    return 2;
  }
  SwfReadOptions opt;
  opt.procs_per_node = static_cast<int>(flags.get_int("procs-per-node"));
  const Trace t = read_swf_file(args[1], args[1], opt);
  const TraceStats s = t.stats();
  const NodeCount capacity = flags.get_int("capacity");

  Table info({"metric", "value"});
  info.add_row({"jobs", format_count(static_cast<long long>(s.job_count))});
  info.add_row({"paired jobs",
                format_count(static_cast<long long>(s.paired_count))});
  info.add_row({"span (days)", format_double(to_hours(s.span) / 24.0)});
  info.add_row({"node range", format_count(s.min_nodes) + " - " +
                                  format_count(s.max_nodes)});
  info.add_row({"mean nodes", format_double(s.mean_nodes, 1)});
  info.add_row({"mean runtime (min)", format_double(s.mean_runtime / 60, 1)});
  info.add_row({"total node-hours",
                format_count(static_cast<long long>(s.total_node_seconds /
                                                    kHour))});
  if (capacity > 0)
    info.add_row({"offered load @" + format_count(capacity) + " nodes",
                  format_percent(s.offered_load(capacity))});
  info.print(std::cout);
  return 0;
}

int cmd_scale(const Flags& flags, const std::vector<std::string>& args) {
  if (args.size() != 3) {
    std::cerr << "usage: trace_tool scale <in.swf> <out.swf> --capacity N"
                 " --load X\n";
    return 2;
  }
  SwfReadOptions opt;
  opt.procs_per_node = static_cast<int>(flags.get_int("procs-per-node"));
  Trace t = read_swf_file(args[1], args[1], opt);
  const double factor = scale_to_offered_load(
      t, flags.get_int("capacity"), flags.get_double("load"));
  write_swf_file(args[2], t);
  std::cout << "scaled arrival intervals by " << format_double(factor, 4)
            << "; offered load now "
            << format_percent(offered_load(t, flags.get_int("capacity")))
            << "\n";
  return 0;
}

int cmd_pair(const Flags& flags, const std::vector<std::string>& args) {
  if (args.size() != 3) {
    std::cerr << "usage: trace_tool pair <a.swf> <b.swf> --proportion X\n";
    return 2;
  }
  Trace a = read_swf_file(args[1], args[1]);
  Trace b = read_swf_file(args[2], args[2]);
  const PairingResult r = pair_by_proportion(
      a, b, flags.get_double("proportion"),
      static_cast<std::uint64_t>(flags.get_int("seed")));
  write_swf_file(args[1], a);
  write_swf_file(args[2], b);
  std::cout << "paired " << r.pairs_made << " groups ("
            << format_percent(r.paired_fraction) << " of all jobs)\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags;
  flags.define("model", "eureka", "synthetic model: intrepid|eureka");
  flags.define("jobs", "0", "job count (0 = derive from span & load)");
  flags.define("days", "30", "trace span in days");
  flags.define("load", "0.5", "target offered load");
  flags.define("seed", "1", "random seed");
  flags.define("capacity", "0", "machine capacity in nodes");
  flags.define("procs-per-node", "1", "SWF processors per node");
  flags.define("proportion", "0.1", "paired-job proportion");

  std::vector<std::string> args;
  try {
    args = flags.parse(argc, argv);
  } catch (const Error& e) {
    std::cerr << e.what() << "\n" << flags.usage(argv[0]);
    return 2;
  }
  if (args.empty()) {
    std::cerr << "usage: trace_tool <gen|info|scale|pair> ...\n"
              << flags.usage(argv[0]);
    return 2;
  }
  try {
    if (args[0] == "gen") return cmd_gen(flags, args);
    if (args[0] == "info") return cmd_info(flags, args);
    if (args[0] == "scale") return cmd_scale(flags, args);
    if (args[0] == "pair") return cmd_pair(flags, args);
  } catch (const Error& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
  std::cerr << "unknown subcommand: " << args[0] << "\n";
  return 2;
}

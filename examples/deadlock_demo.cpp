// Walkthrough of the paper's Fig. 2 hold-hold deadlock and its resolution.
//
// Machine A holds job a1 (6 nodes) waiting for mate b1, which queues on
// machine B behind job b2 — which itself holds all of B waiting for mate a2,
// queued on A behind a1.  A circular wait: the textbook deadlock.
// The §IV-E1 enhancement — periodic hold release with one-iteration priority
// demotion — breaks it.
#include <iostream>

#include "core/coupled_sim.h"
#include "core/deadlock.h"

using namespace cosched;

namespace {

JobSpec job(JobId id, Time submit, GroupId group) {
  JobSpec j;
  j.id = id;
  j.submit = submit;
  j.runtime = 10 * kMinute;
  j.walltime = 20 * kMinute;
  j.nodes = 6;  // each job needs the whole 6-node machine
  j.group = group;
  return j;
}

void run_variant(bool with_release) {
  std::cout << "--- hold-hold with release "
            << (with_release ? "ENABLED (20 min)" : "DISABLED") << " ---\n";
  auto specs = make_coupled_specs("A", 6, "B", 6, kHH, true,
                                  with_release ? 20 * kMinute : Duration{0});
  Trace a, b;
  a.add(job(1, 0, 101));    // a1, mate b1
  a.add(job(2, 60, 102));   // a2, mate b2
  b.add(job(20, 0, 102));   // b2, mate a2
  b.add(job(10, 60, 101));  // b1, mate a1

  CoupledSim sim(specs, {a, b});

  // Peek at the state shortly after both holds are established.
  sim.engine().run_until(5 * kMinute);
  std::cout << "t=5min: A holding " << sim.cluster(0).scheduler().pool().held()
            << "/6 nodes, B holding "
            << sim.cluster(1).scheduler().pool().held() << "/6 nodes\n";
  const bool cycle = has_hold_wait_cycle({&sim.cluster(0), &sim.cluster(1)});
  std::cout << "t=5min: circular wait detected: " << (cycle ? "YES" : "no")
            << "\n";

  const SimResult r = sim.run(7 * kDay);
  if (r.completed) {
    std::cout << "All jobs completed. Start times:\n";
    for (auto [domain, id] : {std::pair<std::size_t, JobId>{0, 1},
                              {0, 2},
                              {1, 10},
                              {1, 20}}) {
      const RuntimeJob* j = sim.cluster(domain).scheduler().find(id);
      std::cout << "  " << sim.cluster(domain).name() << "/job " << id
                << " started at t=" << to_minutes(j->start) << " min\n";
    }
    std::cout << "Forced releases: A="
              << sim.cluster(0).forced_releases()
              << " B=" << sim.cluster(1).forced_releases() << "\n";
  } else {
    std::cout << "DEADLOCK: simulation drained with "
              << r.groups.groups_unstarted
              << " coupled groups never started; queues frozen forever.\n";
  }
  std::cout << "\n";
}

}  // namespace

int main() {
  std::cout << "Fig. 2 deadlock scenario (ICPP'11): two machines, 6 nodes"
               " each,\ntwo coupled pairs submitted crosswise.\n\n";
  run_variant(/*with_release=*/false);
  run_variant(/*with_release=*/true);
  std::cout << "The periodic release breaks circular wait: a released holder"
               "\nis demoted for one iteration, letting the waiting mate's"
               "\npartner take the nodes and the pairs start in turn.\n";
  return 0;
}

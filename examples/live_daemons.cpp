// Live (wall-clock, non-simulated) coscheduling daemons over real sockets,
// including a mid-run daemon crash and restart.
//
// Two resource-manager daemons run in separate threads connected by
// localhost TCP, speaking the binary coordination protocol end to end —
// the deployment shape the paper targets ("jobs submitted to a compute
// resource running LSF can be coscheduled with jobs submitted to an analysis
// resource running PBS").  Each daemon owns a real Scheduler; Run_Job applies
// Algorithm 1 with the hold scheme.
//
// Timeline (wall-clock milliseconds standing in for minutes):
//   phase 1: compute receives paired job C1 -> mate not ready -> HOLD;
//            analysis receives mate A1 -> both START together.
//   phase 2: the analysis daemon is killed (listener and every connection
//            torn down).  Compute submits paired job C2: the peer call
//            fails, the circuit breaker opens, and per the paper's §IV-C
//            rule C2 starts immediately, uncoordinated, instead of waiting
//            on a dead remote.
//   phase 3: a fresh analysis daemon restarts on the same port.  After the
//            breaker cooldown the next call probes, reconnects through the
//            channel factory, and pair C3/A3 co-starts again.
#include <sys/socket.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <iostream>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <thread>
#include <vector>

#include "net/rpc.h"
#include "proto/peer.h"
#include "sched/scheduler.h"
#include "util/log.h"

using namespace cosched;

namespace {

std::mutex g_print_mutex;

void say(const std::string& who, const std::string& what) {
  std::lock_guard<std::mutex> lock(g_print_mutex);
  std::cout << "[" << who << "] " << what << std::endl;
}

/// A minimal live resource manager: one Scheduler + Algorithm 1, clocked by
/// wall time.  Thread-safe: the RPC server thread and the local submit path
/// both lock the daemon.
class LiveDaemon : public CoschedService {
 public:
  LiveDaemon(std::string name, NodeCount capacity)
      : name_(std::move(name)),
        sched_(capacity, make_policy("fcfs")) {}

  void set_peer(PeerClient* peer) {
    std::lock_guard<std::mutex> lock(mutex_);
    peer_ = peer;
  }

  void register_mate(GroupId group, JobId job) {
    std::lock_guard<std::mutex> lock(mutex_);
    groups_[group] = job;
  }

  void submit(const JobSpec& spec) {
    std::lock_guard<std::mutex> lock(mutex_);
    if (spec.is_paired()) groups_[spec.group] = spec.id;
    sched_.submit(spec, now());
    say(name_, "job " + std::to_string(spec.id) + " submitted");
    iterate_locked();
  }

  bool running(JobId id) {
    std::lock_guard<std::mutex> lock(mutex_);
    const RuntimeJob* j = sched_.find(id);
    return j && j->state == JobState::kRunning;
  }

  Time start_time(JobId id) {
    std::lock_guard<std::mutex> lock(mutex_);
    const RuntimeJob* j = sched_.find(id);
    return j ? j->start : kNoTime;
  }

  // -- CoschedService (called from the RPC server thread) ---------------
  std::optional<JobId> get_mate_job(GroupId group, JobId) override {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = groups_.find(group);
    if (it == groups_.end()) return std::nullopt;
    return it->second;
  }
  MateStatus get_mate_status(JobId job) override {
    std::lock_guard<std::mutex> lock(mutex_);
    if (committing_.count(job)) return MateStatus::kStarting;
    const RuntimeJob* j = sched_.find(job);
    if (!j) return MateStatus::kUnsubmitted;
    switch (j->state) {
      case JobState::kQueued: return MateStatus::kQueuing;
      case JobState::kHolding: return MateStatus::kHolding;
      case JobState::kRunning: return MateStatus::kRunning;
      case JobState::kFinished: return MateStatus::kFinished;
    }
    return MateStatus::kUnknown;
  }
  bool try_start_mate(JobId job) override {
    std::lock_guard<std::mutex> lock(mutex_);
    return sched_.try_start_specific(job, now(), [this](RuntimeJob& j) {
      return run_job_locked(j, /*try_context=*/true);
    });
  }
  bool start_job(JobId job) override {
    std::lock_guard<std::mutex> lock(mutex_);
    const RuntimeJob* j = sched_.find(job);
    if (!j || j->state != JobState::kHolding) return false;
    sched_.start_holding(job, now());
    say(name_, "holding job " + std::to_string(job) + " started (woken by mate)");
    return true;
  }

 private:
  static Time now() {
    return std::chrono::duration_cast<std::chrono::milliseconds>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
  }

  void iterate_locked() {
    sched_.iterate(now(), [this](RuntimeJob& j) {
      return run_job_locked(j, /*try_context=*/false);
    });
  }

  // Algorithm 1, two-domain form, against the live peer.
  RunDecision run_job_locked(RuntimeJob& job, bool try_context) {
    if (!job.spec.is_paired() || peer_ == nullptr) {
      say(name_, "job " + std::to_string(job.spec.id) + " started");
      return RunDecision::kStart;
    }
    committing_.insert(job.spec.id);
    struct Uncommit {
      LiveDaemon* d;
      JobId id;
      ~Uncommit() { d->committing_.erase(id); }
    } uncommit{this, job.spec.id};

    const auto mate = peer_->get_mate_job(job.spec.group, job.spec.id);
    if (!mate) {
      say(name_, "job " + std::to_string(job.spec.id) +
                     " peer unreachable -> mate unknown -> start"
                     " uncoordinated (degraded)");
      return RunDecision::kStart;
    }
    if (!*mate) {
      say(name_, "job " + std::to_string(job.spec.id) +
                     " has no registered mate -> start normally");
      return RunDecision::kStart;
    }
    const MateStatus status =
        peer_->get_mate_status(**mate).value_or(MateStatus::kUnknown);
    say(name_, "job " + std::to_string(job.spec.id) + " mate status: " +
                   to_string(status));
    switch (status) {
      case MateStatus::kHolding:
        peer_->start_job(**mate);
        [[fallthrough]];
      case MateStatus::kStarting:
      case MateStatus::kRunning:
      case MateStatus::kFinished:
      case MateStatus::kUnknown:
        say(name_, "job " + std::to_string(job.spec.id) + " started");
        return RunDecision::kStart;
      case MateStatus::kQueuing:
      case MateStatus::kUnsubmitted:
      case MateStatus::kSuspected:
        if (peer_->try_start_mate(**mate).value_or(false)) {
          say(name_, "job " + std::to_string(job.spec.id) +
                         " started (mate started via tryStartMate)");
          return RunDecision::kStart;
        }
        if (try_context) return RunDecision::kSkip;
        say(name_, "job " + std::to_string(job.spec.id) +
                       " HOLDING for its mate");
        return RunDecision::kHold;
    }
    return RunDecision::kStart;
  }

  std::string name_;
  std::mutex mutex_;
  Scheduler sched_;
  PeerClient* peer_ = nullptr;
  std::map<GroupId, JobId> groups_;
  std::set<JobId> committing_;
};

/// Serves a LiveDaemon over localhost TCP: an accept loop spawning one
/// serve_channel thread per connection.  kill() models a daemon crash
/// (`kill -9`): the listener closes and every accepted connection is shut
/// down, so peers observe hard transport failures mid-conversation.
/// `dispatch` carries the daemon's incarnation and exactly-once cache,
/// shared by every connection it serves.
class DaemonHost {
 public:
  DaemonHost(CoschedService& daemon, std::uint16_t port,
             DispatcherConfig dispatch = {})
      : daemon_(daemon), dispatch_(dispatch), listener_(port) {
    accept_thread_ = std::thread([this] { accept_loop(); });
  }
  ~DaemonHost() { kill(); }

  std::uint16_t port() const { return listener_.port(); }

  void kill() {
    listener_.close();  // blocked accept() fails -> accept loop exits
    if (accept_thread_.joinable()) accept_thread_.join();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      for (int fd : live_fds_) ::shutdown(fd, SHUT_RDWR);
    }
    for (auto& t : serve_threads_) t.join();
    serve_threads_.clear();
  }

 private:
  void accept_loop() {
    for (;;) {
      Socket s;
      try {
        s = listener_.accept();
      } catch (const std::exception&) {
        return;  // listener closed: the daemon is dead
      }
      {
        std::lock_guard<std::mutex> lock(mutex_);
        live_fds_.push_back(s.fd());
      }
      serve_threads_.emplace_back(
          [this, sp = std::make_shared<Socket>(std::move(s))]() mutable {
            const int fd = sp->fd();
            FramedChannel ch(std::move(*sp));
            serve_channel(ch, daemon_, dispatch_);
            // Deregister before the channel closes the fd so kill() never
            // shuts down a recycled descriptor.
            std::lock_guard<std::mutex> lock(mutex_);
            live_fds_.erase(
                std::remove(live_fds_.begin(), live_fds_.end(), fd),
                live_fds_.end());
          });
    }
  }

  CoschedService& daemon_;
  DispatcherConfig dispatch_;
  TcpListener listener_;
  std::thread accept_thread_;
  std::vector<std::thread> serve_threads_;
  std::mutex mutex_;
  std::vector<int> live_fds_;
};

JobSpec make_job(JobId id, NodeCount nodes, GroupId group) {
  JobSpec j;
  j.id = id;
  j.submit = 0;
  j.runtime = 3600;
  j.walltime = 7200;
  j.nodes = nodes;
  j.group = group;
  return j;
}

WirePeer::ChannelFactory dial(std::uint16_t port) {
  return [port]() -> std::optional<FramedChannel> {
    try {
      return FramedChannel(tcp_connect(port));
    } catch (const std::exception&) {
      return std::nullopt;  // daemon down: nothing listening
    }
  };
}

void banner(const std::string& text) {
  std::lock_guard<std::mutex> lock(g_print_mutex);
  std::cout << "\n--- " << text << " ---\n";
}

}  // namespace

int main() {
  std::cout << "Live coscheduling daemons over localhost TCP, with a"
               " mid-run daemon crash and restart\n";

  // Tight fault-handling knobs so the whole demo runs in under a second:
  // half-second call deadline, two attempts, breaker opens on the first
  // failed call and probes again 50 ms later.
  WirePeerConfig cfg;
  cfg.call_deadline_ms = 500;
  cfg.retry.max_attempts = 2;
  cfg.retry.base_backoff_ms = 5;
  cfg.breaker.failure_threshold = 1;
  cfg.breaker.open_cooldown_ms = 50;

  // Incarnations are (daemon id << 32) | restart count, so a restarted
  // daemon's hello evicts only its own stale dedup entries on the server.
  constexpr std::uint64_t kComputeInc = (1ull << 32) | 1;
  constexpr std::uint64_t kAnalysisInc1 = (2ull << 32) | 1;
  constexpr std::uint64_t kAnalysisInc2 = (2ull << 32) | 2;

  LiveDaemon compute("compute ", 1024);
  RpcDedup compute_dedup;
  DaemonHost compute_host(compute, /*port=*/0,
                          DispatcherConfig{kComputeInc, &compute_dedup});

  auto analysis = std::make_unique<LiveDaemon>("analysis", 64);
  RpcDedup analysis_dedup;
  auto analysis_host = std::make_unique<DaemonHost>(
      *analysis, /*port=*/0, DispatcherConfig{kAnalysisInc1, &analysis_dedup});
  const std::uint16_t analysis_port = analysis_host->port();

  // Reconnecting peers: each daemon dials the other lazily and re-dials
  // after failures (the breaker's half-open probe goes through the factory).
  WirePeerConfig compute_cfg = cfg;
  compute_cfg.incarnation = kComputeInc;
  WirePeer compute_to_analysis(dial(analysis_port), compute_cfg);
  compute.set_peer(&compute_to_analysis);
  WirePeerConfig analysis_cfg = cfg;
  analysis_cfg.incarnation = kAnalysisInc1;
  auto analysis_to_compute =
      std::make_unique<WirePeer>(dial(compute_host.port()), analysis_cfg);
  analysis->set_peer(analysis_to_compute.get());

  // -- Phase 1: both daemons healthy -> paired start is synchronized.
  banner("phase 1: healthy co-start");
  analysis->register_mate(/*group=*/7, /*job=*/2001);
  compute.submit(make_job(1001, 512, 7));
  std::this_thread::sleep_for(std::chrono::milliseconds(150));
  analysis->submit(make_job(2001, 32, 7));
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  const bool phase1 = compute.running(1001) && analysis->running(2001);
  say("driver  ", std::string("pair C1/A1 co-started: ") +
                      (phase1 ? "yes" : "NO") + " (skew " +
                      std::to_string(std::llabs(compute.start_time(1001) -
                                                analysis->start_time(2001))) +
                      " ms)");

  // -- Phase 2: kill the analysis daemon mid-run.  The next paired submit
  // on compute degrades per §IV-C: peer calls fail, the breaker opens, and
  // the job starts uncoordinated instead of waiting forever.
  banner("phase 2: analysis daemon killed");
  analysis->set_peer(nullptr);
  analysis_to_compute.reset();
  analysis_host->kill();
  analysis_host.reset();
  analysis.reset();

  compute.submit(make_job(1002, 256, 8));
  const bool phase2 =
      compute.running(1002) && !compute_to_analysis.healthy();
  say("driver  ", std::string("C2 started uncoordinated with breaker ") +
                      to_string(compute_to_analysis.breaker_state()) + ": " +
                      (phase2 ? "yes" : "NO"));

  // -- Phase 3: restart the analysis daemon on the same port.  After the
  // cooldown the next call probes, the factory reconnects, the breaker
  // closes, and coscheduling resumes.
  banner("phase 3: analysis daemon restarted");
  auto analysis2 = std::make_unique<LiveDaemon>("analysis", 64);
  RpcDedup analysis2_dedup;
  analysis_host = std::make_unique<DaemonHost>(
      *analysis2, analysis_port,
      DispatcherConfig{kAnalysisInc2, &analysis2_dedup});
  WirePeerConfig analysis2_cfg = cfg;
  analysis2_cfg.incarnation = kAnalysisInc2;
  auto analysis2_to_compute =
      std::make_unique<WirePeer>(dial(compute_host.port()), analysis2_cfg);
  analysis2->set_peer(analysis2_to_compute.get());
  analysis2->register_mate(/*group=*/9, /*job=*/2003);
  std::this_thread::sleep_for(
      std::chrono::milliseconds(cfg.breaker.open_cooldown_ms + 30));

  compute.submit(make_job(1003, 128, 9));  // probe reconnects -> HOLD
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  analysis2->submit(make_job(2003, 16, 9));
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  const bool phase3 = compute.running(1003) && analysis2->running(2003) &&
                      compute_to_analysis.healthy();
  say("driver  ", std::string("pair C3/A3 co-started after restart: ") +
                      (phase3 ? "yes" : "NO") + " (skew " +
                      std::to_string(std::llabs(compute.start_time(1003) -
                                                analysis2->start_time(2003))) +
                      " ms)");

  const auto st = compute_to_analysis.stats();
  {
    std::lock_guard<std::mutex> lock(g_print_mutex);
    std::cout << "\ncompute->analysis transport: " << st.calls << " calls, "
              << st.failed_calls << " failed, " << st.reconnects
              << " reconnects, " << st.breaker_opens << " breaker opens, "
              << st.breaker_closes << " breaker closes\n";
  }

  const bool ok = phase1 && phase2 && phase3;
  std::cout << "\nDegradation and re-sync demonstrated: " << (ok ? "yes" : "NO")
            << "\n";

  // Orderly teardown: drop the client peers first so serve loops see EOF.
  compute.set_peer(nullptr);
  analysis2->set_peer(nullptr);
  analysis2_to_compute.reset();
  analysis_host.reset();
  analysis2.reset();
  return ok ? 0 : 1;
}

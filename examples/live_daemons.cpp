// Live (wall-clock, non-simulated) coscheduling daemons over a real socket.
//
// Two resource-manager daemons run in separate threads connected by a local
// stream socket, speaking the binary coordination protocol end to end —
// the deployment shape the paper targets ("jobs submitted to a compute
// resource running LSF can be coscheduled with jobs submitted to an analysis
// resource running PBS").  Each daemon owns a real Scheduler; Run_Job applies
// Algorithm 1 with the hold scheme.
//
// Timeline (wall-clock milliseconds standing in for minutes):
//   t=0   : compute daemon receives paired job C1 -> mate not ready -> HOLD
//   t=150 : analysis daemon receives mate job A1 -> both START together
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <iostream>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <thread>

#include "net/rpc.h"
#include "proto/peer.h"
#include "sched/scheduler.h"
#include "util/log.h"

using namespace cosched;

namespace {

std::mutex g_print_mutex;

void say(const std::string& who, const std::string& what) {
  std::lock_guard<std::mutex> lock(g_print_mutex);
  std::cout << "[" << who << "] " << what << std::endl;
}

/// A minimal live resource manager: one Scheduler + Algorithm 1, clocked by
/// wall time.  Thread-safe: the RPC server thread and the local submit path
/// both lock the daemon.
class LiveDaemon : public CoschedService {
 public:
  LiveDaemon(std::string name, NodeCount capacity)
      : name_(std::move(name)),
        sched_(capacity, make_policy("fcfs")) {}

  void set_peer(PeerClient* peer) { peer_ = peer; }

  void register_mate(GroupId group, JobId job) {
    std::lock_guard<std::mutex> lock(mutex_);
    groups_[group] = job;
  }

  void submit(const JobSpec& spec) {
    std::lock_guard<std::mutex> lock(mutex_);
    if (spec.is_paired()) groups_[spec.group] = spec.id;
    sched_.submit(spec, now());
    say(name_, "job " + std::to_string(spec.id) + " submitted");
    iterate_locked();
  }

  bool running(JobId id) {
    std::lock_guard<std::mutex> lock(mutex_);
    const RuntimeJob* j = sched_.find(id);
    return j && j->state == JobState::kRunning;
  }

  Time start_time(JobId id) {
    std::lock_guard<std::mutex> lock(mutex_);
    const RuntimeJob* j = sched_.find(id);
    return j ? j->start : kNoTime;
  }

  // -- CoschedService (called from the RPC server thread) ---------------
  std::optional<JobId> get_mate_job(GroupId group, JobId) override {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = groups_.find(group);
    if (it == groups_.end()) return std::nullopt;
    return it->second;
  }
  MateStatus get_mate_status(JobId job) override {
    std::lock_guard<std::mutex> lock(mutex_);
    if (committing_.count(job)) return MateStatus::kStarting;
    const RuntimeJob* j = sched_.find(job);
    if (!j) return MateStatus::kUnsubmitted;
    switch (j->state) {
      case JobState::kQueued: return MateStatus::kQueuing;
      case JobState::kHolding: return MateStatus::kHolding;
      case JobState::kRunning: return MateStatus::kRunning;
      case JobState::kFinished: return MateStatus::kFinished;
    }
    return MateStatus::kUnknown;
  }
  bool try_start_mate(JobId job) override {
    std::lock_guard<std::mutex> lock(mutex_);
    return sched_.try_start_specific(job, now(), [this](RuntimeJob& j) {
      return run_job_locked(j, /*try_context=*/true);
    });
  }
  bool start_job(JobId job) override {
    std::lock_guard<std::mutex> lock(mutex_);
    const RuntimeJob* j = sched_.find(job);
    if (!j || j->state != JobState::kHolding) return false;
    sched_.start_holding(job, now());
    say(name_, "holding job " + std::to_string(job) + " started (woken by mate)");
    return true;
  }

 private:
  static Time now() {
    return std::chrono::duration_cast<std::chrono::milliseconds>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
  }

  void iterate_locked() {
    sched_.iterate(now(), [this](RuntimeJob& j) {
      return run_job_locked(j, /*try_context=*/false);
    });
  }

  // Algorithm 1, two-domain form, against the live peer.
  RunDecision run_job_locked(RuntimeJob& job, bool try_context) {
    if (!job.spec.is_paired() || peer_ == nullptr) {
      say(name_, "job " + std::to_string(job.spec.id) + " started");
      return RunDecision::kStart;
    }
    committing_.insert(job.spec.id);
    struct Uncommit {
      LiveDaemon* d;
      JobId id;
      ~Uncommit() { d->committing_.erase(id); }
    } uncommit{this, job.spec.id};

    const auto mate = peer_->get_mate_job(job.spec.group, job.spec.id);
    if (!mate || !*mate) {
      say(name_, "job " + std::to_string(job.spec.id) +
                     " has no reachable mate -> start normally");
      return RunDecision::kStart;
    }
    const MateStatus status =
        peer_->get_mate_status(**mate).value_or(MateStatus::kUnknown);
    say(name_, "job " + std::to_string(job.spec.id) + " mate status: " +
                   to_string(status));
    switch (status) {
      case MateStatus::kHolding:
        peer_->start_job(**mate);
        [[fallthrough]];
      case MateStatus::kStarting:
      case MateStatus::kRunning:
      case MateStatus::kFinished:
      case MateStatus::kUnknown:
        say(name_, "job " + std::to_string(job.spec.id) + " started");
        return RunDecision::kStart;
      case MateStatus::kQueuing:
      case MateStatus::kUnsubmitted:
        if (peer_->try_start_mate(**mate).value_or(false)) {
          say(name_, "job " + std::to_string(job.spec.id) +
                         " started (mate started via tryStartMate)");
          return RunDecision::kStart;
        }
        if (try_context) return RunDecision::kSkip;
        say(name_, "job " + std::to_string(job.spec.id) +
                       " HOLDING for its mate");
        return RunDecision::kHold;
    }
    return RunDecision::kStart;
  }

  std::string name_;
  std::mutex mutex_;
  Scheduler sched_;
  PeerClient* peer_ = nullptr;
  std::map<GroupId, JobId> groups_;
  std::set<JobId> committing_;
};

JobSpec make_job(JobId id, NodeCount nodes, GroupId group) {
  JobSpec j;
  j.id = id;
  j.submit = 0;
  j.runtime = 3600;
  j.walltime = 7200;
  j.nodes = nodes;
  j.group = group;
  return j;
}

}  // namespace

int main() {
  std::cout << "Live coscheduling daemons over a local stream socket\n\n";

  LiveDaemon compute("compute ", 1024);
  LiveDaemon analysis("analysis", 64);

  // Full duplex: each daemon is a client of the other, over two socket
  // pairs (one per direction), each served by a dedicated thread.
  auto [c2a_client, c2a_server] = Socket::pair();
  auto [a2c_client, a2c_server] = Socket::pair();
  auto compute_to_analysis =
      std::make_unique<WirePeer>(FramedChannel(std::move(c2a_client)));
  auto analysis_to_compute =
      std::make_unique<WirePeer>(FramedChannel(std::move(a2c_client)));
  compute.set_peer(compute_to_analysis.get());
  analysis.set_peer(analysis_to_compute.get());

  std::thread serve_analysis([&, s = std::move(c2a_server)]() mutable {
    FramedChannel ch(std::move(s));
    serve_channel(ch, analysis);
  });
  std::thread serve_compute([&, s = std::move(a2c_server)]() mutable {
    FramedChannel ch(std::move(s));
    serve_channel(ch, compute);
  });

  // Pre-register the association on both sides (the user declared the pair
  // at submission time), then submit with a wall-clock gap.
  analysis.register_mate(/*group=*/7, /*job=*/2001);
  compute.submit(make_job(1001, 512, 7));
  std::this_thread::sleep_for(std::chrono::milliseconds(150));
  analysis.submit(make_job(2001, 32, 7));

  // Give the cascade a moment, then verify both are running.
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  const bool ok = compute.running(1001) && analysis.running(2001);
  std::cout << "\nBoth members running: " << (ok ? "yes" : "NO") << "\n";
  if (ok) {
    const Time skew =
        std::llabs(compute.start_time(1001) - analysis.start_time(2001));
    std::cout << "Start skew over the wire: " << skew << " ms\n";
  }

  // Closing our client endpoints sends EOF to the server threads.
  compute.set_peer(nullptr);
  analysis.set_peer(nullptr);
  compute_to_analysis.reset();
  analysis_to_compute.reset();
  serve_analysis.join();
  serve_compute.join();
  return ok ? 0 : 1;
}

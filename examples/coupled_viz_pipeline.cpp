// Coupled simulation + visualization pipeline (the paper's §II-B motivation:
// FLASH with VL3, PHASTA with ParaView).
//
// A month of compute jobs runs on an Intrepid-like machine; a fraction of
// them are coupled to analysis jobs on a Eureka-like cluster.  We compare:
//   1. post-hoc analysis    — the analysis job is submitted only after the
//                             compute job finishes (today's common practice);
//   2. coscheduled co-execution — both start together, so output is analyzed
//                             at run time and I/O can stream over the network.
//
// The figure of merit is the end-to-end "insight latency" of a coupled
// campaign: compute submission -> analysis completion.
#include <iostream>
#include <map>

#include "core/coupled_sim.h"
#include "util/flags.h"
#include "util/table.h"
#include "workload/pairing.h"
#include "workload/synth.h"

using namespace cosched;

namespace {

struct Campaign {
  Trace compute;
  Trace analysis;  // used in the coscheduled variant
};

Campaign make_campaign(double paired_share, std::uint64_t seed) {
  SynthParams p;
  p.job_count = 2000;
  p.span = 10 * kDay;
  p.offered_load = 0.65;
  p.seed = seed;
  Campaign c;
  c.compute = generate_trace(intrepid_model(), p);

  SynthParams q;
  q.span = 10 * kDay;
  q.offered_load = 0.4;
  q.seed = seed + 1;
  c.analysis = generate_trace(eureka_model(), q);
  for (auto& j : c.analysis.jobs()) j.id += 1000000;
  pair_by_proportion(c.compute, c.analysis, paired_share, seed + 2);
  return c;
}

// End-to-end latency of coupled work under post-hoc execution: the analysis
// job is resubmitted at its compute mate's completion time.
double post_hoc_latency_minutes(const Campaign& c) {
  // First, run compute alone.
  std::vector<DomainSpec> specs = make_coupled_specs(
      "intrepid", 40960, "eureka", 100, kYY, /*cosched_enabled=*/false);
  specs[0].policy = specs[1].policy = "wfp";

  Trace compute = c.compute;
  for (auto& j : compute.jobs()) j.group = kNoGroup;
  CoupledSim phase1(specs, {compute, Trace{}});
  phase1.run();

  // Then resubmit each coupled analysis job at its mate's end time (group
  // ids were cleared in the submitted copy; recover from the original
  // trace).
  std::map<GroupId, Time> compute_end;
  for (const JobSpec& orig : c.compute.jobs()) {
    if (!orig.is_paired()) continue;
    const RuntimeJob* j = phase1.cluster(0).scheduler().find(orig.id);
    compute_end[orig.group] = j->end;
  }

  Trace analysis;
  for (const JobSpec& j : c.analysis.jobs()) {
    JobSpec copy = j;
    if (copy.is_paired()) copy.submit = compute_end.at(copy.group);
    copy.group = kNoGroup;
    analysis.add(copy);
  }
  analysis.sort_by_submit();
  CoupledSim phase2(specs, {Trace{}, analysis});
  phase2.run();

  // Latency: compute submit -> analysis end, averaged over coupled groups.
  double total = 0;
  std::size_t n = 0;
  for (const JobSpec& orig : c.compute.jobs()) {
    if (!orig.is_paired()) continue;
    for (const JobSpec& mate : c.analysis.jobs()) {
      if (mate.group != orig.group) continue;
      const RuntimeJob* aj = phase2.cluster(1).scheduler().find(mate.id);
      total += to_minutes(aj->end - orig.submit);
      ++n;
      break;
    }
  }
  return n ? total / static_cast<double>(n) : 0.0;
}

// End-to-end latency under coscheduled co-execution.
double coscheduled_latency_minutes(const Campaign& c, SchemeCombo combo) {
  std::vector<DomainSpec> specs =
      make_coupled_specs("intrepid", 40960, "eureka", 100, combo);
  specs[0].policy = specs[1].policy = "wfp";
  CoupledSim sim(specs, {c.compute, c.analysis});
  const SimResult r = sim.run(24 * 30 * kDay);
  if (!r.completed) return -1;

  double total = 0;
  std::size_t n = 0;
  for (const JobSpec& orig : c.compute.jobs()) {
    if (!orig.is_paired()) continue;
    for (const JobSpec& mate : c.analysis.jobs()) {
      if (mate.group != orig.group) continue;
      const RuntimeJob* aj = sim.cluster(1).scheduler().find(mate.id);
      total += to_minutes(aj->end - orig.submit);
      ++n;
      break;
    }
  }
  return n ? total / static_cast<double>(n) : 0.0;
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags;
  flags.define("paired-share", "0.1",
               "fraction of compute jobs coupled to analysis jobs");
  flags.define("seed", "7", "workload seed");
  try {
    flags.parse(argc, argv);
  } catch (const Error& e) {
    std::cerr << e.what() << "\n" << flags.usage(argv[0]);
    return 2;
  }

  const Campaign c =
      make_campaign(flags.get_double("paired-share"),
                    static_cast<std::uint64_t>(flags.get_int("seed")));
  std::cout << "Coupled viz pipeline: " << c.compute.size()
            << " compute jobs, " << c.analysis.size() << " analysis jobs, "
            << c.compute.stats().paired_count << " coupled pairs\n\n";

  const double post_hoc = post_hoc_latency_minutes(c);
  std::cout << "post-hoc execution  : avg insight latency "
            << format_double(post_hoc) << " min\n";
  for (const SchemeCombo& combo : {kHY, kYY}) {
    const double v = coscheduled_latency_minutes(c, combo);
    std::cout << "coscheduled (" << combo.label << ")    : avg insight latency "
              << format_double(v) << " min  ("
              << format_percent(1.0 - v / post_hoc, 1) << " faster)\n";
  }
  std::cout << "\nCo-execution removes the second queue wait and overlaps\n"
               "analysis with the run — the benefit the paper's motivating\n"
               "applications (FLASH/VL3, PHASTA/ParaView) are after.\n";
  return 0;
}

// cosched_lint CLI: lints the given files/directories and exits nonzero on
// any unwaived finding.  Registered as the `lint`-labeled ctest target so
// `ctest -L lint` gates the tree.
//
//   cosched_lint [--verbose-waivers] [--json <path>] <dir-or-file>...
//
// The final summary line is stable and machine-parseable (CI step
// summaries grep it):
//   cosched-lint: files=N findings=F ordered_waivers=X allow_waivers=Y
//       unused_waivers=U
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "lint.h"

int main(int argc, char** argv) {
  std::vector<std::string> roots;
  std::string json_path;
  bool verbose_waivers = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--verbose-waivers") {
      verbose_waivers = true;
    } else if (arg == "--json") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "cosched_lint: --json needs a path\n");
        return 2;
      }
      json_path = argv[++i];
    } else if (arg == "--help" || arg == "-h") {
      std::printf(
          "usage: cosched_lint [--verbose-waivers] [--json <path>] "
          "<dir-or-file>...\n");
      return 0;
    } else {
      roots.push_back(arg);
    }
  }
  if (roots.empty()) {
    std::fprintf(stderr, "cosched_lint: no inputs (try --help)\n");
    return 2;
  }

  cosched::lint::Report report;
  std::string error;
  if (!cosched::lint::lint_paths(roots, report, error)) {
    std::fprintf(stderr, "cosched_lint: %s\n", error.c_str());
    return 2;
  }

  for (const auto& f : report.findings)
    std::printf("%s\n", cosched::lint::to_string(f).c_str());
  if (verbose_waivers) {
    for (const auto& f : report.waived)
      std::printf("waived: %s\n", cosched::lint::to_string(f).c_str());
  }
  // Unused waivers are advisory (never fail the run) but always printed:
  // stale waivers are debt the next reviewer should see.
  for (const auto& f : report.unused_waivers)
    std::printf("note: %s\n", cosched::lint::to_string(f).c_str());

  if (!json_path.empty()) {
    std::ofstream out(json_path, std::ios::binary);
    if (!out) {
      std::fprintf(stderr, "cosched_lint: cannot write %s\n",
                   json_path.c_str());
      return 2;
    }
    out << cosched::lint::to_json(report);
  }

  std::printf(
      "cosched-lint: files=%zu findings=%zu ordered_waivers=%d "
      "allow_waivers=%d unused_waivers=%zu\n",
      report.files_scanned, report.findings.size(),
      report.ordered_waivers_used, report.allow_waivers_used,
      report.unused_waivers.size());
  return report.findings.empty() ? 0 : 1;
}

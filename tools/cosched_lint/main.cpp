// cosched_lint CLI: lints the given files/directories and exits nonzero on
// any unwaived finding.  Registered as the `lint`-labeled ctest target so
// `ctest -L lint` gates the tree.
//
//   cosched_lint [--verbose-waivers] <dir-or-file>...
//
// The final summary line is stable and machine-parseable (CI step
// summaries grep it):
//   cosched-lint: files=N findings=F ordered_waivers=X allow_waivers=Y
#include <cstdio>
#include <string>
#include <vector>

#include "lint.h"

int main(int argc, char** argv) {
  std::vector<std::string> roots;
  bool verbose_waivers = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--verbose-waivers") {
      verbose_waivers = true;
    } else if (arg == "--help" || arg == "-h") {
      std::printf("usage: cosched_lint [--verbose-waivers] <dir-or-file>...\n");
      return 0;
    } else {
      roots.push_back(arg);
    }
  }
  if (roots.empty()) {
    std::fprintf(stderr, "cosched_lint: no inputs (try --help)\n");
    return 2;
  }

  cosched::lint::Report report;
  std::string error;
  if (!cosched::lint::lint_paths(roots, report, error)) {
    std::fprintf(stderr, "cosched_lint: %s\n", error.c_str());
    return 2;
  }

  for (const auto& f : report.findings)
    std::printf("%s\n", cosched::lint::to_string(f).c_str());
  if (verbose_waivers) {
    for (const auto& f : report.waived)
      std::printf("waived: %s\n", cosched::lint::to_string(f).c_str());
  }
  std::printf("cosched-lint: files=%zu findings=%zu ordered_waivers=%d "
              "allow_waivers=%d\n",
              report.files_scanned, report.findings.size(),
              report.ordered_waivers_used, report.allow_waivers_used);
  return report.findings.empty() ? 0 : 1;
}

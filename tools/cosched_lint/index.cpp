#include "index.h"

#include <algorithm>
#include <cctype>
#include <filesystem>

namespace cosched::lint {

namespace {

bool is_space(char c) {
  return std::isspace(static_cast<unsigned char>(c)) != 0;
}

bool is_digit(char c) {
  return std::isdigit(static_cast<unsigned char>(c)) != 0;
}

/// Multi-character punctuators the extractors care about.  Everything else
/// lexes as a single character.
const char* kPuncts[] = {
    "<<=", ">>=", "::", "->", "++", "--", "+=", "-=", "*=", "/=",
    "%=",  "|=",  "&=", "^=", "==", "!=", "<=", ">=", "&&", "||",
    "<<",  ">>",
};

bool is_keyword(const std::string& s) {
  static const std::set<std::string> kw = {
      "if",     "for",    "while",  "switch",   "return", "sizeof",
      "catch",  "new",    "delete", "throw",    "case",   "default",
      "do",     "else",   "goto",   "co_await", "co_return",
  };
  return kw.count(s) != 0;
}

/// ALL_CAPS identifiers are attribute/annotation macros (REQUIRES,
/// ACQUIRE, GUARDED_BY, COSCHED_*) when they appear between a parameter
/// list and a function body.
bool is_annotation_macro(const std::string& s) {
  if (s.size() < 2) return false;
  bool has_alpha = false;
  for (char c : s) {
    if (std::islower(static_cast<unsigned char>(c)) != 0) return false;
    if (std::isupper(static_cast<unsigned char>(c)) != 0) has_alpha = true;
  }
  return has_alpha;
}

bool is_specifier(const std::string& s) {
  static const std::set<std::string> spec = {"const",   "noexcept", "override",
                                             "final",   "mutable",  "try",
                                             "volatile"};
  return spec.count(s) != 0;
}

void tokenize_file(const std::vector<std::string>& code,
                   std::vector<Token>& out) {
  // `continuation` marks lines swallowed by a backslash-continued #directive.
  bool continuation = false;
  for (std::size_t li = 0; li < code.size(); ++li) {
    const std::string& line = code[li];
    std::size_t first = 0;
    while (first < line.size() && is_space(line[first])) ++first;
    const bool directive = first < line.size() && line[first] == '#';
    if (directive || continuation) {
      // Preprocessor lines are skipped so unbalanced macro bodies cannot
      // desynchronize brace tracking; line rules still see them.
      continuation = !line.empty() && line.back() == '\\';
      continue;
    }
    continuation = false;
    for (std::size_t i = 0; i < line.size();) {
      const char c = line[i];
      if (is_space(c)) {
        ++i;
        continue;
      }
      if (is_ident_char(c)) {
        std::size_t b = i;
        while (i < line.size() && is_ident_char(line[i])) ++i;
        Token t;
        t.kind = is_digit(c) ? Token::kNumber : Token::kIdent;
        t.text = line.substr(b, i - b);
        t.line = static_cast<int>(li + 1);
        t.col = static_cast<int>(b);
        out.push_back(std::move(t));
        continue;
      }
      std::string text(1, c);
      for (const char* p : kPuncts) {
        const std::size_t n = std::string(p).size();
        if (line.compare(i, n, p) == 0) {
          text = p;
          break;
        }
      }
      Token t;
      t.kind = Token::kPunct;
      t.text = text;
      t.line = static_cast<int>(li + 1);
      t.col = static_cast<int>(i);
      out.push_back(std::move(t));
      i += text.size();
    }
  }
}

/// Index of the '(' matching the ')' at `close`, or npos.
std::size_t match_back(const std::vector<Token>& toks, std::size_t close) {
  int depth = 0;
  for (std::size_t i = close + 1; i-- > 0;) {
    if (toks[i].text == ")") ++depth;
    if (toks[i].text == "(" && --depth == 0) return i;
  }
  return std::string::npos;
}

std::size_t match_forward(const std::vector<Token>& toks, std::size_t open,
                          const char* o, const char* c) {
  int depth = 0;
  for (std::size_t i = open; i < toks.size(); ++i) {
    if (toks[i].text == o) ++depth;
    if (toks[i].text == c && --depth == 0) return i;
  }
  return std::string::npos;
}

struct BraceInfo {
  enum Kind { kNamespace, kClass, kEnum, kFunction, kOther } kind = kOther;
  std::string name;  // class/enum/function name
  std::string cls;   // explicit A::B qualifier on a function definition
  bool requires_lock = false;
  int name_line = 0;
};

/// Classifies the '{' at token index `t` given the statement context.  Only
/// called at namespace/class/global scope — braces inside function bodies
/// are plain blocks.
BraceInfo classify_brace(const std::vector<Token>& toks, std::size_t t) {
  BraceInfo info;
  // Statement start: just after the previous ';', '{' or '}'.
  std::size_t s = 0;
  for (std::size_t i = t; i-- > 0;) {
    const std::string& x = toks[i].text;
    if (x == ";" || x == "{" || x == "}") {
      s = i + 1;
      break;
    }
  }
  for (std::size_t i = s; i < t; ++i) {
    if (toks[i].text == "namespace") {
      info.kind = BraceInfo::kNamespace;
      return info;
    }
    if (toks[i].text == "enum") {
      info.kind = BraceInfo::kEnum;
      for (std::size_t j = i + 1; j < t; ++j) {
        if (toks[j].kind != Token::kIdent) break;
        if (toks[j].text == "class" || toks[j].text == "struct") continue;
        info.name = toks[j].text;
        info.name_line = toks[j].line;
        break;
      }
      return info;
    }
  }

  // Class/struct definition: the keyword is present and no parameter list
  // precedes the brace (a `struct Foo make() {` function falls through).
  {
    bool has_paren = false;
    std::size_t kw = std::string::npos;
    for (std::size_t i = s; i < t; ++i) {
      if (toks[i].text == "(") has_paren = true;
      if (toks[i].text == "class" || toks[i].text == "struct") kw = i;
    }
    if (kw != std::string::npos && !has_paren) {
      info.kind = BraceInfo::kClass;
      if (kw + 1 < t && toks[kw + 1].kind == Token::kIdent) {
        info.name = toks[kw + 1].text;
        info.name_line = toks[kw + 1].line;
      }
      return info;
    }
  }

  // Function definition: walk back from '{' over trailing specifiers and
  // annotation-macro calls to the parameter list, then read the (possibly
  // qualified) name.  Constructor initializer lists are stepped over.
  std::size_t i = t;
  while (i > s) {
    --i;
    const Token& tok = toks[i];
    if (tok.kind == Token::kIdent && is_specifier(tok.text)) continue;
    if (tok.text != ")") break;
    const std::size_t open = match_back(toks, i);
    if (open == std::string::npos || open == 0 || open <= s) break;
    const Token& before = toks[open - 1];
    if (before.kind != Token::kIdent) break;
    if (is_annotation_macro(before.text) || before.text == "noexcept" ||
        before.text == "decltype") {
      if (before.text == "REQUIRES") info.requires_lock = true;
      i = open - 1;
      continue;
    }
    if (is_keyword(before.text)) break;
    // Candidate name at open-1; resolve an explicit A::B:: qualifier chain.
    std::size_t chain_start = open - 1;  // first token of Cls::name chain
    std::string cls;
    if (chain_start >= s + 2 && toks[chain_start - 1].text == "::" &&
        toks[chain_start - 2].kind == Token::kIdent) {
      cls = toks[chain_start - 2].text;  // innermost qualifier wins
      chain_start -= 2;
      while (chain_start >= s + 2 && toks[chain_start - 1].text == "::" &&
             toks[chain_start - 2].kind == Token::kIdent)
        chain_start -= 2;  // skip any outer namespace qualifiers
    }
    // Constructor initializer-list entry?  `Foo::Foo(...) : a_(x), b_(y) {`
    // walking back lands on `b_` — hop to the ')' of the real parameter
    // list (the one preceding the ':' that introduces the list).
    if (chain_start > s) {
      const std::string& p = toks[chain_start - 1].text;
      if (p == "," || p == ":") {
        bool hopped = false;
        int depth = 0;
        for (std::size_t m = chain_start - 1; m-- > s;) {
          const std::string& x = toks[m].text;
          if (x == ")" || x == "]" || x == "}") ++depth;
          if (x == "(" || x == "[" || x == "{") --depth;
          if (depth == 0 && x == ":" && m > s && toks[m - 1].text == ")") {
            i = m;  // next loop iteration steps onto the ')'
            hopped = true;
            break;
          }
        }
        if (hopped) continue;
        break;
      }
    }
    info.kind = BraceInfo::kFunction;
    info.name = before.text;
    info.cls = cls;
    info.name_line = before.line;
    return info;
  }
  return info;
}

/// Mutating container/method calls that count as member writes for the
/// snapshot-coverage analysis.
bool is_mutator_method(const std::string& s) {
  static const std::set<std::string> m = {
      "insert",     "erase",      "clear",    "emplace", "emplace_back",
      "push_back",  "pop_back",   "push",     "pop",     "push_front",
      "pop_front",  "assign",     "resize",   "reset",   "emplace_hint",
      "insert_or_assign",
  };
  return m.count(s) != 0;
}

bool is_assign_op(const std::string& s) {
  static const std::set<std::string> ops = {"=",  "+=", "-=",  "*=",  "/=",
                                            "%=", "|=", "&=",  "^=",  "<<=",
                                            ">>=", "++", "--"};
  return ops.count(s) != 0;
}

struct Scope {
  BraceInfo::Kind kind = BraceInfo::kOther;
  std::string name;
  std::size_t open = 0;
  int func = -1;  // index into index.functions for kFunction scopes
};

std::string ident_before_col(const std::string& code, std::size_t pos) {
  std::size_t b = pos;
  while (b > 0 && is_ident_char(code[b - 1])) --b;
  return code.substr(b, pos - b);
}

/// Column where a worker dispatch starts on this line, or npos: raw
/// std::thread construction, `<pool>.run(` / `->run(`, and
/// `<threads>.emplace_back(`/`.push_back(` thread-vector fills.
std::size_t worker_dispatch_col(const std::string& code) {
  const std::size_t t = code.find("std::thread(");
  if (t != std::string::npos) return t;
  struct Pat {
    const char* pat;
    const char* recv_hint;
  };
  static const Pat kPats[] = {{"->run(", "pool"},
                              {".run(", "pool"},
                              {".emplace_back(", "thread"},
                              {".push_back(", "thread"}};
  for (const Pat& p : kPats) {
    std::size_t pos = 0;
    while ((pos = code.find(p.pat, pos)) != std::string::npos) {
      std::string recv = ident_before_col(code, pos);
      std::transform(recv.begin(), recv.end(), recv.begin(),
                     [](unsigned char c) { return std::tolower(c); });
      if (recv.find(p.recv_hint) != std::string::npos) return pos;
      pos += 1;
    }
  }
  return std::string::npos;
}

/// Parses call sites out of one unguarded lambda-body slice.
void collect_slice_calls(const std::string& body, int line,
                         std::vector<CallSite>& out) {
  for (std::size_t i = 0; i < body.size();) {
    if (!is_ident_char(body[i])) {
      ++i;
      continue;
    }
    const std::size_t b = i;
    while (i < body.size() && is_ident_char(body[i])) ++i;
    const std::string name = body.substr(b, i - b);
    std::size_t j = i;
    while (j < body.size() && is_space(body[j])) ++j;
    if (j >= body.size() || body[j] != '(') continue;
    if (is_keyword(name) || is_digit(name[0])) continue;
    CallSite c;
    c.name = name;
    c.line = line;
    if (b >= 1 && body[b - 1] == '.')
      c.receiver = ident_before_col(body, b - 1);
    else if (b >= 2 && body[b - 2] == '-' && body[b - 1] == '>')
      c.receiver = ident_before_col(body, b - 2);
    out.push_back(std::move(c));
  }
}

/// Walks the first lambda body after each dispatch site, slicing it line by
/// line with the v1 sticky guarded flag, and collecting unguarded calls as
/// interprocedural seeds.
void collect_pool_lambdas(const std::vector<std::string>& code, int file,
                          std::vector<PoolLambda>& out) {
  for (std::size_t i = 0; i < code.size(); ++i) {
    const std::size_t dispatch = worker_dispatch_col(code[i]);
    if (dispatch == std::string::npos) continue;

    std::size_t line = i, col = dispatch;
    bool found_lambda = false;
    for (; line < code.size() && line < i + 4 && !found_lambda; ++line) {
      const std::size_t l = code[line].find('[', col);
      if (l != std::string::npos) {
        col = l;
        found_lambda = true;
        break;
      }
      col = 0;
    }
    if (!found_lambda) continue;

    PoolLambda lam;
    lam.file = file;
    lam.line = static_cast<int>(i + 1);

    int depth = 0;
    bool body_entered = false;
    bool guarded = false;
    for (std::size_t j = line; j < code.size(); ++j) {
      const std::string& c = code[j];
      const std::size_t from = (j == line) ? col : 0;
      const bool was_in_body = body_entered;
      std::size_t open_col = std::string::npos;
      std::size_t close_col = std::string::npos;
      for (std::size_t k = from; k < c.size(); ++k) {
        if (c[k] == '{') {
          ++depth;
          if (!body_entered) {
            body_entered = true;
            open_col = k;
          }
        }
        if (c[k] == '}' && --depth == 0) {
          close_col = k;
          break;
        }
      }
      if (body_entered) {
        const std::size_t b = was_in_body ? 0 : open_col + 1;
        const std::size_t e =
            close_col == std::string::npos ? c.size() : close_col;
        const std::string body = c.substr(b, e - b);
        if (body.find("MutexLock") != std::string::npos ||
            body.find("REQUIRES(") != std::string::npos)
          guarded = true;
        PoolLambda::Slice slice;
        slice.line = static_cast<int>(j + 1);
        slice.body = body;
        slice.guarded = guarded;
        if (!guarded)
          collect_slice_calls(body, slice.line, lam.calls);
        lam.slices.push_back(std::move(slice));
      }
      if (close_col != std::string::npos) break;
    }
    out.push_back(std::move(lam));
  }
}

void scan_container_decls(const std::vector<std::string>& code,
                          const char* const* types, std::size_t n_types,
                          std::set<std::string>* vars,
                          std::set<std::string>* accessors) {
  for (const std::string& codeline : code) {
    for (std::size_t t = 0; t < n_types; ++t) {
      const char* type = types[t];
      std::size_t pos = 0;
      while ((pos = codeline.find(type, pos)) != std::string::npos) {
        // Identifier boundary so "map" never matches inside "unordered_map".
        if (pos > 0 && is_ident_char(codeline[pos - 1])) {
          pos += 1;
          continue;
        }
        std::size_t i = pos + std::string(type).size();
        pos = i;
        if (i >= codeline.size() || codeline[i] != '<') continue;
        int depth = 0;
        for (; i < codeline.size(); ++i) {
          if (codeline[i] == '<') ++depth;
          if (codeline[i] == '>' && --depth == 0) break;
        }
        if (i >= codeline.size()) continue;  // args continue on the next line
        ++i;
        while (i < codeline.size() &&
               (is_space(codeline[i]) || codeline[i] == '&' ||
                codeline[i] == '*'))
          ++i;
        std::size_t name_begin = i;
        while (i < codeline.size() && is_ident_char(codeline[i])) ++i;
        if (i == name_begin) continue;  // e.g. "#include <unordered_map>"
        const std::string name = codeline.substr(name_begin, i - name_begin);
        while (i < codeline.size() && is_space(codeline[i])) ++i;
        if (i < codeline.size() && codeline[i] == '(') {
          if (accessors != nullptr) accessors->insert(name);
        } else {
          if (vars != nullptr) vars->insert(name);
        }
      }
    }
  }
}

void scan_unordered_decls(const std::vector<std::string>& code,
                          UnorderedDecls& out) {
  static const char* kUnordered[] = {"unordered_map", "unordered_set",
                                     "unordered_multimap",
                                     "unordered_multiset"};
  static const char* kOrdered[] = {"vector",   "map",   "set",   "multimap",
                                   "multiset", "deque", "array", "list"};
  scan_container_decls(code, kUnordered, std::size(kUnordered), &out.vars,
                       &out.accessors);
  scan_container_decls(code, kOrdered, std::size(kOrdered), nullptr,
                       &out.ordered_accessors);
}

std::string file_stem(const std::string& path) {
  return std::filesystem::path(path).stem().string();
}

/// Extracts functions, enums, locks, calls, mutations and case labels from
/// one file's token stream.
void extract_file(ProjectIndex& index, int file) {
  const std::vector<Token>& toks = index.file_model[file].tokens;
  std::vector<Scope> stack;
  struct PendingLock {
    int func = -1;
    std::size_t lock_idx = 0;  // index into functions[func].locks
    std::size_t block_open = 0;
  };
  std::vector<PendingLock> pending_locks;
  std::vector<std::size_t> open_blocks;  // '{' token indices inside a function

  const auto current_func = [&]() -> int {
    for (std::size_t i = stack.size(); i-- > 0;) {
      if (stack[i].kind == BraceInfo::kFunction) return stack[i].func;
      if (stack[i].kind == BraceInfo::kClass ||
          stack[i].kind == BraceInfo::kNamespace)
        return -1;
    }
    return -1;
  };
  const auto enclosing_class = [&]() -> std::string {
    for (std::size_t i = stack.size(); i-- > 0;)
      if (stack[i].kind == BraceInfo::kClass) return stack[i].name;
    return "";
  };

  for (std::size_t t = 0; t < toks.size(); ++t) {
    const Token& tok = toks[t];
    const int fn = current_func();

    if (tok.text == "{") {
      if (fn >= 0) {
        Scope s;
        s.kind = BraceInfo::kOther;
        s.open = t;
        s.func = fn;
        stack.push_back(s);
        open_blocks.push_back(t);
        continue;
      }
      BraceInfo info = classify_brace(toks, t);
      Scope s;
      s.kind = info.kind;
      s.open = t;
      if (info.kind == BraceInfo::kFunction) {
        FunctionInfo f;
        f.cls = !info.cls.empty() ? info.cls : enclosing_class();
        f.name = info.name;
        f.file = file;
        f.line = info.name_line;
        f.body_first_line = tok.line;
        f.body_begin = t;
        f.requires_lock = info.requires_lock;
        index.functions.push_back(std::move(f));
        s.func = static_cast<int>(index.functions.size() - 1);
        open_blocks.push_back(t);
        if (info.requires_lock)
          index.requires_annotated.insert(
              index.functions.back().qualified());
      } else if (info.kind == BraceInfo::kClass) {
        s.name = info.name;
      } else if (info.kind == BraceInfo::kEnum) {
        EnumInfo e;
        e.name = info.name;
        e.file = file;
        e.line = info.name_line;
        index.enums.push_back(std::move(e));
        s.name = info.name;
      }
      stack.push_back(s);
      continue;
    }

    if (tok.text == "}") {
      if (stack.empty()) continue;
      Scope s = stack.back();
      stack.pop_back();
      if (s.kind == BraceInfo::kFunction && s.func >= 0) {
        FunctionInfo& f = index.functions[s.func];
        f.body_end = t;
        f.body_last_line = tok.line;
      }
      if (!open_blocks.empty() && open_blocks.back() == s.open) {
        open_blocks.pop_back();
        for (PendingLock& pl : pending_locks) {
          if (pl.block_open == s.open && pl.func >= 0) {
            LockSite& l = index.functions[pl.func].locks[pl.lock_idx];
            if (l.scope_end == 0) l.scope_end = t;
          }
        }
      }
      continue;
    }

    // Enum body: enumerators are identifiers right after '{' or ','.
    if (!stack.empty() && stack.back().kind == BraceInfo::kEnum &&
        tok.kind == Token::kIdent && t > 0 &&
        (toks[t - 1].text == "{" || toks[t - 1].text == ",")) {
      if (!index.enums.empty())
        index.enums.back().enumerators.push_back({tok.text, tok.line});
      continue;
    }

    // REQUIRES on a declaration (header) or definition: remember which
    // function it belongs to and which mutex it names.
    if (tok.kind == Token::kIdent && tok.text == "REQUIRES" &&
        t + 1 < toks.size() && toks[t + 1].text == "(") {
      const std::size_t close = match_forward(toks, t + 1, "(", ")");
      std::string mutex;
      if (close != std::string::npos)
        for (std::size_t m = t + 2; m < close; ++m) mutex += toks[m].text;
      // The annotated function's name: the identifier before the preceding
      // parameter list.
      if (t >= 1 && toks[t - 1].text == ")") {
        const std::size_t open = match_back(toks, t - 1);
        if (open != std::string::npos && open > 0 &&
            toks[open - 1].kind == Token::kIdent) {
          std::string cls = enclosing_class();
          std::string name = toks[open - 1].text;
          if (open >= 3 && toks[open - 2].text == "::" &&
              toks[open - 3].kind == Token::kIdent)
            cls = toks[open - 3].text;
          const std::string q = cls.empty() ? name : cls + "::" + name;
          index.requires_annotated.insert(q);
          if (!mutex.empty()) {
            const std::string qm =
                (mutex.find(':') == std::string::npos &&
                 mutex.find('.') == std::string::npos &&
                 mutex.rfind("g_", 0) != 0 && !cls.empty())
                    ? cls + "::" + mutex
                    : mutex;
            index.requires_mutexes.emplace(q, qm);
          }
        }
      }
    }

    // thread_local declarations: worker-own state, exempt from lane purity.
    if (tok.kind == Token::kIdent && tok.text == "thread_local") {
      std::string name;
      for (std::size_t j = t + 1; j < toks.size(); ++j) {
        const std::string& x = toks[j].text;
        if (x == ";" || x == "=" || x == "{") break;
        if (toks[j].kind == Token::kIdent) name = x;
      }
      if (!name.empty()) index.thread_locals.insert(name);
    }

    if (fn < 0) continue;
    FunctionInfo& f = index.functions[fn];

    // case Enum::kX: labels.
    if (tok.kind == Token::kIdent &&
        (tok.text == "case" || tok.text == "default")) {
      CaseSite cs;
      cs.token = t;
      cs.line = tok.line;
      if (tok.text == "default") {
        cs.enumerator = "default";
      } else {
        std::size_t j = t + 1;
        std::vector<std::string> chain;
        while (j < toks.size() && toks[j].kind == Token::kIdent) {
          chain.push_back(toks[j].text);
          if (j + 1 < toks.size() && toks[j + 1].text == "::")
            j += 2;
          else
            break;
        }
        if (!chain.empty()) {
          cs.enumerator = chain.back();
          if (chain.size() >= 2) cs.enum_name = chain[chain.size() - 2];
        }
      }
      if (!cs.enumerator.empty()) f.cases.push_back(std::move(cs));
      continue;
    }

    // MutexLock acquisitions.
    if (tok.kind == Token::kIdent && tok.text == "MutexLock" &&
        t + 2 < toks.size() && toks[t + 1].kind == Token::kIdent &&
        toks[t + 2].text == "(") {
      const std::size_t close = match_forward(toks, t + 2, "(", ")");
      if (close != std::string::npos) {
        std::string raw;
        for (std::size_t m = t + 3; m < close; ++m) raw += toks[m].text;
        LockSite l;
        l.line = tok.line;
        l.token = t;
        const bool plain = raw.find(':') == std::string::npos &&
                           raw.find('.') == std::string::npos &&
                           raw.find("->") == std::string::npos &&
                           raw.rfind("g_", 0) != 0;
        l.mutex = (plain && !f.cls.empty()) ? f.cls + "::" + raw : raw;
        f.locks.push_back(std::move(l));
        PendingLock pl;
        pl.func = fn;
        pl.lock_idx = f.locks.size() - 1;
        pl.block_open = open_blocks.empty() ? f.body_begin : open_blocks.back();
        pending_locks.push_back(pl);
      }
      continue;
    }

    // Call sites: ident '(' with a non-keyword name.
    if (tok.kind == Token::kIdent && !is_keyword(tok.text) &&
        t + 1 < toks.size() && toks[t + 1].text == "(") {
      CallSite c;
      c.name = tok.text;
      c.line = tok.line;
      c.token = t;
      std::size_t b = t;
      std::string recv;
      while (b >= 2 &&
             (toks[b - 1].text == "." || toks[b - 1].text == "->" ||
              toks[b - 1].text == "::") &&
             toks[b - 2].kind == Token::kIdent) {
        recv = toks[b - 2].text + toks[b - 1].text + recv;
        b -= 2;
      }
      if (!recv.empty()) recv.erase(recv.find_last_not_of(":>-.") + 1);
      // recv currently ends with the separator; strip back to the chain.
      c.receiver = recv;
      f.calls.push_back(std::move(c));
    }

    // Member mutations: bare (or this->) `_`-suffixed identifier written to.
    if (tok.kind == Token::kIdent && tok.text.size() > 1 &&
        tok.text.back() == '_') {
      bool other_object = false;
      if (t >= 1 && (toks[t - 1].text == "." || toks[t - 1].text == "->" ||
                     toks[t - 1].text == "::")) {
        other_object =
            !(t >= 2 && toks[t - 1].text == "->" && toks[t - 2].text == "this");
      }
      if (!other_object) {
        bool mutated = false;
        bool via_method = false;
        if (t >= 1 && (toks[t - 1].text == "++" || toks[t - 1].text == "--"))
          mutated = true;
        std::size_t j = t + 1;
        if (!mutated && j < toks.size() && toks[j].text == "[") {
          const std::size_t close = match_forward(toks, j, "[", "]");
          if (close != std::string::npos) {
            j = close + 1;
            // `m_[k]` alone counts as a table write for snapshot coverage
            // even without an assignment op (operator[] inserts).
            via_method = true;
          }
        }
        if (!mutated && j < toks.size() && is_assign_op(toks[j].text)) {
          mutated = true;
          via_method = false;
        }
        if (!mutated && j == t + 1 && j + 1 < toks.size() &&
            toks[j].text == "." && toks[j + 1].kind == Token::kIdent &&
            is_mutator_method(toks[j + 1].text) && j + 2 < toks.size() &&
            toks[j + 2].text == "(") {
          mutated = true;
          via_method = true;
        }
        if (!mutated && via_method && j < toks.size() && toks[j].text != "=")
          mutated = true;  // bare m_[k] without assignment: still an insert
        if (mutated) {
          MutationSite m;
          m.member = tok.text;
          m.line = tok.line;
          m.token = t;
          m.via_method = via_method;
          f.mutations.push_back(std::move(m));
        }
      }
    }
  }

  // Force-close any scopes left open by lexing imprecision.
  while (!stack.empty()) {
    Scope s = stack.back();
    stack.pop_back();
    if (s.kind == BraceInfo::kFunction && s.func >= 0 &&
        index.functions[s.func].body_end == 0) {
      index.functions[s.func].body_end = toks.size();
      index.functions[s.func].body_last_line =
          toks.empty() ? 0 : toks.back().line;
    }
  }
  for (PendingLock& pl : pending_locks) {
    if (pl.func < 0) continue;
    LockSite& l = index.functions[pl.func].locks[pl.lock_idx];
    if (l.scope_end == 0) l.scope_end = toks.size();
  }
}

void finish_case_arms(ProjectIndex& index) {
  for (FunctionInfo& f : index.functions) {
    for (std::size_t i = 0; i < f.cases.size(); ++i) {
      f.cases[i].arm_end =
          (i + 1 < f.cases.size()) ? f.cases[i + 1].token : f.body_end;
    }
  }
}

void attach_lambda_functions(ProjectIndex& index) {
  for (PoolLambda& lam : index.pool_lambdas) {
    for (std::size_t i = 0; i < index.functions.size(); ++i) {
      const FunctionInfo& f = index.functions[i];
      if (f.file == lam.file && f.body_first_line <= lam.line &&
          lam.line <= f.body_last_line) {
        lam.func = static_cast<int>(i);
        break;
      }
    }
  }
}

}  // namespace

bool is_ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

std::string code_view(const std::string& raw) {
  std::string out = raw;
  bool in_str = false, in_chr = false;
  for (std::size_t i = 0; i < out.size(); ++i) {
    const char c = out[i];
    if (in_str) {
      if (c == '\\') {
        if (i + 1 < out.size()) out[i + 1] = ' ';
        out[i] = ' ';
        ++i;
      } else if (c == '"') {
        in_str = false;
      } else {
        out[i] = ' ';
      }
    } else if (in_chr) {
      if (c == '\\') {
        if (i + 1 < out.size()) out[i + 1] = ' ';
        out[i] = ' ';
        ++i;
      } else if (c == '\'') {
        in_chr = false;
      } else {
        out[i] = ' ';
      }
    } else if (c == '"') {
      in_str = true;
    } else if (c == '\'' && i > 0 && !is_ident_char(out[i - 1])) {
      in_chr = true;
    } else if (c == '/' && i + 1 < out.size() && out[i + 1] == '/') {
      out.resize(i);
      break;
    } else if (c == '/' && i + 1 < out.size() && out[i + 1] == '*') {
      // Blank a same-line /*...*/ span (inline argument comments must not
      // hide the rest of the line from brace tracking); an unterminated
      // block comment still truncates, v1-style.
      const std::size_t close = out.find("*/", i + 2);
      if (close == std::string::npos) {
        out.resize(i);
        break;
      }
      for (std::size_t k = i; k < close + 2; ++k) out[k] = ' ';
      i = close + 1;
    }
  }
  return out;
}

ProjectIndex build_index(const std::vector<SourceFile>& files) {
  ProjectIndex index;
  index.files = &files;
  index.file_model.resize(files.size());

  for (std::size_t i = 0; i < files.size(); ++i) {
    FileModel& fm = index.file_model[i];
    fm.code.reserve(files[i].lines.size());
    for (const std::string& l : files[i].lines) fm.code.push_back(code_view(l));
    tokenize_file(fm.code, fm.tokens);
  }

  for (std::size_t i = 0; i < files.size(); ++i) {
    extract_file(index, static_cast<int>(i));
    collect_pool_lambdas(index.file_model[i].code, static_cast<int>(i),
                         index.pool_lambdas);
  }
  finish_case_arms(index);
  attach_lambda_functions(index);

  for (std::size_t i = 0; i < index.functions.size(); ++i)
    index.functions_by_name.emplace(index.functions[i].name,
                                    static_cast<int>(i));

  // Unordered-container declaration context (v1 semantics): a .cpp sees its
  // own declarations plus those of any file sharing its stem; accessor
  // names apply globally, with ordered/unordered-ambiguous names skipped.
  for (std::size_t i = 0; i < files.size(); ++i) {
    UnorderedDecls d;
    scan_unordered_decls(index.file_model[i].code, d);
    UnorderedDecls& slot = index.decls_by_stem[file_stem(files[i].path)];
    slot.vars.insert(d.vars.begin(), d.vars.end());
    slot.accessors.insert(d.accessors.begin(), d.accessors.end());
    index.global_decls.accessors.insert(d.accessors.begin(),
                                        d.accessors.end());
    index.global_decls.ordered_accessors.insert(d.ordered_accessors.begin(),
                                                d.ordered_accessors.end());
  }
  for (const std::string& name : index.global_decls.ordered_accessors)
    index.global_decls.accessors.erase(name);

  return index;
}

int resolve_call(const ProjectIndex& index, const std::string& name,
                 const std::string& prefer_class,
                 const std::string& receiver) {
  auto [lo, hi] = index.functions_by_name.equal_range(name);
  if (lo == hi) return -1;
  // A receiver other than `this` (or an explicit Class:: qualification)
  // means the target is a method of the *receiver's* class — never of the
  // caller's own class.  Without this, `order_.size()` inside RpcDedup
  // would resolve to RpcDedup::size() and fabricate lock edges.
  const bool this_call =
      receiver.empty() || receiver == "this" || receiver == prefer_class;
  int same_class = -1, same_class_count = 0;
  int any = -1, any_count = 0;
  for (auto it = lo; it != hi; ++it) {
    const FunctionInfo& f = index.functions[it->second];
    if (!this_call && f.cls == prefer_class) continue;
    if (this_call && !prefer_class.empty() && f.cls == prefer_class) {
      same_class = it->second;
      ++same_class_count;
    }
    any = it->second;
    ++any_count;
  }
  if (same_class_count == 1) return same_class;
  if (same_class_count > 1) return -1;
  if (any_count == 1) return any;
  return -1;
}

}  // namespace cosched::lint

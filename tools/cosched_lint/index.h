// Whole-project model for cosched_lint v2.
//
// Every file is parsed once by a lightweight tokenizer into a shared
// symbol/annotation index; the rules then run over the index instead of
// re-deriving structure from raw lines.  The index records:
//
//   - the token stream of every file (comments/strings blanked),
//   - function definitions with class qualification and body token ranges,
//   - call sites (callee name + receiver chain) inside each body,
//   - `case Enum::kX:` labels with their arm extents (journal replay and
//     message dispatch exhaustiveness),
//   - enum definitions and their enumerators (JournalRecordKind, MsgType),
//   - cosched::MutexLock acquisition sites with block scopes, plus
//     REQUIRES(...) thread-safety annotations (lock-order, lane purity),
//   - member mutations (`foo_ = / += / ++ ...`, optional one subscript),
//   - thread_local declarations (worker-own state is never shared),
//   - unordered-container declarations and accessor names (unordered-iter).
//
// The tokenizer is deliberately not a C++ parser: it is line-oriented on
// top of the same comment/string blanking the v1 linter used, so rule
// behavior over the existing fixtures is preserved while the cross-file
// analyses get real structure to walk.
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "lint.h"

namespace cosched::lint {

struct Token {
  enum Kind : std::uint8_t { kIdent, kNumber, kPunct };
  Kind kind = kPunct;
  std::string text;
  int line = 0;  ///< 1-based
  int col = 0;   ///< 0-based column in the code view of that line
};

/// A call site inside a function body: `receiver.name(` / `receiver->name(`
/// / `name(`.  The receiver chain is joined verbatim ("config_.dedup",
/// "sched_", "std").
struct CallSite {
  std::string name;
  std::string receiver;
  int line = 0;
  std::size_t token = 0;  ///< index of the name token in the file stream
};

/// A cosched::MutexLock acquisition.  `scope_end` is the token index of the
/// closing brace of the block holding the guard (the lock is held for
/// tokens in (token, scope_end)).
struct LockSite {
  std::string mutex;  ///< qualified, e.g. "WorkerPool::mu_" or "g_sink_mutex"
  int line = 0;
  std::size_t token = 0;
  std::size_t scope_end = 0;
};

/// A write to a `_`-suffixed member through implicit/explicit `this`.
struct MutationSite {
  std::string member;
  int line = 0;
  std::size_t token = 0;
  /// True when the write is a mutating method call (`m_.insert(...)`,
  /// `m_[k]`) rather than an assignment/increment.  The lane-purity rule
  /// (matching v1 semantics) only looks at direct writes; the
  /// snapshot-coverage analysis considers both.
  bool via_method = false;
};

/// A `case Enum::kX:` (or unscoped `case kX:`) label.  `arm_end` is the
/// token index where the arm's statements end (the next case/default label
/// in the same function, or the function body end).
struct CaseSite {
  std::string enum_name;
  std::string enumerator;
  int line = 0;
  std::size_t token = 0;
  std::size_t arm_end = 0;
};

struct FunctionInfo {
  std::string cls;   ///< qualifying/enclosing class ("" for free functions)
  std::string name;
  int file = -1;     ///< index into the linted file set
  int line = 0;      ///< line of the definition's name token
  int body_first_line = 0;  ///< line of the opening brace
  int body_last_line = 0;   ///< line of the closing brace
  std::size_t body_begin = 0;  ///< token index of '{'
  std::size_t body_end = 0;    ///< token index of matching '}'
  bool requires_lock = false;  ///< REQUIRES(...) on the definition
  std::vector<CallSite> calls;
  std::vector<LockSite> locks;
  std::vector<MutationSite> mutations;
  std::vector<CaseSite> cases;

  std::string qualified() const {
    return cls.empty() ? name : cls + "::" + name;
  }
};

struct Enumerator {
  std::string name;
  int line = 0;
};

struct EnumInfo {
  std::string name;
  int file = -1;
  int line = 0;
  std::vector<Enumerator> enumerators;
};

/// The first lambda handed to a worker-pool dispatch (`<pool>.run(`,
/// `std::thread(`, `<threads>.emplace_back(`): the concurrently-executed
/// region the lane-purity rule checks.
struct PoolLambda {
  int file = -1;
  int line = 0;  ///< line of the dispatch site
  int func = -1; ///< enclosing FunctionInfo index, -1 if none
  /// One body line's slice inside the lambda region.  `guarded` is sticky
  /// from the first MutexLock/REQUIRES in the body (v1 semantics).
  struct Slice {
    int line = 0;
    std::string body;
    bool guarded = false;
  };
  std::vector<Slice> slices;
  /// Call names made from the unguarded part of the lambda body — the
  /// seeds for the interprocedural reachability walk.
  std::vector<CallSite> calls;
};

/// Names of variables declared with an unordered container type, and names
/// of accessor functions returning references to one (see v1 docs on the
/// ambiguous-accessor skip).
struct UnorderedDecls {
  std::set<std::string> vars;
  std::set<std::string> accessors;
  std::set<std::string> ordered_accessors;
};

struct FileModel {
  std::vector<std::string> code;  ///< comment/string-blanked lines
  std::vector<Token> tokens;
};

struct ProjectIndex {
  const std::vector<SourceFile>* files = nullptr;
  std::vector<FileModel> file_model;
  std::vector<FunctionInfo> functions;
  std::vector<EnumInfo> enums;
  std::vector<PoolLambda> pool_lambdas;
  /// function name -> indices into `functions` (resolution helper).
  std::multimap<std::string, int> functions_by_name;
  /// "Class::name" (or bare "name") of declarations carrying REQUIRES(...)
  /// annotations anywhere in the project (headers included).
  std::set<std::string> requires_annotated;
  /// qualified function -> qualified mutex named in its REQUIRES(...) —
  /// the caller-held locks that seed lock-order edges.
  std::multimap<std::string, std::string> requires_mutexes;
  /// Identifiers declared thread_local anywhere in the project.
  std::set<std::string> thread_locals;
  /// Unordered-container declarations by file stem, and project-global
  /// accessor names (see run_lint for the merge rules).
  std::map<std::string, UnorderedDecls> decls_by_stem;
  UnorderedDecls global_decls;
};

/// Blanks // comments and string/char literal contents (v1 semantics —
/// rules must never fire on prose).
std::string code_view(const std::string& raw);

/// True for identifier characters.
bool is_ident_char(char c);

/// Parses every file into the shared project model.
ProjectIndex build_index(const std::vector<SourceFile>& files);

/// Resolves a call to a function definition: prefers a method of
/// `prefer_class`, then a unique project-wide name.  Returns -1 when
/// unknown or ambiguous.  `receiver` is the call's receiver chain; a call
/// through a member/other object ("order_.size()") never resolves to a
/// method of `prefer_class` itself — only implicit/explicit `this` calls
/// do.
int resolve_call(const ProjectIndex& index, const std::string& name,
                 const std::string& prefer_class,
                 const std::string& receiver = std::string());

}  // namespace cosched::lint

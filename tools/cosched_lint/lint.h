// cosched-lint: domain-rule static checks the compiler cannot express.
//
// v2: every file is parsed once by a lightweight tokenizer into a shared
// project index (index.h) — functions, enums, case arms, lock sites,
// annotations — and the rules run over that index.  The per-line rules keep
// their v1 behavior; four cross-file analyses walk the whole-project model.
// The rules enforce the invariants the runtime defenses (TSan, invariant
// reports, kill-anywhere recovery) only catch when a test happens to hit
// them:
//
//   journal-before-mutate  every state-mutating Cluster method appends a
//                          journal record in the same body as the mutation
//                          (the PR 3 write-ahead rule; commit happens at the
//                          entry-point boundary)
//   lease-journal          every mutation of the Cluster lease table
//                          (leases_) is *preceded* in the same body by a
//                          journal append — strict write-ahead ordering, not
//                          just same-body presence, because a crash between
//                          a lease change and its record replays to a
//                          different fencing state (replay/restore methods
//                          exempt by name)
//   dedup-before-reply     RpcDedup verdicts are recorded (and thereby
//                          journaled durable) before the dispatcher builds
//                          the reply
//   banned-call            no rand()/srand()/system_clock/argless time() in
//                          the deterministic core (core, sched, sim,
//                          workload) — wall clocks and libc PRNGs break
//                          replay and fingerprint equality
//   unordered-iter         no iteration over unordered_{map,set} without an
//                          explicit `// cosched-lint: ordered(<reason>)`
//                          waiver — hash order leaking into fingerprints,
//                          metrics, or wire output is the classic silent
//                          determinism bug
//   engine-shared-state    no mutation of `_`-suffixed members (implicit
//                          this-> state) from a worker-pool lambda
//                          (`<pool>.run(...)` / std::thread) outside a
//                          MutexLock/REQUIRES-guarded section — parallel-
//                          window workers may only touch their own lane;
//                          shared counters belong in the post-barrier fold.
//                          v2 makes this interprocedural: unguarded member
//                          mutations in any function *reachable* from the
//                          lambda are flagged too (REQUIRES-annotated
//                          callees, thread_local members, and MutexLock-
//                          guarded writes are exempt)
//   journal-coverage       every JournalRecordKind enumerator has a writer
//                          site (append/frame/encode_frame), a replay arm in
//                          the journal apply switch (apply_record, recover_
//                          from_journal, or the salvage/fallback helpers),
//                          a to_string name arm, and its replay-arm state is
//                          covered by write_snapshot/apply_snapshot — a kind
//                          missing any of these silently loses state across
//                          recovery/compaction.  Also: a function that rolls
//                          a snapshot generation (write_snapshot + compact)
//                          must commit the journal first, or buffered
//                          records are spliced out of the durable image
//                          (set_journal and emergency_compact are exempt)
//   dispatch-exhaustiveness  every MsgType request enumerator has a dispatch
//                          arm, and every arm whose effects run through a
//                          helper still records a dedup verdict before the
//                          reply (the whole-dispatch-graph generalization of
//                          dedup-before-reply)
//   lock-order             the project-wide mutex acquisition graph (nested
//                          MutexLock scopes, calls made under a lock,
//                          REQUIRES-held edges) must be acyclic — a cycle is
//                          a latent ABBA deadlock even if no test interleaves
//                          it
//
// Escape hatches (same line or the line above the finding):
//   // cosched-lint: ordered(<why hash order cannot leak>)   unordered-iter
//   // cosched-lint: allow(<rule>) <why>                      any rule
// Waivers are counted and reported so a review can see the debt.
#pragma once

#include <string>
#include <vector>

namespace cosched::lint {

struct Finding {
  std::string file;
  int line = 0;          ///< 1-based
  std::string rule;      ///< rule id, e.g. "unordered-iter"
  std::string message;
};

struct SourceFile {
  std::string path;                 ///< as reported in findings
  std::vector<std::string> lines;   ///< raw file lines
};

struct Report {
  std::vector<Finding> findings;        ///< unwaived — these fail the run
  std::vector<Finding> waived;          ///< suppressed by ordered()/allow()
  int ordered_waivers_used = 0;
  int allow_waivers_used = 0;
  std::size_t files_scanned = 0;
  /// Waiver comments that suppressed nothing this run (rule "unused-waiver",
  /// line = the comment's line).  Reported, never failing — the signal that
  /// drives waiver audits.
  std::vector<Finding> unused_waivers;
};

/// Splits file contents into lines (tolerates missing trailing newline).
std::vector<std::string> split_lines(const std::string& contents);

/// Runs every rule over `files`.  Cross-file context (unordered member
/// declarations in a .cpp's same-stem header, unordered-returning accessor
/// names from any header) is gathered from the same set, so callers should
/// pass headers and sources together.
Report run_lint(const std::vector<SourceFile>& files);

/// Loads every *.h / *.cpp under each root (recursively; a root may also be
/// a single file) and lints them.  `error` receives a message on I/O
/// failure.
bool lint_paths(const std::vector<std::string>& roots, Report& out,
                std::string& error);

/// Formats one finding as "file:line: [rule] message".
std::string to_string(const Finding& f);

/// Renders the full report as JSON with stable key and array order:
/// files_scanned / ordered_waivers / allow_waivers, the three finding
/// arrays (each sorted by file, line, rule), and a per-rule
/// {findings, waived} tally covering every known rule id.
std::string to_json(const Report& r);

}  // namespace cosched::lint

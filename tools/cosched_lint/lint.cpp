#include "lint.h"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <map>
#include <set>
#include <sstream>
#include <tuple>

namespace cosched::lint {

namespace {

bool is_ident(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

std::string trim(const std::string& s) {
  std::size_t b = 0, e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b])) != 0) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1])) != 0) --e;
  return s.substr(b, e - b);
}

/// Blanks out // comments and the contents of string/char literals so rule
/// matchers never fire on prose or quoted text.  (Block comments spanning
/// lines are rare in this tree; the opening line is still blanked.)
std::string code_view(const std::string& raw) {
  std::string out = raw;
  bool in_str = false, in_chr = false;
  for (std::size_t i = 0; i < out.size(); ++i) {
    const char c = out[i];
    if (in_str) {
      if (c == '\\') {
        if (i + 1 < out.size()) out[i + 1] = ' ';
        out[i] = ' ';
        ++i;
      } else if (c == '"') {
        in_str = false;
      } else {
        out[i] = ' ';
      }
    } else if (in_chr) {
      if (c == '\\') {
        if (i + 1 < out.size()) out[i + 1] = ' ';
        out[i] = ' ';
        ++i;
      } else if (c == '\'') {
        in_chr = false;
      } else {
        out[i] = ' ';
      }
    } else if (c == '"') {
      in_str = true;
    } else if (c == '\'' && i > 0 && !is_ident(out[i - 1])) {
      in_chr = true;
    } else if (c == '/' && i + 1 < out.size() &&
               (out[i + 1] == '/' || out[i + 1] == '*')) {
      out.resize(i);
      break;
    }
  }
  return out;
}

/// True when `token` occurs in `code` with no identifier character
/// immediately before it (so "rand(" does not match "srand(").
bool has_token(const std::string& code, const std::string& token) {
  std::size_t pos = 0;
  while ((pos = code.find(token, pos)) != std::string::npos) {
    if (pos == 0 || !is_ident(code[pos - 1])) return true;
    pos += 1;
  }
  return false;
}

std::string file_stem(const std::string& path) {
  return std::filesystem::path(path).stem().string();
}

bool has_component(const std::string& path, const std::string& dir) {
  const std::filesystem::path p(path);
  return std::any_of(p.begin(), p.end(),
                     [&dir](const auto& part) { return part == dir; });
}

/// Waiver lookup on the finding line or the line directly above.
struct WaiverScan {
  bool waived = false;
  bool ordered = false;  ///< suppressed by ordered(), not allow()
};

WaiverScan find_waiver(const std::vector<std::string>& raw, std::size_t idx,
                       const std::string& rule, bool accepts_ordered) {
  const auto check = [&](const std::string& line) -> WaiverScan {
    if (accepts_ordered &&
        line.find("cosched-lint: ordered(") != std::string::npos)
      return {true, true};
    if (line.find("cosched-lint: allow(" + rule + ")") != std::string::npos)
      return {true, false};
    return {};
  };
  WaiverScan w = check(raw[idx]);
  if (!w.waived && idx > 0) w = check(raw[idx - 1]);
  return w;
}

/// Declaration scan: names of variables declared with an unordered
/// container type, and names of functions returning a reference to one.
/// `ordered_accessors` collects same-shaped declarations returning ordered
/// containers so a name used for both (Trace::jobs() -> vector vs
/// Scheduler::jobs() -> unordered_map) can be recognized as ambiguous — a
/// textual matcher cannot resolve the receiver's type, so ambiguous accessor
/// names are skipped rather than flagged.
struct UnorderedDecls {
  std::set<std::string> vars;
  std::set<std::string> accessors;
  std::set<std::string> ordered_accessors;
};

void scan_container_decls(const std::vector<std::string>& raw,
                          const char* const* types, std::size_t n_types,
                          std::set<std::string>* vars,
                          std::set<std::string>* accessors) {
  for (const std::string& rawline : raw) {
    const std::string code = code_view(rawline);
    for (std::size_t t = 0; t < n_types; ++t) {
      const char* type = types[t];
      std::size_t pos = 0;
      while ((pos = code.find(type, pos)) != std::string::npos) {
        // Identifier boundary so "map" never matches inside "unordered_map".
        if (pos > 0 && is_ident(code[pos - 1])) {
          pos += 1;
          continue;
        }
        std::size_t i = pos + std::string(type).size();
        pos = i;
        if (i >= code.size() || code[i] != '<') continue;
        // Find the matching '>' of the template argument list.
        int depth = 0;
        for (; i < code.size(); ++i) {
          if (code[i] == '<') ++depth;
          if (code[i] == '>' && --depth == 0) break;
        }
        if (i >= code.size()) continue;  // args continue on the next line
        ++i;
        while (i < code.size() && (std::isspace(static_cast<unsigned char>(
                                       code[i])) != 0 ||
                                   code[i] == '&' || code[i] == '*'))
          ++i;
        std::size_t name_begin = i;
        while (i < code.size() && is_ident(code[i])) ++i;
        if (i == name_begin) continue;  // e.g. "#include <unordered_map>"
        const std::string name = code.substr(name_begin, i - name_begin);
        while (i < code.size() &&
               std::isspace(static_cast<unsigned char>(code[i])) != 0)
          ++i;
        if (i < code.size() && code[i] == '(') {
          if (accessors != nullptr) accessors->insert(name);
        } else {
          if (vars != nullptr) vars->insert(name);
        }
      }
    }
  }
}

void scan_unordered_decls(const std::vector<std::string>& raw,
                          UnorderedDecls& out) {
  static const char* kUnordered[] = {"unordered_map", "unordered_set",
                                     "unordered_multimap",
                                     "unordered_multiset"};
  static const char* kOrdered[] = {"vector", "map",      "set",  "multimap",
                                   "multiset", "deque",  "array", "list"};
  scan_container_decls(raw, kUnordered, std::size(kUnordered), &out.vars,
                       &out.accessors);
  scan_container_decls(raw, kOrdered, std::size(kOrdered), nullptr,
                       &out.ordered_accessors);
}

/// Extracts the sequence expression of a single-line range-for, or "" when
/// the line is not one.
std::string range_for_sequence(const std::string& code) {
  std::size_t f = code.find("for (");
  if (f == std::string::npos) f = code.find("for(");
  if (f == std::string::npos) return "";
  const std::size_t open = code.find('(', f);
  if (open == std::string::npos) return "";
  int depth = 0;
  std::size_t close = std::string::npos, colon = std::string::npos;
  for (std::size_t i = open; i < code.size(); ++i) {
    if (code[i] == '(') ++depth;
    if (code[i] == ')' && --depth == 0) {
      close = i;
      break;
    }
    // A range-for colon: top-level inside the for parens, not "::", not "?:"
    // (the tree has no ternaries in for headers).
    if (code[i] == ':' && depth == 1) {
      const bool scope = (i + 1 < code.size() && code[i + 1] == ':') ||
                         (i > 0 && code[i - 1] == ':');
      if (!scope && colon == std::string::npos) colon = i;
    }
  }
  if (close == std::string::npos || colon == std::string::npos) return "";
  return trim(code.substr(colon + 1, close - colon - 1));
}

/// Trailing call name of "obj.name()" / "obj->name()" / "name()", else "".
std::string trailing_call_name(const std::string& seq) {
  if (seq.size() < 3 || seq.substr(seq.size() - 2) != "()") return "";
  std::size_t e = seq.size() - 2;
  std::size_t b = e;
  while (b > 0 && is_ident(seq[b - 1])) --b;
  if (b == e) return "";
  return seq.substr(b, e - b);
}

struct RuleContext {
  const SourceFile* file = nullptr;
  std::vector<std::string> code;  ///< code_view of each line
  const UnorderedDecls* decls = nullptr;
  Report* report = nullptr;
};

void emit(RuleContext& ctx, std::size_t idx, const std::string& rule,
          std::string message, bool accepts_ordered) {
  const WaiverScan w =
      find_waiver(ctx.file->lines, idx, rule, accepts_ordered);
  Finding f{ctx.file->path, static_cast<int>(idx + 1), rule,
            std::move(message)};
  if (w.waived) {
    if (w.ordered)
      ++ctx.report->ordered_waivers_used;
    else
      ++ctx.report->allow_waivers_used;
    ctx.report->waived.push_back(std::move(f));
  } else {
    ctx.report->findings.push_back(std::move(f));
  }
}

// -- rule: banned-call -------------------------------------------------------

void rule_banned_call(RuleContext& ctx) {
  static const char* kDirs[] = {"core", "sched", "sim", "workload"};
  const bool in_scope = std::any_of(
      std::begin(kDirs), std::end(kDirs),
      [&](const char* d) { return has_component(ctx.file->path, d); });
  if (!in_scope) return;
  for (std::size_t i = 0; i < ctx.code.size(); ++i) {
    const std::string& code = ctx.code[i];
    if (has_token(code, "rand(") || has_token(code, "srand"))
      emit(ctx, i, "banned-call",
           "libc PRNG breaks deterministic replay; use util/rng.h",
           /*accepts_ordered=*/false);
    if (code.find("system_clock") != std::string::npos)
      emit(ctx, i, "banned-call",
           "wall clock in deterministic code; use engine time or "
           "steady_clock",
           /*accepts_ordered=*/false);
    if (has_token(code, "time(")) {
      // Only the wall-clock forms: time(), time(nullptr), time(NULL), time(0).
      std::size_t pos = code.find("time(");
      while (pos != std::string::npos) {
        if (pos == 0 || !is_ident(code[pos - 1])) {
          const std::size_t close = code.find(')', pos);
          if (close != std::string::npos) {
            const std::string arg = trim(code.substr(pos + 5, close - pos - 5));
            if (arg.empty() || arg == "nullptr" || arg == "NULL" ||
                arg == "0") {
              emit(ctx, i, "banned-call",
                   "wall clock in deterministic code; use engine time",
                   /*accepts_ordered=*/false);
              break;
            }
          }
        }
        pos = code.find("time(", pos + 1);
      }
    }
  }
}

// -- rule: unordered-iter ----------------------------------------------------

void rule_unordered_iter(RuleContext& ctx) {
  for (std::size_t i = 0; i < ctx.code.size(); ++i) {
    const std::string& code = ctx.code[i];

    const std::string seq = range_for_sequence(code);
    if (!seq.empty()) {
      bool hit = false;
      if (std::all_of(seq.begin(), seq.end(), is_ident) &&
          ctx.decls->vars.count(seq)) {
        hit = true;
      } else {
        const std::string call = trailing_call_name(seq);
        if (!call.empty() && ctx.decls->accessors.count(call)) hit = true;
      }
      if (hit)
        emit(ctx, i, "unordered-iter",
             "iteration over unordered container '" + seq +
                 "' — hash order may leak into fingerprints/metrics/output; "
                 "sort first or waive with ordered(<reason>)",
             /*accepts_ordered=*/true);
    }

    for (const std::string& var : ctx.decls->vars) {
      const std::string pat = var + ".begin(";
      std::size_t pos = 0;
      bool flagged = false;
      while (!flagged && (pos = code.find(pat, pos)) != std::string::npos) {
        if (pos == 0 || !is_ident(code[pos - 1])) {
          emit(ctx, i, "unordered-iter",
               "iterator range over unordered container '" + var +
                   "' — sort first or waive with ordered(<reason>)",
               /*accepts_ordered=*/true);
          flagged = true;
        }
        pos += 1;
      }
    }
  }
}

// -- rule: journal-before-mutate ---------------------------------------------

bool journal_exempt_method(const std::string& name) {
  static const char* kPrefixes[] = {"apply_",  "restore_", "wipe_",
                                    "recover_", "rearm_",   "replay",
                                    "write_",  "snapshot"};
  return std::any_of(std::begin(kPrefixes), std::end(kPrefixes),
                     [&](const char* p) { return name.rfind(p, 0) == 0; });
}

void rule_journal_before_mutate(RuleContext& ctx) {
  if (file_stem(ctx.file->path) != "cluster") return;
  static const char* kMutators[] = {
      "sched_.submit(",        "sched_.kill(",
      "sched_.finish(",        "sched_.release_hold(",
      "sched_.start_holding(",
  };

  std::string method;
  bool in_method = false;
  int depth = 0;
  bool body_entered = false;
  std::size_t first_mutation = std::string::npos;
  std::string mutation_text;
  bool has_append = false;

  const auto finish_method = [&]() {
    if (first_mutation != std::string::npos && !has_append &&
        !journal_exempt_method(method))
      emit(ctx, first_mutation, "journal-before-mutate",
           "Cluster::" + method + " mutates scheduler state (" +
               mutation_text +
               ") without journaling a record in the same body; append a "
               "JournalRecord before the effect becomes visible or waive "
               "with allow(journal-before-mutate)",
           /*accepts_ordered=*/false);
    in_method = false;
    body_entered = false;
    depth = 0;
    first_mutation = std::string::npos;
    has_append = false;
  };

  for (std::size_t i = 0; i < ctx.code.size(); ++i) {
    const std::string& code = ctx.code[i];
    if (!in_method) {
      const std::size_t pos = code.rfind("Cluster::");
      if (pos == std::string::npos) continue;
      std::size_t b = pos + 9, e = b;
      while (e < code.size() && (is_ident(code[e]) || code[e] == '~')) ++e;
      if (e == b) continue;
      // A definition, not a qualified call: the name must be followed by
      // '(' and the line must not end in ';' before any '{' appears.
      std::size_t after = e;
      while (after < code.size() &&
             std::isspace(static_cast<unsigned char>(code[after])) != 0)
        ++after;
      if (after >= code.size() || code[after] != '(') continue;
      method = code.substr(b, e - b);
      in_method = true;
      depth = 0;
      body_entered = false;
      first_mutation = std::string::npos;
      has_append = false;
      // fall through to brace tracking on this same line
    }
    for (char c : code) {
      if (c == '{') {
        ++depth;
        body_entered = true;
      }
      if (c == '}') --depth;
    }
    if (in_method && !body_entered && code.find(';') != std::string::npos) {
      // Declaration-only line (e.g. an out-of-class member initializer);
      // not a definition after all.
      in_method = false;
      continue;
    }
    if (in_method && body_entered) {
      if (first_mutation == std::string::npos) {
        for (const char* m : kMutators) {
          if (code.find(m) != std::string::npos) {
            first_mutation = i;
            mutation_text = m;
            mutation_text.pop_back();  // drop the '('
            break;
          }
        }
      }
      if (code.find("journal_->append(") != std::string::npos)
        has_append = true;
      if (depth == 0) finish_method();
    }
  }
}

// -- rule: lease-journal -----------------------------------------------------

/// Liveness refinement of journal-before-mutate with strict ordering: every
/// mutation of the Cluster lease table (`leases_`) must be *preceded*, in
/// the same method body, by a journal append.  A crash between a lease
/// state change and its record would replay to a different lease — and
/// therefore fencing — state, exactly the divergence the leased-hold layer
/// exists to rule out.  Replay/restore methods (which run with journaling
/// off against already-durable records) are exempt by name.
void rule_lease_journal(RuleContext& ctx) {
  if (file_stem(ctx.file->path) != "cluster") return;
  static const char* kMutators[] = {"leases_[", "leases_.emplace",
                                    "leases_.insert", "leases_.erase",
                                    "leases_.clear"};

  std::string method;
  bool in_method = false;
  int depth = 0;
  bool body_entered = false;
  bool append_seen = false;

  for (std::size_t i = 0; i < ctx.code.size(); ++i) {
    const std::string& code = ctx.code[i];
    if (!in_method) {
      const std::size_t pos = code.rfind("Cluster::");
      if (pos == std::string::npos) continue;
      std::size_t b = pos + 9, e = b;
      while (e < code.size() && (is_ident(code[e]) || code[e] == '~')) ++e;
      if (e == b) continue;
      std::size_t after = e;
      while (after < code.size() &&
             std::isspace(static_cast<unsigned char>(code[after])) != 0)
        ++after;
      if (after >= code.size() || code[after] != '(') continue;
      method = code.substr(b, e - b);
      in_method = true;
      depth = 0;
      body_entered = false;
      append_seen = false;
      // fall through to brace tracking on this same line
    }
    for (char c : code) {
      if (c == '{') {
        ++depth;
        body_entered = true;
      }
      if (c == '}') --depth;
    }
    if (in_method && !body_entered && code.find(';') != std::string::npos) {
      in_method = false;
      continue;
    }
    if (in_method && body_entered) {
      const std::size_t apos = code.find("journal_->append(");
      if (!journal_exempt_method(method)) {
        for (const char* m : kMutators) {
          const std::size_t mpos = code.find(m);
          if (mpos == std::string::npos) continue;
          // Ordered: an append earlier in the body, or earlier on this line.
          if (append_seen || (apos != std::string::npos && apos < mpos))
            continue;
          std::string token(m);
          if (token.back() == '(' || token.back() == '[') token.pop_back();
          emit(ctx, i, "lease-journal",
               "Cluster::" + method + " mutates the lease table (" + token +
                   ") before any journal append in this body; journal the "
                   "lease record first (write-ahead) or waive with "
                   "allow(lease-journal)",
               /*accepts_ordered=*/false);
        }
      }
      if (apos != std::string::npos) append_seen = true;
      if (depth == 0) {
        in_method = false;
        body_entered = false;
        append_seen = false;
      }
    }
  }
}

// -- rule: dedup-before-reply ------------------------------------------------

void rule_dedup_before_reply(RuleContext& ctx) {
  if (file_stem(ctx.file->path) != "service") return;
  for (std::size_t i = 0; i < ctx.code.size(); ++i) {
    const std::string& code = ctx.code[i];
    const bool effectful = code.find("service_.try_start_mate(") !=
                               std::string::npos ||
                           code.find("service_.start_job(") !=
                               std::string::npos ||
                           code.find("service_.gang_") != std::string::npos;
    if (!effectful) continue;
    // The verdict must reach the dedup cache (whose persist hook journals
    // and commits it) before the reply for this call is built.
    bool recorded = false;
    std::size_t j = i;
    for (; j < ctx.code.size(); ++j) {
      if (ctx.code[j].find("->record(") != std::string::npos ||
          ctx.code[j].find(".record(") != std::string::npos)
        recorded = true;
      if (ctx.code[j].find("return") != std::string::npos) break;
    }
    if (!recorded)
      emit(ctx, i, "dedup-before-reply",
           "side-effecting service call replies without recording the "
           "verdict in RpcDedup (durable-before-reply); record it or waive "
           "with allow(dedup-before-reply)",
           /*accepts_ordered=*/false);
  }
}

// -- rule: engine-shared-state -----------------------------------------------

/// Identifier ending right before `pos` (walking back over ident chars).
std::string ident_before(const std::string& code, std::size_t pos) {
  std::size_t b = pos;
  while (b > 0 && is_ident(code[b - 1])) --b;
  return code.substr(b, pos - b);
}

/// Column where a worker-pool dispatch starts on this line, or npos.
/// Matches WorkerPool dispatch (`<something-pool>.run(` / `->run(`) and raw
/// std::thread construction; Engine::run()/CoupledSim::run() never match
/// because their receivers are not pools.
std::size_t worker_dispatch_pos(const std::string& code) {
  const std::size_t t = code.find("std::thread(");
  if (t != std::string::npos) return t;
  for (const char* pat : {"->run(", ".run("}) {
    std::size_t pos = 0;
    while ((pos = code.find(pat, pos)) != std::string::npos) {
      std::string recv = ident_before(code, pos);
      std::transform(recv.begin(), recv.end(), recv.begin(),
                     [](unsigned char c) { return std::tolower(c); });
      if (recv.find("pool") != std::string::npos) return pos;
      pos += 1;
    }
  }
  return std::string::npos;
}

/// First `_`-suffixed identifier on `code` mutated with =, +=, -=, ++ or --
/// (an implicit this-> member write), or "" when none.  `obj.member_` and
/// `other->member_` are another object's state, not the enclosing class's —
/// only bare and explicit `this->` accesses count.
std::string member_mutation(const std::string& code) {
  for (std::size_t i = 0; i < code.size(); ++i) {
    if (!is_ident(code[i])) continue;
    const std::size_t b = i;
    while (i < code.size() && is_ident(code[i])) ++i;
    if (code[i - 1] != '_') continue;
    const std::string name = code.substr(b, i - b);
    if (b > 0 && code[b - 1] == '.') continue;
    if (b >= 2 && code[b - 1] == '>' && code[b - 2] == '-' &&
        ident_before(code, b - 2) != "this")
      continue;
    if (b >= 2 && ((code[b - 2] == '+' && code[b - 1] == '+') ||
                   (code[b - 2] == '-' && code[b - 1] == '-')))
      return name;
    std::size_t j = i;
    // One subscript is still a write to the member's element.
    if (j < code.size() && code[j] == '[') {
      int depth = 0;
      for (; j < code.size(); ++j) {
        if (code[j] == '[') ++depth;
        if (code[j] == ']' && --depth == 0) {
          ++j;
          break;
        }
      }
    }
    while (j < code.size() &&
           std::isspace(static_cast<unsigned char>(code[j])) != 0)
      ++j;
    if (j + 1 < code.size()) {
      const char a = code[j], bb = code[j + 1];
      if ((a == '+' && bb == '=') || (a == '-' && bb == '=') ||
          (a == '+' && bb == '+') || (a == '-' && bb == '-'))
        return name;
      if (a == '=' && bb != '=') return name;
    } else if (j < code.size() && code[j] == '=') {
      return name;
    }
  }
  return "";
}

/// Worker-pool lambdas run concurrently with each other (and, for raw
/// threads, with the spawning thread): writing engine/cluster members from
/// one is a data race unless the write sits in a REQUIRES-annotated section
/// or under a MutexLock.  The checked region is the first lambda body after
/// a dispatch site; thread-safety annotations only cover functions the
/// analysis can see, so lambda bodies need this textual backstop.
void rule_engine_shared_state(RuleContext& ctx) {
  for (std::size_t i = 0; i < ctx.code.size(); ++i) {
    const std::size_t dispatch = worker_dispatch_pos(ctx.code[i]);
    if (dispatch == std::string::npos) continue;

    // Find the lambda introducer, then its body braces.
    std::size_t line = i, col = dispatch;
    bool found_lambda = false;
    for (; line < ctx.code.size() && line < i + 4 && !found_lambda; ++line) {
      const std::size_t l = ctx.code[line].find('[', col);
      if (l != std::string::npos) {
        col = l;
        found_lambda = true;
        break;
      }
      col = 0;
    }
    if (!found_lambda) continue;

    int depth = 0;
    bool body_entered = false;
    bool guarded = false;
    for (std::size_t j = line; j < ctx.code.size(); ++j) {
      const std::string& code = ctx.code[j];
      const std::size_t from = (j == line) ? col : 0;
      const bool was_in_body = body_entered;
      std::size_t open_col = std::string::npos;
      std::size_t close_col = std::string::npos;
      for (std::size_t k = from; k < code.size(); ++k) {
        if (code[k] == '{') {
          ++depth;
          if (!body_entered) {
            body_entered = true;
            open_col = k;
          }
        }
        if (code[k] == '}' && --depth == 0) {
          close_col = k;
          break;
        }
      }
      if (body_entered) {
        // Only the slice of this line inside the body is part of the region.
        const std::size_t b = was_in_body ? 0 : open_col + 1;
        const std::size_t e = close_col == std::string::npos ? code.size()
                                                             : close_col;
        const std::string body = code.substr(b, e - b);
        if (body.find("MutexLock") != std::string::npos ||
            body.find("REQUIRES(") != std::string::npos)
          guarded = true;
        const std::string hit = guarded ? "" : member_mutation(body);
        if (!hit.empty())
          emit(ctx, j, "engine-shared-state",
               "worker-pool lambda mutates shared member '" + hit +
                   "' outside a REQUIRES-annotated section; take the "
                   "owning Mutex (MutexLock), move the write to the "
                   "post-barrier fold, or waive with "
                   "allow(engine-shared-state)",
               /*accepts_ordered=*/false);
      }
      if (close_col != std::string::npos) break;
    }
  }
}

}  // namespace

std::vector<std::string> split_lines(const std::string& contents) {
  std::vector<std::string> lines;
  std::string cur;
  for (char c : contents) {
    if (c == '\n') {
      lines.push_back(cur);
      cur.clear();
    } else if (c != '\r') {
      cur.push_back(c);
    }
  }
  if (!cur.empty()) lines.push_back(cur);
  return lines;
}

Report run_lint(const std::vector<SourceFile>& files) {
  Report report;
  report.files_scanned = files.size();

  // Cross-file declaration context: a .cpp sees its own declarations plus
  // those of any file sharing its stem (cluster.cpp <- cluster.h); accessor
  // names (functions returning unordered refs) apply globally, since they
  // are called through an object of the declaring class.
  std::map<std::string, UnorderedDecls> by_stem;
  UnorderedDecls global;
  for (const SourceFile& f : files) {
    UnorderedDecls d;
    scan_unordered_decls(f.lines, d);
    UnorderedDecls& slot = by_stem[file_stem(f.path)];
    slot.vars.insert(d.vars.begin(), d.vars.end());
    slot.accessors.insert(d.accessors.begin(), d.accessors.end());
    global.accessors.insert(d.accessors.begin(), d.accessors.end());
    global.ordered_accessors.insert(d.ordered_accessors.begin(),
                                    d.ordered_accessors.end());
  }
  // An accessor name declared with both ordered and unordered return types
  // (Trace::jobs() vs Scheduler::jobs()) is ambiguous to a textual matcher:
  // skip it rather than flag every vector-returning call site.
  for (const std::string& name : global.ordered_accessors)
    global.accessors.erase(name);

  for (const SourceFile& f : files) {
    RuleContext ctx;
    ctx.file = &f;
    ctx.code.reserve(f.lines.size());
    for (const std::string& l : f.lines) ctx.code.push_back(code_view(l));
    UnorderedDecls decls = by_stem[file_stem(f.path)];
    decls.accessors.insert(global.accessors.begin(), global.accessors.end());
    for (const std::string& name : global.ordered_accessors)
      decls.accessors.erase(name);
    ctx.decls = &decls;
    ctx.report = &report;

    rule_banned_call(ctx);
    rule_unordered_iter(ctx);
    rule_journal_before_mutate(ctx);
    rule_lease_journal(ctx);
    rule_dedup_before_reply(ctx);
    rule_engine_shared_state(ctx);
  }

  const auto by_location = [](const Finding& a, const Finding& b) {
    return std::tie(a.file, a.line, a.rule) < std::tie(b.file, b.line, b.rule);
  };
  std::sort(report.findings.begin(), report.findings.end(), by_location);
  std::sort(report.waived.begin(), report.waived.end(), by_location);
  return report;
}

bool lint_paths(const std::vector<std::string>& roots, Report& out,
                std::string& error) {
  namespace fs = std::filesystem;
  std::vector<std::string> paths;
  for (const std::string& root : roots) {
    std::error_code ec;
    if (fs::is_directory(root, ec)) {
      for (const auto& entry : fs::recursive_directory_iterator(root, ec)) {
        if (!entry.is_regular_file()) continue;
        const std::string ext = entry.path().extension().string();
        if (ext == ".h" || ext == ".cpp" || ext == ".cc" || ext == ".hpp")
          paths.push_back(entry.path().string());
      }
      if (ec) {
        error = root + ": " + ec.message();
        return false;
      }
    } else if (fs::is_regular_file(root, ec)) {
      paths.push_back(root);
    } else {
      error = root + ": not a file or directory";
      return false;
    }
  }
  std::sort(paths.begin(), paths.end());

  std::vector<SourceFile> files;
  files.reserve(paths.size());
  for (const std::string& p : paths) {
    std::ifstream in(p, std::ios::binary);
    if (!in) {
      error = p + ": cannot open";
      return false;
    }
    std::ostringstream ss;
    ss << in.rdbuf();
    files.push_back(SourceFile{p, split_lines(ss.str())});
  }
  out = run_lint(files);
  return true;
}

std::string to_string(const Finding& f) {
  return f.file + ":" + std::to_string(f.line) + ": [" + f.rule + "] " +
         f.message;
}

}  // namespace cosched::lint

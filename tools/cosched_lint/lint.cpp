// cosched_lint v2 driver: loads the tree, builds the whole-project index
// (index.cpp), runs the per-line rules here and the cross-file analyses in
// rules_graph.cpp through one waiver-aware sink, and renders text/JSON
// reports.
#include "lint.h"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <map>
#include <set>
#include <sstream>
#include <tuple>

#include "index.h"
#include "rules.h"

namespace cosched::lint {

namespace {

std::string trim(const std::string& s) {
  std::size_t b = 0, e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b])) != 0) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1])) != 0) --e;
  return s.substr(b, e - b);
}

/// True when `token` occurs in `code` with no identifier character
/// immediately before it (so "rand(" does not match "srand(").
bool has_token(const std::string& code, const std::string& token) {
  std::size_t pos = 0;
  while ((pos = code.find(token, pos)) != std::string::npos) {
    if (pos == 0 || !is_ident_char(code[pos - 1])) return true;
    pos += 1;
  }
  return false;
}

std::string file_stem(const std::string& path) {
  return std::filesystem::path(path).stem().string();
}

bool has_component(const std::string& path, const std::string& dir) {
  const std::filesystem::path p(path);
  return std::any_of(p.begin(), p.end(),
                     [&dir](const auto& part) { return part == dir; });
}

/// Scans the tree for waiver comments up front, so the sink can both apply
/// them (v1 semantics: finding line or the line directly above) and report
/// the ones nothing consumed.
std::vector<WaiverRecord> scan_waivers(const std::vector<SourceFile>& files) {
  std::vector<WaiverRecord> out;
  for (std::size_t fi = 0; fi < files.size(); ++fi) {
    const std::vector<std::string>& raw = files[fi].lines;
    for (std::size_t li = 0; li < raw.size(); ++li) {
      const std::string& line = raw[li];
      if (line.find("cosched-lint: ordered(") != std::string::npos) {
        WaiverRecord w;
        w.file = static_cast<int>(fi);
        w.line0 = static_cast<int>(li);
        w.ordered = true;
        out.push_back(std::move(w));
      }
      const std::size_t a = line.find("cosched-lint: allow(");
      if (a != std::string::npos) {
        const std::size_t open = a + std::string("cosched-lint: allow(").size();
        const std::size_t close = line.find(')', open);
        if (close != std::string::npos) {
          WaiverRecord w;
          w.file = static_cast<int>(fi);
          w.line0 = static_cast<int>(li);
          w.rule = line.substr(open, close - open);
          out.push_back(std::move(w));
        }
      }
    }
  }
  return out;
}

/// Extracts the sequence expression of a single-line range-for, or "" when
/// the line is not one.
std::string range_for_sequence(const std::string& code) {
  std::size_t f = code.find("for (");
  if (f == std::string::npos) f = code.find("for(");
  if (f == std::string::npos) return "";
  const std::size_t open = code.find('(', f);
  if (open == std::string::npos) return "";
  int depth = 0;
  std::size_t close = std::string::npos, colon = std::string::npos;
  for (std::size_t i = open; i < code.size(); ++i) {
    if (code[i] == '(') ++depth;
    if (code[i] == ')' && --depth == 0) {
      close = i;
      break;
    }
    // A range-for colon: top-level inside the for parens, not "::", not "?:"
    // (the tree has no ternaries in for headers).
    if (code[i] == ':' && depth == 1) {
      const bool scope = (i + 1 < code.size() && code[i + 1] == ':') ||
                         (i > 0 && code[i - 1] == ':');
      if (!scope && colon == std::string::npos) colon = i;
    }
  }
  if (close == std::string::npos || colon == std::string::npos) return "";
  return trim(code.substr(colon + 1, close - colon - 1));
}

/// Trailing call name of "obj.name()" / "obj->name()" / "name()", else "".
std::string trailing_call_name(const std::string& seq) {
  if (seq.size() < 3 || seq.substr(seq.size() - 2) != "()") return "";
  std::size_t e = seq.size() - 2;
  std::size_t b = e;
  while (b > 0 && is_ident_char(seq[b - 1])) --b;
  if (b == e) return "";
  return seq.substr(b, e - b);
}

/// Per-file context for the line rules.
struct FileContext {
  int file = 0;
  const SourceFile* src = nullptr;
  const std::vector<std::string>* code = nullptr;  ///< code_view lines
  UnorderedDecls decls;
};

// -- rule: banned-call -------------------------------------------------------

void rule_banned_call(const FileContext& ctx, RuleSink& sink) {
  static const char* kDirs[] = {"core", "sched", "sim", "workload"};
  const bool in_scope = std::any_of(
      std::begin(kDirs), std::end(kDirs),
      [&](const char* d) { return has_component(ctx.src->path, d); });
  if (!in_scope) return;
  for (std::size_t i = 0; i < ctx.code->size(); ++i) {
    const std::string& code = (*ctx.code)[i];
    if (has_token(code, "rand(") || has_token(code, "srand"))
      sink.emit(ctx.file, static_cast<int>(i), "banned-call",
                "libc PRNG breaks deterministic replay; use util/rng.h",
                /*accepts_ordered=*/false);
    if (code.find("system_clock") != std::string::npos)
      sink.emit(ctx.file, static_cast<int>(i), "banned-call",
                "wall clock in deterministic code; use engine time or "
                "steady_clock",
                /*accepts_ordered=*/false);
    if (has_token(code, "time(")) {
      // Only the wall-clock forms: time(), time(nullptr), time(NULL), time(0).
      std::size_t pos = code.find("time(");
      while (pos != std::string::npos) {
        if (pos == 0 || !is_ident_char(code[pos - 1])) {
          const std::size_t close = code.find(')', pos);
          if (close != std::string::npos) {
            const std::string arg = trim(code.substr(pos + 5, close - pos - 5));
            if (arg.empty() || arg == "nullptr" || arg == "NULL" ||
                arg == "0") {
              sink.emit(ctx.file, static_cast<int>(i), "banned-call",
                        "wall clock in deterministic code; use engine time",
                        /*accepts_ordered=*/false);
              break;
            }
          }
        }
        pos = code.find("time(", pos + 1);
      }
    }
  }
}

// -- rule: unordered-iter ----------------------------------------------------

void rule_unordered_iter(const FileContext& ctx, RuleSink& sink) {
  for (std::size_t i = 0; i < ctx.code->size(); ++i) {
    const std::string& code = (*ctx.code)[i];

    const std::string seq = range_for_sequence(code);
    if (!seq.empty()) {
      bool hit = false;
      if (std::all_of(seq.begin(), seq.end(), is_ident_char) &&
          ctx.decls.vars.count(seq)) {
        hit = true;
      } else {
        const std::string call = trailing_call_name(seq);
        if (!call.empty() && ctx.decls.accessors.count(call)) hit = true;
      }
      if (hit)
        sink.emit(ctx.file, static_cast<int>(i), "unordered-iter",
                  "iteration over unordered container '" + seq +
                      "' — hash order may leak into fingerprints/metrics/"
                      "output; sort first or waive with ordered(<reason>)",
                  /*accepts_ordered=*/true);
    }

    for (const std::string& var : ctx.decls.vars) {
      const std::string pat = var + ".begin(";
      std::size_t pos = 0;
      bool flagged = false;
      while (!flagged && (pos = code.find(pat, pos)) != std::string::npos) {
        if (pos == 0 || !is_ident_char(code[pos - 1])) {
          sink.emit(ctx.file, static_cast<int>(i), "unordered-iter",
                    "iterator range over unordered container '" + var +
                        "' — sort first or waive with ordered(<reason>)",
                    /*accepts_ordered=*/true);
          flagged = true;
        }
        pos += 1;
      }
    }
  }
}

// -- rules: journal-before-mutate / lease-journal ----------------------------

bool journal_exempt_method(const std::string& name) {
  static const char* kPrefixes[] = {"apply_",  "restore_", "wipe_",
                                    "recover_", "rearm_",   "replay",
                                    "write_",  "snapshot"};
  return std::any_of(std::begin(kPrefixes), std::end(kPrefixes),
                     [&](const char* p) { return name.rfind(p, 0) == 0; });
}

/// Runs the two Cluster write-ahead rules over every indexed
/// Cluster::<method> body in this file (the index replaces v1's inline
/// brace tracking; the per-line matching inside a body is unchanged).
void rule_cluster_write_ahead(const FileContext& ctx, const ProjectIndex& ix,
                              RuleSink& sink) {
  if (file_stem(ctx.src->path) != "cluster") return;
  static const char* kSchedMutators[] = {
      "sched_.submit(",        "sched_.kill(",
      "sched_.finish(",        "sched_.release_hold(",
      "sched_.start_holding(",
  };
  static const char* kLeaseMutators[] = {"leases_[", "leases_.emplace",
                                         "leases_.insert", "leases_.erase",
                                         "leases_.clear"};

  for (const FunctionInfo& f : ix.functions) {
    if (f.file != ctx.file || f.cls != "Cluster") continue;
    if (f.body_first_line <= 0 || f.body_last_line < f.body_first_line)
      continue;
    const std::size_t first = static_cast<std::size_t>(f.body_first_line - 1);
    const std::size_t last = std::min(
        static_cast<std::size_t>(f.body_last_line - 1), ctx.code->size() - 1);
    const bool exempt = journal_exempt_method(f.name);

    // journal-before-mutate: same-body presence of an append.
    std::size_t first_mutation = std::string::npos;
    std::string mutation_text;
    bool has_append = false;
    // lease-journal: append must *precede* the lease-table write.
    bool append_seen = false;

    for (std::size_t i = first; i <= last; ++i) {
      const std::string& code = (*ctx.code)[i];
      const std::size_t apos = code.find("journal_->append(");
      if (!exempt && first_mutation == std::string::npos) {
        for (const char* m : kSchedMutators) {
          if (code.find(m) != std::string::npos) {
            first_mutation = i;
            mutation_text = m;
            mutation_text.pop_back();  // drop the '('
            break;
          }
        }
      }
      if (!exempt) {
        for (const char* m : kLeaseMutators) {
          const std::size_t mpos = code.find(m);
          if (mpos == std::string::npos) continue;
          if (append_seen || (apos != std::string::npos && apos < mpos))
            continue;
          std::string token(m);
          if (token.back() == '(' || token.back() == '[') token.pop_back();
          sink.emit(ctx.file, static_cast<int>(i), "lease-journal",
                    "Cluster::" + f.name + " mutates the lease table (" +
                        token +
                        ") before any journal append in this body; journal "
                        "the lease record first (write-ahead) or waive with "
                        "allow(lease-journal)",
                    /*accepts_ordered=*/false);
        }
      }
      if (apos != std::string::npos) {
        has_append = true;
        append_seen = true;
      }
    }

    if (first_mutation != std::string::npos && !has_append && !exempt)
      sink.emit(ctx.file, static_cast<int>(first_mutation),
                "journal-before-mutate",
                "Cluster::" + f.name + " mutates scheduler state (" +
                    mutation_text +
                    ") without journaling a record in the same body; append "
                    "a JournalRecord before the effect becomes visible or "
                    "waive with allow(journal-before-mutate)",
                /*accepts_ordered=*/false);
  }
}

// -- rule: dedup-before-reply ------------------------------------------------

void rule_dedup_before_reply(const FileContext& ctx, RuleSink& sink) {
  if (file_stem(ctx.src->path) != "service") return;
  for (std::size_t i = 0; i < ctx.code->size(); ++i) {
    const std::string& code = (*ctx.code)[i];
    const bool effectful = code.find("service_.try_start_mate(") !=
                               std::string::npos ||
                           code.find("service_.start_job(") !=
                               std::string::npos ||
                           code.find("service_.gang_") != std::string::npos;
    if (!effectful) continue;
    // The verdict must reach the dedup cache (whose persist hook journals
    // and commits it) before the reply for this call is built.
    bool recorded = false;
    std::size_t j = i;
    for (; j < ctx.code->size(); ++j) {
      if ((*ctx.code)[j].find("->record(") != std::string::npos ||
          (*ctx.code)[j].find(".record(") != std::string::npos)
        recorded = true;
      if ((*ctx.code)[j].find("return") != std::string::npos) break;
    }
    if (!recorded)
      sink.emit(ctx.file, static_cast<int>(i), "dedup-before-reply",
                "side-effecting service call replies without recording the "
                "verdict in RpcDedup (durable-before-reply); record it or "
                "waive with allow(dedup-before-reply)",
                /*accepts_ordered=*/false);
  }
}

/// Identifier ending right before `pos` (walking back over ident chars).
std::string ident_before(const std::string& code, std::size_t pos) {
  std::size_t b = pos;
  while (b > 0 && is_ident_char(code[b - 1])) --b;
  return code.substr(b, pos - b);
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void json_findings(std::ostringstream& os, const char* key,
                   const std::vector<Finding>& v) {
  os << "  \"" << key << "\": [";
  for (std::size_t i = 0; i < v.size(); ++i) {
    os << (i == 0 ? "\n" : ",\n");
    os << "    {\"file\": \"" << json_escape(v[i].file) << "\", \"line\": "
       << v[i].line << ", \"rule\": \"" << json_escape(v[i].rule)
       << "\", \"message\": \"" << json_escape(v[i].message) << "\"}";
  }
  os << (v.empty() ? "]" : "\n  ]");
}

}  // namespace

void RuleSink::emit(int file, int line0, const std::string& rule,
                    std::string message, bool accepts_ordered) {
  const std::vector<std::string>& raw = (*files)[file].lines;
  const auto match_line = [&](int li) -> int {
    // Returns 1 for ordered(), 2 for allow(rule), 0 for no waiver.
    if (li < 0 || li >= static_cast<int>(raw.size())) return 0;
    const std::string& line = raw[li];
    if (accepts_ordered &&
        line.find("cosched-lint: ordered(") != std::string::npos)
      return 1;
    if (line.find("cosched-lint: allow(" + rule + ")") != std::string::npos)
      return 2;
    return 0;
  };
  int waiver_line = line0;
  int kind = match_line(line0);
  if (kind == 0) {
    kind = match_line(line0 - 1);
    waiver_line = line0 - 1;
  }

  Finding f{(*files)[file].path, line0 + 1, rule, std::move(message)};
  if (kind == 0) {
    report->findings.push_back(std::move(f));
    return;
  }
  if (kind == 1)
    ++report->ordered_waivers_used;
  else
    ++report->allow_waivers_used;
  report->waived.push_back(std::move(f));
  if (waivers != nullptr) {
    for (WaiverRecord& w : *waivers) {
      if (w.file != file || w.line0 != waiver_line) continue;
      if (kind == 1 && w.ordered) w.used = true;
      if (kind == 2 && !w.ordered && w.rule == rule) w.used = true;
    }
  }
}

std::string member_mutation(const std::string& code) {
  for (std::size_t i = 0; i < code.size(); ++i) {
    if (!is_ident_char(code[i])) continue;
    const std::size_t b = i;
    while (i < code.size() && is_ident_char(code[i])) ++i;
    if (code[i - 1] != '_') continue;
    const std::string name = code.substr(b, i - b);
    if (b > 0 && code[b - 1] == '.') continue;
    if (b >= 2 && code[b - 1] == '>' && code[b - 2] == '-' &&
        ident_before(code, b - 2) != "this")
      continue;
    if (b >= 2 && ((code[b - 2] == '+' && code[b - 1] == '+') ||
                   (code[b - 2] == '-' && code[b - 1] == '-')))
      return name;
    std::size_t j = i;
    // One subscript is still a write to the member's element.
    if (j < code.size() && code[j] == '[') {
      int depth = 0;
      for (; j < code.size(); ++j) {
        if (code[j] == '[') ++depth;
        if (code[j] == ']' && --depth == 0) {
          ++j;
          break;
        }
      }
    }
    while (j < code.size() &&
           std::isspace(static_cast<unsigned char>(code[j])) != 0)
      ++j;
    if (j + 1 < code.size()) {
      const char a = code[j], bb = code[j + 1];
      if ((a == '+' && bb == '=') || (a == '-' && bb == '=') ||
          (a == '+' && bb == '+') || (a == '-' && bb == '-'))
        return name;
      if (a == '=' && bb != '=') return name;
    } else if (j < code.size() && code[j] == '=') {
      return name;
    }
  }
  return "";
}

std::vector<std::string> split_lines(const std::string& contents) {
  std::vector<std::string> lines;
  std::string cur;
  for (char c : contents) {
    if (c == '\n') {
      lines.push_back(cur);
      cur.clear();
    } else if (c != '\r') {
      cur.push_back(c);
    }
  }
  if (!cur.empty()) lines.push_back(cur);
  return lines;
}

Report run_lint(const std::vector<SourceFile>& files) {
  Report report;
  report.files_scanned = files.size();

  const ProjectIndex index = build_index(files);
  std::vector<WaiverRecord> waivers = scan_waivers(files);

  RuleSink sink;
  sink.files = &files;
  sink.report = &report;
  sink.waivers = &waivers;

  for (std::size_t i = 0; i < files.size(); ++i) {
    FileContext ctx;
    ctx.file = static_cast<int>(i);
    ctx.src = &files[i];
    ctx.code = &index.file_model[i].code;
    // v1 declaration-context merge: own stem's vars + global accessors,
    // minus the ordered/unordered-ambiguous names.
    const auto it = index.decls_by_stem.find(file_stem(files[i].path));
    if (it != index.decls_by_stem.end()) ctx.decls = it->second;
    ctx.decls.accessors.insert(index.global_decls.accessors.begin(),
                               index.global_decls.accessors.end());
    for (const std::string& name : index.global_decls.ordered_accessors)
      ctx.decls.accessors.erase(name);

    rule_banned_call(ctx, sink);
    rule_unordered_iter(ctx, sink);
    rule_cluster_write_ahead(ctx, index, sink);
    rule_dedup_before_reply(ctx, sink);
  }

  rule_journal_coverage(index, sink);
  rule_dispatch_exhaustiveness(index, sink);
  rule_lock_order(index, sink);
  rule_lane_purity(index, sink);

  for (const WaiverRecord& w : waivers) {
    if (w.used) continue;
    report.unused_waivers.push_back(Finding{
        files[w.file].path, w.line0 + 1, "unused-waiver",
        std::string(w.ordered ? "ordered(...)" : "allow(" + w.rule + ")") +
            " waiver suppressed no finding — stale debt; remove it"});
  }

  const auto by_location = [](const Finding& a, const Finding& b) {
    return std::tie(a.file, a.line, a.rule, a.message) <
           std::tie(b.file, b.line, b.rule, b.message);
  };
  std::sort(report.findings.begin(), report.findings.end(), by_location);
  std::sort(report.waived.begin(), report.waived.end(), by_location);
  std::sort(report.unused_waivers.begin(), report.unused_waivers.end(),
            by_location);
  return report;
}

bool lint_paths(const std::vector<std::string>& roots, Report& out,
                std::string& error) {
  namespace fs = std::filesystem;
  std::vector<std::string> paths;
  for (const std::string& root : roots) {
    std::error_code ec;
    if (fs::is_directory(root, ec)) {
      for (const auto& entry : fs::recursive_directory_iterator(root, ec)) {
        if (!entry.is_regular_file()) continue;
        const std::string ext = entry.path().extension().string();
        if (ext == ".h" || ext == ".cpp" || ext == ".cc" || ext == ".hpp")
          paths.push_back(entry.path().string());
      }
      if (ec) {
        error = root + ": " + ec.message();
        return false;
      }
    } else if (fs::is_regular_file(root, ec)) {
      paths.push_back(root);
    } else {
      error = root + ": not a file or directory";
      return false;
    }
  }
  std::sort(paths.begin(), paths.end());

  std::vector<SourceFile> files;
  files.reserve(paths.size());
  for (const std::string& p : paths) {
    std::ifstream in(p, std::ios::binary);
    if (!in) {
      error = p + ": cannot open";
      return false;
    }
    std::ostringstream ss;
    ss << in.rdbuf();
    files.push_back(SourceFile{p, split_lines(ss.str())});
  }
  out = run_lint(files);
  return true;
}

std::string to_string(const Finding& f) {
  return f.file + ":" + std::to_string(f.line) + ": [" + f.rule + "] " +
         f.message;
}

std::string to_json(const Report& r) {
  // Per-rule tallies over a stable rule list (plus anything else seen), so
  // CI tables have fixed rows run over run.
  static const char* kKnownRules[] = {
      "banned-call",          "dedup-before-reply",
      "dispatch-exhaustiveness", "engine-shared-state",
      "journal-before-mutate", "journal-coverage",
      "lease-journal",        "lock-order",
      "unordered-iter",
  };
  std::map<std::string, std::pair<int, int>> rules;  // rule -> (findings, waived)
  for (const char* k : kKnownRules) rules[k] = {0, 0};
  for (const Finding& f : r.findings) ++rules[f.rule].first;
  for (const Finding& f : r.waived) ++rules[f.rule].second;

  std::ostringstream os;
  os << "{\n";
  os << "  \"files_scanned\": " << r.files_scanned << ",\n";
  os << "  \"ordered_waivers\": " << r.ordered_waivers_used << ",\n";
  os << "  \"allow_waivers\": " << r.allow_waivers_used << ",\n";
  json_findings(os, "findings", r.findings);
  os << ",\n";
  json_findings(os, "waived", r.waived);
  os << ",\n";
  json_findings(os, "unused_waivers", r.unused_waivers);
  os << ",\n";
  os << "  \"rules\": {";
  bool first = true;
  for (const auto& [rule, counts] : rules) {
    os << (first ? "\n" : ",\n");
    first = false;
    os << "    \"" << json_escape(rule) << "\": {\"findings\": "
       << counts.first << ", \"waived\": " << counts.second << "}";
  }
  os << "\n  }\n}\n";
  return os.str();
}

}  // namespace cosched::lint

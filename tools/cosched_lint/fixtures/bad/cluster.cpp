// Known-bad fixture: a state-mutating Cluster method with no journal
// append in its body — the journal-before-mutate rule must flag the
// mutation line.  (Never compiled; parsed by cosched_lint_test only.)
#include "core/cluster.h"

namespace cosched {

void Cluster::kill_job(JobId id) {
  sched_.kill(id, engine_.now());
  request_iteration();
}

void Cluster::expire_lease(JobId job) {
  leases_.erase(job);  // no journal append anywhere in this body
  ++fence_counter_;
}

bool Cluster::gang_victim(JobId job) {
  sched_.release_hold(job, engine_.now());  // no journal append in this body
  return true;
}

bool Cluster::grant_lease(JobId job) {
  leases_[job] = HoldLease{};  // mutation first...
  WireWriter w;
  w.put_i64(job);
  journal_->append(JournalRecordKind::kLeaseGrant, w.bytes());  // ...too late
  return true;
}

}  // namespace cosched

// Known-bad fixture: a state-mutating Cluster method with no journal
// append in its body — the journal-before-mutate rule must flag the
// mutation line.  (Never compiled; parsed by cosched_lint_test only.)
#include "core/cluster.h"

namespace cosched {

void Cluster::kill_job(JobId id) {
  sched_.kill(id, engine_.now());
  request_iteration();
}

}  // namespace cosched

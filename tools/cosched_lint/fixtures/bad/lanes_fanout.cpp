// lane-purity bad fixture: the mutation is one call away from the pool
// lambda — invisible to a lambda-body-only rule, caught interprocedurally.
#include "sim/lanes_fanout.h"

void FanoutEngine::run_window(unsigned threads) {
  pool_->run([this](unsigned lane) {
    bump(lane);
  });
}

void FanoutEngine::bump(unsigned lane) {
  ++fanout_steps_;
}

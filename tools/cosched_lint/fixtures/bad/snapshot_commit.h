// journal-coverage bad fixture: roll_generation writes a new snapshot
// generation without committing the journal first — compaction rewrites the
// durable image, so any appended-but-uncommitted records would be silently
// spliced out of the log.
#pragma once

class Keeper {
 public:
  void roll_generation() {
    WireWriter snap;
    write_snapshot(snap);
    journal_->compact(snap.bytes());
  }

 private:
  Journal* journal_ = nullptr;
};

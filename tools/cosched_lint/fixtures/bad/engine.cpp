// Known-bad fixture: worker-pool lambdas writing engine members with no
// lock, no REQUIRES section, and no waiver — every write here races with
// the other helpers.  (Never compiled.)
#include "sim/engine.h"

namespace cosched {

void Engine::run_window(const std::vector<std::uint32_t>& parts, Time end) {
  std::atomic<std::size_t> cursor{0};
  pool_->run([this, &parts, &cursor, end](unsigned) {
    for (;;) {
      const std::size_t k = cursor.fetch_add(1, std::memory_order_relaxed);
      if (k >= parts.size()) break;
      executed_ += 1;  // racing increment of a shared counter
      now_ = end;      // racing write to the shared clock
    }
  });
}

void Engine::spawn_helper() {
  threads_.push_back(std::thread([this] { ++pinned_steps_; }));
}

}  // namespace cosched

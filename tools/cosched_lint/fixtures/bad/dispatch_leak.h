// dispatch-exhaustiveness bad fixture: kProdReq's dispatcher arm was
// deleted, and kZapReq's effect runs through a helper that never records a
// dedup verdict.
#pragma once

enum class MsgType : std::uint8_t {
  kZapReq = 1,
  kZapResp = 2,
  kProdReq = 3,
  kProdResp = 4,
};

class LeakyDispatcher {
 public:
  Bytes dispatch(const Message& m) {
    switch (m.type) {
      case MsgType::kZapReq:
        return handle_zap(m);
      default:
        return encode_error(m);
    }
  }

 private:
  Bytes handle_zap(const Message& m) {
    return encode(leaky_service_.start_job(m.a, m.b));
  }

  CoschedService& leaky_service_;
};

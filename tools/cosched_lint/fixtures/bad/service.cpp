// Known-bad fixture: a side-effecting service call whose reply is built
// without recording the verdict in RpcDedup first.  (Never compiled.)
#include "proto/service.h"

namespace cosched {

std::vector<std::uint8_t> ServiceDispatcher::dispatch(Request req) {
  switch (req.type) {
    case MsgType::kTryStartMateReq:
      return finish(
          make_try_start_mate_resp(req.request_id,
                                   service_.try_start_mate(req.job)));
    case MsgType::kGangVictimReq:
      // Gang calls are side-effecting too: replying without recording the
      // verdict lets a retried victim order fire twice.
      return finish(make_gang_victim_resp(
          req.request_id, service_.gang_victim(req.job, req.group)));
    default:
      return finish(make_error_resp(req.request_id, "unexpected"));
  }
}

}  // namespace cosched

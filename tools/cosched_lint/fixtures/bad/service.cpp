// Known-bad fixture: a side-effecting service call whose reply is built
// without recording the verdict in RpcDedup first.  (Never compiled.)
#include "proto/service.h"

namespace cosched {

std::vector<std::uint8_t> ServiceDispatcher::dispatch(Request req) {
  switch (req.type) {
    case MsgType::kTryStartMateReq:
      return finish(
          make_try_start_mate_resp(req.request_id,
                                   service_.try_start_mate(req.job)));
    default:
      return finish(make_error_resp(req.request_id, "unexpected"));
  }
}

}  // namespace cosched

// Known-bad fixture: wall clocks and libc PRNG in a deterministic
// directory (path contains /core/).  (Never compiled.)
#include <chrono>
#include <cstdlib>
#include <ctime>

namespace cosched {

long bad_now() {
  return std::chrono::system_clock::now().time_since_epoch().count();
}

int bad_random() {
  srand(42);
  return rand() % 7;
}

long bad_wall() { return static_cast<long>(time(nullptr)); }

}  // namespace cosched

// journal-coverage bad fixture: kDeltaNote has a writer and a name but its
// replay arm was deleted, and kGammaMark's replay arm rebuilds state that
// never reaches the snapshot pair.
#pragma once

enum class JournalRecordKind : std::uint8_t {
  kGammaMark = 1,
  kDeltaNote = 2,
};

class LossyLedger {
 public:
  void mark(std::int64_t t) {
    journal_->append(JournalRecordKind::kGammaMark, encode(t));
  }
  void note(std::int64_t t) {
    journal_->append(JournalRecordKind::kDeltaNote, encode(t));
  }

  const char* to_string(JournalRecordKind k) {
    switch (k) {
      case JournalRecordKind::kGammaMark:
        return "gamma";
      case JournalRecordKind::kDeltaNote:
        return "delta";
    }
    return "?";
  }

  void apply_record(const Record& r) {
    switch (r.kind) {
      case JournalRecordKind::kGammaMark:
        gamma_seen_ = r.value;
        break;
    }
  }

  void write_snapshot(Writer& w) { w.put(base_); }
  void apply_snapshot(Reader& r) { base_ = r.get(); }

 private:
  Journal* journal_ = nullptr;
  std::int64_t gamma_seen_ = 0;
  std::int64_t base_ = 0;
};

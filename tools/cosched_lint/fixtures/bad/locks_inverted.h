// lock-order bad fixture: forward() takes head_mu_ then tail_mu_ while
// backward() takes tail_mu_ then head_mu_ — the classic AB/BA deadlock.
#pragma once

class Inverted {
 public:
  void forward() {
    MutexLock a(head_mu_);
    MutexLock b(tail_mu_);
    ++fwd_;
  }

  void backward() {
    MutexLock b(tail_mu_);
    MutexLock a(head_mu_);
    ++bwd_;
  }

 private:
  Mutex head_mu_;
  Mutex tail_mu_;
  std::int64_t fwd_ = 0;
  std::int64_t bwd_ = 0;
};

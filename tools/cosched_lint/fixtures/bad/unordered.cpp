// Known-bad fixture: unwaived iteration over unordered containers, both
// range-for and iterator-range forms.  (Never compiled.)
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace cosched {

std::unordered_map<long, double> table_;

double emit_metrics() {
  double sum = 0;
  for (const auto& [id, v] : table_) sum += v;
  return sum;
}

std::vector<long> emit_ids(const std::unordered_set<long>& pending) {
  return std::vector<long>(pending.begin(), pending.end());
}

}  // namespace cosched

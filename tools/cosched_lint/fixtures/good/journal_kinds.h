// journal-coverage good fixture: every kind has a writer, a replay arm, a
// name-table entry, and its replay-arm state is snapshotted.
#pragma once

enum class JournalRecordKind : std::uint8_t {
  kAlphaMark = 1,
  kBetaNote = 2,
};

class Ledger {
 public:
  void mark(std::int64_t t) {
    journal_->append(JournalRecordKind::kAlphaMark, encode(t));
  }
  void note(std::int64_t t) {
    journal_->append(JournalRecordKind::kBetaNote, encode(t));
  }

  const char* to_string(JournalRecordKind k) {
    switch (k) {
      case JournalRecordKind::kAlphaMark:
        return "alpha";
      case JournalRecordKind::kBetaNote:
        return "beta";
    }
    return "?";
  }

  void apply_record(const Record& r) {
    switch (r.kind) {
      case JournalRecordKind::kAlphaMark:
        alpha_at_ = r.value;
        break;
      case JournalRecordKind::kBetaNote:
        beta_count_ += 1;
        break;
    }
  }

  void write_snapshot(Writer& w) {
    w.put(alpha_at_);
    w.put(beta_count_);
  }
  void apply_snapshot(Reader& r) {
    alpha_at_ = r.get();
    beta_count_ = r.get();
  }

 private:
  Journal* journal_ = nullptr;
  std::int64_t alpha_at_ = 0;
  std::int64_t beta_count_ = 0;
};

// lock-order good fixture: both paths take head_mu_ then tail_mu_ — one
// fixed order, no cycle.
#pragma once

class Pipeline {
 public:
  void push(Item it) {
    MutexLock head(head_mu_);
    MutexLock tail(tail_mu_);
    buf_.push_back(it);
  }

  void drain() {
    MutexLock head(head_mu_);
    MutexLock tail(tail_mu_);
    buf_.clear();
  }

 private:
  Mutex head_mu_;
  Mutex tail_mu_;
  std::vector<Item> buf_ GUARDED_BY(tail_mu_);
};

// Known-good fixture: worker-pool lambdas that keep to lane-confined state,
// guard shared writes with the owning Mutex, or carry an explicit waiver —
// the shared-counter folds happen after the barrier.  (Never compiled.)
#include "sim/engine.h"

namespace cosched {

void Engine::run_window(const std::vector<std::uint32_t>& parts, Time end) {
  std::atomic<std::size_t> cursor{0};
  pool_->run([this, &parts, &cursor, end](unsigned) {
    for (;;) {
      const std::size_t k = cursor.fetch_add(1, std::memory_order_relaxed);
      if (k >= parts.size()) break;
      run_lane_window(parts[k], end);  // lane-confined: owned by this worker
    }
  });
  windows_ += 1;  // post-barrier fold: the helpers are parked again
}

void Engine::count_under_lock() {
  pool_->run([this](unsigned) {
    MutexLock lock(stats_mu_);
    executed_ += 1;  // guarded by the mutex the annotation names
  });
}

void Engine::count_waived() {
  pool_->run([this](unsigned) {
    // cosched-lint: allow(engine-shared-state) one-helper pool: no peers
    executed_ += 1;
  });
}

}  // namespace cosched

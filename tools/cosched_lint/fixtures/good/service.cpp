// Known-good fixture: the verdict reaches the dedup cache (and through its
// persist hook, the journal) before the reply is built.  (Never compiled.)
#include "proto/service.h"

namespace cosched {

std::vector<std::uint8_t> ServiceDispatcher::dispatch(Request req) {
  switch (req.type) {
    case MsgType::kTryStartMateReq: {
      const bool started = service_.try_start_mate(req.job);
      if (dedupable)
        config_.dedup->record(req.incarnation, req.request_id, req.type,
                              started);
      return finish(make_try_start_mate_resp(req.request_id, started));
    }
    case MsgType::kGangCommitReq: {
      const bool admitted = service_.admit_fence(req.job, req.fence);
      const bool ok = admitted && service_.gang_commit(req.job, req.group);
      if (dedupable && admitted)
        config_.dedup->record(req.incarnation, req.request_id, req.type, ok);
      return finish(make_gang_commit_resp(req.request_id, ok));
    }
    default:
      return finish(make_error_resp(req.request_id, "unexpected"));
  }
}

}  // namespace cosched

// Known-good fixture: unordered iteration with ordered() waivers stating
// why hash order cannot leak, and the sort-before-emit idiom.
// (Never compiled.)
#include <algorithm>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace cosched {

std::unordered_map<long, double> table_;

double emit_metrics() {
  std::vector<long> ids;
  // cosched-lint: ordered(ids are sorted before any value is consumed)
  for (const auto& [id, v] : table_) ids.push_back(id);
  std::sort(ids.begin(), ids.end());
  double sum = 0;
  for (long id : ids) sum += table_.at(id);
  return sum;
}

std::vector<long> emit_ids(const std::unordered_set<long>& pending) {
  // cosched-lint: ordered(callers sort; order is not wire-visible)
  std::vector<long> out(pending.begin(), pending.end());
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace cosched

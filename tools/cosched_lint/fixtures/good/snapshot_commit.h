// journal-coverage good fixture: the journal is committed before the
// compaction rewrite, so the new generation folds a fully durable image —
// nothing buffered can be spliced out.
#pragma once

class Keeper {
 public:
  void roll_generation() {
    WireWriter snap;
    write_snapshot(snap);
    journal_->commit();
    journal_->compact(snap.bytes());
  }

 private:
  Journal* journal_ = nullptr;
};

// Known-good fixture: steady_clock and the engine's virtual time are fine;
// a justified allow() waiver silences a deliberate wall-clock read.
// (Never compiled.)
#include <chrono>

namespace cosched {

long good_now() {
  return std::chrono::steady_clock::now().time_since_epoch().count();
}

// A function whose *name* contains the banned tokens must not trip the
// word-boundary matchers.
long walltime(long operand) { return operand; }

long waived_wall() {
  // cosched-lint: allow(banned-call) boot-time banner only, never keyed.
  return static_cast<long>(time(nullptr));
}

}  // namespace cosched

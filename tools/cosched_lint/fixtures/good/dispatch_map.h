// dispatch-exhaustiveness good fixture: every k*Req has an arm, and both
// helper-mediated effects record a dedup verdict before the reply.
#pragma once

enum class MsgType : std::uint8_t {
  kPingReq = 1,
  kPingResp = 2,
  kNudgeReq = 3,
  kNudgeResp = 4,
};

class MiniDispatcher {
 public:
  Bytes dispatch(const Message& m) {
    switch (m.type) {
      case MsgType::kPingReq:
        return handle_ping(m);
      case MsgType::kNudgeReq:
        return handle_nudge(m);
      default:
        return encode_error(m);
    }
  }

 private:
  Bytes handle_ping(const Message& m) {
    const bool ok = mini_service_.try_start_mate(m.a, m.b);
    dedup_->record(m.inc, m.rid, m.type, ok);
    return encode(ok);
  }
  Bytes handle_nudge(const Message& m) {
    const bool ok = mini_service_.gang_prepare(m.a);
    dedup_->record(m.inc, m.rid, m.type, ok);
    return encode(ok);
  }

  CoschedService& mini_service_;
  RpcDedup* dedup_ = nullptr;
};

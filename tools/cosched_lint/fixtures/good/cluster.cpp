// Known-good fixture: mutations journaled in-body, a replay method exempt
// by name, and an explicit allow() waiver.  (Never compiled.)
#include "core/cluster.h"

namespace cosched {

void Cluster::kill_job(JobId id) {
  sched_.kill(id, engine_.now());
  if (journaling()) {
    WireWriter w;
    w.put_i64(id);
    journal_->append(JournalRecordKind::kKill, w.bytes());
  }
  journal_commit();
}

void Cluster::apply_record(const JournalRecord& rec) {
  // Replay path: runs with journaling() false, exempt by method name.
  sched_.finish(1, 2);
  leases_.erase(1);  // lease replay is exempt too
}

void Cluster::grant_lease(JobId job, const HoldLease& lease) {
  if (journaling()) {
    WireWriter w;
    w.put_i64(job);
    journal_->append(JournalRecordKind::kLeaseGrant, w.bytes());
  }
  leases_[job] = lease;  // write-ahead: record precedes the table write
}

void Cluster::reset_leases_for_test() {
  // cosched-lint: allow(lease-journal) test-only reset, never journaled
  leases_.clear();
}

bool Cluster::gang_abort(JobId job, GroupId group) {
  if (journaling()) {
    WireWriter w;
    w.put_i64(job);
    w.put_i64(group);
    journal_->append(JournalRecordKind::kGangAbort, w.bytes());
  }
  sched_.release_hold(job, engine_.now());  // record precedes the release
  journal_commit();
  return true;
}

bool Cluster::start_job(JobId job) {
  // cosched-lint: allow(journal-before-mutate) kStart journaled by on_start
  sched_.start_holding(job, engine_.now());
  return true;
}

}  // namespace cosched

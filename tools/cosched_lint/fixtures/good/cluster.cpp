// Known-good fixture: mutations journaled in-body, a replay method exempt
// by name, and an explicit allow() waiver.  (Never compiled.)
#include "core/cluster.h"

namespace cosched {

void Cluster::kill_job(JobId id) {
  sched_.kill(id, engine_.now());
  if (journaling()) {
    WireWriter w;
    w.put_i64(id);
    journal_->append(JournalRecordKind::kKill, w.bytes());
  }
  journal_commit();
}

void Cluster::apply_record(const JournalRecord& rec) {
  // Replay path: runs with journaling() false, exempt by method name.
  sched_.finish(1, 2);
}

bool Cluster::start_job(JobId job) {
  // cosched-lint: allow(journal-before-mutate) kStart journaled by on_start
  sched_.start_holding(job, engine_.now());
  return true;
}

}  // namespace cosched

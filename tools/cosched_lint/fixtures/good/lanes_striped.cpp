// lane-purity good fixture: everything the pool lambda reaches is either
// MutexLock-guarded or thread_local; the shared fold happens post-barrier.
#include "sim/lanes_striped.h"

static thread_local unsigned tls_scratch_ = 0;

void StripedEngine::run_window(unsigned threads) {
  pool_->run([this](unsigned lane) {
    run_stripe(lane);
    tally(lane);
  });
  folded_ += 1;  // post-barrier: outside the lambda region
}

void StripedEngine::run_stripe(unsigned lane) {
  MutexLock lock(mu_);
  stripe_done_ += 1;
}

void StripedEngine::tally(unsigned lane) { tls_scratch_ = lane; }

// Fixture suite for cosched_lint: the tool must flag exactly the known-bad
// snippets and accept the known-good ones (counting their waivers).  Runs
// under the `lint` ctest label next to the tree scan, so a rule regression
// fails CI the same way a rule violation would.
#include "lint.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>

namespace cosched::lint {
namespace {

#ifndef COSCHED_LINT_FIXTURES
#error "COSCHED_LINT_FIXTURES must point at the fixture directory"
#endif

Report lint_dir(const std::string& sub) {
  Report report;
  std::string error;
  const bool ok =
      lint_paths({std::string(COSCHED_LINT_FIXTURES) + "/" + sub}, report,
                 error);
  EXPECT_TRUE(ok) << error;
  return report;
}

std::set<std::string> rules_hit(const Report& r) {
  std::set<std::string> rules;
  for (const Finding& f : r.findings) rules.insert(f.rule);
  return rules;
}

int count_rule(const Report& r, const std::string& rule) {
  return static_cast<int>(
      std::count_if(r.findings.begin(), r.findings.end(),
                    [&](const Finding& f) { return f.rule == rule; }));
}

TEST(CoschedLint, GoodFixturesAreClean) {
  const Report r = lint_dir("good");
  for (const Finding& f : r.findings) ADD_FAILURE() << to_string(f);
  EXPECT_TRUE(r.findings.empty());
}

TEST(CoschedLint, GoodFixturesCountWaivers) {
  const Report r = lint_dir("good");
  // ordered() waivers: the two sort-before-emit sites in unordered.cpp.
  EXPECT_EQ(r.ordered_waivers_used, 2);
  // allow() waivers: start_job's journal waiver, the wall-clock banner, the
  // test-only lease reset, and the one-helper worker-pool counter.
  EXPECT_EQ(r.allow_waivers_used, 4);
  EXPECT_EQ(static_cast<int>(r.waived.size()),
            r.ordered_waivers_used + r.allow_waivers_used);
}

TEST(CoschedLint, BadFixturesAreAllFlagged) {
  const Report r = lint_dir("bad");
  const std::set<std::string> expected = {
      "journal-before-mutate", "lease-journal",      "dedup-before-reply",
      "banned-call",           "unordered-iter",     "engine-shared-state",
      "journal-coverage",      "dispatch-exhaustiveness", "lock-order"};
  EXPECT_EQ(rules_hit(r), expected);
}

TEST(CoschedLint, BadEngineFindingsNameTheRacingMembers) {
  const Report r = lint_dir("bad");
  // run_window races executed_ and now_; spawn_helper races pinned_steps_
  // from a raw std::thread lambda; lanes_fanout.cpp adds the
  // interprocedural fanout_steps_ hit (checked in its own test below).
  ASSERT_EQ(count_rule(r, "engine-shared-state"), 4);
  std::set<std::string> members;
  for (const Finding& f : r.findings) {
    if (f.rule != "engine-shared-state") continue;
    if (f.file.find("lanes_fanout.cpp") != std::string::npos) continue;
    EXPECT_NE(f.file.find("engine.cpp"), std::string::npos);
    for (const char* m : {"executed_", "now_", "pinned_steps_"})
      if (f.message.find(std::string("'") + m + "'") != std::string::npos)
        members.insert(m);
  }
  EXPECT_EQ(members,
            (std::set<std::string>{"executed_", "now_", "pinned_steps_"}));
}

TEST(CoschedLint, EngineRuleAcceptsLockedAndLaneConfinedLambdas) {
  // A MutexLock earlier in the lambda body guards later writes; calls into
  // lane-owned helpers and reads of shared state are never flagged.
  const std::vector<SourceFile> files = {
      {"fake/sim/engine.cpp",
       {"void Engine::fold() {",
        "  pool_->run([this](unsigned) {",
        "    MutexLock lock(mu_);",
        "    executed_ += 1;",
        "  });",
        "  windows_ += 1;  // post-barrier: outside the lambda region",
        "}"}}};
  const Report r = run_lint(files);
  EXPECT_EQ(count_rule(r, "engine-shared-state"), 0);
}

TEST(CoschedLint, BadJournalFindingPointsAtMutation) {
  const Report r = lint_dir("bad");
  // kill_job forgets the kKill record; gang_victim releases the hold with no
  // record — the rule must name each method and its mutator.
  ASSERT_EQ(count_rule(r, "journal-before-mutate"), 2);
  std::set<std::string> methods;
  for (const Finding& f : r.findings) {
    if (f.rule != "journal-before-mutate") continue;
    EXPECT_NE(f.file.find("cluster.cpp"), std::string::npos);
    if (f.message.find("kill_job") != std::string::npos) {
      EXPECT_NE(f.message.find("sched_.kill"), std::string::npos);
      methods.insert("kill_job");
    }
    if (f.message.find("gang_victim") != std::string::npos) {
      EXPECT_NE(f.message.find("sched_.release_hold"), std::string::npos);
      methods.insert("gang_victim");
    }
  }
  EXPECT_EQ(methods, (std::set<std::string>{"kill_job", "gang_victim"}));
}

TEST(CoschedLint, BadLeaseFindingsCatchMissingAndLateAppends) {
  const Report r = lint_dir("bad");
  // expire_lease has no append at all; grant_lease appends only *after* the
  // table write — the ordered rule must flag both.
  ASSERT_EQ(count_rule(r, "lease-journal"), 2);
  std::set<std::string> methods;
  for (const Finding& f : r.findings) {
    if (f.rule != "lease-journal") continue;
    EXPECT_NE(f.file.find("cluster.cpp"), std::string::npos);
    if (f.message.find("expire_lease") != std::string::npos)
      methods.insert("expire_lease");
    if (f.message.find("grant_lease") != std::string::npos)
      methods.insert("grant_lease");
  }
  EXPECT_EQ(methods, (std::set<std::string>{"expire_lease", "grant_lease"}));
}

TEST(CoschedLint, LeaseRuleAcceptsWriteAheadOrderAndExemptsReplay) {
  // Append-before-mutation in the same body passes; the same mutation in an
  // apply_* replay method needs no append at all.
  const std::vector<SourceFile> files = {
      {"fake/core/cluster.cpp",
       {"void Cluster::expire_lease(JobId job) {",
        "  journal_->append(JournalRecordKind::kLeaseExpire, w.bytes());",
        "  leases_.erase(job);", "}",
        "void Cluster::apply_snapshot(const Snapshot& s) {",
        "  leases_.clear();", "}"}}};
  const Report r = run_lint(files);
  EXPECT_TRUE(r.findings.empty());
}

TEST(CoschedLint, BadDedupFindingOnEffectfulCall) {
  const Report r = lint_dir("bad");
  // try_start_mate and the gang_victim dispatch both reply unrecorded.
  EXPECT_EQ(count_rule(r, "dedup-before-reply"), 2);
}

TEST(CoschedLint, GangDispatchCountsAsEffectful) {
  // Any service_.gang_*( call is side-effecting: a reply without a dedup
  // record must be flagged, and record-before-reply must pass.
  const std::vector<SourceFile> bad = {
      {"fake/proto/service.cpp",
       {"case MsgType::kGangPrepareReq: {",
        "  const bool ok = service_.gang_prepare(req.job, req.group);",
        "  return finish(make_gang_prepare_resp(req.request_id, ok));",
        "}"}}};
  EXPECT_EQ(count_rule(run_lint(bad), "dedup-before-reply"), 1);
  const std::vector<SourceFile> good = {
      {"fake/proto/service.cpp",
       {"case MsgType::kGangAbortReq: {",
        "  const bool ok = service_.gang_abort(req.job, req.group);",
        "  config_.dedup->record(req.incarnation, req.request_id, req.type,",
        "                        ok);",
        "  return finish(make_gang_abort_resp(req.request_id, ok));",
        "}"}}};
  EXPECT_EQ(count_rule(run_lint(good), "dedup-before-reply"), 0);
}

TEST(CoschedLint, BadBannedCallsAllCaught) {
  const Report r = lint_dir("bad");
  // system_clock, srand, rand, time(nullptr) — four separate lines.
  EXPECT_EQ(count_rule(r, "banned-call"), 4);
}

TEST(CoschedLint, BadUnorderedBothForms) {
  const Report r = lint_dir("bad");
  // One range-for and one .begin() iterator range.
  EXPECT_EQ(count_rule(r, "unordered-iter"), 2);
}

TEST(CoschedLint, WholeFixtureTreeSeparatesGoodFromBad) {
  // Good and bad scanned together: declarations must not bleed between
  // same-stem files in a way that flags the good ones.
  const Report r = lint_dir("");
  for (const Finding& f : r.findings)
    EXPECT_NE(f.file.find("/bad/"), std::string::npos) << to_string(f);
}

TEST(CoschedLint, CodeViewStripsCommentsAndStrings) {
  const std::vector<SourceFile> files = {
      {"fake/core/strings.cpp",
       {"const char* msg = \"call rand() and system_clock\";",
        "// a comment mentioning srand and time(nullptr)"}}};
  const Report r = run_lint(files);
  EXPECT_TRUE(r.findings.empty());
}

TEST(CoschedLint, BannedCallScopedToDeterministicDirs) {
  const std::vector<SourceFile> files = {
      {"fake/net/wallclock.cpp",
       {"long t = std::chrono::system_clock::now().time_since_epoch()"
        ".count();"}}};
  const Report r = run_lint(files);
  EXPECT_TRUE(r.findings.empty());  // net/ may read wall clocks
}

TEST(CoschedLint, AmbiguousAccessorNameIsSkipped) {
  // jobs() returns an unordered_map on one class and a vector on another
  // (Scheduler vs Trace in the real tree).  A textual matcher cannot tell
  // the receivers apart, so the name must be skipped, not flagged.
  const std::vector<SourceFile> files = {
      {"fake/sched/tables.h",
       {"const std::unordered_map<long, long>& jobs() const { return j_; }"}},
      {"fake/workload/trace.h",
       {"const std::vector<long>& jobs() const { return v_; }"}},
      {"fake/core/use.cpp", {"for (const auto& j : trace.jobs()) {"}}};
  const Report r = run_lint(files);
  EXPECT_TRUE(r.findings.empty());
}

TEST(CoschedLint, AccessorIterationNeedsWaiver) {
  const std::vector<SourceFile> files = {
      {"fake/core/tables.h",
       {"const std::unordered_map<long, long>& jobs() const { return j_; }"}},
      {"fake/core/use.cpp", {"for (const auto& [id, j] : sched_.jobs()) {"}}};
  const Report r = run_lint(files);
  ASSERT_EQ(r.findings.size(), 1u);
  EXPECT_EQ(r.findings[0].rule, "unordered-iter");
}

// -- cross-file analyses (v2) ------------------------------------------------

TEST(CoschedLint, BadJournalKindsMissReplayAndSnapshot) {
  const Report r = lint_dir("bad");
  // kDeltaNote's replay arm was deleted; kGammaMark's replay arm rebuilds
  // gamma_seen_, which the snapshot pair never carries; snapshot_commit.h
  // adds the uncommitted-compaction hit (checked in its own test below).
  ASSERT_EQ(count_rule(r, "journal-coverage"), 3);
  std::set<std::string> hits;
  for (const Finding& f : r.findings) {
    if (f.rule != "journal-coverage") continue;
    if (f.file.find("snapshot_commit.h") != std::string::npos) continue;
    EXPECT_NE(f.file.find("journal_kinds.h"), std::string::npos);
    if (f.message.find("'kDeltaNote'") != std::string::npos &&
        f.message.find("no replay case") != std::string::npos)
      hits.insert("missing-replay");
    if (f.message.find("'gamma_seen_'") != std::string::npos)
      hits.insert("missing-snapshot");
  }
  EXPECT_EQ(hits,
            (std::set<std::string>{"missing-replay", "missing-snapshot"}));
}

TEST(CoschedLint, BadSnapshotGenerationWithoutCommitIsFlagged) {
  const Report r = lint_dir("bad");
  // roll_generation compacts around a fresh snapshot with no commit first —
  // buffered records would be spliced out of the durable image.
  bool found = false;
  for (const Finding& f : r.findings) {
    if (f.rule != "journal-coverage" ||
        f.file.find("snapshot_commit.h") == std::string::npos)
      continue;
    found = true;
    EXPECT_NE(f.message.find("roll_generation"), std::string::npos);
    EXPECT_NE(f.message.find("without committing"), std::string::npos);
  }
  EXPECT_TRUE(found);
}

TEST(CoschedLint, CommitBeforeCompactAndLadderShapesPass) {
  // Commit-before-compact is the good shape; set_journal (initial attach)
  // and emergency_compact (the ENOSPC ladder) are exempt by name.
  const std::vector<SourceFile> files = {
      {"fake/core/keeper.cpp",
       {"void Keeper::journal_commit() {",
        "  journal_->commit();",
        "  WireWriter snap;",
        "  write_snapshot(snap);",
        "  journal_->compact(snap.bytes());",
        "}",
        "void Keeper::set_journal(Journal* j) {",
        "  WireWriter snap;",
        "  write_snapshot(snap);",
        "  journal_->compact(snap.bytes());",
        "}",
        "void Keeper::emergency_compact() {",
        "  WireWriter snap;",
        "  write_snapshot(snap);",
        "  journal_->compact(snap.bytes());",
        "}"}}};
  EXPECT_EQ(count_rule(run_lint(files), "journal-coverage"), 0);
}

TEST(CoschedLint, JournalReplayArmDeletionIsCaught) {
  // Full coverage passes; removing exactly one replay arm must fail.
  const std::vector<std::string> full = {
      "enum class JournalRecordKind { kOneMark = 1, kTwoMark = 2 };",
      "void Box::save() {",
      "  journal_->append(JournalRecordKind::kOneMark, b);",
      "  journal_->append(JournalRecordKind::kTwoMark, b);",
      "}",
      "void Box::apply_record(const Record& r) {",
      "  switch (r.kind) {",
      "    case JournalRecordKind::kOneMark: break;",
      "    case JournalRecordKind::kTwoMark: break;",
      "  }",
      "}"};
  EXPECT_EQ(count_rule(run_lint({{"fake/core/box.cpp", full}}),
                       "journal-coverage"),
            0);
  std::vector<std::string> missing = full;
  missing.erase(missing.begin() + 8);  // drop the kTwoMark replay arm
  const Report r = run_lint({{"fake/core/box.cpp", missing}});
  ASSERT_EQ(count_rule(r, "journal-coverage"), 1);
  EXPECT_NE(r.findings[0].message.find("'kTwoMark'"), std::string::npos);
}

TEST(CoschedLint, BadDispatchLeakFindsMissingArmAndUnrecordedHelper) {
  const Report r = lint_dir("bad");
  ASSERT_EQ(count_rule(r, "dispatch-exhaustiveness"), 2);
  std::set<std::string> hits;
  for (const Finding& f : r.findings) {
    if (f.rule != "dispatch-exhaustiveness") continue;
    EXPECT_NE(f.file.find("dispatch_leak.h"), std::string::npos);
    if (f.message.find("'kProdReq'") != std::string::npos)
      hits.insert("missing-arm");
    if (f.message.find("'handle_zap'") != std::string::npos)
      hits.insert("unrecorded-helper");
  }
  EXPECT_EQ(hits,
            (std::set<std::string>{"missing-arm", "unrecorded-helper"}));
}

TEST(CoschedLint, DispatchArmDeletionIsCaught) {
  // Both request arms present passes; removing exactly one must fail.
  const std::vector<std::string> full = {
      "enum class MsgType { kAReq = 1, kAResp = 2, kBReq = 3, kBResp = 4 };",
      "Bytes Hub::dispatch(const Message& m) {",
      "  switch (m.type) {",
      "    case MsgType::kAReq: return reply_a(m);",
      "    case MsgType::kBReq: return reply_b(m);",
      "  }",
      "}"};
  EXPECT_EQ(count_rule(run_lint({{"fake/proto/hub.cpp", full}}),
                       "dispatch-exhaustiveness"),
            0);
  std::vector<std::string> missing = full;
  missing.erase(missing.begin() + 4);  // drop the kBReq arm
  const Report r = run_lint({{"fake/proto/hub.cpp", missing}});
  ASSERT_EQ(count_rule(r, "dispatch-exhaustiveness"), 1);
  EXPECT_NE(r.findings[0].message.find("'kBReq'"), std::string::npos);
}

TEST(CoschedLint, BadLockInversionIsACycle) {
  const Report r = lint_dir("bad");
  ASSERT_EQ(count_rule(r, "lock-order"), 1);
  for (const Finding& f : r.findings) {
    if (f.rule != "lock-order") continue;
    EXPECT_NE(f.file.find("locks_inverted.h"), std::string::npos);
    EXPECT_NE(f.message.find("Inverted::head_mu_"), std::string::npos);
    EXPECT_NE(f.message.find("Inverted::tail_mu_"), std::string::npos);
  }
}

TEST(CoschedLint, BadFanoutInterproceduralMutationIsCaught) {
  const Report r = lint_dir("bad");
  // ++fanout_steps_ is one call away from the pool lambda: invisible to the
  // v1 lambda-slice rule, caught by the reachability walk.
  bool found = false;
  for (const Finding& f : r.findings) {
    if (f.rule != "engine-shared-state" ||
        f.file.find("lanes_fanout.cpp") == std::string::npos)
      continue;
    found = true;
    EXPECT_NE(f.message.find("'fanout_steps_'"), std::string::npos);
    EXPECT_NE(f.message.find("via bump"), std::string::npos);
    EXPECT_NE(f.message.find("FanoutEngine::bump"), std::string::npos);
  }
  EXPECT_TRUE(found);
}

TEST(CoschedLint, RequiresAnnotatedCalleeIsExemptFromLanePurity) {
  // A REQUIRES-annotated callee runs with the lock held by contract — the
  // interprocedural walk must not flag its writes.
  const std::vector<SourceFile> files = {
      {"fake/sim/guarded.cpp",
       {"void Striper::run_window(unsigned threads) {",
        "  pool_->run([this](unsigned lane) {",
        "    locked_add(lane);",
        "  });",
        "}",
        "void Striper::locked_add(unsigned lane) REQUIRES(mu_) {",
        "  ++stripe_sum_;",
        "}"}}};
  EXPECT_EQ(count_rule(run_lint(files), "engine-shared-state"), 0);
}

TEST(CoschedLint, JsonReportParsesAndIsStable) {
  const Report r = lint_dir("bad");
  const std::string a = to_json(r);
  const std::string b = to_json(lint_dir("bad"));
  EXPECT_EQ(a, b);  // byte-stable across identical runs
  for (const char* key :
       {"\"files_scanned\"", "\"findings\"", "\"waived\"",
        "\"unused_waivers\"", "\"rules\"", "\"lock-order\"",
        "\"journal-coverage\"", "\"dispatch-exhaustiveness\""})
    EXPECT_NE(a.find(key), std::string::npos) << key;
  // Balanced braces/brackets outside strings — cheap structural parse.
  int depth = 0;
  bool in_str = false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const char c = a[i];
    if (in_str) {
      if (c == '\\') ++i;
      else if (c == '"') in_str = false;
      continue;
    }
    if (c == '"') in_str = true;
    if (c == '{' || c == '[') ++depth;
    if (c == '}' || c == ']') --depth;
    EXPECT_GE(depth, 0);
  }
  EXPECT_EQ(depth, 0);
  EXPECT_FALSE(in_str);
}

TEST(CoschedLint, UnusedWaiverIsReported) {
  const std::vector<SourceFile> files = {
      {"fake/core/tidy.cpp",
       {"// cosched-lint: allow(banned-call) left over from a deleted line",
        "int x = 1;"}}};
  const Report r = run_lint(files);
  EXPECT_TRUE(r.findings.empty());
  ASSERT_EQ(r.unused_waivers.size(), 1u);
  EXPECT_EQ(r.unused_waivers[0].rule, "unused-waiver");
  EXPECT_EQ(r.unused_waivers[0].line, 1);
}

}  // namespace
}  // namespace cosched::lint

// Internal rule plumbing shared by lint.cpp (driver + line rules) and
// rules_graph.cpp (the cross-file analyses over the project index).
#pragma once

#include <string>
#include <vector>

#include "index.h"
#include "lint.h"

namespace cosched::lint {

/// One waiver comment found in the tree.  `used` flips when a finding is
/// suppressed by it; the driver reports the leftovers so stale waivers are
/// visible (the ordered()-audit workflow).
struct WaiverRecord {
  int file = 0;
  int line0 = 0;  ///< 0-based line holding the comment
  bool ordered = false;
  std::string rule;  ///< for allow(<rule>) waivers
  bool used = false;
};

/// Central finding sink: applies waiver lookup (same line or line above,
/// v1 semantics), splits findings/waived, and marks consumed waivers.
struct RuleSink {
  const std::vector<SourceFile>* files = nullptr;
  Report* report = nullptr;
  std::vector<WaiverRecord>* waivers = nullptr;

  void emit(int file, int line0, const std::string& rule, std::string message,
            bool accepts_ordered);
};

/// First `_`-suffixed identifier on `code` mutated with =, +=, -=, ++ or --
/// (an implicit this-> member write), or "" when none (v1 helper, shared by
/// the lane-purity rule's lambda slices).
std::string member_mutation(const std::string& code);

// The four cross-file analyses.
void rule_journal_coverage(const ProjectIndex& index, RuleSink& sink);
void rule_dispatch_exhaustiveness(const ProjectIndex& index, RuleSink& sink);
void rule_lock_order(const ProjectIndex& index, RuleSink& sink);
void rule_lane_purity(const ProjectIndex& index, RuleSink& sink);

}  // namespace cosched::lint

// The cross-file analyses of cosched_lint v2: journal-coverage,
// dispatch-exhaustiveness, lock-order, and the interprocedural half of
// engine-shared-state (lane purity).  All four run over the project index
// built by index.cpp; none of them re-reads source lines except to anchor
// findings.
#include <algorithm>
#include <deque>
#include <functional>
#include <map>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "rules.h"

namespace cosched::lint {

namespace {

bool ends_with(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

std::string site(const ProjectIndex& ix, int file, int line) {
  return (*ix.files)[file].path + ":" + std::to_string(line);
}

// -- rule: journal-coverage --------------------------------------------------
//
// Every JournalRecordKind enumerator must have (a) an append()/frame()
// writer site, (b) a replay case in apply_record/recover_from_journal,
// (c) a to_string name-table entry.  Additionally, any member a replay arm
// mutates must appear in write_snapshot AND apply_snapshot — otherwise the
// state the record re-creates is silently dropped across a compaction.
// Each category is gated on at least one enumerator of the enum having a
// site of that category, so a partially-modeled snippet set (unit-test
// fragments without a to_string) is not drowned in noise while a single
// missing kind in a fully-modeled tree is still caught.

void rule_journal_coverage_impl(const ProjectIndex& ix, RuleSink& sink) {
  // Writer sites: `JournalRecordKind::kX` appearing as an argument of an
  // append(...), frame(...), or encode_frame(...) call (the frame encoders
  // cover the compaction/salvage paths that emit kSnapshot directly).
  std::set<std::string> writers;
  for (const FileModel& fm : ix.file_model) {
    const std::vector<Token>& toks = fm.tokens;
    for (std::size_t i = 0; i + 2 < toks.size(); ++i) {
      if (toks[i].text != "JournalRecordKind" || toks[i + 1].text != "::" ||
          toks[i + 2].kind != Token::kIdent)
        continue;
      if (i >= 1 && toks[i - 1].text == "case") continue;
      if (i >= 2 && toks[i - 2].text == "case") continue;
      const std::size_t lo = i >= 8 ? i - 8 : 0;
      for (std::size_t k = lo; k < i; ++k) {
        if (toks[k].kind == Token::kIdent &&
            (toks[k].text == "append" || toks[k].text == "frame" ||
             toks[k].text == "encode_frame") &&
            k + 1 < toks.size() && toks[k + 1].text == "(") {
          writers.insert(toks[i + 2].text);
          break;
        }
      }
    }
  }

  std::set<std::string> replay_arms, name_arms;
  bool have_write_snapshot = false, have_apply_snapshot = false;
  std::set<std::string> snapshot_tokens_write, snapshot_tokens_apply;
  for (const FunctionInfo& f : ix.functions) {
    // The salvage/fallback helpers carved out of recover_from_journal are
    // replay context too: a kind they route (or deliberately skip) counts.
    const bool is_replay =
        f.name == "apply_record" || f.name == "recover_from_journal" ||
        f.name == "apply_verified_snapshot" ||
        f.name == "replay_salvaged_tail";
    const bool is_name = f.name == "to_string";
    for (const CaseSite& cs : f.cases) {
      if (cs.enum_name != "JournalRecordKind") continue;
      if (is_replay) replay_arms.insert(cs.enumerator);
      if (is_name) name_arms.insert(cs.enumerator);
    }
    if (f.name == "write_snapshot" || f.name == "apply_snapshot") {
      const std::vector<Token>& toks = ix.file_model[f.file].tokens;
      std::set<std::string>& out = f.name == "write_snapshot"
                                       ? snapshot_tokens_write
                                       : snapshot_tokens_apply;
      for (std::size_t t = f.body_begin; t < f.body_end && t < toks.size();
           ++t)
        if (toks[t].kind == Token::kIdent) out.insert(toks[t].text);
      (f.name == "write_snapshot" ? have_write_snapshot
                                  : have_apply_snapshot) = true;
    }
  }

  std::set<std::string> all_kinds;
  for (const EnumInfo& e : ix.enums) {
    if (e.name != "JournalRecordKind") continue;
    for (const Enumerator& en : e.enumerators) all_kinds.insert(en.name);

    const auto any_in = [&](const std::set<std::string>& s) {
      return std::any_of(e.enumerators.begin(), e.enumerators.end(),
                         [&](const Enumerator& en) {
                           return s.count(en.name) != 0;
                         });
    };
    const bool gate_writer = any_in(writers);
    const bool gate_replay = any_in(replay_arms);
    const bool gate_name = any_in(name_arms);

    for (const Enumerator& en : e.enumerators) {
      if (gate_writer && writers.count(en.name) == 0)
        sink.emit(e.file, en.line - 1, "journal-coverage",
                  "journal kind '" + en.name +
                      "' has no append() writer site anywhere in the scanned "
                      "tree — a dead record kind or a missing producer; add "
                      "the writer or waive with allow(journal-coverage)",
                  /*accepts_ordered=*/false);
      if (gate_replay && replay_arms.count(en.name) == 0)
        sink.emit(e.file, en.line - 1, "journal-coverage",
                  "journal kind '" + en.name +
                      "' has no replay case in apply_record/"
                      "recover_from_journal — a journaled record of this "
                      "kind would be dropped on recovery; add the arm or "
                      "waive with allow(journal-coverage)",
                  /*accepts_ordered=*/false);
      if (gate_name && name_arms.count(en.name) == 0)
        sink.emit(e.file, en.line - 1, "journal-coverage",
                  "journal kind '" + en.name +
                      "' is missing from the to_string() name table; add the "
                      "entry or waive with allow(journal-coverage)",
                  /*accepts_ordered=*/false);
    }
  }

  // Snapshot coverage of replay-arm state.
  if (!have_write_snapshot || !have_apply_snapshot) return;
  std::set<std::pair<std::string, std::string>> reported;  // (kind, member)
  for (const FunctionInfo& f : ix.functions) {
    if (f.name != "apply_record") continue;
    for (const CaseSite& cs : f.cases) {
      if (cs.enum_name != "JournalRecordKind" ||
          all_kinds.count(cs.enumerator) == 0)
        continue;
      for (const MutationSite& m : f.mutations) {
        if (m.token <= cs.token || m.token >= cs.arm_end) continue;
        if (snapshot_tokens_write.count(m.member) != 0 &&
            snapshot_tokens_apply.count(m.member) != 0)
          continue;
        if (!reported.insert({cs.enumerator, m.member}).second) continue;
        sink.emit(f.file, m.line - 1, "journal-coverage",
                  "replay arm for '" + cs.enumerator + "' mutates '" +
                      m.member +
                      "' which never appears in write_snapshot/"
                      "apply_snapshot — state rebuilt during replay would be "
                      "lost across a compaction; snapshot it or waive with "
                      "allow(journal-coverage)",
                  /*accepts_ordered=*/false);
      }
    }
  }

  // Snapshot-generation discipline: compaction rewrites the journal from its
  // *durable* image, so a function that rolls a new generation (calls both
  // write_snapshot and compact) with appended-but-uncommitted records still
  // buffered would silently splice them out of the log.  Require a commit
  // call before the compact in the same body.  set_journal (initial attach:
  // nothing buffered yet) and emergency_compact (runs *at* the commit
  // boundary, where a commit may be what just failed) are the two legitimate
  // commit-free shapes.
  for (const FunctionInfo& f : ix.functions) {
    if (f.name == "set_journal" || f.name == "emergency_compact") continue;
    const CallSite* compact_call = nullptr;
    bool writes_snapshot = false;
    bool committed_first = false;
    for (const CallSite& c : f.calls) {
      if (c.name == "write_snapshot") writes_snapshot = true;
      if (c.name == "compact" && compact_call == nullptr) compact_call = &c;
      if ((c.name == "commit" || c.name == "journal_commit") &&
          (compact_call == nullptr || c.token < compact_call->token))
        committed_first = true;
    }
    if (compact_call == nullptr || !writes_snapshot || committed_first)
      continue;
    sink.emit(f.file, compact_call->line - 1, "journal-coverage",
              "'" + f.qualified() +
                  "' writes a snapshot generation (compact) without "
                  "committing the journal first — compaction rewrites the "
                  "durable image, so buffered records would be silently "
                  "spliced out; commit() before compact() or waive with "
                  "allow(journal-coverage)",
              /*accepts_ordered=*/false);
  }
}

// -- rule: dispatch-exhaustiveness -------------------------------------------
//
// Every k*Req enumerator of MsgType must have a `case` arm in a dispatch()
// function, and any arm whose effect is reached *through a helper call*
// (the direct-call case is dedup-before-reply's) must still record a dedup
// verdict somewhere on that path before the reply.

bool call_is_effectful(const CallSite& c) {
  if (c.receiver.find("service") == std::string::npos) return false;
  return c.name == "try_start_mate" || c.name == "start_job" ||
         c.name.rfind("gang_", 0) == 0;
}

/// Transitive closure of project functions reachable from `start`.
std::set<int> reachable(const ProjectIndex& ix, int start) {
  std::set<int> seen;
  std::deque<int> work{start};
  while (!work.empty()) {
    const int cur = work.front();
    work.pop_front();
    if (!seen.insert(cur).second) continue;
    for (const CallSite& c : ix.functions[cur].calls) {
      const int g = resolve_call(ix, c.name, ix.functions[cur].cls, c.receiver);
      if (g >= 0 && seen.count(g) == 0) work.push_back(g);
    }
  }
  return seen;
}

void rule_dispatch_exhaustiveness_impl(const ProjectIndex& ix,
                                       RuleSink& sink) {
  std::set<std::string> arms;
  std::vector<int> dispatchers;
  for (std::size_t i = 0; i < ix.functions.size(); ++i) {
    const FunctionInfo& f = ix.functions[i];
    if (f.name != "dispatch") continue;
    dispatchers.push_back(static_cast<int>(i));
    for (const CaseSite& cs : f.cases)
      if (cs.enum_name == "MsgType") arms.insert(cs.enumerator);
  }

  for (const EnumInfo& e : ix.enums) {
    if (e.name != "MsgType") continue;
    const bool gate =
        std::any_of(e.enumerators.begin(), e.enumerators.end(),
                    [&](const Enumerator& en) {
                      return ends_with(en.name, "Req") &&
                             arms.count(en.name) != 0;
                    });
    if (!gate) continue;
    for (const Enumerator& en : e.enumerators) {
      if (!ends_with(en.name, "Req") || arms.count(en.name) != 0) continue;
      sink.emit(e.file, en.line - 1, "dispatch-exhaustiveness",
                "message type '" + en.name +
                    "' has no case arm in any dispatch() — requests of this "
                    "type fall through without dedup/fencing treatment; add "
                    "the dispatcher arm or waive with "
                    "allow(dispatch-exhaustiveness)",
                /*accepts_ordered=*/false);
    }
  }

  // Helper-mediated effects: a dispatcher arm that reaches try_start_mate /
  // start_job / gang_* through a called function must record a verdict
  // either in the arm or inside the helper chain.
  for (const int di : dispatchers) {
    const FunctionInfo& f = ix.functions[di];
    for (const CaseSite& cs : f.cases) {
      if (cs.enumerator == "default") continue;
      bool direct_effect = false, direct_record = false;
      std::vector<const CallSite*> arm_calls;
      for (const CallSite& c : f.calls) {
        if (c.token <= cs.token || c.token >= cs.arm_end) continue;
        if (call_is_effectful(c)) direct_effect = true;
        if (c.name == "record") direct_record = true;
        arm_calls.push_back(&c);
      }
      if (direct_effect) continue;  // dedup-before-reply owns this shape
      bool trans_effect = false, trans_record = direct_record;
      std::string via;
      for (const CallSite* c : arm_calls) {
        const int g = resolve_call(ix, c->name, f.cls, c->receiver);
        if (g < 0) continue;
        for (const int r : reachable(ix, g)) {
          for (const CallSite& rc : ix.functions[r].calls) {
            if (call_is_effectful(rc) && !trans_effect) {
              trans_effect = true;
              via = c->name;
            }
            if (rc.name == "record") trans_record = true;
          }
        }
      }
      if (trans_effect && !trans_record)
        sink.emit(f.file, cs.line - 1, "dispatch-exhaustiveness",
                  "dispatcher arm for '" + cs.enumerator +
                      "' reaches a side-effecting service call through '" +
                      via +
                      "' without recording a dedup verdict before the "
                      "reply; call RpcDedup::record on the path or waive "
                      "with allow(dispatch-exhaustiveness)",
                  /*accepts_ordered=*/false);
    }
  }
}

// -- rule: lock-order --------------------------------------------------------
//
// Builds the mutex acquisition graph: an edge A -> B when B is acquired
// (directly, or transitively through a resolvable call) while A is held —
// held meaning an enclosing MutexLock scope or a REQUIRES(A) annotation on
// the function.  Any cycle is a potential deadlock.

struct EdgeSite {
  int file = 0;
  int line = 0;
};

void rule_lock_order_impl(const ProjectIndex& ix, RuleSink& sink) {
  const std::size_t n = ix.functions.size();

  // Transitive may-acquire sets, propagated to a fixpoint over resolvable
  // call edges (the graph is tiny; iterate until stable).
  std::vector<std::set<std::string>> acq(n);
  for (std::size_t i = 0; i < n; ++i)
    for (const LockSite& l : ix.functions[i].locks) acq[i].insert(l.mutex);
  bool changed = true;
  for (int pass = 0; changed && pass < 64; ++pass) {
    changed = false;
    for (std::size_t i = 0; i < n; ++i) {
      for (const CallSite& c : ix.functions[i].calls) {
        const int g = resolve_call(ix, c.name, ix.functions[i].cls, c.receiver);
        if (g < 0) continue;
        for (const std::string& m : acq[g])
          if (acq[i].insert(m).second) changed = true;
      }
    }
  }

  std::map<std::pair<std::string, std::string>, EdgeSite> edges;
  const auto add_edge = [&](const std::string& from, const std::string& to,
                            int file, int line) {
    edges.emplace(std::make_pair(from, to), EdgeSite{file, line});
  };

  for (std::size_t i = 0; i < n; ++i) {
    const FunctionInfo& f = ix.functions[i];
    for (const LockSite& l : f.locks) {
      for (const LockSite& l2 : f.locks)
        if (l2.token > l.token && l2.token <= l.scope_end)
          add_edge(l.mutex, l2.mutex, f.file, l2.line);
      for (const CallSite& c : f.calls) {
        if (c.token <= l.token || c.token > l.scope_end) continue;
        const int g = resolve_call(ix, c.name, f.cls, c.receiver);
        if (g < 0) continue;
        for (const std::string& m : acq[g])
          add_edge(l.mutex, m, f.file, c.line);
      }
    }
    // REQUIRES(A): everything this function acquires is acquired with A
    // already held by the caller.
    auto [lo, hi] = ix.requires_mutexes.equal_range(f.qualified());
    for (auto it = lo; it != hi; ++it) {
      for (const LockSite& l : f.locks)
        add_edge(it->second, l.mutex, f.file, l.line);
      for (const CallSite& c : f.calls) {
        const int g = resolve_call(ix, c.name, f.cls, c.receiver);
        if (g < 0) continue;
        for (const std::string& m : acq[g])
          add_edge(it->second, m, f.file, c.line);
      }
    }
  }

  // Cycle detection over the edge set (nodes iterated in sorted order for
  // deterministic reports; each distinct node set reported once).
  std::map<std::string, std::vector<std::string>> adj;
  for (const auto& [edge, _] : edges) adj[edge.first].push_back(edge.second);
  for (auto& [_, outs] : adj) std::sort(outs.begin(), outs.end());

  std::set<std::string> reported_cycles;
  std::map<std::string, int> color;  // 0 = new, 1 = on stack, 2 = done
  std::vector<std::string> stack;

  const std::function<void(const std::string&)> dfs =
      [&](const std::string& node) {
        color[node] = 1;
        stack.push_back(node);
        for (const std::string& next : adj[node]) {
          if (color[next] == 1) {
            // Found a cycle: node path from `next` to the stack top.
            const auto begin =
                std::find(stack.begin(), stack.end(), next);
            std::vector<std::string> cycle(begin, stack.end());
            std::vector<std::string> key = cycle;
            std::sort(key.begin(), key.end());
            std::string key_str;
            for (const std::string& k : key) key_str += k + "|";
            if (!reported_cycles.insert(key_str).second) continue;

            // Compose the report: each edge of the cycle with its site;
            // anchor at the smallest (file, line) edge site.
            std::string desc;
            int anchor_file = -1, anchor_line = 0;
            for (std::size_t ci = 0; ci < cycle.size(); ++ci) {
              const std::string& from = cycle[ci];
              const std::string& to = cycle[(ci + 1) % cycle.size()];
              const auto it = edges.find({from, to});
              if (it == edges.end()) continue;
              if (!desc.empty()) desc += "; ";
              desc += to + " acquired at " +
                      site(ix, it->second.file, it->second.line) +
                      " while holding " + from;
              if (anchor_file < 0 ||
                  std::make_pair((*ix.files)[it->second.file].path,
                                 it->second.line) <
                      std::make_pair((*ix.files)[anchor_file].path,
                                     anchor_line)) {
                anchor_file = it->second.file;
                anchor_line = it->second.line;
              }
            }
            std::string names;
            for (const std::string& cn : cycle) names += cn + " -> ";
            names += cycle.front();
            if (anchor_file >= 0)
              sink.emit(anchor_file, anchor_line - 1, "lock-order",
                        "mutex acquisition cycle " + names + " (" + desc +
                            ") — lock both in one fixed order or waive "
                            "with allow(lock-order)",
                        /*accepts_ordered=*/false);
            continue;
          }
          if (color[next] == 0) dfs(next);
        }
        stack.pop_back();
        color[node] = 2;
      };
  for (const auto& [node, _] : adj)
    if (color[node] == 0) dfs(node);
}

// -- rule: engine-shared-state (lane purity, intra + interprocedural) --------

const char* kLambdaMsgTail =
    "' outside a REQUIRES-annotated section; take the owning Mutex "
    "(MutexLock), move the write to the post-barrier fold, or waive with "
    "allow(engine-shared-state)";

void rule_lane_purity_impl(const ProjectIndex& ix, RuleSink& sink) {
  // Intra-lambda half: v1 semantics over the recorded body slices.
  for (const PoolLambda& lam : ix.pool_lambdas) {
    for (const PoolLambda::Slice& slice : lam.slices) {
      if (slice.guarded) continue;
      const std::string hit = member_mutation(slice.body);
      if (hit.empty()) continue;
      sink.emit(lam.file, slice.line - 1, "engine-shared-state",
                "worker-pool lambda mutates shared member '" + hit +
                    std::string(kLambdaMsgTail),
                /*accepts_ordered=*/false);
    }
  }

  // Interprocedural half: walk the call graph from the unguarded part of
  // each pool lambda; any reachable function that writes a `_`-suffixed
  // member without a lock runs that write concurrently on every worker.
  std::set<std::pair<int, std::string>> reported;  // (function, member)
  for (const PoolLambda& lam : ix.pool_lambdas) {
    const std::string cls =
        lam.func >= 0 ? ix.functions[lam.func].cls : std::string();
    std::set<int> visited;
    // (function, path-so-far) — path only for the finding message.
    std::deque<std::pair<int, std::string>> work;
    for (const CallSite& c : lam.calls) {
      const int g = resolve_call(ix, c.name, cls, c.receiver);
      if (g >= 0) work.emplace_back(g, c.name);
    }
    while (!work.empty()) {
      const auto [fi, path] = work.front();
      work.pop_front();
      if (!visited.insert(fi).second) continue;
      const FunctionInfo& f = ix.functions[fi];
      // A REQUIRES-annotated function runs with the lock held by contract;
      // its writes (and its callees') are the annotation checker's job.
      if (f.requires_lock || ix.requires_annotated.count(f.qualified()) != 0)
        continue;
      for (const MutationSite& m : f.mutations) {
        if (m.via_method) continue;  // v1 parity: direct writes only
        if (ix.thread_locals.count(m.member) != 0) continue;
        bool guarded = false;
        for (const LockSite& l : f.locks)
          if (l.token < m.token && m.token <= l.scope_end) guarded = true;
        if (guarded) continue;
        if (!reported.insert({fi, m.member}).second) continue;
        sink.emit(f.file, m.line - 1, "engine-shared-state",
                  "function '" + f.qualified() + "' (reachable from the "
                      "worker-pool lambda at " +
                      site(ix, lam.file, lam.line) + " via " + path +
                      ") mutates shared member '" + m.member +
                      std::string(kLambdaMsgTail),
                  /*accepts_ordered=*/false);
      }
      for (const CallSite& c : f.calls) {
        const int g = resolve_call(ix, c.name, f.cls, c.receiver);
        if (g >= 0 && visited.count(g) == 0)
          work.emplace_back(g, path + " -> " + c.name);
      }
    }
  }
}

}  // namespace

void rule_journal_coverage(const ProjectIndex& index, RuleSink& sink) {
  rule_journal_coverage_impl(index, sink);
}

void rule_dispatch_exhaustiveness(const ProjectIndex& index, RuleSink& sink) {
  rule_dispatch_exhaustiveness_impl(index, sink);
}

void rule_lock_order(const ProjectIndex& index, RuleSink& sink) {
  rule_lock_order_impl(index, sink);
}

void rule_lane_purity(const ProjectIndex& index, RuleSink& sink) {
  rule_lane_purity_impl(index, sink);
}

}  // namespace cosched::lint

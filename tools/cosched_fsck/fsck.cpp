#include "fsck.h"

#include <algorithm>
#include <sstream>

#include "util/error.h"

namespace cosched::fsck {

FsckReport fsck_scan(std::span<const std::uint8_t> bytes) {
  FsckReport report;
  report.salvage = salvage_scan(bytes);
  const SalvageReport& s = report.salvage;

  for (const JournalRecord& rec : s.records) {
    (rec.version == 1 ? report.v1_frames : report.v2_frames) += 1;
    ++report.records_by_kind[to_string(rec.kind)];
    if (rec.kind != JournalRecordKind::kSnapshot) continue;
    const SnapshotView view = parse_snapshot_payload(rec);
    report.snapshots.push_back({rec.seq, view.generation, view.checksum_ok,
                                view.state.size(), rec.version});
    if (view.checksum_ok)
      report.recoverable = true;
    else
      report.problems.push_back(
          "snapshot generation " + std::to_string(view.generation) + " (seq " +
          std::to_string(rec.seq) +
          ") fails its state checksum — recovery falls back a generation");
  }

  if (bytes.empty()) {
    report.problems.push_back("journal is empty — nothing to recover");
  } else if (report.snapshots.empty()) {
    report.problems.push_back(
        "no snapshot record found — recovery has no anchor");
  } else if (!report.recoverable) {
    report.problems.push_back(
        "no snapshot generation verifies — the image cannot anchor a "
        "recovery");
  }

  for (const CorruptRegion& region : s.corrupt_regions)
    report.problems.push_back(
        "corrupt region at offset " + std::to_string(region.offset) + " (" +
        std::to_string(region.length) + " bytes): " + region.reason);
  if (s.tail_torn)
    report.problems.push_back(
        "torn tail — the image ends in an incomplete frame (normal crash "
        "artifact; the partial frame is discarded)");
  if (s.seq_holes > 0)
    report.problems.push_back(
        std::to_string(s.seq_holes) + " sequence hole(s), " +
        std::to_string(s.records_missing) +
        " record(s) missing — replay past the first hole is unsound");
  if (s.duplicate_records > 0)
    report.problems.push_back(
        std::to_string(s.duplicate_records) +
        " duplicate/backwards sequence number(s) — only the first copy of "
        "each record is usable");

  return report;
}

std::vector<std::uint8_t> fsck_repair(std::span<const std::uint8_t> bytes) {
  const SalvageReport s = salvage_scan(bytes);

  // Anchor: the newest snapshot whose envelope verifies.
  std::size_t anchor = s.records.size();
  for (std::size_t i = 0; i < s.records.size(); ++i) {
    const JournalRecord& rec = s.records[i];
    if (rec.kind != JournalRecordKind::kSnapshot) continue;
    if (parse_snapshot_payload(rec).checksum_ok) anchor = i;
  }
  if (anchor == s.records.size())
    throw Error(
        "fsck repair: no verifiable snapshot generation — refusing to forge "
        "a journal");

  // Tail after the anchor, in sequence order (first copy of a seq wins),
  // truncated at the first hole — exactly the set recovery would replay.
  std::vector<const JournalRecord*> tail;
  for (const JournalRecord& rec : s.records)
    if (rec.seq > s.records[anchor].seq) tail.push_back(&rec);
  std::stable_sort(tail.begin(), tail.end(),
                   [](const JournalRecord* a, const JournalRecord* b) {
                     return a->seq < b->seq;
                   });

  std::vector<std::uint8_t> image;
  const auto put = [&image](const JournalRecord& rec) {
    // Upgrading a v1 snapshot frame to v2 changes how readers parse its
    // payload — wrap the raw state in the generation envelope (generation 0
    // marks pre-generation legacy state).
    const auto f =
        rec.version < 2 && rec.kind == JournalRecordKind::kSnapshot
            ? encode_frame(rec.seq, rec.kind,
                           make_snapshot_payload(0, rec.payload))
            : encode_frame(rec.seq, rec.kind, rec.payload);
    image.insert(image.end(), f.begin(), f.end());
  };
  put(s.records[anchor]);
  std::uint64_t prev_seq = s.records[anchor].seq;
  for (const JournalRecord* rec : tail) {
    if (rec->seq == prev_seq) continue;       // duplicate: first copy won
    if (rec->seq != prev_seq + 1) break;      // hole: truncate here
    put(*rec);
    prev_seq = rec->seq;
  }
  return image;
}

std::string to_text(const FsckReport& report, const std::string& name) {
  std::ostringstream out;
  const SalvageReport& s = report.salvage;
  out << name << ": " << s.records.size() << " intact record(s) ("
      << report.v2_frames << " v2, " << report.v1_frames << " v1), "
      << s.bytes_scanned << " byte(s) scanned, " << s.bytes_skipped
      << " unreadable\n";
  for (const auto& [kind, count] : report.records_by_kind)
    out << "  kind " << kind << ": " << count << "\n";
  for (const SnapshotInfo& snap : report.snapshots)
    out << "  snapshot generation " << snap.generation << " @ seq " << snap.seq
        << " (v" << static_cast<int>(snap.version) << ", " << snap.state_bytes
        << " state bytes): "
        << (snap.checksum_ok ? "verified" : "CHECKSUM FAILED") << "\n";
  if (report.healthy()) {
    out << "  clean: every byte accounted for, newest generation verifies\n";
  } else {
    for (const std::string& problem : report.problems)
      out << "  problem: " << problem << "\n";
  }
  return out.str();
}

}  // namespace cosched::fsck

// cosched_fsck — offline journal inspection and repair.
//
// The in-process recovery path (Cluster::recover_from_journal) salvages what
// it can and accounts for the rest, but it runs inside the daemon.  This
// tool is the operator-facing half: point it at a journal image (file) and
// it scans without mutating, classifies every byte (intact frame, corrupt
// region, torn tail), verifies each snapshot generation's checksum, and
// reports exactly what a recovery would keep and what it would lose.
//
// `--repair` rewrites the journal to the maximal image a recovery can use
// losslessly: the newest *verifiable* snapshot generation plus the longest
// contiguous run of records after it, re-framed as v2 (scrubbing rot and
// upgrading v1 frames), duplicates dropped (first copy wins), truncated at
// the first sequence hole.  Everything removed was either unreadable or
// unsound to replay — and is itemized in the report before the rewrite.
#pragma once

#include <cstdint>
#include <map>
#include <span>
#include <string>
#include <vector>

#include "core/journal.h"

namespace cosched::fsck {

/// One snapshot generation found in the image.
struct SnapshotInfo {
  std::uint64_t seq = 0;         ///< record sequence number
  std::uint64_t generation = 0;  ///< envelope generation (0 for v1 frames)
  bool checksum_ok = true;       ///< envelope CRC over the state bytes
  std::size_t state_bytes = 0;   ///< size of the wrapped state
  std::uint8_t version = 2;      ///< frame format the record was read from
};

struct FsckReport {
  SalvageReport salvage;         ///< the raw scan (regions, holes, dups)
  std::size_t v1_frames = 0;
  std::size_t v2_frames = 0;
  /// Intact records per kind name (to_string of JournalRecordKind).
  std::map<std::string, std::size_t> records_by_kind;
  /// Every snapshot generation, in stream order.
  std::vector<SnapshotInfo> snapshots;
  /// Human-readable problems, one line each; empty = healthy.
  std::vector<std::string> problems;
  /// A recovery could restore state from this image (at least one snapshot
  /// generation verifies).
  bool recoverable = false;

  bool healthy() const { return problems.empty(); }
};

/// Scans a journal byte image.  Never throws; an empty or garbage image is
/// reported, not rejected.
FsckReport fsck_scan(std::span<const std::uint8_t> bytes);

/// Builds the repaired image (see file header for the exact policy).
/// Throws Error when no snapshot generation verifies — there is nothing
/// sound to anchor a repair on, and guessing would forge state.
std::vector<std::uint8_t> fsck_repair(std::span<const std::uint8_t> bytes);

/// Renders a report as the CLI's human-readable output.
std::string to_text(const FsckReport& report, const std::string& name);

}  // namespace cosched::fsck

// CLI for cosched_fsck (see fsck.h for the scan/repair policy).
//
//   cosched_fsck [--repair] <journal-file>...
//
// Exit codes:
//   0 — every image is healthy (after repair, when --repair is given)
//   1 — problems found (and repaired, when --repair is given)
//   2 — unusable input: unreadable file, or an image with no verifiable
//       snapshot generation (repair refuses to forge a journal)
#include <cstdio>
#include <string>
#include <vector>

#include "core/journal.h"
#include "fsck.h"
#include "util/error.h"

namespace {

int run(int argc, char** argv) {
  bool repair = false;
  std::vector<std::string> paths;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--repair")
      repair = true;
    else if (arg == "--help" || arg == "-h" || arg.rfind("-", 0) == 0) {
      std::fprintf(stderr, "usage: cosched_fsck [--repair] <journal>...\n");
      return arg == "--help" || arg == "-h" ? 0 : 2;
    } else {
      paths.push_back(arg);
    }
  }
  if (paths.empty()) {
    std::fprintf(stderr, "usage: cosched_fsck [--repair] <journal>...\n");
    return 2;
  }

  int exit_code = 0;
  for (const std::string& path : paths) {
    try {
      cosched::FileJournalSink sink(path);
      const std::vector<std::uint8_t> bytes = sink.contents();
      const cosched::fsck::FsckReport report = cosched::fsck::fsck_scan(bytes);
      std::fputs(cosched::fsck::to_text(report, path).c_str(), stdout);
      if (report.healthy()) continue;
      if (!report.recoverable) {
        exit_code = 2;
        continue;
      }
      if (exit_code == 0) exit_code = 1;
      if (!repair) continue;

      std::vector<std::uint8_t> fixed = cosched::fsck::fsck_repair(bytes);
      const std::size_t kept =
          cosched::fsck::fsck_scan(fixed).salvage.records.size();
      sink.reset(std::move(fixed));  // temp file + rename: crash-atomic
      std::fprintf(stdout,
                   "%s: repaired — %zu record(s) kept, %zu dropped\n",
                   path.c_str(), kept,
                   report.salvage.records.size() - kept);
    } catch (const cosched::Error& e) {
      std::fprintf(stderr, "cosched_fsck: %s: %s\n", path.c_str(), e.what());
      exit_code = 2;
    }
  }
  return exit_code;
}

}  // namespace

int main(int argc, char** argv) { return run(argc, argv); }

// Fixture suite for cosched_fsck: scans and repairs of clean, rotten, torn,
// reordered, and v1-format journal images.  Runs under the `storage` ctest
// label with the rest of the storage fault plane.
#include "fsck.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "core/journal.h"
#include "util/error.h"

namespace cosched::fsck {
namespace {

std::vector<std::uint8_t> payload_of(std::initializer_list<int> xs) {
  WireWriter w;
  for (int x : xs) w.put_i64(x);
  return w.take();
}

/// A journal image with one snapshot followed by `n` committed records.
std::vector<std::uint8_t> make_image(int n) {
  Journal j(std::make_unique<MemoryJournalSink>());
  j.compact(payload_of({7, 7}), /*retain_previous=*/false);
  for (int i = 0; i < n; ++i)
    j.append(JournalRecordKind::kIterate, payload_of({i}));
  j.commit();
  return j.sink().contents();
}

/// Hand-encodes a v1 frame: [u32 len][u32 crc32(body)][body].
std::vector<std::uint8_t> v1_frame(std::uint64_t seq, JournalRecordKind kind,
                                   std::span<const std::uint8_t> payload) {
  WireWriter bw;
  bw.put_u64(seq);
  bw.put_u8(static_cast<std::uint8_t>(kind));
  std::vector<std::uint8_t> body = bw.take();
  body.insert(body.end(), payload.begin(), payload.end());
  std::vector<std::uint8_t> out;
  const auto le32 = [&out](std::uint32_t v) {
    for (int i = 0; i < 4; ++i)
      out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  };
  le32(static_cast<std::uint32_t>(body.size()));
  le32(crc32(body));
  out.insert(out.end(), body.begin(), body.end());
  return out;
}

TEST(Fsck, CleanImageIsHealthy) {
  const auto bytes = make_image(4);
  const FsckReport r = fsck_scan(bytes);
  EXPECT_TRUE(r.healthy()) << to_text(r, "img");
  EXPECT_TRUE(r.recoverable);
  EXPECT_EQ(r.salvage.records.size(), 5u);
  EXPECT_EQ(r.v2_frames, 5u);
  EXPECT_EQ(r.v1_frames, 0u);
  EXPECT_EQ(r.records_by_kind.at("snapshot"), 1u);
  EXPECT_EQ(r.records_by_kind.at("iterate"), 4u);
  ASSERT_EQ(r.snapshots.size(), 1u);
  EXPECT_EQ(r.snapshots[0].generation, 1u);
  EXPECT_TRUE(r.snapshots[0].checksum_ok);
}

TEST(Fsck, MidLogRotIsARegionAndAHole) {
  auto bytes = make_image(5);
  // Rot one body byte of the middle frame: the scan must resync on the next
  // magic, report one corrupt region, and count the lost record.
  const FsckReport clean = fsck_scan(bytes);
  ASSERT_EQ(clean.salvage.records.size(), 6u);
  // Frame 3 starts after frames 1..2; find it by re-scanning offsets.
  std::size_t offset = 0;
  for (int skip = 0; skip < 3; ++skip) {
    const std::uint32_t len = static_cast<std::uint32_t>(bytes[offset + 4]) |
                              (static_cast<std::uint32_t>(bytes[offset + 5])
                               << 8);
    offset += 16 + len;
  }
  bytes[offset + 16] ^= 0x01;  // first body byte of frame 4

  const FsckReport r = fsck_scan(bytes);
  EXPECT_FALSE(r.healthy());
  EXPECT_TRUE(r.recoverable);
  EXPECT_EQ(r.salvage.records.size(), 5u);
  ASSERT_EQ(r.salvage.corrupt_regions.size(), 1u);
  EXPECT_EQ(r.salvage.corrupt_regions[0].offset, offset);
  EXPECT_EQ(r.salvage.seq_holes, 1u);
  EXPECT_EQ(r.salvage.records_missing, 1u);
  EXPECT_FALSE(r.salvage.tail_torn);

  // Repair truncates at the hole: snapshot + the records before the rot.
  const auto fixed = fsck_repair(bytes);
  const FsckReport rr = fsck_scan(fixed);
  EXPECT_TRUE(rr.healthy()) << to_text(rr, "fixed");
  EXPECT_EQ(rr.salvage.records.size(), 3u);  // snapshot + 2 intact records
  const JournalReplay strict = read_journal(fixed);
  EXPECT_FALSE(strict.tail_torn);
  EXPECT_EQ(strict.records.size(), 3u);
}

TEST(Fsck, TornTailIsReportedAndTrimmed) {
  auto bytes = make_image(3);
  bytes.resize(bytes.size() - 5);  // tear the last frame

  const FsckReport r = fsck_scan(bytes);
  EXPECT_FALSE(r.healthy());
  EXPECT_TRUE(r.salvage.tail_torn);
  EXPECT_TRUE(r.salvage.corrupt_regions.empty());
  EXPECT_EQ(r.salvage.records.size(), 3u);

  const auto fixed = fsck_repair(bytes);
  const FsckReport rr = fsck_scan(fixed);
  EXPECT_TRUE(rr.healthy());
  EXPECT_EQ(rr.salvage.records.size(), 3u);
}

TEST(Fsck, CorruptNewestSnapshotStillRecoverableViaFallback) {
  // Two generations, then rot the *state* inside the newest envelope with
  // the frame CRC recomputed — models rot during the compaction rewrite,
  // caught only by the envelope checksum.
  Journal j(std::make_unique<MemoryJournalSink>());
  j.compact(payload_of({1}), /*retain_previous=*/false);
  j.append(JournalRecordKind::kIterate, payload_of({2}));
  j.commit();
  j.compact(payload_of({3}));  // generation 2, retains generation 1

  const SalvageReport s = salvage_scan(j.sink().contents());
  std::vector<std::uint8_t> image;
  for (const JournalRecord& rec : s.records) {
    std::vector<std::uint8_t> payload = rec.payload;
    if (rec.kind == JournalRecordKind::kSnapshot &&
        parse_snapshot_payload(rec).generation == 2)
      payload.back() ^= 0x10;  // rot a state byte inside the envelope
    const auto f = encode_frame(rec.seq, rec.kind, payload);
    image.insert(image.end(), f.begin(), f.end());
  }

  const FsckReport r = fsck_scan(image);
  EXPECT_FALSE(r.healthy());
  EXPECT_TRUE(r.recoverable);  // generation 1 still verifies
  ASSERT_EQ(r.snapshots.size(), 2u);
  EXPECT_TRUE(r.snapshots[0].checksum_ok);
  EXPECT_FALSE(r.snapshots[1].checksum_ok);
  bool mentioned = false;
  for (const std::string& p : r.problems)
    if (p.find("generation 2") != std::string::npos) mentioned = true;
  EXPECT_TRUE(mentioned);

  // Repair anchors on generation 1 and keeps the tail (including the rotten
  // generation-2 record, preserving sequence continuity for recovery's own
  // fallback walk).
  const auto fixed = fsck_repair(image);
  const FsckReport rr = fsck_scan(fixed);
  EXPECT_TRUE(rr.recoverable);
  EXPECT_EQ(rr.salvage.records.size(), s.records.size());
  EXPECT_TRUE(rr.salvage.clean());
}

TEST(Fsck, ReorderedDuplicatesAreDroppedBySeqOrder) {
  const auto bytes = make_image(3);
  const SalvageReport s = salvage_scan(bytes);
  ASSERT_EQ(s.records.size(), 4u);
  // Rebuild with the last two records swapped and the final one duplicated.
  std::vector<std::uint8_t> image;
  const auto put = [&image](const JournalRecord& rec) {
    const auto f = encode_frame(rec.seq, rec.kind, rec.payload);
    image.insert(image.end(), f.begin(), f.end());
  };
  put(s.records[0]);
  put(s.records[1]);
  put(s.records[3]);
  put(s.records[2]);
  put(s.records[3]);

  const FsckReport r = fsck_scan(image);
  EXPECT_FALSE(r.healthy());
  EXPECT_GT(r.salvage.duplicate_records, 0u);

  const auto fixed = fsck_repair(image);
  const FsckReport rr = fsck_scan(fixed);
  EXPECT_TRUE(rr.healthy()) << to_text(rr, "fixed");
  EXPECT_EQ(rr.salvage.records.size(), 4u);  // order healed, duplicate gone
}

TEST(Fsck, RefusesToForgeWithoutAVerifiableSnapshot) {
  // Records but no snapshot at all.
  std::vector<std::uint8_t> image;
  const auto f = encode_frame(1, JournalRecordKind::kIterate, payload_of({1}));
  image.insert(image.end(), f.begin(), f.end());
  const FsckReport r = fsck_scan(image);
  EXPECT_FALSE(r.recoverable);
  EXPECT_THROW(fsck_repair(image), Error);
}

TEST(Fsck, V1ImageScansAndRepairUpgradesToV2) {
  // A journal written entirely by the v1 code: snapshot payload is the raw
  // state, frames carry no magic.
  const auto state = payload_of({4, 2});
  std::vector<std::uint8_t> image;
  for (const auto& f :
       {v1_frame(1, JournalRecordKind::kSnapshot, state),
        v1_frame(2, JournalRecordKind::kIterate, payload_of({1})),
        v1_frame(3, JournalRecordKind::kFinish, payload_of({2}))})
    image.insert(image.end(), f.begin(), f.end());

  const FsckReport r = fsck_scan(image);
  EXPECT_TRUE(r.healthy()) << to_text(r, "v1");
  EXPECT_TRUE(r.recoverable);
  EXPECT_EQ(r.v1_frames, 3u);
  EXPECT_EQ(r.v2_frames, 0u);
  ASSERT_EQ(r.snapshots.size(), 1u);
  EXPECT_EQ(r.snapshots[0].generation, 0u);  // pre-generation legacy
  EXPECT_TRUE(r.snapshots[0].checksum_ok);   // trivially: nothing to verify

  // Repair re-frames as v2, wrapping the legacy snapshot in an envelope so
  // v2 readers parse the state correctly.
  const auto fixed = fsck_repair(image);
  const FsckReport rr = fsck_scan(fixed);
  EXPECT_TRUE(rr.healthy());
  EXPECT_EQ(rr.v1_frames, 0u);
  EXPECT_EQ(rr.v2_frames, 3u);
  ASSERT_EQ(rr.snapshots.size(), 1u);
  EXPECT_TRUE(rr.snapshots[0].checksum_ok);
  const SalvageReport ss = salvage_scan(fixed);
  for (const JournalRecord& rec : ss.records) {
    if (rec.kind != JournalRecordKind::kSnapshot) continue;
    const SnapshotView view = parse_snapshot_payload(rec);
    EXPECT_EQ(std::vector<std::uint8_t>(view.state.begin(), view.state.end()),
              state);
  }
}

TEST(Fsck, TextReportNamesKindsAndProblems) {
  auto bytes = make_image(2);
  bytes.resize(bytes.size() - 3);
  const std::string text = to_text(fsck_scan(bytes), "wal");
  EXPECT_NE(text.find("wal:"), std::string::npos);
  EXPECT_NE(text.find("kind snapshot"), std::string::npos);
  EXPECT_NE(text.find("torn tail"), std::string::npos);
}

}  // namespace
}  // namespace cosched::fsck

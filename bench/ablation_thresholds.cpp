// Ablation: the §IV-E2 enhancements — maximum hold-node fraction,
// maximum-yield-before-hold, and per-yield priority boost.  The paper found
// these optional for correctness; this table quantifies their effect on the
// cost metrics.
#include <iostream>

#include "common.h"

using namespace cosched;
using namespace cosched::bench;

int main() {
  print_header("Ablation", "enhancement thresholds (load 0.50, ~7.5% paired)");

  struct Config {
    const char* label;
    SchemeCombo combo;
    CoschedConfig tweak;
  };
  std::vector<Config> configs;
  {
    Config c{"HH, no caps", kHH, {}};
    configs.push_back(c);
  }
  for (double cap : {0.5, 0.2, 0.05}) {
    Config c{nullptr, kHH, {}};
    c.tweak.max_hold_fraction = cap;
    static std::vector<std::string> labels;
    labels.push_back("HH, hold cap " + format_percent(cap, 0));
    c.label = labels.back().c_str();
    configs.push_back(c);
  }
  {
    Config c{"YY, no escalation", kYY, {}};
    configs.push_back(c);
  }
  for (int max_yield : {5, 20}) {
    Config c{nullptr, kYY, {}};
    c.tweak.max_yield_before_hold = max_yield;
    static std::vector<std::string> labels;
    labels.push_back("YY, hold after " + std::to_string(max_yield) +
                     " yields");
    c.label = labels.back().c_str();
    configs.push_back(c);
  }
  {
    Config c{"YY, priority boost", kYY, {}};
    c.tweak.yield_priority_boost = 1e6;  // strong boost per yield
    configs.push_back(c);
  }

  Table t({"configuration", "intrepid wait (min)", "intrepid sync (min)",
           "eureka sync (min)", "intrepid loss (node-h)",
           "eureka loss (node-h)", "pairs synced"});
  for (const Config& c : configs) {
    const Series s = run_series(/*by_load=*/true, 0.50, c.combo, true,
                                c.tweak);
    t.add_row({c.label, format_double(s.intrepid_wait.mean()),
               format_double(s.intrepid_sync.mean()),
               format_double(s.eureka_sync.mean()),
               format_count(static_cast<long long>(s.intrepid_loss_nh.mean())),
               format_count(static_cast<long long>(s.eureka_loss_nh.mean())),
               format_count(static_cast<long long>(s.pairs_synced))});
  }
  t.print(std::cout);
  std::cout << "\nExpectation: hold caps trade sync time for less node-hour"
               " loss; yield escalation/boost trades loss for sync time."
               "\nSynchronization stays perfect in every configuration.\n";
  return 0;
}

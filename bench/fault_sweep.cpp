// Fault sweep: coscheduling quality under a degraded inter-domain link.
//
// Sweeps the chaos dimensions the resilience layer models:
//   (a) link availability (per-RPC drop probability = 1 - availability)
//       across the HH/HY/YH/YY scheme grid, and
//   (b) injected RPC latency against a fixed protocol deadline.
// For each case we report the paper's sync-overhead metric next to the
// degraded-mode accounting: co-start capability retained, unknown-status
// decisions, unsynchronized starts, and fault-attributable forced releases.
// Every run also passes the post-run invariant checker; any violation fails
// the bench (nonzero exit), making this a chaos regression gate.
#include <chrono>
#include <iostream>
#include <mutex>

#include "common.h"
#include "workload/pairing.h"
#include "workload/synth.h"

using namespace cosched;
using namespace cosched::bench;

namespace {

struct SweepCase {
  std::string label;
  FaultPlan plan;
  SchemeCombo combo = kHH;
};

struct CaseAccum {
  RunningStats sync_minutes;      // mean of both domains' avg sync time
  RunningStats costart_fraction;  // groups co-started / groups total
  RunningStats held_node_hours;   // loss of capability (service units)
  RunningStats unknown_decisions;
  RunningStats unsync_starts;
  RunningStats degraded_releases;
  double wall_seconds = 0.0;
  std::uint64_t events = 0;
  std::size_t invariant_violations = 0;
  std::size_t incomplete = 0;
};

struct RunOutcome {
  double sync_minutes = 0.0;
  double costart_fraction = 1.0;
  double held_node_hours = 0.0;
  double unknown_decisions = 0.0;
  double unsync_starts = 0.0;
  double degraded_releases = 0.0;
  double wall_seconds = 0.0;
  std::uint64_t events = 0;
  std::size_t invariant_violations = 0;
  bool completed = false;
};

/// Two coupled 100-node domains (eureka model), ~2 simulated days, 20% of
/// jobs paired — small enough that the full grid runs in seconds at default
/// settings, faulty enough that every chaos dimension gets exercised.
RunOutcome run_one(const SweepCase& c, std::uint64_t seed) {
  SynthParams pa;
  pa.span = static_cast<Duration>(2 * kDay * scale());
  pa.offered_load = 0.7;
  pa.seed = 100 + seed;
  Trace a = generate_trace(eureka_model(), pa);
  pa.seed = 200 + seed;
  Trace b = generate_trace(eureka_model(), pa);
  for (auto& j : b.jobs()) j.id += 1000000;
  pair_by_proportion(a, b, 0.20, 11 + seed);

  auto specs = make_coupled_specs("alpha", 100, "beta", 100, c.combo);
  CoupledSim sim(specs, {a, b});
  FaultPlan plan = c.plan;
  plan.seed = 0x5eedf001ULL + seed;  // chaos varies with the workload seed
  sim.set_fault_plan_all(plan);

  const auto t0 = std::chrono::steady_clock::now();
  const SimResult r = sim.run(120 * kDay);
  const auto t1 = std::chrono::steady_clock::now();

  RunOutcome out;
  out.completed = r.completed;
  out.invariant_violations = r.invariants.violations.size();
  out.wall_seconds = std::chrono::duration<double>(t1 - t0).count();
  out.events = sim.engine().executed();
  for (const SystemMetrics& m : r.systems) {
    out.sync_minutes += m.avg_sync_minutes / static_cast<double>(r.systems.size());
    out.held_node_hours += m.held_node_hours;
    out.unknown_decisions += static_cast<double>(m.unknown_status_decisions);
    out.unsync_starts += static_cast<double>(m.unsync_starts);
    out.degraded_releases += static_cast<double>(m.degraded_forced_releases);
  }
  if (r.groups.groups_total > 0)
    out.costart_fraction = static_cast<double>(r.groups.groups_started_together) /
                           static_cast<double>(r.groups.groups_total);
  return out;
}

}  // namespace

int main() {
  print_header("Fault sweep",
               "sync overhead and loss of capability vs link degradation");

  std::vector<SweepCase> cases;
  // (a) Availability grid: drop probability = 1 - availability.
  for (const SchemeCombo& combo : kAllCombos) {
    for (double avail : {1.0, 0.9, 0.5, 0.0}) {
      SweepCase c;
      c.combo = combo;
      c.plan.drop_probability = 1.0 - avail;
      c.label = "avail=" + format_double(avail, 2) + "/" + combo.label;
      cases.push_back(std::move(c));
    }
  }
  // (b) Latency vs a 120 s protocol deadline (HY, the paper's recommended
  // production combo).  60 s fits; 90±60 s straddles; 180 s always times out.
  for (Duration latency : {Duration{60}, Duration{90}, Duration{180}}) {
    SweepCase c;
    c.combo = kHY;
    c.plan.latency_base = latency;
    c.plan.latency_jitter = latency == 90 ? 60 : 0;
    c.plan.rpc_deadline = 120;
    c.label = "latency=" + std::to_string(latency) + "s/deadline=120s/HY";
    cases.push_back(std::move(c));
  }

  const std::size_t n_runs = static_cast<std::size_t>(runs());
  std::vector<std::vector<RunOutcome>> outcomes(
      cases.size(), std::vector<RunOutcome>(n_runs));
  parallel_for(cases.size() * n_runs, [&](std::size_t i) {
    const std::size_t ci = i / n_runs;
    const std::uint64_t seed = i % n_runs;
    outcomes[ci][seed] = run_one(cases[ci], seed);
  });

  // Aggregate in deterministic (case, seed) order.
  std::vector<CaseAccum> accums(cases.size());
  for (std::size_t ci = 0; ci < cases.size(); ++ci) {
    for (const RunOutcome& o : outcomes[ci]) {
      CaseAccum& acc = accums[ci];
      acc.sync_minutes.add(o.sync_minutes);
      acc.costart_fraction.add(o.costart_fraction);
      acc.held_node_hours.add(o.held_node_hours);
      acc.unknown_decisions.add(o.unknown_decisions);
      acc.unsync_starts.add(o.unsync_starts);
      acc.degraded_releases.add(o.degraded_releases);
      acc.wall_seconds += o.wall_seconds;
      acc.events += o.events;
      acc.invariant_violations += o.invariant_violations;
      if (!o.completed) ++acc.incomplete;
    }
  }

  Table table({"case", "sync (min)", "co-start %", "held (nh)", "unknown",
               "unsync", "deg. releases"});
  BenchJsonFile json("fault_sweep");
  std::size_t total_violations = 0, total_incomplete = 0;
  for (std::size_t ci = 0; ci < cases.size(); ++ci) {
    const CaseAccum& acc = accums[ci];
    table.add_row({cases[ci].label, format_double(acc.sync_minutes.mean()),
                   format_double(100.0 * acc.costart_fraction.mean(), 1),
                   format_double(acc.held_node_hours.mean(), 1),
                   format_double(acc.unknown_decisions.mean(), 1),
                   format_double(acc.unsync_starts.mean(), 1),
                   format_double(acc.degraded_releases.mean(), 1)});
    json.add_case(
        cases[ci].label, acc.wall_seconds, acc.events,
        {{"sync_minutes", acc.sync_minutes.mean(), acc.sync_minutes.stddev()},
         {"costart_fraction", acc.costart_fraction.mean(),
          acc.costart_fraction.stddev()},
         {"held_node_hours", acc.held_node_hours.mean(),
          acc.held_node_hours.stddev()},
         {"unknown_status_decisions", acc.unknown_decisions.mean(),
          acc.unknown_decisions.stddev()},
         {"unsync_starts", acc.unsync_starts.mean(),
          acc.unsync_starts.stddev()},
         {"degraded_forced_releases", acc.degraded_releases.mean(),
          acc.degraded_releases.stddev()}});
    total_violations += acc.invariant_violations;
    total_incomplete += acc.incomplete;
  }

  table.print(std::cout);
  maybe_export_csv("fault_sweep", table);
  json.write();

  std::cout << "\nShape check: sync overhead and co-start capability fall as"
               "\n  availability drops; at avail=0 every pair start is"
               " unsynchronized\n  (pure §IV-C unknown rule) and held time"
               " collapses to ~0.\n";
  if (total_violations > 0 || total_incomplete > 0) {
    std::cerr << "FAULT SWEEP FAILED: " << total_violations
              << " invariant violations, " << total_incomplete
              << " incomplete runs\n";
    return 1;
  }
  return 0;
}

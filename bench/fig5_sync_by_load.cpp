// Figure 5: average paired-job synchronization time by Eureka load.
// X-axis groups: (eureka load, remote scheme); bars: local scheme H / Y.
// For the Intrepid panel the remote scheme is Eureka's, and vice versa.
#include <iostream>

#include "common.h"

using namespace cosched;
using namespace cosched::bench;

namespace {

SchemeCombo combo_for(bool intrepid_side, Scheme local, Scheme remote) {
  for (const SchemeCombo& c : kAllCombos) {
    const Scheme c_local = intrepid_side ? c.first : c.second;
    const Scheme c_remote = intrepid_side ? c.second : c.first;
    if (c_local == local && c_remote == remote) return c;
  }
  return kHH;
}

}  // namespace

int main() {
  print_header("Figure 5", "average paired-job synchronization time by load");

  // The panels below cover every combo at every load; declare them all and
  // let the harness run the cases in parallel.
  std::vector<SeriesSpec> wanted;
  for (double load : kEurekaLoads)
    for (const SchemeCombo& combo : kAllCombos)
      wanted.push_back({true, load, combo, true});
  prewarm_series(wanted);

  Table intrepid({"eureka load / remote scheme", "local=hold (min)",
                  "local=yield (min)"});
  Table eureka({"eureka load / remote scheme", "local=hold (min)",
                "local=yield (min)"});

  for (double load : kEurekaLoads) {
    for (Scheme remote : {Scheme::kHold, Scheme::kYield}) {
      const char r = remote == Scheme::kHold ? 'H' : 'Y';
      const Series ih =
          run_series(true, load, combo_for(true, Scheme::kHold, remote), true);
      const Series iy = run_series(
          true, load, combo_for(true, Scheme::kYield, remote), true);
      intrepid.add_row({format_double(load, 2) + "/" + r,
                        format_double(ih.intrepid_sync.mean()),
                        format_double(iy.intrepid_sync.mean())});
      const Series eh = run_series(
          true, load, combo_for(false, Scheme::kHold, remote), true);
      const Series ey = run_series(
          true, load, combo_for(false, Scheme::kYield, remote), true);
      eureka.add_row({format_double(load, 2) + "/" + r,
                      format_double(eh.eureka_sync.mean()),
                      format_double(ey.eureka_sync.mean())});
    }
  }

  std::cout << "\n(a) Intrepid avg. job synchronization time\n";
  intrepid.print(std::cout);
  maybe_export_csv("fig5_intrepid_sync", intrepid);
  std::cout << "\n(b) Eureka avg. job synchronization time\n";
  eureka.print(std::cout);
  maybe_export_csv("fig5_eureka_sync", eureka);
  export_bench_json("fig5");
  std::cout << "\nShape check (paper): sync time grows with Eureka load;"
               "\n  hold as the local scheme costs less sync time than yield"
               " under the same remote scheme and load.\n";
  return 0;
}

// Figure 10: service-unit loss by paired-job proportion (hold side).
#include <iostream>

#include "common.h"

using namespace cosched;
using namespace cosched::bench;

namespace {

SchemeCombo combo_for(bool intrepid_side, Scheme local, Scheme remote) {
  for (const SchemeCombo& c : kAllCombos) {
    const Scheme c_local = intrepid_side ? c.first : c.second;
    const Scheme c_remote = intrepid_side ? c.second : c.first;
    if (c_local == local && c_remote == remote) return c;
  }
  return kHH;
}

}  // namespace

int main() {
  print_header("Figure 10", "service-unit loss by paired-job proportion");

  std::vector<SeriesSpec> wanted;
  for (double prop : kPairedProportions)
    for (Scheme remote : {Scheme::kHold, Scheme::kYield}) {
      wanted.push_back(
          {false, prop, combo_for(true, Scheme::kHold, remote), true});
      wanted.push_back(
          {false, prop, combo_for(false, Scheme::kHold, remote), true});
    }
  prewarm_series(wanted);

  Table intrepid({"proportion / remote scheme", "node-hours lost",
                  "lost sys. util."});
  Table eureka({"proportion / remote scheme", "node-hours lost",
                "lost sys. util."});

  for (double prop : kPairedProportions) {
    for (Scheme remote : {Scheme::kHold, Scheme::kYield}) {
      const char r = remote == Scheme::kHold ? 'H' : 'Y';
      const Series si = run_series(
          false, prop, combo_for(true, Scheme::kHold, remote), true);
      intrepid.add_row(
          {format_percent(prop, 1) + "/" + r,
           format_count(static_cast<long long>(si.intrepid_loss_nh.mean())),
           format_percent(si.intrepid_loss_frac.mean())});
      const Series se = run_series(
          false, prop, combo_for(false, Scheme::kHold, remote), true);
      eureka.add_row(
          {format_percent(prop, 1) + "/" + r,
           format_count(static_cast<long long>(se.eureka_loss_nh.mean())),
           format_percent(se.eureka_loss_frac.mean())});
    }
  }

  std::cout << "\n(a) Intrepid loss of service unit\n";
  intrepid.print(std::cout);
  maybe_export_csv("fig10_intrepid_loss", intrepid);
  std::cout << "\n(b) Eureka loss of service unit\n";
  eureka.print(std::cout);
  maybe_export_csv("fig10_eureka_loss", eureka);
  export_bench_json("fig10");
  std::cout << "\nShape check (paper): loss increases with the paired"
               " proportion on both machines (0.7% -> 9.3% on Intrepid,"
               " 1% -> 21% on Eureka in the paper); acceptable below ~10-20%"
               " pairing, problematic at 33%.\n";
  return 0;
}

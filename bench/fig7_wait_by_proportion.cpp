// Figure 7: average waiting time by paired-job proportion
// {2.5, 5, 10, 20, 33}% with Eureka at ~0.5 load, schemes HH/HY/YH/YY.
#include <iostream>

#include "common.h"

using namespace cosched;
using namespace cosched::bench;

int main() {
  print_header("Figure 7", "average waiting times by paired-job proportion");

  std::vector<SeriesSpec> wanted;
  for (double prop : kPairedProportions) {
    wanted.push_back({false, prop, kHH, false});
    for (const SchemeCombo& combo : kAllCombos)
      wanted.push_back({false, prop, combo, true});
  }
  prewarm_series(wanted);

  Table intrepid({"proportion", "scheme", "avg wait (min)", "base (min)",
                  "difference"});
  Table eureka({"proportion", "scheme", "avg wait (min)", "base (min)",
                "difference"});

  // The base does not depend on the proportion (pairs ignored when
  // coscheduling is off), but recompute per proportion as the paper plots.
  for (double prop : kPairedProportions) {
    const Series base = run_series(/*by_load=*/false, prop, kHH, false);
    for (const SchemeCombo& combo : kAllCombos) {
      const Series s = run_series(false, prop, combo, true);
      intrepid.add_row({format_percent(prop, 1), combo.label,
                        format_double(s.intrepid_wait.mean()),
                        format_double(base.intrepid_wait.mean()),
                        format_double(s.intrepid_wait.mean() -
                                      base.intrepid_wait.mean())});
      eureka.add_row({format_percent(prop, 1), combo.label,
                      format_double(s.eureka_wait.mean()),
                      format_double(base.eureka_wait.mean()),
                      format_double(s.eureka_wait.mean() -
                                    base.eureka_wait.mean())});
    }
    intrepid.add_separator();
    eureka.add_separator();
  }

  std::cout << "\n(a) Intrepid avg. wait (minutes)\n";
  intrepid.print(std::cout);
  maybe_export_csv("fig7_intrepid_wait", intrepid);
  std::cout << "\n(b) Eureka avg. wait (minutes)\n";
  eureka.print(std::cout);
  maybe_export_csv("fig7_eureka_wait", eureka);
  export_bench_json("fig7");
  std::cout << "\nShape check (paper): extra wait grows with the paired"
               " proportion; modest up to 20%; at 33% the hold-based combos"
               " degrade markedly while yield-based stay near the 20% level.\n";
  return 0;
}

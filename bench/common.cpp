#include "common.h"

#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <mutex>
#include <sstream>
#include <thread>
#include <unordered_map>

#include "util/error.h"
#include "workload/pairing.h"
#include "workload/scaling.h"
#include "workload/synth.h"

namespace cosched::bench {

namespace {

constexpr std::size_t kIntrepidJobs = 9219;  // the paper's month of Intrepid
constexpr double kIntrepidLoad = 0.68;       // "high and stable"
constexpr Duration kSpan = 30 * kDay;
constexpr double kProximityTargetFraction = 0.075;  // paper: 5-10%

double env_double(const char* name, double fallback) {
  const char* v = std::getenv(name);
  if (!v) return fallback;
  char* end = nullptr;
  const double out = std::strtod(v, &end);
  return (end == v || out <= 0) ? fallback : out;
}

Trace make_intrepid(std::uint64_t seed) {
  SynthParams p;
  p.job_count = static_cast<std::size_t>(
      static_cast<double>(kIntrepidJobs) * scale());
  p.span = static_cast<Duration>(static_cast<double>(kSpan) * scale());
  p.offered_load = kIntrepidLoad;
  p.seed = seed;
  return generate_trace(intrepid_model(), p);
}

// -- series cache -------------------------------------------------------
//
// prewarm_series fills this; run_series serves from it (or computes and
// inserts serially on a miss); export_bench_json dumps it.  All access is
// from the bench's main thread — the parallel workers only touch their own
// result slots.

std::string spec_key(const SeriesSpec& s) {
  std::ostringstream o;
  o << s.by_load << '|' << s.x << '|' << s.combo.label << '|' << s.enabled
    << '|' << s.tweak.hold_release_period << '|' << s.tweak.max_hold_fraction
    << '|' << s.tweak.max_yield_before_hold << '|'
    << s.tweak.yield_priority_boost << '|' << s.tweak.yield_retry_period;
  return o.str();
}

struct CacheEntry {
  SeriesSpec spec;
  Series series;
};

std::vector<CacheEntry>& cache() {
  static std::vector<CacheEntry> v;
  return v;
}

std::unordered_map<std::string, std::size_t>& cache_index() {
  static std::unordered_map<std::string, std::size_t> m;
  return m;
}

struct CaseResult {
  CaseMetrics metrics;
  double paired_fraction = 0.0;
};

CaseResult compute_one(const SeriesSpec& spec, int run) {
  const auto seed = static_cast<std::uint64_t>(1000 * run + 1);
  const CoupledWorkload w = spec.by_load
                                ? make_load_workload(spec.x, seed)
                                : make_proportion_workload(spec.x, seed);
  return {run_case(w, spec.combo, spec.enabled, spec.tweak),
          w.paired_fraction};
}

}  // namespace

int runs() {
  const char* v = std::getenv("COSCHED_BENCH_RUNS");
  if (!v) return 3;
  const int n = std::atoi(v);
  return n > 0 ? n : 3;
}

double scale() { return env_double("COSCHED_BENCH_SCALE", 1.0); }

int hardware_cpus() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? static_cast<int>(hw) : 1;
}

int threads() {
  const char* v = std::getenv("COSCHED_BENCH_THREADS");
  if (v != nullptr) {
    const int n = std::atoi(v);
    if (n > 0) return n;
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? static_cast<int>(hw) : 1;
}

void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn) {
  const std::size_t workers =
      std::min<std::size_t>(static_cast<std::size_t>(threads()), n);
  if (workers <= 1) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  std::atomic<std::size_t> next{0};
  std::mutex err_mu;
  std::exception_ptr err;
  auto worker = [&] {
    for (;;) {
      const std::size_t i = next.fetch_add(1);
      if (i >= n) return;
      try {
        fn(i);
      } catch (...) {
        const std::lock_guard<std::mutex> lock(err_mu);
        if (!err) err = std::current_exception();
      }
    }
  };
  std::vector<std::thread> pool;
  pool.reserve(workers);
  for (std::size_t w = 0; w < workers; ++w) pool.emplace_back(worker);
  for (auto& t : pool) t.join();
  if (err) std::rethrow_exception(err);
}

CoupledWorkload make_load_workload(double eureka_load, std::uint64_t seed) {
  CoupledWorkload w;
  w.intrepid = make_intrepid(seed);

  // Eureka trace scaled to the requested offered load, spanning the same
  // window as the Intrepid trace (the paper packs months into one by
  // scaling interarrival times — generate_trace does exactly that).
  SynthParams p;
  p.span = w.intrepid.stats().span > 0 ? w.intrepid.stats().span
                                       : static_cast<Duration>(kSpan * scale());
  p.offered_load = eureka_load;
  p.seed = seed + 0x9e3779b9ULL;
  w.eureka = generate_trace(eureka_model(), p);
  for (auto& j : w.eureka.jobs()) j.id += 10000000;

  pair_by_submit_proximity(w.intrepid, w.eureka, 2 * kMinute);
  w.paired_fraction = thin_pairs(w.intrepid, w.eureka,
                                 kProximityTargetFraction, seed + 17);
  return w;
}

CoupledWorkload make_proportion_workload(double proportion,
                                         std::uint64_t seed) {
  CoupledWorkload w;
  w.intrepid = make_intrepid(seed);

  // §V-E: "a special workload that has the same number of jobs and is within
  // the same time span as the Intrepid trace", Eureka utilization ~0.5.
  // Holding job count, span, AND load fixed pins the mean per-job work, so
  // the runtime scale must be derived rather than taken from the default
  // Eureka model (otherwise the generator stretches the span instead).
  SynthParams p;
  p.job_count = w.intrepid.size();
  p.span = w.intrepid.stats().span;
  p.offered_load = 0.5;
  p.seed = seed + 0x51ed2701ULL;
  SystemModel special = eureka_model();
  {
    double mean_nodes = 0, total_w = 0;
    for (const auto& b : special.sizes) {
      mean_nodes += b.weight * static_cast<double>(b.nodes);
      total_w += b.weight;
    }
    mean_nodes /= total_w;
    const double target_mean_runtime =
        p.offered_load * static_cast<double>(special.capacity) *
        static_cast<double>(p.span) /
        (static_cast<double>(p.job_count) * mean_nodes);
    // Untruncated lognormal mean = exp(mu + sigma^2/2).
    special.runtime_log_mean =
        std::log(target_mean_runtime) -
        special.runtime_log_sigma * special.runtime_log_sigma / 2.0;
  }
  w.eureka = generate_trace(special, p);
  for (auto& j : w.eureka.jobs()) j.id += 10000000;

  const PairingResult r =
      pair_by_proportion(w.intrepid, w.eureka, proportion, seed + 23);
  w.paired_fraction = r.paired_fraction;
  return w;
}

CaseMetrics run_case(const CoupledWorkload& w, SchemeCombo combo,
                     bool enabled, const CoschedConfig& tweak) {
  auto specs = make_coupled_specs("intrepid", 40960, "eureka", 100, combo,
                                  enabled, tweak.hold_release_period);
  for (auto& s : specs) {
    s.policy = "wfp";
    s.cosched.max_hold_fraction = tweak.max_hold_fraction;
    s.cosched.max_yield_before_hold = tweak.max_yield_before_hold;
    s.cosched.yield_priority_boost = tweak.yield_priority_boost;
    s.cosched.yield_retry_period = tweak.yield_retry_period;
  }

  const auto t0 = std::chrono::steady_clock::now();
  CoupledSim sim(specs, {w.intrepid, w.eureka});
  const Time guard = 24 * 30 * kDay;  // two simulated years
  const SimResult r = sim.run(guard);
  const auto t1 = std::chrono::steady_clock::now();
  if (!r.completed)
    throw Error("bench case stalled (possible deadlock): combo=" +
                std::string(combo.label));

  CaseMetrics out;
  out.intrepid = r.systems[0];
  out.eureka = r.systems[1];
  out.groups = r.groups;
  out.completed = r.completed;
  out.wall_seconds = std::chrono::duration<double>(t1 - t0).count();
  out.events = sim.engine().executed();
  return out;
}

void Series::add(const CaseMetrics& m, double paired_frac) {
  intrepid_wait.add(m.intrepid.avg_wait_minutes);
  eureka_wait.add(m.eureka.avg_wait_minutes);
  intrepid_slow.add(m.intrepid.avg_slowdown);
  eureka_slow.add(m.eureka.avg_slowdown);
  intrepid_sync.add(m.intrepid.avg_sync_minutes);
  eureka_sync.add(m.eureka.avg_sync_minutes);
  intrepid_loss_nh.add(m.intrepid.held_node_hours);
  eureka_loss_nh.add(m.eureka.held_node_hours);
  intrepid_loss_frac.add(m.intrepid.held_fraction);
  eureka_loss_frac.add(m.eureka.held_fraction);
  paired_fraction.add(paired_frac);
  pairs_total += m.groups.groups_total;
  pairs_synced += m.groups.groups_started_together;
  sim_wall_seconds += m.wall_seconds;
  events += m.events;
}

std::string series_label(const SeriesSpec& s) {
  std::string label = s.by_load ? "load=" + format_double(s.x, 2)
                                : "prop=" + format_percent(s.x, 1);
  label += "/";
  label += s.combo.label;
  if (!s.enabled) label += "/base";
  // Distinguish ablation tweaks from the defaults compactly.
  const CoschedConfig def{};
  if (s.tweak.hold_release_period != def.hold_release_period)
    label += "/rel=" + std::to_string(s.tweak.hold_release_period) + "s";
  if (s.tweak.max_hold_fraction != def.max_hold_fraction)
    label += "/holdfrac=" + format_double(s.tweak.max_hold_fraction, 2);
  if (s.tweak.max_yield_before_hold != def.max_yield_before_hold)
    label += "/maxyield=" + std::to_string(s.tweak.max_yield_before_hold);
  if (s.tweak.yield_priority_boost != def.yield_priority_boost)
    label += "/boost=" + format_double(s.tweak.yield_priority_boost, 2);
  if (s.tweak.yield_retry_period != def.yield_retry_period)
    label += "/retry=" + std::to_string(s.tweak.yield_retry_period) + "s";
  return label;
}

void prewarm_series(const std::vector<SeriesSpec>& specs) {
  // Register (in declaration order) the specs not yet cached.
  std::vector<std::size_t> todo;  // cache indices awaiting computation
  for (const SeriesSpec& spec : specs) {
    const std::string key = spec_key(spec);
    if (cache_index().count(key)) continue;
    cache_index().emplace(key, cache().size());
    todo.push_back(cache().size());
    cache().push_back(CacheEntry{spec, Series{}});
  }
  if (todo.empty()) return;

  // Fan the (series x seed) grid out, then aggregate in seed order so the
  // result is identical to a serial run.
  const int per = runs();
  std::vector<CaseResult> results(todo.size() * static_cast<std::size_t>(per));
  parallel_for(results.size(), [&](std::size_t i) {
    const std::size_t si = i / static_cast<std::size_t>(per);
    const int run = static_cast<int>(i % static_cast<std::size_t>(per));
    results[i] = compute_one(cache()[todo[si]].spec, run);
  });
  for (std::size_t si = 0; si < todo.size(); ++si) {
    Series& s = cache()[todo[si]].series;
    for (int run = 0; run < per; ++run) {
      const CaseResult& r = results[si * static_cast<std::size_t>(per) +
                                    static_cast<std::size_t>(run)];
      s.add(r.metrics, r.paired_fraction);
    }
  }
}

Series run_series(bool by_load, double x, SchemeCombo combo, bool enabled,
                  const CoschedConfig& tweak) {
  SeriesSpec spec;
  spec.by_load = by_load;
  spec.x = x;
  spec.combo = combo;
  spec.enabled = enabled;
  spec.tweak = tweak;
  const std::string key = spec_key(spec);
  if (const auto it = cache_index().find(key); it != cache_index().end())
    return cache()[it->second].series;

  Series s;
  for (int run = 0; run < runs(); ++run) {
    const CaseResult r = compute_one(spec, run);
    s.add(r.metrics, r.paired_fraction);
  }
  // Cache the serial computation too so export_bench_json covers it.
  cache_index().emplace(key, cache().size());
  cache().push_back(CacheEntry{spec, s});
  return s;
}

// -- JSON emission ------------------------------------------------------

namespace {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}

std::string json_num(double v) {
  if (!std::isfinite(v)) return "0";
  std::ostringstream o;
  o << std::setprecision(12) << v;
  return o.str();
}

}  // namespace

BenchJsonFile::BenchJsonFile(std::string bench_name)
    : name_(std::move(bench_name)) {}

void BenchJsonFile::add_case(const std::string& case_name, double wall_seconds,
                             std::uint64_t events,
                             std::vector<Metric> metrics) {
  cases_.push_back(Case{case_name, wall_seconds, events, std::move(metrics)});
}

void BenchJsonFile::write() {
  if (written_) return;
  written_ = true;
  const char* dir = std::getenv("COSCHED_BENCH_JSON_DIR");
  const std::string path = std::string(dir && *dir ? dir : ".") + "/BENCH_" +
                           name_ + ".json";
  std::ofstream out(path);
  if (!out) {
    std::cerr << "warning: cannot write " << path << "\n";
    return;
  }
  double wall_total = 0;
  for (const Case& c : cases_) wall_total += c.wall_seconds;
  out << "{\n"
      << "  \"bench\": \"" << json_escape(name_) << "\",\n"
      << "  \"runs\": " << runs() << ",\n"
      << "  \"scale\": " << json_num(scale()) << ",\n"
      << "  \"threads\": " << threads() << ",\n"
      << "  \"machine\": {\"cpus\": " << hardware_cpus()
      << ", \"threads_used\": " << threads() << "},\n"
      << "  \"wall_seconds_total\": " << json_num(wall_total) << ",\n"
      << "  \"cases\": [\n";
  for (std::size_t i = 0; i < cases_.size(); ++i) {
    const Case& c = cases_[i];
    const double rate = c.wall_seconds > 0
                            ? static_cast<double>(c.events) / c.wall_seconds
                            : 0.0;
    out << "    {\"case\": \"" << json_escape(c.name) << "\", "
        << "\"runs\": " << runs() << ", "
        << "\"wall_seconds\": " << json_num(c.wall_seconds) << ", "
        << "\"events\": " << c.events << ", "
        << "\"events_per_sec\": " << json_num(rate) << ", "
        << "\"metrics\": {";
    for (std::size_t m = 0; m < c.metrics.size(); ++m) {
      const Metric& mt = c.metrics[m];
      out << (m ? ", " : "") << "\"" << json_escape(mt.name)
          << "\": {\"mean\": " << json_num(mt.mean)
          << ", \"stddev\": " << json_num(mt.stddev) << "}";
    }
    out << "}}" << (i + 1 < cases_.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
  std::cout << "(machine-readable results: " << path << ")\n";
}

BenchJsonFile::~BenchJsonFile() { write(); }

void export_bench_json(const std::string& name) {
  BenchJsonFile json(name);
  for (const CacheEntry& e : cache()) {
    const Series& s = e.series;
    auto metric = [](const char* n, const RunningStats& st) {
      return BenchJsonFile::Metric{n, st.mean(), st.stddev()};
    };
    json.add_case(
        series_label(e.spec), s.sim_wall_seconds, s.events,
        {metric("intrepid_wait_min", s.intrepid_wait),
         metric("eureka_wait_min", s.eureka_wait),
         metric("intrepid_slowdown", s.intrepid_slow),
         metric("eureka_slowdown", s.eureka_slow),
         metric("intrepid_sync_min", s.intrepid_sync),
         metric("eureka_sync_min", s.eureka_sync),
         metric("intrepid_loss_node_hours", s.intrepid_loss_nh),
         metric("eureka_loss_node_hours", s.eureka_loss_nh),
         metric("intrepid_loss_fraction", s.intrepid_loss_frac),
         metric("eureka_loss_fraction", s.eureka_loss_frac),
         metric("paired_fraction", s.paired_fraction)});
  }
  json.write();
}

std::unique_ptr<CsvWriter> bench_csv(const std::string& name) {
  const char* dir = std::getenv("COSCHED_BENCH_CSV_DIR");
  if (dir == nullptr || *dir == '\0') return nullptr;
  return std::make_unique<CsvWriter>(std::string(dir) + "/" + name + ".csv");
}

void maybe_export_csv(const std::string& name, const Table& table) {
  if (auto csv = bench_csv(name)) {
    table.write_csv(*csv);
    std::cout << "(series exported to $COSCHED_BENCH_CSV_DIR/" << name
              << ".csv)\n";
  }
}

void print_header(const std::string& figure, const std::string& what) {
  std::cout << "==============================================================\n"
            << figure << " — " << what << "\n"
            << "Tang et al., \"Job Coscheduling on Coupled High-End Computing"
               " Systems\" (ICPP'11)\n"
            << "runs/case=" << runs() << " (paper: 10), scale=" << scale()
            << ", threads=" << threads()
            << ", schedulers: WFP + EASY backfill, hold release = 20 min\n"
            << "==============================================================\n";
}

}  // namespace cosched::bench

#include "common.h"

#include <cmath>
#include <cstdlib>
#include <iostream>

#include "util/error.h"
#include "workload/pairing.h"
#include "workload/scaling.h"
#include "workload/synth.h"

namespace cosched::bench {

namespace {

constexpr std::size_t kIntrepidJobs = 9219;  // the paper's month of Intrepid
constexpr double kIntrepidLoad = 0.68;       // "high and stable"
constexpr Duration kSpan = 30 * kDay;
constexpr double kProximityTargetFraction = 0.075;  // paper: 5-10%

double env_double(const char* name, double fallback) {
  const char* v = std::getenv(name);
  if (!v) return fallback;
  char* end = nullptr;
  const double out = std::strtod(v, &end);
  return (end == v || out <= 0) ? fallback : out;
}

Trace make_intrepid(std::uint64_t seed) {
  SynthParams p;
  p.job_count = static_cast<std::size_t>(
      static_cast<double>(kIntrepidJobs) * scale());
  p.span = static_cast<Duration>(static_cast<double>(kSpan) * scale());
  p.offered_load = kIntrepidLoad;
  p.seed = seed;
  return generate_trace(intrepid_model(), p);
}

}  // namespace

int runs() {
  const char* v = std::getenv("COSCHED_BENCH_RUNS");
  if (!v) return 3;
  const int n = std::atoi(v);
  return n > 0 ? n : 3;
}

double scale() { return env_double("COSCHED_BENCH_SCALE", 1.0); }

CoupledWorkload make_load_workload(double eureka_load, std::uint64_t seed) {
  CoupledWorkload w;
  w.intrepid = make_intrepid(seed);

  // Eureka trace scaled to the requested offered load, spanning the same
  // window as the Intrepid trace (the paper packs months into one by
  // scaling interarrival times — generate_trace does exactly that).
  SynthParams p;
  p.span = w.intrepid.stats().span > 0 ? w.intrepid.stats().span
                                       : static_cast<Duration>(kSpan * scale());
  p.offered_load = eureka_load;
  p.seed = seed + 0x9e3779b9ULL;
  w.eureka = generate_trace(eureka_model(), p);
  for (auto& j : w.eureka.jobs()) j.id += 10000000;

  pair_by_submit_proximity(w.intrepid, w.eureka, 2 * kMinute);
  w.paired_fraction = thin_pairs(w.intrepid, w.eureka,
                                 kProximityTargetFraction, seed + 17);
  return w;
}

CoupledWorkload make_proportion_workload(double proportion,
                                         std::uint64_t seed) {
  CoupledWorkload w;
  w.intrepid = make_intrepid(seed);

  // §V-E: "a special workload that has the same number of jobs and is within
  // the same time span as the Intrepid trace", Eureka utilization ~0.5.
  // Holding job count, span, AND load fixed pins the mean per-job work, so
  // the runtime scale must be derived rather than taken from the default
  // Eureka model (otherwise the generator stretches the span instead).
  SynthParams p;
  p.job_count = w.intrepid.size();
  p.span = w.intrepid.stats().span;
  p.offered_load = 0.5;
  p.seed = seed + 0x51ed2701ULL;
  SystemModel special = eureka_model();
  {
    double mean_nodes = 0, total_w = 0;
    for (const auto& b : special.sizes) {
      mean_nodes += b.weight * static_cast<double>(b.nodes);
      total_w += b.weight;
    }
    mean_nodes /= total_w;
    const double target_mean_runtime =
        p.offered_load * static_cast<double>(special.capacity) *
        static_cast<double>(p.span) /
        (static_cast<double>(p.job_count) * mean_nodes);
    // Untruncated lognormal mean = exp(mu + sigma^2/2).
    special.runtime_log_mean =
        std::log(target_mean_runtime) -
        special.runtime_log_sigma * special.runtime_log_sigma / 2.0;
  }
  w.eureka = generate_trace(special, p);
  for (auto& j : w.eureka.jobs()) j.id += 10000000;

  const PairingResult r =
      pair_by_proportion(w.intrepid, w.eureka, proportion, seed + 23);
  w.paired_fraction = r.paired_fraction;
  return w;
}

CaseMetrics run_case(const CoupledWorkload& w, SchemeCombo combo,
                     bool enabled, const CoschedConfig& tweak) {
  auto specs = make_coupled_specs("intrepid", 40960, "eureka", 100, combo,
                                  enabled, tweak.hold_release_period);
  for (auto& s : specs) {
    s.policy = "wfp";
    s.cosched.max_hold_fraction = tweak.max_hold_fraction;
    s.cosched.max_yield_before_hold = tweak.max_yield_before_hold;
    s.cosched.yield_priority_boost = tweak.yield_priority_boost;
    s.cosched.yield_retry_period = tweak.yield_retry_period;
  }

  CoupledSim sim(specs, {w.intrepid, w.eureka});
  const Time guard = 24 * 30 * kDay;  // two simulated years
  const SimResult r = sim.run(guard);
  if (!r.completed)
    throw Error("bench case stalled (possible deadlock): combo=" +
                std::string(combo.label));

  CaseMetrics out;
  out.intrepid = r.systems[0];
  out.eureka = r.systems[1];
  out.pairs = r.pairs;
  out.completed = r.completed;
  return out;
}

void Series::add(const CaseMetrics& m, double paired_frac) {
  intrepid_wait.add(m.intrepid.avg_wait_minutes);
  eureka_wait.add(m.eureka.avg_wait_minutes);
  intrepid_slow.add(m.intrepid.avg_slowdown);
  eureka_slow.add(m.eureka.avg_slowdown);
  intrepid_sync.add(m.intrepid.avg_sync_minutes);
  eureka_sync.add(m.eureka.avg_sync_minutes);
  intrepid_loss_nh.add(m.intrepid.held_node_hours);
  eureka_loss_nh.add(m.eureka.held_node_hours);
  intrepid_loss_frac.add(m.intrepid.held_fraction);
  eureka_loss_frac.add(m.eureka.held_fraction);
  paired_fraction.add(paired_frac);
  pairs_total += m.pairs.groups_total;
  pairs_synced += m.pairs.groups_started_together;
}

Series run_series(bool by_load, double x, SchemeCombo combo, bool enabled,
                  const CoschedConfig& tweak) {
  Series s;
  for (int run = 0; run < runs(); ++run) {
    const auto seed = static_cast<std::uint64_t>(1000 * run + 1);
    const CoupledWorkload w =
        by_load ? make_load_workload(x, seed) : make_proportion_workload(x, seed);
    s.add(run_case(w, combo, enabled, tweak), w.paired_fraction);
  }
  return s;
}

std::unique_ptr<CsvWriter> bench_csv(const std::string& name) {
  const char* dir = std::getenv("COSCHED_BENCH_CSV_DIR");
  if (dir == nullptr || *dir == '\0') return nullptr;
  return std::make_unique<CsvWriter>(std::string(dir) + "/" + name + ".csv");
}

void maybe_export_csv(const std::string& name, const Table& table) {
  if (auto csv = bench_csv(name)) {
    table.write_csv(*csv);
    std::cout << "(series exported to $COSCHED_BENCH_CSV_DIR/" << name
              << ".csv)\n";
  }
}

void print_header(const std::string& figure, const std::string& what) {
  std::cout << "==============================================================\n"
            << figure << " — " << what << "\n"
            << "Tang et al., \"Job Coscheduling on Coupled High-End Computing"
               " Systems\" (ICPP'11)\n"
            << "runs/case=" << runs() << " (paper: 10), scale=" << scale()
            << ", schedulers: WFP + EASY backfill, hold release = 20 min\n"
            << "==============================================================\n";
}

}  // namespace cosched::bench

// Figure 9: paired-job average synchronization time by paired-job
// proportion, split by (proportion, remote scheme) with local H/Y bars.
#include <iostream>

#include "common.h"

using namespace cosched;
using namespace cosched::bench;

namespace {

SchemeCombo combo_for(bool intrepid_side, Scheme local, Scheme remote) {
  for (const SchemeCombo& c : kAllCombos) {
    const Scheme c_local = intrepid_side ? c.first : c.second;
    const Scheme c_remote = intrepid_side ? c.second : c.first;
    if (c_local == local && c_remote == remote) return c;
  }
  return kHH;
}

}  // namespace

int main() {
  print_header("Figure 9",
               "paired-job average synchronization time by proportion");

  std::vector<SeriesSpec> wanted;
  for (double prop : kPairedProportions)
    for (const SchemeCombo& combo : kAllCombos)
      wanted.push_back({false, prop, combo, true});
  prewarm_series(wanted);

  Table intrepid({"proportion / remote scheme", "local=hold (min)",
                  "local=yield (min)"});
  Table eureka({"proportion / remote scheme", "local=hold (min)",
                "local=yield (min)"});

  for (double prop : kPairedProportions) {
    for (Scheme remote : {Scheme::kHold, Scheme::kYield}) {
      const char r = remote == Scheme::kHold ? 'H' : 'Y';
      const Series ih = run_series(
          false, prop, combo_for(true, Scheme::kHold, remote), true);
      const Series iy = run_series(
          false, prop, combo_for(true, Scheme::kYield, remote), true);
      intrepid.add_row({format_percent(prop, 1) + "/" + r,
                        format_double(ih.intrepid_sync.mean()),
                        format_double(iy.intrepid_sync.mean())});
      const Series eh = run_series(
          false, prop, combo_for(false, Scheme::kHold, remote), true);
      const Series ey = run_series(
          false, prop, combo_for(false, Scheme::kYield, remote), true);
      eureka.add_row({format_percent(prop, 1) + "/" + r,
                      format_double(eh.eureka_sync.mean()),
                      format_double(ey.eureka_sync.mean())});
    }
  }

  std::cout << "\n(a) Intrepid avg. job synchronization time\n";
  intrepid.print(std::cout);
  maybe_export_csv("fig9_intrepid_sync", intrepid);
  std::cout << "\n(b) Eureka avg. job synchronization time\n";
  eureka.print(std::cout);
  maybe_export_csv("fig9_eureka_sync", eureka);
  export_bench_json("fig9");
  std::cout << "\nShape check (paper): sync time is less sensitive to the"
               " proportion than to the load (narrow range across"
               " proportions); local hold costs less sync time than local"
               " yield.\n";
  return 0;
}

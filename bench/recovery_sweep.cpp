// Recovery sweep: kill-anywhere crash/replay gate + MTTR figures.
//
// For every scheme combo (HH/HY/YH/YY) x compaction setting, the harness
// first runs an uncrashed journaled baseline, then re-runs the identical
// workload and crashes one domain in-process at seeded points spread across
// the baseline's committed journal (alternating which domain dies).  Each
// crashed run must replay back to the *exact* baseline outcome:
//   * run completes and the invariant checker is clean,
//   * the per-job (start, end, yields, forced releases) fingerprint and the
//     simulation end time equal the baseline's.
// Any divergence fails the bench (nonzero exit), making this the
// crash-consistency regression gate next to the figure harnesses.  The
// reported metrics are the recovery costs: MTTR (wall-clock wipe+replay
// time) and replay throughput in records/s and MB/s.
#include <chrono>
#include <cstdint>
#include <iostream>

#include "common.h"
#include "workload/pairing.h"
#include "workload/synth.h"

using namespace cosched;
using namespace cosched::bench;

namespace {

/// Crash points as fractions of the baseline's final committed sequence
/// number; odd indices kill the other domain.
constexpr double kCrashFractions[] = {0.20, 0.50, 0.85};

struct SweepCase {
  std::string label;
  SchemeCombo combo = kHH;
  std::uint64_t compact_every = 0;  ///< 0 = never compact (pure WAL replay)
};

/// Everything one (case, seed) unit produces: the baseline plus one crashed
/// run per fraction, already checked against each other.
struct UnitOutcome {
  RunningStats mttr_ms;
  RunningStats replay_records;
  RunningStats records_per_sec;
  RunningStats mb_per_sec;
  RunningStats journal_kb;  ///< intact bytes scanned at recovery
  double wall_seconds = 0.0;
  std::uint64_t events = 0;
  std::size_t crashes = 0;
  std::size_t fingerprint_mismatches = 0;
  std::size_t invariant_violations = 0;
  std::size_t incomplete = 0;
  std::size_t recovery_missing = 0;  ///< trigger never fired
};

/// FNV-1a over the sorted per-job outcome tuples of both domains — the same
/// fingerprint tests/test_recovery.cpp pins, so the bench and the unit
/// suite gate on one definition of "identical result".
std::uint64_t fingerprint(CoupledSim& sim) {
  struct Rec {
    JobId id;
    Time start, end;
    int yields, releases;
  };
  std::vector<Rec> recs;
  for (std::size_t d = 0; d < sim.size(); ++d) {
    sim.cluster(d).scheduler().for_each_job(
        [&](JobId id, const RuntimeJob& j) {
          recs.push_back(
              Rec{id, j.start, j.end, j.yield_count, j.forced_releases});
        });
  }
  std::sort(recs.begin(), recs.end(),
            [](const Rec& a, const Rec& b) { return a.id < b.id; });
  std::uint64_t h = 1469598103934665603ULL;
  auto mix = [&h](std::uint64_t v) {
    h ^= v;
    h *= 1099511628211ULL;
  };
  for (const Rec& r : recs) {
    mix(static_cast<std::uint64_t>(r.id));
    mix(static_cast<std::uint64_t>(r.start));
    mix(static_cast<std::uint64_t>(r.end));
    mix(static_cast<std::uint64_t>(r.yields));
    mix(static_cast<std::uint64_t>(r.releases));
  }
  return h;
}

struct Workload {
  std::vector<DomainSpec> specs;
  std::vector<Trace> traces;
};

/// Two coupled 100-node domains, ~2 simulated days, 20% paired — identical
/// generation for the baseline and every crashed re-run of a (case, seed).
Workload make_workload(SchemeCombo combo, std::uint64_t seed) {
  SynthParams pa;
  pa.span = static_cast<Duration>(2 * kDay * scale());
  pa.offered_load = 0.7;
  pa.seed = 100 + seed;
  Trace a = generate_trace(eureka_model(), pa);
  pa.seed = 200 + seed;
  Trace b = generate_trace(eureka_model(), pa);
  for (auto& j : b.jobs()) j.id += 1000000;
  pair_by_proportion(a, b, 0.20, 11 + seed);
  Workload w;
  w.specs = make_coupled_specs("alpha", 100, "beta", 100, combo);
  w.traces = {std::move(a), std::move(b)};
  return w;
}

UnitOutcome run_unit(const SweepCase& c, std::uint64_t seed) {
  UnitOutcome out;
  const auto t0 = std::chrono::steady_clock::now();

  // Uncrashed baseline: the ground truth every crashed run must replay to.
  const Workload w = make_workload(c.combo, seed);
  std::uint64_t base_fp = 0;
  Time base_end = 0;
  std::uint64_t base_seq[2] = {0, 0};
  {
    CoupledSim sim(w.specs, w.traces);
    sim.enable_journaling(c.compact_every);
    const SimResult r = sim.run(120 * kDay);
    out.events += sim.engine().executed();
    if (!r.completed) ++out.incomplete;
    out.invariant_violations += r.invariants.violations.size();
    base_fp = fingerprint(sim);
    base_end = r.end_time;
    base_seq[0] = sim.journal(0).last_committed_seq();
    base_seq[1] = sim.journal(1).last_committed_seq();
  }

  for (std::size_t fi = 0; fi < std::size(kCrashFractions); ++fi) {
    const std::size_t domain = fi % 2;
    const std::uint64_t at_seq = std::max<std::uint64_t>(
        1, static_cast<std::uint64_t>(kCrashFractions[fi] *
                                      static_cast<double>(base_seq[domain])));
    CoupledSim sim(w.specs, w.traces);
    sim.enable_journaling(c.compact_every);
    sim.schedule_crash_recovery(domain, at_seq);
    const SimResult r = sim.run(120 * kDay);
    out.events += sim.engine().executed();
    ++out.crashes;
    if (!r.completed) ++out.incomplete;
    out.invariant_violations += r.invariants.violations.size();
    if (fingerprint(sim) != base_fp || r.end_time != base_end)
      ++out.fingerprint_mismatches;
    const auto& rec = sim.last_recovery(domain);
    if (!rec.has_value()) {
      ++out.recovery_missing;
      continue;
    }
    out.mttr_ms.add(rec->replay_seconds * 1e3);
    out.replay_records.add(static_cast<double>(rec->records_replayed));
    out.journal_kb.add(static_cast<double>(rec->bytes_scanned) / 1024.0);
    if (rec->replay_seconds > 0.0) {
      out.records_per_sec.add(static_cast<double>(rec->records_replayed) /
                              rec->replay_seconds);
      out.mb_per_sec.add(static_cast<double>(rec->bytes_scanned) /
                         (1024.0 * 1024.0) / rec->replay_seconds);
    }
  }

  const auto t1 = std::chrono::steady_clock::now();
  out.wall_seconds = std::chrono::duration<double>(t1 - t0).count();
  return out;
}

}  // namespace

int main() {
  print_header("Recovery sweep",
               "kill-anywhere crash/replay equivalence gate + MTTR");

  std::vector<SweepCase> cases;
  for (const SchemeCombo& combo : kAllCombos) {
    for (std::uint64_t compact : {std::uint64_t{0}, std::uint64_t{128}}) {
      SweepCase c;
      c.combo = combo;
      c.compact_every = compact;
      c.label = std::string(combo.label) + "/" +
                (compact == 0 ? "wal-only"
                              : "compact=" + std::to_string(compact));
      cases.push_back(std::move(c));
    }
  }

  const std::size_t n_runs = static_cast<std::size_t>(runs());
  std::vector<std::vector<UnitOutcome>> outcomes(
      cases.size(), std::vector<UnitOutcome>(n_runs));
  parallel_for(cases.size() * n_runs, [&](std::size_t i) {
    const std::size_t ci = i / n_runs;
    const std::uint64_t seed = i % n_runs;
    outcomes[ci][seed] = run_unit(cases[ci], seed);
  });

  Table table({"case", "crashes", "mttr (ms)", "replayed", "records/s",
               "MB/s", "journal (KB)"});
  BenchJsonFile json("recovery");
  std::size_t total_crashes = 0, total_mismatches = 0, total_violations = 0;
  std::size_t total_incomplete = 0, total_missing = 0;
  for (std::size_t ci = 0; ci < cases.size(); ++ci) {
    // Merge the seeds in deterministic order.
    UnitOutcome acc;
    for (const UnitOutcome& o : outcomes[ci]) {
      acc.mttr_ms.merge(o.mttr_ms);
      acc.replay_records.merge(o.replay_records);
      acc.records_per_sec.merge(o.records_per_sec);
      acc.mb_per_sec.merge(o.mb_per_sec);
      acc.journal_kb.merge(o.journal_kb);
      acc.wall_seconds += o.wall_seconds;
      acc.events += o.events;
      acc.crashes += o.crashes;
      acc.fingerprint_mismatches += o.fingerprint_mismatches;
      acc.invariant_violations += o.invariant_violations;
      acc.incomplete += o.incomplete;
      acc.recovery_missing += o.recovery_missing;
    }
    table.add_row({cases[ci].label, std::to_string(acc.crashes),
                   format_double(acc.mttr_ms.mean(), 3),
                   format_double(acc.replay_records.mean(), 1),
                   format_double(acc.records_per_sec.mean(), 0),
                   format_double(acc.mb_per_sec.mean(), 1),
                   format_double(acc.journal_kb.mean(), 1)});
    json.add_case(
        cases[ci].label, acc.wall_seconds, acc.events,
        {{"mttr_ms", acc.mttr_ms.mean(), acc.mttr_ms.stddev()},
         {"replay_records", acc.replay_records.mean(),
          acc.replay_records.stddev()},
         {"replay_records_per_sec", acc.records_per_sec.mean(),
          acc.records_per_sec.stddev()},
         {"replay_mb_per_sec", acc.mb_per_sec.mean(), acc.mb_per_sec.stddev()},
         {"journal_kb", acc.journal_kb.mean(), acc.journal_kb.stddev()},
         {"crashes", static_cast<double>(acc.crashes), 0.0},
         {"fingerprint_mismatches",
          static_cast<double>(acc.fingerprint_mismatches), 0.0}});
    total_crashes += acc.crashes;
    total_mismatches += acc.fingerprint_mismatches;
    total_violations += acc.invariant_violations;
    total_incomplete += acc.incomplete;
    total_missing += acc.recovery_missing;
  }

  table.print(std::cout);
  maybe_export_csv("recovery_sweep", table);
  json.write();

  std::cout << "\nShape check: compaction caps replayed-record counts (the"
               "\n  snapshot swallows the prefix) at a slightly higher MB/s;"
               "\n  MTTR stays in the low milliseconds either way.\n"
            << "Crashes survived: " << total_crashes << "\n";
  if (total_mismatches > 0 || total_violations > 0 || total_incomplete > 0 ||
      total_missing > 0) {
    std::cerr << "RECOVERY SWEEP FAILED: " << total_mismatches
              << " fingerprint mismatches, " << total_violations
              << " invariant violations, " << total_incomplete
              << " incomplete runs, " << total_missing
              << " recoveries that never triggered\n";
    return 1;
  }
  return 0;
}

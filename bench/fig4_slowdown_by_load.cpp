// Figure 4: average slowdown (Intrepid and Eureka) by Eureka system load,
// schemes HH/HY/YH/YY vs the no-coscheduling base.
#include <iostream>

#include "common.h"

using namespace cosched;
using namespace cosched::bench;

int main() {
  print_header("Figure 4",
               "scheduling performance (avg. slowdown) by Eureka load");

  std::vector<SeriesSpec> wanted;
  for (double load : kEurekaLoads) {
    wanted.push_back({true, load, kHH, false});
    for (const SchemeCombo& combo : kAllCombos)
      wanted.push_back({true, load, combo, true});
  }
  prewarm_series(wanted);

  Table intrepid({"eureka load", "scheme", "avg slowdown", "base",
                  "difference"});
  Table eureka({"eureka load", "scheme", "avg slowdown", "base",
                "difference"});

  for (double load : kEurekaLoads) {
    const Series base = run_series(true, load, kHH, /*enabled=*/false);
    for (const SchemeCombo& combo : kAllCombos) {
      const Series s = run_series(true, load, combo, true);
      intrepid.add_row({format_double(load, 2), combo.label,
                        format_double(s.intrepid_slow.mean()),
                        format_double(base.intrepid_slow.mean()),
                        format_double(s.intrepid_slow.mean() -
                                      base.intrepid_slow.mean())});
      eureka.add_row({format_double(load, 2), combo.label,
                      format_double(s.eureka_slow.mean()),
                      format_double(base.eureka_slow.mean()),
                      format_double(s.eureka_slow.mean() -
                                    base.eureka_slow.mean())});
    }
    intrepid.add_separator();
    eureka.add_separator();
  }

  std::cout << "\n(a) Intrepid avg. slowdown\n";
  intrepid.print(std::cout);
  maybe_export_csv("fig4_intrepid_slowdown", intrepid);
  std::cout << "\n(b) Eureka avg. slowdown\n";
  eureka.print(std::cout);
  maybe_export_csv("fig4_eureka_slowdown", eureka);
  export_bench_json("fig4");
  std::cout << "\nShape check (paper): slowdown trend mirrors waiting time;"
               "\n  only the high Eureka load shows a notable Intrepid"
               " increase; Eureka base slowdown itself grows with load.\n";
  return 0;
}

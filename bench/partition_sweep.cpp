// Partition sweep: the liveness layer under network partitions.
//
// Sweeps partition *shape* — none, symmetric, one-way, reply-loss, each
// healing or permanent — against the HH/HY/YH/YY scheme grid, with the
// liveness layer (heartbeats + phi-accrual detector + leased holds) enabled
// everywhere.  Each (shape, combo, seed) run draws its own partition
// schedule (onset/duration) from the seed, so the sweep covers well over a
// hundred distinct seeded schedules, including asymmetric partitions and
// heal-after-partition reconciliation.
//
// Reported per case:
//   * MTTR-to-unsync-start: minutes from partition onset until the first
//     blocked job gave up on its mate and started unsynchronized — the
//     liveness layer's repair latency.
//   * co-start capability retained, unsynchronized starts, lease
//     grant/expiry traffic, suspected-status decisions, and stale-fence
//     rejections.
// Every run passes the post-run invariant checker (which now includes
// lease-expiry-respected and no-start-with-stale-fence); any violation or
// stalled run fails the bench with a nonzero exit, making this the
// partition-chaos regression gate.
#include <algorithm>
#include <chrono>
#include <iostream>

#include "common.h"
#include "util/rng.h"
#include "workload/pairing.h"
#include "workload/synth.h"

using namespace cosched;
using namespace cosched::bench;

namespace {

enum class Shape {
  kNone,          // liveness on, healthy network (baseline)
  kTwoWayHeal,    // symmetric partition that heals
  kTwoWayPerm,    // symmetric partition for the rest of the run
  kOneWayHeal,    // asymmetric: A->B lost, B->A fine; heals
  kOneWayPerm,    // asymmetric, permanent
  kReplyHeal,     // B executes A's calls but every reply is lost; heals
};

const char* shape_label(Shape s) {
  switch (s) {
    case Shape::kNone: return "none";
    case Shape::kTwoWayHeal: return "2way-heal";
    case Shape::kTwoWayPerm: return "2way-perm";
    case Shape::kOneWayHeal: return "1way-heal";
    case Shape::kOneWayPerm: return "1way-perm";
    case Shape::kReplyHeal: return "reply-heal";
  }
  return "?";
}

struct SweepCase {
  Shape shape = Shape::kNone;
  SchemeCombo combo = kHH;
  std::string label;
};

struct RunOutcome {
  double mttr_minutes = -1.0;  // <0 = no unsync start after onset
  double costart_fraction = 1.0;
  double unsync_starts = 0.0;
  double lease_grants = 0.0;
  double lease_expiries = 0.0;
  double suspected_decisions = 0.0;
  double stale_fence_rejections = 0.0;
  double wall_seconds = 0.0;
  std::uint64_t events = 0;
  std::size_t invariant_violations = 0;
  bool completed = false;
};

struct CaseAccum {
  RunningStats mttr_minutes;
  RunningStats costart_fraction;
  RunningStats unsync_starts;
  RunningStats lease_grants;
  RunningStats lease_expiries;
  RunningStats suspected_decisions;
  RunningStats stale_fence_rejections;
  double wall_seconds = 0.0;
  std::uint64_t events = 0;
  std::size_t invariant_violations = 0;
  std::size_t incomplete = 0;
};

/// Two coupled 100-node domains, ~2 simulated days, 20% paired — the same
/// scale as the fault sweep, small enough that the full grid runs in
/// seconds yet busy enough that every partition lands on active holds.
RunOutcome run_one(const SweepCase& c, std::uint64_t seed) {
  SynthParams pa;
  pa.span = static_cast<Duration>(2 * kDay * scale());
  pa.offered_load = 0.7;
  pa.seed = 300 + seed;
  Trace a = generate_trace(eureka_model(), pa);
  pa.seed = 400 + seed;
  Trace b = generate_trace(eureka_model(), pa);
  for (auto& j : b.jobs()) j.id += 1000000;
  pair_by_proportion(a, b, 0.20, 17 + seed);

  auto specs = make_coupled_specs("alpha", 100, "beta", 100, c.combo);
  CoupledSim sim(specs, {a, b});

  CoschedConfig::Liveness liveness;
  liveness.enabled = true;
  liveness.heartbeat_period = 30 * kSecond;
  liveness.lease_duration = 5 * kMinute;
  sim.set_liveness_all(liveness);

  // The partition schedule is a pure function of (shape, seed): onset in
  // hours 6-18, outage 1-7 h for healing shapes, open-ended otherwise.
  SplitMix64 mix(0xBADC0FFEEULL + seed * 1000003ULL);
  const Time onset =
      6 * kHour + static_cast<Time>(mix.next() % (12ULL * kHour));
  const Time heal =
      onset + kHour + static_cast<Time>(mix.next() % (6ULL * kHour));
  const Time forever = onset + 100 * kDay;  // outlives every run
  switch (c.shape) {
    case Shape::kNone: break;
    case Shape::kTwoWayHeal: sim.add_partition(0, 1, onset, heal); break;
    case Shape::kTwoWayPerm: sim.add_partition(0, 1, onset, forever); break;
    case Shape::kOneWayHeal:
      sim.add_one_way_partition(0, 1, onset, heal);
      break;
    case Shape::kOneWayPerm:
      sim.add_one_way_partition(0, 1, onset, forever);
      break;
    case Shape::kReplyHeal: sim.add_reply_partition(0, 1, onset, heal); break;
  }

  EventLog& log = sim.enable_event_log();

  const auto t0 = std::chrono::steady_clock::now();
  const SimResult r = sim.run(120 * kDay);
  const auto t1 = std::chrono::steady_clock::now();

  RunOutcome out;
  out.completed = r.completed;
  out.invariant_violations = r.invariants.violations.size();
  out.wall_seconds = std::chrono::duration<double>(t1 - t0).count();
  out.events = sim.engine().executed();
  for (std::size_t i = 0; i < sim.size(); ++i) {
    const Cluster& cl = sim.cluster(i);
    out.unsync_starts += static_cast<double>(cl.unsync_starts());
    out.lease_grants += static_cast<double>(cl.lease_grants());
    out.lease_expiries += static_cast<double>(cl.lease_expiries());
    out.suspected_decisions +=
        static_cast<double>(cl.suspected_status_decisions());
    out.stale_fence_rejections +=
        static_cast<double>(cl.stale_fence_rejections());
  }
  if (r.groups.groups_total > 0)
    out.costart_fraction =
        static_cast<double>(r.groups.groups_started_together) /
        static_cast<double>(r.groups.groups_total);
  if (c.shape != Shape::kNone) {
    Time first_unsync = kNoTime;
    for (const JobEvent& e : log.events()) {
      if (e.kind != JobEventKind::kUnsyncStart || e.time < onset) continue;
      if (first_unsync == kNoTime || e.time < first_unsync)
        first_unsync = e.time;
    }
    if (first_unsync != kNoTime)
      out.mttr_minutes =
          static_cast<double>(first_unsync - onset) / double(kMinute);
  }
  return out;
}

}  // namespace

int main() {
  print_header("Partition sweep",
               "liveness layer (detector + leased holds) vs partition shape");

  std::vector<SweepCase> cases;
  for (const SchemeCombo& combo : kAllCombos) {
    for (Shape shape :
         {Shape::kNone, Shape::kTwoWayHeal, Shape::kTwoWayPerm,
          Shape::kOneWayHeal, Shape::kOneWayPerm, Shape::kReplyHeal}) {
      SweepCase c;
      c.shape = shape;
      c.combo = combo;
      c.label = std::string("shape=") + shape_label(shape) + "/" + combo.label;
      cases.push_back(std::move(c));
    }
  }

  // At least 5 seeds per case so the sweep always covers >= 100 distinct
  // seeded partition schedules (24 cases x 5 = 120), whatever
  // COSCHED_BENCH_RUNS says.
  const std::size_t n_runs =
      std::max<std::size_t>(static_cast<std::size_t>(runs()), 5);
  std::vector<std::vector<RunOutcome>> outcomes(
      cases.size(), std::vector<RunOutcome>(n_runs));
  parallel_for(cases.size() * n_runs, [&](std::size_t i) {
    const std::size_t ci = i / n_runs;
    const std::uint64_t seed = i % n_runs;
    outcomes[ci][seed] = run_one(cases[ci], seed);
  });

  std::vector<CaseAccum> accums(cases.size());
  for (std::size_t ci = 0; ci < cases.size(); ++ci) {
    for (const RunOutcome& o : outcomes[ci]) {
      CaseAccum& acc = accums[ci];
      if (o.mttr_minutes >= 0.0) acc.mttr_minutes.add(o.mttr_minutes);
      acc.costart_fraction.add(o.costart_fraction);
      acc.unsync_starts.add(o.unsync_starts);
      acc.lease_grants.add(o.lease_grants);
      acc.lease_expiries.add(o.lease_expiries);
      acc.suspected_decisions.add(o.suspected_decisions);
      acc.stale_fence_rejections.add(o.stale_fence_rejections);
      acc.wall_seconds += o.wall_seconds;
      acc.events += o.events;
      acc.invariant_violations += o.invariant_violations;
      if (!o.completed) ++acc.incomplete;
    }
  }

  Table table({"case", "mttr (min)", "co-start %", "unsync", "grants",
               "expiries", "suspected", "fence rej."});
  BenchJsonFile json("partition");
  std::size_t total_violations = 0, total_incomplete = 0;
  for (std::size_t ci = 0; ci < cases.size(); ++ci) {
    const CaseAccum& acc = accums[ci];
    table.add_row(
        {cases[ci].label,
         acc.mttr_minutes.count() > 0 ? format_double(acc.mttr_minutes.mean())
                                      : std::string("-"),
         format_double(100.0 * acc.costart_fraction.mean(), 1),
         format_double(acc.unsync_starts.mean(), 1),
         format_double(acc.lease_grants.mean(), 1),
         format_double(acc.lease_expiries.mean(), 1),
         format_double(acc.suspected_decisions.mean(), 1),
         format_double(acc.stale_fence_rejections.mean(), 1)});
    json.add_case(
        cases[ci].label, acc.wall_seconds, acc.events,
        {{"mttr_minutes", acc.mttr_minutes.mean(), acc.mttr_minutes.stddev()},
         {"costart_fraction", acc.costart_fraction.mean(),
          acc.costart_fraction.stddev()},
         {"unsync_starts", acc.unsync_starts.mean(),
          acc.unsync_starts.stddev()},
         {"lease_grants", acc.lease_grants.mean(), acc.lease_grants.stddev()},
         {"lease_expiries", acc.lease_expiries.mean(),
          acc.lease_expiries.stddev()},
         {"suspected_status_decisions", acc.suspected_decisions.mean(),
          acc.suspected_decisions.stddev()},
         {"stale_fence_rejections", acc.stale_fence_rejections.mean(),
          acc.stale_fence_rejections.stddev()},
         {"invariant_violations",
          static_cast<double>(acc.invariant_violations), 0.0}});
    total_violations += acc.invariant_violations;
    total_incomplete += acc.incomplete;
  }

  table.print(std::cout);
  maybe_export_csv("partition_sweep", table);
  json.write();

  std::cout << "\nSchedules swept: " << cases.size() * n_runs << " ("
            << cases.size() << " cases x " << n_runs << " seeds)\n"
            << "Shape check: healing partitions recover co-start capability;"
               "\n  permanent ones convert holds into lease expiries and"
               " unsynchronized\n  starts with MTTR on the order of the lease"
               " duration.\n";
  if (total_violations > 0 || total_incomplete > 0) {
    std::cerr << "PARTITION SWEEP FAILED: " << total_violations
              << " invariant violations, " << total_incomplete
              << " incomplete runs\n";
    return 1;
  }
  std::cout << "Invariant gate: PASS (0 violations, 0 incomplete)\n";
  return 0;
}

// Ablation: scheduler-policy and mechanism alternatives —
//  * WFP vs FCFS queue policies (the paper notes FCFS-family policies
//    guarantee yield-yield progress);
//  * backfilling on/off;
//  * BG/P partition-rounding allocation on Intrepid;
//  * the advance co-reservation baseline (related work the paper rejects).
#include <iostream>

#include "common.h"
#include "core/coreservation.h"
#include "workload/pairing.h"

using namespace cosched;
using namespace cosched::bench;

namespace {

CaseMetrics run_variant(const CoupledWorkload& w, const std::string& policy,
                        bool backfill, bool partition_alloc) {
  auto specs =
      make_coupled_specs("intrepid", 40960, "eureka", 100, kHY, true);
  for (auto& s : specs) {
    s.policy = policy;
    s.sched.backfill = backfill;
  }
  if (partition_alloc)
    specs[0].alloc = std::make_shared<PartitionAllocation>(
        PartitionAllocation::intrepid());
  CoupledSim sim(specs, {w.intrepid, w.eureka});
  const SimResult r = sim.run(24 * 30 * kDay);
  CaseMetrics out;
  out.completed = r.completed;
  out.intrepid = r.systems[0];
  out.eureka = r.systems[1];
  out.groups = r.groups;
  return out;
}

}  // namespace

int main() {
  print_header("Ablation",
               "policy/backfill/allocation variants + co-reservation baseline"
               " (HY, load 0.50)");

  Table t({"variant", "intrepid wait (min)", "eureka wait (min)",
           "intrepid slowdown", "intrepid util", "pairs synced / total"});

  const CoupledWorkload w = make_load_workload(0.50, 11);

  struct Variant {
    const char* label;
    const char* policy;
    bool backfill;
    bool partition;
  };
  for (const Variant& v :
       {Variant{"WFP + backfill (paper)", "wfp", true, false},
        Variant{"FCFS + backfill", "fcfs", true, false},
        Variant{"WFP, no backfill", "wfp", false, false},
        Variant{"WFP + backfill + BG/P partitions", "wfp", true, true}}) {
    const CaseMetrics m = run_variant(w, v.policy, v.backfill, v.partition);
    t.add_row({v.label, format_double(m.intrepid.avg_wait_minutes),
               format_double(m.eureka.avg_wait_minutes),
               format_double(m.intrepid.avg_slowdown),
               format_percent(m.intrepid.utilization),
               format_count(static_cast<long long>(
                   m.groups.groups_started_together)) +
                   " / " +
                   format_count(static_cast<long long>(m.groups.groups_total))});
  }

  // Co-reservation baseline (conservative, walltime-based, no backfill over
  // reservations): the related-work approach the paper argues against.
  {
    auto specs =
        make_coupled_specs("intrepid", 40960, "eureka", 100, kHY, true);
    const CoReservationResult r =
        simulate_co_reservation(specs, {w.intrepid, w.eureka});
    t.add_row({"advance co-reservation (HARC/GARA-like)",
               format_double(r.systems[0].avg_wait_minutes),
               format_double(r.systems[1].avg_wait_minutes),
               format_double(r.systems[0].avg_slowdown),
               format_percent(r.systems[0].utilization),
               "n/a (reserved)"});
    std::cout << "co-reservation fragmentation: "
              << format_count(
                     static_cast<long long>(r.fragmentation_node_hours[0]))
              << " node-hours reserved-but-unused on Intrepid, "
              << format_count(
                     static_cast<long long>(r.fragmentation_node_hours[1]))
              << " on Eureka\n";
  }

  t.print(std::cout);
  std::cout << "\nExpectation: coscheduling synchronizes under every policy"
               " variant; disabling backfill hurts waits badly; the"
               " co-reservation baseline shows the temporal-fragmentation"
               " cost the paper cites (§III).\n";
  return 0;
}

// Figure 6: service-unit loss (node-hours and lost system-utilization rate)
// by Eureka load.  Only the machine using hold locally loses service units;
// the x-axis pairs the load with the *remote* machine's scheme.
#include <iostream>

#include "common.h"

using namespace cosched;
using namespace cosched::bench;

namespace {

SchemeCombo combo_for(bool intrepid_side, Scheme local, Scheme remote) {
  for (const SchemeCombo& c : kAllCombos) {
    const Scheme c_local = intrepid_side ? c.first : c.second;
    const Scheme c_remote = intrepid_side ? c.second : c.first;
    if (c_local == local && c_remote == remote) return c;
  }
  return kHH;
}

}  // namespace

int main() {
  print_header("Figure 6", "service-unit loss by Eureka load (hold side)");

  std::vector<SeriesSpec> wanted;
  for (double load : kEurekaLoads)
    for (Scheme remote : {Scheme::kHold, Scheme::kYield}) {
      wanted.push_back(
          {true, load, combo_for(true, Scheme::kHold, remote), true});
      wanted.push_back(
          {true, load, combo_for(false, Scheme::kHold, remote), true});
    }
  prewarm_series(wanted);

  Table intrepid({"eureka load / remote scheme", "node-hours lost",
                  "lost sys. util."});
  Table eureka({"eureka load / remote scheme", "node-hours lost",
                "lost sys. util."});

  for (double load : kEurekaLoads) {
    for (Scheme remote : {Scheme::kHold, Scheme::kYield}) {
      const char r = remote == Scheme::kHold ? 'H' : 'Y';
      // Intrepid panel: Intrepid uses hold locally.
      const Series si =
          run_series(true, load, combo_for(true, Scheme::kHold, remote), true);
      intrepid.add_row(
          {format_double(load, 2) + "/" + r,
           format_count(static_cast<long long>(si.intrepid_loss_nh.mean())),
           format_percent(si.intrepid_loss_frac.mean())});
      // Eureka panel: Eureka uses hold locally.
      const Series se = run_series(
          true, load, combo_for(false, Scheme::kHold, remote), true);
      eureka.add_row(
          {format_double(load, 2) + "/" + r,
           format_count(static_cast<long long>(se.eureka_loss_nh.mean())),
           format_percent(se.eureka_loss_frac.mean())});
    }
  }

  std::cout << "\n(a) Intrepid loss of service unit\n";
  intrepid.print(std::cout);
  maybe_export_csv("fig6_intrepid_loss", intrepid);
  std::cout << "\n(b) Eureka loss of service unit\n";
  eureka.print(std::cout);
  maybe_export_csv("fig6_eureka_loss", eureka);
  export_bench_json("fig6");
  std::cout << "\nShape check (paper): Intrepid losses grow with Eureka load"
               " (135K -> 1.2M node-hours, 0.46% -> 4.6% in the paper);"
               "\n  Eureka losses are a few percent of its month and less"
               " load-correlated.\n";
  return 0;
}

// Mesh-partition chaos sweep: the k-of-N gang costart under partial
// connectivity.
//
// Two sweeps share the zero-violation gate:
//
//  * Mesh chaos — k in {3,4,5} coupled domains running a grouped synthetic
//    workload with the two-phase gang costart and the liveness layer on,
//    against the HH/HY/YH/YY scheme grid.  Each seeded run cuts a random
//    subset of directed mesh links (symmetric, one-way, or reply-loss
//    shapes, all healing), so gang rounds abort mid-prepare, leases expire,
//    and coordinators re-prepare across the healed mesh.
//  * Gang-deadlock cycles — a ring of k two-domain gangs each holding a
//    full machine while waiting on the next domain: a length-k circular
//    wait no pairwise breaker sees.  With cycle resolution armed, the
//    deterministic victim order must break every ring.
//
// Gate (nonzero exit on failure): every run completes — no gang waits
// forever — with zero invariant violations; in particular
// gang_atomicity_violations == 0 (a committed gang may never strand a
// member) and no start executes under a stale fencing token.
#include <algorithm>
#include <chrono>
#include <iostream>

#include "common.h"
#include "util/rng.h"
#include "workload/pairing.h"
#include "workload/synth.h"

using namespace cosched;
using namespace cosched::bench;

namespace {

struct RunOutcome {
  double gangs_prepared = 0.0;
  double gangs_committed = 0.0;
  double gangs_aborted = 0.0;
  double gangs_victimized = 0.0;
  double unsync_starts = 0.0;
  double costart_fraction = 1.0;
  double wall_seconds = 0.0;
  std::uint64_t events = 0;
  std::size_t atomicity_violations = 0;
  std::size_t invariant_violations = 0;
  bool completed = false;
};

std::vector<DomainSpec> mesh_domains(std::size_t k, SchemeCombo combo) {
  // Map the pairwise scheme grid onto k domains: the combo's first scheme
  // drives domain 0, its second every other domain (HY = one holder among
  // yielders, YH = one yielder among holders, ...).
  std::vector<DomainSpec> specs(k);
  for (std::size_t i = 0; i < k; ++i) {
    specs[i].name = "m" + std::to_string(i);
    specs[i].capacity = 100;
    specs[i].cosched.scheme = i == 0 ? combo.first : combo.second;
    specs[i].cosched.hold_release_period = 20 * kMinute;
    specs[i].cosched.gang.two_phase = true;
  }
  return specs;
}

/// k coupled 100-node domains, ~2 simulated days, 15% of jobs grouped
/// across the whole mesh, with 1..k seeded healing link outages.
RunOutcome run_mesh(std::size_t k, SchemeCombo combo, std::uint64_t seed) {
  std::vector<Trace> traces;
  std::vector<Trace*> ptrs;
  SynthParams p;
  p.span = static_cast<Duration>(2 * kDay * scale());
  p.offered_load = 0.6;
  for (std::size_t d = 0; d < k; ++d) {
    p.seed = 500 + seed * 10 + d;
    traces.push_back(generate_trace(eureka_model(), p));
    for (auto& j : traces.back().jobs())
      j.id += static_cast<JobId>(1000000 * (d + 1));
  }
  for (auto& t : traces) ptrs.push_back(&t);
  group_by_proportion(ptrs, 0.15, 17 + seed);

  CoupledSim sim(mesh_domains(k, combo), traces);
  CoschedConfig::Liveness liveness;
  liveness.enabled = true;
  liveness.heartbeat_period = 30 * kSecond;
  liveness.lease_duration = 5 * kMinute;
  sim.set_liveness_all(liveness);

  // Partial connectivity: cut 1..k random directed mesh links with healing
  // outages — the rest of the mesh keeps working, so some gang rounds see a
  // reachable-but-unpreparable mesh rather than a clean island.
  SplitMix64 mix(0x3E5427ULL + seed * 1000003ULL + k * 7919ULL);
  const std::size_t cuts = 1 + static_cast<std::size_t>(mix.next() % k);
  for (std::size_t c = 0; c < cuts; ++c) {
    const std::size_t from = static_cast<std::size_t>(mix.next() % k);
    std::size_t to = static_cast<std::size_t>(mix.next() % (k - 1));
    if (to >= from) ++to;
    const Time onset =
        4 * kHour + static_cast<Time>(mix.next() % (8ULL * kHour));
    const Time heal =
        onset + kHour + static_cast<Time>(mix.next() % (5ULL * kHour));
    switch (mix.next() % 3) {
      case 0: sim.add_partition(from, to, onset, heal); break;
      case 1: sim.add_one_way_partition(from, to, onset, heal); break;
      default: sim.add_reply_partition(from, to, onset, heal); break;
    }
  }

  const auto t0 = std::chrono::steady_clock::now();
  const SimResult r = sim.run(120 * kDay);
  const auto t1 = std::chrono::steady_clock::now();

  RunOutcome out;
  out.completed = r.completed;
  out.gangs_prepared = static_cast<double>(r.gangs_prepared);
  out.gangs_committed = static_cast<double>(r.gangs_committed);
  out.gangs_aborted = static_cast<double>(r.gangs_aborted);
  out.gangs_victimized = static_cast<double>(r.gangs_resolved_by_victim);
  out.atomicity_violations = r.invariants.gang_atomicity_violations;
  out.invariant_violations = r.invariants.violations.size();
  out.wall_seconds = std::chrono::duration<double>(t1 - t0).count();
  out.events = sim.engine().executed();
  for (std::size_t i = 0; i < sim.size(); ++i)
    out.unsync_starts += static_cast<double>(sim.cluster(i).unsync_starts());
  if (r.groups.groups_total > 0)
    out.costart_fraction =
        static_cast<double>(r.groups.groups_started_together) /
        static_cast<double>(r.groups.groups_total);
  return out;
}

/// A ring of k full-machine gangs: domain i holds group i+1 at t=0 while
/// its member of group i sits queued behind domain i's holder — a length-k
/// circular wait that only the cycle-resolution victim order can break.
RunOutcome run_cycle(std::size_t k, std::uint64_t seed) {
  std::vector<DomainSpec> specs(k);
  std::vector<Trace> traces(k);
  const Duration runtime = 600 + static_cast<Duration>(60 * seed);
  for (std::size_t i = 0; i < k; ++i) {
    specs[i].name = "r" + std::to_string(i);
    specs[i].capacity = 6;
    specs[i].policy = "fcfs";
    specs[i].cosched.scheme = Scheme::kHold;
    specs[i].cosched.hold_release_period = 0;  // no pairwise breaker
    specs[i].cosched.gang.two_phase = true;
    JobSpec holder;  // holds group i+1 from t=0
    holder.id = static_cast<JobId>(i + 1);
    holder.submit = 0;
    holder.runtime = holder.walltime = runtime;
    holder.nodes = 6;
    holder.group = static_cast<GroupId>(i + 1);
    traces[i].add(holder);
    JobSpec member;  // member of group i (wrapping), queued behind holder
    member.id = static_cast<JobId>(100 + i);
    member.submit = 10;
    member.runtime = member.walltime = runtime;
    member.nodes = 6;
    member.group = static_cast<GroupId>(i == 0 ? k : i);
    traces[i].add(member);
  }
  CoupledSim sim(specs, traces);
  sim.enable_gang_resolution(5 * kMinute);

  const auto t0 = std::chrono::steady_clock::now();
  const SimResult r = sim.run(120 * kDay);
  const auto t1 = std::chrono::steady_clock::now();

  RunOutcome out;
  out.completed = r.completed;
  out.gangs_prepared = static_cast<double>(r.gangs_prepared);
  out.gangs_committed = static_cast<double>(r.gangs_committed);
  out.gangs_aborted = static_cast<double>(r.gangs_aborted);
  out.gangs_victimized = static_cast<double>(r.gangs_resolved_by_victim);
  out.atomicity_violations = r.invariants.gang_atomicity_violations;
  out.invariant_violations = r.invariants.violations.size();
  out.wall_seconds = std::chrono::duration<double>(t1 - t0).count();
  out.events = sim.engine().executed();
  if (r.groups.groups_total > 0)
    out.costart_fraction =
        static_cast<double>(r.groups.groups_started_together) /
        static_cast<double>(r.groups.groups_total);
  return out;
}

struct SweepCase {
  std::size_t k = 3;
  bool cycle = false;
  SchemeCombo combo = kHH;
  std::string label;
};

}  // namespace

int main() {
  print_header("Mesh-partition sweep",
               "k-of-N gang costart under partial mesh connectivity");

  std::vector<SweepCase> cases;
  for (std::size_t k : {3u, 4u, 5u}) {
    for (const SchemeCombo& combo : kAllCombos) {
      SweepCase c;
      c.k = k;
      c.combo = combo;
      c.label = "mesh/k=" + std::to_string(k) + "/" + combo.label;
      cases.push_back(std::move(c));
    }
    SweepCase c;
    c.k = k;
    c.cycle = true;
    c.label = "cycle/k=" + std::to_string(k);
    cases.push_back(std::move(c));
  }

  // >= 3 seeds per case so the sweep always covers >= 45 distinct seeded
  // mesh outage schedules, whatever COSCHED_BENCH_RUNS says.
  const std::size_t n_runs =
      std::max<std::size_t>(static_cast<std::size_t>(runs()), 3);
  std::vector<std::vector<RunOutcome>> outcomes(
      cases.size(), std::vector<RunOutcome>(n_runs));
  parallel_for(cases.size() * n_runs, [&](std::size_t i) {
    const std::size_t ci = i / n_runs;
    const std::uint64_t seed = i % n_runs;
    outcomes[ci][seed] = cases[ci].cycle
                             ? run_cycle(cases[ci].k, seed)
                             : run_mesh(cases[ci].k, cases[ci].combo, seed);
  });

  Table table({"case", "prepared", "committed", "aborted", "victimized",
               "co-start %", "unsync", "atomicity"});
  BenchJsonFile json("mesh_partition");
  std::size_t total_violations = 0, total_incomplete = 0;
  std::size_t total_atomicity = 0;
  for (std::size_t ci = 0; ci < cases.size(); ++ci) {
    RunningStats prepared, committed, aborted, victimized, costart, unsync;
    double wall = 0.0;
    std::uint64_t events = 0;
    std::size_t violations = 0, atomicity = 0, incomplete = 0;
    for (const RunOutcome& o : outcomes[ci]) {
      prepared.add(o.gangs_prepared);
      committed.add(o.gangs_committed);
      aborted.add(o.gangs_aborted);
      victimized.add(o.gangs_victimized);
      costart.add(o.costart_fraction);
      unsync.add(o.unsync_starts);
      wall += o.wall_seconds;
      events += o.events;
      violations += o.invariant_violations;
      atomicity += o.atomicity_violations;
      if (!o.completed) ++incomplete;
    }
    table.add_row({cases[ci].label, format_double(prepared.mean(), 1),
                   format_double(committed.mean(), 1),
                   format_double(aborted.mean(), 1),
                   format_double(victimized.mean(), 1),
                   format_double(100.0 * costart.mean(), 1),
                   format_double(unsync.mean(), 1),
                   std::to_string(atomicity)});
    json.add_case(
        cases[ci].label, wall, events,
        {{"gangs_prepared", prepared.mean(), prepared.stddev()},
         {"gangs_committed", committed.mean(), committed.stddev()},
         {"gangs_aborted", aborted.mean(), aborted.stddev()},
         {"gangs_resolved_by_victim", victimized.mean(), victimized.stddev()},
         {"costart_fraction", costart.mean(), costart.stddev()},
         {"unsync_starts", unsync.mean(), unsync.stddev()},
         {"gang_atomicity_violations", static_cast<double>(atomicity), 0.0},
         {"invariant_violations", static_cast<double>(violations), 0.0}});
    total_violations += violations;
    total_atomicity += atomicity;
    total_incomplete += incomplete;
  }

  table.print(std::cout);
  maybe_export_csv("mesh_partition_sweep", table);
  json.write();

  std::cout << "\nSchedules swept: " << cases.size() * n_runs << " ("
            << cases.size() << " cases x " << n_runs << " seeds)\n"
            << "Gate: a committed gang must fully start"
               " (gang_atomicity_violations == 0),\n  every ring resolves"
               " via the deterministic victim, and no run stalls.\n";
  if (total_violations > 0 || total_atomicity > 0 || total_incomplete > 0) {
    std::cerr << "MESH PARTITION SWEEP FAILED: " << total_violations
              << " invariant violations (" << total_atomicity
              << " gang atomicity), " << total_incomplete
              << " incomplete runs\n";
    return 1;
  }
  std::cout << "Invariant gate: PASS (0 violations, 0 incomplete)\n";
  return 0;
}

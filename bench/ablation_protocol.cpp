// Ablation: coordination-protocol overhead — quantifying the paper's
// "lightweight protocol" claim.  Every remote call in the simulator crosses
// the real wire encoding (loopback peers), so round-trips and bytes are the
// actual protocol traffic a deployment would see.
#include <iostream>

#include "common.h"
#include "workload/pairing.h"

using namespace cosched;
using namespace cosched::bench;

int main() {
  print_header("Ablation", "coordination protocol traffic (one month)");

  Table t({"case", "paired jobs", "round trips", "req bytes", "resp bytes",
           "RTs / paired job", "bytes / paired job"});

  struct Case {
    const char* label;
    double proportion;
    SchemeCombo combo;
  };
  for (const Case& c :
       {Case{"5% paired, HH", 0.05, kHH}, Case{"5% paired, YY", 0.05, kYY},
        Case{"20% paired, HH", 0.20, kHH},
        Case{"33% paired, HH", 0.33, kHH},
        Case{"33% paired, YY", 0.33, kYY}}) {
    CoupledWorkload w = make_proportion_workload(c.proportion, 3);
    auto specs = make_coupled_specs("intrepid", 40960, "eureka", 100,
                                    c.combo, true);
    for (auto& s : specs) s.policy = "wfp";
    CoupledSim sim(specs, {w.intrepid, w.eureka});
    const SimResult r = sim.run(24 * 30 * kDay);
    if (!r.completed) {
      std::cerr << "case stalled: " << c.label << "\n";
      return 1;
    }
    const auto stats = sim.protocol_stats();
    const std::size_t paired =
        r.systems[0].paired_jobs + r.systems[1].paired_jobs;
    const double per_job =
        paired ? static_cast<double>(stats.calls) /
                     static_cast<double>(paired)
               : 0.0;
    const double bytes_per_job =
        paired ? static_cast<double>(stats.request_bytes +
                                     stats.response_bytes) /
                     static_cast<double>(paired)
               : 0.0;
    t.add_row({c.label, format_count(static_cast<long long>(paired)),
               format_count(static_cast<long long>(stats.calls)),
               format_count(static_cast<long long>(stats.request_bytes)),
               format_count(static_cast<long long>(stats.response_bytes)),
               format_double(per_job, 1), format_double(bytes_per_job, 1)});
  }

  t.print(std::cout);
  maybe_export_csv("ablation_protocol", t);
  std::cout << "\nExpectation: traffic scales with the paired share; even at"
               " 33% pairing the month's\ncoordination traffic is a few"
               " MB — negligible beside any scheduler's RPC load.\n";
  return 0;
}

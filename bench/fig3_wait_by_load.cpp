// Figure 3: average waiting time (Intrepid and Eureka) under Eureka system
// loads {0.25, 0.50, 0.75}, schemes HH/HY/YH/YY, vs the no-coscheduling base.
#include <iostream>

#include "common.h"

using namespace cosched;
using namespace cosched::bench;

int main() {
  print_header("Figure 3", "scheduling performance (avg. wait) by Eureka load");

  // Declare every series up front; the harness runs the (series x seed)
  // grid in parallel and the reporting loops below hit the cache.
  std::vector<SeriesSpec> wanted;
  for (double load : kEurekaLoads) {
    wanted.push_back({true, load, kHH, false});
    for (const SchemeCombo& combo : kAllCombos)
      wanted.push_back({true, load, combo, true});
  }
  prewarm_series(wanted);

  Table intrepid({"eureka load", "scheme", "avg wait (min)", "base (min)",
                  "difference"});
  Table eureka({"eureka load", "scheme", "avg wait (min)", "base (min)",
                "difference"});

  for (double load : kEurekaLoads) {
    // One base per load (coscheduling off), as in the paper's per-group
    // baselines.
    const Series base = run_series(/*by_load=*/true, load, kHH,
                                   /*enabled=*/false);
    for (const SchemeCombo& combo : kAllCombos) {
      const Series s = run_series(true, load, combo, true);
      intrepid.add_row({format_double(load, 2), combo.label,
                        format_double(s.intrepid_wait.mean()),
                        format_double(base.intrepid_wait.mean()),
                        format_double(s.intrepid_wait.mean() -
                                      base.intrepid_wait.mean())});
      eureka.add_row({format_double(load, 2), combo.label,
                      format_double(s.eureka_wait.mean()),
                      format_double(base.eureka_wait.mean()),
                      format_double(s.eureka_wait.mean() -
                                    base.eureka_wait.mean())});
    }
    intrepid.add_separator();
    eureka.add_separator();
  }

  std::cout << "\n(a) Intrepid avg. wait\n";
  intrepid.print(std::cout);
  maybe_export_csv("fig3_intrepid_wait", intrepid);
  std::cout << "\n(b) Eureka avg. wait\n";
  eureka.print(std::cout);
  maybe_export_csv("fig3_eureka_wait", eureka);
  export_bench_json("fig3");
  std::cout << "\nShape check (paper): differences grow with Eureka load;"
               "\n  hold-based combos cost more than yield-based at high load;"
               "\n  Eureka differences stay small (single-digit minutes).\n";
  return 0;
}

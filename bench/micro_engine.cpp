// Microbenchmarks (google-benchmark) for the simulation substrate:
// event-queue throughput, scheduler iteration cost, protocol round-trips,
// and a full coupled-month simulation.
#include <benchmark/benchmark.h>

#include "core/coupled_sim.h"
#include "proto/peer.h"
#include "sched/scheduler.h"
#include "sim/engine.h"
#include "util/rng.h"
#include "workload/pairing.h"
#include "workload/synth.h"

namespace cosched {
namespace {

void BM_EngineScheduleRun(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    Engine e;
    Rng rng(1);
    for (std::size_t i = 0; i < n; ++i)
      e.schedule_at(rng.uniform_int(0, 1000000), 0, [] {});
    e.run();
    benchmark::DoNotOptimize(e.executed());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(n) * state.iterations());
}
BENCHMARK(BM_EngineScheduleRun)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_EngineCancel(benchmark::State& state) {
  for (auto _ : state) {
    Engine e;
    std::vector<EventId> ids;
    ids.reserve(1000);
    for (int i = 0; i < 1000; ++i)
      ids.push_back(e.schedule_at(i, 0, [] {}));
    for (EventId id : ids) e.cancel(id);
    e.run();
    benchmark::DoNotOptimize(e.pending());
  }
}
BENCHMARK(BM_EngineCancel);

void BM_SchedulerIteration(benchmark::State& state) {
  const auto queue_len = static_cast<int>(state.range(0));
  Scheduler s(40960, make_policy("wfp"));
  // Fill the machine so the queue stays blocked and the iteration walks the
  // whole backfill scan.
  JobSpec filler;
  filler.id = 1;
  filler.submit = 0;
  filler.runtime = 1000000;
  filler.walltime = 1000000;
  filler.nodes = 40960;
  s.submit(filler, 0);
  s.iterate(0);
  for (int i = 0; i < queue_len; ++i) {
    JobSpec j;
    j.id = 100 + i;
    j.submit = i;
    j.runtime = 3600;
    j.walltime = 7200;
    j.nodes = 512;
    s.submit(j, i);
  }
  Time now = queue_len;
  for (auto _ : state) {
    benchmark::DoNotOptimize(s.iterate(now));
    ++now;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(queue_len) *
                          state.iterations());
}
BENCHMARK(BM_SchedulerIteration)->Arg(10)->Arg(100)->Arg(1000);

void BM_ProtocolRoundTrip(benchmark::State& state) {
  Engine e;
  Cluster target(e, "t", 100, make_policy("fcfs"));
  target.register_expected([] {
    JobSpec j;
    j.id = 5;
    j.submit = 1000;
    j.runtime = 600;
    j.walltime = 600;
    j.nodes = 10;
    j.group = 42;
    return j;
  }());
  LoopbackPeer peer(target);
  for (auto _ : state) {
    benchmark::DoNotOptimize(peer.get_mate_status(5));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ProtocolRoundTrip);

void BM_MessageEncodeDecode(benchmark::State& state) {
  const Message m = make_get_mate_job_req(123456, 98765, 4242);
  for (auto _ : state) {
    const auto bytes = m.encode();
    benchmark::DoNotOptimize(Message::decode(bytes));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MessageEncodeDecode);

void BM_CoupledMonth(benchmark::State& state) {
  // A ~1/8-scale coupled month with 10% pairing, hold-yield.
  for (auto _ : state) {
    state.PauseTiming();
    SynthParams pa;
    pa.job_count = 1150;
    pa.span = 30 * kDay;
    pa.offered_load = 0.68;
    pa.seed = 1;
    Trace a = generate_trace(intrepid_model(), pa);
    SynthParams pb;
    pb.span = 30 * kDay;
    pb.offered_load = 0.5;
    pb.seed = 2;
    Trace b = generate_trace(eureka_model(), pb);
    for (auto& j : b.jobs()) j.id += 1000000;
    pair_by_proportion(a, b, 0.10, 3);
    auto specs = make_coupled_specs("intrepid", 40960, "eureka", 100, kHY);
    for (auto& s : specs) s.policy = "wfp";
    state.ResumeTiming();

    CoupledSim sim(specs, {a, b});
    const SimResult r = sim.run(24 * 30 * kDay);
    benchmark::DoNotOptimize(r.completed);
  }
}
BENCHMARK(BM_CoupledMonth)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace cosched

BENCHMARK_MAIN();

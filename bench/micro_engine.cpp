// Microbenchmarks (google-benchmark) for the simulation substrate:
// event-queue throughput, scheduler iteration cost, protocol round-trips,
// and a full coupled-month simulation.
#include <benchmark/benchmark.h>

#include "core/coupled_sim.h"
#include "proto/peer.h"
#include "sched/scheduler.h"
#include "sim/engine.h"
#include "util/rng.h"
#include "workload/pairing.h"
#include "workload/synth.h"

namespace cosched {
namespace {

void BM_EngineScheduleRun(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    Engine e;
    Rng rng(1);
    for (std::size_t i = 0; i < n; ++i)
      e.schedule_at(rng.uniform_int(0, 1000000), 0, [] {});
    e.run();
    benchmark::DoNotOptimize(e.executed());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(n) * state.iterations());
}
BENCHMARK(BM_EngineScheduleRun)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_EngineCancel(benchmark::State& state) {
  for (auto _ : state) {
    Engine e;
    std::vector<EventId> ids;
    ids.reserve(1000);
    for (int i = 0; i < 1000; ++i)
      ids.push_back(e.schedule_at(i, 0, [] {}));
    for (EventId id : ids) e.cancel(id);
    e.run();
    benchmark::DoNotOptimize(e.pending());
  }
}
BENCHMARK(BM_EngineCancel);

// Tombstone-heavy drain: 90% of a large queue is cancelled before any of it
// runs (the hold/yield retry-timer churn pattern at scale).  Once tombstones
// outnumber live entries the engine compacts the heap in one O(n) rebuild,
// so the drain costs O(live · log live) instead of sifting every dead entry
// through the comparator.
void BM_EngineCancelHeavy(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    Engine e;
    std::vector<EventId> ids;
    ids.reserve(n);
    for (std::size_t i = 0; i < n; ++i)
      ids.push_back(e.schedule_at(static_cast<Time>(i), 0, [] {}));
    for (std::size_t i = 0; i < n; ++i)
      if (i % 10 != 0) e.cancel(ids[i]);
    e.run();
    benchmark::DoNotOptimize(e.heap_compactions());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(n) * state.iterations());
}
BENCHMARK(BM_EngineCancelHeavy)->Arg(10000)->Arg(100000);

// Builds a scheduler mid-trace: `churn` short jobs already ran to
// completion (the job table carries that history, as it does a month into a
// trace), a filler job occupies all but `free_nodes` of the machine, a
// machine-sized head job blocks the queue, and `queue_len` jobs wait behind
// it.
Scheduler make_busy_scheduler(int queue_len, int churn, bool conservative,
                              NodeCount free_nodes) {
  SchedulerConfig cfg;
  cfg.conservative = conservative;
  Scheduler s(40960, make_policy("wfp"), cfg);
  for (int i = 0; i < churn; ++i) {
    JobSpec j;
    j.id = 1000000 + i;
    j.submit = 0;
    j.runtime = 10;
    j.walltime = 10;
    j.nodes = 1;
    s.submit(j, 0);
  }
  s.iterate(0);
  for (int i = 0; i < churn; ++i) s.finish(1000000 + i, 10);
  JobSpec filler;
  filler.id = 1;
  filler.submit = 10;
  filler.runtime = 1000000;
  filler.walltime = 1000000;
  filler.nodes = 40960 - free_nodes;
  s.submit(filler, 10);
  s.iterate(10);
  JobSpec head;
  head.id = 2;
  head.submit = 11;
  head.runtime = 100000;
  head.walltime = 100000;
  head.nodes = 40960;
  s.submit(head, 11);
  for (int i = 0; i < queue_len; ++i) {
    JobSpec j;
    j.id = 100 + i;
    j.submit = 11;
    j.runtime = 3600;
    j.walltime = 7200;
    j.nodes = 1024;
    s.submit(j, 11);
  }
  return s;
}

void BM_SchedulerIteration(benchmark::State& state) {
  const auto queue_len = static_cast<int>(state.range(0));
  const auto churn = static_cast<int>(state.range(1));
  Scheduler s = make_busy_scheduler(queue_len, churn, /*conservative=*/false,
                                    /*free_nodes=*/0);
  Time now = 1000;
  for (auto _ : state) {
    benchmark::DoNotOptimize(s.iterate(now));
    ++now;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(queue_len) *
                          state.iterations());
}
BENCHMARK(BM_SchedulerIteration)
    ->Args({10, 0})
    ->Args({100, 0})
    ->Args({1000, 0})
    ->Args({100, 5000})
    ->Args({1000, 5000});

void BM_IterateConservative(benchmark::State& state) {
  const auto queue_len = static_cast<int>(state.range(0));
  const auto churn = static_cast<int>(state.range(1));
  Scheduler s = make_busy_scheduler(queue_len, churn, /*conservative=*/true,
                                    /*free_nodes=*/0);
  Time now = 1000;
  for (auto _ : state) {
    benchmark::DoNotOptimize(s.iterate(now));
    ++now;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(queue_len) *
                          state.iterations());
}
BENCHMARK(BM_IterateConservative)
    ->Args({100, 0})
    ->Args({100, 4000})
    ->Args({1000, 4000});

void BM_TryStartSpecific(benchmark::State& state) {
  const auto queue_len = static_cast<int>(state.range(0));
  const auto churn = static_cast<int>(state.range(1));
  // Leave a little capacity free so the targeted start exercises the full
  // reservation-legality scan (blocked head -> shadow) instead of bailing on
  // a full machine.
  Scheduler s = make_busy_scheduler(queue_len, churn, /*conservative=*/false,
                                    /*free_nodes=*/512);
  JobSpec target;
  target.id = 9999999;  // sorts after every queued tie -> full order scan
  target.submit = 11;
  target.runtime = 3600;
  target.walltime = 3600;
  target.nodes = 256;
  s.submit(target, 11);
  // The remote tryStartMate path declines without side effects (kSkip), so
  // the scheduler state is identical across benchmark iterations.
  const auto skip = [](RuntimeJob&) { return RunDecision::kSkip; };
  for (auto _ : state) {
    benchmark::DoNotOptimize(s.try_start_specific(target.id, 1000, skip));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TryStartSpecific)->Args({100, 4000})->Args({1000, 4000});

void BM_ProtocolRoundTrip(benchmark::State& state) {
  Engine e;
  Cluster target(e, "t", 100, make_policy("fcfs"));
  target.register_expected([] {
    JobSpec j;
    j.id = 5;
    j.submit = 1000;
    j.runtime = 600;
    j.walltime = 600;
    j.nodes = 10;
    j.group = 42;
    return j;
  }());
  LoopbackPeer peer(target);
  for (auto _ : state) {
    benchmark::DoNotOptimize(peer.get_mate_status(5));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ProtocolRoundTrip);

void BM_MessageEncodeDecode(benchmark::State& state) {
  const Message m = make_get_mate_job_req(123456, 98765, 4242);
  for (auto _ : state) {
    const auto bytes = m.encode();
    benchmark::DoNotOptimize(Message::decode(bytes));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MessageEncodeDecode);

void BM_CoupledMonth(benchmark::State& state) {
  // A ~1/8-scale coupled month with 10% pairing, hold-yield.
  for (auto _ : state) {
    state.PauseTiming();
    SynthParams pa;
    pa.job_count = 1150;
    pa.span = 30 * kDay;
    pa.offered_load = 0.68;
    pa.seed = 1;
    Trace a = generate_trace(intrepid_model(), pa);
    SynthParams pb;
    pb.span = 30 * kDay;
    pb.offered_load = 0.5;
    pb.seed = 2;
    Trace b = generate_trace(eureka_model(), pb);
    for (auto& j : b.jobs()) j.id += 1000000;
    pair_by_proportion(a, b, 0.10, 3);
    auto specs = make_coupled_specs("intrepid", 40960, "eureka", 100, kHY);
    for (auto& s : specs) s.policy = "wfp";
    state.ResumeTiming();

    CoupledSim sim(specs, {a, b});
    const SimResult r = sim.run(24 * 30 * kDay);
    benchmark::DoNotOptimize(r.completed);
  }
}
BENCHMARK(BM_CoupledMonth)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace cosched

BENCHMARK_MAIN();

// Figure 8: average slowdown by paired-job proportion, schemes HH/HY/YH/YY.
#include <iostream>

#include "common.h"

using namespace cosched;
using namespace cosched::bench;

int main() {
  print_header("Figure 8", "average slowdowns by paired-job proportion");

  std::vector<SeriesSpec> wanted;
  for (double prop : kPairedProportions) {
    wanted.push_back({false, prop, kHH, false});
    for (const SchemeCombo& combo : kAllCombos)
      wanted.push_back({false, prop, combo, true});
  }
  prewarm_series(wanted);

  Table intrepid({"proportion", "scheme", "avg slowdown", "base",
                  "difference"});
  Table eureka({"proportion", "scheme", "avg slowdown", "base",
                "difference"});

  for (double prop : kPairedProportions) {
    const Series base = run_series(false, prop, kHH, false);
    for (const SchemeCombo& combo : kAllCombos) {
      const Series s = run_series(false, prop, combo, true);
      intrepid.add_row({format_percent(prop, 1), combo.label,
                        format_double(s.intrepid_slow.mean()),
                        format_double(base.intrepid_slow.mean()),
                        format_double(s.intrepid_slow.mean() -
                                      base.intrepid_slow.mean())});
      eureka.add_row({format_percent(prop, 1), combo.label,
                      format_double(s.eureka_slow.mean()),
                      format_double(base.eureka_slow.mean()),
                      format_double(s.eureka_slow.mean() -
                                    base.eureka_slow.mean())});
    }
    intrepid.add_separator();
    eureka.add_separator();
  }

  std::cout << "\n(a) Intrepid avg. slowdown\n";
  intrepid.print(std::cout);
  maybe_export_csv("fig8_intrepid_slowdown", intrepid);
  std::cout << "\n(b) Eureka avg. slowdown\n";
  eureka.print(std::cout);
  maybe_export_csv("fig8_eureka_slowdown", eureka);
  export_bench_json("fig8");
  std::cout << "\nShape check (paper): single-digit differences for the first"
               " three proportions; double-digit growth at 20-33% with"
               " hold-hold the worst case.\n";
  return 0;
}

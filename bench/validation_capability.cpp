// §V-B capability validation: a grid of simulation cases over scheme
// combinations x Eureka loads x paired proportions.  For every case, all
// paired jobs must start at the same time as their mates.  Additionally,
// hold-hold *without* the release enhancement must deadlock on spans over
// ~10 days, and never with it.
#include <iostream>
#include <string>
#include <vector>

#include "common.h"
#include "core/deadlock.h"
#include "util/error.h"
#include "workload/pairing.h"

using namespace cosched;
using namespace cosched::bench;

namespace {

struct GridCase {
  SchemeCombo combo;
  double load;
  double prop;
  CaseMetrics metrics;
  bool stalled = false;
  std::string label() const {
    return std::string(combo.label) + " load=" + format_double(load, 2) +
           " prop=" + format_percent(prop, 0);
  }
};

}  // namespace

int main() {
  print_header("Validation (§V-B)", "coscheduling capability grid");

  // Part 1: the full capability grid, executed case-parallel.
  std::vector<GridCase> cases;
  for (const SchemeCombo& combo : kAllCombos)
    for (double load : kEurekaLoads)
      for (double prop : {0.05, 0.20})
        cases.push_back(GridCase{combo, load, prop, {}, false});

  parallel_for(cases.size(), [&](std::size_t i) {
    GridCase& c = cases[i];
    CoupledWorkload w = make_load_workload(c.load, 7);
    // Re-pair at the requested proportion for the grid.
    pair_by_proportion(w.intrepid, w.eureka, c.prop, 13);
    try {
      c.metrics = run_case(w, c.combo, true);
    } catch (const Error&) {
      c.stalled = true;
    }
  });

  Table grid({"case", "pairs", "started together", "max skew (s)",
              "deadlock", "result"});
  BenchJsonFile json("validation_capability");
  int failures = 0;
  for (const GridCase& c : cases) {
    const bool ok = !c.stalled &&
                    c.metrics.groups.groups_started_together ==
                        c.metrics.groups.groups_total &&
                    c.metrics.groups.max_start_skew == 0;
    if (!ok) ++failures;
    grid.add_row({c.label(),
                  format_count(static_cast<long long>(
                      c.metrics.groups.groups_total)),
                  format_count(static_cast<long long>(
                      c.metrics.groups.groups_started_together)),
                  std::to_string(c.metrics.groups.max_start_skew),
                  c.stalled ? "YES" : "no", ok ? "PASS" : "FAIL"});
    json.add_case(
        c.label(), c.metrics.wall_seconds, c.metrics.events,
        {{"pairs_total",
          static_cast<double>(c.metrics.groups.groups_total), 0.0},
         {"pairs_started_together",
          static_cast<double>(c.metrics.groups.groups_started_together), 0.0},
         {"max_start_skew_s",
          static_cast<double>(c.metrics.groups.max_start_skew), 0.0},
         {"stalled", c.stalled ? 1.0 : 0.0, 0.0},
         {"pass", ok ? 1.0 : 0.0, 0.0}});
  }
  grid.print(std::cout);

  // Part 2: deadlock with/without the release enhancement (hold-hold).
  std::cout << "\nDeadlock study (hold-hold, paired proportion 20%, "
               "Eureka load 0.75):\n";
  Table dl({"release enhancement", "completed", "hold-wait cycle observed"});
  for (bool with_release : {false, true}) {
    CoupledWorkload w = make_load_workload(0.75, 3);
    pair_by_proportion(w.intrepid, w.eureka, 0.20, 5);
    auto specs = make_coupled_specs(
        "intrepid", 40960, "eureka", 100, kHH, true,
        with_release ? 20 * kMinute : Duration{0});
    for (auto& s : specs) s.policy = "wfp";
    CoupledSim sim(specs, {w.intrepid, w.eureka});
    const SimResult r = sim.run(24 * 30 * kDay);
    const bool cycle =
        has_hold_wait_cycle({&sim.cluster(0), &sim.cluster(1)});
    dl.add_row({with_release ? "20 min" : "disabled",
                r.completed ? "yes" : "NO (stalled)",
                cycle ? "YES" : "no"});
    json.add_case(std::string("deadlock_study/release=") +
                      (with_release ? "20min" : "off"),
                  0.0, sim.engine().executed(),
                  {{"completed", r.completed ? 1.0 : 0.0, 0.0},
                   {"hold_wait_cycle", cycle ? 1.0 : 0.0, 0.0}});
    if (with_release && !r.completed) ++failures;
    if (!with_release && r.completed)
      std::cout << "  note: this seed completed without the enhancement; "
                   "the paper observed deadlocks as *highly likely*, not "
                   "certain.\n";
  }
  dl.print(std::cout);
  json.write();

  std::cout << (failures == 0 ? "\nVALIDATION PASSED" : "\nVALIDATION FAILED")
            << " (" << failures << " failing cases)\n";
  return failures == 0 ? 0 : 1;
}

// §V-B capability validation: a grid of simulation cases over scheme
// combinations x Eureka loads x paired proportions.  For every case, all
// paired jobs must start at the same time as their mates.  Additionally,
// hold-hold *without* the release enhancement must deadlock on spans over
// ~10 days, and never with it.
#include <iostream>

#include "common.h"
#include "core/deadlock.h"
#include "workload/pairing.h"

using namespace cosched;
using namespace cosched::bench;

int main() {
  print_header("Validation (§V-B)", "coscheduling capability grid");

  Table grid({"case", "pairs", "started together", "max skew (s)",
              "deadlock", "result"});
  int failures = 0;

  // Part 1: the full capability grid.
  for (const SchemeCombo& combo : kAllCombos) {
    for (double load : kEurekaLoads) {
      for (double prop : {0.05, 0.20}) {
        CoupledWorkload w = make_load_workload(load, 7);
        // Re-pair at the requested proportion for the grid.
        pair_by_proportion(w.intrepid, w.eureka, prop, 13);
        CaseMetrics m;
        bool stalled = false;
        try {
          m = run_case(w, combo, true);
        } catch (const Error&) {
          stalled = true;
        }
        const bool ok = !stalled &&
                        m.pairs.groups_started_together ==
                            m.pairs.groups_total &&
                        m.pairs.max_start_skew == 0;
        if (!ok) ++failures;
        grid.add_row({std::string(combo.label) + " load=" +
                          format_double(load, 2) + " prop=" +
                          format_percent(prop, 0),
                      format_count(static_cast<long long>(
                          m.pairs.groups_total)),
                      format_count(static_cast<long long>(
                          m.pairs.groups_started_together)),
                      std::to_string(m.pairs.max_start_skew),
                      stalled ? "YES" : "no", ok ? "PASS" : "FAIL"});
      }
    }
  }
  grid.print(std::cout);

  // Part 2: deadlock with/without the release enhancement (hold-hold).
  std::cout << "\nDeadlock study (hold-hold, paired proportion 20%, "
               "Eureka load 0.75):\n";
  Table dl({"release enhancement", "completed", "hold-wait cycle observed"});
  for (bool with_release : {false, true}) {
    CoupledWorkload w = make_load_workload(0.75, 3);
    pair_by_proportion(w.intrepid, w.eureka, 0.20, 5);
    auto specs = make_coupled_specs(
        "intrepid", 40960, "eureka", 100, kHH, true,
        with_release ? 20 * kMinute : Duration{0});
    for (auto& s : specs) s.policy = "wfp";
    CoupledSim sim(specs, {w.intrepid, w.eureka});
    const SimResult r = sim.run(24 * 30 * kDay);
    const bool cycle =
        has_hold_wait_cycle({&sim.cluster(0), &sim.cluster(1)});
    dl.add_row({with_release ? "20 min" : "disabled",
                r.completed ? "yes" : "NO (stalled)",
                cycle ? "YES" : "no"});
    if (with_release && !r.completed) ++failures;
    if (!with_release && r.completed)
      std::cout << "  note: this seed completed without the enhancement; "
                   "the paper observed deadlocks as *highly likely*, not "
                   "certain.\n";
  }
  dl.print(std::cout);

  std::cout << (failures == 0 ? "\nVALIDATION PASSED" : "\nVALIDATION FAILED")
            << " (" << failures << " failing cases)\n";
  return failures == 0 ? 0 : 1;
}

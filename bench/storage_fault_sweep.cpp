// Storage fault sweep: the zero-silent-loss gate for the durable state.
//
// For every scheme combo x at-rest corruption class, the harness runs an
// uncrashed journaled baseline, then re-runs the identical workload,
// crashes one domain at seeded points across the baseline's committed
// journal, and corrupts the durable image between crash and recovery
// (offset varies with the crash point, so the damage lands in a different
// region each time).  One extra class exercises the ENOSPC degradation
// ladder via FaultyJournalSink's byte quota instead of at-rest damage.
// Every crashed run is classified:
//   * exact_replay   — completed bit-identical to the baseline,
//   * reported_loss  — diverged (or lost records) but RecoveryStats itemizes
//                      the damage (corrupt regions, holes, dropped records,
//                      torn tail, or a snapshot-generation fallback),
//   * loud_failure   — recovery refused to proceed (threw),
//   * silent_loss    — diverged with a clean RecoveryStats.
// silent_loss > 0 fails the bench (nonzero exit): corruption may cost data,
// but it must never cost data *quietly*.
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <iostream>

#include "common.h"
#include "core/storage_fault.h"
#include "util/error.h"
#include "workload/pairing.h"
#include "workload/synth.h"

using namespace cosched;
using namespace cosched::bench;

namespace {

/// Crash points as fractions of the baseline's final committed sequence
/// number; odd indices kill the other domain.
constexpr double kCrashFractions[] = {0.25, 0.55, 0.85};

/// Snapshot every this many records: the image carries generations, so the
/// fallback path is reachable when the damage lands in the newest snapshot.
constexpr std::uint64_t kCompactEvery = 96;

/// Byte quota for the ENOSPC class — generous enough for the attach
/// snapshot, far too small for the full run.
constexpr std::uint64_t kQuotaBytes = 8 * 1024;

struct CorruptionClass {
  const char* name;
  /// Mutates the durable image; `where` in [0,1) picks the damage site.
  void (*mutate)(std::vector<std::uint8_t>&, double where);
};

std::size_t site(const std::vector<std::uint8_t>& b, double where) {
  return std::min(b.size() - 1,
                  static_cast<std::size_t>(where * static_cast<double>(
                                                       b.size())));
}

const CorruptionClass kClasses[] = {
    {"bit-flip",
     [](std::vector<std::uint8_t>& b, double where) {
       b[site(b, where)] ^= static_cast<std::uint8_t>(
           1u << (site(b, where) % 8));
     }},
    {"zero-run",
     [](std::vector<std::uint8_t>& b, double where) {
       const std::size_t at = site(b, where);
       const std::size_t end = std::min(b.size(), at + 24);
       std::fill(b.begin() + static_cast<std::ptrdiff_t>(at),
                 b.begin() + static_cast<std::ptrdiff_t>(end),
                 std::uint8_t{0});
     }},
    {"excise",
     [](std::vector<std::uint8_t>& b, double where) {
       const std::size_t at = site(b, where * 0.9);
       const std::size_t end = std::min(b.size(), at + 12);
       b.erase(b.begin() + static_cast<std::ptrdiff_t>(at),
               b.begin() + static_cast<std::ptrdiff_t>(end));
     }},
    {"torn-tail",
     [](std::vector<std::uint8_t>& b, double where) {
       b.resize(std::max<std::size_t>(1, site(b, 0.5 + where / 2)));
     }},
};

struct SweepCase {
  std::string label;
  SchemeCombo combo = kHH;
  const CorruptionClass* cls = nullptr;  ///< nullptr = the ENOSPC class
};

struct UnitOutcome {
  RunningStats mttr_ms;
  RunningStats corrupt_regions;
  RunningStats records_dropped;
  double wall_seconds = 0.0;
  std::uint64_t events = 0;
  std::size_t crashes = 0;
  std::size_t exact_replays = 0;
  std::size_t reported_loss = 0;
  std::size_t loud_failures = 0;
  std::size_t silent_loss = 0;
  std::size_t fallbacks = 0;       ///< snapshot-generation fallbacks
  std::size_t enospc_events = 0;   ///< ladder entries (ENOSPC class only)
  std::size_t invariant_violations = 0;
};

/// The recovery suite's FNV-1a per-job outcome fingerprint — one definition
/// of "identical result" shared with tests/test_recovery.cpp.
std::uint64_t fingerprint(CoupledSim& sim) {
  struct Rec {
    JobId id;
    Time start, end;
    int yields, releases;
  };
  std::vector<Rec> recs;
  for (std::size_t d = 0; d < sim.size(); ++d) {
    sim.cluster(d).scheduler().for_each_job(
        [&](JobId id, const RuntimeJob& j) {
          recs.push_back(
              Rec{id, j.start, j.end, j.yield_count, j.forced_releases});
        });
  }
  std::sort(recs.begin(), recs.end(),
            [](const Rec& a, const Rec& b) { return a.id < b.id; });
  std::uint64_t h = 1469598103934665603ULL;
  auto mix = [&h](std::uint64_t v) {
    h ^= v;
    h *= 1099511628211ULL;
  };
  for (const Rec& r : recs) {
    mix(static_cast<std::uint64_t>(r.id));
    mix(static_cast<std::uint64_t>(r.start));
    mix(static_cast<std::uint64_t>(r.end));
    mix(static_cast<std::uint64_t>(r.yields));
    mix(static_cast<std::uint64_t>(r.releases));
  }
  return h;
}

struct Workload {
  std::vector<DomainSpec> specs;
  std::vector<Trace> traces;
};

/// Two coupled 100-node domains, ~2 simulated days, 20% paired.
Workload make_workload(SchemeCombo combo, std::uint64_t seed) {
  SynthParams pa;
  pa.span = static_cast<Duration>(2 * kDay * scale());
  pa.offered_load = 0.7;
  pa.seed = 300 + seed;
  Trace a = generate_trace(eureka_model(), pa);
  pa.seed = 400 + seed;
  Trace b = generate_trace(eureka_model(), pa);
  for (auto& j : b.jobs()) j.id += 1000000;
  pair_by_proportion(a, b, 0.20, 17 + seed);
  Workload w;
  w.specs = make_coupled_specs("alpha", 100, "beta", 100, combo);
  w.traces = {std::move(a), std::move(b)};
  return w;
}

UnitOutcome run_unit(const SweepCase& c, std::uint64_t seed) {
  UnitOutcome out;
  const auto t0 = std::chrono::steady_clock::now();

  const Workload w = make_workload(c.combo, seed);
  std::uint64_t base_fp = 0;
  Time base_end = 0;
  std::uint64_t base_seq[2] = {0, 0};
  {
    CoupledSim sim(w.specs, w.traces);
    sim.enable_journaling(kCompactEvery);
    const SimResult r = sim.run(120 * kDay);
    out.events += sim.engine().executed();
    out.invariant_violations += r.invariants.violations.size();
    base_fp = fingerprint(sim);
    base_end = r.end_time;
    base_seq[0] = sim.journal(0).last_committed_seq();
    base_seq[1] = sim.journal(1).last_committed_seq();
  }

  if (c.cls == nullptr) {
    // ENOSPC class: no crash — the quota forces the degradation ladder
    // mid-run and the gate is that scheduling stays byte-identical anyway.
    CoupledSim sim(w.specs, w.traces);
    StorageFaultPlan plan;
    plan.seed = seed;
    plan.capacity_bytes = kQuotaBytes;
    sim.enable_faulty_journaling(plan, kCompactEvery);
    const SimResult r = sim.run(120 * kDay);
    out.events += sim.engine().executed();
    out.invariant_violations += r.invariants.violations.size();
    ++out.crashes;
    out.enospc_events += r.invariants.storage_enospc_events;
    if (r.completed && fingerprint(sim) == base_fp && r.end_time == base_end)
      ++out.exact_replays;
    else
      ++out.silent_loss;  // the ladder itself must never change results
    const auto t1 = std::chrono::steady_clock::now();
    out.wall_seconds = std::chrono::duration<double>(t1 - t0).count();
    return out;
  }

  for (std::size_t fi = 0; fi < std::size(kCrashFractions); ++fi) {
    const std::size_t domain = fi % 2;
    const std::uint64_t at_seq = std::max<std::uint64_t>(
        2, static_cast<std::uint64_t>(kCrashFractions[fi] *
                                      static_cast<double>(base_seq[domain])));
    // Damage site sweeps the image as the crash point sweeps the run.
    const double where =
        (static_cast<double>(fi) + static_cast<double>(seed % 3) / 3.0) /
        static_cast<double>(std::size(kCrashFractions));
    CoupledSim sim(w.specs, w.traces);
    sim.enable_journaling(kCompactEvery);
    sim.schedule_crash_recovery(domain, at_seq,
                                [&c, where](std::vector<std::uint8_t>& b) {
                                  if (!b.empty()) c.cls->mutate(b, where);
                                });
    ++out.crashes;
    SimResult r;
    bool threw = false;
    try {
      r = sim.run(120 * kDay);
    } catch (const Error&) {
      ++out.loud_failures;
      threw = true;
    }
    if (threw) continue;
    out.events += sim.engine().executed();
    out.invariant_violations += r.invariants.violations.size();

    const auto& rec = sim.last_recovery(domain);
    const bool exact = r.completed && fingerprint(sim) == base_fp &&
                       r.end_time == base_end;
    const bool loss = rec.has_value() &&
                      (rec->data_loss_reported() || rec->tail_torn);
    if (exact)
      ++out.exact_replays;
    else if (loss)
      ++out.reported_loss;
    else
      ++out.silent_loss;
    if (rec.has_value()) {
      out.mttr_ms.add(rec->replay_seconds * 1e3);
      out.corrupt_regions.add(static_cast<double>(rec->corrupt_regions));
      out.records_dropped.add(static_cast<double>(
          rec->records_missing + rec->records_dropped));
      if (rec->snapshot_fallback) ++out.fallbacks;
    }
  }

  const auto t1 = std::chrono::steady_clock::now();
  out.wall_seconds = std::chrono::duration<double>(t1 - t0).count();
  return out;
}

}  // namespace

int main() {
  print_header("Storage fault sweep",
               "at-rest corruption + ENOSPC recovery, zero-silent-loss gate");

  std::vector<SweepCase> cases;
  for (const SchemeCombo& combo : kAllCombos) {
    for (const CorruptionClass& cls : kClasses) {
      SweepCase c;
      c.combo = combo;
      c.cls = &cls;
      c.label = std::string(combo.label) + "/" + cls.name;
      cases.push_back(std::move(c));
    }
    SweepCase quota;
    quota.combo = combo;
    quota.label = std::string(combo.label) + "/enospc-quota";
    cases.push_back(std::move(quota));
  }

  const std::size_t n_runs = static_cast<std::size_t>(runs());
  std::vector<std::vector<UnitOutcome>> outcomes(
      cases.size(), std::vector<UnitOutcome>(n_runs));
  parallel_for(cases.size() * n_runs, [&](std::size_t i) {
    const std::size_t ci = i / n_runs;
    const std::uint64_t seed = i % n_runs;
    outcomes[ci][seed] = run_unit(cases[ci], seed);
  });

  Table table({"case", "crashes", "exact", "reported", "loud", "SILENT",
               "fallbacks", "mttr (ms)", "dropped"});
  BenchJsonFile json("storage_faults");
  std::size_t total_silent = 0, total_violations = 0, total_crashes = 0;
  std::size_t total_enospc = 0;
  for (std::size_t ci = 0; ci < cases.size(); ++ci) {
    UnitOutcome acc;
    for (const UnitOutcome& o : outcomes[ci]) {
      acc.mttr_ms.merge(o.mttr_ms);
      acc.corrupt_regions.merge(o.corrupt_regions);
      acc.records_dropped.merge(o.records_dropped);
      acc.wall_seconds += o.wall_seconds;
      acc.events += o.events;
      acc.crashes += o.crashes;
      acc.exact_replays += o.exact_replays;
      acc.reported_loss += o.reported_loss;
      acc.loud_failures += o.loud_failures;
      acc.silent_loss += o.silent_loss;
      acc.fallbacks += o.fallbacks;
      acc.enospc_events += o.enospc_events;
      acc.invariant_violations += o.invariant_violations;
    }
    table.add_row({cases[ci].label, std::to_string(acc.crashes),
                   std::to_string(acc.exact_replays),
                   std::to_string(acc.reported_loss),
                   std::to_string(acc.loud_failures),
                   std::to_string(acc.silent_loss),
                   std::to_string(acc.fallbacks),
                   format_double(acc.mttr_ms.mean(), 3),
                   format_double(acc.records_dropped.mean(), 1)});
    json.add_case(
        cases[ci].label, acc.wall_seconds, acc.events,
        {{"crashes", static_cast<double>(acc.crashes), 0.0},
         {"exact_replays", static_cast<double>(acc.exact_replays), 0.0},
         {"reported_loss", static_cast<double>(acc.reported_loss), 0.0},
         {"loud_failures", static_cast<double>(acc.loud_failures), 0.0},
         {"silent_loss", static_cast<double>(acc.silent_loss), 0.0},
         {"snapshot_fallbacks", static_cast<double>(acc.fallbacks), 0.0},
         {"enospc_events", static_cast<double>(acc.enospc_events), 0.0},
         {"mttr_ms", acc.mttr_ms.mean(), acc.mttr_ms.stddev()},
         {"corrupt_regions", acc.corrupt_regions.mean(),
          acc.corrupt_regions.stddev()},
         {"records_dropped", acc.records_dropped.mean(),
          acc.records_dropped.stddev()}});
    total_silent += acc.silent_loss;
    total_violations += acc.invariant_violations;
    total_crashes += acc.crashes;
    total_enospc += acc.enospc_events;
  }

  table.print(std::cout);
  maybe_export_csv("storage_fault_sweep", table);
  json.write();

  std::cout << "\nShape check: bit flips mostly land in replayable regions"
               "\n  (exact or reported), torn tails always report, and the"
               "\n  ENOSPC ladder (" << total_enospc
            << " events) never alters scheduling results.\n"
            << "Corrupted recoveries survived: " << total_crashes << "\n";
  if (total_silent > 0 || total_violations > 0) {
    std::cerr << "STORAGE FAULT SWEEP FAILED: " << total_silent
              << " silent losses, " << total_violations
              << " invariant violations\n";
    return 1;
  }
  return 0;
}

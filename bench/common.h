// Shared machinery for the figure-reproduction benches.
//
// Experiment design follows the paper's §V-A/§V-D/§V-E:
//  * Intrepid: 40,960 nodes, one month, 9,219 jobs, WFP + backfilling.
//  * Eureka: 100 nodes, WFP + backfilling.
//  * Load experiments (Figs. 3-6): Intrepid trace fixed, Eureka offered load
//    in {0.25, 0.50, 0.75}; jobs paired by 2-minute submit proximity, then
//    thinned to the paper's 5-10% paired share (we target 7.5%).
//  * Proportion experiments (Figs. 7-10): Eureka trace with the same job
//    count and span as Intrepid, offered load 0.5; paired proportion in
//    {2.5, 5, 10, 20, 33}%.
//  * Hold-release period 20 minutes; each case averaged over
//    COSCHED_BENCH_RUNS seeds (default 3; the paper used 10).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/coupled_sim.h"
#include "util/csv.h"
#include "util/stats.h"
#include "util/table.h"
#include "workload/trace.h"

namespace cosched::bench {

inline constexpr double kEurekaLoads[] = {0.25, 0.50, 0.75};
inline constexpr double kPairedProportions[] = {0.025, 0.05, 0.10, 0.20,
                                                0.33};

/// Number of repetitions per case: COSCHED_BENCH_RUNS (default 3).
int runs();

/// Workload size multiplier: COSCHED_BENCH_SCALE scales the job counts /
/// span down for quick smoke runs (default 1.0 = paper scale).
double scale();

struct CoupledWorkload {
  Trace intrepid;
  Trace eureka;
  double paired_fraction = 0.0;
};

/// Figs. 3-6 workload (Eureka load on the x-axis).
CoupledWorkload make_load_workload(double eureka_load, std::uint64_t seed);

/// Figs. 7-10 workload (paired proportion on the x-axis).
CoupledWorkload make_proportion_workload(double proportion,
                                         std::uint64_t seed);

struct CaseMetrics {
  SystemMetrics intrepid;
  SystemMetrics eureka;
  PairStartStats pairs;
  bool completed = false;
};

/// Runs one coupled simulation.  `enabled` false gives the paper's "base"
/// series.  Throws if the simulation stalls past its guard time.
CaseMetrics run_case(const CoupledWorkload& w, SchemeCombo combo,
                     bool enabled, const CoschedConfig& tweak = {});

/// Mean of a metric over `runs()` seeds of the same case.
struct Series {
  RunningStats intrepid_wait, eureka_wait;
  RunningStats intrepid_slow, eureka_slow;
  RunningStats intrepid_sync, eureka_sync;
  RunningStats intrepid_loss_nh, eureka_loss_nh;
  RunningStats intrepid_loss_frac, eureka_loss_frac;
  RunningStats paired_fraction;
  std::size_t pairs_total = 0;
  std::size_t pairs_synced = 0;

  void add(const CaseMetrics& m, double paired_frac);
};

/// Runs a full case across seeds and aggregates.
Series run_series(bool by_load, double x, SchemeCombo combo, bool enabled,
                  const CoschedConfig& tweak = {});

/// Standard preamble: experiment title + configuration echo.
void print_header(const std::string& figure, const std::string& what);

/// When COSCHED_BENCH_CSV_DIR is set, opens <dir>/<name>.csv for the
/// figure's series; returns nullptr otherwise.
std::unique_ptr<CsvWriter> bench_csv(const std::string& name);

/// Writes the table as <name>.csv if COSCHED_BENCH_CSV_DIR is set.
void maybe_export_csv(const std::string& name, const Table& table);

}  // namespace cosched::bench

// Shared machinery for the figure-reproduction benches.
//
// Experiment design follows the paper's §V-A/§V-D/§V-E:
//  * Intrepid: 40,960 nodes, one month, 9,219 jobs, WFP + backfilling.
//  * Eureka: 100 nodes, WFP + backfilling.
//  * Load experiments (Figs. 3-6): Intrepid trace fixed, Eureka offered load
//    in {0.25, 0.50, 0.75}; jobs paired by 2-minute submit proximity, then
//    thinned to the paper's 5-10% paired share (we target 7.5%).
//  * Proportion experiments (Figs. 7-10): Eureka trace with the same job
//    count and span as Intrepid, offered load 0.5; paired proportion in
//    {2.5, 5, 10, 20, 33}%.
//  * Hold-release period 20 minutes; each case averaged over
//    COSCHED_BENCH_RUNS seeds (default 3; the paper used 10).
//
// Execution model: each bench declares every series it needs up front
// (prewarm_series), the harness fans the (series x seed) cases out over
// COSCHED_BENCH_THREADS workers, and aggregation happens afterwards in
// deterministic seed order — results are identical to a serial run.  Each
// bench binary also emits a machine-readable BENCH_<name>.json (per-case
// mean/stddev, wall seconds, simulated events/sec) for CI and regression
// tracking.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/coupled_sim.h"
#include "util/csv.h"
#include "util/stats.h"
#include "util/table.h"
#include "workload/trace.h"

namespace cosched::bench {

inline constexpr double kEurekaLoads[] = {0.25, 0.50, 0.75};
inline constexpr double kPairedProportions[] = {0.025, 0.05, 0.10, 0.20,
                                                0.33};

/// Number of repetitions per case: COSCHED_BENCH_RUNS (default 3).
int runs();

/// Workload size multiplier: COSCHED_BENCH_SCALE scales the job counts /
/// span down for quick smoke runs (default 1.0 = paper scale).
double scale();

/// Host CPUs (hardware concurrency, at least 1) — recorded in bench JSON so
/// speedup numbers can be judged against the machine they ran on.
int hardware_cpus();

/// Worker threads for batched case execution AND the ceiling for the engine
/// worker pool in the parallel-engine benches: COSCHED_BENCH_THREADS
/// (default: hardware concurrency, at least 1).
int threads();

/// Runs fn(i) for i in [0, n) on up to threads() workers (serially when
/// threads() == 1).  Blocks until all tasks finish; rethrows the first
/// task exception afterwards.
void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn);

struct CoupledWorkload {
  Trace intrepid;
  Trace eureka;
  double paired_fraction = 0.0;
};

/// Figs. 3-6 workload (Eureka load on the x-axis).
CoupledWorkload make_load_workload(double eureka_load, std::uint64_t seed);

/// Figs. 7-10 workload (paired proportion on the x-axis).
CoupledWorkload make_proportion_workload(double proportion,
                                         std::uint64_t seed);

struct CaseMetrics {
  SystemMetrics intrepid;
  SystemMetrics eureka;
  GroupStartStats groups;
  bool completed = false;
  /// Host wall time of the simulation (excludes workload generation).
  double wall_seconds = 0.0;
  /// Engine events executed by the simulation.
  std::uint64_t events = 0;
};

/// Runs one coupled simulation.  `enabled` false gives the paper's "base"
/// series.  Throws if the simulation stalls past its guard time.
CaseMetrics run_case(const CoupledWorkload& w, SchemeCombo combo,
                     bool enabled, const CoschedConfig& tweak = {});

/// Mean of a metric over `runs()` seeds of the same case.
struct Series {
  RunningStats intrepid_wait, eureka_wait;
  RunningStats intrepid_slow, eureka_slow;
  RunningStats intrepid_sync, eureka_sync;
  RunningStats intrepid_loss_nh, eureka_loss_nh;
  RunningStats intrepid_loss_frac, eureka_loss_frac;
  RunningStats paired_fraction;
  std::size_t pairs_total = 0;
  std::size_t pairs_synced = 0;
  /// Summed simulation wall time / engine events across the seeds.
  double sim_wall_seconds = 0.0;
  std::uint64_t events = 0;

  void add(const CaseMetrics& m, double paired_frac);
};

/// One declared series: a (workload family, x value, scheme combo, enabled,
/// tweak) case to be averaged over runs() seeds.
struct SeriesSpec {
  bool by_load = true;
  double x = 0.0;
  SchemeCombo combo = kHH;
  bool enabled = true;
  CoschedConfig tweak = {};
};

/// Canonical case label, e.g. "load=0.50/HY" or "prop=5.0%/HH/base".
std::string series_label(const SeriesSpec& spec);

/// Computes every (series, seed) case of `specs` in parallel over threads()
/// workers and caches the seed-order-aggregated Series.  Duplicate specs are
/// computed once.  Subsequent run_series() calls with a matching spec return
/// the cached result, so declaring the full set up front parallelizes a
/// bench without restructuring its reporting loops.
void prewarm_series(const std::vector<SeriesSpec>& specs);

/// Runs a full case across seeds and aggregates (cache-aware: served from
/// the prewarm_series cache when present, computed serially otherwise).
Series run_series(bool by_load, double x, SchemeCombo combo, bool enabled,
                  const CoschedConfig& tweak = {});

/// Machine-readable per-bench output: BENCH_<name>.json written into
/// COSCHED_BENCH_JSON_DIR (default: current directory).  Schema:
///   { "bench": ..., "runs": N, "scale": S, "threads": T,
///     "machine": { "cpus": hardware concurrency, "threads_used": T },
///     "cases": [ { "case": label, "runs": N, "wall_seconds": W,
///                  "events": E, "events_per_sec": R,
///                  "metrics": { name: {"mean": M, "stddev": D}, ... } } ] }
class BenchJsonFile {
 public:
  struct Metric {
    std::string name;
    double mean = 0.0;
    double stddev = 0.0;
  };

  explicit BenchJsonFile(std::string bench_name);

  void add_case(const std::string& case_name, double wall_seconds,
                std::uint64_t events, std::vector<Metric> metrics);

  /// Writes the file (idempotent; also invoked by the destructor).
  void write();
  ~BenchJsonFile();

 private:
  struct Case {
    std::string name;
    double wall_seconds;
    std::uint64_t events;
    std::vector<Metric> metrics;
  };
  std::string name_;
  std::vector<Case> cases_;
  bool written_ = false;
};

/// Writes BENCH_<name>.json covering every series cached so far (i.e. the
/// bench's prewarmed + computed series, in declaration order).
void export_bench_json(const std::string& name);

/// Standard preamble: experiment title + configuration echo.
void print_header(const std::string& figure, const std::string& what);

/// When COSCHED_BENCH_CSV_DIR is set, opens <dir>/<name>.csv for the
/// figure's series; returns nullptr otherwise.
std::unique_ptr<CsvWriter> bench_csv(const std::string& name);

/// Writes the table as <name>.csv if COSCHED_BENCH_CSV_DIR is set.
void maybe_export_csv(const std::string& name, const Table& table);

}  // namespace cosched::bench

// Ablation: sensitivity to the hold-release period (the paper fixes it at
// 20 minutes and notes it "can be tuned freely by system owners").
// Shorter periods bound the deadlock-wait but churn holders; longer periods
// waste more node-hours per hold episode.
#include <iostream>

#include "common.h"
#include "workload/pairing.h"

using namespace cosched;
using namespace cosched::bench;

int main() {
  print_header("Ablation", "hold-release period sweep (hold-hold, load 0.50)");

  Table t({"release period", "intrepid wait (min)", "eureka wait (min)",
           "intrepid sync (min)", "intrepid loss (node-h)", "pairs synced"});

  for (Duration period : {5 * kMinute, 10 * kMinute, 20 * kMinute,
                          40 * kMinute, 80 * kMinute}) {
    CoschedConfig tweak;
    tweak.hold_release_period = period;
    const Series s = run_series(/*by_load=*/true, 0.50, kHH, true, tweak);
    t.add_row({format_double(static_cast<double>(period) / kMinute, 0) + " min",
               format_double(s.intrepid_wait.mean()),
               format_double(s.eureka_wait.mean()),
               format_double(s.intrepid_sync.mean()),
               format_count(static_cast<long long>(s.intrepid_loss_nh.mean())),
               format_count(static_cast<long long>(s.pairs_synced))});
  }
  t.print(std::cout);
  std::cout << "\nExpectation: synchronization still perfect at every period;"
               "\n  node-hour loss and waits shift moderately with the period.\n";
  return 0;
}

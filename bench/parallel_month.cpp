// Parallel-engine speedup on a multi-pair coupled month.
//
// Four coupled (compute, analysis) pairs — each a month-scale Intrepid-style
// trace paired with a proximity-paired Eureka-style trace, cycling through
// the HH/HY/YH/YY scheme grid — run on ONE engine, with each pair in its own
// coupling group so build_clusters() gives the engine four independent
// execution lanes.  The bench runs the identical simulation serially and at
// 1/2/4/8 engine worker threads (capped by COSCHED_BENCH_THREADS, the same
// knob that sizes the harness worker pool), reports the wall-clock speedup
// per thread count, and *fails* (nonzero exit) if any run's determinism
// fingerprint differs from the serial baseline — speedup numbers are only
// admissible if the results are byte-identical.
//
// Emits BENCH_parallel_engine.json: one case per thread count with a
// "speedup" metric (serial wall / case wall, aggregated over
// COSCHED_BENCH_RUNS seeds) plus engine telemetry (parallel windows, pinned
// steps, fingerprint_match).
#include <chrono>
#include <iostream>
#include <string>
#include <vector>

#include "common.h"
#include "util/error.h"
#include "util/stats.h"

using namespace cosched;
using namespace cosched::bench;

namespace {

constexpr std::size_t kPairs = 4;
/// Id offset between pairs: far above make_load_workload's +1e7 Eureka
/// offset, so job and group ids never collide across coupling groups.
constexpr JobId kPairStride = 100000000;

struct PairedMonth {
  std::vector<DomainSpec> specs;
  std::vector<Trace> traces;
};

PairedMonth build_workload(std::uint64_t seed) {
  PairedMonth out;
  for (std::size_t p = 0; p < kPairs; ++p) {
    CoupledWorkload w = make_load_workload(0.5, seed + 7919 * p);
    const JobId off = static_cast<JobId>(p) * kPairStride;
    for (Trace* t : {&w.intrepid, &w.eureka}) {
      for (auto& j : t->jobs()) {
        j.id += off;
        if (j.group != kNoGroup) j.group += off;
      }
    }
    const SchemeCombo combo = kAllCombos[p % 4];
    auto specs =
        make_coupled_specs("intrepid" + std::to_string(p), 40960,
                           "eureka" + std::to_string(p), 100, combo);
    for (auto& s : specs) {
      s.policy = "wfp";
      s.coupling_group = static_cast<int>(p);
    }
    out.specs.push_back(std::move(specs[0]));
    out.specs.push_back(std::move(specs[1]));
    out.traces.push_back(std::move(w.intrepid));
    out.traces.push_back(std::move(w.eureka));
  }
  return out;
}

struct RunOutcome {
  double wall_seconds = 0.0;
  std::uint64_t fingerprint = 0;
  std::uint64_t events = 0;
  std::uint64_t windows = 0;
  std::uint64_t pinned = 0;
};

/// threads == 0 runs the serial step loop (the baseline).
RunOutcome run_at(const PairedMonth& m, unsigned threads) {
  const auto t0 = std::chrono::steady_clock::now();
  CoupledSim sim(m.specs, m.traces);
  sim.set_parallel(threads);
  const SimResult r = sim.run(24 * 30 * kDay);
  const auto t1 = std::chrono::steady_clock::now();
  if (!r.completed || !r.invariants.ok())
    throw Error("parallel_month: run stalled or broke invariants (threads=" +
                std::to_string(threads) + ")");
  RunOutcome out;
  out.wall_seconds = std::chrono::duration<double>(t1 - t0).count();
  out.fingerprint = determinism_fingerprint(sim);
  out.events = sim.engine().executed();
  out.windows = sim.engine().parallel_windows();
  out.pinned = sim.engine().pinned_steps();
  return out;
}

}  // namespace

int main() {
  print_header("Parallel engine",
               "dependency-clustered coupled month: speedup by thread count");

  // The sweep never drives the engine pool wider than the harness thread
  // knob: COSCHED_BENCH_THREADS caps both.
  std::vector<unsigned> counts{1};
  for (const unsigned t : {2u, 4u, 8u})
    if (static_cast<int>(t) <= threads()) counts.push_back(t);

  struct CaseAccum {
    RunningStats speedup;
    double wall_seconds = 0.0;
    std::uint64_t events = 0;
    std::uint64_t windows = 0;
    std::uint64_t pinned = 0;
  };
  CaseAccum serial;
  std::vector<CaseAccum> accums(counts.size());
  bool fingerprints_match = true;

  for (int run = 0; run < runs(); ++run) {
    const PairedMonth m = build_workload(1000 * run + 1);
    const RunOutcome base = run_at(m, 0);
    serial.wall_seconds += base.wall_seconds;
    serial.events += base.events;
    for (std::size_t ci = 0; ci < counts.size(); ++ci) {
      const RunOutcome r = run_at(m, counts[ci]);
      if (r.fingerprint != base.fingerprint) {
        fingerprints_match = false;
        std::cerr << "FINGERPRINT MISMATCH: threads=" << counts[ci]
                  << " seed-run=" << run << std::hex << " got 0x"
                  << r.fingerprint << " want 0x" << base.fingerprint
                  << std::dec << "\n";
      }
      CaseAccum& acc = accums[ci];
      acc.speedup.add(base.wall_seconds / r.wall_seconds);
      acc.wall_seconds += r.wall_seconds;
      acc.events += r.events;
      acc.windows += r.windows;
      acc.pinned += r.pinned;
    }
  }

  BenchJsonFile json("parallel_engine");
  json.add_case("serial", serial.wall_seconds, serial.events,
                {{"speedup", 1.0, 0.0},
                 {"fingerprint_match", 1.0, 0.0}});
  std::cout << "serial baseline: " << serial.wall_seconds << " s\n";
  for (std::size_t ci = 0; ci < counts.size(); ++ci) {
    const CaseAccum& acc = accums[ci];
    const std::string label = "threads=" + std::to_string(counts[ci]);
    std::cout << label << ": " << acc.wall_seconds << " s, speedup "
              << acc.speedup.mean() << "x, " << acc.windows
              << " windows, " << acc.pinned << " pinned steps\n";
    json.add_case(
        label, acc.wall_seconds, acc.events,
        {{"speedup", acc.speedup.mean(), acc.speedup.stddev()},
         {"fingerprint_match", fingerprints_match ? 1.0 : 0.0, 0.0},
         {"parallel_windows",
          static_cast<double>(acc.windows) / runs(), 0.0},
         {"pinned_steps", static_cast<double>(acc.pinned) / runs(), 0.0}});
  }
  json.write();

  if (!fingerprints_match) {
    std::cerr << "parallel_month: determinism gate FAILED\n";
    return 1;
  }
  std::cout << "determinism gate: all fingerprints byte-identical\n";
  return 0;
}

// EASY-backfilling behaviour of the Scheduler (paper: "WFP plus backfilling",
// citing Tsafrir et al. [31]).
#include <gtest/gtest.h>

#include "sched/scheduler.h"

namespace cosched {
namespace {

JobSpec spec(JobId id, Time submit, Duration runtime, NodeCount nodes,
             Duration walltime = 0) {
  JobSpec s;
  s.id = id;
  s.submit = submit;
  s.runtime = runtime;
  s.walltime = walltime > 0 ? walltime : runtime;
  s.nodes = nodes;
  return s;
}

Scheduler make_sched(NodeCount capacity, SchedulerConfig cfg = {}) {
  return Scheduler(capacity, make_policy("fcfs"), cfg);
}

TEST(Backfill, ShortJobJumpsBlockedHead) {
  Scheduler s = make_sched(100);
  s.submit(spec(1, 0, 10000, 80, 10000), 0);   // running til 10000
  s.iterate(0);
  s.submit(spec(2, 1, 5000, 60, 5000), 1);     // head: blocked (needs 60)
  s.submit(spec(3, 2, 1000, 20, 1000), 2);     // short: fits in window
  const auto started = s.iterate(10);
  ASSERT_EQ(started, (std::vector<JobId>{3}));
  EXPECT_EQ(s.find(2)->state, JobState::kQueued);
}

TEST(Backfill, LongJobMustNotDelayHead) {
  Scheduler s = make_sched(100);
  s.submit(spec(1, 0, 10000, 50, 10000), 0);   // running til 10000
  s.iterate(0);
  // Head needs 80 nodes; shadow = 10000, extra = (50 free + 50 freed) - 80
  // = 20 nodes usable past the shadow.
  s.submit(spec(2, 1, 5000, 80, 5000), 1);
  // Two 10-node shadow-crossing jobs exhaust the extra budget; the third is
  // refused even though 30 nodes are still physically free.
  s.submit(spec(3, 2, 20000, 10, 20000), 2);
  s.submit(spec(4, 3, 20000, 10, 20000), 3);
  s.submit(spec(5, 4, 20000, 10, 20000), 4);
  const auto started = s.iterate(10);
  EXPECT_EQ(started, (std::vector<JobId>{3, 4}));
  EXPECT_EQ(s.find(5)->state, JobState::kQueued);
  EXPECT_EQ(s.pool().free(), 30);
}

TEST(Backfill, DisabledStopsAtBlockedHead) {
  SchedulerConfig cfg;
  cfg.backfill = false;
  Scheduler s = make_sched(100, cfg);
  s.submit(spec(1, 0, 10000, 80, 10000), 0);
  s.iterate(0);
  s.submit(spec(2, 1, 5000, 60, 5000), 1);
  s.submit(spec(3, 2, 1000, 10, 1000), 2);
  const auto started = s.iterate(10);
  EXPECT_TRUE(started.empty());  // strict FCFS: nothing may pass the head
}

TEST(Backfill, HeadStartsWhenNodesFree) {
  Scheduler s = make_sched(100);
  s.submit(spec(1, 0, 1000, 80, 1000), 0);
  s.iterate(0);
  s.submit(spec(2, 1, 500, 60, 500), 1);
  s.iterate(1);
  s.finish(1, 1000);
  const auto started = s.iterate(1000);
  EXPECT_EQ(started, (std::vector<JobId>{2}));
}

TEST(Backfill, BackfilledJobsRunInPriorityOrder) {
  Scheduler s = make_sched(100);
  s.submit(spec(1, 0, 10000, 90, 10000), 0);
  s.iterate(0);
  s.submit(spec(2, 1, 5000, 50, 5000), 1);   // blocked head
  s.submit(spec(3, 2, 100, 5, 100), 2);
  s.submit(spec(4, 3, 100, 5, 100), 3);
  const auto started = s.iterate(10);
  EXPECT_EQ(started, (std::vector<JobId>{3, 4}));
}

TEST(Backfill, ShadowAccountsMultipleRunningJobs) {
  Scheduler s = make_sched(100);
  s.submit(spec(1, 0, 1000, 50, 1000), 0);   // frees at 1000
  s.submit(spec(2, 0, 4000, 40, 4000), 0);   // frees at 4000
  s.iterate(0);
  // Head needs 60: free 10 + 50 (at 1000) = 60 -> shadow = 1000.
  s.submit(spec(3, 1, 5000, 60, 5000), 1);
  // A 10-node job ending by t=1000 backfills; extra is 0, so a job crossing
  // the shadow cannot.
  s.submit(spec(4, 2, 900, 10, 900), 2);
  s.submit(spec(5, 3, 5000, 10, 5000), 3);
  const auto started = s.iterate(10);
  EXPECT_EQ(started, (std::vector<JobId>{4}));
  EXPECT_EQ(s.find(5)->state, JobState::kQueued);
}

TEST(Backfill, HeldNodesExcludedFromShadowSupply) {
  Scheduler s = make_sched(100);
  s.submit(spec(1, 0, 1000, 70, 1000), 0);
  s.iterate(0, [](RuntimeJob&) { return RunDecision::kHold; });  // 70 held
  s.submit(spec(2, 1, 5000, 60, 5000), 1);  // can never fit from running ends
  s.submit(spec(3, 2, 9000, 30, 9000), 2);  // fits now
  // Shadow unknown (held nodes don't free by walltime): backfill is
  // unconstrained for fitting jobs.
  const auto started = s.iterate(10);
  EXPECT_EQ(started, (std::vector<JobId>{3}));
}

TEST(Backfill, TryStartSpecificRespectsReservation) {
  Scheduler s = make_sched(100);
  s.submit(spec(1, 0, 1000, 50, 1000), 0);
  s.submit(spec(2, 0, 4000, 40, 4000), 0);
  s.iterate(0);
  s.submit(spec(3, 1, 5000, 60, 5000), 1);  // blocked head, shadow=1000
  // A job crossing the shadow with nodes > extra(0) must be refused.
  s.submit(spec(4, 2, 5000, 10, 5000), 2);
  EXPECT_FALSE(s.try_start_specific(4, 10));
  // A job finishing before the shadow is accepted.
  s.submit(spec(5, 3, 500, 10, 500), 3);
  EXPECT_TRUE(s.try_start_specific(5, 10));
}

TEST(Backfill, TryStartSpecificIgnoresReservationWhenConfigured) {
  SchedulerConfig cfg;
  cfg.respect_reservation_on_try = false;
  Scheduler s = make_sched(100, cfg);
  s.submit(spec(1, 0, 1000, 50, 1000), 0);
  s.submit(spec(2, 0, 4000, 40, 4000), 0);
  s.iterate(0);
  s.submit(spec(3, 1, 5000, 60, 5000), 1);
  s.submit(spec(4, 2, 5000, 10, 5000), 2);
  EXPECT_TRUE(s.try_start_specific(4, 10));
}

}  // namespace
}  // namespace cosched

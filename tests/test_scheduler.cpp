#include "sched/scheduler.h"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "util/error.h"

namespace cosched {
namespace {

JobSpec spec(JobId id, Time submit, Duration runtime, NodeCount nodes,
             Duration walltime = 0) {
  JobSpec s;
  s.id = id;
  s.submit = submit;
  s.runtime = runtime;
  s.walltime = walltime > 0 ? walltime : runtime;
  s.nodes = nodes;
  return s;
}

Scheduler make_sched(NodeCount capacity, const std::string& policy = "fcfs",
                     SchedulerConfig cfg = {}) {
  return Scheduler(capacity, make_policy(policy), cfg);
}

TEST(Scheduler, StartsFittingJobImmediately) {
  Scheduler s = make_sched(100);
  s.submit(spec(1, 0, 600, 50), 0);
  const auto started = s.iterate(0);
  ASSERT_EQ(started, (std::vector<JobId>{1}));
  EXPECT_EQ(s.find(1)->state, JobState::kRunning);
  EXPECT_EQ(s.find(1)->start, 0);
  EXPECT_EQ(s.pool().busy(), 50);
}

TEST(Scheduler, MultipleJobsStartInOneIteration) {
  Scheduler s = make_sched(100);
  s.submit(spec(1, 0, 600, 40), 0);
  s.submit(spec(2, 1, 600, 40), 0);
  s.submit(spec(3, 2, 600, 40), 0);  // does not fit
  const auto started = s.iterate(10);
  EXPECT_EQ(started.size(), 2u);
  EXPECT_EQ(s.queue_length(), 1u);
}

TEST(Scheduler, FcfsOrder) {
  Scheduler s = make_sched(100);
  s.submit(spec(2, 10, 600, 100), 10);
  s.submit(spec(1, 5, 600, 100), 10);
  const auto started = s.iterate(10);
  ASSERT_EQ(started.size(), 1u);
  EXPECT_EQ(started[0], 1);  // earlier submit runs first
}

TEST(Scheduler, FinishFreesNodes) {
  Scheduler s = make_sched(100);
  s.submit(spec(1, 0, 600, 100), 0);
  s.iterate(0);
  s.finish(1, 600);
  EXPECT_EQ(s.pool().busy(), 0);
  EXPECT_EQ(s.find(1)->state, JobState::kFinished);
  EXPECT_EQ(s.find(1)->end, 600);
  EXPECT_EQ(s.finished_count(), 1u);
}

TEST(Scheduler, OnStartCallbackFires) {
  Scheduler s = make_sched(100);
  std::vector<JobId> seen;
  s.set_on_start([&](const RuntimeJob& j) { seen.push_back(j.spec.id); });
  s.submit(spec(1, 0, 600, 10), 0);
  s.iterate(0);
  EXPECT_EQ(seen, (std::vector<JobId>{1}));
}

TEST(Scheduler, HookHoldOccupiesNodes) {
  Scheduler s = make_sched(100);
  s.submit(spec(1, 0, 600, 60), 0);
  const auto started = s.iterate(0, [](RuntimeJob&) {
    return RunDecision::kHold;
  });
  EXPECT_TRUE(started.empty());
  const RuntimeJob* j = s.find(1);
  EXPECT_EQ(j->state, JobState::kHolding);
  EXPECT_EQ(j->allocated, 60);
  EXPECT_EQ(j->hold_since, 0);
  EXPECT_EQ(s.pool().held(), 60);
  EXPECT_EQ(s.queue_length(), 0u);
}

TEST(Scheduler, HookYieldSkipsAndCounts) {
  Scheduler s = make_sched(100);
  s.submit(spec(1, 0, 600, 60), 0);
  s.submit(spec(2, 1, 600, 60), 0);
  int calls = 0;
  const auto started = s.iterate(5, [&](RuntimeJob& j) {
    ++calls;
    return j.spec.id == 1 ? RunDecision::kYield : RunDecision::kStart;
  });
  EXPECT_EQ(calls, 2);
  ASSERT_EQ(started, (std::vector<JobId>{2}));
  EXPECT_EQ(s.find(1)->yield_count, 1);
  EXPECT_EQ(s.find(1)->state, JobState::kQueued);
  EXPECT_EQ(s.pool().held(), 0);
}

TEST(Scheduler, SkipDoesNotCountAsYield) {
  Scheduler s = make_sched(100);
  s.submit(spec(1, 0, 600, 60), 0);
  s.iterate(0, [](RuntimeJob&) { return RunDecision::kSkip; });
  EXPECT_EQ(s.find(1)->yield_count, 0);
  EXPECT_EQ(s.find(1)->state, JobState::kQueued);
}

TEST(Scheduler, FirstReadyRecordedOnce) {
  Scheduler s = make_sched(100);
  s.submit(spec(1, 0, 600, 60), 0);
  s.iterate(10, [](RuntimeJob&) { return RunDecision::kYield; });
  s.iterate(50, [](RuntimeJob&) { return RunDecision::kYield; });
  EXPECT_EQ(s.find(1)->first_ready, 10);
  s.iterate(100);
  EXPECT_EQ(s.find(1)->start, 100);
  EXPECT_EQ(s.find(1)->sync_time(), 90);
}

TEST(Scheduler, StartHoldingPromotes) {
  Scheduler s = make_sched(100);
  s.submit(spec(1, 0, 600, 60), 0);
  s.iterate(0, [](RuntimeJob&) { return RunDecision::kHold; });
  s.start_holding(1, 300);
  const RuntimeJob* j = s.find(1);
  EXPECT_EQ(j->state, JobState::kRunning);
  EXPECT_EQ(j->start, 300);
  EXPECT_EQ(j->sync_time(), 300);
  EXPECT_EQ(s.pool().busy(), 60);
  EXPECT_EQ(s.pool().held(), 0);
}

TEST(Scheduler, ReleaseHoldRequeuesDemoted) {
  Scheduler s = make_sched(100);
  s.submit(spec(1, 0, 600, 60), 0);
  s.iterate(0, [](RuntimeJob&) { return RunDecision::kHold; });
  s.release_hold(1, 1200);
  const RuntimeJob* j = s.find(1);
  EXPECT_EQ(j->state, JobState::kQueued);
  EXPECT_TRUE(j->demoted);
  EXPECT_EQ(j->forced_releases, 1);
  EXPECT_EQ(s.pool().held(), 0);
  EXPECT_EQ(s.queue_length(), 1u);
}

TEST(Scheduler, DemotedJobSortsLastThenRecovers) {
  Scheduler s = make_sched(100, "fcfs");
  s.submit(spec(1, 0, 600, 100), 0);
  s.submit(spec(2, 50, 600, 100), 50);
  s.iterate(50, [](RuntimeJob& j) {
    return j.spec.id == 1 ? RunDecision::kHold : RunDecision::kSkip;
  });
  s.release_hold(1, 1200);
  // Job 1 (earlier submit) would normally outrank job 2, but demotion puts
  // it last for this iteration.
  const auto started = s.iterate(1200);
  ASSERT_EQ(started, (std::vector<JobId>{2}));
  // Demotion cleared afterwards: job 1 outranks a later job again.
  s.finish(2, 1800);
  s.submit(spec(3, 1700, 600, 100), 1800);
  const auto started2 = s.iterate(1800);
  ASSERT_EQ(started2, (std::vector<JobId>{1}));
}

TEST(Scheduler, TryStartSpecificStartsFittingJob) {
  Scheduler s = make_sched(100);
  s.submit(spec(1, 0, 600, 60), 0);
  EXPECT_TRUE(s.try_start_specific(1, 5));
  EXPECT_EQ(s.find(1)->state, JobState::kRunning);
  EXPECT_EQ(s.find(1)->start, 5);
}

TEST(Scheduler, TryStartSpecificFailsWhenFull) {
  Scheduler s = make_sched(100);
  s.submit(spec(1, 0, 600, 80), 0);
  s.iterate(0);
  s.submit(spec(2, 10, 600, 40), 10);
  EXPECT_FALSE(s.try_start_specific(2, 10));
  EXPECT_EQ(s.find(2)->state, JobState::kQueued);
}

TEST(Scheduler, TryStartSpecificUnknownOrRunning) {
  Scheduler s = make_sched(100);
  EXPECT_FALSE(s.try_start_specific(99, 0));
  s.submit(spec(1, 0, 600, 10), 0);
  s.iterate(0);
  EXPECT_FALSE(s.try_start_specific(1, 0));  // already running
}

TEST(Scheduler, TryStartSpecificHookDeclines) {
  Scheduler s = make_sched(100);
  s.submit(spec(1, 0, 600, 60), 0);
  EXPECT_FALSE(s.try_start_specific(
      1, 0, [](RuntimeJob&) { return RunDecision::kSkip; }));
  EXPECT_EQ(s.find(1)->state, JobState::kQueued);
  EXPECT_EQ(s.pool().free(), 100);
}

TEST(Scheduler, KillQueuedJob) {
  Scheduler s = make_sched(100);
  s.submit(spec(1, 0, 600, 60), 0);
  s.kill(1, 5);
  EXPECT_EQ(s.queue_length(), 0u);
  EXPECT_EQ(s.find(1)->state, JobState::kFinished);
}

TEST(Scheduler, KillRunningJobFreesNodes) {
  Scheduler s = make_sched(100);
  s.submit(spec(1, 0, 600, 60), 0);
  s.iterate(0);
  s.kill(1, 100);
  EXPECT_EQ(s.pool().busy(), 0);
  EXPECT_EQ(s.find(1)->end, 100);
}

TEST(Scheduler, KillHoldingJobFreesHeldNodes) {
  Scheduler s = make_sched(100);
  s.submit(spec(1, 0, 600, 60), 0);
  s.iterate(0, [](RuntimeJob&) { return RunDecision::kHold; });
  s.kill(1, 100);
  EXPECT_EQ(s.pool().held(), 0);
}

TEST(Scheduler, DuplicateSubmitThrows) {
  Scheduler s = make_sched(100);
  s.submit(spec(1, 0, 600, 10), 0);
  EXPECT_THROW(s.submit(spec(1, 5, 600, 10), 5), InvariantError);
}

TEST(Scheduler, OversizeJobRejectedAtSubmit) {
  Scheduler s = make_sched(100);
  EXPECT_THROW(s.submit(spec(1, 0, 600, 200), 0), InvariantError);
}

TEST(Scheduler, WfpPrioritizesLongWaiters) {
  Scheduler s = make_sched(100, "wfp");
  // Job 2 has waited much longer relative to its walltime.
  s.submit(spec(1, 900, 600, 100, 6000), 900);
  s.submit(spec(2, 0, 600, 100, 600), 900);
  const auto started = s.iterate(1000);
  ASSERT_EQ(started.size(), 1u);
  EXPECT_EQ(started[0], 2);
}

TEST(Scheduler, YieldedJobRetriesAndEventuallyStarts) {
  Scheduler s = make_sched(100);
  s.submit(spec(1, 0, 600, 60), 0);
  int attempts = 0;
  // Yield three times, then start: yield must never lose the job.
  for (int i = 0; i < 3; ++i)
    s.iterate(i * 100, [&](RuntimeJob&) {
      ++attempts;
      return RunDecision::kYield;
    });
  const auto started = s.iterate(300);
  EXPECT_EQ(attempts, 3);
  EXPECT_EQ(started, (std::vector<JobId>{1}));
  EXPECT_EQ(s.find(1)->yield_count, 3);
  EXPECT_EQ(s.find(1)->first_ready, 0);
  EXPECT_EQ(s.find(1)->sync_time(), 300);
}

TEST(Scheduler, HoldReleaseHoldCycleKeepsAccountingBalanced) {
  Scheduler s = make_sched(100);
  s.submit(spec(1, 0, 600, 60), 0);
  for (Time t = 0; t < 5000; t += 1000) {
    s.iterate(t, [](RuntimeJob&) { return RunDecision::kHold; });
    EXPECT_EQ(s.pool().held(), 60);
    s.release_hold(1, t + 500);
    EXPECT_EQ(s.pool().held(), 0);
    EXPECT_EQ(s.pool().free(), 100);
  }
  EXPECT_EQ(s.find(1)->forced_releases, 5);
  // 5 episodes x 60 nodes x 500 s of held time.
  EXPECT_DOUBLE_EQ(s.pool().held_node_seconds(), 5.0 * 60 * 500);
}

TEST(Scheduler, ZeroCapacityRejected) {
  EXPECT_THROW(Scheduler(0, make_policy("fcfs")), InvariantError);
}

TEST(Scheduler, HoldingIdsListed) {
  Scheduler s = make_sched(100);
  s.submit(spec(1, 0, 600, 30), 0);
  s.submit(spec(2, 0, 600, 30), 0);
  s.iterate(0, [](RuntimeJob&) { return RunDecision::kHold; });
  EXPECT_EQ(s.holding_ids(), (std::vector<JobId>{1, 2}));
}

}  // namespace
}  // namespace cosched

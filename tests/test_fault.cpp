// Fault tolerance (paper §IV-C, last paragraph): "a job will not wait
// forever when the remote machine or its mate job is down."
#include <gtest/gtest.h>

#include "core_test_util.h"

namespace cosched {
namespace {

using testutil::find_job;
using testutil::job;
using testutil::two_domains;

TEST(Fault, RemoteDownMeansImmediateStart) {
  auto specs = two_domains(kHH);
  Trace a, b;
  a.add(job(1, 0, 600, 50, 7));
  b.add(job(10, 0, 600, 30, 7));
  CoupledSim sim(specs, {a, b});
  sim.link(0, 1).set_down(true);  // alpha cannot reach beta
  sim.link(1, 0).set_down(true);  // beta cannot reach alpha
  const SimResult r = sim.run(30 * kDay);
  EXPECT_TRUE(r.completed);
  // Line 2 returns nothing -> both start immediately, unsynchronized.
  EXPECT_EQ(find_job(sim, 0, 1).start, 0);
  EXPECT_EQ(find_job(sim, 1, 10).start, 0);
  EXPECT_DOUBLE_EQ(sim.cluster(0).scheduler().pool().held_node_seconds(), 0.0);
}

TEST(Fault, OneWayLinkFailureStillCompletes) {
  auto specs = two_domains(kHH);
  Trace a, b;
  a.add(job(1, 0, 600, 50, 7));
  b.add(job(10, 300, 600, 30, 7));
  CoupledSim sim(specs, {a, b});
  sim.link(0, 1).set_down(true);  // alpha -> beta broken; beta -> alpha fine
  const SimResult r = sim.run(30 * kDay);
  EXPECT_TRUE(r.completed);
  // alpha's job started without coordination at 0.
  EXPECT_EQ(find_job(sim, 0, 1).start, 0);
  // beta's job sees alpha's mate already running -> starts normally too.
  EXPECT_EQ(find_job(sim, 1, 10).start, 300);
}

TEST(Fault, LinkRecoveryRestoresCoscheduling) {
  auto specs = two_domains(kHH);
  Trace a, b;
  a.add(job(1, 0, 300, 50, 7));          // while link down
  b.add(job(10, 0, 300, 30, 7));
  a.add(job(2, 5000, 600, 50, 8));       // after recovery
  b.add(job(20, 5400, 600, 30, 8));
  CoupledSim sim(specs, {a, b});
  sim.link(0, 1).set_down(true);
  sim.link(1, 0).set_down(true);
  sim.engine().run_until(4000);
  sim.link(0, 1).set_down(false);
  sim.link(1, 0).set_down(false);
  const SimResult r = sim.run(30 * kDay);
  EXPECT_TRUE(r.completed);
  // Group 7 ran uncoordinated; group 8 synchronized after recovery.
  EXPECT_EQ(find_job(sim, 0, 2).start, find_job(sim, 1, 20).start);
  EXPECT_EQ(find_job(sim, 0, 2).start, 5400);
}

TEST(Fault, MateKilledUnblocksHolder) {
  // alpha holds for a mate that then dies; the next forced release plus the
  // now-unknown status lets the job start normally.
  auto specs = two_domains(kHH);
  specs[0].cosched.hold_release_period = 10 * kMinute;
  Trace a, b;
  a.add(job(1, 0, 600, 50, 7));
  b.add(job(10, 50, 600, 30, 7));
  CoupledSim sim(specs, {a, b});
  // Kill the mate right after its submission event (priority kMessage runs
  // between the submit and the scheduling iteration at t=50), so it dies
  // while queued and never starts.
  sim.engine().schedule_at(50, EventPriority::kMessage, [&] {
    sim.cluster(1).scheduler().kill(10, sim.engine().now());
  });
  const SimResult r = sim.run(30 * kDay);
  // Job 1 finishes despite its mate never running: at the first forced
  // release the mate's status reads `finished`, which does not block.
  EXPECT_EQ(find_job(sim, 0, 1).state, JobState::kFinished);
  EXPECT_EQ(find_job(sim, 0, 1).start, 600);  // one release period
  EXPECT_FALSE(r.systems.empty());
}

TEST(Fault, KillRunningJobTwiceSafe) {
  // The completion event of a killed job must not double-free its nodes.
  auto specs = two_domains(kHH);
  Trace a, b;
  a.add(job(1, 0, 600, 50));
  CoupledSim sim(specs, {a, b});
  sim.engine().schedule_at(100, EventPriority::kMessage,
                           [&] { sim.cluster(0).kill_job(1); });
  const SimResult r = sim.run(kDay);
  EXPECT_TRUE(r.completed);
  EXPECT_EQ(find_job(sim, 0, 1).end, 100);
  EXPECT_EQ(sim.cluster(0).scheduler().pool().busy(), 0);
}

TEST(Fault, FailureStormLeavesSystemConsistent) {
  // Kill 20% of all jobs (including paired ones) at random points in their
  // lives; every surviving job must still finish and accounting must
  // balance.  Survivor pairs whose mates died start via the unknown rule.
  auto specs = two_domains(kHY);
  Trace a, b;
  GroupId g = 1;
  for (int i = 1; i <= 120; ++i) {
    const bool paired = i % 4 == 0;
    a.add(job(i, i * 200, 900, 10 + (i % 5) * 10, paired ? g : kNoGroup));
    if (paired) {
      b.add(job(10000 + i, i * 200 + 60, 600, 5 + (i % 3) * 10, g));
      ++g;
    }
  }
  b.sort_by_submit();
  CoupledSim sim(specs, {a, b});

  // Schedule kills at scattered times over the workload's life.
  std::vector<std::pair<std::size_t, JobId>> victims;
  for (int i = 1; i <= 120; i += 5) victims.push_back({0, i});
  for (int i = 4; i <= 120; i += 20) victims.push_back({1, 10000 + i});
  for (std::size_t k = 0; k < victims.size(); ++k) {
    const auto [domain, id] = victims[k];
    sim.engine().schedule_at(
        static_cast<Time>(100 + 400 * k), EventPriority::kMessage,
        [&sim, domain = domain, id = id] { sim.cluster(domain).kill_job(id); });
  }

  const SimResult r = sim.run(60 * kDay);
  EXPECT_TRUE(r.completed) << "survivors must all finish";
  for (std::size_t d = 0; d < 2; ++d) {
    EXPECT_EQ(sim.cluster(d).scheduler().pool().busy(), 0);
    EXPECT_EQ(sim.cluster(d).scheduler().pool().held(), 0);
  }
}

TEST(Fault, ProtocolFailureDuringTryStartIsNonFatal) {
  // Link goes down between the status query and later interactions; the
  // pair still completes once the link is back (or runs uncoordinated).
  auto specs = two_domains(kYY);
  Trace a, b;
  a.add(job(1, 0, 600, 50, 7));
  b.add(job(10, 2000, 600, 30, 7));
  CoupledSim sim(specs, {a, b});
  sim.engine().schedule_at(1000, EventPriority::kMessage,
                           [&] { sim.link(1, 0).set_down(true); });
  const SimResult r = sim.run(30 * kDay);
  EXPECT_TRUE(r.completed);
}

}  // namespace
}  // namespace cosched

// Fault tolerance (paper §IV-C, last paragraph): "a job will not wait
// forever when the remote machine or its mate job is down."
#include <gtest/gtest.h>

#include "core_test_util.h"

namespace cosched {
namespace {

using testutil::find_job;
using testutil::job;
using testutil::two_domains;

TEST(Fault, RemoteDownMeansImmediateStart) {
  auto specs = two_domains(kHH);
  Trace a, b;
  a.add(job(1, 0, 600, 50, 7));
  b.add(job(10, 0, 600, 30, 7));
  CoupledSim sim(specs, {a, b});
  sim.link(0, 1).set_down(true);  // alpha cannot reach beta
  sim.link(1, 0).set_down(true);  // beta cannot reach alpha
  const SimResult r = sim.run(30 * kDay);
  EXPECT_TRUE(r.completed);
  // Line 2 returns nothing -> both start immediately, unsynchronized.
  EXPECT_EQ(find_job(sim, 0, 1).start, 0);
  EXPECT_EQ(find_job(sim, 1, 10).start, 0);
  EXPECT_DOUBLE_EQ(sim.cluster(0).scheduler().pool().held_node_seconds(), 0.0);
}

TEST(Fault, OneWayLinkFailureStillCompletes) {
  auto specs = two_domains(kHH);
  Trace a, b;
  a.add(job(1, 0, 600, 50, 7));
  b.add(job(10, 300, 600, 30, 7));
  CoupledSim sim(specs, {a, b});
  sim.link(0, 1).set_down(true);  // alpha -> beta broken; beta -> alpha fine
  const SimResult r = sim.run(30 * kDay);
  EXPECT_TRUE(r.completed);
  // alpha's job started without coordination at 0.
  EXPECT_EQ(find_job(sim, 0, 1).start, 0);
  // beta's job sees alpha's mate already running -> starts normally too.
  EXPECT_EQ(find_job(sim, 1, 10).start, 300);
}

TEST(Fault, LinkRecoveryRestoresCoscheduling) {
  auto specs = two_domains(kHH);
  Trace a, b;
  a.add(job(1, 0, 300, 50, 7));          // while link down
  b.add(job(10, 0, 300, 30, 7));
  a.add(job(2, 5000, 600, 50, 8));       // after recovery
  b.add(job(20, 5400, 600, 30, 8));
  CoupledSim sim(specs, {a, b});
  sim.link(0, 1).set_down(true);
  sim.link(1, 0).set_down(true);
  sim.engine().run_until(4000);
  sim.link(0, 1).set_down(false);
  sim.link(1, 0).set_down(false);
  const SimResult r = sim.run(30 * kDay);
  EXPECT_TRUE(r.completed);
  // Group 7 ran uncoordinated; group 8 synchronized after recovery.
  EXPECT_EQ(find_job(sim, 0, 2).start, find_job(sim, 1, 20).start);
  EXPECT_EQ(find_job(sim, 0, 2).start, 5400);
}

TEST(Fault, MateKilledUnblocksHolder) {
  // alpha holds for a mate that then dies; the next forced release plus the
  // now-unknown status lets the job start normally.
  auto specs = two_domains(kHH);
  specs[0].cosched.hold_release_period = 10 * kMinute;
  Trace a, b;
  a.add(job(1, 0, 600, 50, 7));
  b.add(job(10, 50, 600, 30, 7));
  CoupledSim sim(specs, {a, b});
  // Kill the mate right after its submission event (priority kMessage runs
  // between the submit and the scheduling iteration at t=50), so it dies
  // while queued and never starts.
  sim.engine().schedule_at(50, EventPriority::kMessage, [&] {
    sim.cluster(1).scheduler().kill(10, sim.engine().now());
  });
  const SimResult r = sim.run(30 * kDay);
  // Job 1 finishes despite its mate never running: at the first forced
  // release the mate's status reads `finished`, which does not block.
  EXPECT_EQ(find_job(sim, 0, 1).state, JobState::kFinished);
  EXPECT_EQ(find_job(sim, 0, 1).start, 600);  // one release period
  EXPECT_FALSE(r.systems.empty());
}

TEST(Fault, KillRunningJobTwiceSafe) {
  // The completion event of a killed job must not double-free its nodes.
  auto specs = two_domains(kHH);
  Trace a, b;
  a.add(job(1, 0, 600, 50));
  CoupledSim sim(specs, {a, b});
  sim.engine().schedule_at(100, EventPriority::kMessage,
                           [&] { sim.cluster(0).kill_job(1); });
  const SimResult r = sim.run(kDay);
  EXPECT_TRUE(r.completed);
  EXPECT_EQ(find_job(sim, 0, 1).end, 100);
  EXPECT_EQ(sim.cluster(0).scheduler().pool().busy(), 0);
}

TEST(Fault, FailureStormLeavesSystemConsistent) {
  // Kill 20% of all jobs (including paired ones) at random points in their
  // lives; every surviving job must still finish and accounting must
  // balance.  Survivor pairs whose mates died start via the unknown rule.
  auto specs = two_domains(kHY);
  Trace a, b;
  GroupId g = 1;
  for (int i = 1; i <= 120; ++i) {
    const bool paired = i % 4 == 0;
    a.add(job(i, i * 200, 900, 10 + (i % 5) * 10, paired ? g : kNoGroup));
    if (paired) {
      b.add(job(10000 + i, i * 200 + 60, 600, 5 + (i % 3) * 10, g));
      ++g;
    }
  }
  b.sort_by_submit();
  CoupledSim sim(specs, {a, b});

  // Schedule kills at scattered times over the workload's life.
  std::vector<std::pair<std::size_t, JobId>> victims;
  for (int i = 1; i <= 120; i += 5) victims.push_back({0, i});
  for (int i = 4; i <= 120; i += 20) victims.push_back({1, 10000 + i});
  for (std::size_t k = 0; k < victims.size(); ++k) {
    const auto [domain, id] = victims[k];
    sim.engine().schedule_at(
        static_cast<Time>(100 + 400 * k), EventPriority::kMessage,
        [&sim, domain = domain, id = id] { sim.cluster(domain).kill_job(id); });
  }

  const SimResult r = sim.run(60 * kDay);
  EXPECT_TRUE(r.completed) << "survivors must all finish";
  for (std::size_t d = 0; d < 2; ++d) {
    EXPECT_EQ(sim.cluster(d).scheduler().pool().busy(), 0);
    EXPECT_EQ(sim.cluster(d).scheduler().pool().held(), 0);
  }
}

// -- FaultPlan: seedable chaos schedules ------------------------------------

/// Stub peer that always answers; counts delivered calls.
class CountingPeer final : public PeerClient {
 public:
  int calls = 0;
  std::optional<std::optional<JobId>> get_mate_job(GroupId, JobId) override {
    ++calls;
    return std::optional<std::optional<JobId>>(std::in_place, 42);
  }
  std::optional<MateStatus> get_mate_status(JobId) override {
    ++calls;
    return MateStatus::kHolding;
  }
  std::optional<bool> try_start_mate(JobId) override {
    ++calls;
    return true;
  }
  std::optional<bool> start_job(JobId) override {
    ++calls;
    return true;
  }
};

TEST(FaultPlan, DefaultPlanIsTransparent) {
  auto inner = std::make_unique<CountingPeer>();
  auto* counting = inner.get();
  FaultInjectingPeer peer(std::move(inner));
  for (int i = 0; i < 10; ++i)
    EXPECT_EQ(peer.get_mate_status(1), MateStatus::kHolding);
  EXPECT_EQ(counting->calls, 10);
  EXPECT_EQ(peer.stats().delivered, 10u);
  EXPECT_EQ(peer.stats().failed(), 0u);
}

TEST(FaultPlan, FullDropBlocksEverything) {
  FaultInjectingPeer peer(std::make_unique<CountingPeer>());
  FaultPlan plan;
  plan.drop_probability = 1.0;
  peer.set_plan(plan);
  EXPECT_EQ(peer.get_mate_job(1, 2), std::nullopt);
  EXPECT_EQ(peer.get_mate_status(1), std::nullopt);
  EXPECT_EQ(peer.try_start_mate(1), std::nullopt);
  EXPECT_EQ(peer.start_job(1), std::nullopt);
  EXPECT_EQ(peer.stats().dropped, 4u);
  EXPECT_EQ(peer.stats().delivered, 0u);
}

TEST(FaultPlan, CorruptionDeliversButAnswersUnknown) {
  auto inner = std::make_unique<CountingPeer>();
  auto* counting = inner.get();
  FaultInjectingPeer peer(std::move(inner));
  FaultPlan plan;
  plan.corrupt_probability = 1.0;
  peer.set_plan(plan);
  // The remote processes the call (partial failure) but the caller cannot
  // read the reply -> unknown.
  EXPECT_EQ(peer.try_start_mate(7), std::nullopt);
  EXPECT_EQ(counting->calls, 1);
  EXPECT_EQ(peer.stats().corrupted, 1u);
}

TEST(FaultPlan, LatencyPastDeadlineTimesOut) {
  FaultInjectingPeer peer(std::make_unique<CountingPeer>());
  FaultPlan plan;
  plan.latency_base = 200;
  plan.rpc_deadline = 100;
  peer.set_plan(plan);
  EXPECT_EQ(peer.get_mate_status(1), std::nullopt);
  EXPECT_EQ(peer.stats().timed_out, 1u);

  // Within the deadline the call goes through and latency is accounted.
  plan.rpc_deadline = 300;
  peer.set_plan(plan);
  EXPECT_EQ(peer.get_mate_status(1), MateStatus::kHolding);
  EXPECT_EQ(peer.stats().total_latency, 200u);
}

TEST(FaultPlan, SameSeedSameFaultSequence) {
  auto sequence = [](std::uint64_t seed) {
    FaultInjectingPeer peer(std::make_unique<CountingPeer>());
    FaultPlan plan;
    plan.seed = seed;
    plan.drop_probability = 0.5;
    peer.set_plan(plan);
    std::vector<bool> outcomes;
    for (int i = 0; i < 64; ++i)
      outcomes.push_back(peer.get_mate_status(1).has_value());
    return outcomes;
  };
  EXPECT_EQ(sequence(11), sequence(11));
  EXPECT_NE(sequence(11), sequence(12));  // 2^-64 flake odds
}

TEST(FaultPlan, ReplyDropExecutesRemotelyButAnswersNothing) {
  // The asymmetric half of a partition: the remote acts on the call, only
  // the reply is lost — distinct from drop_probability (remote never acted).
  auto inner = std::make_unique<CountingPeer>();
  auto* counting = inner.get();
  FaultInjectingPeer peer(std::move(inner));
  FaultPlan plan;
  plan.reply_drop_probability = 1.0;
  peer.set_plan(plan);
  EXPECT_EQ(peer.try_start_mate(7), std::nullopt);
  EXPECT_EQ(counting->calls, 1);
  EXPECT_EQ(peer.stats().reply_lost, 1u);
  EXPECT_EQ(peer.stats().delivered, 0u);
}

TEST(FaultPlan, ReplyOutageWindowIsOneWayAndTimed) {
  Engine engine;
  auto inner = std::make_unique<CountingPeer>();
  auto* counting = inner.get();
  FaultInjectingPeer peer(std::move(inner), &engine);
  FaultPlan plan;
  plan.reply_outages.push_back({100, 200});
  peer.set_plan(plan);

  // Before the window: transparent.
  EXPECT_EQ(peer.get_mate_status(1), MateStatus::kHolding);
  // Inside [100, 200): the call is executed remotely, the reply is lost.
  engine.run_until(150);
  EXPECT_EQ(peer.get_mate_status(1), std::nullopt);
  EXPECT_EQ(counting->calls, 2);
  EXPECT_EQ(peer.stats().reply_lost, 1u);
  // After the window: transparent again.
  engine.run_until(200);
  EXPECT_EQ(peer.get_mate_status(1), MateStatus::kHolding);
  EXPECT_EQ(peer.stats().reply_lost, 1u);
  EXPECT_EQ(peer.stats().delivered, 2u);
}

TEST(FaultPlan, SameSeedSameReplyFaultSequence) {
  // Seeded determinism extends to the per-direction reply-loss dimension.
  auto sequence = [](std::uint64_t seed) {
    FaultInjectingPeer peer(std::make_unique<CountingPeer>());
    FaultPlan plan;
    plan.seed = seed;
    plan.reply_drop_probability = 0.5;
    peer.set_plan(plan);
    std::vector<bool> outcomes;
    for (int i = 0; i < 64; ++i)
      outcomes.push_back(peer.get_mate_status(1).has_value());
    return outcomes;
  };
  EXPECT_EQ(sequence(21), sequence(21));
  EXPECT_NE(sequence(21), sequence(22));  // 2^-64 flake odds
}

TEST(FaultPlan, ReplyPartitionRunStillCompletesConsistently) {
  // A whole-run one-way reply partition alpha->beta: beta executes every
  // call alpha makes but alpha never learns; both sides must still finish
  // with clean invariants (the scenario the fencing layer exists for).
  auto specs = two_domains(kHY);
  Trace a, b;
  a.add(job(1, 0, 600, 50, 7));
  b.add(job(10, 300, 600, 30, 7));
  CoupledSim sim(specs, {a, b});
  sim.add_reply_partition(0, 1, 0, 30 * kDay);
  const SimResult r = sim.run(30 * kDay);
  EXPECT_TRUE(r.completed);
  EXPECT_TRUE(r.invariants.ok())
      << (r.invariants.violations.empty() ? ""
                                          : r.invariants.violations.front());
  EXPECT_GT(sim.fault_stats().reply_lost, 0u);
  for (std::size_t d = 0; d < 2; ++d) {
    EXPECT_EQ(sim.cluster(d).scheduler().pool().busy(), 0);
    EXPECT_EQ(sim.cluster(d).scheduler().pool().held(), 0);
  }
}

TEST(FaultPlan, HundredPercentDropReproducesRemoteDownBehavior) {
  // Acceptance criterion: a 100%-drop plan must reproduce the set_down
  // expectations — unknown => immediate uncoordinated start, zero held
  // node-seconds, clean invariants.
  auto specs = two_domains(kHH);
  Trace a, b;
  a.add(job(1, 0, 600, 50, 7));
  b.add(job(10, 0, 600, 30, 7));
  CoupledSim sim(specs, {a, b});
  FaultPlan plan;
  plan.drop_probability = 1.0;
  sim.set_fault_plan_all(plan);
  const SimResult r = sim.run(30 * kDay);
  EXPECT_TRUE(r.completed);
  EXPECT_TRUE(r.invariants.ok())
      << (r.invariants.violations.empty() ? ""
                                          : r.invariants.violations.front());
  EXPECT_EQ(find_job(sim, 0, 1).start, 0);
  EXPECT_EQ(find_job(sim, 1, 10).start, 0);
  EXPECT_DOUBLE_EQ(sim.cluster(0).scheduler().pool().held_node_seconds(), 0.0);
  // Degraded accounting saw it all: every decision ran on unknown status and
  // both starts were unsynchronized.
  EXPECT_GT(r.systems[0].unknown_status_decisions, 0);
  EXPECT_EQ(r.systems[0].unsync_starts, 1);
  EXPECT_EQ(r.systems[1].unsync_starts, 1);
  EXPECT_GT(sim.fault_stats().dropped, 0u);
  EXPECT_EQ(sim.fault_stats().delivered, 0u);
}

TEST(FaultPlan, OutageWindowDegradesThenResynchronizes) {
  // Scheduled-window version of LinkRecoveryRestoresCoscheduling: group 7
  // falls inside the outage and runs uncoordinated; group 8 arrives after
  // the window and co-starts.
  auto specs = two_domains(kHH);
  Trace a, b;
  a.add(job(1, 0, 300, 50, 7));
  b.add(job(10, 0, 300, 30, 7));
  a.add(job(2, 5000, 600, 50, 8));
  b.add(job(20, 5400, 600, 30, 8));
  CoupledSim sim(specs, {a, b});
  FaultPlan plan;
  plan.outages.push_back({0, 4000});
  sim.set_fault_plan(0, 1, plan);
  sim.set_fault_plan(1, 0, plan);
  const SimResult r = sim.run(30 * kDay);
  EXPECT_TRUE(r.completed);
  EXPECT_TRUE(r.invariants.ok());
  EXPECT_EQ(find_job(sim, 0, 1).start, 0);  // uncoordinated inside window
  EXPECT_EQ(find_job(sim, 0, 2).start, find_job(sim, 1, 20).start);
  EXPECT_EQ(find_job(sim, 0, 2).start, 5400);
  EXPECT_GT(sim.fault_stats().outage_blocked, 0u);
}

TEST(FaultPlan, HoldReleaseDemotionDuringOutageWindow) {
  // A holder established *before* an outage window is forcibly released by
  // the hold-release tick while its link is down.  With the mate unreachable
  // the demoted job restarts uncoordinated instead of deadlocking, and a
  // pair arriving after the window still co-starts exactly.
  auto specs = two_domains(kHH, /*release=*/600);
  Trace a, b;
  b.add(job(90, 0, 6000, 80));       // blocks the mate: job 10 must queue
  // The pair arrives after the filler is running (at t=0 beta's pool is
  // still empty and a try-start would co-start the pair immediately).
  a.add(job(1, 50, 300, 50, 7));     // ready at 50 -> holds for job 10
  b.add(job(10, 50, 300, 30, 7));
  a.add(job(2, 8000, 300, 50, 8));   // post-outage pair: must co-start
  b.add(job(20, 8200, 300, 30, 8));
  CoupledSim sim(specs, {a, b});
  FaultPlan plan;
  plan.outages.push_back({100, 4000});
  sim.set_fault_plan(0, 1, plan);
  sim.set_fault_plan(1, 0, plan);
  const SimResult r = sim.run(30 * kDay);
  EXPECT_TRUE(r.completed);
  EXPECT_TRUE(r.invariants.ok());
  const RuntimeJob& holder = find_job(sim, 0, 1);
  EXPECT_GE(holder.forced_releases, 1);
  EXPECT_GT(holder.start, 0);    // held first, restarted after the release
  EXPECT_LT(holder.start, 4000); // ...without waiting out the outage
  EXPECT_EQ(find_job(sim, 0, 2).start, find_job(sim, 1, 20).start);
  EXPECT_GT(sim.fault_stats().outage_blocked, 0u);
}

TEST(FaultPlan, FlappingLinkStillCompletes) {
  // Link down half of every 200 s; the workload must drain regardless, with
  // at least some calls blocked and some delivered.
  auto specs = two_domains(kYY);
  Trace a, b;
  GroupId g = 1;
  for (int i = 1; i <= 20; ++i) {
    a.add(job(i, i * 300, 600, 20, g));
    b.add(job(100 + i, i * 300 + 30, 600, 10, g));
    ++g;
  }
  CoupledSim sim(specs, {a, b});
  FaultPlan plan;
  plan.flap_period = 200;
  plan.flap_down_for = 100;
  sim.set_fault_plan_all(plan);
  const SimResult r = sim.run(60 * kDay);
  EXPECT_TRUE(r.completed);
  EXPECT_TRUE(r.invariants.ok());
  EXPECT_GT(sim.fault_stats().outage_blocked, 0u);
  EXPECT_GT(sim.fault_stats().delivered, 0u);
}

TEST(FaultPlan, RetryBackoffReschedulesIteration) {
  // With retry_backoff set, a failed call wakes the calling domain again
  // after the backoff, so recovery is noticed without new job traffic.
  auto specs = two_domains(kHH);
  specs[0].cosched.hold_release_period = 0;  // isolate the retry path
  specs[1].cosched.hold_release_period = 0;
  Trace a, b;
  a.add(job(1, 0, 300, 50, 7));
  b.add(job(10, 0, 300, 30, 7));
  CoupledSim sim(specs, {a, b});
  FaultPlan plan;
  plan.outages.push_back({0, 1000});
  plan.retry_backoff = 250;
  sim.set_fault_plan(0, 1, plan);
  sim.set_fault_plan(1, 0, plan);
  const SimResult r = sim.run(30 * kDay);
  EXPECT_TRUE(r.completed);
  EXPECT_TRUE(r.invariants.ok());
}

TEST(FaultPlan, DomainCrashKillsJobsAndRestartResynchronizes) {
  auto specs = two_domains(kHH);
  Trace a, b;
  a.add(job(1, 0, 3000, 50, 7));   // co-starts at 0, survives the crash
  b.add(job(10, 0, 3000, 30, 7));  // dies with beta at t=1000
  a.add(job(3, 2000, 600, 20, 9));  // submitted mid-crash: degraded start
  b.add(job(30, 2000, 600, 20, 9));
  a.add(job(2, 6000, 600, 50, 8));  // submitted after restart: co-starts
  b.add(job(20, 6000, 600, 30, 8));
  CoupledSim sim(specs, {a, b});
  sim.schedule_domain_crash(/*domain=*/1, /*at=*/1000, /*restart_at=*/5000);
  const SimResult r = sim.run(30 * kDay);
  EXPECT_TRUE(r.completed);
  EXPECT_TRUE(r.invariants.ok())
      << (r.invariants.violations.empty() ? ""
                                          : r.invariants.violations.front());
  EXPECT_EQ(find_job(sim, 0, 1).start, 0);
  EXPECT_EQ(find_job(sim, 1, 10).start, 0);
  EXPECT_EQ(find_job(sim, 1, 10).end, 1000);  // killed by the crash
  EXPECT_EQ(find_job(sim, 0, 1).end, 3000);   // survivor runs to term
  // Group 9 arrived while beta was unreachable: both members start via the
  // unknown rule instead of waiting for the restart.
  EXPECT_EQ(find_job(sim, 0, 3).start, 2000);
  EXPECT_GT(sim.fault_stats().outage_blocked, 0u);
  EXPECT_GT(r.systems[0].unsync_starts + r.systems[1].unsync_starts, 0);
  EXPECT_EQ(find_job(sim, 0, 2).start, find_job(sim, 1, 20).start);
}

TEST(Fault, ProtocolFailureDuringTryStartIsNonFatal) {
  // Link goes down between the status query and later interactions; the
  // pair still completes once the link is back (or runs uncoordinated).
  auto specs = two_domains(kYY);
  Trace a, b;
  a.add(job(1, 0, 600, 50, 7));
  b.add(job(10, 2000, 600, 30, 7));
  CoupledSim sim(specs, {a, b});
  sim.engine().schedule_at(1000, EventPriority::kMessage,
                           [&] { sim.link(1, 0).set_down(true); });
  const SimResult r = sim.run(30 * kDay);
  EXPECT_TRUE(r.completed);
}

}  // namespace
}  // namespace cosched

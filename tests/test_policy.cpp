#include "sched/policy.h"

#include <gtest/gtest.h>

#include "util/error.h"

namespace cosched {
namespace {

RuntimeJob make_job(JobId id, Time submit, Duration walltime, NodeCount nodes) {
  RuntimeJob j;
  j.spec.id = id;
  j.spec.submit = submit;
  j.spec.runtime = walltime / 2;
  j.spec.walltime = walltime;
  j.spec.nodes = nodes;
  return j;
}

TEST(Fcfs, EarlierSubmitWins) {
  FcfsPolicy p;
  const RuntimeJob early = make_job(1, 100, 3600, 4);
  const RuntimeJob late = make_job(2, 200, 3600, 4);
  EXPECT_GT(p.score(early, 1000), p.score(late, 1000));
}

TEST(Fcfs, BoostBreaksTies) {
  FcfsPolicy p;
  RuntimeJob a = make_job(1, 100, 3600, 4);
  RuntimeJob b = make_job(2, 100, 3600, 4);
  b.priority_boost = 1.0;
  EXPECT_GT(p.score(b, 1000), p.score(a, 1000));
}

TEST(Wfp, ScoreGrowsWithWait) {
  WfpPolicy p;
  const RuntimeJob j = make_job(1, 0, 3600, 64);
  EXPECT_LT(p.score(j, 100), p.score(j, 1000));
  EXPECT_LT(p.score(j, 1000), p.score(j, 10000));
}

TEST(Wfp, ZeroWaitIsZeroScore) {
  WfpPolicy p;
  const RuntimeJob j = make_job(1, 500, 3600, 64);
  EXPECT_DOUBLE_EQ(p.score(j, 500), 0.0);
  // Clock before submit clamps to zero, not negative.
  EXPECT_DOUBLE_EQ(p.score(j, 100), 0.0);
}

TEST(Wfp, ShorterWalltimeScoresHigherAtEqualWait) {
  WfpPolicy p;
  const RuntimeJob short_job = make_job(1, 0, 600, 64);
  const RuntimeJob long_job = make_job(2, 0, 6000, 64);
  EXPECT_GT(p.score(short_job, 1000), p.score(long_job, 1000));
}

TEST(Wfp, LargerJobScoresHigher) {
  WfpPolicy p;
  const RuntimeJob small = make_job(1, 0, 3600, 64);
  const RuntimeJob large = make_job(2, 0, 3600, 4096);
  EXPECT_GT(p.score(large, 1000), p.score(small, 1000));
}

TEST(Wfp, CubicInWaitByDefault) {
  WfpPolicy p;
  const RuntimeJob j = make_job(1, 0, 1000, 1);
  // score(2w)/score(w) == 8 for exponent 3.
  const double r = p.score(j, 2000) / p.score(j, 1000);
  EXPECT_NEAR(r, 8.0, 1e-9);
}

TEST(Wfp, ExponentConfigurable) {
  WfpPolicy p(2.0);
  const RuntimeJob j = make_job(1, 0, 1000, 1);
  const double r = p.score(j, 2000) / p.score(j, 1000);
  EXPECT_NEAR(r, 4.0, 1e-9);
}

TEST(MakePolicy, ByName) {
  EXPECT_EQ(make_policy("fcfs")->name(), "fcfs");
  EXPECT_EQ(make_policy("wfp")->name(), "wfp");
  EXPECT_THROW(make_policy("random"), ParseError);
}

TEST(JobStateNames, AllCovered) {
  EXPECT_STREQ(to_string(JobState::kQueued), "queued");
  EXPECT_STREQ(to_string(JobState::kHolding), "holding");
  EXPECT_STREQ(to_string(JobState::kRunning), "running");
  EXPECT_STREQ(to_string(JobState::kFinished), "finished");
}

TEST(RuntimeJobDerived, WaitResponseSlowdownSync) {
  RuntimeJob j = make_job(1, 100, 2000, 4);
  j.spec.runtime = 1000;
  j.first_ready = 400;
  j.start = 600;
  j.end = 1600;
  EXPECT_EQ(j.wait_time(), 500);
  EXPECT_EQ(j.response_time(), 1500);
  EXPECT_DOUBLE_EQ(j.slowdown(), 1.5);
  EXPECT_EQ(j.sync_time(), 200);
}

TEST(RuntimeJobDerived, UnstartedJobIsZero) {
  const RuntimeJob j = make_job(1, 100, 2000, 4);
  EXPECT_EQ(j.wait_time(), 0);
  EXPECT_DOUBLE_EQ(j.slowdown(), 0.0);
  EXPECT_EQ(j.sync_time(), 0);
}

}  // namespace
}  // namespace cosched

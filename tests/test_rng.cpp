#include "util/rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

namespace cosched {
namespace {

TEST(Rng, DeterministicAcrossInstances) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i)
    if (a.next() == b.next()) ++same;
  EXPECT_EQ(same, 0);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(5);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformIntCoversRangeInclusive) {
  Rng rng(5);
  std::vector<int> counts(6, 0);
  for (int i = 0; i < 60000; ++i)
    ++counts[static_cast<std::size_t>(rng.uniform_int(0, 5))];
  for (int c : counts) EXPECT_GT(c, 9000) << "bucket strongly under-sampled";
}

TEST(Rng, UniformIntSingleton) {
  Rng rng(9);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.uniform_int(7, 7), 7);
}

TEST(Rng, UniformIntNegativeRange) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.uniform_int(-10, -5);
    EXPECT_GE(v, -10);
    EXPECT_LE(v, -5);
  }
}

TEST(Rng, ExponentialMean) {
  Rng rng(11);
  double sum = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(30.0);
  EXPECT_NEAR(sum / n, 30.0, 0.5);
}

TEST(Rng, ExponentialIsPositive) {
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) EXPECT_GT(rng.exponential(1.0), 0.0);
}

TEST(Rng, NormalMoments) {
  Rng rng(13);
  double sum = 0, sq = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double v = rng.normal();
    sum += v;
    sq += v * v;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sq / n, 1.0, 0.02);
}

TEST(Rng, LognormalMedian) {
  Rng rng(17);
  std::vector<double> v;
  for (int i = 0; i < 50001; ++i) v.push_back(rng.lognormal(std::log(100), 1.0));
  std::nth_element(v.begin(), v.begin() + 25000, v.end());
  // Median of lognormal = exp(mu).
  EXPECT_NEAR(v[25000], 100.0, 5.0);
}

TEST(Rng, ChanceProbability) {
  Rng rng(19);
  int hits = 0;
  for (int i = 0; i < 100000; ++i)
    if (rng.chance(0.3)) ++hits;
  EXPECT_NEAR(hits / 100000.0, 0.3, 0.01);
}

TEST(Rng, ForkIndependentButDeterministic) {
  Rng a(1), b(1);
  Rng fa = a.fork(), fb = b.fork();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(fa.next(), fb.next());
  // Fork and parent do not mirror each other.
  Rng c(2);
  Rng fc = c.fork();
  int same = 0;
  for (int i = 0; i < 100; ++i)
    if (c.next() == fc.next()) ++same;
  EXPECT_EQ(same, 0);
}

TEST(SplitMix64, KnownFirstValue) {
  // Reference value for seed 0 from the splitmix64 reference implementation.
  SplitMix64 sm(0);
  EXPECT_EQ(sm.next(), 0xe220a8397b1dcdafULL);
}

}  // namespace
}  // namespace cosched

// Fault-tolerant k-of-N gang costart: the two-phase fenced protocol that
// replaces the recursive tryStartMate chain for groups spanning >= 3
// domains, its abort/backoff behaviour, and the wait-cycle victim
// resolution driver.
#include <gtest/gtest.h>

#include "core/deadlock.h"
#include "core_test_util.h"

namespace cosched {
namespace {

using testutil::job;

std::vector<DomainSpec> gang_domains(std::size_t n, Scheme scheme,
                                     NodeCount capacity = 100,
                                     Duration release = 20 * kMinute) {
  std::vector<DomainSpec> specs(n);
  for (std::size_t i = 0; i < n; ++i) {
    specs[i].name = "d" + std::to_string(i);
    specs[i].capacity = capacity;
    specs[i].policy = "fcfs";
    specs[i].cosched.scheme = scheme;
    specs[i].cosched.hold_release_period = release;
    specs[i].cosched.gang.two_phase = true;
  }
  return specs;
}

TEST(Gang, ThreeDomainsCommitInOneRound) {
  Trace a, b, c;
  a.add(job(1, 0, 600, 40, /*group=*/5));
  b.add(job(10, 200, 600, 40, 5));
  c.add(job(20, 400, 600, 40, 5));
  CoupledSim sim(gang_domains(3, Scheme::kHold), {a, b, c});
  const SimResult r = sim.run(30 * kDay);
  EXPECT_TRUE(r.completed);
  EXPECT_TRUE(r.invariants.ok());
  EXPECT_EQ(r.groups.groups_started_together, 1u);
  EXPECT_EQ(r.groups.skew_by_group.at(5), 0);
  // One commit round by the last arrival's coordinator; the two earlier
  // members were prepared (their legacy holds re-fenced in place).
  EXPECT_EQ(r.gangs_committed, 1u);
  EXPECT_EQ(r.gangs_prepared, 2u);
  EXPECT_EQ(r.gangs_aborted, 0u);
  EXPECT_EQ(r.invariants.gang_atomicity_violations, 0u);
  const Time start = sim.cluster(0).scheduler().find(1)->start;
  EXPECT_EQ(start, 400);
  EXPECT_EQ(sim.cluster(1).scheduler().find(10)->start, start);
  EXPECT_EQ(sim.cluster(2).scheduler().find(20)->start, start);
}

TEST(Gang, FourDomainsCommitTogether) {
  std::vector<Trace> traces(4);
  for (int i = 0; i < 4; ++i)
    traces[i].add(job(100 + i, i * 100, 600, 25, /*group=*/3));
  CoupledSim sim(gang_domains(4, Scheme::kHold, 50), traces);
  const SimResult r = sim.run(30 * kDay);
  EXPECT_TRUE(r.completed);
  EXPECT_EQ(r.groups.groups_started_together, 1u);
  EXPECT_EQ(r.gangs_committed, 1u);
  EXPECT_EQ(r.invariants.gang_atomicity_violations, 0u);
  for (int i = 0; i < 4; ++i)
    EXPECT_EQ(sim.cluster(i).scheduler().find(100 + i)->start, 300);
}

TEST(Gang, TwoDomainGroupsKeepTheLegacyChain) {
  // k = 2 stays on the paper's Algorithm-1 path even with gang.two_phase on:
  // the pinned two-domain fingerprints must not shift.
  Trace a, b;
  a.add(job(1, 0, 600, 40, /*group=*/5));
  b.add(job(10, 200, 600, 40, 5));
  CoupledSim sim(gang_domains(2, Scheme::kHold), {a, b});
  const SimResult r = sim.run(30 * kDay);
  EXPECT_TRUE(r.completed);
  EXPECT_EQ(r.groups.groups_started_together, 1u);
  EXPECT_EQ(r.gangs_prepared, 0u);
  EXPECT_EQ(r.gangs_committed, 0u);
}

TEST(Gang, PrepareFailureAbortsTheRoundAndBacksOff) {
  // d2's member cannot allocate while a filler occupies its nodes, so every
  // coordinator round aborts (releasing the holds it prepared) until the
  // filler finishes; the jittered backoff then lets a retry commit.
  Trace a, b, c;
  a.add(job(1, 0, 600, 40, /*group=*/5));
  b.add(job(10, 100, 600, 40, 5));
  c.add(job(90, 0, 30 * kMinute, 80));  // filler: blocks the member below
  c.add(job(20, 200, 600, 40, 5));
  CoupledSim sim(gang_domains(3, Scheme::kYield), {a, b, c});
  const SimResult r = sim.run(30 * kDay);
  EXPECT_TRUE(r.completed);
  EXPECT_TRUE(r.invariants.ok());
  EXPECT_GE(r.gangs_aborted, 1u);
  EXPECT_GE(r.gangs_committed, 1u);
  EXPECT_EQ(r.invariants.gang_atomicity_violations, 0u);
  EXPECT_EQ(r.groups.groups_started_together, 1u);
  // The gang could not start before the filler freed d2.
  EXPECT_GE(sim.cluster(2).scheduler().find(20)->start, 30 * kMinute);
}

TEST(Gang, PartitionDuringCostartHealsWithoutStranding) {
  // A partition separates the coordinator from one member across the
  // costart window.  Whatever mix of aborts and suspect fallbacks results,
  // no member may be stranded: the run completes with zero atomicity
  // violations and zero stale-fence starts.
  CoschedConfig::Liveness live;
  live.enabled = true;
  Trace a, b, c;
  a.add(job(1, 0, 600, 40, /*group=*/5));
  b.add(job(10, 100, 600, 40, 5));
  c.add(job(20, 500, 600, 40, 5));
  CoupledSim sim(gang_domains(3, Scheme::kYield), {a, b, c});
  sim.set_liveness_all(live);
  sim.add_partition(0, 2, 400, 2 * kHour);
  const SimResult r = sim.run(30 * kDay);
  EXPECT_TRUE(r.completed);
  EXPECT_EQ(r.invariants.gang_atomicity_violations, 0u);
  EXPECT_EQ(r.invariants.stale_fence_starts, 0u);
  EXPECT_EQ(r.invariants.lease_expiry_violations, 0u);
  EXPECT_EQ(r.groups.groups_unstarted, 0u);
}

// Three two-domain gangs holding full machines in a ring: d0 holds g1
// waiting on d1, d1 holds g2 waiting on d2, d2 holds g3 waiting on d0 — a
// length-3 cycle no pairwise breaker sees.
struct Ring3 {
  std::vector<Trace> traces{3};
  Ring3() {
    traces[0].add(job(1, 0, 600, 6, /*group=*/1));
    traces[0].add(job(3, 10, 600, 6, /*group=*/3));
    traces[1].add(job(2, 0, 600, 6, /*group=*/2));
    traces[1].add(job(10, 10, 600, 6, /*group=*/1));
    traces[2].add(job(30, 0, 600, 6, /*group=*/3));
    traces[2].add(job(20, 10, 600, 6, /*group=*/2));
  }
};

TEST(Gang, RingOfHoldsDeadlocksWithoutResolution) {
  Ring3 ring;
  CoupledSim sim(gang_domains(3, Scheme::kHold, 6, /*release=*/0),
                 ring.traces);
  const SimResult r = sim.run(30 * kDay);
  EXPECT_TRUE(r.deadlocked);
  const WaitCycle c = find_hold_wait_cycle(
      {&sim.cluster(0), &sim.cluster(1), &sim.cluster(2)});
  EXPECT_EQ(c.length(), 3u);
}

TEST(Gang, CycleResolutionVictimizesAndCompletes) {
  Ring3 ring;
  CoupledSim sim(gang_domains(3, Scheme::kHold, 6, /*release=*/0),
                 ring.traces);
  sim.enable_gang_resolution(5 * kMinute);
  const SimResult r = sim.run(30 * kDay);
  EXPECT_TRUE(r.completed) << "cycle must resolve via the victim order";
  EXPECT_TRUE(r.invariants.ok())
      << (r.invariants.violations.empty() ? ""
                                          : r.invariants.violations.front());
  EXPECT_GE(r.gangs_resolved_by_victim, 1u);
  // Deterministic victim: all holders submitted at t=0, so the tie breaks
  // toward the lowest job id — job 1 on d0 yields its hold.
  EXPECT_GE(sim.cluster(0).scheduler().find(1)->forced_releases, 1);
}

TEST(Gang, ResolutionIsDeterministicAcrossRuns) {
  auto fingerprint_of = [] {
    Ring3 ring;
    CoupledSim sim(gang_domains(3, Scheme::kHold, 6, /*release=*/0),
                   ring.traces);
    sim.enable_gang_resolution(5 * kMinute);
    const SimResult r = sim.run(30 * kDay);
    EXPECT_TRUE(r.completed);
    return determinism_fingerprint(sim);
  };
  EXPECT_EQ(fingerprint_of(), fingerprint_of());
}

}  // namespace
}  // namespace cosched

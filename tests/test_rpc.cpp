// End-to-end protocol over real sockets: WirePeer <-> serve_channel.
#include "net/rpc.h"

#include <gtest/gtest.h>

#include <map>
#include <thread>

namespace cosched {
namespace {

class FakeService : public CoschedService {
 public:
  std::map<GroupId, JobId> mates;
  std::map<JobId, MateStatus> statuses;
  std::map<JobId, bool> try_results;

  std::optional<JobId> get_mate_job(GroupId group, JobId) override {
    auto it = mates.find(group);
    if (it == mates.end()) return std::nullopt;
    return it->second;
  }
  MateStatus get_mate_status(JobId job) override {
    auto it = statuses.find(job);
    return it == statuses.end() ? MateStatus::kUnknown : it->second;
  }
  bool try_start_mate(JobId job) override {
    auto it = try_results.find(job);
    return it != try_results.end() && it->second;
  }
  bool start_job(JobId) override { return true; }
};

struct Harness {
  FakeService service;
  std::thread server;
  std::unique_ptr<WirePeer> peer;

  Harness() {
    auto [client_sock, server_sock] = Socket::pair();
    peer = std::make_unique<WirePeer>(FramedChannel(std::move(client_sock)));
    server = std::thread(
        [this, s = std::make_shared<Socket>(std::move(server_sock))]() mutable {
          FramedChannel channel(std::move(*s));
          serve_channel(channel, service);
        });
  }
  ~Harness() {
    peer.reset();  // closes client socket -> server sees EOF
    server.join();
  }
};

TEST(WireRpc, AllFourCallsOverSocket) {
  Harness h;
  h.service.mates[3] = 30;
  h.service.statuses[30] = MateStatus::kHolding;
  h.service.try_results[30] = true;

  const auto mate = h.peer->get_mate_job(3, 1);
  ASSERT_TRUE(mate.has_value());
  ASSERT_TRUE(mate->has_value());
  EXPECT_EQ(**mate, 30);

  EXPECT_EQ(h.peer->get_mate_status(30), MateStatus::kHolding);
  EXPECT_EQ(h.peer->try_start_mate(30), true);
  EXPECT_EQ(h.peer->start_job(30), true);
  EXPECT_TRUE(h.peer->healthy());
}

TEST(WireRpc, MissingMateOverSocket) {
  Harness h;
  const auto mate = h.peer->get_mate_job(99, 1);
  ASSERT_TRUE(mate.has_value());
  EXPECT_FALSE(mate->has_value());
}

TEST(WireRpc, ManySequentialCalls) {
  Harness h;
  h.service.statuses[7] = MateStatus::kQueuing;
  for (int i = 0; i < 500; ++i)
    ASSERT_EQ(h.peer->get_mate_status(7), MateStatus::kQueuing);
}

TEST(WireRpc, ServerGoneMeansUnknownNotCrash) {
  FakeService service;
  std::unique_ptr<WirePeer> peer;
  {
    auto [client_sock, server_sock] = Socket::pair();
    peer = std::make_unique<WirePeer>(FramedChannel(std::move(client_sock)));
    // server_sock dropped here: connection closed before any reply.
  }
  EXPECT_EQ(peer->get_mate_status(1), std::nullopt);
  EXPECT_FALSE(peer->healthy());
  // Subsequent calls short-circuit.
  EXPECT_EQ(peer->try_start_mate(1), std::nullopt);
}

TEST(WireRpc, ConcurrentClientsSerialized) {
  Harness h;
  h.service.statuses[5] = MateStatus::kQueuing;
  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  for (int t = 0; t < 4; ++t)
    threads.emplace_back([&] {
      for (int i = 0; i < 100; ++i)
        if (h.peer->get_mate_status(5) != MateStatus::kQueuing) ++failures;
    });
  for (auto& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);
}

}  // namespace
}  // namespace cosched

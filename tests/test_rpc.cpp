// End-to-end protocol over real sockets: WirePeer <-> serve_channel.
#include "net/rpc.h"

#include <gtest/gtest.h>

#include <map>
#include <thread>

namespace cosched {
namespace {

class FakeService : public CoschedService {
 public:
  std::map<GroupId, JobId> mates;
  std::map<JobId, MateStatus> statuses;
  std::map<JobId, bool> try_results;

  std::optional<JobId> get_mate_job(GroupId group, JobId) override {
    auto it = mates.find(group);
    if (it == mates.end()) return std::nullopt;
    return it->second;
  }
  MateStatus get_mate_status(JobId job) override {
    auto it = statuses.find(job);
    return it == statuses.end() ? MateStatus::kUnknown : it->second;
  }
  bool try_start_mate(JobId job) override {
    auto it = try_results.find(job);
    return it != try_results.end() && it->second;
  }
  bool start_job(JobId) override { return true; }
};

struct Harness {
  FakeService service;
  std::thread server;
  std::unique_ptr<WirePeer> peer;

  Harness() {
    auto [client_sock, server_sock] = Socket::pair();
    peer = std::make_unique<WirePeer>(FramedChannel(std::move(client_sock)));
    server = std::thread(
        [this, s = std::make_shared<Socket>(std::move(server_sock))]() mutable {
          FramedChannel channel(std::move(*s));
          serve_channel(channel, service);
        });
  }
  ~Harness() {
    peer.reset();  // closes client socket -> server sees EOF
    server.join();
  }
};

TEST(WireRpc, AllFourCallsOverSocket) {
  Harness h;
  h.service.mates[3] = 30;
  h.service.statuses[30] = MateStatus::kHolding;
  h.service.try_results[30] = true;

  const auto mate = h.peer->get_mate_job(3, 1);
  ASSERT_TRUE(mate.has_value());
  ASSERT_TRUE(mate->has_value());
  EXPECT_EQ(**mate, 30);

  EXPECT_EQ(h.peer->get_mate_status(30), MateStatus::kHolding);
  EXPECT_EQ(h.peer->try_start_mate(30), true);
  EXPECT_EQ(h.peer->start_job(30), true);
  EXPECT_TRUE(h.peer->healthy());
}

TEST(WireRpc, MissingMateOverSocket) {
  Harness h;
  const auto mate = h.peer->get_mate_job(99, 1);
  ASSERT_TRUE(mate.has_value());
  EXPECT_FALSE(mate->has_value());
}

TEST(WireRpc, ManySequentialCalls) {
  Harness h;
  h.service.statuses[7] = MateStatus::kQueuing;
  for (int i = 0; i < 500; ++i)
    ASSERT_EQ(h.peer->get_mate_status(7), MateStatus::kQueuing);
}

TEST(WireRpc, ServerGoneMeansUnknownNotCrash) {
  FakeService service;
  std::unique_ptr<WirePeer> peer;
  {
    auto [client_sock, server_sock] = Socket::pair();
    peer = std::make_unique<WirePeer>(FramedChannel(std::move(client_sock)));
    // server_sock dropped here: connection closed before any reply.
  }
  EXPECT_EQ(peer->get_mate_status(1), std::nullopt);
  EXPECT_FALSE(peer->healthy());
  // Subsequent calls short-circuit.
  EXPECT_EQ(peer->try_start_mate(1), std::nullopt);
}

TEST(WireRpc, HungServerTimesOutInsteadOfBlocking) {
  // The far end accepts the connection but never answers: the call must
  // come back as unknown within the deadline, not hang the caller.
  auto [client_sock, server_sock] = Socket::pair();
  WirePeerConfig cfg;
  cfg.call_deadline_ms = 100;
  cfg.retry.max_attempts = 1;
  WirePeer peer(FramedChannel(std::move(client_sock)), cfg);
  const auto t0 = std::chrono::steady_clock::now();
  EXPECT_EQ(peer.get_mate_status(1), std::nullopt);
  const auto elapsed = std::chrono::steady_clock::now() - t0;
  EXPECT_LT(elapsed, std::chrono::seconds(5));
  EXPECT_GE(peer.stats().timeouts, 1u);
  // A timed-out reply may still arrive later and desync the stream, so the
  // channel is abandoned; with no factory to re-dial, the breaker opens
  // immediately rather than burning the remaining threshold.
  EXPECT_FALSE(peer.healthy());
  (void)server_sock;  // held open: the "hung" remote
}

TEST(WireRpc, BreakerOpensFastFailsProbesAndCloses) {
  FakeService service;
  service.statuses[1] = MateStatus::kQueuing;
  std::atomic<bool> good{false};
  std::vector<std::thread> servers;

  WirePeerConfig cfg;
  cfg.call_deadline_ms = 2000;
  cfg.retry.max_attempts = 1;
  cfg.breaker.failure_threshold = 2;
  cfg.breaker.open_cooldown_ms = 30;
  auto peer = std::make_unique<WirePeer>(
      [&]() -> std::optional<FramedChannel> {
        auto [c, s] = Socket::pair();
        if (good) {
          servers.emplace_back(
              [&service, sp = std::make_shared<Socket>(std::move(s))]() mutable {
                FramedChannel ch(std::move(*sp));
                serve_channel(ch, service);
              });
        }
        // When !good the server end drops here: instant EOF, like a daemon
        // that died between accept and serve.
        return FramedChannel(std::move(c));
      },
      cfg);

  EXPECT_EQ(peer->get_mate_status(1), std::nullopt);  // failure 1
  EXPECT_EQ(peer->breaker_state(), BreakerState::kClosed);
  EXPECT_EQ(peer->get_mate_status(1), std::nullopt);  // failure 2 -> open
  EXPECT_EQ(peer->breaker_state(), BreakerState::kOpen);
  EXPECT_FALSE(peer->healthy());

  EXPECT_EQ(peer->get_mate_status(1), std::nullopt);  // inside cooldown
  EXPECT_GE(peer->stats().fast_fails, 1u);

  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_EQ(peer->get_mate_status(1), std::nullopt);  // probe fails
  EXPECT_EQ(peer->breaker_state(), BreakerState::kOpen);

  good = true;
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_EQ(peer->get_mate_status(1), MateStatus::kQueuing);  // probe heals
  EXPECT_TRUE(peer->healthy());
  EXPECT_EQ(peer->breaker_state(), BreakerState::kClosed);
  EXPECT_GE(peer->stats().breaker_opens, 2u);
  EXPECT_GE(peer->stats().breaker_closes, 1u);

  peer.reset();  // close the live channel so the serve thread sees EOF
  for (auto& t : servers) t.join();
}

TEST(WireRpc, RestartedServerIsRediscovered) {
  // Regression for the sticky healthy_ flag: a daemon crash must not mark
  // the peer down for the life of the process.  After the daemon restarts
  // (same port), the breaker probe reconnects and service resumes.
  FakeService service;
  service.statuses[9] = MateStatus::kHolding;

  auto listener = std::make_unique<TcpListener>(0);
  const std::uint16_t port = listener->port();
  // First incarnation: answers the incarnation hello plus exactly one
  // request, then "crashes" (socket and listener closed below).
  std::thread first([&service, l = listener.get()] {
    Socket s = l->accept();
    FramedChannel ch(std::move(s));
    ServiceDispatcher d(service);
    for (int i = 0; i < 2; ++i)
      if (auto f = ch.read_frame()) ch.write_frame(d.dispatch(*f));
  });

  WirePeerConfig cfg;
  cfg.call_deadline_ms = 2000;
  cfg.retry.max_attempts = 2;
  cfg.retry.base_backoff_ms = 1;
  cfg.breaker.failure_threshold = 1;
  cfg.breaker.open_cooldown_ms = 30;
  auto peer = std::make_unique<WirePeer>(
      [port]() -> std::optional<FramedChannel> {
        try {
          return FramedChannel(tcp_connect(port));
        } catch (const std::exception&) {
          return std::nullopt;  // daemon down: nothing listening
        }
      },
      cfg);

  EXPECT_EQ(peer->get_mate_status(9), MateStatus::kHolding);
  EXPECT_TRUE(peer->healthy());

  first.join();
  listener->close();  // daemon fully gone: connects are refused

  EXPECT_EQ(peer->get_mate_status(9), std::nullopt);
  EXPECT_FALSE(peer->healthy());

  // Daemon restarts on the same port.
  listener = std::make_unique<TcpListener>(port);
  std::thread second([&service, l = listener.get()] {
    Socket s = l->accept();
    FramedChannel ch(std::move(s));
    serve_channel(ch, service);
  });

  // After the open cooldown the next call probes, reconnects, and heals.
  std::this_thread::sleep_for(std::chrono::milliseconds(60));
  EXPECT_EQ(peer->get_mate_status(9), MateStatus::kHolding);
  EXPECT_TRUE(peer->healthy());
  EXPECT_GE(peer->stats().reconnects, 2u);  // initial dial + rediscovery

  peer.reset();
  second.join();
}

TEST(WireRpc, ConcurrentClientsSerialized) {
  Harness h;
  h.service.statuses[5] = MateStatus::kQueuing;
  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  for (int t = 0; t < 4; ++t)
    threads.emplace_back([&] {
      for (int i = 0; i < 100; ++i)
        if (h.peer->get_mate_status(5) != MateStatus::kQueuing) ++failures;
    });
  for (auto& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);
}

}  // namespace
}  // namespace cosched

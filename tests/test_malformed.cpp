// Malformed-wire corpus: a misbehaving or corrupted peer must never crash a
// daemon (`serve_channel` survives or exits cleanly) and must surface to the
// client as "remote unknown", never as an unhandled exception.
#include <gtest/gtest.h>

#include <thread>

#include "net/rpc.h"
#include "proto/message.h"
#include "util/error.h"
#include "util/rng.h"

namespace cosched {
namespace {

class StubService : public CoschedService {
 public:
  std::optional<JobId> get_mate_job(GroupId, JobId) override { return 7; }
  MateStatus get_mate_status(JobId) override { return MateStatus::kQueuing; }
  bool try_start_mate(JobId) override { return true; }
  bool start_job(JobId) override { return true; }
};

// -- Message::decode ---------------------------------------------------------

TEST(MalformedWire, DecodeEmptyInput) {
  EXPECT_THROW(Message::decode({}), ParseError);
}

TEST(MalformedWire, DecodeUnknownType) {
  auto bytes = make_get_mate_status_req(1, 5).encode();
  bytes[0] = 200;  // type tag is the first byte
  EXPECT_THROW(Message::decode(bytes), ParseError);
}

TEST(MalformedWire, DecodeEveryTruncation) {
  // Every strict prefix of a valid encoding must raise ParseError, and the
  // full encoding must round-trip.
  const Message original = make_get_mate_job_req(77, 123456789, 987654321);
  const auto bytes = original.encode();
  for (std::size_t n = 0; n < bytes.size(); ++n) {
    EXPECT_THROW(Message::decode(std::span(bytes.data(), n)), ParseError)
        << "prefix length " << n << " parsed successfully";
  }
  EXPECT_EQ(Message::decode(bytes), original);
}

TEST(MalformedWire, DecodeTrailingBytes) {
  auto bytes = make_try_start_mate_resp(3, true).encode();
  bytes.push_back(0x00);
  EXPECT_THROW(Message::decode(bytes), ParseError);
}

TEST(MalformedWire, DecodeBadStatusValue) {
  auto bytes = make_get_mate_status_resp(4, MateStatus::kHolding).encode();
  bytes.back() = 99;  // status is the last varint field; 99 is out of range
  EXPECT_THROW(Message::decode(bytes), ParseError);
}

TEST(MalformedWire, DecodeEveryGangTruncation) {
  // Strict prefixes of each new gang encoding must raise ParseError; the
  // full encodings must round-trip.
  for (const Message& original :
       {make_gang_prepare_req(21, 123456789, 987654321),
        make_gang_commit_req(22, 123456789, 987654321),
        make_gang_abort_req(23, 123456789, 987654321),
        make_gang_victim_req(24, 123456789, 987654321)}) {
    const auto bytes = original.encode();
    for (std::size_t n = 0; n < bytes.size(); ++n) {
      EXPECT_THROW(Message::decode(std::span(bytes.data(), n)), ParseError)
          << "prefix length " << n << " parsed successfully";
    }
    EXPECT_EQ(Message::decode(bytes), original);
  }
}

TEST(MalformedWire, DecodeRandomFuzzNeverCrashes) {
  // Deterministic fuzz: every input either parses or throws ParseError —
  // nothing else escapes.
  Rng rng(0xc0ffee);
  for (int iter = 0; iter < 2000; ++iter) {
    std::vector<std::uint8_t> bytes(
        static_cast<std::size_t>(rng.uniform_int(0, 64)));
    for (auto& b : bytes) b = static_cast<std::uint8_t>(rng.next());
    try {
      (void)Message::decode(bytes);
    } catch (const ParseError&) {
      // expected for nearly all inputs
    }
  }
}

TEST(MalformedWire, DecodeMutatedValidMessagesNeverCrash) {
  // Single-byte mutations of valid encodings — the corruption shape a flaky
  // link actually produces.
  Rng rng(0xdecade);
  const Message seeds[] = {
      make_get_mate_job_req(1, 10, 20), make_get_mate_job_resp(2, 30),
      make_get_mate_status_resp(3, MateStatus::kRunning),
      make_start_job_resp(4, true), make_error_resp(5, "boom"),
      make_gang_prepare_req(6, 40, 8), make_gang_prepare_resp(6, true),
      make_gang_commit_req(7, 40, 8), make_gang_abort_req(8, 40, 8),
      make_gang_victim_req(9, 40, 8), make_gang_victim_resp(9, false)};
  for (const Message& seed : seeds) {
    const auto clean = seed.encode();
    for (int iter = 0; iter < 400; ++iter) {
      auto bytes = clean;
      const auto pos = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(bytes.size()) - 1));
      bytes[pos] = static_cast<std::uint8_t>(rng.next());
      try {
        (void)Message::decode(bytes);
      } catch (const ParseError&) {
      }
    }
  }
}

// -- serve_channel ----------------------------------------------------------

TEST(MalformedWire, ServerAnswersErrorRespToGarbagePayloadAndSurvives) {
  StubService service;
  auto [client_sock, server_sock] = Socket::pair();
  std::thread server([&service,
                      s = std::make_shared<Socket>(
                          std::move(server_sock))]() mutable {
    FramedChannel ch(std::move(*s));
    serve_channel(ch, service);
  });
  {
    FramedChannel client(std::move(client_sock));

    // Well-framed garbage payload: the dispatcher answers kErrorResp.
    const std::uint8_t garbage[] = {0xde, 0xad, 0xbe, 0xef};
    client.write_frame(garbage);
    const auto resp = client.read_frame();
    ASSERT_TRUE(resp.has_value());
    EXPECT_EQ(Message::decode(*resp).type, MsgType::kErrorResp);

    // The server kept serving: a valid request still gets a valid answer.
    client.write_frame(make_get_mate_status_req(8, 5).encode());
    const auto ok = client.read_frame();
    ASSERT_TRUE(ok.has_value());
    EXPECT_EQ(Message::decode(*ok).status, MateStatus::kQueuing);
  }  // channel closes -> EOF ends the serve loop
  server.join();
}

TEST(MalformedWire, ServerExitsCleanlyOnOversizeHeader) {
  StubService service;
  auto [client_sock, server_sock] = Socket::pair();
  std::thread server([&service,
                      s = std::make_shared<Socket>(
                          std::move(server_sock))]() mutable {
    FramedChannel ch(std::move(*s));
    serve_channel(ch, service);  // must return, not crash
  });
  // Header claiming a 256 MiB frame (far over kMaxFrame).
  const std::uint8_t header[] = {0x10, 0x00, 0x00, 0x00};
  client_sock.send_all(header);
  server.join();  // serve loop rejected the frame and exited
}

TEST(MalformedWire, ServerExitsCleanlyOnTruncatedFrame) {
  StubService service;
  auto [client_sock, server_sock] = Socket::pair();
  std::thread server([&service,
                      s = std::make_shared<Socket>(
                          std::move(server_sock))]() mutable {
    FramedChannel ch(std::move(*s));
    serve_channel(ch, service);
  });
  // Promise 100 payload bytes, deliver 3, hang up mid-frame.
  const std::uint8_t header[] = {0x00, 0x00, 0x00, 0x64};
  const std::uint8_t partial[] = {0x01, 0x02, 0x03};
  client_sock.send_all(header);
  client_sock.send_all(partial);
  client_sock.close();
  server.join();  // EOF inside frame -> clean exit
}

TEST(MalformedWire, ClientDegradesToUnknownOnGarbageReply) {
  // A "server" that answers every request with a garbage frame: WirePeer
  // must map that to nullopt (unknown), not throw.
  auto [client_sock, server_sock] = Socket::pair();
  std::thread server(
      [s = std::make_shared<Socket>(std::move(server_sock))]() mutable {
        FramedChannel ch(std::move(*s));
        while (auto frame = ch.read_frame()) {
          const std::uint8_t junk[] = {0xff, 0xff, 0xff};
          ch.write_frame(junk);
        }
      });
  WirePeerConfig cfg;
  cfg.retry.max_attempts = 1;
  auto peer =
      std::make_unique<WirePeer>(FramedChannel(std::move(client_sock)), cfg);
  EXPECT_EQ(peer->get_mate_status(1), std::nullopt);
  peer.reset();
  server.join();
}

}  // namespace
}  // namespace cosched

#include "workload/swf.h"

#include <gtest/gtest.h>

#include <sstream>

#include "util/error.h"

namespace cosched {
namespace {

TEST(Swf, ParsesDataLines) {
  std::istringstream in(
      "; header comment\n"
      "1 100 -1 3600 64 -1 -1 64 7200 -1 1 5 -1 -1 -1 -1 -1 -1\n"
      "2 200 -1 60 1 -1 -1 1 600 -1 1 6 -1 -1 -1 -1 -1 -1\n");
  const Trace t = read_swf(in, "test");
  ASSERT_EQ(t.size(), 2u);
  EXPECT_EQ(t.jobs()[0].id, 1);
  EXPECT_EQ(t.jobs()[0].submit, 100);
  EXPECT_EQ(t.jobs()[0].runtime, 3600);
  EXPECT_EQ(t.jobs()[0].walltime, 7200);
  EXPECT_EQ(t.jobs()[0].nodes, 64);
  EXPECT_EQ(t.jobs()[1].nodes, 1);
}

TEST(Swf, ShortLinesPadWithMissing) {
  // Only 9 fields; requested time present, rest missing.
  std::istringstream in("1 100 -1 3600 64 -1 -1 64 7200\n");
  const Trace t = read_swf(in, "test");
  ASSERT_EQ(t.size(), 1u);
  EXPECT_EQ(t.jobs()[0].walltime, 7200);
}

TEST(Swf, FallsBackToAllocatedProcs) {
  std::istringstream in("1 100 -1 3600 128 -1 -1 -1 7200\n");
  const Trace t = read_swf(in, "test");
  ASSERT_EQ(t.size(), 1u);
  EXPECT_EQ(t.jobs()[0].nodes, 128);
}

TEST(Swf, ProcsPerNodeDivides) {
  std::istringstream in("1 100 -1 3600 -1 -1 -1 1024 7200\n");
  SwfReadOptions opt;
  opt.procs_per_node = 4;
  const Trace t = read_swf(in, "test", opt);
  ASSERT_EQ(t.size(), 1u);
  EXPECT_EQ(t.jobs()[0].nodes, 256);
}

TEST(Swf, ProcsPerNodeRoundsUp) {
  std::istringstream in("1 100 -1 3600 -1 -1 -1 5 7200\n");
  SwfReadOptions opt;
  opt.procs_per_node = 4;
  const Trace t = read_swf(in, "test", opt);
  EXPECT_EQ(t.jobs()[0].nodes, 2);
}

TEST(Swf, DropsInvalidJobsByDefault) {
  std::istringstream in(
      "1 100 -1 -1 64 -1 -1 64 7200\n"   // missing runtime
      "2 200 -1 60 1 -1 -1 1 600\n");
  const Trace t = read_swf(in, "test");
  ASSERT_EQ(t.size(), 1u);
  EXPECT_EQ(t.jobs()[0].id, 2);
}

TEST(Swf, RejectsInvalidWhenConfigured) {
  std::istringstream in("1 100 -1 -1 64 -1 -1 64 7200\n");
  SwfReadOptions opt;
  opt.drop_invalid = false;
  EXPECT_THROW(read_swf(in, "test", opt), ParseError);
}

TEST(Swf, ClampsRuntimeToWalltime) {
  std::istringstream in("1 100 -1 9000 64 -1 -1 64 7200\n");
  const Trace t = read_swf(in, "test");
  EXPECT_EQ(t.jobs()[0].runtime, 7200);
}

TEST(Swf, MissingWalltimeUsesRuntime) {
  std::istringstream in("1 100 -1 3600 64 -1 -1 64 -1\n");
  const Trace t = read_swf(in, "test");
  EXPECT_EQ(t.jobs()[0].walltime, 3600);
}

TEST(Swf, NonNumericLineThrows) {
  std::istringstream in("hello world\n");
  EXPECT_THROW(read_swf(in, "test"), ParseError);
}

TEST(Swf, RoundTripPreservesJobsAndGroups) {
  Trace t;
  t.set_system_name("round");
  for (int i = 1; i <= 5; ++i) {
    JobSpec j;
    j.id = i;
    j.submit = i * 100;
    j.runtime = 600 + i;
    j.walltime = 1200;
    j.nodes = i * 8;
    j.user = i;
    if (i % 2 == 0) j.group = 1000 + i;
    t.add(j);
  }
  std::ostringstream out;
  write_swf(out, t);
  std::istringstream in(out.str());
  const Trace back = read_swf(in, "round");
  ASSERT_EQ(back.size(), t.size());
  for (std::size_t i = 0; i < t.size(); ++i) {
    EXPECT_EQ(back.jobs()[i].id, t.jobs()[i].id);
    EXPECT_EQ(back.jobs()[i].submit, t.jobs()[i].submit);
    EXPECT_EQ(back.jobs()[i].runtime, t.jobs()[i].runtime);
    EXPECT_EQ(back.jobs()[i].walltime, t.jobs()[i].walltime);
    EXPECT_EQ(back.jobs()[i].nodes, t.jobs()[i].nodes);
    EXPECT_EQ(back.jobs()[i].group, t.jobs()[i].group);
  }
}

TEST(Swf, FileErrorsThrow) {
  EXPECT_THROW(read_swf_file("/no/such/file.swf", "x"), Error);
  Trace t;
  EXPECT_THROW(write_swf_file("/no/such/dir/file.swf", t), Error);
}

}  // namespace
}  // namespace cosched
